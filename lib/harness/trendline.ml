(* The bench trajectory store: one small JSON record per bench run,
   appended to a history directory, plus the statistical gate
   [darsie bench-compare] uses to turn "the numbers moved" into a CI
   verdict. Simulated metrics (cycles, speedup geomeans, IPC) are
   deterministic, so they get a tight relative threshold; wall-clock
   throughput is noisy, so runs are summarized min-of-N and compared
   against a loose one. *)

module J = Darsie_obs.Json
module W = Darsie_workloads.Workload

let schema_version = 1

type record = {
  date : string;  (** ISO date of the run (caller-supplied) *)
  label : string;  (** free-form: git rev, host, "ci" ... *)
  wall_s : float;  (** min-of-N wall time of the matrix build, seconds *)
  repeats : int;  (** the N of min-of-N *)
  cycles_per_sec : float;  (** simulated cycles per wall second *)
  gmeans : (string * float) list;  (** fig8 speedup geomeans *)
  per_app_ipc : (string * float) list;  (** DARSIE IPC per app *)
  per_app_cycles : (string * int) list;  (** DARSIE cycles per app *)
  per_app_coverage : (string * float) list;
      (** DARSIE skip-ledger redundancy coverage per app; [[]] in records
          written before the ledger existed — compared only when both
          sides carry an app *)
  host_phases : (string * float) list;
      (** per-phase host self wall (seconds) from the telemetry snapshot;
          [[]] in records written before host telemetry existed. Wall
          quantities: gated at the loose threshold *)
  cache_hit_rate : float option;
      (** trace-cache hits / lookups for the run; [None] in old records
          or when the run made no lookups *)
}

(* Run [f] [repeats] times and keep the fastest wall time — the standard
   min-of-N noise filter: the minimum is the run least disturbed by the
   machine. [clock] defaults to processor time so the harness stays free
   of unix; callers wanting wall time pass [Unix.gettimeofday]. *)
let measure ?(clock = Sys.time) ~repeats f =
  if repeats < 1 then invalid_arg "Trendline.measure: repeats < 1";
  let result = ref None in
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = clock () in
    let r = f () in
    let dt = clock () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let of_matrix ?(host_phases = []) ?cache_hit_rate ~date ~label ~wall_s ~repeats
    (m : Suite.matrix) =
  let _, g1, g2, _ = Figures.fig8 m in
  let total_cycles =
    Hashtbl.fold
      (fun _ (r : Suite.run) acc -> acc + r.Suite.gpu.Darsie_timing.Gpu.cycles)
      m.Suite.runs 0
  in
  let darsie_runs =
    List.map
      (fun (app : Suite.app) ->
        (app.Suite.workload.W.abbr, Suite.get m app.Suite.workload.W.abbr Suite.Darsie))
      m.Suite.apps
  in
  let coverage_of (r : Suite.run) =
    Darsie_obs.Ledger.coverage r.Suite.gpu.Darsie_timing.Gpu.ledger
  in
  {
    date;
    label;
    wall_s;
    repeats;
    cycles_per_sec =
      (if wall_s <= 0.0 then 0.0 else float_of_int total_cycles /. wall_s);
    gmeans =
      [
        ("speedup_1d_darsie", g1.Figures.darsie);
        ("speedup_1d_dac", g1.Figures.dac);
        ("speedup_2d_darsie", g2.Figures.darsie);
        ("speedup_2d_dac", g2.Figures.dac);
        ("speedup_2d_uv", g2.Figures.uv);
        ( "redundancy_coverage",
          Stats_util.geomean
            (List.map (fun (_, r) -> coverage_of r) darsie_runs) );
      ];
    per_app_ipc =
      List.map
        (fun (abbr, (r : Suite.run)) ->
          (abbr, Darsie_timing.Gpu.ipc r.Suite.gpu))
        darsie_runs;
    per_app_cycles =
      List.map
        (fun (abbr, (r : Suite.run)) ->
          (abbr, r.Suite.gpu.Darsie_timing.Gpu.cycles))
        darsie_runs;
    per_app_coverage =
      List.map (fun (abbr, r) -> (abbr, coverage_of r)) darsie_runs;
    host_phases;
    cache_hit_rate;
  }

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let to_json r =
  J.Obj
    ([
      ("schema_version", J.Int schema_version);
      ("kind", J.String "bench_record");
      ("date", J.String r.date);
      ("label", J.String r.label);
      ("wall_s", J.Float r.wall_s);
      ("repeats", J.Int r.repeats);
      ("cycles_per_sec", J.Float r.cycles_per_sec);
      ("gmeans", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) r.gmeans));
      ( "per_app_ipc",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) r.per_app_ipc) );
      ( "per_app_cycles",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) r.per_app_cycles) );
      ( "per_app_coverage",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) r.per_app_coverage) );
      ( "host_phases",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) r.host_phases) );
    ]
    @
    match r.cache_hit_rate with
    | Some rate -> [ ("cache_hit_rate", J.Float rate) ]
    | None -> [])

let to_float = function
  | J.Float f -> Some f
  | J.Int i -> Some (float_of_int i)
  | _ -> None

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let field name conv doc =
  match Option.bind (J.member name doc) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let assoc name conv doc =
  match J.member name doc with
  | Some (J.Obj fields) ->
    List.fold_left
      (fun acc (k, v) ->
        let* l = acc in
        match conv v with
        | Some x -> Ok ((k, x) :: l)
        | None -> Error (Printf.sprintf "ill-typed entry %S in %S" k name))
      (Ok []) fields
    |> Result.map List.rev
  | _ -> Error (Printf.sprintf "missing object %S" name)

let of_json doc =
  let* v = field "schema_version" J.to_int doc in
  let* () =
    if v = schema_version then Ok ()
    else Error (Printf.sprintf "schema_version %d, expected %d" v schema_version)
  in
  let str name =
    match J.member name doc with
    | Some (J.String s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string %S" name)
  in
  let* date = str "date" in
  let* label = str "label" in
  let* wall_s = field "wall_s" to_float doc in
  let* repeats = field "repeats" J.to_int doc in
  let* cycles_per_sec = field "cycles_per_sec" to_float doc in
  let* gmeans = assoc "gmeans" to_float doc in
  let* per_app_ipc = assoc "per_app_ipc" to_float doc in
  let* per_app_cycles = assoc "per_app_cycles" J.to_int doc in
  (* Coverage postdates many stored baselines: a missing key reads as the
     empty list, and the gate then simply has nothing to pair — "not
     compared", never a crash. *)
  let* per_app_coverage =
    match J.member "per_app_coverage" doc with
    | None -> Ok []
    | Some _ -> assoc "per_app_coverage" to_float doc
  in
  (* Host telemetry postdates the baselines too: both fields read as
     absent, and the gate pairs nothing. *)
  let* host_phases =
    match J.member "host_phases" doc with
    | None -> Ok []
    | Some _ -> assoc "host_phases" to_float doc
  in
  let cache_hit_rate = Option.bind (J.member "cache_hit_rate" doc) to_float in
  Ok { date; label; wall_s; repeats; cycles_per_sec; gmeans; per_app_ipc;
       per_app_cycles; per_app_coverage; host_phases; cache_hit_rate }

let write_file path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.pretty_to_string (to_json r));
      output_char oc '\n')

let read_file path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let* doc =
    match J.of_string s with Ok d -> Ok d | Error e -> Error ("bad JSON: " ^ e)
  in
  of_json doc

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)
(* ------------------------------------------------------------------ *)

type direction = Higher_is_better | Lower_is_better

type verdict = {
  metric : string;
  baseline : float;
  current : float;
  rel_change : float;  (** signed; positive = regression direction *)
  threshold : float;
  regressed : bool;
}

(* Default thresholds. Simulated metrics are bit-deterministic, so any
   drift beyond rounding is a real model change: 0.5%. Wall time on a
   shared CI runner easily wobbles by double-digit percents even after
   min-of-N: 25%. *)
let det_threshold = 0.005

let wall_threshold = 0.25

let judge ~metric ~threshold ~dir ~baseline ~current =
  let rel =
    if baseline = 0.0 then if current = 0.0 then 0.0 else infinity
    else (current -. baseline) /. Float.abs baseline
  in
  (* Normalize so positive rel_change always points toward "worse". *)
  let rel = match dir with Higher_is_better -> -.rel | Lower_is_better -> rel in
  { metric; baseline; current; rel_change = rel; threshold;
    regressed = rel > threshold }

let compare_records ?(det_threshold = det_threshold)
    ?(wall_threshold = wall_threshold) ~baseline ~current () =
  let paired name l1 l2 =
    List.filter_map
      (fun (k, b) ->
        Option.map (fun c -> (name ^ "." ^ k, b, c)) (List.assoc_opt k l2))
      l1
  in
  let det =
    paired "gmean" baseline.gmeans current.gmeans
    @ paired "ipc" baseline.per_app_ipc current.per_app_ipc
    @ paired "coverage" baseline.per_app_coverage current.per_app_coverage
    @ paired "cycles"
        (List.map (fun (k, v) -> (k, float_of_int v)) baseline.per_app_cycles)
        (List.map (fun (k, v) -> (k, float_of_int v)) current.per_app_cycles)
  in
  let det_verdicts =
    List.map
      (fun (metric, b, c) ->
        let dir =
          if String.length metric >= 6 && String.sub metric 0 6 = "cycles"
          then Lower_is_better
          else Higher_is_better
        in
        judge ~metric ~threshold:det_threshold ~dir ~baseline:b ~current:c)
      det
  in
  (* Cache hit rate is deterministic for a fixed cache state (CI compares
     cold-cache runs), but only when both records carry it. *)
  let cache_verdicts =
    match (baseline.cache_hit_rate, current.cache_hit_rate) with
    | Some b, Some c ->
      [
        judge ~metric:"cache_hit_rate" ~threshold:det_threshold
          ~dir:Higher_is_better ~baseline:b ~current:c;
      ]
    | _ -> []
  in
  (* Host phase self-walls are wall-clock quantities: loose threshold. *)
  let phase_verdicts =
    List.map
      (fun (metric, b, c) ->
        judge ~metric ~threshold:wall_threshold ~dir:Lower_is_better
          ~baseline:b ~current:c)
      (paired "host_phase" baseline.host_phases current.host_phases)
  in
  let wall_verdicts =
    [
      judge ~metric:"wall_s" ~threshold:wall_threshold ~dir:Lower_is_better
        ~baseline:baseline.wall_s ~current:current.wall_s;
      judge ~metric:"cycles_per_sec" ~threshold:wall_threshold
        ~dir:Higher_is_better ~baseline:baseline.cycles_per_sec
        ~current:current.cycles_per_sec;
    ]
  in
  det_verdicts @ cache_verdicts @ phase_verdicts @ wall_verdicts

let regressions verdicts = List.filter (fun v -> v.regressed) verdicts

let render_verdicts verdicts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %14s %14s %9s %9s  %s\n" "metric" "baseline"
       "current" "change%" "limit%" "verdict");
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %14.4f %14.4f %+9.2f %9.2f  %s\n" v.metric
           v.baseline v.current (100.0 *. v.rel_change)
           (100.0 *. v.threshold)
           (if v.regressed then "REGRESSED" else "ok")))
    verdicts;
  Buffer.contents buf
