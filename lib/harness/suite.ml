open Darsie_timing
module W = Darsie_workloads.Workload
module Tel = Darsie_telemetry.Telemetry

type app = {
  workload : W.t;
  trace : Darsie_trace.Record.t;
  kinfo : Kinfo.t;
}

let load_app ?(scale = 1) ?cache (workload : W.t) =
  let args = [ ("app", Tel.Str workload.W.abbr) ] in
  let prepared =
    Tel.span ~args "app.prepare" (fun () -> workload.W.prepare ~scale)
  in
  let kinfo =
    Tel.span ~args "app.compile" (fun () ->
        Kinfo.make ~warp_size:32 prepared.W.launch)
  in
  let trace =
    Tel.span ~args "trace.load" (fun () ->
        match cache with
        | None -> Darsie_trace.Record.generate prepared.W.mem prepared.W.launch
        | Some c ->
          Darsie_trace.Cache.generate c ~name:workload.W.abbr ~scale
            prepared.W.mem prepared.W.launch)
  in
  { workload; trace; kinfo }

type machine =
  | Base
  | Uv
  | Dac_ideal
  | Darsie
  | Darsie_ignore_store
  | Darsie_no_cf_sync
  | Silicon_sync

let machine_name = function
  | Base -> "BASE"
  | Uv -> "UV"
  | Dac_ideal -> "DAC-IDEAL"
  | Darsie -> "DARSIE"
  | Darsie_ignore_store -> "DARSIE-IGNORE-STORE"
  | Darsie_no_cf_sync -> "DARSIE-NO-CF-SYNC"
  | Silicon_sync -> "SILICON-SYNC"

let all_machines =
  [ Base; Uv; Dac_ideal; Darsie; Darsie_ignore_store; Darsie_no_cf_sync;
    Silicon_sync ]

type run = {
  machine : machine;
  cfg : Config.t;  (* the exact configuration the cell ran under *)
  gpu : Gpu.result;
  energy : Darsie_energy.Energy_model.breakdown;
}

type matrix = {
  cfg : Config.t;
  apps : app list;
  runs : (string * machine, run) Hashtbl.t;
}

let factory_of = function
  | Base | Silicon_sync -> Engine.base_factory
  | Uv -> Darsie_baselines.Uv.factory
  | Dac_ideal -> Darsie_baselines.Dac_ideal.factory
  | Darsie -> Darsie_core.Darsie_engine.factory ()
  | Darsie_ignore_store ->
    Darsie_core.Darsie_engine.factory
      ~options:{ Darsie_core.Darsie_engine.ignore_store = true; no_cf_sync = false }
      ()
  | Darsie_no_cf_sync ->
    Darsie_core.Darsie_engine.factory
      ~options:{ Darsie_core.Darsie_engine.ignore_store = false; no_cf_sync = true }
      ()

let run_app_checked ?(cfg = Config.default) ?sink ?sample_interval
    ?event_window ?deadline ?pcstat app machine =
  let cfg =
    match machine with
    | Silicon_sync -> { cfg with Config.sync_at_branches = true }
    | _ -> cfg
  in
  Tel.span
    ~args:
      [
        ("app", Tel.Str app.workload.W.abbr);
        ("machine", Tel.Str (machine_name machine));
      ]
    "sim.run"
    (fun () ->
      match
        Gpu.run ~cfg ?sink ?sample_interval ?event_window ?deadline ?pcstat
          (factory_of machine) app.kinfo app.trace
      with
      | Ok gpu ->
        let energy = Darsie_energy.Energy_model.account cfg gpu.Gpu.stats in
        Ok { machine; cfg; gpu; energy }
      | Error e -> Error e)

let run_app ?cfg ?sink ?sample_interval ?pcstat app machine =
  match run_app_checked ?cfg ?sink ?sample_interval ?pcstat app machine with
  | Ok r -> r
  | Error e -> raise (Darsie_check.Sim_error.Simulation_error e)

(* Core-budget division: a pool of [jobs] worker domains each running a
   simulation sharded over [cfg.sm_domains] further domains would
   oversubscribe the machine [jobs * sm_domains] ways. Give each pool
   worker its fair share of the physical cores instead: with P =
   Parallel.default_jobs () cores, every worker may shard over at most
   max 1 (P / jobs) domains. Auto-sizing (sm_domains = 0) resolves to
   exactly that share; explicit requests are capped by it. Sharding is
   timing-invisible, so dividing the budget never changes any simulated
   result — only the schedule. *)
let divide_domains ~jobs (cfg : Config.t) =
  if jobs <= 1 || cfg.Config.sm_domains = 1 then cfg
  else begin
    let share = max 1 (Parallel.default_jobs () / jobs) in
    let d =
      if cfg.Config.sm_domains = 0 then share
      else min cfg.Config.sm_domains share
    in
    { cfg with Config.sm_domains = d }
  end

(* The (app x machine) matrix build, fanned out over [jobs] domains.
   Both stages — trace generation per app, then one timing run per
   (app, machine) cell — use Parallel.map, whose results come back in
   input order, so the matrix (and every figure, metrics document and
   trendline record folded out of it) is identical for any job count;
   [~jobs:1] does not spawn a domain and reproduces the serial harness
   exactly. *)
let build_matrix ?(cfg = Config.default) ?(scale = 1)
    ?(machines = all_machines)
    ?(apps = Darsie_workloads.Registry.all) ?(jobs = 1) ?cache () =
  let cfg = divide_domains ~jobs cfg in
  let apps =
    Parallel.map ~jobs
      ~label:(fun w -> w.W.abbr)
      (fun w -> load_app ~scale ?cache w)
      apps
  in
  let cells =
    List.concat_map (fun app -> List.map (fun m -> (app, m)) machines) apps
  in
  let results =
    Parallel.map ~jobs
      ~label:(fun (app, m) ->
        app.workload.W.abbr ^ "/" ^ machine_name m)
      (fun (app, m) -> ((app.workload.W.abbr, m), run_app ~cfg app m))
      cells
  in
  let runs = Hashtbl.create 128 in
  List.iter (fun (key, r) -> Hashtbl.replace runs key r) results;
  { cfg; apps; runs }

let get m abbr machine = Hashtbl.find m.runs (abbr, machine)

let speedup m abbr machine =
  let base = get m abbr Base and r = get m abbr machine in
  float_of_int base.gpu.Gpu.cycles /. float_of_int r.gpu.Gpu.cycles

let energy_reduction m abbr machine =
  let base = get m abbr Base and r = get m abbr machine in
  100.0
  *. (1.0
     -. r.energy.Darsie_energy.Energy_model.total
        /. base.energy.Darsie_energy.Energy_model.total)

let instr_reduction m abbr machine =
  let base = get m abbr Base and r = get m abbr machine in
  Stats_util.elimination_pct r.gpu.Gpu.stats
    ~baseline_issued:base.gpu.Gpu.stats.Stats.issued
