(** Annotated disassembly — the rendering layer of [darsie annotate],
    PTX-lite's analogue of [perf annotate].

    Joins {!Darsie_isa.Printer.kernel_lines} with the per-PC profile of a
    pcstat-enabled run ({!Darsie_timing.Gpu.run} with [~pcstat:true]):
    each source line gets its share of simulated cycles, its elimination
    rate on every requested machine, its dominant stall bucket, and (for
    memory instructions) the mean round-trip latency. *)

type row = {
  idx : int;  (** static instruction index *)
  label : string option;  (** ["L<i>"] on branch targets *)
  text : string;  (** disassembled instruction *)
  row_cycles : int;  (** cycles charged to this line (all SMs) *)
  cycle_pct : float;  (** share of all charged cycles, 0–100 *)
  skip_pcts : (string * float) list;
      (** per machine: percent of dynamic occurrences eliminated
          (pre-fetch skips + issue drops) *)
  issues : int;
  drops : int;
  skips : int;
  top_bucket : (string * float) option;
      (** dominant stall bucket and its share of this line's cycles *)
  mem_mean : float option;  (** mean round-trip latency, memory ops only *)
  skip_entry : Darsie_obs.Pcstat.skip_entry option;
      (** skip-table telemetry from the primary machine, if any *)
}

val skip_pct : Darsie_obs.Pcstat.t -> pc:int -> float
(** Percent of [pc]'s dynamic occurrences the machine eliminated. *)

val rows :
  kernel:Darsie_isa.Kernel.t ->
  machines:(string * Darsie_timing.Gpu.result) list ->
  row list
(** One row per static instruction. The first machine is the {e primary}:
    cycle shares, counters, stall buckets and telemetry come from it;
    every listed machine contributes a [skip_pcts] column.

    @raise Invalid_argument when [machines] is empty or a result was run
    without [pcstat]. *)

val render :
  ?top:int ->
  kernel:Darsie_isa.Kernel.t ->
  app_name:string ->
  machines:(string * Darsie_timing.Gpu.result) list ->
  unit ->
  string
(** The full listing: header, one column-aligned line per instruction,
    the unattributed (idle) remainder, and — when [top > 0] — a hotspot
    summary of the [top] most cycle-expensive lines with their
    skip-table telemetry. *)
