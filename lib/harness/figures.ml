open Darsie_timing
module W = Darsie_workloads.Workload
module L = Darsie_trace.Limit_study

let dim_string (w : W.t) =
  let x, y = w.W.block_dim in
  Printf.sprintf "(%d,%d)" x y

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

type fig1_row = {
  abbr : string;
  grid_pct : float;
  tb_pct : float;
  warp_pct : float;
  vector_pct : float;
}

let limit_of (w : W.t) ~scale =
  let p = w.W.prepare ~scale in
  L.measure p.W.mem p.W.launch

let fig1 ?(scale = 1) () =
  let rows =
    List.map
      (fun (w : W.t) ->
        let r = limit_of w ~scale in
        let pct n = 100.0 *. L.fraction n r in
        {
          abbr = w.W.abbr;
          grid_pct = pct r.L.grid_red;
          tb_pct = pct r.L.tb_red;
          warp_pct = pct r.L.warp_red;
          vector_pct = 100.0 -. (100.0 *. L.fraction r.L.tb_red r);
        })
      Darsie_workloads.Registry.all
  in
  let avg f = Stats_util.mean (List.map f rows) in
  let average =
    {
      abbr = "AVG";
      grid_pct = avg (fun r -> r.grid_pct);
      tb_pct = avg (fun r -> r.tb_pct);
      warp_pct = avg (fun r -> r.warp_pct);
      vector_pct = avg (fun r -> r.vector_pct);
    }
  in
  let text =
    Render.table
      ~header:[ "App"; "Grid-red"; "TB-red"; "Warp-red"; "Vector" ]
      (List.map
         (fun r ->
           [
             r.abbr;
             Render.pct r.grid_pct;
             Render.pct r.tb_pct;
             Render.pct r.warp_pct;
             Render.pct r.vector_pct;
           ])
         (rows @ [ average ]))
  in
  (rows, average, text)

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

type fig2_row = {
  abbr : string;
  dim : string;
  uniform : float;
  affine : float;
  unstructured : float;
  non_redundant : float;
}

let fig2 ?(scale = 1) () =
  let rows =
    List.map
      (fun (w : W.t) ->
        let r = limit_of w ~scale in
        let frac n = L.fraction n r in
        {
          abbr = w.W.abbr;
          dim = (match w.W.dimensionality with W.D1 -> "1D" | W.D2 -> "2D");
          uniform = frac r.L.tb_uniform;
          affine = frac r.L.tb_affine;
          unstructured = frac r.L.tb_unstructured;
          non_redundant = 1.0 -. frac r.L.tb_red;
        })
      Darsie_workloads.Registry.all
  in
  let text =
    Render.table
      ~header:[ "App"; "Dim"; "Uniform"; "Affine"; "Unstructured"; "Non-red" ]
      (List.map
         (fun r ->
           [
             r.abbr;
             r.dim;
             Render.pct (100.0 *. r.uniform);
             Render.pct (100.0 *. r.affine);
             Render.pct (100.0 *. r.unstructured);
             Render.pct (100.0 *. r.non_redundant);
           ])
         rows)
  in
  (rows, text)

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  let p = Darsie_workloads.Matmul.workload.W.prepare ~scale:1 in
  let analysis =
    Darsie_compiler.Analysis.analyze p.W.launch.Darsie_isa.Kernel.kernel
  in
  Format.asprintf "%a" Darsie_compiler.Analysis.pp_markings analysis

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

type fig8_row = {
  abbr : string;
  uv : float;
  dac : float;
  darsie : float;
  darsie_ignore_store : float;
}

let split_dims (m : Suite.matrix) =
  List.partition
    (fun (a : Suite.app) -> a.Suite.workload.W.dimensionality = W.D1)
    m.Suite.apps

let fig8 (m : Suite.matrix) =
  let row (a : Suite.app) =
    let abbr = a.Suite.workload.W.abbr in
    {
      abbr;
      uv = Suite.speedup m abbr Suite.Uv;
      dac = Suite.speedup m abbr Suite.Dac_ideal;
      darsie = Suite.speedup m abbr Suite.Darsie;
      darsie_ignore_store = Suite.speedup m abbr Suite.Darsie_ignore_store;
    }
  in
  let one_d, two_d = split_dims m in
  let rows_1d = List.map row one_d and rows_2d = List.map row two_d in
  let gmean_of name rows =
    let g f = Stats_util.geomean (List.map f rows) in
    {
      abbr = name;
      uv = g (fun r -> r.uv);
      dac = g (fun r -> r.dac);
      darsie = g (fun r -> r.darsie);
      darsie_ignore_store = g (fun r -> r.darsie_ignore_store);
    }
  in
  let g1 = gmean_of "GMEAN-1D" rows_1d and g2 = gmean_of "GMEAN-2D" rows_2d in
  let all = rows_1d @ [ g1 ] @ rows_2d @ [ g2 ] in
  let text =
    Render.table
      ~header:[ "App"; "UV"; "DAC-IDEAL"; "DARSIE"; "DARSIE-IGNORE-STORE" ]
      (List.map
         (fun r ->
           [
             r.abbr;
             Render.f2 r.uv;
             Render.f2 r.dac;
             Render.f2 r.darsie;
             Render.f2 r.darsie_ignore_store;
           ])
         all)
  in
  (rows_1d @ rows_2d, g1, g2, text)

(* ------------------------------------------------------------------ *)
(* Figures 9 / 10                                                      *)
(* ------------------------------------------------------------------ *)

type reduction_row = {
  abbr : string;
  machine : string;
  uniform_pct : float;
  affine_pct : float;
  unstructured_pct : float;
  total_pct : float;
}

let reduction_rows (m : Suite.matrix) apps =
  List.concat_map
    (fun (a : Suite.app) ->
      let abbr = a.Suite.workload.W.abbr in
      let base = (Suite.get m abbr Suite.Base).Suite.gpu.Gpu.stats in
      List.map
        (fun machine ->
          let s = (Suite.get m abbr machine).Suite.gpu.Gpu.stats in
          let p n = Stats_util.percent n base.Stats.issued in
          {
            abbr;
            machine = Suite.machine_name machine;
            uniform_pct = p s.Stats.elim_uniform;
            affine_pct = p s.Stats.elim_affine;
            unstructured_pct = p s.Stats.elim_unstructured;
            total_pct =
              Stats_util.elimination_pct s ~baseline_issued:base.Stats.issued;
          })
        [ Suite.Uv; Suite.Dac_ideal; Suite.Darsie ])
    apps

let gmean_reduction rows machine =
  Stats_util.geomean
    (List.filter_map
       (fun r -> if r.machine = machine then Some r.total_pct else None)
       rows)

let render_reductions rows =
  let gm m = gmean_reduction rows m in
  Render.table
    ~header:[ "App"; "Machine"; "Uniform"; "Affine"; "Unstructured"; "Total" ]
    (List.map
       (fun r ->
         [
           r.abbr;
           r.machine;
           Render.pct r.uniform_pct;
           Render.pct r.affine_pct;
           Render.pct r.unstructured_pct;
           Render.pct r.total_pct;
         ])
       rows
    @ [
        [ "GMEAN"; "UV"; ""; ""; ""; Render.pct (gm "UV") ];
        [ "GMEAN"; "DAC-IDEAL"; ""; ""; ""; Render.pct (gm "DAC-IDEAL") ];
        [ "GMEAN"; "DARSIE"; ""; ""; ""; Render.pct (gm "DARSIE") ];
      ])

let fig9 m =
  let one_d, _ = split_dims m in
  let rows = reduction_rows m one_d in
  (rows, render_reductions rows)

let fig10 m =
  let _, two_d = split_dims m in
  let rows = reduction_rows m two_d in
  (rows, render_reductions rows)

(* ------------------------------------------------------------------ *)
(* Figure 11                                                           *)
(* ------------------------------------------------------------------ *)

type fig11_row = { abbr : string; uv : float; dac : float; darsie : float }

let fig11 (m : Suite.matrix) =
  let row (a : Suite.app) =
    let abbr = a.Suite.workload.W.abbr in
    {
      abbr;
      uv = Suite.energy_reduction m abbr Suite.Uv;
      dac = Suite.energy_reduction m abbr Suite.Dac_ideal;
      darsie = Suite.energy_reduction m abbr Suite.Darsie;
    }
  in
  let one_d, two_d = split_dims m in
  let rows_1d = List.map row one_d and rows_2d = List.map row two_d in
  let gmean_of name rows =
    let g f = Stats_util.geomean (List.map f rows) in
    {
      abbr = name;
      uv = g (fun r -> r.uv);
      dac = g (fun r -> r.dac);
      darsie = g (fun r -> r.darsie);
    }
  in
  let g1 = gmean_of "GMEAN-1D" rows_1d and g2 = gmean_of "GMEAN-2D" rows_2d in
  let text =
    Render.table
      ~header:[ "App"; "UV"; "DAC-IDEAL"; "DARSIE" ]
      (List.map
         (fun r ->
           [ r.abbr; Render.pct r.uv; Render.pct r.dac; Render.pct r.darsie ])
         (rows_1d @ [ g1 ] @ rows_2d @ [ g2 ]))
  in
  (rows_1d @ rows_2d, g1, g2, text)

(* ------------------------------------------------------------------ *)
(* Figure 12                                                           *)
(* ------------------------------------------------------------------ *)

type fig12_row = {
  abbr : string;
  darsie : float;
  darsie_no_cf_sync : float;
  silicon_sync : float;
}

let fig12 (m : Suite.matrix) =
  let row (a : Suite.app) =
    let abbr = a.Suite.workload.W.abbr in
    {
      abbr;
      darsie = Suite.speedup m abbr Suite.Darsie;
      darsie_no_cf_sync = Suite.speedup m abbr Suite.Darsie_no_cf_sync;
      silicon_sync = Suite.speedup m abbr Suite.Silicon_sync;
    }
  in
  let rows = List.map row m.Suite.apps in
  let g f = Stats_util.geomean (List.map f rows) in
  let gmean =
    {
      abbr = "GMEAN";
      darsie = g (fun r -> r.darsie);
      darsie_no_cf_sync = g (fun r -> r.darsie_no_cf_sync);
      silicon_sync = g (fun r -> r.silicon_sync);
    }
  in
  let text =
    Render.table
      ~header:[ "App"; "DARSIE"; "DARSIE-NO-CF-SYNC"; "SILICON-SYNC" ]
      (List.map
         (fun r ->
           [
             r.abbr;
             Render.f2 r.darsie;
             Render.f2 r.darsie_no_cf_sync;
             Render.f2 r.silicon_sync;
           ])
         (rows @ [ gmean ]))
  in
  (rows, gmean, text)

(* ------------------------------------------------------------------ *)
(* Redundancy coverage (skip ledger)                                   *)
(* ------------------------------------------------------------------ *)

type coverage_row = {
  abbr : string;
  eligible : int;
  captured : int;
  coverage : float;
}

let coverage (m : Suite.matrix) =
  let row (a : Suite.app) =
    let abbr = a.Suite.workload.W.abbr in
    let l = (Suite.get m abbr Suite.Darsie).Suite.gpu.Gpu.ledger in
    {
      abbr;
      eligible = Darsie_obs.Ledger.expected_total l;
      captured = Darsie_obs.Ledger.captured l;
      coverage = Darsie_obs.Ledger.coverage l;
    }
  in
  let rows = List.map row m.Suite.apps in
  let gmean = Stats_util.geomean (List.map (fun r -> r.coverage) rows) in
  let text =
    Render.table
      ~header:[ "App"; "Eligible"; "Captured"; "Coverage" ]
      (List.map
         (fun r ->
           [
             r.abbr;
             string_of_int r.eligible;
             string_of_int r.captured;
             Render.pct (100.0 *. r.coverage);
           ])
         rows
      @ [ [ "GMEAN"; ""; ""; Render.pct (100.0 *. gmean) ] ])
  in
  (rows, gmean, text)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Render.table
    ~header:[ "Name"; "Abbr"; "Suite"; "TB dim" ]
    (List.map
       (fun (w : W.t) -> [ w.W.full_name; w.W.abbr; w.W.suite; dim_string w ])
       Darsie_workloads.Registry.all)

let table2 ?(cfg = Config.default) () = Format.asprintf "%a@." Config.pp cfg

let table3 () =
  Render.table
    ~header:
      [ "Technique"; "Uniform red."; "Affine red."; "Unstructured red.";
        "Min. pipeline mods" ]
    [
      [ "WIR"; "yes"; "no"; "no"; "no" ];
      [ "G-Scalar"; "yes"; "no"; "no"; "no" ];
      [ "UV"; "yes"; "no"; "no"; "yes" ];
      [ "GP-SIMT"; "yes"; "yes"; "no"; "no" ];
      [ "DAC"; "yes"; "yes"; "no"; "no" ];
      [ "DARSIE"; "yes"; "yes"; "yes"; "yes" ];
    ]

let area ?cfg () =
  let a = Darsie_energy.Area.estimate ?cfg () in
  (a, Format.asprintf "%a@." Darsie_energy.Area.pp a)

let darsie_overhead (m : Suite.matrix) =
  let fracs =
    List.map
      (fun (a : Suite.app) ->
        let r = Suite.get m a.Suite.workload.W.abbr Suite.Darsie in
        100.0 *. Darsie_energy.Energy_model.overhead_fraction r.Suite.energy)
      m.Suite.apps
  in
  let avg = Stats_util.mean fracs in
  (avg, Printf.sprintf "DARSIE structure energy overhead: %.2f%% of total\n" avg)
