open Darsie_timing
module W = Darsie_workloads.Workload
module J = Darsie_obs.Json

type speedup = {
  abbr : string;
  base_cycles : int;
  darsie_cycles : int;
  speedup : float;
}

type cell = {
  issue_width : int;
  mshrs : int;
  speedups : speedup list;
  geomean : float;
}

type t = {
  scale : int;
  smem_banks : int;
  apps : string list;
  cells : cell list;
}

(* One cell = the DARSIE-vs-BASE comparison with both machines run at
   the same knob setting, so the speedup isolates the elimination
   mechanism, not the fetch-width or MLP change itself. Traces are
   machine- and knob-invariant, so the apps are loaded once and every
   cell replays the same traces. *)
let run ?(cfg = Config.default) ?(scale = 1)
    ?(apps = Darsie_workloads.Registry.all) ?(jobs = 1) ?cache ?check
    ?(issue_widths = [ 1; 2 ]) ?(mshr_limits = [ 1; 64 ])
    ?(smem_banks = 32) () =
  let loaded =
    Parallel.map ~jobs
      ~label:(fun w -> w.W.abbr)
      (fun w -> Suite.load_app ~scale ?cache w)
      apps
  in
  let points =
    List.concat_map
      (fun iw -> List.map (fun m -> (iw, m)) mshr_limits)
      issue_widths
  in
  let inputs =
    List.concat_map
      (fun point ->
        List.concat_map
          (fun app ->
            [ (point, app, Suite.Base); (point, app, Suite.Darsie) ])
          loaded)
      points
  in
  let full_runs =
    Parallel.map ~jobs
      ~label:(fun ((iw, m), app, machine) ->
        Printf.sprintf "%s/%s iw=%d mshrs=%d" app.Suite.workload.W.abbr
          (Suite.machine_name machine) iw m)
      (fun ((iw, m), app, machine) ->
        let cfg =
          { cfg with Config.issue_width = iw; mshrs = m; smem_banks }
        in
        Suite.run_app ~cfg app machine)
      inputs
  in
  (* Invariant checks run serially in the calling domain so callers may
     accumulate violations without synchronization. *)
  (match check with
  | None -> ()
  | Some f ->
    List.iter2
      (fun (_, app, _) r -> f app.Suite.workload.W.abbr r)
      inputs full_runs);
  let runs = List.map (fun r -> r.Suite.gpu.Gpu.cycles) full_runs in
  (* Results come back in input order: per point, per app, BASE then
     DARSIE. Re-fold them into cells. *)
  let take2 = function
    | b :: d :: rest -> ((b, d), rest)
    | _ -> invalid_arg "sensitivity: odd run count"
  in
  let cells, leftover =
    List.fold_left
      (fun (cells, rem) (iw, m) ->
        let speedups, rem =
          List.fold_left
            (fun (sps, rem) app ->
              let (b, d), rem = take2 rem in
              ( {
                  abbr = app.Suite.workload.W.abbr;
                  base_cycles = b;
                  darsie_cycles = d;
                  speedup = float_of_int b /. float_of_int d;
                }
                :: sps,
                rem ))
            ([], rem) loaded
        in
        let speedups = List.rev speedups in
        ( {
            issue_width = iw;
            mshrs = m;
            speedups;
            geomean =
              Stats_util.geomean (List.map (fun s -> s.speedup) speedups);
          }
          :: cells,
          rem ))
      ([], runs) points
  in
  assert (leftover = []);
  {
    scale;
    smem_banks;
    apps = List.map (fun a -> a.Suite.workload.W.abbr) loaded;
    cells = List.rev cells;
  }

let cell_label c = Printf.sprintf "iw=%d mshrs=%d" c.issue_width c.mshrs

(* One column per swept (issue_width, mshrs) point, one row per app,
   GMEAN last — DARSIE speedup over BASE at that machine setting. *)
let render t =
  let header = "App" :: List.map cell_label t.cells in
  let row abbr =
    abbr
    :: List.map
         (fun c ->
           let s = List.find (fun s -> s.abbr = abbr) c.speedups in
           Render.f2 s.speedup)
         t.cells
  in
  Printf.sprintf
    "DARSIE speedup over BASE vs fetch-bundle width and per-warp MSHRs\n\
     (smem_banks = %d, scale = %d)\n\n%s"
    t.smem_banks t.scale
    (Render.table ~header
       (List.map row t.apps
       @ [ "GMEAN" :: List.map (fun c -> Render.f2 c.geomean) t.cells ]))

let to_json t =
  J.Obj
    [
      ("kind", J.String "sensitivity_sweep");
      ("schema_version", J.Int Metrics.sensitivity_schema_version);
      ("scale", J.Int t.scale);
      ("smem_banks", J.Int t.smem_banks);
      ("apps", J.List (List.map (fun a -> J.String a) t.apps));
      ( "cells",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("issue_width", J.Int c.issue_width);
                   ("mshrs", J.Int c.mshrs);
                   ( "speedups",
                     J.List
                       (List.map
                          (fun s ->
                            J.Obj
                              [
                                ("app", J.String s.abbr);
                                ("base_cycles", J.Int s.base_cycles);
                                ("darsie_cycles", J.Int s.darsie_cycles);
                                ("speedup", J.Float s.speedup);
                              ])
                          c.speedups) );
                   ("geomean", J.Float c.geomean);
                 ])
             t.cells) );
    ]
