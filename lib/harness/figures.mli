(** One entry point per paper figure/table. Each returns structured rows
    (for tests) and a rendered text block (for the bench harness and CLI).
    The experiment-to-module map lives in DESIGN.md §4; paper-vs-measured
    numbers are recorded in EXPERIMENTS.md. *)

(** {1 Figure 1 — redundancy by thread-grouping level (limit study)} *)

type fig1_row = {
  abbr : string;
  grid_pct : float;
  tb_pct : float;
  warp_pct : float;
  vector_pct : float;  (** not TB-redundant *)
}

val fig1 : ?scale:int -> unit -> fig1_row list * fig1_row * string
(** Per-app rows, the all-app average (the paper's Figure 1 bars), and the
    rendered table. *)

(** {1 Figure 2 — dynamic TB-redundancy taxonomy} *)

type fig2_row = {
  abbr : string;
  dim : string;
  uniform : float;  (** fractions of executed instructions *)
  affine : float;
  unstructured : float;
  non_redundant : float;
}

val fig2 : ?scale:int -> unit -> fig2_row list * string

(** {1 Figure 6 — compiler markings for the MM kernel} *)

val fig6 : unit -> string

(** {1 Figure 8 — speedup over the baseline GPU} *)

type fig8_row = {
  abbr : string;
  uv : float;
  dac : float;
  darsie : float;
  darsie_ignore_store : float;
}

val fig8 : Suite.matrix -> fig8_row list * fig8_row * fig8_row * string
(** Rows, GMEAN-1D, GMEAN-2D, rendered table. *)

(** {1 Figures 9 and 10 — instruction reduction by taxonomy class} *)

type reduction_row = {
  abbr : string;
  machine : string;
  uniform_pct : float;
  affine_pct : float;
  unstructured_pct : float;
  total_pct : float;
}

val fig9 : Suite.matrix -> reduction_row list * string
(** 1D benchmarks. *)

val fig10 : Suite.matrix -> reduction_row list * string
(** 2D benchmarks. *)

(** {1 Figure 11 — energy reduction} *)

type fig11_row = { abbr : string; uv : float; dac : float; darsie : float }

val fig11 : Suite.matrix -> fig11_row list * fig11_row * fig11_row * string

(** {1 Figure 12 — synchronization effects} *)

type fig12_row = {
  abbr : string;
  darsie : float;
  darsie_no_cf_sync : float;
  silicon_sync : float;  (** baseline+barriers slowdown, right axis *)
}

val fig12 : Suite.matrix -> fig12_row list * fig12_row * string

(** {1 Redundancy coverage} *)

type coverage_row = {
  abbr : string;
  eligible : int;
      (** dynamic occurrences of statically DR/CR instructions *)
  captured : int;  (** of those, skipped or parked by DARSIE *)
  coverage : float;  (** captured / eligible; 1.0 when nothing eligible *)
}

val coverage : Suite.matrix -> coverage_row list * float * string
(** Per-app skip-ledger redundancy coverage on the DARSIE machine plus
    the geometric mean — how much of the statically eliminable work the
    runtime actually eliminated ([darsie experiment coverage]). *)

(** {1 Tables} *)

val table1 : unit -> string
(** Applications studied. *)

val table2 : ?cfg:Darsie_timing.Config.t -> unit -> string
(** Baseline GPU configuration. *)

val table3 : unit -> string
(** Qualitative comparison with related work. *)

val area : ?cfg:Darsie_timing.Config.t -> unit -> Darsie_energy.Area.t * string
(** §6.3 area estimate. *)

val darsie_overhead : Suite.matrix -> float * string
(** DARSIE's added-structure energy as a percent of total (paper: 0.95%),
    averaged over apps. *)
