(* The rendering layer of [darsie explain]: joins the runtime skip
   ledger (where every eligible dynamic occurrence of a DR/CR-marked
   instruction ended up) with the compiler's static story (which seeds
   and meets produced the marking, and how the launch resolved it), onto
   the same annotated kernel listing [darsie annotate] uses. *)

open Darsie_timing
module Obs = Darsie_obs
module C = Darsie_compiler

type row = {
  line : Listing.line;
  marking : string;  (** static marking: DR, CR, CRY or V *)
  shape : string;
  eligible : int;  (** dynamic fetch-slot occurrences the ledger expected *)
  fates : (string * int) list;  (** nonzero fates, taxonomy order *)
  captured_pct : float;  (** skipped + parked, as % of eligible *)
  verdict : string;  (** launch-time promotion verdict *)
  story : string;  (** Analysis.explain provenance *)
}

let marking_str analysis i =
  if not (C.Analysis.skippable analysis i) then "V"
  else C.Marking.red_to_string (C.Analysis.marking analysis i)

let rows ~(kinfo : Kinfo.t) (ledger : Obs.Ledger.t) =
  let analysis = kinfo.Kinfo.analysis in
  let promo = kinfo.Kinfo.promotion in
  List.map
    (fun (l : Listing.line) ->
      let i = l.Listing.idx in
      let eligible = Obs.Ledger.expected ledger ~pc:i in
      let fates =
        List.filter_map
          (fun f ->
            let c = Obs.Ledger.get ledger ~pc:i f in
            if c > 0 then Some (Obs.Ledger.fate_name f, c) else None)
          Obs.Ledger.all_fates
      in
      let captured =
        Obs.Ledger.get ledger ~pc:i Obs.Ledger.Skipped
        + Obs.Ledger.get ledger ~pc:i Obs.Ledger.Parked_waiting_leaderwb
      in
      {
        line = l;
        marking = marking_str analysis i;
        shape = C.Marking.shape_to_string (C.Analysis.shape analysis i);
        eligible;
        fates;
        captured_pct =
          (if eligible = 0 then 0.0
           else 100.0 *. float_of_int captured /. float_of_int eligible);
        verdict = C.Promotion.verdict promo i;
        story = C.Analysis.explain analysis i;
      })
    (Listing.lines kinfo.Kinfo.kernel)

let top_fate r =
  match
    List.fold_left
      (fun acc (name, c) ->
        match acc with
        | Some (_, bc) when bc >= c -> acc
        | _ -> Some (name, c))
      None r.fates
  with
  | Some (name, c) when r.eligible > 0 ->
    Printf.sprintf "%s %.1f%%" name
      (100.0 *. float_of_int c /. float_of_int r.eligible)
  | _ -> ""

let indent prefix s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l -> prefix ^ l)
  |> String.concat "\n"

let render ?(top = 0) ~app_name ~machine_name ~(kinfo : Kinfo.t) ledger () =
  let rs = rows ~kinfo ledger in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "darsie explain: %s on %s — %d static instructions, %d marked \
        DR/CR\n"
       app_name machine_name
       (Array.length kinfo.Kinfo.unit_of)
       (Array.fold_left
          (fun acc b -> if b then acc + 1 else acc)
          0 kinfo.Kinfo.marked_eligible));
  Buffer.add_string buf
    (Printf.sprintf
       "ledger: %d eligible dynamic occurrences, %d captured (skipped + \
        parked), coverage %.2f%%\n\n"
       (Obs.Ledger.expected_total ledger)
       (Obs.Ledger.captured ledger)
       (100.0 *. Obs.Ledger.coverage ledger));
  Buffer.add_string buf
    (Printf.sprintf "%-4s %10s %7s  %-28s %s\n" "mark" "eligible" "capt%"
       "top-fate" "instruction");
  List.iter
    (fun r ->
      let columns =
        if r.eligible = 0 then
          Printf.sprintf "%-4s %10s %7s  %-28s" r.marking "-" "-" ""
        else
          Printf.sprintf "%-4s %10d %7.2f  %-28s" r.marking r.eligible
            r.captured_pct (top_fate r)
      in
      Listing.emit buf ~columns r.line)
    rs;
  if top > 0 then begin
    let hot =
      List.filter (fun r -> r.eligible > 0) rs
      |> List.sort (fun a b -> compare b.eligible a.eligible)
    in
    let hot = List.filteri (fun i _ -> i < top) hot in
    Buffer.add_string buf
      (Printf.sprintf
         "\n%d most eligible instructions — full fate breakdown and static \
          story:\n"
         (List.length hot));
    List.iteri
      (fun rank r ->
        Buffer.add_string buf
          (Printf.sprintf "\n#%d  %4d: %s\n" (rank + 1) r.line.Listing.idx
             r.line.Listing.text);
        Buffer.add_string buf
          (Printf.sprintf "    launch: %s\n" r.verdict);
        Buffer.add_string buf (indent "    | " r.story);
        Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Printf.sprintf "    fates (%d eligible):\n" r.eligible);
        List.iter
          (fun (name, c) ->
            Buffer.add_string buf
              (Printf.sprintf "      %-24s %10d  (%.2f%%)\n" name c
                 (100.0 *. float_of_int c /. float_of_int r.eligible)))
          r.fates)
      hot
  end;
  Buffer.contents buf
