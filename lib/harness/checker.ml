module W = Darsie_workloads.Workload
module Interp = Darsie_emu.Interp
module Gpu = Darsie_timing.Gpu
module Json = Darsie_obs.Json
module Sim_error = Darsie_check.Sim_error
module Injector = Darsie_check.Injector
module Oracle = Darsie_check.Oracle

type timing_run = {
  machine : Suite.machine;
  outcome : (int, Sim_error.t) result;
}

type injection = { fault : Injector.fault; detected : bool; mismatch_count : int }

type app_report = {
  abbr : string;
  errors : Sim_error.t list;
  timing : timing_run list;
  oracle : Oracle.report option;
  injections : injection list;
  elapsed_s : float;
  replay : string;
}

type report = { apps : app_report list; elapsed_s : float }

let default_machines = [ Suite.Base; Suite.Darsie ]

(* The crash-isolation boundary: everything an app can throw — typed
   simulation errors, emulator faults, or any other exception — becomes a
   Sim_error value here instead of escaping the suite. *)
let capture f =
  match f () with
  | v -> Ok v
  | exception Sim_error.Simulation_error e -> Error e
  | exception Interp.Error e -> Error (Sim_error.of_emu e)
  | exception Interp.Fault m -> Error (Sim_error.Memory_fault { message = m })
  | exception e ->
    Error (Sim_error.Invariant_violation { message = Printexc.to_string e })

(* The exact command line that re-runs this app's checks in isolation;
   only non-default flags are spelled out, so a clean default run replays
   as just [darsie check <abbr>]. Budget and machine overrides are
   included too — a failure tripped by [--max-cycles] must replay with
   the budget that tripped it. *)
let replay_command ?cfg ?deadline ~machines ~scale ~oracle ~inject ~seed abbr =
  let module C = Darsie_timing.Config in
  let d = C.default in
  let cfg = Option.value cfg ~default:d in
  String.concat ""
    ([ "darsie check "; abbr ]
    @ (if machines = default_machines then []
       else
         List.map
           (fun m -> Printf.sprintf " -m %s" (Suite.machine_name m))
           machines)
    @ [
        (if scale <> 1 then Printf.sprintf " --scale %d" scale else "");
        (if not oracle then " --no-oracle" else "");
        (if inject > 0 then Printf.sprintf " --inject %d --seed %d" inject seed
         else "");
        (match deadline with
        | Some s -> Printf.sprintf " --deadline %g" s
        | None -> "");
        (if cfg.C.max_cycles <> d.C.max_cycles then
           Printf.sprintf " --max-cycles %d" cfg.C.max_cycles
         else "");
        (if cfg.C.watchdog_cycles <> d.C.watchdog_cycles then
           Printf.sprintf " --watchdog %d" cfg.C.watchdog_cycles
         else "");
        (if not cfg.C.fast_forward then " --no-fast-forward" else "");
      ])

let check_app ?cfg ?(scale = 1) ?(machines = default_machines) ?(oracle = true)
    ?(inject = 0) ?(seed = 1) ?deadline ?cache (w : W.t) =
  Darsie_telemetry.Telemetry.span
    ~args:[ ("app", Darsie_telemetry.Telemetry.Str w.W.abbr) ]
    "check.app"
  @@ fun () ->
  let t0 = Sys.time () in
  let errors = ref [] in
  let note e = errors := e :: !errors in
  (* functional run against the CPU reference *)
  (match
     capture (fun () ->
         let p = w.W.prepare ~scale in
         match Interp.run_result p.W.mem p.W.launch with
         | Error e -> Error (Sim_error.of_emu e)
         | Ok _ -> (
           match p.W.verify p.W.mem with
           | Ok () -> Ok ()
           | Error msg ->
             Error
               (Sim_error.Invariant_violation
                  {
                    message =
                      Printf.sprintf "%s: functional verify failed: %s" w.W.abbr
                        msg;
                  })))
   with
  | Ok (Ok ()) -> ()
  | Ok (Error e) | Error e -> note e);
  (* timing runs, each under the cycle/watchdog/wall budgets *)
  let timing =
    match capture (fun () -> Suite.load_app ~scale ?cache w) with
    | Error e ->
      note e;
      []
    | Ok app ->
      List.map
        (fun machine ->
          let outcome =
            match
              capture (fun () ->
                  Suite.run_app_checked ?cfg ?deadline app machine)
            with
            | Error e | Ok (Error e) -> Error e
            | Ok (Ok r) -> (
              match Gpu.check_attribution r.Suite.gpu with
              | Ok () -> Ok r.Suite.gpu.Gpu.cycles
              | Error msg ->
                Error
                  (Sim_error.Invariant_violation
                     {
                       message =
                         Printf.sprintf "%s/%s: %s" w.W.abbr
                           (Suite.machine_name machine)
                           msg;
                     }))
          in
          (match outcome with Error e -> note e | Ok _ -> ());
          { machine; outcome })
        machines
  in
  (* clean differential oracle *)
  let oracle_report =
    if not oracle then None
    else
      match capture (fun () -> Oracle.check ~scale w) with
      | Error e ->
        note e;
        None
      | Ok rep ->
        (match Oracle.to_error rep with Some e -> note e | None -> ());
        Some rep
  in
  (* seeded fault injection: every planned fault must be detected *)
  let injections =
    if inject <= 0 then []
    else
      match capture (fun () -> Oracle.candidates ~scale w) with
      | Error e ->
        note e;
        []
      | Ok cands ->
        List.map
          (fun fault ->
            match capture (fun () -> Oracle.check_fault ~scale w fault) with
            | Error _ ->
              (* the faulted replay died outright: that is a detection *)
              { fault; detected = true; mismatch_count = 0 }
            | Ok rep ->
              let detected = not (Oracle.passed rep) in
              if not detected then
                note
                  (Sim_error.Invariant_violation
                     {
                       message =
                         Printf.sprintf "%s: injected fault escaped the oracle (%s)"
                           w.W.abbr (Injector.fault_line fault);
                     });
              {
                fault;
                detected;
                mismatch_count = List.length rep.Oracle.mismatches;
              })
          (Injector.plan ~seed ~count:inject cands)
  in
  {
    abbr = w.W.abbr;
    errors = List.rev !errors;
    timing;
    oracle = oracle_report;
    injections;
    elapsed_s = Sys.time () -. t0;
    replay =
      replay_command ?cfg ?deadline ~machines ~scale ~oracle ~inject ~seed
        w.W.abbr;
  }

let check_suite ?cfg ?scale ?machines ?oracle ?inject ?seed ?deadline ?cache
    ?(jobs = 1) ?(apps = Darsie_workloads.Registry.all) () =
  let t0 = Sys.time () in
  let cfg = Option.map (Suite.divide_domains ~jobs) cfg in
  (* check_app never raises (capture is its whole point), so Parallel.map
     cannot re-raise here; it is used purely for the domain fan-out and
     the input-ordered merge. *)
  let reports =
    Parallel.map ~jobs
      ~label:(fun w -> w.W.abbr)
      (fun w ->
        check_app ?cfg ?scale ?machines ?oracle ?inject ?seed ?deadline ?cache w)
      apps
  in
  { apps = reports; elapsed_s = Sys.time () -. t0 }

let app_passed a = a.errors = []

let passed r = List.for_all app_passed r.apps

let worst_error r =
  List.fold_left
    (fun worst a ->
      List.fold_left
        (fun worst e ->
          match worst with
          | Some w when Sim_error.exit_code w >= Sim_error.exit_code e -> worst
          | _ -> Some e)
        worst a.errors)
    None r.apps

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun a ->
      let status = if app_passed a then "ok  " else "FAIL" in
      let timing =
        a.timing
        |> List.map (fun t ->
               match t.outcome with
               | Ok cycles ->
                 Printf.sprintf "%s %d cy" (Suite.machine_name t.machine) cycles
               | Error e ->
                 Printf.sprintf "%s %s"
                   (Suite.machine_name t.machine)
                   (Sim_error.kind_name e))
        |> String.concat ", "
      in
      let oracle =
        match a.oracle with
        | None -> ""
        | Some o when Oracle.passed o ->
          Printf.sprintf "; oracle ok (%d forwards / %d insts)" o.Oracle.forwards
            o.Oracle.warp_insts
        | Some o ->
          Printf.sprintf "; oracle FAILED (%d mismatches)"
            (List.length o.Oracle.mismatches)
      in
      let inj =
        match a.injections with
        | [] -> ""
        | l ->
          let det = List.length (List.filter (fun i -> i.detected) l) in
          Printf.sprintf "; %d/%d faults detected" det (List.length l)
      in
      line "%s %-4s %s%s%s (%.2fs)" status a.abbr timing oracle inj a.elapsed_s;
      List.iter (fun e -> line "       - %s" (Sim_error.summary e)) a.errors;
      if not (app_passed a) then line "       replay: %s" a.replay)
    r.apps;
  let ok = List.length (List.filter app_passed r.apps) in
  let injected, detected =
    List.fold_left
      (fun (i, d) a ->
        ( i + List.length a.injections,
          d + List.length (List.filter (fun x -> x.detected) a.injections) ))
      (0, 0) r.apps
  in
  line "check: %d/%d apps passed%s in %.2fs -> %s" ok (List.length r.apps)
    (if injected > 0 then
       Printf.sprintf ", %d/%d injected faults detected" detected injected
     else "")
    r.elapsed_s
    (if passed r then "PASS" else "FAIL");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON export (validated by Metrics.validate_check) *)

let timing_to_json t =
  let base =
    [
      ("machine", Json.String (Suite.machine_name t.machine));
      ("ok", Json.Bool (Result.is_ok t.outcome));
    ]
  in
  Json.Obj
    (base
    @
    match t.outcome with
    | Ok cycles -> [ ("cycles", Json.Int cycles) ]
    | Error e -> [ ("error", Sim_error.to_json e) ])

let injection_to_json i =
  Json.Obj
    [
      ("kind", Json.String (Injector.kind_name i.fault.Injector.kind));
      ("fault", Json.String (Injector.fault_line i.fault));
      ("detected", Json.Bool i.detected);
      ("mismatches", Json.Int i.mismatch_count);
    ]

let oracle_to_json (o : Oracle.report) =
  Json.Obj
    [
      ("passed", Json.Bool (Oracle.passed o));
      ("forwards", Json.Int o.Oracle.forwards);
      ("warp_insts", Json.Int o.Oracle.warp_insts);
      ("mismatches", Json.Int (List.length o.Oracle.mismatches));
    ]

let app_to_json a =
  Json.Obj
    [
      ("app", Json.String a.abbr);
      ("passed", Json.Bool (app_passed a));
      ("errors", Json.List (List.map Sim_error.to_json a.errors));
      ("timing", Json.List (List.map timing_to_json a.timing));
      ( "oracle",
        match a.oracle with None -> Json.Null | Some o -> oracle_to_json o );
      ("injections", Json.List (List.map injection_to_json a.injections));
      ("elapsed_s", Json.Float a.elapsed_s);
      ("replay", Json.String a.replay);
    ]

let to_json r =
  Json.Obj
    [
      ("kind", Json.String "check_report");
      ("schema_version", Json.Int Metrics.check_schema_version);
      ("passed", Json.Bool (passed r));
      ("apps", Json.List (List.map app_to_json r.apps));
      ("elapsed_s", Json.Float r.elapsed_s);
    ]
