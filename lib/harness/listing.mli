(** The kernel-listing renderer shared by [darsie annotate] and
    [darsie explain]: per-instruction disassembly lines plus the one
    place that knows how an annotated listing line is laid out. *)

type line = {
  idx : int;  (** static instruction index (byte PC = [8 * idx]) *)
  label : string option;  (** [Some "L<i>"] on branch targets *)
  text : string;  (** assembly text *)
}

val lines : Darsie_isa.Kernel.t -> line list
(** One {!line} per instruction in program order (wraps
    {!Darsie_isa.Printer.kernel_lines}). *)

val emit : Buffer.t -> columns:string -> line -> unit
(** Append one listing line: the branch-target label (when present) on
    its own line, then [columns], a space, the right-aligned instruction
    index, a colon and the assembly text. Every annotated-listing row in
    the toolchain goes through here. *)
