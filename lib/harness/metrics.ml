open Darsie_timing
module Obs = Darsie_obs
module J = Obs.Json

let schema_version = Obs.Export.schema_version

let json_of_attrib a = J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Obs.Attrib.to_assoc a))

let json_of_series (series : Obs.Series.t array) =
  if Array.length series = 0 then J.Null
  else
    let s0 = series.(0) in
    J.Obj
      [
        ("interval", J.Int (Obs.Series.interval s0));
        ("names", J.List (List.map (fun n -> J.String n) (Obs.Series.names s0)));
        ( "per_sm",
          J.List
            (Array.to_list
               (Array.map
                  (fun s ->
                    J.List
                      (List.map
                         (fun (p : Obs.Series.point) ->
                           J.Obj
                             [
                               ("cycle", J.Int p.Obs.Series.cycle);
                               ( "values",
                                 J.List
                                   (List.map
                                      (fun v -> J.Int v)
                                      (Array.to_list p.Obs.Series.values)) );
                             ])
                         (Obs.Series.points s)))
                  series)) );
      ]

let json_of_energy (e : Darsie_energy.Energy_model.breakdown) =
  let open Darsie_energy.Energy_model in
  J.Obj
    [
      ("frontend_pj", J.Float e.frontend);
      ("register_file_pj", J.Float e.register_file);
      ("execute_pj", J.Float e.execute);
      ("memory_pj", J.Float e.memory);
      ("static_pj", J.Float e.static);
      ("darsie_overhead_pj", J.Float e.darsie_overhead);
      ("total_pj", J.Float e.total);
    ]

(* schema_version 3 added this echo of the exact configuration the run
   used: the scheduler name, the two behaviour flags, and every integer
   knob from Config.knobs. Named "machine_config" (the "machine" field
   already carries the paper-variant string, e.g. "DARSIE"). *)
let json_of_machine_config (cfg : Config.t) =
  J.Obj
    (("scheduler",
      J.String (match cfg.Config.scheduler with
                | Config.Gto -> "GTO"
                | Config.Lrr -> "LRR"))
    :: ("fast_forward", J.Bool cfg.Config.fast_forward)
    :: ("sync_at_branches", J.Bool cfg.Config.sync_at_branches)
    :: List.map (fun (k, v) -> (k, J.Int v)) (Config.knobs cfg))

let of_run ~app ?(scale = 1) (r : Suite.run) =
  let gpu = r.Suite.gpu in
  let stats = gpu.Gpu.stats in
  J.Obj
    [
      ("schema_version", J.Int schema_version);
      ("app", J.String app);
      ("machine", J.String (Suite.machine_name r.Suite.machine));
      ("machine_config", json_of_machine_config r.Suite.cfg);
      ("scale", J.Int scale);
      ("num_sms", J.Int (Array.length gpu.Gpu.per_sm));
      ("cycles", J.Int gpu.Gpu.cycles);
      ("tbs_per_sm", J.Int gpu.Gpu.tbs_per_sm);
      ( "counters",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Stats_util.to_assoc stats))
      );
      ( "derived",
        J.Obj (List.map (fun (k, v) -> (k, J.Float v)) (Stats_util.derived stats))
      );
      ( "stall_attribution",
        J.Obj
          [
            ("total", json_of_attrib gpu.Gpu.attribution);
            ( "per_sm",
              J.List
                (Array.to_list
                   (Array.map json_of_attrib gpu.Gpu.per_sm_attribution)) );
          ] );
      ("series", json_of_series gpu.Gpu.series);
      ( "per_pc",
        match gpu.Gpu.pcstat with
        | Some p ->
          Obs.Pcstat.to_json ~skip_telemetry:gpu.Gpu.skip_telemetry p
        | None -> J.Null );
      ("skip_ledger", Obs.Ledger.to_json gpu.Gpu.ledger);
      ("energy", json_of_energy r.Suite.energy);
    ]

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e

let field name conv doc =
  match Option.bind (J.member name doc) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let attrib_sum = function
  | J.Obj fields ->
    List.fold_left
      (fun acc (_, v) -> match J.to_int v with Some i -> acc + i | None -> acc)
      0 fields
  | _ -> 0

(* Structural check of an exported metrics document: schema version,
   required blocks, and the stall-attribution invariant re-verified from
   the serialized numbers (so a file written by an older/broken binary
   fails loudly). *)
let validate doc =
  let* v = field "schema_version" J.to_int doc in
  let* () =
    (* Backward-tolerant: version-2 documents (pre machine_config, pre
       mem_struct bucket) still validate — the conservation arguments
       below hold for them unchanged. *)
    if v >= 2 && v <= schema_version then Ok ()
    else
      Error
        (Printf.sprintf "schema_version %d, expected 2..%d" v schema_version)
  in
  let* cycles = field "cycles" J.to_int doc in
  let* num_sms = field "num_sms" J.to_int doc in
  let* () =
    match J.member "counters" doc with
    | Some (J.Obj (_ :: _)) -> Ok ()
    | _ -> Error "missing counters object"
  in
  let* () =
    match J.member "app" doc, J.member "machine" doc with
    | Some (J.String _), Some (J.String _) -> Ok ()
    | _ -> Error "missing app/machine strings"
  in
  (* machine_config: required from schema_version 3 on, absent before.
     The echoed [num_sms] knob is cross-checked against the document's
     own top-level count so a spliced file fails loudly. *)
  let* () =
    match J.member "machine_config" doc with
    | None -> if v < 3 then Ok ()
              else Error "missing machine_config (schema_version 3 requires it)"
    | Some (J.Obj fields as mc) ->
      let* () =
        match J.member "scheduler" mc with
        | Some (J.String ("GTO" | "LRR")) -> Ok ()
        | _ -> Error "machine_config.scheduler is not \"GTO\"/\"LRR\""
      in
      let* () =
        match (J.member "fast_forward" mc, J.member "sync_at_branches" mc) with
        | Some (J.Bool _), Some (J.Bool _) -> Ok ()
        | _ -> Error "machine_config missing fast_forward/sync_at_branches"
      in
      let* () =
        List.fold_left
          (fun acc (k, jv) ->
            let* () = acc in
            match jv with
            | J.Int i when i >= 0 -> Ok ()
            | J.Int i ->
              Error (Printf.sprintf "machine_config.%s is negative (%d)" k i)
            | J.String _ | J.Bool _ -> Ok ()
            | _ -> Error (Printf.sprintf "machine_config.%s is ill-typed" k))
          (Ok ()) fields
      in
      (match J.member "num_sms" mc with
       | Some (J.Int n) when n = num_sms -> Ok ()
       | Some (J.Int n) ->
         Error
           (Printf.sprintf
              "machine_config.num_sms (%d) disagrees with the document's \
               num_sms (%d)"
              n num_sms)
       | _ -> Error "machine_config missing num_sms")
    | Some _ -> Error "machine_config is not an object"
  in
  let* attr =
    match J.member "stall_attribution" doc with
    | Some a -> Ok a
    | None -> Error "missing stall_attribution"
  in
  let* per_sm =
    match J.member "per_sm" attr with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing stall_attribution.per_sm"
  in
  let* () =
    if List.length per_sm = num_sms then Ok ()
    else Error "stall_attribution.per_sm length != num_sms"
  in
  let* () =
    let bad =
      List.filteri (fun _ a -> attrib_sum a <> cycles) per_sm
    in
    if bad = [] then Ok ()
    else
      Error
        (Printf.sprintf
           "per-SM stall attribution does not sum to cycles (%d SMs wrong)"
           (List.length bad))
  in
  let* total =
    match J.member "total" attr with
    | Some a -> Ok a
    | None -> Error "missing stall_attribution.total"
  in
  let* () =
    if attrib_sum total = num_sms * cycles then Ok ()
    else Error "total stall attribution != num_sms * cycles"
  in
  (* per_pc is additive but its key must be present from schema_version
     2 on (null when the run was not profiled — a version that claims a
     section may not silently omit it); when non-null its per-row stall
     charges plus the unattributed remainder must reproduce the total
     attribution — the serialized form of the Gpu.check_attribution
     invariant. *)
  let* () =
    match J.member "per_pc" doc with
    | None ->
      Error "missing per_pc key (schema_version >= 2 requires it; null when \
             the run was not profiled)"
    | Some J.Null -> Ok ()
    | Some per_pc ->
      let* n = field "n" J.to_int per_pc in
      let* rows =
        match J.member "rows" per_pc with
        | Some (J.List l) -> Ok l
        | _ -> Error "per_pc missing rows list"
      in
      let* () =
        if List.length rows = n then Ok ()
        else Error "per_pc.rows length != per_pc.n"
      in
      let row_sum acc r =
        match J.member "stall" r with
        | Some s -> acc + attrib_sum s
        | None -> acc
      in
      let charged = List.fold_left row_sum 0 rows in
      let un =
        match J.member "unattributed" per_pc with
        | Some u -> attrib_sum u
        | None -> 0
      in
      if charged + un = num_sms * cycles then Ok ()
      else
        Error
          (Printf.sprintf
             "per_pc stall charges (%d) + unattributed (%d) != num_sms * \
              cycles (%d)"
             charged un (num_sms * cycles))
  in
  (* The skip ledger is always on, so schema_version >= 2 requires the
     section outright, and the validator re-proves the conservation
     invariant from the serialized numbers — the Gpu.check_ledger
     argument, replayed over the file. *)
  match J.member "skip_ledger" doc with
  | None -> Error "missing skip_ledger section (schema_version >= 2 requires it)"
  | Some sl ->
    let* expected_total = field "expected_total" J.to_int sl in
    let* captured = field "captured" J.to_int sl in
    let* totals =
      match J.member "totals" sl with
      | Some (J.Obj l) -> Ok l
      | _ -> Error "skip_ledger missing totals object"
    in
    let int_of v = Option.value ~default:0 (J.to_int v) in
    let totals_sum = List.fold_left (fun acc (_, v) -> acc + int_of v) 0 totals in
    let* () =
      if totals_sum = expected_total then Ok ()
      else
        Error
          (Printf.sprintf
             "skip_ledger fate totals sum to %d, expected_total is %d"
             totals_sum expected_total)
    in
    let tot name =
      match List.assoc_opt name totals with Some v -> int_of v | None -> 0
    in
    let* () =
      if captured = tot "skipped" + tot "parked_waiting_leaderwb" then Ok ()
      else Error "skip_ledger captured != skipped + parked_waiting_leaderwb"
    in
    let* rows =
      match J.member "rows" sl with
      | Some (J.List l) -> Ok l
      | _ -> Error "skip_ledger missing rows list"
    in
    let* rows_expected =
      List.fold_left
        (fun acc r ->
          let* sum = acc in
          let* pc = field "pc" J.to_int r in
          let* expected = field "expected" J.to_int r in
          let fates =
            match r with
            | J.Obj fields ->
              List.fold_left
                (fun s (k, v) ->
                  if k = "pc" || k = "expected" then s else s + int_of v)
                0 fields
            | _ -> 0
          in
          if fates = expected then Ok (sum + expected)
          else
            Error
              (Printf.sprintf
                 "skip_ledger row pc %d: %d fates recorded for %d eligible \
                  occurrences"
                 pc fates expected))
        (Ok 0) rows
    in
    if rows_expected = expected_total then Ok ()
    else
      Error
        (Printf.sprintf
           "skip_ledger rows' eligible occurrences sum to %d, \
            expected_total is %d"
           rows_expected expected_total)

let validate_string s =
  let* doc =
    match J.of_string s with Ok d -> Ok d | Error e -> Error ("bad JSON: " ^ e)
  in
  validate doc

(* ------------------------------------------------------------------ *)
(* Check-report documents (darsie check --json)                        *)
(* ------------------------------------------------------------------ *)

let check_schema_version = 1

let to_bool = function J.Bool b -> Some b | _ -> None

(* Structural check of a check report, re-verifying the pass/fail logic
   from the serialized values: an app passed iff it has no errors, the
   report passed iff every app did, and every timing entry carries either
   cycles or a typed error. *)
let validate_check doc =
  let* () =
    match J.member "kind" doc with
    | Some (J.String "check_report") -> Ok ()
    | _ -> Error "kind is not \"check_report\""
  in
  let* v = field "schema_version" J.to_int doc in
  let* () =
    if v = check_schema_version then Ok ()
    else
      Error
        (Printf.sprintf "schema_version %d, expected %d" v check_schema_version)
  in
  let* passed = field "passed" to_bool doc in
  let* apps =
    match J.member "apps" doc with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing apps list"
  in
  let check_timing t =
    let* ok = field "ok" to_bool t in
    match (ok, J.member "cycles" t, J.member "error" t) with
    | true, Some (J.Int c), _ when c >= 0 -> Ok ()
    | false, _, Some (J.Obj _) -> Ok ()
    | _ -> Error "timing entry lacks cycles (ok) or error object (failed)"
  in
  let check_app a =
    let* _abbr =
      match J.member "app" a with
      | Some (J.String s) -> Ok s
      | _ -> Error "app entry missing abbreviation"
    in
    let* app_passed = field "passed" to_bool a in
    let* errors =
      match J.member "errors" a with
      | Some (J.List l) -> Ok l
      | _ -> Error "app entry missing errors list"
    in
    let* () =
      if app_passed = (errors = []) then Ok ()
      else Error "app passed flag inconsistent with its errors list"
    in
    let* timing =
      match J.member "timing" a with
      | Some (J.List l) -> Ok l
      | _ -> Error "app entry missing timing list"
    in
    let* () =
      List.fold_left (fun acc t -> let* () = acc in check_timing t) (Ok ()) timing
    in
    Ok app_passed
  in
  let* all_passed =
    List.fold_left
      (fun acc a ->
        let* all = acc in
        let* p = check_app a in
        Ok (all && p))
      (Ok true) apps
  in
  if passed = all_passed then Ok ()
  else Error "report passed flag inconsistent with its apps"

let validate_check_string s =
  let* doc =
    match J.of_string s with Ok d -> Ok d | Error e -> Error ("bad JSON: " ^ e)
  in
  validate_check doc

(* ------------------------------------------------------------------ *)
(* Fuzz-campaign documents (darsie fuzz --json)                        *)
(* ------------------------------------------------------------------ *)

let fuzz_schema_version = 1

(* Structural check of a fuzz-campaign report, re-verifying the
   bookkeeping from the serialized values: style counts sum to the
   kernel count, clean campaigns account every kernel as either passed
   or failed, shrinking never grows a counterexample, and inject-mode
   witnesses carry a site and a non-empty kernel when detected. *)
let validate_fuzz doc =
  let* () =
    match J.member "kind" doc with
    | Some (J.String "fuzz_campaign") -> Ok ()
    | _ -> Error "kind is not \"fuzz_campaign\""
  in
  let* v = field "schema_version" J.to_int doc in
  let* () =
    if v = fuzz_schema_version then Ok ()
    else
      Error
        (Printf.sprintf "schema_version %d, expected %d" v fuzz_schema_version)
  in
  let* count = field "count" J.to_int doc in
  let* kernels = field "kernels" J.to_int doc in
  let* () =
    if kernels = count then Ok ()
    else Error (Printf.sprintf "kernels %d does not match count %d" kernels count)
  in
  let* passed = field "passed" J.to_int doc in
  let* inject = field "inject" to_bool doc in
  let* style_sum =
    match J.member "styles" doc with
    | Some (J.Obj fields) ->
      Ok
        (List.fold_left
           (fun acc (_, v) ->
             match J.to_int v with Some i -> acc + i | None -> acc)
           0 fields)
    | _ -> Error "missing styles object"
  in
  let* () =
    if style_sum = kernels then Ok ()
    else
      Error
        (Printf.sprintf "style counts sum to %d, expected %d kernels" style_sum
           kernels)
  in
  let* totals =
    match J.member "totals" doc with
    | Some (J.Obj _ as t) -> Ok t
    | _ -> Error "missing totals object"
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        let* n = field name J.to_int totals in
        if n >= 0 then Ok ()
        else Error (Printf.sprintf "negative total %S" name))
      (Ok ())
      [ "warp_insts"; "forwards"; "skips"; "cycles" ]
  in
  let* failures =
    match J.member "failures" doc with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing failures list"
  in
  let* () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        let* index = field "index" J.to_int f in
        let* () =
          if index >= 0 && index < count then Ok ()
          else Error (Printf.sprintf "failure index %d out of range" index)
        in
        let* before = field "items_before" J.to_int f in
        let* after = field "items_after" J.to_int f in
        let* () =
          if after <= before then Ok ()
          else
            Error
              (Printf.sprintf "failure %d shrank %d items to %d (grew)" index
                 before after)
        in
        match J.member "replay" f with
        | Some (J.String s) when s <> "" -> Ok ()
        | _ -> Error (Printf.sprintf "failure %d lacks a replay command" index))
      (Ok ()) failures
  in
  let* injected =
    match J.member "injected" doc with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing injected list"
  in
  let* () =
    if (not inject) && injected <> [] then
      Error "clean campaign carries injected witnesses"
    else if inject && failures <> [] then
      Error "inject campaign carries clean-mode failures"
    else Ok ()
  in
  let* () =
    if inject || passed + List.length failures = kernels then Ok ()
    else
      Error
        (Printf.sprintf "%d passed + %d failures does not cover %d kernels"
           passed (List.length failures) kernels)
  in
  List.fold_left
    (fun acc w ->
      let* () = acc in
      let* fault =
        match J.member "fault" w with
        | Some (J.String s) -> Ok s
        | _ -> Error "witness lacks a fault kind"
      in
      let* detected = field "detected" to_bool w in
      if not detected then Ok ()
      else
        let* _ = field "index" J.to_int w in
        let* insts = field "instructions" J.to_int w in
        let* () =
          if insts >= 1 then Ok ()
          else Error (Printf.sprintf "witness %s has an empty kernel" fault)
        in
        match J.member "site" w with
        | Some (J.Obj _) -> Ok ()
        | _ -> Error (Printf.sprintf "witness %s lacks an injection site" fault))
    (Ok ()) injected

let validate_fuzz_string s =
  let* doc =
    match J.of_string s with Ok d -> Ok d | Error e -> Error ("bad JSON: " ^ e)
  in
  validate_fuzz doc

(* ------------------------------------------------------------------ *)
(* Sensitivity-sweep documents (darsie experiment sensitivity --json)  *)
(* ------------------------------------------------------------------ *)

let sensitivity_schema_version = 1

let to_float = function
  | J.Float f -> Some f
  | J.Int i -> Some (float_of_int i)
  | _ -> None

(* Two serialized floats agree up to printing/re-parsing noise. *)
let close a b =
  Float.abs (a -. b)
  <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* Structural check of a sensitivity-sweep document, re-deriving every
   derived number from the serialized raw cycles: each app's speedup
   must equal base_cycles / darsie_cycles, each cell's geomean must
   equal the geomean of its app speedups, each cell must cover exactly
   the apps the header lists, and the swept knob values must be sane
   (issue_width >= 1, mshrs >= 0, smem_banks >= 0). *)
let validate_sensitivity doc =
  let* () =
    match J.member "kind" doc with
    | Some (J.String "sensitivity_sweep") -> Ok ()
    | _ -> Error "kind is not \"sensitivity_sweep\""
  in
  let* v = field "schema_version" J.to_int doc in
  let* () =
    if v = sensitivity_schema_version then Ok ()
    else
      Error
        (Printf.sprintf "schema_version %d, expected %d" v
           sensitivity_schema_version)
  in
  let* _scale = field "scale" J.to_int doc in
  let* banks = field "smem_banks" J.to_int doc in
  let* () =
    if banks >= 0 then Ok ()
    else Error (Printf.sprintf "negative smem_banks (%d)" banks)
  in
  let* apps =
    match J.member "apps" doc with
    | Some (J.List l) ->
      List.fold_left
        (fun acc a ->
          let* names = acc in
          match a with
          | J.String s -> Ok (s :: names)
          | _ -> Error "apps entry is not a string")
        (Ok []) l
      |> Result.map List.rev
    | _ -> Error "missing apps list"
  in
  let* () = if apps <> [] then Ok () else Error "empty apps list" in
  let* cells =
    match J.member "cells" doc with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing cells list"
  in
  let* () = if cells <> [] then Ok () else Error "empty cells list" in
  List.fold_left
    (fun acc cell ->
      let* () = acc in
      let* iw = field "issue_width" J.to_int cell in
      let* m = field "mshrs" J.to_int cell in
      let* () =
        if iw >= 1 then Ok ()
        else Error (Printf.sprintf "cell issue_width %d < 1" iw)
      in
      let* () =
        if m >= 0 then Ok ()
        else Error (Printf.sprintf "cell mshrs %d < 0" m)
      in
      let label = Printf.sprintf "cell issue_width=%d mshrs=%d" iw m in
      let* rows =
        match J.member "speedups" cell with
        | Some (J.List l) -> Ok l
        | _ -> Error (label ^ " missing speedups list")
      in
      let* speedups =
        List.fold_left
          (fun acc r ->
            let* sps = acc in
            let* app =
              match J.member "app" r with
              | Some (J.String s) -> Ok s
              | _ -> Error (label ^ ": speedup row missing app string")
            in
            let* base = field "base_cycles" J.to_int r in
            let* darsie = field "darsie_cycles" J.to_int r in
            let* sp = field "speedup" to_float r in
            let* () =
              if base > 0 && darsie > 0 then Ok ()
              else
                Error
                  (Printf.sprintf "%s: app %s has non-positive cycles" label
                     app)
            in
            if close sp (float_of_int base /. float_of_int darsie) then
              Ok ((app, sp) :: sps)
            else
              Error
                (Printf.sprintf
                   "%s: app %s speedup %g does not equal %d / %d" label app
                   sp base darsie))
          (Ok []) rows
        |> Result.map List.rev
      in
      let* () =
        if List.map fst speedups = apps then Ok ()
        else Error (label ^ " does not cover exactly the listed apps")
      in
      let* g = field "geomean" to_float cell in
      if close g (Stats_util.geomean (List.map snd speedups)) then Ok ()
      else
        Error
          (Printf.sprintf
             "%s: geomean %g does not reproduce from the app speedups" label g))
    (Ok ()) cells

let validate_sensitivity_string s =
  let* doc =
    match J.of_string s with Ok d -> Ok d | Error e -> Error ("bad JSON: " ^ e)
  in
  validate_sensitivity doc

(* ------------------------------------------------------------------ *)
(* Host-telemetry documents (--telemetry FILE)                         *)
(* ------------------------------------------------------------------ *)

let telemetry_schema_version = Darsie_telemetry.Host_trace.schema_version

(* Structural check of a host_telemetry section (or of a full telemetry
   document carrying one), re-proving the self-time accounting from the
   serialized integers: every phase's self wall is within [0, total],
   every domain's busy+idle reproduces the snapshot wall, and the sum of
   phase self-times equals the sum of domain busy times exactly — the
   integer identity the monotone span clock guarantees at capture. *)
let validate_telemetry doc =
  let section =
    match J.member "host_telemetry" doc with Some s -> s | None -> doc
  in
  let* () =
    (match J.member "traceEvents" doc with
    | None | Some (J.List _) -> Ok ()
    | Some _ -> Error "traceEvents is not a list")
  in
  let* () =
    match J.member "kind" section with
    | Some (J.String "host_telemetry") -> Ok ()
    | _ -> Error "kind is not \"host_telemetry\""
  in
  let* v = field "schema_version" J.to_int section in
  let* () =
    if v = telemetry_schema_version then Ok ()
    else
      Error
        (Printf.sprintf "schema_version %d, expected %d" v
           telemetry_schema_version)
  in
  let* wall_ns = field "wall_ns" J.to_int section in
  let* () = if wall_ns >= 0 then Ok () else Error "negative wall_ns" in
  let* phases =
    match J.member "phases" section with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing phases list"
  in
  let* self_sum =
    List.fold_left
      (fun acc p ->
        let* sum = acc in
        let* name =
          match J.member "name" p with
          | Some (J.String s) -> Ok s
          | _ -> Error "phase entry missing name"
        in
        let* count = field "count" J.to_int p in
        let* total = field "total_ns" J.to_int p in
        let* self = field "self_ns" J.to_int p in
        if count < 1 then
          Error (Printf.sprintf "phase %S has count %d" name count)
        else if self < 0 || self > total then
          Error
            (Printf.sprintf
               "phase %S breaks the self-time bound: self %d ns not in [0, \
                total %d ns]"
               name self total)
        else Ok (sum + self))
      (Ok 0) phases
  in
  let* domains =
    match J.member "domains" section with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing domains list"
  in
  let* busy_sum =
    List.fold_left
      (fun acc d ->
        let* sum = acc in
        let* id = field "id" J.to_int d in
        let* busy = field "busy_ns" J.to_int d in
        let* idle = field "idle_ns" J.to_int d in
        if busy < 0 || idle < 0 then
          Error (Printf.sprintf "domain %d has negative busy/idle" id)
        else if busy + idle <> wall_ns then
          Error
            (Printf.sprintf
               "domain %d: busy %d + idle %d != wall %d ns" id busy idle
               wall_ns)
        else Ok (sum + busy))
      (Ok 0) domains
  in
  let* () =
    if self_sum = busy_sum then Ok ()
    else
      Error
        (Printf.sprintf
           "phase self-times sum to %d ns but domain busy times sum to %d ns"
           self_sum busy_sum)
  in
  match J.member "counters" section with
  | Some (J.Obj fields) ->
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        match J.to_int v with
        | Some i when i >= 0 -> Ok ()
        | Some i -> Error (Printf.sprintf "counter %S is negative (%d)" k i)
        | None -> Error (Printf.sprintf "counter %S is not an integer" k))
      (Ok ()) fields
  | _ -> Error "missing counters object"

let validate_telemetry_string s =
  let* doc =
    match J.of_string s with Ok d -> Ok d | Error e -> Error ("bad JSON: " ^ e)
  in
  validate_telemetry doc

let write_file path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.pretty_to_string doc);
      output_char oc '\n')
