(** The fidelity sensitivity sweep ([darsie experiment sensitivity]).

    Runs the DARSIE-vs-BASE comparison at every swept machine point —
    the cross product of fetch-bundle widths ([Config.issue_width]) and
    per-warp MSHR limits ([Config.mshrs]), with bank-conflict replay on
    ([Config.smem_banks]) — and reports how the elimination speedup
    responds to frontend width and memory-level parallelism. Both
    machines in a cell run at the same knob setting, so each speedup
    isolates the DARSIE mechanism at that design point. *)

(** One app's DARSIE-vs-BASE comparison inside a cell. *)
type speedup = {
  abbr : string;
  base_cycles : int;
  darsie_cycles : int;
  speedup : float;  (** [base_cycles /. darsie_cycles] *)
}

(** One swept machine point. *)
type cell = {
  issue_width : int;
  mshrs : int;
  speedups : speedup list;  (** in [t.apps] order *)
  geomean : float;
}

type t = {
  scale : int;
  smem_banks : int;  (** fixed across the sweep *)
  apps : string list;  (** paper order *)
  cells : cell list;  (** issue_widths-major, mshr_limits-minor *)
}

val run :
  ?cfg:Darsie_timing.Config.t ->
  ?scale:int ->
  ?apps:Darsie_workloads.Workload.t list ->
  ?jobs:int ->
  ?cache:Darsie_trace.Cache.t ->
  ?check:(string -> Suite.run -> unit) ->
  ?issue_widths:int list ->
  ?mshr_limits:int list ->
  ?smem_banks:int ->
  unit ->
  t
(** Run the sweep. Defaults: every registry app at scale 1,
    [issue_widths = [1; 2]], [mshr_limits = [1; 64]]
    (the workloads' per-warp memory-level parallelism is naturally low
    — mostly dependent access chains — so only the single-MSHR point
    binds, and 64 never does),
    [smem_banks = 32], serial. Apps are loaded (and traces generated or
    cache-fetched) once; every cell replays the same traces. [jobs]
    fans both loading and the cell runs over domains; results are
    committed in input order, so the sweep is byte-identical for any
    job count.

    @raise Darsie_check.Sim_error.Simulation_error on a failing run. *)

val render : t -> string
(** Text table: one row per app plus GMEAN, one column per cell. *)

val to_json : t -> Darsie_obs.Json.t
(** The versioned [sensitivity_sweep] document;
    {!Metrics.validate_sensitivity} re-derives every number in it. *)
