(** Numeric helpers and {!Darsie_timing.Stats} projections shared by the
    figure renderers and the machine-readable exporters. *)

val geomean : float list -> float
(** Geometric mean; non-positive inputs are clamped to [1e-4] (the paper
    reports geometric means of percentages that can be ~0 for UV). Empty
    input yields 1. *)

val mean : float list -> float

val percent : int -> int -> float
(** [percent part whole] = 100 * part/whole (0 when whole = 0). *)

val ratio : int -> int -> float
(** [part / whole] as a float (0 when whole = 0). *)

val to_assoc : Darsie_timing.Stats.t -> (string * int) list
(** Every counter in a stable order — the exporters' schema depends on
    these names staying put. *)

val sum : Darsie_timing.Stats.t list -> Darsie_timing.Stats.t
(** Merge with {!Darsie_timing.Stats.add} semantics (cycles take the
    max, everything else sums) into a fresh record. *)

val ipc : Darsie_timing.Stats.t -> float
(** Issued warp instructions per cycle. *)

val l1_miss_rate : Darsie_timing.Stats.t -> float

val fetch_skip_fraction : Darsie_timing.Stats.t -> float
(** Fraction of the front-end instruction stream eliminated before
    fetch: [skipped / (fetched + skipped)]. *)

val elimination_pct : Darsie_timing.Stats.t -> baseline_issued:int -> float
(** Percent of the baseline's issued instructions this run eliminated
    (pre-fetch skips + issue drops) — Figures 9/10's metric. *)

val derived : Darsie_timing.Stats.t -> (string * float) list
(** The derived-metric block of the JSON export. *)
