open Darsie_timing

type point = {
  value : int;
  speedup : float;
  reduction_pct : float;
  sync_stalls : int;
}

type sweep = { parameter : string; app : string; points : point list }

let measure (app : Suite.app) cfg =
  let base = Gpu.run_exn ~cfg Engine.base_factory app.Suite.kinfo app.Suite.trace in
  let d =
    Gpu.run_exn ~cfg
      (Darsie_core.Darsie_engine.factory ())
      app.Suite.kinfo app.Suite.trace
  in
  ( float_of_int base.Gpu.cycles /. float_of_int d.Gpu.cycles,
    Stats_util.percent
      (Stats.total_eliminated d.Gpu.stats)
      base.Gpu.stats.Stats.issued,
    d.Gpu.stats.Stats.darsie_sync_stalls )

let sweep_of ~parameter ~cfg_of ?(values = []) (app : Suite.app) =
  let points =
    List.map
      (fun v ->
        let speedup, reduction_pct, sync_stalls = measure app (cfg_of v) in
        { value = v; speedup; reduction_pct; sync_stalls })
      values
  in
  { parameter; app = app.Suite.workload.Darsie_workloads.Workload.abbr; points }

let sweep_skip_entries ?(values = [ 1; 2; 4; 8; 16 ]) app =
  sweep_of ~parameter:"skip entries/TB"
    ~cfg_of:(fun v -> { Config.default with Config.skip_entries_per_tb = v })
    ~values app

let sweep_coalescer_ports ?(values = [ 1; 2; 4; 8 ]) app =
  sweep_of ~parameter:"coalescer ports"
    ~cfg_of:(fun v -> { Config.default with Config.coalescer_ports = v })
    ~values app

let sweep_rename_regs ?(values = [ 4; 8; 16; 32; 64 ]) app =
  sweep_of ~parameter:"rename regs/TB"
    ~cfg_of:(fun v -> { Config.default with Config.rename_regs_per_tb = v })
    ~values app

let sweep_max_chain ?(values = [ 1; 2; 4; 8; 16 ]) app =
  sweep_of ~parameter:"max skips/warp/cycle"
    ~cfg_of:(fun v ->
      { Config.default with Config.max_skips_per_warp_cycle = v })
    ~values app

let scheduler_comparison apps =
  List.map
    (fun (app : Suite.app) ->
      let run sched =
        let cfg = { Config.default with Config.scheduler = sched } in
        Gpu.ipc (Gpu.run_exn ~cfg Engine.base_factory app.Suite.kinfo app.Suite.trace)
      in
      ( app.Suite.workload.Darsie_workloads.Workload.abbr,
        run Config.Gto,
        run Config.Lrr ))
    apps

let render_schedulers rows =
  "baseline IPC by warp scheduler:\n"
  ^ Render.table
      ~header:[ "App"; "GTO"; "LRR"; "GTO/LRR" ]
      (List.map
         (fun (abbr, gto, lrr) ->
           [ abbr; Render.f2 gto; Render.f2 lrr; Render.f2 (gto /. lrr) ])
         rows)

let mechanism_efficiency apps =
  List.map
    (fun (app : Suite.app) ->
      let base =
        Gpu.run_exn Engine.base_factory app.Suite.kinfo app.Suite.trace
      in
      let darsie =
        Gpu.run_exn
          (Darsie_core.Darsie_engine.factory ())
          app.Suite.kinfo app.Suite.trace
      in
      let ideal =
        Gpu.run_exn Darsie_baselines.Tb_ideal.factory app.Suite.kinfo
          app.Suite.trace
      in
      let sp r = float_of_int base.Gpu.cycles /. float_of_int r.Gpu.cycles in
      let capture =
        if ideal.Gpu.stats.Stats.skipped_prefetch = 0 then 1.0
        else
          float_of_int darsie.Gpu.stats.Stats.skipped_prefetch
          /. float_of_int ideal.Gpu.stats.Stats.skipped_prefetch
      in
      ( app.Suite.workload.Darsie_workloads.Workload.abbr,
        sp darsie,
        sp ideal,
        capture ))
    apps

let render_efficiency rows =
  "DARSIE vs the TB-IDEAL elimination bound:\n"
  ^ Render.table
      ~header:[ "App"; "DARSIE"; "TB-IDEAL"; "skip capture" ]
      (List.map
         (fun (abbr, d, i, c) ->
           [ abbr; Render.f2 d; Render.f2 i; Render.pct (100.0 *. c) ])
         rows)

let run_default () =
  let mm = Suite.load_app Darsie_workloads.Matmul.workload in
  let conv = Suite.load_app Darsie_workloads.Conv_tex.workload in
  [
    sweep_skip_entries mm;
    sweep_rename_regs mm;
    sweep_coalescer_ports conv;
    sweep_max_chain conv;
  ]

let render s =
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.value;
          Render.f2 p.speedup;
          Render.pct p.reduction_pct;
          string_of_int p.sync_stalls;
        ])
      s.points
  in
  Printf.sprintf "%s on %s:\n%s" s.parameter s.app
    (Render.table
       ~header:[ s.parameter; "speedup"; "elim"; "sync stalls" ]
       rows)
