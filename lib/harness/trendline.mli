(** Persistent bench trajectory: one JSON record per bench run and the
    statistical regression gate behind [darsie bench-compare].

    Simulated metrics (per-app cycles and IPC, figure-8 speedup
    geomeans) are bit-deterministic, so the gate holds them to a tight
    relative threshold; wall-clock throughput is summarized min-of-N at
    record time and compared against a loose one. *)

val schema_version : int
(** Version of the bench record; [of_json] rejects any other value. *)

type record = {
  date : string;  (** ISO date of the run (caller-supplied) *)
  label : string;  (** free-form: git rev, host, "ci" ... *)
  wall_s : float;  (** min-of-N wall time of the matrix build, seconds *)
  repeats : int;  (** the N of min-of-N *)
  cycles_per_sec : float;  (** simulated cycles per wall second *)
  gmeans : (string * float) list;  (** fig8 speedup geomeans *)
  per_app_ipc : (string * float) list;  (** DARSIE IPC per app *)
  per_app_cycles : (string * int) list;  (** DARSIE cycles per app *)
  per_app_coverage : (string * float) list;
      (** DARSIE skip-ledger redundancy coverage (captured ÷ statically
          eliminable) per app; [[]] when the record predates the ledger *)
  host_phases : (string * float) list;
      (** per-phase host self wall (seconds) from the telemetry
          snapshot; [[]] when the record predates host telemetry.
          Wall-clock quantities, gated at {!wall_threshold} *)
  cache_hit_rate : float option;
      (** trace-cache hits ÷ lookups; [None] when the record predates
          host telemetry or the run made no lookups. Compared (at
          {!det_threshold}) only when both records carry it *)
}

val measure : ?clock:(unit -> float) -> repeats:int -> (unit -> 'a) -> 'a * float
(** Run the thunk [repeats] times; return the last result and the
    {e minimum} elapsed time — the min-of-N noise filter. [clock]
    defaults to [Sys.time] (processor seconds).

    @raise Invalid_argument when [repeats < 1]. *)

val of_matrix :
  ?host_phases:(string * float) list ->
  ?cache_hit_rate:float ->
  date:string ->
  label:string ->
  wall_s:float ->
  repeats:int ->
  Suite.matrix ->
  record
(** Project a bench record out of an evaluation matrix. [host_phases]
    and [cache_hit_rate] come from the caller's telemetry snapshot
    (default: absent, matching pre-telemetry records). *)

val to_json : record -> Darsie_obs.Json.t
(** Serialize as a versioned ["bench_record"] object
    (docs/metrics-schema.md section 3). *)

val of_json : Darsie_obs.Json.t -> (record, string) result
(** Parse a record back; every field is required — except
    [per_app_coverage] (reads as [[]] when absent), [host_phases]
    (likewise) and [cache_hit_rate] (reads as [None]), so baselines
    written before those sections existed keep loading — and the schema
    version must match {!schema_version}. *)

val write_file : string -> record -> unit
(** {!to_json} pretty-printed to [path] with a trailing newline. *)

val read_file : string -> (record, string) result
(** Read and {!of_json} a record file; [Error] covers both I/O and
    parse/validation failures. *)

(** {1 Regression gate} *)

type verdict = {
  metric : string;
  baseline : float;
  current : float;
  rel_change : float;
      (** signed, normalized so positive always means "worse" *)
  threshold : float;
  regressed : bool;
}

val det_threshold : float
(** Default relative threshold for deterministic metrics (0.5%). *)

val wall_threshold : float
(** Default relative threshold for wall-clock metrics (25%). *)

val compare_records :
  ?det_threshold:float ->
  ?wall_threshold:float ->
  baseline:record ->
  current:record ->
  unit ->
  verdict list
(** One verdict per metric present in both records. Metrics only one
    record has (an app added or removed) are skipped — the gate compares
    trajectories, it does not diff schemas. *)

val regressions : verdict list -> verdict list
(** Just the verdicts with [regressed = true]. *)

val render_verdicts : verdict list -> string
(** Column-aligned human-readable table. *)
