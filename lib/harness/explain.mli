(** The rendering layer of [darsie explain]: the runtime skip ledger
    joined with the compiler's static story on an annotated kernel
    listing (shared with [darsie annotate] via {!Listing}).

    For every static instruction the row carries the static marking
    (DR/CR/CRY/V with shape), the launch-time promotion verdict, the
    dataflow provenance story ({!Darsie_compiler.Analysis.explain}), and
    the dynamic fate distribution of its eligible fetch-slot occurrences
    from the run's {!Darsie_obs.Ledger}. *)

type row = {
  line : Listing.line;
  marking : string;  (** static marking: ["DR"], ["CR"], ["CRY"] or ["V"] *)
  shape : string;
  eligible : int;
      (** dynamic occurrences the ledger counted as statically eligible *)
  fates : (string * int) list;
      (** nonzero fate counts, in taxonomy order; sums to [eligible] by
          the conservation invariant *)
  captured_pct : float;
      (** skipped + parked occurrences as a percentage of [eligible] *)
  verdict : string;  (** {!Darsie_compiler.Promotion.verdict} *)
  story : string;  (** {!Darsie_compiler.Analysis.explain} *)
}

val rows : kinfo:Darsie_timing.Kinfo.t -> Darsie_obs.Ledger.t -> row list
(** One row per static instruction, in program order. *)

val render :
  ?top:int ->
  app_name:string ->
  machine_name:string ->
  kinfo:Darsie_timing.Kinfo.t ->
  Darsie_obs.Ledger.t ->
  unit ->
  string
(** The full report: a coverage header, the annotated listing (marking,
    eligible count, captured %, dominant fate per line), and — when
    [top > 0] — the [top] most-eligible instructions with their complete
    fate breakdown, promotion verdict and operand provenance story. *)
