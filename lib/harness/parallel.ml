(* A self-scheduling domain pool. Jobs are claimed with one atomic
   fetch-and-add on a shared cursor; each result slot is written by
   exactly one worker and read only after the joins, so the join's
   happens-before edge is the only synchronization the results need. *)

let default_jobs () = Domain.recommended_domain_count ()

let run_seq f items = List.map (fun x -> try Ok (f x) with e -> Error e) items

let run ?jobs f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = min jobs n in
  if jobs <= 1 then run_seq f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (f arr.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every index < n was claimed *))
         results)
  end

let map ?jobs f items =
  match jobs with
  | Some j when j <= 1 -> List.map f items
  | _ ->
    List.map
      (function Ok v -> v | Error e -> raise e)
      (run ?jobs f items)
