(* A self-scheduling domain pool. Jobs are claimed with one atomic
   fetch-and-add on a shared cursor; each result slot is written by
   exactly one worker and read only after the joins, so the join's
   happens-before edge is the only synchronization the results need. *)

module Tel = Darsie_telemetry.Telemetry

let default_jobs () = Domain.recommended_domain_count ()

let item_label label i x =
  match label with Some l -> l x | None -> Printf.sprintf "item %d" i

(* One job inside its telemetry envelope: a [pool.item] span carrying the
   label, the pool counters, a wall meter for busy time, and a progress
   tick. Returns the outcome plus the item's duration so the caller can
   spot stragglers. Counting happens on the worker's own domain, so the
   envelope adds no synchronization to the pool. *)
let timed ~lbl ~index ~done_ ~n f x =
  let sp =
    Tel.begin_span
      ~args:[ ("label", Tel.Str lbl); ("index", Tel.Int index) ]
      "pool.item"
  in
  let t0 = Tel.elapsed_ns () in
  let res = try Ok (f x) with e -> Error e in
  let dur_ns = Tel.elapsed_ns () - t0 in
  (match res with
  | Ok _ -> Tel.end_span sp
  | Error _ -> Tel.end_span ~args:[ ("raised", Tel.Bool true) ] sp);
  Tel.incr "pool.items";
  Tel.add_wall "pool.busy_s" (float_of_int dur_ns /. 1e9);
  (if Tel.Progress.mode () <> Tel.Progress.Off then
     let k = 1 + Atomic.fetch_and_add done_ 1 in
     Tel.Progress.item ~k ~n ~label:lbl);
  (res, dur_ns)

let run_seq ?label f items =
  let n = List.length items in
  let done_ = Atomic.make 0 in
  List.mapi
    (fun i x -> fst (timed ~lbl:(item_label label i x) ~index:i ~done_ ~n f x))
    items

(* A straggler is one item monopolizing the pool: it alone covered more
   than half the pool's wall time, so adding workers cannot help and the
   run's latency is that item. Surfaced through the progress channel
   only — never a counter — because which item ends up longest is
   scheduling-dependent and counters must stay deterministic. *)
let warn_straggler label arr durs pool_wall_ns =
  let imax = ref 0 in
  Array.iteri (fun i d -> if d > durs.(!imax) then imax := i) durs;
  let top = durs.(!imax) in
  if pool_wall_ns > 0 && 2 * top > pool_wall_ns then
    Tel.Progress.warn
      (Printf.sprintf
         "pool straggler: %s ran %.2fs of the pool's %.2fs wall (%.0f%%)"
         (item_label label !imax arr.(!imax))
         (float_of_int top /. 1e9)
         (float_of_int pool_wall_ns /. 1e9)
         (100.0 *. float_of_int top /. float_of_int pool_wall_ns))

let run ?jobs ?label f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = min jobs n in
  if jobs <= 1 then run_seq ?label f items
  else begin
    let results = Array.make n None in
    let durs = Array.make n 0 in
    let next = Atomic.make 0 in
    let done_ = Atomic.make 0 in
    let t0 = Tel.elapsed_ns () in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let res, dur =
            timed ~lbl:(item_label label i arr.(i)) ~index:i ~done_ ~n f
              arr.(i)
          in
          results.(i) <- Some res;
          durs.(i) <- dur;
          loop ()
        end
      in
      loop ()
    in
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    if n >= 2 && Tel.Progress.mode () <> Tel.Progress.Off then
      warn_straggler label arr durs (Tel.elapsed_ns () - t0);
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* every index < n was claimed *))
         results)
  end

let map ?jobs ?label f items =
  match jobs with
  | Some j when j <= 1 ->
    (* Fail-fast, exactly like [List.map]: the first failing job raises
       before any later job runs. *)
    let n = List.length items in
    let done_ = Atomic.make 0 in
    List.mapi
      (fun i x ->
        match timed ~lbl:(item_label label i x) ~index:i ~done_ ~n f x with
        | Ok v, _ -> v
        | Error e, _ -> raise e)
      items
  | _ ->
    List.map
      (function Ok v -> v | Error e -> raise e)
      (run ?jobs ?label f items)
