(** The machine-readable metrics document.

    One JSON object per (app, machine) run: every raw counter, the
    derived metrics, the per-SM stall-cycle attribution, the sampled
    time-series and the energy breakdown, all under a versioned schema
    (see EXPERIMENTS.md "Profiling and metrics" for the layout).
    {!validate} re-checks the attribution invariant from the serialized
    numbers, which is what [make profile-smoke] and CI run against
    exported files. *)

val schema_version : int
(** Version of the metrics document; equals
    [Darsie_obs.Export.schema_version]. Bumped on any rename, removal or
    change of meaning (see docs/metrics-schema.md for the policy). *)

val of_run : app:string -> ?scale:int -> Suite.run -> Darsie_obs.Json.t
(** Export one (app, machine) run as a metrics document: counters,
    derived metrics, stall attribution, optional series and per-PC
    profile, and the energy breakdown. [scale] defaults to 1 and is
    recorded verbatim. *)

val validate : Darsie_obs.Json.t -> (unit, string) result
(** Structural check of a metrics document: schema version, required
    fields, and the attribution conservation invariants re-computed from
    the serialized numbers (per-SM buckets sum to [cycles], totals sum to
    [num_sms * cycles], per-PC charges plus unattributed cover every
    cycle). Backward-tolerant: accepts schema version 2 documents (which
    predate the [machine_config] echo) as well as the current version 3,
    where [machine_config] is required and its echoed [num_sms] must
    agree with the document's own count. *)

val validate_string : string -> (unit, string) result
(** Parse then {!validate}. *)

val check_schema_version : int
(** Version of the check-report document ({!Checker.to_json}). *)

val validate_check : Darsie_obs.Json.t -> (unit, string) result
(** Structural check of a check report: kind tag, schema version, and the
    pass/fail logic re-verified from the serialized values (app passed iff
    no errors, report passed iff every app passed, timing entries carry
    cycles or a typed error). *)

val validate_check_string : string -> (unit, string) result
(** Parse then {!validate_check}. *)

val fuzz_schema_version : int
(** Version of the fuzz-campaign document ([darsie fuzz --json]). *)

val validate_fuzz : Darsie_obs.Json.t -> (unit, string) result
(** Structural check of a fuzz-campaign report: kind tag, schema
    version, and the campaign bookkeeping re-verified from the
    serialized values (style counts sum to the kernel count, every
    kernel is accounted passed or failed, shrinking never grew a
    counterexample, every failure carries a replay command line, and
    detected inject-mode witnesses carry a site and a non-empty
    kernel). *)

val validate_fuzz_string : string -> (unit, string) result
(** Parse then {!validate_fuzz}. *)

val sensitivity_schema_version : int
(** Version of the sensitivity-sweep document
    ([darsie experiment sensitivity --json]). *)

val validate_sensitivity : Darsie_obs.Json.t -> (unit, string) result
(** Structural check of a sensitivity-sweep document: kind tag, schema
    version, and every derived number re-computed from the serialized
    raw cycles — each app's speedup equals
    [base_cycles /. darsie_cycles], each cell's geomean reproduces from
    its app speedups, and each cell covers exactly the apps the header
    lists. *)

val validate_sensitivity_string : string -> (unit, string) result
(** Parse then {!validate_sensitivity}. *)

val telemetry_schema_version : int
(** Version of the [host_telemetry] section
    ([Darsie_telemetry.Host_trace.schema_version]). *)

val validate_telemetry : Darsie_obs.Json.t -> (unit, string) result
(** Structural check of a [host_telemetry] section, or of a full
    [--telemetry] document carrying one: kind tag, schema version, and
    the self-time accounting re-proved from the serialized integers —
    [0 <= self_ns <= total_ns] for every phase, [busy + idle = wall] for
    every domain, and [Σ phase self = Σ domain busy] exactly. *)

val validate_telemetry_string : string -> (unit, string) result
(** Parse then {!validate_telemetry}. *)

val write_file : string -> Darsie_obs.Json.t -> unit
(** Write any JSON document to [path]: pretty-printed, trailing
    newline. *)
