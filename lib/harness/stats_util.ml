open Darsie_timing

let geomean xs =
  match xs with
  | [] -> 1.0
  | _ ->
    let logs = List.map (fun x -> log (max x 1e-4)) xs in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length xs))

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let ratio part whole =
  if whole = 0 then 0.0 else float_of_int part /. float_of_int whole

(* ------------------------------------------------------------------ *)
(* Stats projections                                                   *)
(* ------------------------------------------------------------------ *)

(* One stable field order shared by the JSON exporter, the CSV writers
   and anything that wants to diff two runs counter-by-counter. *)
let to_assoc (s : Stats.t) =
  [
    ("cycles", s.Stats.cycles);
    ("fetched", s.Stats.fetched);
    ("icache_misses", s.Stats.icache_misses);
    ("issued", s.Stats.issued);
    ("executed_threads", s.Stats.executed_threads);
    ("skipped_prefetch", s.Stats.skipped_prefetch);
    ("dropped_issue", s.Stats.dropped_issue);
    ("elim_uniform", s.Stats.elim_uniform);
    ("elim_affine", s.Stats.elim_affine);
    ("elim_unstructured", s.Stats.elim_unstructured);
    ("rf_reads", s.Stats.rf_reads);
    ("rf_writes", s.Stats.rf_writes);
    ("alu_ops", s.Stats.alu_ops);
    ("sfu_ops", s.Stats.sfu_ops);
    ("mem_ops", s.Stats.mem_ops);
    ("shared_accesses", s.Stats.shared_accesses);
    ("shared_bank_conflicts", s.Stats.shared_bank_conflicts);
    ("smem_replay_cycles", s.Stats.smem_replay_cycles);
    ("l1_accesses", s.Stats.l1_accesses);
    ("l1_misses", s.Stats.l1_misses);
    ("dram_transactions", s.Stats.dram_transactions);
    ("rf_bank_conflicts", s.Stats.rf_bank_conflicts);
    ("barrier_stall_cycles", s.Stats.barrier_stall_cycles);
    ("fetch_stall_cycles", s.Stats.fetch_stall_cycles);
    ("darsie_sync_stalls", s.Stats.darsie_sync_stalls);
    ("skip_table_probes", s.Stats.skip_table_probes);
    ("rename_accesses", s.Stats.rename_accesses);
    ("coalescer_probes", s.Stats.coalescer_probes);
    ("majority_updates", s.Stats.majority_updates);
  ]

let sum stats =
  let acc = Stats.create () in
  List.iter (fun s -> Stats.add acc s) stats;
  acc

(* ------------------------------------------------------------------ *)
(* Derived metrics                                                     *)
(* ------------------------------------------------------------------ *)

let ipc (s : Stats.t) = ratio s.Stats.issued s.Stats.cycles

let l1_miss_rate (s : Stats.t) = ratio s.Stats.l1_misses s.Stats.l1_accesses

let fetch_skip_fraction (s : Stats.t) =
  ratio s.Stats.skipped_prefetch (s.Stats.fetched + s.Stats.skipped_prefetch)

let elimination_pct (s : Stats.t) ~baseline_issued =
  percent (Stats.total_eliminated s) baseline_issued

let derived (s : Stats.t) =
  [
    ("ipc", ipc s);
    ("l1_miss_rate", l1_miss_rate s);
    ("fetch_skip_fraction", fetch_skip_fraction s);
    ("icache_miss_rate", ratio s.Stats.icache_misses
       (s.Stats.fetched + s.Stats.icache_misses));
    ("rf_reads_per_issue", ratio s.Stats.rf_reads s.Stats.issued);
  ]
