(** Crash-isolated robustness checking over the evaluation suite.

    [darsie check] drives this module: each application is loaded, run
    functionally, replayed through the timing model on a set of machines,
    cross-validated by the differential oracle and (optionally) attacked
    with injected faults — with every failure captured as a typed
    {!Darsie_check.Sim_error.t} instead of a crash, so one poisoned or
    deadlocking application degrades the suite result into a partial
    report rather than taking the process down. Per-application budgets
    (the timing model's cycle bound and an optional processor-seconds
    deadline) bound how long any single application can hold the suite. *)

type timing_run = {
  machine : Suite.machine;
  outcome : (int, Darsie_check.Sim_error.t) result;  (** [Ok cycles] *)
}

type injection = {
  fault : Darsie_check.Injector.fault;
  detected : bool;  (** did the oracle catch it? *)
  mismatch_count : int;
}

type app_report = {
  abbr : string;
  errors : Darsie_check.Sim_error.t list;
      (** every failure captured for this app, in discovery order; empty
          means the app passed all requested checks *)
  timing : timing_run list;
  oracle : Darsie_check.Oracle.report option;
  injections : injection list;
  elapsed_s : float;  (** processor seconds spent on this app *)
  replay : string;
      (** the exact [darsie check] command line that re-runs this app's
          checks in isolation (scale/oracle/injection flags included);
          printed under every failing app so a suite failure is
          reproducible by copy-paste *)
}

type report = { apps : app_report list; elapsed_s : float }

val default_machines : Suite.machine list
(** BASE and DARSIE. *)

val app_passed : app_report -> bool

val passed : report -> bool

val worst_error : report -> Darsie_check.Sim_error.t option
(** The captured error with the highest exit code, for the process exit
    status. [None] iff {!passed}. *)

val check_app :
  ?cfg:Darsie_timing.Config.t ->
  ?scale:int ->
  ?machines:Suite.machine list ->
  ?oracle:bool ->
  ?inject:int ->
  ?seed:int ->
  ?deadline:float ->
  ?cache:Darsie_trace.Cache.t ->
  Darsie_workloads.Workload.t ->
  app_report
(** Check one application: functional run + CPU reference, timing runs on
    [machines] (default BASE and DARSIE, each attribution-checked),
    differential oracle when [oracle] (default true), and [inject]
    (default 0) seeded faults that the oracle must detect. [deadline]
    bounds each timing run in processor seconds. [cache] lets the timing
    runs reuse persisted functional traces (the functional verify and
    the oracle always re-emulate — they check the emulator itself).
    Never raises: all failures land in [errors]. *)

val check_suite :
  ?cfg:Darsie_timing.Config.t ->
  ?scale:int ->
  ?machines:Suite.machine list ->
  ?oracle:bool ->
  ?inject:int ->
  ?seed:int ->
  ?deadline:float ->
  ?cache:Darsie_trace.Cache.t ->
  ?jobs:int ->
  ?apps:Darsie_workloads.Workload.t list ->
  unit ->
  report
(** {!check_app} over [apps] (default the Table-1 registry), isolating
    each: an app that fails or crashes is reported and the remaining apps
    still run. [jobs] (default 1) checks that many apps concurrently on
    separate domains via {!Parallel}; the report lists apps in input
    order either way, and per-app [elapsed_s] stays meaningful because it
    is processor time charged to the whole process — use it for relative
    weight, not wall time, when [jobs > 1]. *)

val render : report -> string
(** Human-readable per-app lines plus a PASS/FAIL summary. *)

val to_json : report -> Darsie_obs.Json.t
(** Machine-readable report (see {!Metrics.validate_check}). *)
