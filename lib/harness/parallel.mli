(** A job pool over OCaml 5 domains for the (app × machine) evaluation
    matrix.

    The suite's jobs are few (order 100) and coarse (milliseconds to
    seconds each), so the pool uses dynamic self-scheduling: every
    worker steals the next unclaimed job from one shared cursor — the
    degenerate work-stealing deque, which at this granularity has the
    same load-balancing behaviour as per-worker deques with none of the
    bookkeeping. Three properties the suite relies on:

    - {b Determinism.} Results come back in input order, whatever order
      the workers finished in, so any output derived by folding over the
      result list is byte-identical regardless of schedule.
    - {b Serial reproduction.} [~jobs:1] does not spawn a domain at all:
      it runs the jobs sequentially in the calling domain, in input
      order, with fail-fast exception behaviour — bit-for-bit the
      pre-parallel harness.
    - {b Crash isolation.} A raising job poisons only its own slot
      ({!run} returns it as [Error exn]); every other job still runs.
      This is the same boundary {!Checker} draws around apps, so typed
      {!Darsie_check.Sim_error} values pass through unchanged.

    Every job additionally runs inside a telemetry envelope: a
    [pool.item] span (when spans are enabled) carrying the item's label,
    the [pool.items] counter and [pool.busy_s] wall meter, and an
    item-finished tick on the progress channel. After a parallel run the
    pool checks for a {e straggler} — one item that alone covered more
    than half the pool's wall time — and reports it through
    [Telemetry.Progress.warn] (never a counter: which item is longest is
    scheduling-dependent, and counters stay deterministic). *)

val default_jobs : unit -> int
(** Number of workers used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()], i.e. the cores available to
    this process. *)

val run :
  ?jobs:int -> ?label:('a -> string) -> ('a -> 'b) -> 'a list ->
  ('b, exn) result list
(** [run ~jobs f items] applies [f] to every item across [jobs] workers
    and returns the crash-isolated outcomes in input order. [jobs]
    defaults to {!default_jobs}; values [<= 1] (and singleton or empty
    input) run sequentially in the calling domain. Never raises: an
    exception escaping [f] becomes that item's [Error]. [label] names
    items for spans and progress lines (default ["item <index>"]). *)

val map : ?jobs:int -> ?label:('a -> string) -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!run} but re-raises instead of returning [Error]: with
    [jobs <= 1] the first failing job raises immediately (fail-fast,
    exactly like [List.map]); with parallel execution every job still
    runs to completion and the raised exception is the {e first in input
    order}, so which error surfaces does not depend on the schedule. *)
