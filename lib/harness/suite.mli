(** The evaluation suite: loads every Table-1 application, generates its
    trace once, and replays it through every machine configuration. All
    figure modules project their rows out of one {!matrix}.

    The matrix build fans out over OCaml domains (see {!Parallel}) and
    can reuse functional traces from a persistent content-addressed
    cache (see {!Darsie_trace.Cache}); both are off by default so plain
    library use stays serial and pure. *)

(** One loaded application: the workload, its functional trace, and the
    static kernel information the timing model needs. *)
type app = {
  workload : Darsie_workloads.Workload.t;
  trace : Darsie_trace.Record.t;
  kinfo : Darsie_timing.Kinfo.t;
}

val load_app :
  ?scale:int -> ?cache:Darsie_trace.Cache.t -> Darsie_workloads.Workload.t ->
  app
(** Prepare the workload at [scale] (default 1) and functionally emulate
    it into a replayable trace. With [cache], the emulation is skipped
    whenever the cache already holds a trace for this exact (kernel,
    launch, scale) content key — the trace is machine-invariant, so one
    generation serves every machine configuration and every repeat. *)

(** The machine configurations of the paper's evaluation. *)
type machine =
  | Base
  | Uv
  | Dac_ideal
  | Darsie
  | Darsie_ignore_store
  | Darsie_no_cf_sync
  | Silicon_sync
      (** baseline hardware with a TB-wide barrier at every basic-block
          boundary (paper Fig. 12's silicon experiment) *)

val machine_name : machine -> string
(** The paper's spelling: ["BASE"], ["UV"], ["DAC-IDEAL"], ["DARSIE"],
    ["DARSIE-IGNORE-STORE"], ["DARSIE-NO-CF-SYNC"], ["SILICON-SYNC"]. *)

val all_machines : machine list
(** Every configuration, in the order above — the full evaluation. *)

(** One matrix cell: a timing-model run plus its energy accounting. *)
type run = {
  machine : machine;
  cfg : Darsie_timing.Config.t;
      (** the exact configuration the cell ran under (machine variants
          adjust the caller's base config, e.g. SILICON-SYNC forces
          [sync_at_branches]); echoed into the metrics document *)
  gpu : Darsie_timing.Gpu.result;
  energy : Darsie_energy.Energy_model.breakdown;
}

type matrix = {
  cfg : Darsie_timing.Config.t;
  apps : app list;  (** paper order: 1D then 2D *)
  runs : (string * machine, run) Hashtbl.t;  (** keyed by (abbr, machine) *)
}

val run_app_checked :
  ?cfg:Darsie_timing.Config.t ->
  ?sink:Darsie_obs.Sink.t ->
  ?sample_interval:int ->
  ?event_window:int ->
  ?deadline:float ->
  ?pcstat:bool ->
  app ->
  machine ->
  (run, Darsie_check.Sim_error.t) result
(** Like {!run_app} but surfaces simulation failures as typed errors and
    forwards the diagnostic options of {!Darsie_timing.Gpu.run}
    (including [pcstat] per-instruction profiling). *)

val run_app :
  ?cfg:Darsie_timing.Config.t ->
  ?sink:Darsie_obs.Sink.t ->
  ?sample_interval:int ->
  ?pcstat:bool ->
  app ->
  machine ->
  run
(** [sink] and [sample_interval] are forwarded to
    {!Darsie_timing.Gpu.run}; both default to off (the null sink).

    @raise Darsie_check.Sim_error.Simulation_error on failure. *)

val divide_domains : jobs:int -> Darsie_timing.Config.t -> Darsie_timing.Config.t
(** Core-budget division between the process pool and intra-run SM
    sharding: with a pool of [jobs] workers on a machine with
    [P = Parallel.default_jobs ()] cores, cap [cfg.sm_domains] at
    [max 1 (P / jobs)] so the two levels multiplied never oversubscribe
    the cores. Auto-sizing ([sm_domains = 0]) resolves to exactly that
    share. [jobs <= 1] or a serial config ([sm_domains = 1]) passes
    through unchanged. Sharding is timing-invisible, so this only
    affects the schedule, never a simulated result. Applied by
    {!build_matrix}, {!Checker.check_suite} and the CLI's [-j] fan-outs. *)

val build_matrix :
  ?cfg:Darsie_timing.Config.t ->
  ?scale:int ->
  ?machines:machine list ->
  ?apps:Darsie_workloads.Workload.t list ->
  ?jobs:int ->
  ?cache:Darsie_trace.Cache.t ->
  unit ->
  matrix
(** Run the full (app × machine) evaluation. [jobs] fans the trace
    generations and the matrix cells out over that many domains
    (default 1 — serial; pass [Parallel.default_jobs ()] for all
    cores). The merged matrix is identical for every job count: results
    are committed in input order, so figures, metrics documents and
    trendline records derived from it are byte-for-byte independent of
    the schedule. [cache] makes {!load_app} reuse persisted functional
    traces.

    @raise Darsie_check.Sim_error.Simulation_error on the first failing
    cell (in deterministic app-then-machine order; with [jobs > 1] the
    remaining cells still ran — the error is raised at merge time). *)

val get : matrix -> string -> machine -> run
(** @raise Not_found if that cell was not run. *)

val speedup : matrix -> string -> machine -> float
(** Cycles(BASE) / cycles(machine) for one app. *)

val energy_reduction : matrix -> string -> machine -> float
(** Percent energy saved vs BASE. *)

val instr_reduction : matrix -> string -> machine -> float
(** Percent of baseline-executed warp instructions eliminated (pre-fetch
    skips + issue drops). *)
