(* The shared kernel-listing renderer behind [darsie annotate] and
   [darsie explain]: both join per-instruction data onto the disassembly
   from Printer.kernel_lines and print one fixed-width column block in
   front of each "<idx>: <text>" line, with branch-target labels on their
   own lines. Keeping the line format here keeps the two listings
   byte-compatible column-for-column. *)

type line = { idx : int; label : string option; text : string }

let lines kernel =
  List.map
    (fun (idx, label, text) -> { idx; label; text })
    (Darsie_isa.Printer.kernel_lines kernel)

let emit buf ~columns l =
  (match l.label with
  | Some lab -> Buffer.add_string buf (lab ^ ":\n")
  | None -> ());
  Buffer.add_string buf (Printf.sprintf "%s %4d: %s\n" columns l.idx l.text)
