(* The rendering layer of [darsie annotate] — PTX-lite's answer to
   [perf annotate]. Joins the disassembly from Printer.kernel_lines with
   the per-PC profile a pcstat-enabled run produced: every line gets its
   share of simulated cycles, its elimination rate per machine, its
   dominant stall bucket, and (for memory ops) round-trip latency. *)

open Darsie_timing
module Obs = Darsie_obs

type row = {
  idx : int;
  label : string option;
  text : string;
  row_cycles : int;
  cycle_pct : float;
  skip_pcts : (string * float) list;  (* machine name -> skip% *)
  issues : int;
  drops : int;
  skips : int;
  top_bucket : (string * float) option;  (* name, % of this row's cycles *)
  mem_mean : float option;
  skip_entry : Obs.Pcstat.skip_entry option;
}

let pct part whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

(* Fraction of this PC's dynamic occurrences that the machine
   eliminated (pre-fetch skips + issue drops over all occurrences). *)
let skip_pct p ~pc =
  let skips = Obs.Pcstat.skips p ~pc and drops = Obs.Pcstat.drops p ~pc in
  let occs = Obs.Pcstat.issues p ~pc + drops + skips in
  pct (skips + drops) occs

let pcstat_exn (g : Gpu.result) =
  match g.Gpu.pcstat with
  | Some p -> p
  | None -> invalid_arg "Annotate: run was not profiled (pcstat = false)"

let top_bucket row_attr row_cycles =
  if row_cycles = 0 then None
  else
    let best =
      List.fold_left
        (fun acc (name, v) ->
          match acc with
          | Some (_, bv) when bv >= v -> acc
          | _ -> Some (name, v))
        None
        (Obs.Attrib.to_assoc row_attr)
    in
    Option.map (fun (name, v) -> (name, pct v row_cycles)) best

let rows ~kernel ~machines =
  match machines with
  | [] -> invalid_arg "Annotate.rows: no machines"
  | (_, primary) :: _ ->
    let p = pcstat_exn primary in
    let total = Obs.Pcstat.total_cycles p in
    List.map
      (fun (l : Listing.line) ->
        let idx = l.Listing.idx in
        let row_cycles = Obs.Pcstat.row_cycles p ~pc:idx in
        {
          idx;
          label = l.Listing.label;
          text = l.Listing.text;
          row_cycles;
          cycle_pct = pct row_cycles total;
          skip_pcts =
            List.map
              (fun (name, g) -> (name, skip_pct (pcstat_exn g) ~pc:idx))
              machines;
          issues = Obs.Pcstat.issues p ~pc:idx;
          drops = Obs.Pcstat.drops p ~pc:idx;
          skips = Obs.Pcstat.skips p ~pc:idx;
          top_bucket = top_bucket (Obs.Pcstat.stall_row p ~pc:idx) row_cycles;
          mem_mean =
            (if Obs.Pcstat.mem_count p ~pc:idx = 0 then None
             else Some (Obs.Pcstat.mem_lat_mean p ~pc:idx));
          skip_entry = List.assoc_opt idx primary.Gpu.skip_telemetry;
        })
      (Listing.lines kernel)

let render_buckets b =
  match b with
  | None -> ""
  | Some (name, p) -> Printf.sprintf "%s %.1f%%" name p

let render ?(top = 0) ~kernel ~app_name ~machines () =
  let rs = rows ~kernel ~machines in
  let primary_name, primary = List.hd machines in
  let buf = Buffer.create 4096 in
  let p = pcstat_exn primary in
  Buffer.add_string buf
    (Printf.sprintf
       "darsie annotate: %s on %s — %d cycles, %d SMs, %d static \
        instructions\n"
       app_name primary_name primary.Gpu.cycles
       (Array.length primary.Gpu.per_sm)
       (Obs.Pcstat.n p));
  Buffer.add_string buf
    (Printf.sprintf
       "profile: %d issued, %d skipped pre-fetch, %d dropped at issue\n\n"
       (Obs.Pcstat.total_issues p)
       (Obs.Pcstat.total_skips p)
       (Obs.Pcstat.total_drops p));
  let skip_headers =
    String.concat ""
      (List.map (fun (name, _) -> Printf.sprintf " %14s" ("skip%" ^ name)) machines)
  in
  Buffer.add_string buf
    (Printf.sprintf "%7s%s %8s %8s  %-22s %s\n" "cycle%" skip_headers "issued"
       "memlat" "top-stall" "instruction");
  List.iter
    (fun r ->
      let skip_cols =
        String.concat ""
          (List.map (fun (_, s) -> Printf.sprintf " %14.2f" s) r.skip_pcts)
      in
      let columns =
        Printf.sprintf "%7.2f%s %8d %8s  %-22s" r.cycle_pct skip_cols r.issues
          (match r.mem_mean with
          | Some m -> Printf.sprintf "%.1f" m
          | None -> "-")
          (render_buckets r.top_bucket)
      in
      Listing.emit buf ~columns
        { Listing.idx = r.idx; label = r.label; text = r.text })
    rs;
  let un = Obs.Pcstat.unattributed p in
  let un_total = Obs.Attrib.total un in
  Buffer.add_string buf
    (Printf.sprintf "%7.2f %s\n" (pct un_total (Obs.Pcstat.total_cycles p))
       "<no instruction> (idle / drained SM cycles)");
  if top > 0 then begin
    let hot =
      List.filter (fun r -> r.row_cycles > 0) rs
      |> List.sort (fun a b -> compare b.row_cycles a.row_cycles)
    in
    let hot = List.filteri (fun i _ -> i < top) hot in
    Buffer.add_string buf
      (Printf.sprintf "\nhottest %d instructions on %s:\n" (List.length hot)
         primary_name);
    List.iteri
      (fun rank r ->
        Buffer.add_string buf
          (Printf.sprintf "  #%d %6.2f%% cycles  %-22s %4d: %s\n" (rank + 1)
             r.cycle_pct
             (render_buckets r.top_bucket)
             r.idx r.text);
        match r.skip_entry with
        | Some e ->
          Buffer.add_string buf
            (Printf.sprintf
               "      skip-table: %d allocs, %d hits, %d parks, %d+%d \
                flushes (load+barrier), %d live cycles\n"
               e.Obs.Pcstat.sk_allocs e.Obs.Pcstat.sk_hits
               e.Obs.Pcstat.sk_parks e.Obs.Pcstat.sk_load_flushes
               e.Obs.Pcstat.sk_barrier_flushes e.Obs.Pcstat.sk_lifetime)
        | None -> ())
      hot
  end;
  Buffer.contents buf
