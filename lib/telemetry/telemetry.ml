module Json = Darsie_obs.Json

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(* ------------------------------------------------------------------ *)
(* Per-domain buffers                                                  *)
(* ------------------------------------------------------------------ *)

type spanrec = {
  s_name : string;
  mutable s_args : (string * arg) list;
  s_start_ns : int;
  mutable s_dur_ns : int;
  mutable s_children_rev : spanrec list;
}

type buf = {
  b_gen : int;  (** registry generation this buffer belongs to *)
  b_id : int;  (** raw [Domain.self] id *)
  mutable b_last_ns : int;  (** monotone clamp for this domain's clock *)
  mutable b_stack : spanrec list;  (** open spans, innermost first *)
  mutable b_roots_rev : spanrec list;
  b_counters : (string, int ref) Hashtbl.t;
  b_walls : (string, float ref) Hashtbl.t;
}

(* The registry: every buffer ever handed to a domain, in order of first
   use. Guarded by a mutex taken once per domain lifetime (at first
   touch), never on the record paths. [reset] bumps the generation so
   live domains (the main one, between tests) lazily re-register a fresh
   buffer instead of appending to a dropped one. *)
let registry : buf list ref = ref []

let registry_mu = Mutex.create ()

let generation = ref 0

let span_recording = ref false

let epoch = ref (Unix.gettimeofday ())

let raw_ns () =
  let t = Unix.gettimeofday () -. !epoch in
  if t <= 0.0 then 0 else int_of_float (t *. 1e9)

let make_buf gen =
  {
    b_gen = gen;
    b_id = (Domain.self () :> int);
    b_last_ns = 0;
    b_stack = [];
    b_roots_rev = [];
    b_counters = Hashtbl.create 16;
    b_walls = Hashtbl.create 8;
  }

let key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let gen = !generation in
      let b = make_buf gen in
      Mutex.protect registry_mu (fun () -> registry := b :: !registry);
      b)

let buf () =
  let b = Domain.DLS.get key in
  if b.b_gen = !generation then b
  else begin
    let gen = !generation in
    let b = make_buf gen in
    Mutex.protect registry_mu (fun () -> registry := b :: !registry);
    Domain.DLS.set key b;
    b
  end

(* The domain's clock never steps backwards: that single clamp is what
   turns the nesting discipline into exact integer invariants (children
   are disjoint sub-intervals of their parent, so their durations sum to
   at most the parent's). *)
let now_ns b =
  let t = raw_ns () in
  if t < b.b_last_ns then b.b_last_ns
  else begin
    b.b_last_ns <- t;
    t
  end

let elapsed_ns () = raw_ns ()

let enable () = span_recording := true

let enabled () = !span_recording

let reset () =
  Mutex.protect registry_mu (fun () ->
      incr generation;
      registry := []);
  epoch := Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type handle = spanrec option

let begin_span ?(args = []) name : handle =
  if not !span_recording then None
  else begin
    let b = buf () in
    let s =
      {
        s_name = name;
        s_args = args;
        s_start_ns = now_ns b;
        s_dur_ns = 0;
        s_children_rev = [];
      }
    in
    b.b_stack <- s :: b.b_stack;
    Some s
  end

let end_span ?(args = []) (h : handle) =
  match h with
  | None -> ()
  | Some s -> (
    let b = buf () in
    s.s_args <- s.s_args @ args;
    s.s_dur_ns <- now_ns b - s.s_start_ns;
    match b.b_stack with
    | top :: rest when top == s -> (
      b.b_stack <- rest;
      match rest with
      | parent :: _ -> parent.s_children_rev <- s :: parent.s_children_rev
      | [] -> b.b_roots_rev <- s :: b.b_roots_rev)
    | _ ->
      (* mis-nested end (or a reset raced the span): drop it rather than
         corrupt the stack *)
      ())

let span ?args name f =
  let h = begin_span ?args name in
  match f () with
  | v ->
    end_span h;
    v
  | exception e ->
    end_span ~args:[ ("raised", Bool true) ] h;
    raise e

(* ------------------------------------------------------------------ *)
(* Counters and wall meters                                            *)
(* ------------------------------------------------------------------ *)

let incr ?(by = 1) name =
  let b = buf () in
  match Hashtbl.find_opt b.b_counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add b.b_counters name (ref by)

let add_wall name secs =
  let b = buf () in
  match Hashtbl.find_opt b.b_walls name with
  | Some r -> r := !r +. secs
  | None -> Hashtbl.add b.b_walls name (ref secs)

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type span_node = {
  sp_name : string;
  sp_args : (string * arg) list;
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_children : span_node list;
}

type domain_view = {
  dv_id : int;
  dv_roots : span_node list;
  dv_busy_ns : int;
}

type snapshot = {
  sn_wall_ns : int;
  sn_domains : domain_view list;
  sn_counters : (string * int) list;
  sn_walls : (string * float) list;
}

let rec freeze (s : spanrec) =
  {
    sp_name = s.s_name;
    sp_args = s.s_args;
    sp_start_ns = s.s_start_ns;
    sp_dur_ns = s.s_dur_ns;
    sp_children = List.rev_map freeze s.s_children_rev;
  }

let snapshot () =
  let bufs =
    Mutex.protect registry_mu (fun () -> List.rev !registry)
  in
  let counters = Hashtbl.create 32 in
  let walls = Hashtbl.create 8 in
  let merge tbl find_add src =
    Hashtbl.iter (fun k r -> find_add tbl k r) src
  in
  let domains =
    List.map
      (fun b ->
        merge counters
          (fun tbl k r ->
            match Hashtbl.find_opt tbl k with
            | Some acc -> acc := !acc + !r
            | None -> Hashtbl.add tbl k (ref !r))
          b.b_counters;
        merge walls
          (fun tbl k r ->
            match Hashtbl.find_opt tbl k with
            | Some acc -> acc := !acc +. !r
            | None -> Hashtbl.add tbl k (ref !r))
          b.b_walls;
        let roots = List.rev_map freeze b.b_roots_rev in
        {
          dv_id = b.b_id;
          dv_roots = roots;
          dv_busy_ns =
            List.fold_left (fun acc r -> acc + r.sp_dur_ns) 0 roots;
        })
      bufs
  in
  let sorted tbl get =
    Hashtbl.fold (fun k r acc -> (k, get r) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* The snapshot wall must bound every domain's span-covered time even
     if the underlying wall clock stepped backwards between domains, so
     idle = wall - busy stays non-negative. *)
  let wall_ns =
    List.fold_left
      (fun acc b -> max acc b.b_last_ns)
      (raw_ns ()) bufs
  in
  {
    sn_wall_ns = wall_ns;
    sn_domains = domains;
    sn_counters = sorted counters (fun r -> !r);
    sn_walls = sorted walls (fun r -> !r);
  }

let phases snap =
  let tbl = Hashtbl.create 32 in
  let rec visit (n : span_node) =
    let children_ns =
      List.fold_left (fun acc c -> acc + c.sp_dur_ns) 0 n.sp_children
    in
    let self = max 0 (n.sp_dur_ns - children_ns) in
    (match Hashtbl.find_opt tbl n.sp_name with
    | Some (c, t, s) -> Hashtbl.replace tbl n.sp_name (c + 1, t + n.sp_dur_ns, s + self)
    | None -> Hashtbl.add tbl n.sp_name (1, n.sp_dur_ns, self));
    List.iter visit n.sp_children
  in
  List.iter (fun d -> List.iter visit d.dv_roots) snap.sn_domains;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Progress channel                                                    *)
(* ------------------------------------------------------------------ *)

module Progress = struct
  type mode =
    | Off
    | Human
    | Ndjson

  type state = {
    mutable p_mode : mode;
    mutable p_out : string -> unit;
    mutable p_last : float;  (** last rate-limited emission *)
    mutable p_t0 : float option;  (** first item of the current run *)
  }

  let st =
    {
      p_mode = Off;
      p_out =
        (fun line ->
          prerr_string line;
          prerr_newline ());
      p_last = 0.0;
      p_t0 = None;
    }

  let mu = Mutex.create ()

  (* Emissions from pool workers and the main domain interleave; the
     mutex keeps lines whole and the rate limiter race-free. *)
  let min_interval_s = 0.2

  let configure ?out mode =
    Mutex.protect mu (fun () ->
        st.p_mode <- mode;
        (match out with Some f -> st.p_out <- f | None -> ());
        st.p_last <- 0.0;
        st.p_t0 <- None)

  let mode () = st.p_mode

  let json_line fields = Json.to_string (Json.Obj fields)

  let item ~k ~n ~label =
    if st.p_mode <> Off then
      Mutex.protect mu (fun () ->
          let now = Unix.gettimeofday () in
          let t0 =
            match st.p_t0 with
            | Some t -> t
            | None ->
              st.p_t0 <- Some now;
              now
          in
          if now -. st.p_last >= min_interval_s || k >= n then begin
            st.p_last <- now;
            let elapsed = now -. t0 in
            let eta =
              if k <= 0 then 0.0 else elapsed /. float_of_int k *. float_of_int (n - k)
            in
            match st.p_mode with
            | Off -> ()
            | Human ->
              st.p_out
                (Printf.sprintf "progress: %d/%d %s (%.1fs elapsed, eta %.1fs)" k
                   n label elapsed eta)
            | Ndjson ->
              st.p_out
                (json_line
                   [
                     ("event", Json.String "item");
                     ("k", Json.Int k);
                     ("n", Json.Int n);
                     ("label", Json.String label);
                     ("elapsed_s", Json.Float elapsed);
                     ("eta_s", Json.Float eta);
                   ])
          end)

  let cycles ~cycles ~cycles_per_sec ~engine =
    if st.p_mode <> Off then
      Mutex.protect mu (fun () ->
          let now = Unix.gettimeofday () in
          if now -. st.p_last >= min_interval_s then begin
            st.p_last <- now;
            match st.p_mode with
            | Off -> ()
            | Human ->
              st.p_out
                (Printf.sprintf "progress: %s at cycle %d (%.0f cycles/sec)"
                   engine cycles cycles_per_sec)
            | Ndjson ->
              st.p_out
                (json_line
                   [
                     ("event", Json.String "cycles");
                     ("engine", Json.String engine);
                     ("cycles", Json.Int cycles);
                     ("cycles_per_sec", Json.Float cycles_per_sec);
                   ])
          end)

  let warn msg =
    if st.p_mode <> Off then
      Mutex.protect mu (fun () ->
          match st.p_mode with
          | Off -> ()
          | Human -> st.p_out ("warning: " ^ msg)
          | Ndjson ->
            st.p_out
              (json_line
                 [
                   ("event", Json.String "warn"); ("message", Json.String msg);
                 ]))
end
