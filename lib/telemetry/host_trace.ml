module Json = Darsie_obs.Json
open Telemetry

let schema_version = 1

let host_pid = 1000

let json_of_arg = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let args_obj args = Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)

(* ------------------------------------------------------------------ *)
(* Chrome trace events                                                 *)
(* ------------------------------------------------------------------ *)

let us_of_ns ns = Json.Float (float_of_int ns /. 1e3)

let chrome_events snap =
  let meta name pid tid payload =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String payload) ]);
      ]
  in
  let metas =
    meta "process_name" host_pid 0 "darsie host"
    :: List.mapi
         (fun i d ->
           meta "thread_name" host_pid i (Printf.sprintf "domain %d" d.dv_id))
         snap.sn_domains
  in
  let rec events_of tid (n : span_node) acc =
    let e =
      Json.Obj
        [
          ("name", Json.String n.sp_name);
          ("ph", Json.String "X");
          ("ts", us_of_ns n.sp_start_ns);
          ("dur", us_of_ns n.sp_dur_ns);
          ("pid", Json.Int host_pid);
          ("tid", Json.Int tid);
          ("args", args_obj n.sp_args);
        ]
    in
    List.fold_left (fun acc c -> events_of tid c acc) (e :: acc) n.sp_children
  in
  let spans =
    List.concat
      (List.mapi
         (fun i d ->
           List.rev (List.fold_left (fun acc r -> events_of i r acc) [] d.dv_roots))
         snap.sn_domains)
  in
  metas @ spans

(* ------------------------------------------------------------------ *)
(* host_telemetry section                                              *)
(* ------------------------------------------------------------------ *)

let rec count_spans (n : span_node) =
  1 + List.fold_left (fun acc c -> acc + count_spans c) 0 n.sp_children

let host_telemetry_json snap =
  let phase_row (name, (count, total_ns, self_ns)) =
    Json.Obj
      [
        ("name", Json.String name);
        ("count", Json.Int count);
        ("total_ns", Json.Int total_ns);
        ("self_ns", Json.Int self_ns);
      ]
  in
  let domain_row d =
    Json.Obj
      [
        ("id", Json.Int d.dv_id);
        ("busy_ns", Json.Int d.dv_busy_ns);
        ("idle_ns", Json.Int (max 0 (snap.sn_wall_ns - d.dv_busy_ns)));
        ("spans", Json.Int (List.fold_left (fun a r -> a + count_spans r) 0 d.dv_roots));
      ]
  in
  Json.Obj
    [
      ("kind", Json.String "host_telemetry");
      ("schema_version", Json.Int schema_version);
      ("wall_ns", Json.Int snap.sn_wall_ns);
      ("phases", Json.List (List.map phase_row (phases snap)));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.sn_counters) );
      ( "wall_meters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap.sn_walls) );
      ("domains", Json.List (List.map domain_row snap.sn_domains));
    ]

let document snap =
  Json.Obj
    [
      ("traceEvents", Json.List (chrome_events snap));
      ("displayTimeUnit", Json.String "ms");
      ("host_telemetry", host_telemetry_json snap);
    ]

let summary_of_document doc =
  match Json.member "host_telemetry" doc with
  | Some s -> Some s
  | None -> (
    match Json.member "kind" doc with
    | Some (Json.String "host_telemetry") -> Some doc
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let s_of_ns ns = float_of_int ns /. 1e9

let render_summary section =
  let ( let* ) r f = match r with Ok x -> f x | Error _ as e -> e in
  let* wall_ns =
    match Option.bind (Json.member "wall_ns" section) Json.to_int with
    | Some w -> Ok w
    | None -> Error "host_telemetry section lacks wall_ns"
  in
  let* phases =
    match Json.member "phases" section with
    | Some (Json.List l) -> Ok l
    | _ -> Error "host_telemetry section lacks a phases list"
  in
  let* domains =
    match Json.member "domains" section with
    | Some (Json.List l) -> Ok l
    | _ -> Error "host_telemetry section lacks a domains list"
  in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "host telemetry: %.3fs wall, %d domain(s)" (s_of_ns wall_ns)
    (List.length domains);
  line "";
  line "%-24s %8s %12s %12s %6s" "phase" "count" "total(s)" "self(s)" "self%";
  let row p =
    let get k = Option.bind (Json.member k p) Json.to_int in
    let name =
      match Json.member "name" p with Some (Json.String s) -> s | _ -> "?"
    in
    match (get "count", get "total_ns", get "self_ns") with
    | Some c, Some t, Some s ->
      Some
        ( s,
          Printf.sprintf "%-24s %8d %12.4f %12.4f %5.1f%%" name c (s_of_ns t)
            (s_of_ns s)
            (if wall_ns = 0 then 0.0
             else 100.0 *. float_of_int s /. float_of_int wall_ns) )
    | _ -> None
  in
  List.filter_map row phases
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> List.iter (fun (_, l) -> line "%s" l);
  line "";
  line "%-10s %12s %12s %6s" "domain" "busy(s)" "idle(s)" "util%";
  List.iter
    (fun d ->
      let get k = Option.bind (Json.member k d) Json.to_int in
      match (get "id", get "busy_ns", get "idle_ns") with
      | Some id, Some busy, Some idle ->
        line "%-10s %12.4f %12.4f %5.1f%%"
          (Printf.sprintf "domain %d" id)
          (s_of_ns busy) (s_of_ns idle)
          (if wall_ns = 0 then 0.0
           else 100.0 *. float_of_int busy /. float_of_int wall_ns)
      | _ -> ())
    domains;
  (match Json.member "counters" section with
  | Some (Json.Obj (_ :: _ as fields)) ->
    line "";
    line "%-32s %12s" "counter" "total";
    List.iter
      (fun (k, v) ->
        match Json.to_int v with
        | Some i -> line "%-32s %12d" k i
        | None -> ())
      fields
  | _ -> ());
  Ok (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Normalized forms                                                    *)
(* ------------------------------------------------------------------ *)

let rec normalize_node (n : span_node) =
  let children =
    List.map normalize_node n.sp_children
    |> List.sort (fun a b -> compare (Json.to_string a) (Json.to_string b))
  in
  Json.Obj
    [
      ("name", Json.String n.sp_name);
      ("args", args_obj n.sp_args);
      ("children", Json.List children);
    ]

let normalized_spans snap =
  let roots =
    List.concat_map (fun d -> List.map normalize_node d.dv_roots) snap.sn_domains
    |> List.sort (fun a b -> compare (Json.to_string a) (Json.to_string b))
  in
  Json.List roots

let normalized_summary snap =
  Json.Obj
    [
      ( "phases",
        Json.List
          (List.map
             (fun (name, (count, _, _)) ->
               Json.Obj [ ("name", Json.String name); ("count", Json.Int count) ])
             (phases snap)) );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.sn_counters) );
      ("domains", Json.Int (List.length snap.sn_domains));
    ]
