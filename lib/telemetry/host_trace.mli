(** Serialization of a {!Telemetry.snapshot}: Chrome trace_event spans
    (one track per domain), the versioned [host_telemetry] summary
    section, and the combined document `darsie --telemetry FILE` writes.

    The document is a regular Chrome trace (a top-level [traceEvents]
    list, loadable in Perfetto) that additionally carries the
    [host_telemetry] object; trace viewers ignore the extra key, and
    [darsie telemetry-summary] reads it back. Host spans live under
    their own process id ({!host_pid}) so they never collide with the
    per-SM tracks of the simulated-GPU trace and the two can share one
    file. *)

val schema_version : int
(** Version of the [host_telemetry] section (independent of the metrics
    document version). *)

val host_pid : int
(** Chrome-trace process id of the host-telemetry tracks. *)

val chrome_events : Telemetry.snapshot -> Darsie_obs.Json.t list
(** Complete ("ph":"X") events for every recorded span, with process /
    thread name metadata; timestamps in microseconds from the epoch,
    one thread track per domain. All strings are routed through the
    {!Darsie_obs.Json} escaper. *)

val host_telemetry_json : Telemetry.snapshot -> Darsie_obs.Json.t
(** The versioned summary section: per-phase [count]/[total_ns]/[self_ns],
    counter totals, wall meters, and per-domain busy/idle. Validated by
    [Darsie_harness.Metrics.validate_telemetry]. *)

val document : Telemetry.snapshot -> Darsie_obs.Json.t
(** [traceEvents] + [displayTimeUnit] + [host_telemetry] in one object. *)

val summary_of_document : Darsie_obs.Json.t -> Darsie_obs.Json.t option
(** Extract the [host_telemetry] section from a document (or return the
    input when it is itself a bare section). *)

val render_summary : Darsie_obs.Json.t -> (string, string) result
(** Human table of a [host_telemetry] section: phases ranked by self
    wall, per-domain utilization, counters. *)

(** {1 Normalized forms}

    Deterministic projections for tests: timestamps zeroed, domain
    identities erased, spans sorted structurally — two runs of the same
    workload must produce equal values regardless of scheduling. *)

val normalized_spans : Telemetry.snapshot -> Darsie_obs.Json.t
(** The merged span forest with times stripped, sorted recursively. *)

val normalized_summary : Telemetry.snapshot -> Darsie_obs.Json.t
(** Phase names/counts, counter totals and the domain count — no
    wall-clock quantities. *)
