(** Host-side telemetry: who is the {e simulator} spending its wall time
    on?

    Every other observability layer (events, stall attribution, pcstat,
    the skip ledger) watches the simulated GPU; this one watches the
    OCaml process that simulates it. Three primitives:

    - {b Spans}: named begin/end intervals with typed args, nested via a
      per-domain stack. Each domain buffers its own spans, so recording
      takes no lock; buffers are merged at {!snapshot} (safe because the
      pool joins its domains before anyone snapshots).
    - {b Counters}: named monotonic integers (trace-cache hits, jumps
      fast-forwarded, shrinker evaluations ...), again accumulated
      per-domain and summed at {!snapshot}.
    - {b Progress}: a rate-limited heartbeat channel for long runs —
      item k/n, current app, cycles/sec — as human lines or NDJSON on
      stderr.

    Everything is always compiled in. Counters always count (an int
    increment through domain-local state). Spans are recorded only while
    {!enable}d, so un-instrumented runs pay one branch per site.

    Time is kept as integer nanoseconds on a per-domain monotone clock
    (wall time clamped to never step backwards), which makes the
    self-time accounting exact: for every span, the durations of its
    children sum to at most its own duration, so phase self-times are
    non-negative by construction and [Σ self = Σ root walls] holds as an
    integer identity that validators can re-prove from serialized
    documents. *)

(** {1 Lifecycle} *)

val enable : unit -> unit
(** Start recording spans (counters are always on). Also (re)marks the
    process epoch if none is set. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans, counters and domain buffers and restart the
    epoch. Test harnesses call this between cases; buffers left behind by
    joined pool domains are discarded too. *)

val elapsed_ns : unit -> int
(** Nanoseconds since the epoch (raw, not domain-clamped) — the cheap
    duration source for callers that time work without opening a span. *)

(** {1 Spans} *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span. Exception-safe: the span closes
    (and is recorded) even if [f] raises. When disabled, [f] runs bare. *)

type handle

val begin_span : ?args:(string * arg) list -> string -> handle
(** Manual form for sites where a closure is awkward. Must be closed with
    {!end_span} on the same domain, in LIFO order. *)

val end_span : ?args:(string * arg) list -> handle -> unit
(** Close a span; [?args] are appended to the ones given at begin (for
    results known only at the end, e.g. the cycle count of a run). *)

(** {1 Counters} *)

val incr : ?by:int -> string -> unit
(** Bump a named counter on the calling domain. Always on. *)

val add_wall : string -> float -> unit
(** Accumulate seconds into a named wall-time meter (kept separate from
    the integer counters: wall meters are nondeterministic and are
    excluded from determinism comparisons). *)

(** {1 Snapshot} *)

type span_node = {
  sp_name : string;
  sp_args : (string * arg) list;
  sp_start_ns : int;  (** relative to the epoch *)
  sp_dur_ns : int;
  sp_children : span_node list;  (** in start order *)
}

type domain_view = {
  dv_id : int;  (** raw [Domain.self] id; 0-indexed order of first use *)
  dv_roots : span_node list;  (** completed top-level spans, in order *)
  dv_busy_ns : int;  (** Σ root durations — span-covered wall *)
}

type snapshot = {
  sn_wall_ns : int;  (** epoch to snapshot time *)
  sn_domains : domain_view list;  (** in order of first use *)
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_walls : (string * float) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Merge every domain buffer. Open spans are not included; call it
    after the work (and its pool joins) completed. *)

val phases : snapshot -> (string * (int * int * int)) list
(** Per-phase summary over all domains: [name -> (count, total_ns,
    self_ns)], sorted by name. [self = total - Σ children of every
    instance]; by the clock-monotonicity argument above [0 <= self <=
    total], and [Σ self over phases = Σ busy over domains] exactly. *)

(** {1 Progress channel} *)

module Progress : sig
  type mode =
    | Off
    | Human  (** one-line heartbeats, rate-limited *)
    | Ndjson  (** machine-readable, one JSON object per line *)

  val configure : ?out:(string -> unit) -> mode -> unit
  (** [out] receives complete lines (no trailing newline); default
      writes to stderr. Reconfiguring resets the rate limiter. *)

  val mode : unit -> mode

  val item : k:int -> n:int -> label:string -> unit
  (** A pool item finished: emits [k/n], the item's label and an ETA,
      subject to rate limiting (the final item always emits). *)

  val cycles : cycles:int -> cycles_per_sec:float -> engine:string -> unit
  (** Simulation heartbeat from inside [Gpu.run], rate-limited. *)

  val warn : string -> unit
  (** Out-of-band warning (e.g. pool straggler); never rate-limited,
      emitted in both Human and Ndjson modes. *)
end
