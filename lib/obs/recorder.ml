type t = {
  cap : int;
  mutable buf : Event.t array;
  mutable len : int;
  mutable dropped : int;
}

let dummy = { Event.cycle = 0; sm = 0; warp = 0; kind = Event.Fetch }

let create ?(cap = 2_000_000) () = { cap; buf = [||]; len = 0; dropped = 0 }

let push t ev =
  if t.len >= t.cap then t.dropped <- t.dropped + 1
  else begin
    if t.len >= Array.length t.buf then begin
      let ncap = min t.cap (max 1024 (2 * Array.length t.buf)) in
      let nbuf = Array.make ncap dummy in
      Array.blit t.buf 0 nbuf 0 t.len;
      t.buf <- nbuf
    end;
    t.buf.(t.len) <- ev;
    t.len <- t.len + 1
  end

let sink t = Sink.of_fn (push t)

let length t = t.len

let dropped t = t.dropped

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let events t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.buf.(i) :: !acc
  done;
  !acc

let count t kind =
  let n = ref 0 in
  iter (fun e -> if e.Event.kind = kind then incr n) t;
  !n
