(** A minimal JSON tree, printer, and parser.

    Exists so the metrics exporters need no external dependency. The
    printer emits canonical compact JSON; the parser accepts standard
    JSON (numbers without [.], [e] or [E] parse as [Int]), which is
    enough for schema validation and round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line form. *)

val to_buffer : Buffer.t -> t -> unit

val pretty_to_string : t -> string
(** Two-space-indented form for files meant to be read by humans. *)

val of_string : string -> (t, string) result
(** Parse error messages carry a character offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_int : t -> int option
(** [Int] directly; integral [Float]s also convert. *)
