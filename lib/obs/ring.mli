(** A bounded ring of the most recent pipeline events.

    The robustness layer keeps one of these alive during a simulation so
    that a deadlock or cycle-bound diagnostic can include the last-N
    events before the failure without paying the memory cost of a full
    {!Recorder}. Unlike the recorder, old events are overwritten rather
    than dropped. *)

type t

val create : cap:int -> t
(** [cap] must be positive. *)

val add : t -> Event.t -> unit

val sink : t -> Sink.t
(** A sink that feeds the ring. *)

val tee : t -> Sink.t -> Sink.t
(** [tee ring downstream] feeds every event to the ring and, when
    [downstream] is enabled, forwards it there too. *)

val events : t -> Event.t list
(** The retained events, oldest first; at most [cap] of them. *)

val total : t -> int
(** Events ever added, including overwritten ones. *)

val clear : t -> unit
