(** Per-static-instruction profile counters — the table behind
    [darsie annotate], the PTX-lite analogue of [perf annotate].

    One row per kernel instruction index plus a synthetic {e none-row}
    for cycles no PC can be blamed for (an idle SM with nothing
    resident). The SM charges every simulated cycle to exactly one
    (row, bucket) pair using the same classification that feeds
    {!Attrib}, so for each bucket the column sum over all rows equals
    the owning SM's bucket total — the cross-layer conservation
    invariant [Gpu.check_attribution] enforces. *)

type t

val create : n:int -> t
(** [n] is the kernel's static instruction count. *)

val n : t -> int
(** Static instruction count this profile was created with. *)

(** {1 Occurrence counters} *)

val note_fetch : t -> pc:int -> unit
(** Count one fetch of the instruction at [pc]. *)

val note_issue : t -> pc:int -> unit
(** Count one issue of the instruction at [pc]. *)

val note_drop : t -> pc:int -> unit
(** Issue-stage elimination (UV reuse-buffer drop). *)

val note_skip : t -> pc:int -> unit
(** Pre-fetch elimination (DARSIE skip or idealized DAC removal). *)

val note_skips : t -> pc:int -> int -> unit
(** Bulk form of {!note_skip}; out-of-range PCs are ignored (engine
    telemetry folds use it for skips the SM pipeline never saw). *)

(** {1 Stall charges} *)

val charge : t -> pc:int -> Attrib.bucket -> unit
(** Charge one cycle of [bucket] to the instruction blocking progress;
    [pc = -1] (or out of range) charges the none-row. *)

val charge_n : t -> pc:int -> Attrib.bucket -> n:int -> unit
(** Bulk form of {!charge}: [n] cycles of [bucket] against one blocking
    PC, used by the timing model's fast-forward path so the conservation
    invariant survives clock jumps. *)

val charged : t -> pc:int -> Attrib.bucket -> int
(** Cycles of [bucket] charged to [pc] so far. *)

val stall_row : t -> pc:int -> Attrib.t
(** Copy of the full per-bucket charge row for [pc]. *)

val row_cycles : t -> pc:int -> int
(** Total cycles charged to this row across all buckets. *)

val unattributed : t -> Attrib.t
(** The none-row. *)

val bucket_totals : t -> Attrib.t
(** Sum over every row (none-row included); equals the owning SM's
    {!Attrib} totals when the feed is conservative. *)

val total_cycles : t -> int
(** Every cycle charged anywhere, none-row included; equals the owning
    SM's cycle count when the feed is conservative. *)

(** {1 Memory round-trip latency} *)

val note_mem_latency : t -> pc:int -> lat:int -> unit
(** Record one completed memory round-trip of [lat] cycles issued by
    the instruction at [pc]. *)

val mem_count : t -> pc:int -> int
(** Completed round-trips recorded for [pc]. *)

val mem_lat_total : t -> pc:int -> int
(** Sum of recorded latencies for [pc]. *)

val mem_lat_max : t -> pc:int -> int
(** Worst recorded latency for [pc]; 0 when none. *)

val mem_lat_mean : t -> pc:int -> float
(** Mean recorded latency for [pc]; 0. when none. *)

val mem_hist : t -> pc:int -> int array
(** Copy of the per-PC latency histogram; see {!lat_bucket_name}. *)

val lat_buckets : int
(** Number of histogram buckets (the last one is open-ended). *)

val lat_bucket_of : int -> int
(** Bucket index a latency falls into. *)

val lat_bucket_name : int -> string
(** Human-readable bound label for a bucket index (["<=8"], ..., [">256"]). *)

(** {1 Accessors and aggregation} *)

val fetches : t -> pc:int -> int
(** Fetches counted for [pc]. *)

val issues : t -> pc:int -> int
(** Issues counted for [pc]. *)

val drops : t -> pc:int -> int
(** Issue-stage drops counted for [pc]. *)

val skips : t -> pc:int -> int
(** Pre-fetch skips counted for [pc]. *)

val total_fetches : t -> int
(** {!fetches} summed over every instruction. *)

val total_issues : t -> int
(** {!issues} summed over every instruction. *)

val total_drops : t -> int
(** {!drops} summed over every instruction. *)

val total_skips : t -> int
(** {!skips} summed over every instruction. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc].
    @raise Invalid_argument on kernel-size mismatch. *)

(** {1 Skip-table entry telemetry} *)

(** Lifetime statistics of one PC's skip-table entries, filled by the
    DARSIE engine and aggregated across TB launches. *)
type skip_entry = {
  sk_allocs : int;  (** leader allocations of this PC's entry *)
  sk_hits : int;  (** follower skips served from the entry *)
  sk_parks : int;  (** warp-cycles parked in the waiting bitmask *)
  sk_load_flushes : int;  (** instances invalidated by a store/atomic *)
  sk_barrier_flushes : int;  (** instances retired by a TB barrier *)
  sk_lifetime : int;  (** total cycles instances stayed live *)
}

val empty_skip_entry : skip_entry
(** All-zero entry, the merge identity. *)

val merge_skip_entry : skip_entry -> skip_entry -> skip_entry
(** Field-wise sum of two entries. *)

val merge_skip_telemetry :
  (int * skip_entry) list list -> (int * skip_entry) list
(** Merge per-SM telemetry lists by PC, sorted ascending. *)

(** {1 Export} *)

val to_json : ?skip_telemetry:(int * skip_entry) list -> t -> Json.t
(** The [per_pc] section of the metrics document. *)
