(* Per-static-instruction profile: the "perf annotate" table behind
   [darsie annotate]. One row per kernel instruction plus a synthetic
   none-row for cycles no PC can be blamed for (a drained SM, for
   instance). Every simulated cycle is charged to exactly one (row,
   bucket) pair using the same classification that feeds Attrib, so the
   per-bucket column sums equal the owning SM's bucket totals — the
   cross-layer conservation invariant Gpu.check_attribution enforces. *)

(* Round-trip latency histogram bucket upper bounds (cycles, inclusive);
   the last bucket is open-ended. *)
let lat_bounds = [| 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let lat_buckets = Array.length lat_bounds + 1

let lat_bucket_of lat =
  let rec go i =
    if i >= Array.length lat_bounds then Array.length lat_bounds
    else if lat <= lat_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let lat_bucket_name i =
  if i = 0 then Printf.sprintf "<=%d" lat_bounds.(0)
  else if i < Array.length lat_bounds then
    Printf.sprintf "%d-%d" (lat_bounds.(i - 1) + 1) lat_bounds.(i)
  else Printf.sprintf ">%d" lat_bounds.(Array.length lat_bounds - 1)

type t = {
  n : int;
  fetch : int array;
  issue : int array;
  drop : int array;
  skip : int array;
  stall : Attrib.t array;  (* n + 1 rows; row n is the none-row *)
  mem_count : int array;
  mem_lat_total : int array;
  mem_lat_max : int array;
  mem_hist : int array array;  (* n x lat_buckets *)
}

let create ~n =
  {
    n;
    fetch = Array.make n 0;
    issue = Array.make n 0;
    drop = Array.make n 0;
    skip = Array.make n 0;
    stall = Array.init (n + 1) (fun _ -> Attrib.create ());
    mem_count = Array.make n 0;
    mem_lat_total = Array.make n 0;
    mem_lat_max = Array.make n 0;
    mem_hist = Array.make_matrix n lat_buckets 0;
  }

let n t = t.n

(* The none-row index; [charge ~pc:(-1)] lands here. *)
let row_of t pc = if pc < 0 || pc >= t.n then t.n else pc

let note_fetch t ~pc = t.fetch.(pc) <- t.fetch.(pc) + 1

let note_issue t ~pc = t.issue.(pc) <- t.issue.(pc) + 1

let note_drop t ~pc = t.drop.(pc) <- t.drop.(pc) + 1

let note_skip t ~pc = t.skip.(pc) <- t.skip.(pc) + 1

let note_skips t ~pc n = if pc >= 0 && pc < t.n then t.skip.(pc) <- t.skip.(pc) + n

let note_mem_latency t ~pc ~lat =
  t.mem_count.(pc) <- t.mem_count.(pc) + 1;
  t.mem_lat_total.(pc) <- t.mem_lat_total.(pc) + lat;
  if lat > t.mem_lat_max.(pc) then t.mem_lat_max.(pc) <- lat;
  let b = lat_bucket_of lat in
  t.mem_hist.(pc).(b) <- t.mem_hist.(pc).(b) + 1

let charge t ~pc bucket = Attrib.bump t.stall.(row_of t pc) bucket

let charge_n t ~pc bucket ~n = Attrib.bump_n t.stall.(row_of t pc) bucket n

let fetches t ~pc = t.fetch.(pc)

let issues t ~pc = t.issue.(pc)

let drops t ~pc = t.drop.(pc)

let skips t ~pc = t.skip.(pc)

let stall_row t ~pc = t.stall.(row_of t pc)

let charged t ~pc bucket = Attrib.get (stall_row t ~pc) bucket

let row_cycles t ~pc = Attrib.total (stall_row t ~pc)

let unattributed t = t.stall.(t.n)

let mem_count t ~pc = t.mem_count.(pc)

let mem_lat_total t ~pc = t.mem_lat_total.(pc)

let mem_lat_max t ~pc = t.mem_lat_max.(pc)

let mem_lat_mean t ~pc =
  if t.mem_count.(pc) = 0 then 0.0
  else float_of_int t.mem_lat_total.(pc) /. float_of_int t.mem_count.(pc)

let mem_hist t ~pc = Array.copy t.mem_hist.(pc)

let total_fetches t = Array.fold_left ( + ) 0 t.fetch

let total_issues t = Array.fold_left ( + ) 0 t.issue

let total_drops t = Array.fold_left ( + ) 0 t.drop

let total_skips t = Array.fold_left ( + ) 0 t.skip

(* Sum of every row's stall charges, none-row included; equals the
   owning SM's Attrib when the per-cycle feed is conservative. *)
let bucket_totals t =
  let acc = Attrib.create () in
  Array.iter (fun row -> Attrib.add acc row) t.stall;
  acc

let total_cycles t = Attrib.total (bucket_totals t)

let add acc x =
  if acc.n <> x.n then invalid_arg "Pcstat.add: kernel size mismatch";
  let bump a b = Array.iteri (fun i v -> a.(i) <- a.(i) + v) b in
  bump acc.fetch x.fetch;
  bump acc.issue x.issue;
  bump acc.drop x.drop;
  bump acc.skip x.skip;
  Array.iteri (fun i row -> Attrib.add acc.stall.(i) row) x.stall;
  bump acc.mem_count x.mem_count;
  bump acc.mem_lat_total x.mem_lat_total;
  Array.iteri
    (fun i v -> if v > acc.mem_lat_max.(i) then acc.mem_lat_max.(i) <- v)
    x.mem_lat_max;
  Array.iteri (fun i row -> bump acc.mem_hist.(i) row) x.mem_hist

(* ------------------------------------------------------------------ *)
(* Skip-table entry telemetry (filled by the DARSIE engine)            *)
(* ------------------------------------------------------------------ *)

type skip_entry = {
  sk_allocs : int;  (** leader allocations of this PC's entry *)
  sk_hits : int;  (** follower skips served from the entry *)
  sk_parks : int;  (** warp-cycles parked in the waiting bitmask *)
  sk_load_flushes : int;  (** instances invalidated by a store/atomic *)
  sk_barrier_flushes : int;  (** instances retired by a TB barrier *)
  sk_lifetime : int;  (** total cycles instances stayed live *)
}

let empty_skip_entry =
  {
    sk_allocs = 0;
    sk_hits = 0;
    sk_parks = 0;
    sk_load_flushes = 0;
    sk_barrier_flushes = 0;
    sk_lifetime = 0;
  }

let merge_skip_entry a b =
  {
    sk_allocs = a.sk_allocs + b.sk_allocs;
    sk_hits = a.sk_hits + b.sk_hits;
    sk_parks = a.sk_parks + b.sk_parks;
    sk_load_flushes = a.sk_load_flushes + b.sk_load_flushes;
    sk_barrier_flushes = a.sk_barrier_flushes + b.sk_barrier_flushes;
    sk_lifetime = a.sk_lifetime + b.sk_lifetime;
  }

(* Merge per-SM telemetry lists by PC, ascending. *)
let merge_skip_telemetry lists =
  let acc = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (pc, e) ->
         let cur =
           Option.value ~default:empty_skip_entry (Hashtbl.find_opt acc pc)
         in
         Hashtbl.replace acc pc (merge_skip_entry cur e)))
    lists;
  Hashtbl.fold (fun pc e l -> (pc, e) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let json_of_skip_entry e =
  Json.Obj
    [
      ("allocs", Json.Int e.sk_allocs);
      ("hits", Json.Int e.sk_hits);
      ("parks", Json.Int e.sk_parks);
      ("load_flushes", Json.Int e.sk_load_flushes);
      ("barrier_flushes", Json.Int e.sk_barrier_flushes);
      ("lifetime_cycles", Json.Int e.sk_lifetime);
    ]

let to_json ?(skip_telemetry = []) t =
  let row pc =
    let base =
      [
        ("idx", Json.Int pc);
        ("fetch", Json.Int t.fetch.(pc));
        ("issue", Json.Int t.issue.(pc));
        ("drop", Json.Int t.drop.(pc));
        ("skip", Json.Int t.skip.(pc));
        ( "stall",
          Json.Obj
            (List.map
               (fun (k, v) -> (k, Json.Int v))
               (Attrib.to_assoc t.stall.(pc))) );
      ]
    in
    let mem =
      if t.mem_count.(pc) = 0 then []
      else
        [
          ( "mem",
            Json.Obj
              [
                ("count", Json.Int t.mem_count.(pc));
                ("lat_total", Json.Int t.mem_lat_total.(pc));
                ("lat_max", Json.Int t.mem_lat_max.(pc));
                ( "hist",
                  Json.List
                    (Array.to_list
                       (Array.map (fun v -> Json.Int v) t.mem_hist.(pc))) );
              ] );
        ]
    in
    let skip =
      match List.assoc_opt pc skip_telemetry with
      | Some e -> [ ("skip_table", json_of_skip_entry e) ]
      | None -> []
    in
    Json.Obj (base @ mem @ skip)
  in
  Json.Obj
    [
      ("n", Json.Int t.n);
      ( "lat_bucket_bounds",
        Json.List
          (Array.to_list (Array.map (fun b -> Json.Int b) lat_bounds)) );
      ("rows", Json.List (List.init t.n row));
      ( "unattributed",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Int v))
             (Attrib.to_assoc t.stall.(t.n))) );
    ]
