(** An in-memory event sink with a bounded buffer.

    Events past [cap] are counted but not stored, so a pathological run
    cannot exhaust memory; exporters report the drop count rather than
    silently truncating. *)

type t

val create : ?cap:int -> unit -> t
(** [cap] defaults to 2,000,000 events (~64 MB worst case). *)

val sink : t -> Sink.t

val length : t -> int
(** Events actually stored. *)

val dropped : t -> int
(** Events discarded once the buffer filled. *)

val events : t -> Event.t list
(** In emission order. *)

val iter : (Event.t -> unit) -> t -> unit

val count : t -> Event.kind -> int
(** Stored events of one kind. *)
