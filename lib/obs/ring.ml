type t = {
  buf : Event.t option array;
  mutable next : int;  (* slot for the next write *)
  mutable total : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Ring.create: cap must be positive";
  { buf = Array.make cap None; next = 0; total = 0 }

let add t e =
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let sink t = Sink.of_fn (add t)

let tee t downstream =
  if Sink.enabled downstream then
    Sink.of_fn (fun e ->
        add t e;
        Sink.emit downstream e)
  else sink t

let events t =
  let cap = Array.length t.buf in
  let rec collect i acc =
    if i < 0 then acc
    else
      match t.buf.((t.next + i) mod cap) with
      | Some e -> collect (i - 1) (e :: acc)
      | None -> collect (i - 1) acc
  in
  collect (cap - 1) []

let total t = t.total

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0
