(** Stall-cycle attribution.

    Every SM cycle is classified into exactly one bucket, so for any
    single SM the bucket counts sum to the cycles it simulated — the
    invariant the CLI and tests enforce. [Active] covers cycles where at
    least one issue slot was used (including DARSIE/UV drops); the other
    buckets split the non-issuing cycles by the dominant blocking
    reason. *)

type bucket =
  | Active  (** >= 1 warp instruction issued or dropped this cycle *)
  | Fetch_starved
      (** runnable warps exist but their I-buffers hold nothing old
          enough to issue (fetch width, I-cache miss wait, pipeline
          fill) *)
  | Scoreboard
      (** an aged I-buffer head was blocked by operand dependences on
          short-latency producers or by issue-stage resources *)
  | Barrier  (** every runnable warp is waiting at a TB-wide barrier *)
  | Darsie_sync
      (** warps are fetch-gated by DARSIE synchronization (branch sync,
          LeaderWB wait, freelist pressure) *)
  | Mem_pending
      (** progress is blocked behind in-flight memory operations *)
  | Mem_struct
      (** an aged, scoreboard-ready head was held back by a structural
          memory limit: the warp's MSHRs are all occupied
          ([Config.mshrs]) or the shared-memory port is serializing
          bank-conflict replays ([Config.smem_banks]). Always zero when
          both knobs are at their defaults (off) *)
  | Idle  (** no resident work: the SM drained or never got a TB *)

val all_buckets : bucket list

val bucket_name : bucket -> string

type t = {
  mutable active : int;
  mutable fetch_starved : int;
  mutable scoreboard : int;
  mutable barrier : int;
  mutable darsie_sync : int;
  mutable mem_pending : int;
  mutable mem_struct : int;
  mutable idle : int;
}

val create : unit -> t

val bump : t -> bucket -> unit

val bump_n : t -> bucket -> int -> unit
(** [bump_n t b n] charges [n] cycles to bucket [b] at once — the bulk
    form the fast-forward path uses to account for a jumped-over span. *)

val get : t -> bucket -> int

val total : t -> int
(** Sum over all buckets; equals the cycle count of the SM that owns it. *)

val add : t -> t -> unit
(** [add acc x] accumulates every bucket of [x] into [acc]. *)

val to_assoc : t -> (string * int) list
(** Stable bucket order, suitable for export. *)

val pp : Format.formatter -> t -> unit
