type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  to_buffer buf j;
  Buffer.contents buf

let pretty_to_string j =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | List (_ :: _ as xs) ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj (_ :: _ as fields) ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          go (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
    | leaf -> to_buffer buf leaf
  in
  go 0 j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then error "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> error "bad \\u escape"
               in
               pos := !pos + 4;
               (* UTF-8 encode the code point (BMP only). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> error (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if
      String.contains tok '.' || String.contains tok 'e'
      || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> error (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error (off, msg) ->
    Error (Printf.sprintf "parse error at offset %d: %s" off msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
