(** Per-interval sampled counter time-series.

    A producer (one per SM) calls {!boundary} each cycle — an integer
    modulo when sampling is on, nothing at all when it is off — and on a
    boundary snapshots its cumulative counters into {!record}. The
    series stores per-interval {e deltas}, so each point is the activity
    inside [(point.cycle - interval, point.cycle]] (the final point may
    cover a partial interval). *)

type point = { cycle : int; values : int array }

type t

val create : interval:int -> names:string list -> t
(** @raise Invalid_argument when [interval < 1] or [names] is empty. *)

val interval : t -> int

val names : t -> string list

val boundary : t -> cycle:int -> bool
(** True when [cycle] is a sampling boundary (a positive multiple of the
    interval). *)

val record : t -> cycle:int -> int array -> unit
(** Snapshot of the cumulative counter values at [cycle]; stores the
    delta since the previous record. A repeated [cycle] is ignored (so a
    final flush landing exactly on a boundary is safe).

    @raise Invalid_argument on a non-monotonic cycle or a length
    mismatch with [names]. *)

val points : t -> point list
(** In cycle order. *)

val num_points : t -> int
