type kind =
  | Fetch
  | Icache_miss
  | Skip_prefetch
  | Issue
  | Drop_at_issue
  | Barrier_arrive
  | Barrier_release
  | Darsie_sync_stall
  | Mem_access
  | L1_miss
  | Dram_txn
  | Tb_launch
  | Tb_finish

type t = { cycle : int; sm : int; warp : int; kind : kind }

let kind_name = function
  | Fetch -> "fetch"
  | Icache_miss -> "icache_miss"
  | Skip_prefetch -> "skip_prefetch"
  | Issue -> "issue"
  | Drop_at_issue -> "drop_at_issue"
  | Barrier_arrive -> "barrier_arrive"
  | Barrier_release -> "barrier_release"
  | Darsie_sync_stall -> "darsie_sync_stall"
  | Mem_access -> "mem_access"
  | L1_miss -> "l1_miss"
  | Dram_txn -> "dram_txn"
  | Tb_launch -> "tb_launch"
  | Tb_finish -> "tb_finish"

let all_kinds =
  [ Fetch; Icache_miss; Skip_prefetch; Issue; Drop_at_issue; Barrier_arrive;
    Barrier_release; Darsie_sync_stall; Mem_access; L1_miss; Dram_txn;
    Tb_launch; Tb_finish ]

let pp fmt e =
  Format.fprintf fmt "[c%d sm%d w%d] %s" e.cycle e.sm e.warp (kind_name e.kind)
