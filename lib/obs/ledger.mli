(** Skip ledger: exhaustive dynamic-fate accounting for statically
    redundant instructions.

    For every instruction the compiler marks DR or CR (statically
    eligible before launch-time promotion), every dynamic {e occurrence}
    — one (warp, trace position) passage through the fetch slot — is
    classified into exactly one {!fate}. The eligible occurrences are
    counted independently when a threadblock launches, so per PC, per SM
    and whole-run the fates must sum to the eligible count — the
    conservation invariant {!check} verifies and
    [Darsie_timing.Gpu.check_ledger] enforces, in the same
    buckets-sum-to-total style as stall attribution.

    The derived {e redundancy coverage} — captured (skipped or parked
    behind a leader's writeback) over eligible — is the headline number
    [darsie explain] and the trendline track. *)

(** Where one eligible dynamic occurrence ended up. The taxonomy is a
    partition: every occurrence gets exactly one fate. *)
type fate =
  | Skipped  (** follower skipped the instruction pre-fetch *)
  | Leader_executed
      (** executed as the leader of a live skip-table instance (the one
          warp per instance the paper charges the execution to) *)
  | Parked_waiting_leaderwb
      (** skipped, but only after parking in the instance's warps-waiting
          bitmask for the leader's writeback; the park cycles themselves
          are stall attribution, the fate is charged once on resolution *)
  | Blocked_divergence
      (** executed because the warp had been dropped from the majority
          path by SIMD-mask divergence *)
  | Blocked_branch_sync
      (** executed because the warp was dropped at a branch
          synchronization (its successor disagreed with the majority) *)
  | Evicted_capacity
      (** executed because no skip-table instance existed and none could
          be allocated (8-entry PC table exhausted) *)
  | Freelist_stall
      (** executed after giving up on an empty rename-register freelist
          (32 renamed vregs per TB, bounded wait) *)
  | Flushed_store
      (** load entry: its instance was flushed by a store before this
          warp could skip (§4.4) *)
  | Flushed_atomic  (** load entry flushed by an atomic *)
  | Demoted_at_launch
      (** CR resolved to Vector because the launch failed the
          xdim/warp-size promotion test — machine-independent *)
  | Skip_disabled
      (** the plugged-in engine has no skip path (BASE, UV, DAC-IDEAL) *)

val all_fates : fate list

val nfates : int

val fate_name : fate -> string
(** Stable snake_case name used in JSON and CSV. *)

type t

val create : n:int -> t
(** A ledger over [n] static instructions, all counts zero. *)

val size : t -> int

val note_expected : t -> pc:int -> unit
(** One more eligible dynamic occurrence of [pc] entered the machine
    (counted at threadblock launch by scanning the installed traces). *)

val note : t -> pc:int -> fate -> unit
(** Record the fate of one occurrence of [pc]. *)

val get : t -> pc:int -> fate -> int

val expected : t -> pc:int -> int

val outcome_sum : t -> pc:int -> int
(** Sum of all fate counts at [pc]. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] element-wise.

    @raise Invalid_argument on size mismatch. *)

val expected_total : t -> int

val fate_total : t -> fate -> int

val captured : t -> int
(** [Skipped] + [Parked_waiting_leaderwb]: occurrences DARSIE actually
    eliminated. *)

val coverage : t -> float
(** [captured / expected_total]; [1.0] when nothing was eligible. *)

val check : t -> (unit, string) result
(** The conservation invariant: for every PC, eligible occurrences equal
    the sum of recorded fates. *)

val totals_assoc : t -> (string * int) list
(** Per-fate totals in {!all_fates} order, keyed by {!fate_name}. *)

val to_json : t -> Json.t
(** The [skip_ledger] metrics section: totals, coverage and per-PC rows
    (docs/metrics-schema.md). *)
