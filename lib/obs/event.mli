(** Typed pipeline events emitted by the timing model.

    Events are deliberately flat — three small integers and a variant —
    so that constructing one costs a single minor allocation and the
    null-sink path (see {!Sink}) pays only the branch that decides not
    to construct it. *)

type kind =
  | Fetch  (** warp instruction fetched into an I-buffer *)
  | Icache_miss
  | Skip_prefetch  (** instruction eliminated before fetch (DARSIE / DAC) *)
  | Issue
  | Drop_at_issue  (** eliminated at issue (UV reuse hit) *)
  | Barrier_arrive
  | Barrier_release  (** TB-wide barrier released (warp = TB slot) *)
  | Darsie_sync_stall
      (** warp-cycle lost to DARSIE synchronization (branch sync,
          LeaderWB wait, freelist pressure) *)
  | Mem_access  (** global-memory instruction reached the L1 *)
  | L1_miss
  | Dram_txn
  | Tb_launch  (** threadblock installed (warp = TB id) *)
  | Tb_finish  (** threadblock retired (warp = TB slot) *)

type t = {
  cycle : int;
  sm : int;
  warp : int;  (** SM-local warp id; [-1] when not attributable to a warp *)
  kind : kind;
}

val kind_name : kind -> string
(** Stable lowercase-snake name used by the exporters. *)

val all_kinds : kind list

val pp : Format.formatter -> t -> unit
