type t = Null | Fn of (Event.t -> unit)

let null = Null

let of_fn f = Fn f

let enabled = function Null -> false | Fn _ -> true

let emit t ev = match t with Null -> () | Fn f -> f ev
