(* Skip ledger: exhaustive dynamic-fate accounting for statically
   redundant instructions. One dynamic occurrence = one (warp, trace
   position) passage of a PC the compiler marked DR or CR; each passage is
   classified into exactly one fate, so per PC the fates sum to the
   independently counted eligible occurrences — the conservation invariant
   Gpu.check_ledger enforces, in the same style as stall attribution. *)

type fate =
  | Skipped
  | Leader_executed
  | Parked_waiting_leaderwb
  | Blocked_divergence
  | Blocked_branch_sync
  | Evicted_capacity
  | Freelist_stall
  | Flushed_store
  | Flushed_atomic
  | Demoted_at_launch
  | Skip_disabled

let all_fates =
  [
    Skipped;
    Leader_executed;
    Parked_waiting_leaderwb;
    Blocked_divergence;
    Blocked_branch_sync;
    Evicted_capacity;
    Freelist_stall;
    Flushed_store;
    Flushed_atomic;
    Demoted_at_launch;
    Skip_disabled;
  ]

let nfates = List.length all_fates

let fate_index = function
  | Skipped -> 0
  | Leader_executed -> 1
  | Parked_waiting_leaderwb -> 2
  | Blocked_divergence -> 3
  | Blocked_branch_sync -> 4
  | Evicted_capacity -> 5
  | Freelist_stall -> 6
  | Flushed_store -> 7
  | Flushed_atomic -> 8
  | Demoted_at_launch -> 9
  | Skip_disabled -> 10

let fate_name = function
  | Skipped -> "skipped"
  | Leader_executed -> "leader_executed"
  | Parked_waiting_leaderwb -> "parked_waiting_leaderwb"
  | Blocked_divergence -> "blocked_divergence"
  | Blocked_branch_sync -> "blocked_branch_sync"
  | Evicted_capacity -> "evicted_capacity"
  | Freelist_stall -> "freelist_stall"
  | Flushed_store -> "flushed_store"
  | Flushed_atomic -> "flushed_atomic"
  | Demoted_at_launch -> "demoted_at_launch"
  | Skip_disabled -> "skip_disabled"

type t = {
  n : int;
  expected : int array;
  counts : int array;  (* n * nfates, row-major by PC *)
}

let create ~n = { n; expected = Array.make n 0; counts = Array.make (n * nfates) 0 }

let size t = t.n

let note_expected t ~pc = t.expected.(pc) <- t.expected.(pc) + 1

let note t ~pc fate =
  let i = (pc * nfates) + fate_index fate in
  t.counts.(i) <- t.counts.(i) + 1

let get t ~pc fate = t.counts.((pc * nfates) + fate_index fate)

let expected t ~pc = t.expected.(pc)

let outcome_sum t ~pc =
  let s = ref 0 in
  for f = 0 to nfates - 1 do
    s := !s + t.counts.((pc * nfates) + f)
  done;
  !s

let add acc x =
  if acc.n <> x.n then invalid_arg "Ledger.add: size mismatch";
  for pc = 0 to acc.n - 1 do
    acc.expected.(pc) <- acc.expected.(pc) + x.expected.(pc)
  done;
  for i = 0 to Array.length acc.counts - 1 do
    acc.counts.(i) <- acc.counts.(i) + x.counts.(i)
  done

let expected_total t = Array.fold_left ( + ) 0 t.expected

let fate_total t fate =
  let f = fate_index fate in
  let s = ref 0 in
  for pc = 0 to t.n - 1 do
    s := !s + t.counts.((pc * nfates) + f)
  done;
  !s

let captured t = fate_total t Skipped + fate_total t Parked_waiting_leaderwb

let coverage t =
  let e = expected_total t in
  if e = 0 then 1.0 else float_of_int (captured t) /. float_of_int e

let check t =
  let bad = ref None in
  for pc = 0 to t.n - 1 do
    if !bad = None then begin
      let e = expected t ~pc and s = outcome_sum t ~pc in
      if e <> s then bad := Some (pc, e, s)
    end
  done;
  match !bad with
  | None -> Ok ()
  | Some (pc, e, s) ->
    Error
      (Printf.sprintf
         "skip-ledger conservation violated at pc %d: %d eligible occurrences, \
          %d fates recorded"
         pc e s)

let totals_assoc t = List.map (fun f -> (fate_name f, fate_total t f)) all_fates

let to_json t =
  let module J = Json in
  let row pc =
    J.Obj
      (("pc", J.Int pc)
      :: ("expected", J.Int (expected t ~pc))
      :: List.map (fun f -> (fate_name f, J.Int (get t ~pc f))) all_fates)
  in
  let rows =
    List.init t.n (fun pc -> pc)
    |> List.filter (fun pc -> expected t ~pc > 0 || outcome_sum t ~pc > 0)
    |> List.map row
  in
  J.Obj
    [
      ("expected_total", J.Int (expected_total t));
      ("captured", J.Int (captured t));
      ("coverage", J.Float (coverage t));
      ("totals", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (totals_assoc t)));
      ("rows", J.List rows);
    ]
