type point = { cycle : int; values : int array }

type t = {
  interval : int;
  names : string list;
  width : int;
  mutable rev_points : point list;
  mutable last : int array;  (* cumulative values at last_cycle *)
  mutable last_cycle : int;
}

let create ~interval ~names =
  if interval < 1 then invalid_arg "Series.create: interval must be >= 1";
  if names = [] then invalid_arg "Series.create: no counter names";
  {
    interval;
    names;
    width = List.length names;
    rev_points = [];
    last = Array.make (List.length names) 0;
    last_cycle = 0;
  }

let interval t = t.interval

let names t = t.names

let boundary t ~cycle = cycle > 0 && cycle mod t.interval = 0

let record t ~cycle values =
  if Array.length values <> t.width then
    invalid_arg "Series.record: value width mismatch";
  if cycle < t.last_cycle then invalid_arg "Series.record: cycle went backwards";
  if cycle > t.last_cycle then begin
    let delta = Array.mapi (fun i v -> v - t.last.(i)) values in
    t.rev_points <- { cycle; values = delta } :: t.rev_points;
    t.last <- Array.copy values;
    t.last_cycle <- cycle
  end

let points t = List.rev t.rev_points

let num_points t = List.length t.rev_points
