type bucket =
  | Active
  | Fetch_starved
  | Scoreboard
  | Barrier
  | Darsie_sync
  | Mem_pending
  | Mem_struct
  | Idle

let all_buckets =
  [ Active; Fetch_starved; Scoreboard; Barrier; Darsie_sync; Mem_pending;
    Mem_struct; Idle ]

let bucket_name = function
  | Active -> "active"
  | Fetch_starved -> "fetch_starved"
  | Scoreboard -> "scoreboard"
  | Barrier -> "barrier"
  | Darsie_sync -> "darsie_sync"
  | Mem_pending -> "mem_pending"
  | Mem_struct -> "mem_struct"
  | Idle -> "idle"

type t = {
  mutable active : int;
  mutable fetch_starved : int;
  mutable scoreboard : int;
  mutable barrier : int;
  mutable darsie_sync : int;
  mutable mem_pending : int;
  mutable mem_struct : int;
  mutable idle : int;
}

let create () =
  {
    active = 0;
    fetch_starved = 0;
    scoreboard = 0;
    barrier = 0;
    darsie_sync = 0;
    mem_pending = 0;
    mem_struct = 0;
    idle = 0;
  }

let bump t = function
  | Active -> t.active <- t.active + 1
  | Fetch_starved -> t.fetch_starved <- t.fetch_starved + 1
  | Scoreboard -> t.scoreboard <- t.scoreboard + 1
  | Barrier -> t.barrier <- t.barrier + 1
  | Darsie_sync -> t.darsie_sync <- t.darsie_sync + 1
  | Mem_pending -> t.mem_pending <- t.mem_pending + 1
  | Mem_struct -> t.mem_struct <- t.mem_struct + 1
  | Idle -> t.idle <- t.idle + 1

let bump_n t b n =
  match b with
  | Active -> t.active <- t.active + n
  | Fetch_starved -> t.fetch_starved <- t.fetch_starved + n
  | Scoreboard -> t.scoreboard <- t.scoreboard + n
  | Barrier -> t.barrier <- t.barrier + n
  | Darsie_sync -> t.darsie_sync <- t.darsie_sync + n
  | Mem_pending -> t.mem_pending <- t.mem_pending + n
  | Mem_struct -> t.mem_struct <- t.mem_struct + n
  | Idle -> t.idle <- t.idle + n

let get t = function
  | Active -> t.active
  | Fetch_starved -> t.fetch_starved
  | Scoreboard -> t.scoreboard
  | Barrier -> t.barrier
  | Darsie_sync -> t.darsie_sync
  | Mem_pending -> t.mem_pending
  | Mem_struct -> t.mem_struct
  | Idle -> t.idle

let total t =
  t.active + t.fetch_starved + t.scoreboard + t.barrier + t.darsie_sync
  + t.mem_pending + t.mem_struct + t.idle

let add acc x =
  acc.active <- acc.active + x.active;
  acc.fetch_starved <- acc.fetch_starved + x.fetch_starved;
  acc.scoreboard <- acc.scoreboard + x.scoreboard;
  acc.barrier <- acc.barrier + x.barrier;
  acc.darsie_sync <- acc.darsie_sync + x.darsie_sync;
  acc.mem_pending <- acc.mem_pending + x.mem_pending;
  acc.mem_struct <- acc.mem_struct + x.mem_struct;
  acc.idle <- acc.idle + x.idle

let to_assoc t = List.map (fun b -> (bucket_name b, get t b)) all_buckets

let pp fmt t =
  let tot = max 1 (total t) in
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i b ->
      if i > 0 then Format.fprintf fmt "@,";
      let n = get t b in
      Format.fprintf fmt "%-14s %10d  (%5.1f%%)" (bucket_name b) n
        (100.0 *. float_of_int n /. float_of_int tot))
    all_buckets;
  Format.fprintf fmt "@]"
