let schema_version = 3

(* Chrome trace_event format: ts is in microseconds; we map one simulated
   cycle to one microsecond so Perfetto's timeline reads in cycles. *)

let meta_event ~pid ~name =
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let instant_event (e : Event.t) =
  Json.Obj
    [
      ("name", Json.String (Event.kind_name e.Event.kind));
      ("ph", Json.String "i");
      ("ts", Json.Int e.Event.cycle);
      ("pid", Json.Int e.Event.sm);
      ("tid", Json.Int (max 0 e.Event.warp));
      ("s", Json.String "t");
    ]

let counter_events ~sm series =
  List.map
    (fun (p : Series.point) ->
      let args =
        List.map2
          (fun name v -> (name, Json.Int v))
          (Series.names series)
          (Array.to_list p.Series.values)
      in
      Json.Obj
        [
          ("name", Json.String "counters");
          ("ph", Json.String "C");
          ("ts", Json.Int p.Series.cycle);
          ("pid", Json.Int sm);
          ("args", Json.Obj args);
        ])
    (Series.points series)

(* The skip ledger has no time axis; it surfaces as one final counter
   sample per fate so the totals sit next to the sampled series tracks. *)
let ledger_events ~ts ledger =
  [
    Json.Obj
      [
        ("name", Json.String "skip_ledger");
        ("ph", Json.String "C");
        ("ts", Json.Int ts);
        ("pid", Json.Int 0);
        ( "args",
          Json.Obj
            (("eligible", Json.Int (Ledger.expected_total ledger))
            :: List.map
                 (fun (k, v) -> (k, Json.Int v))
                 (Ledger.totals_assoc ledger)) );
      ];
  ]

let chrome_trace ?recorder ?(series = [||]) ?ledger ?(extra = []) ~name () =
  let sms = Hashtbl.create 8 in
  let note_sm id = Hashtbl.replace sms id () in
  Array.iteri (fun sm _ -> note_sm sm) series;
  let instants =
    match recorder with
    | None -> []
    | Some r ->
      let acc = ref [] in
      Recorder.iter
        (fun e ->
          note_sm e.Event.sm;
          acc := instant_event e :: !acc)
        r;
      List.rev !acc
  in
  let metas =
    Hashtbl.fold (fun sm () acc -> (sm, ()) :: acc) sms []
    |> List.map fst |> List.sort compare
    |> List.map (fun sm ->
           meta_event ~pid:sm ~name:(Printf.sprintf "%s / SM %d" name sm))
  in
  let counters =
    Array.to_list (Array.mapi (fun sm s -> counter_events ~sm s) series)
    |> List.concat
  in
  let ledger_track =
    match ledger with
    | None -> []
    | Some l ->
      let ts =
        List.fold_left
          (fun acc (e : Json.t) ->
            match Json.member "ts" e with
            | Some (Json.Int t) -> max acc t
            | _ -> acc)
          0 (instants @ counters)
      in
      ledger_events ~ts l
  in
  let truncation =
    match recorder with
    | Some r when Recorder.dropped r > 0 ->
      [
        Json.Obj
          [
            ( "name",
              Json.String
                (Printf.sprintf "recorder dropped %d events"
                   (Recorder.dropped r)) );
            ("ph", Json.String "i");
            ("ts", Json.Int 0);
            ("pid", Json.Int 0);
            ("tid", Json.Int 0);
            ("s", Json.String "g");
          ];
      ]
    | _ -> []
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (metas @ truncation @ instants @ counters @ ledger_track @ extra) );
      ("displayTimeUnit", Json.String "ms");
    ]

let csv_of_series series =
  let buf = Buffer.create 4096 in
  let names =
    if Array.length series = 0 then []
    else Series.names series.(0)
  in
  Buffer.add_string buf "sm,cycle";
  List.iter (fun n -> Buffer.add_char buf ','; Buffer.add_string buf n) names;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun sm s ->
      List.iter
        (fun (p : Series.point) ->
          Buffer.add_string buf (string_of_int sm);
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int p.Series.cycle);
          Array.iter
            (fun v ->
              Buffer.add_char buf ',';
              Buffer.add_string buf (string_of_int v))
            p.Series.values;
          Buffer.add_char buf '\n')
        (Series.points s))
    series;
  Buffer.contents buf

let csv_of_ledger ledger =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "pc,expected";
  List.iter
    (fun f ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (Ledger.fate_name f))
    Ledger.all_fates;
  Buffer.add_char buf '\n';
  for pc = 0 to Ledger.size ledger - 1 do
    if Ledger.expected ledger ~pc > 0 || Ledger.outcome_sum ledger ~pc > 0 then begin
      Buffer.add_string buf (string_of_int pc);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int (Ledger.expected ledger ~pc));
      List.iter
        (fun f ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int (Ledger.get ledger ~pc f)))
        Ledger.all_fates;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf
