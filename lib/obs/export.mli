(** Machine-readable exporters.

    - {!chrome_trace} writes Chrome [trace_event] JSON that loads in
      [chrome://tracing] and Perfetto: one process per SM, instant
      events per pipeline event, counter tracks from the sampled
      series.
    - {!csv_of_series} flattens per-SM interval samples into one CSV.

    The full metrics document (which also needs the timing model's
    counters) is assembled by [Darsie_harness.Metrics] on top of
    {!Json}; {!schema_version} is bumped whenever its layout changes
    incompatibly. *)

val schema_version : int

val chrome_trace :
  ?recorder:Recorder.t ->
  ?series:Series.t array ->
  ?ledger:Ledger.t ->
  ?extra:Json.t list ->
  name:string ->
  unit ->
  Json.t
(** [series] is indexed by SM id. The trace carries a metadata event
    naming each SM process after [name] and, when the recorder dropped
    events, an instant event flagging the truncation. [ledger], when
    given, adds one [skip_ledger] counter sample (per-fate totals) at the
    trace's last timestamp. [extra] events are appended verbatim — used
    to merge host-telemetry span tracks (which live under their own
    process id) into the same file. *)

val csv_of_series : Series.t array -> string
(** Header [sm,cycle,<counter...>]; one row per (SM, interval) sample. *)

val csv_of_ledger : Ledger.t -> string
(** Header [pc,expected,<fate...>]; one row per static PC with any
    eligible occurrence or recorded fate. *)
