(** Event sinks.

    The timing model's hot loop guards every emission with
    {!enabled}, so with the {!null} sink tracing costs one predictable
    branch per site and zero allocations:

    {[
      if Sink.enabled t.sink then
        Sink.emit t.sink { Event.cycle; sm; warp; kind = Event.Issue }
    ]} *)

type t

val null : t
(** Discards everything; [enabled null = false]. *)

val of_fn : (Event.t -> unit) -> t

val enabled : t -> bool

val emit : t -> Event.t -> unit
(** No-op on {!null}. Callers on hot paths should still test
    {!enabled} first to avoid constructing the event. *)
