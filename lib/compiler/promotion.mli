(** Launch-time promotion of conditional redundancy (paper §4.2).

    Conditionally redundant instructions are evaluated against the
    launch-time threadblock dimensions: when the kernel uses
    multi-dimensional threadblocks whose x dimension is a power of two no
    larger than the warp size, they are promoted to definitely redundant;
    otherwise they are demoted to true vector instructions. The promotion
    models the GPU driver's JIT finalization pass (or the equivalent small
    hardware check). *)

type t = {
  analysis : Analysis.t;
  promoted : bool;  (** did the launch satisfy the x-dimension condition? *)
  promoted_xy : bool;
      (** did the launch satisfy the 3D xy-plane condition? *)
  block_dim : Darsie_isa.Kernel.dim3;  (** the launch's threadblock shape *)
  warp_size : int;
  tb_redundant : bool array;
      (** per instruction: resolved to definitely redundant and
          structurally skippable by DARSIE *)
  dac_removable : bool array;
      (** per instruction: removed by the idealized DAC baseline — a
          statically uniform or affine ALU instruction (1D or 2D,
          redundant or not; never memory or control flow) *)
  uv_eligible : bool array;
      (** per instruction: eliminable by the UV baseline — uniform
          redundant, non-memory *)
}

val resolve :
  Analysis.t -> Darsie_isa.Kernel.launch -> warp_size:int -> t

val resolves_redundant :
  Marking.redundancy -> block:Darsie_isa.Kernel.dim3 -> warp_size:int -> bool
(** Pure launch-time-promotion query: would an instruction with this
    static marking resolve to definitely redundant under a hypothetical
    threadblock geometry? [Def_redundant] always does; [Cond_redundant]
    iff the block is multi-dimensional with a power-of-two x dimension no
    larger than the warp size (§4.2); [Cond_redundant_xy] iff the 3D
    xy-plane condition holds; [Vector] never. The kernel fuzzer uses this
    to steer generated geometries onto (and just off) the promotion
    boundary without building a launch first. *)

val skip_count_upper_bound : t -> int
(** Number of static instructions resolved TB-redundant (for reporting). *)

val verdict : t -> int -> string
(** One-line launch-time verdict for instruction [i]: its static marking
    and how this launch resolved it — e.g. ["CR promoted to DR: x-dim
    condition holds (block (32,8,1), warp 32)"] or ["CR demoted to
    vector: ..."]. The launch-time half of [darsie explain]'s static
    story. *)
