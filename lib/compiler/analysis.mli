(** DARSIE's static redundancy-marking compiler pass (paper §4.2).

    Seeds the analysis with the intrinsic values known to be uniform across
    a threadblock ([%ctaid], [%ntid], [%nctaid], immediates, kernel
    parameters — all {e definitely redundant}) and with [%tid.x]
    ({e conditionally redundant}, affine), then propagates the classes
    through the program-dependence structure with a forward dataflow over
    the CFG. Loads inherit the redundancy of their address and produce
    unstructured values. When multiple definitions reach an operand the
    weakest wins.

    The analysis is launch-independent; {!Promotion} later resolves
    conditional markings against the launch-time threadblock dimensions. *)

type inst_info = {
  cls : Marking.cls;
      (** class of the value the instruction produces (meet over source
          operands and, for guarded instructions, the guard) *)
  skippable : bool;
      (** structurally eligible for DARSIE skipping: writes a vector
          register, is unguarded, and is not an atomic *)
}

type t = {
  kernel : Darsie_isa.Kernel.t;
  cfg : Cfg.t;
  postdom : Postdom.t;
  info : inst_info array;
  ins : (Marking.cls array * Marking.cls array) array;
      (** per-block (vector, predicate) register classes at block entry *)
  ctrl : Marking.cls array;
      (** per-instruction control-dependence class: the meet of the
          predicate classes of every conditional branch whose divergent
          region (branch to reconvergence point, or the body of a
          backward branch) contains the instruction; an instruction's
          class meets with it, since a value defined under a
          vector-divergent branch is lane-dependent after reconvergence
          even when its own operands are uniform *)
  mem_dep : bool array;  (** see {!mem_dep} *)
  tid_y : bool;  (** whether the analysis seeded [tid.y] (3D extension) *)
}

val analyze : ?tid_y_redundancy:bool -> Darsie_isa.Kernel.t -> t
(** [tid_y_redundancy] (default false) additionally seeds [tid.y] as
    conditionally redundant for 3D threadblocks — the extension the paper
    notes in §2 but does not evaluate. *)

val marking : t -> int -> Marking.redundancy
(** Static marking of instruction [i]: DR, CR or V. *)

val shape : t -> int -> Marking.shape

val skippable : t -> int -> bool

val mem_dep : t -> int -> bool
(** Whether instruction [i] is {e memory-dependent}: a load, or an
    instruction any of whose source registers/predicates may
    (transitively) hold a load-derived value. A store or atomic must
    invalidate the skip-table entries of every memory-dependent
    instruction, not just of loads — a surviving entry for an ALU
    instruction computed {e from} a stale loaded value would forward
    pre-store data to follower warps. Flow-insensitive (any definition
    taints the register), so conservative. *)

val block_in : t -> int -> Marking.cls array
(** Per-vector-register classes at entry of block [b] (for tests and
    debugging); index = register number. *)

val reconvergence : t -> int -> int option
(** Reconvergence instruction index for a branch at instruction [i] (the
    immediate postdominator), [None] when paths rejoin only at exit. *)

val operand_cls : Marking.cls array -> Marking.cls array -> Darsie_isa.Instr.operand -> Marking.cls
(** [operand_cls vregs pregs op] — the seed/lookup rule exposed for tests:
    intrinsic seeds for sregs, [Def_redundant]/[Uniform] for immediates and
    parameters. ([pregs] is unused for vector operands but kept for
    signature symmetry.) *)

val hints : t -> int array
(** The per-instruction 2-bit redundancy encodings the static compiler
    embeds in the binary's spare bits (paper §4.2;
    [Darsie_isa.Encode.encode ~hint]): 0 = vector, 1 = conditionally
    redundant, 2 = definitely redundant, 3 = conditionally redundant on
    the 3D xy condition. *)

val explain : t -> int -> string
(** Multi-line provenance story for instruction [i]: each source
    operand's class with where it came from (a named intrinsic seed —
    tid.x, grid geometry, immediate, kernel parameter — or the dataflow
    fixpoint), the guard's class when guarded, the resulting meet, and
    why the instruction is or is not structurally skippable. The operand
    classes are recomputed by replaying the containing basic block from
    its converged entry state, so the story shown is exactly the one the
    marking pass saw. The static half of [darsie explain].

    @raise Invalid_argument when [i] is out of range. *)

val pp_markings : Format.formatter -> t -> unit
(** Figure-6 style dump: one line per instruction with its byte PC, its
    DR/CR/V marking and its assembly text. *)
