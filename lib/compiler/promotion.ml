open Darsie_isa

type t = {
  analysis : Analysis.t;
  promoted : bool;
  promoted_xy : bool;
  block_dim : Kernel.dim3;
  warp_size : int;
  tb_redundant : bool array;
  dac_removable : bool array;
  uv_eligible : bool array;
}

let resolve (analysis : Analysis.t) (launch : Kernel.launch) ~warp_size =
  let promoted = Kernel.xdim_condition launch ~warp_size in
  let promoted_xy = Kernel.xydim_condition launch ~warp_size in
  let n = Array.length analysis.Analysis.info in
  let resolved_red i =
    match Analysis.marking analysis i with
    | Marking.Def_redundant -> true
    | Marking.Cond_redundant -> promoted
    | Marking.Cond_redundant_xy -> promoted_xy
    | Marking.Vector -> false
  in
  let tb_redundant =
    Array.init n (fun i -> Analysis.skippable analysis i && resolved_red i)
  in
  let insts = analysis.Analysis.kernel.Kernel.insts in
  let dac_removable =
    Array.init n (fun i ->
        let inst = insts.(i) in
        let alu =
          Analysis.skippable analysis i
          && (not (Instr.is_load inst))
          && not (Instr.is_atomic inst)
        in
        alu
        &&
        match Analysis.shape analysis i with
        | Marking.Uniform | Marking.Affine -> true
        | Marking.Unstructured | Marking.Varying -> false)
  in
  let uv_eligible =
    Array.init n (fun i ->
        Analysis.skippable analysis i
        && (not (Instr.is_load insts.(i)))
        && Analysis.shape analysis i = Marking.Uniform
        && resolved_red i)
  in
  { analysis; promoted; promoted_xy;
    block_dim = launch.Kernel.block_dim; warp_size;
    tb_redundant; dac_removable; uv_eligible }

let resolves_redundant red ~(block : Kernel.dim3) ~warp_size =
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  match (red : Marking.redundancy) with
  | Marking.Def_redundant -> true
  | Marking.Cond_redundant ->
    (block.Kernel.y > 1 || block.Kernel.z > 1)
    && block.Kernel.x <= warp_size
    && pow2 block.Kernel.x
  | Marking.Cond_redundant_xy ->
    block.Kernel.z > 1
    && block.Kernel.x * block.Kernel.y <= warp_size
    && pow2 (block.Kernel.x * block.Kernel.y)
  | Marking.Vector -> false

let skip_count_upper_bound t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.tb_redundant

let verdict t i =
  let a = t.analysis in
  let dims =
    Printf.sprintf "block (%d,%d,%d), warp %d" t.block_dim.Kernel.x
      t.block_dim.Kernel.y t.block_dim.Kernel.z t.warp_size
  in
  if not (Analysis.skippable a i) then
    "V: not structurally skippable (never enters the skip table)"
  else
    match Analysis.marking a i with
    | Marking.Def_redundant -> "DR: TB-redundant at every launch"
    | Marking.Cond_redundant ->
      if t.promoted then
        Printf.sprintf "CR promoted to DR: x-dim condition holds (%s)" dims
      else
        Printf.sprintf
          "CR demoted to vector: x-dim condition fails (%s)" dims
    | Marking.Cond_redundant_xy ->
      if t.promoted_xy then
        Printf.sprintf "CRY promoted to DR: xy-plane condition holds (%s)"
          dims
      else
        Printf.sprintf
          "CRY demoted to vector: xy-plane condition fails (%s)" dims
    | Marking.Vector -> "V: vector (operands not TB-redundant)"
