open Darsie_isa
open Marking

type inst_info = { cls : Marking.cls; skippable : bool }

type t = {
  kernel : Kernel.t;
  cfg : Cfg.t;
  postdom : Postdom.t;
  info : inst_info array;
  ins : (Marking.cls array * Marking.cls array) array;
      (** per-block (vreg, preg) classes at block entry *)
  ctrl : Marking.cls array;
      (** per-instruction control-dependence class: meet of the predicate
          classes of the divergent branches whose region contains it *)
  mem_dep : bool array;
      (** transitively sourced from a load; see {!mem_dep} *)
  tid_y : bool;  (** was the 3D tid.y seeding on? *)
}

let uniform_dr = { red = Def_redundant; shape = Uniform }

let operand_cls_with ~tid_y (vregs : cls array) (_pregs : cls array) =
  function
  | Instr.Reg r -> vregs.(r)
  | Instr.Imm _ | Instr.Param _ -> uniform_dr
  | Instr.Sreg (Instr.Tid Instr.X) -> { red = Cond_redundant; shape = Affine }
  | Instr.Sreg (Instr.Tid Instr.Y) ->
    (* 3D extension (paper §2): tid.y repeats per warp when warps cover
       whole xy-planes; the value has no single <base,stride> form, so
       its shape is unstructured. *)
    if tid_y then { red = Cond_redundant_xy; shape = Unstructured }
    else Marking.bottom
  | Instr.Sreg (Instr.Tid Instr.Z) -> Marking.bottom
  | Instr.Sreg (Instr.Ntid _ | Instr.Ctaid _ | Instr.Nctaid _) -> uniform_dr

let operand_cls vregs pregs op = operand_cls_with ~tid_y:false vregs pregs op

(* Shape combinators. A shape describes the cross-threadblock pattern a
   value would have when its redundancy condition holds; linear integer ops
   preserve affineness, everything else collapses pattern-ful inputs to
   Unstructured. *)

let shape_linear a b = meet_shape a b

let shape_mul a b =
  match (a, b) with
  | Affine, Affine -> Unstructured
  | _ -> meet_shape a b

let shape_shl a b =
  match (a, b) with
  | Uniform, Uniform -> Uniform
  | Affine, Uniform -> Affine
  | Varying, _ | _, Varying -> Varying
  | (Unstructured | Uniform | Affine), _ -> Unstructured

let shape_nonlinear shapes =
  if List.for_all (fun s -> s = Uniform) shapes then Uniform
  else if List.exists (fun s -> s = Varying) shapes then Varying
  else Unstructured

let binop_shape (op : Instr.binop) a b =
  match op with
  | Instr.Add | Instr.Sub -> shape_linear a b
  | Instr.Mul -> shape_mul a b
  | Instr.Shl -> shape_shl a b
  | Instr.Mulhi | Instr.Div_s | Instr.Div_u | Instr.Rem_s | Instr.Rem_u
  | Instr.Min_s | Instr.Max_s | Instr.Min_u | Instr.Max_u | Instr.And
  | Instr.Or | Instr.Xor | Instr.Shr_u | Instr.Shr_s | Instr.Fadd
  | Instr.Fsub | Instr.Fmul | Instr.Fdiv | Instr.Fmin | Instr.Fmax ->
    shape_nonlinear [ a; b ]

let unop_shape (op : Instr.unop) a =
  match op with
  | Instr.Mov -> a
  | Instr.Neg | Instr.Not ->
    (* -x and lnot x = -x - 1 are linear in x. *)
    a
  | Instr.Abs_s | Instr.Fneg | Instr.Fabs | Instr.Fsqrt | Instr.Frcp
  | Instr.Fexp2 | Instr.Flog2 | Instr.Fsin | Instr.Fcos | Instr.Cvt_i2f
  | Instr.Cvt_u2f | Instr.Cvt_f2i ->
    shape_nonlinear [ a ]

(* The class of the value an instruction computes, given source classes. *)
let computed_cls ~tid_y vregs pregs (inst : Instr.t) =
  let oc = operand_cls_with ~tid_y vregs pregs in
  let pc p = pregs.(p) in
  let red_of classes = List.fold_left (fun acc c -> meet_red acc c.red) Def_redundant classes in
  let base =
    match inst.Instr.body with
    | Instr.Bin (op, _, a, b) ->
      let ca = oc a and cb = oc b in
      { red = red_of [ ca; cb ]; shape = binop_shape op ca.shape cb.shape }
    | Instr.Un (op, _, a) ->
      let ca = oc a in
      { red = ca.red; shape = unop_shape op ca.shape }
    | Instr.Tern (op, _, a, b, c) ->
      let ca = oc a and cb = oc b and cc = oc c in
      let shape =
        match op with
        | Instr.Mad -> shape_linear (shape_mul ca.shape cb.shape) cc.shape
        | Instr.Fma -> shape_nonlinear [ ca.shape; cb.shape; cc.shape ]
      in
      { red = red_of [ ca; cb; cc ]; shape }
    | Instr.Setp (_, _, _, a, b) ->
      let ca = oc a and cb = oc b in
      { red = red_of [ ca; cb ]; shape = shape_nonlinear [ ca.shape; cb.shape ] }
    | Instr.Selp (_, a, b, p) ->
      let ca = oc a and cb = oc b and cp = pc p in
      {
        red = red_of [ ca; cb; cp ];
        shape = shape_nonlinear [ ca.shape; cb.shape; cp.shape ];
      }
    | Instr.Ld (_, _, base, _) ->
      (* A load takes on the redundancy of the address it reads (§4.2);
         uniform addresses yield one scalar for the whole TB, anything
         else with a redundant address yields an unstructured vector. *)
      let ca = oc base in
      let shape =
        match ca.shape with
        | Uniform -> Uniform
        | Affine | Unstructured ->
          if ca.red = Vector then Varying else Unstructured
        | Varying -> Varying
      in
      { red = ca.red; shape }
    | Instr.Atom _ -> Marking.bottom
    | Instr.St (_, base, _, v) ->
      let ca = oc base and cv = oc v in
      { red = red_of [ ca; cv ]; shape = shape_nonlinear [ ca.shape; cv.shape ] }
    | Instr.Bra _ | Instr.Bar | Instr.Exit -> uniform_dr
  in
  match inst.Instr.guard with
  | Some (_, p) -> meet base (pc p)
  | None -> base

(* Transfer one instruction over mutable copies of the register states.
   [ctrl] is the control-dependence class of the instruction's position:
   the meet of the predicate classes of every divergent branch whose
   region contains it (top when straight-line). A write under divergent
   control is partial — inactive lanes keep their old values — so it
   merges with the previous contents exactly like a guarded write, and
   the produced value itself can be no more redundant than the branch
   condition that decided whether it executed (§4.2). *)
let transfer ~tid_y ?(ctrl = top) vregs pregs (inst : Instr.t) =
  let produced = meet ctrl (computed_cls ~tid_y vregs pregs inst) in
  let partial = inst.Instr.guard <> None || not (Marking.equal ctrl top) in
  let update arr idx =
    if partial then arr.(idx) <- meet arr.(idx) produced
    else arr.(idx) <- produced
  in
  Option.iter (update vregs) (Instr.dst_reg inst);
  Option.iter (update pregs) (Instr.dst_pred inst)

(* Transitive memory dependence: an instruction is [mem_dep] when it is a
   load or when any source register/predicate it reads may hold a value
   that (transitively) came from a load. Flow-insensitive — a register is
   tainted if ANY definition of it is tainted — which over-approximates
   but stays sound; the consumers (store invalidation of skip-table
   entries) only need "definitely not load-derived" to keep an entry. *)
let compute_mem_dep (kernel : Kernel.t) =
  let insts = kernel.Kernel.insts in
  let n = Array.length insts in
  let dep = Array.make n false in
  let reg_dep = Array.make (max kernel.Kernel.nregs 1) false in
  let pred_dep = Array.make (max kernel.Kernel.npregs 1) false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i inst ->
        let tainted =
          Instr.is_load inst
          || List.exists (fun r -> reg_dep.(r)) (Instr.src_regs inst)
          || List.exists (fun p -> pred_dep.(p)) (Instr.src_preds inst)
        in
        if tainted && not dep.(i) then begin
          dep.(i) <- true;
          changed := true
        end;
        if dep.(i) then begin
          (match Instr.dst_reg inst with
          | Some r when not reg_dep.(r) ->
            reg_dep.(r) <- true;
            changed := true
          | _ -> ());
          match Instr.dst_pred inst with
          | Some p when not pred_dep.(p) ->
            pred_dep.(p) <- true;
            changed := true
          | _ -> ()
        end)
      insts
  done;
  dep

let copy_state (v, p) = (Array.copy v, Array.copy p)

let meet_state (v1, p1) (v2, p2) =
  let changed = ref false in
  let merge arr other =
    Array.iteri
      (fun i c ->
        let m = meet arr.(i) c in
        if not (Marking.equal m arr.(i)) then begin
          arr.(i) <- m;
          changed := true
        end)
      other
  in
  merge v1 v2;
  merge p1 p2;
  !changed

let analyze ?(tid_y_redundancy = false) (kernel : Kernel.t) =
  let tid_y = tid_y_redundancy in
  let cfg = Cfg.build kernel in
  let postdom = Postdom.compute cfg in
  let nb = Cfg.num_blocks cfg in
  let insts = kernel.Kernel.insts in
  let n = Array.length insts in
  let fresh () =
    (Array.make (max kernel.Kernel.nregs 1) top,
     Array.make (max kernel.Kernel.npregs 1) top)
  in
  let ins = Array.init nb (fun _ -> fresh ()) in
  let info = Array.make n { cls = Marking.bottom; skippable = false } in
  let ctrl = Array.make n top in
  (* One dataflow solve under the current control-dependence classes:
     worklist fixpoint over block in-states, then an annotation replay of
     each block from its converged entry state. *)
  let solve () =
    let transfer_block b (v, p) =
      let block = cfg.Cfg.blocks.(b) in
      for i = block.Cfg.first to block.Cfg.last do
        transfer ~tid_y ~ctrl:ctrl.(i) v p insts.(i)
      done
    in
    (* Every block is seeded, not just the entry: a block whose transfer
       leaves its successor's in-state untouched (all writes already at
       top) must still have that successor processed, or propagation
       halts with every downstream in-state stuck at top. *)
    let work = Queue.create () in
    for b = 0 to nb - 1 do
      Queue.add b work
    done;
    let queued = Array.make nb true in
    while not (Queue.is_empty work) do
      let b = Queue.pop work in
      queued.(b) <- false;
      let out = copy_state ins.(b) in
      transfer_block b out;
      List.iter
        (fun s ->
          if meet_state ins.(s) out && not queued.(s) then begin
            queued.(s) <- true;
            Queue.add s work
          end)
        cfg.Cfg.blocks.(b).Cfg.succs
    done;
    for b = 0 to nb - 1 do
      let v, p = copy_state ins.(b) in
      let block = cfg.Cfg.blocks.(b) in
      for i = block.Cfg.first to block.Cfg.last do
        let inst = insts.(i) in
        let cls = meet ctrl.(i) (computed_cls ~tid_y v p inst) in
        let skippable =
          Instr.dst_reg inst <> None
          && inst.Instr.guard = None
          && not (Instr.is_atomic inst)
        in
        info.(i) <- { cls; skippable };
        transfer ~tid_y ~ctrl:ctrl.(i) v p inst
      done
    done
  in
  (* Control-dependence refinement: an instruction can be no more
     redundant than the branches that decide whether (or how often) it
     executes — a value defined on one side of a vector-divergent branch
     is lane-dependent after reconvergence even if its own operands are
     uniform (§4.2). A conditional branch's class is its predicate's
     class; its region runs to the reconvergence point for a forward
     branch and covers the loop body for a backward one. Predicate
     classes themselves come out of the dataflow, so solve and refine
     alternate until the (monotonically descending) control classes
     stabilise. *)
  let refine_ctrl () =
    let nc = Array.make n top in
    Array.iteri
      (fun i (inst : Instr.t) ->
        match (inst.Instr.body, inst.Instr.guard) with
        | Instr.Bra target, Some _ ->
          let lo, hi =
            if target > i then
              ( i + 1,
                match Postdom.reconvergence_inst postdom i with
                | Some r -> r - 1
                | None -> n - 1 )
            else (target, i)
          in
          for j = max lo 0 to min hi (n - 1) do
            nc.(j) <- meet nc.(j) info.(i).cls
          done
        | _ -> ())
      insts;
    let changed = ref false in
    for j = 0 to n - 1 do
      if not (Marking.equal nc.(j) ctrl.(j)) then begin
        ctrl.(j) <- nc.(j);
        changed := true
      end
    done;
    !changed
  in
  solve ();
  while refine_ctrl () do
    solve ()
  done;
  { kernel; cfg; postdom; info; ins; ctrl;
    mem_dep = compute_mem_dep kernel; tid_y }

let marking t i = t.info.(i).cls.red

let shape t i = t.info.(i).cls.shape

let skippable t i = t.info.(i).skippable

let mem_dep t i = t.mem_dep.(i)

let block_in t b = Array.copy (fst t.ins.(b))

let reconvergence t i = Postdom.reconvergence_inst t.postdom i

let hints t =
  Array.map
    (fun info ->
      match info.cls.red with
      | Vector -> 0
      | Cond_redundant -> 1
      | Def_redundant -> 2
      | Cond_redundant_xy -> 3)
    t.info

(* ------------------------------------------------------------------ *)
(* Per-instruction provenance (darsie explain)                         *)
(* ------------------------------------------------------------------ *)

let axis_name = function Instr.X -> "x" | Instr.Y -> "y" | Instr.Z -> "z"

let operand_name = function
  | Instr.Reg r -> Printf.sprintf "%%r%d" r
  | Instr.Imm v -> Printf.sprintf "imm %d" v
  | Instr.Param i -> Printf.sprintf "%%param%d" i
  | Instr.Sreg (Instr.Tid a) -> "%tid." ^ axis_name a
  | Instr.Sreg (Instr.Ntid a) -> "%ntid." ^ axis_name a
  | Instr.Sreg (Instr.Ctaid a) -> "%ctaid." ^ axis_name a
  | Instr.Sreg (Instr.Nctaid a) -> "%nctaid." ^ axis_name a

(* Where an operand's class comes from: intrinsic seeds get named, vector
   registers got theirs from the dataflow fixpoint. *)
let operand_provenance ~tid_y = function
  | Instr.Reg _ -> "dataflow"
  | Instr.Imm _ -> "immediate seed"
  | Instr.Param _ -> "kernel-parameter seed"
  | Instr.Sreg (Instr.Tid Instr.X) ->
    "tid.x seed: promotable when the x dimension is a power of two no \
     larger than the warp size"
  | Instr.Sreg (Instr.Tid Instr.Y) ->
    if tid_y then "tid.y seed: xy-plane condition (3D extension)"
    else "tid.y seed: vector (3D tid.y analysis off)"
  | Instr.Sreg (Instr.Tid Instr.Z) -> "tid.z seed: always vector"
  | Instr.Sreg (Instr.Ntid _ | Instr.Ctaid _ | Instr.Nctaid _) ->
    "grid-geometry seed"

let explain t i =
  if i < 0 || i >= Array.length t.kernel.Kernel.insts then
    invalid_arg "Analysis.explain: instruction index out of range";
  let inst = t.kernel.Kernel.insts.(i) in
  let b = t.cfg.Cfg.block_of_inst.(i) in
  let block = t.cfg.Cfg.blocks.(b) in
  (* Replay the containing block from its (stable) entry state up to, but
     not including, instruction i — the same pass the annotation loop
     runs, so the operand classes shown here are the ones the fixpoint
     actually fed the marking. *)
  let v, p = copy_state t.ins.(b) in
  for j = block.Cfg.first to i - 1 do
    transfer ~tid_y:t.tid_y ~ctrl:t.ctrl.(j) v p t.kernel.Kernel.insts.(j)
  done;
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "0x%03x  %s" (Kernel.pc_of_index i) (Printer.instr_to_string inst);
  let ops = Instr.operands inst in
  List.iter
    (fun op ->
      let c = operand_cls_with ~tid_y:t.tid_y v p op in
      line "  %-10s = %-18s (%s)" (operand_name op)
        (Format.asprintf "%a" Marking.pp c)
        (operand_provenance ~tid_y:t.tid_y op))
    ops;
  (match inst.Instr.guard with
  | Some (sense, pr) ->
    line "  guard @%s%%p%d = %s (guarded writes meet with the guard and \
          the old register contents)"
      (if sense then "" else "!")
      pr
      (Format.asprintf "%a" Marking.pp p.(pr))
  | None -> ());
  (if not (Marking.equal t.ctrl.(i) top) then
     line "  control-dependent on a divergent branch: meets with %s"
       (Format.asprintf "%a" Marking.pp t.ctrl.(i)));
  let cls = t.info.(i).cls in
  (if ops = [] && inst.Instr.guard = None then
     line "  no source operands: %s" (Format.asprintf "%a" Marking.pp cls)
   else
     line "  meet over sources -> %s" (Format.asprintf "%a" Marking.pp cls));
  (if t.info.(i).skippable then
     line "  structurally skippable: unguarded vector-register write, \
           not atomic"
   else
     let why =
       if Instr.dst_reg inst = None then
         "writes no vector register (control flow, store, barrier or \
          predicate-only)"
       else if inst.Instr.guard <> None then "guarded write"
       else if Instr.is_atomic inst then "atomic"
       else "not eligible"
     in
     line "  not skippable: %s" why);
  Buffer.contents buf

let pp_markings fmt t =
  Array.iteri
    (fun i inst ->
      let mark =
        if not t.info.(i).skippable then "V "
        else
          match t.info.(i).cls.red with
          | Def_redundant -> "DR"
          | Cond_redundant -> "CR"
          | Cond_redundant_xy -> "CRY"
          | Vector -> "V "
      in
      Format.fprintf fmt "%s 0x%03x  %s@\n" mark (Kernel.pc_of_index i)
        (Printer.instr_to_string inst))
    t.kernel.Kernel.insts
