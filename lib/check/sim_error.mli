(** The typed simulation-error channel.

    Every way a simulation can fail — timing-model deadlock, cycle-bound
    overrun, wall-clock budget overrun, emulator memory fault, violated
    model invariant, differential-oracle mismatch — is one constructor
    here, carried as [result] values through {!Darsie_timing.Gpu.run} and
    the harness instead of ad-hoc [failwith]s. Each error maps to a
    distinct nonzero process exit code so scripts and CI can tell the
    failure classes apart, and the heavyweight cases carry a structured
    {!diagnostic} dump (per-warp state, stall attribution, the last few
    pipeline events) gathered at the point of failure. *)

(** One warp's state at the moment of failure. *)
type warp_snapshot = {
  ws_sm : int;  (** SM index; [-1] for emulator-level errors *)
  ws_warp : int;  (** SM-local warp slot, or warp-in-TB for emu errors *)
  ws_tb : int;  (** global threadblock id; [-1] if unknown *)
  ws_pc : int;  (** static instruction index about to run; [-1] if done *)
  ws_state : string;  (** e.g. ["at_barrier"], ["runnable"], ["finished"] *)
  ws_detail : string;  (** free-form: trace position, I-buffer depth... *)
}

type diagnostic = {
  d_cycle : int;  (** simulated cycle (or warp instruction count) at failure *)
  d_engine : string;  (** elimination engine, [""] for emulator errors *)
  d_warps : warp_snapshot list;
  d_attribution : (string * int) list;  (** stall buckets summed over SMs *)
  d_events : Darsie_obs.Event.t list;  (** last-N pipeline events, oldest first *)
  d_notes : (string * int) list;  (** engine-specific counters *)
}

val empty_diagnostic : diagnostic

type t =
  | Deadlock of { message : string; diag : diagnostic }
      (** watchdog fired, or the emulator found a barrier deadlock *)
  | Cycle_bound of { bound : int; message : string; diag : diagnostic }
      (** simulation exceeded its cycle (or instruction) budget *)
  | Wall_timeout of { budget_s : float; cycle : int; message : string }
  | Memory_fault of { message : string }
      (** emulator-level execution fault (OOB access, bad PC) *)
  | Invariant_violation of { message : string }
      (** a model invariant failed (attribution sum, schema, skip table) *)
  | Oracle_mismatch of {
      app : string;
      machine : string;
      mismatches : int;
      message : string;
    }  (** the differential oracle found state divergence *)

exception Simulation_error of t

val of_emu : Darsie_emu.Interp.error -> t
(** Lift a structured emulator error (barrier deadlock with parked-warp
    list, runaway, lane fault) into the unified channel. *)

val kind_name : t -> string
(** Stable lowercase-snake kind tag, used in JSON and tests. *)

val summary : t -> string
(** One human-readable line (no newlines): kind plus first message line. *)

val exit_code : t -> int
(** Distinct nonzero process exit code per constructor:
    invariant violation 2, deadlock 3, cycle bound 4, wall timeout 5,
    memory fault 6, oracle mismatch 7. *)

val message : t -> string

val diagnostic : t -> diagnostic option

val pp : Format.formatter -> t -> unit
(** Multi-line report including the diagnostic dump when present. *)

val to_json : t -> Darsie_obs.Json.t
