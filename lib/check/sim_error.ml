module Obs = Darsie_obs
module Interp = Darsie_emu.Interp

type warp_snapshot = {
  ws_sm : int;
  ws_warp : int;
  ws_tb : int;
  ws_pc : int;
  ws_state : string;
  ws_detail : string;
}

type diagnostic = {
  d_cycle : int;
  d_engine : string;
  d_warps : warp_snapshot list;
  d_attribution : (string * int) list;
  d_events : Obs.Event.t list;
  d_notes : (string * int) list;
}

let empty_diagnostic =
  {
    d_cycle = 0;
    d_engine = "";
    d_warps = [];
    d_attribution = [];
    d_events = [];
    d_notes = [];
  }

type t =
  | Deadlock of { message : string; diag : diagnostic }
  | Cycle_bound of { bound : int; message : string; diag : diagnostic }
  | Wall_timeout of { budget_s : float; cycle : int; message : string }
  | Memory_fault of { message : string }
  | Invariant_violation of { message : string }
  | Oracle_mismatch of {
      app : string;
      machine : string;
      mismatches : int;
      message : string;
    }

exception Simulation_error of t

let park_snapshot tb (p : Interp.warp_park) =
  {
    ws_sm = -1;
    ws_warp = p.Interp.park_warp;
    ws_tb = tb;
    ws_pc = p.Interp.park_pc;
    ws_state =
      (match p.Interp.park_state with
      | Interp.Running -> "runnable"
      | Interp.At_barrier -> "at_barrier"
      | Interp.Exited -> "exited");
    ws_detail =
      (if p.Interp.park_barrier_pc >= 0 then
         Printf.sprintf "last barrier at inst %d" p.Interp.park_barrier_pc
       else "no barrier executed");
  }

let of_emu (e : Interp.error) =
  match e with
  | Interp.Barrier_deadlock { tb; warps } ->
    Deadlock
      {
        message = Interp.error_message e;
        diag =
          { empty_diagnostic with d_warps = List.map (park_snapshot tb) warps };
      }
  | Interp.No_progress { tb; warps } ->
    Deadlock
      {
        message = Interp.error_message e;
        diag =
          { empty_diagnostic with d_warps = List.map (park_snapshot tb) warps };
      }
  | Interp.Runaway { executed; bound } ->
    Cycle_bound
      {
        bound;
        message = Interp.error_message e;
        diag = { empty_diagnostic with d_cycle = executed };
      }
  | Interp.Exec_fault m -> Memory_fault { message = m }

let kind_name = function
  | Deadlock _ -> "deadlock"
  | Cycle_bound _ -> "cycle_bound"
  | Wall_timeout _ -> "wall_timeout"
  | Memory_fault _ -> "memory_fault"
  | Invariant_violation _ -> "invariant_violation"
  | Oracle_mismatch _ -> "oracle_mismatch"

let message = function
  | Deadlock { message; _ }
  | Cycle_bound { message; _ }
  | Wall_timeout { message; _ }
  | Memory_fault { message }
  | Invariant_violation { message }
  | Oracle_mismatch { message; _ } ->
    message

let diagnostic = function
  | Deadlock { diag; _ } | Cycle_bound { diag; _ } -> Some diag
  | Wall_timeout _ | Memory_fault _ | Invariant_violation _
  | Oracle_mismatch _ ->
    None

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let summary t = Printf.sprintf "%s: %s" (kind_name t) (first_line (message t))

let exit_code = function
  | Invariant_violation _ -> 2
  | Deadlock _ -> 3
  | Cycle_bound _ -> 4
  | Wall_timeout _ -> 5
  | Memory_fault _ -> 6
  | Oracle_mismatch _ -> 7

let pp_diag fmt d =
  if d.d_cycle > 0 || d.d_engine <> "" then
    Format.fprintf fmt "@,at cycle %d%s" d.d_cycle
      (if d.d_engine = "" then "" else " (engine " ^ d.d_engine ^ ")");
  if d.d_warps <> [] then begin
    Format.fprintf fmt "@,warps:";
    List.iter
      (fun w ->
        Format.fprintf fmt "@,  %s warp %d (tb %d): %s at pc %d, %s"
          (if w.ws_sm >= 0 then Printf.sprintf "SM %d" w.ws_sm else "emu")
          w.ws_warp w.ws_tb w.ws_state w.ws_pc w.ws_detail)
      d.d_warps
  end;
  if d.d_attribution <> [] then begin
    Format.fprintf fmt "@,stall attribution:";
    List.iter
      (fun (name, n) -> if n > 0 then Format.fprintf fmt " %s=%d" name n)
      d.d_attribution
  end;
  if d.d_notes <> [] then begin
    Format.fprintf fmt "@,engine state:";
    List.iter (fun (name, n) -> Format.fprintf fmt " %s=%d" name n) d.d_notes
  end;
  if d.d_events <> [] then begin
    Format.fprintf fmt "@,last %d pipeline events:" (List.length d.d_events);
    List.iter (fun e -> Format.fprintf fmt "@,  %a" Obs.Event.pp e) d.d_events
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>%s: %s" (kind_name t) (message t);
  (match diagnostic t with Some d -> pp_diag fmt d | None -> ());
  Format.fprintf fmt "@]"

let json_of_warp w =
  Obs.Json.Obj
    [
      ("sm", Obs.Json.Int w.ws_sm);
      ("warp", Obs.Json.Int w.ws_warp);
      ("tb", Obs.Json.Int w.ws_tb);
      ("pc", Obs.Json.Int w.ws_pc);
      ("state", Obs.Json.String w.ws_state);
      ("detail", Obs.Json.String w.ws_detail);
    ]

let json_of_diag d =
  Obs.Json.Obj
    [
      ("cycle", Obs.Json.Int d.d_cycle);
      ("engine", Obs.Json.String d.d_engine);
      ("warps", Obs.Json.List (List.map json_of_warp d.d_warps));
      ( "attribution",
        Obs.Json.Obj
          (List.map (fun (k, v) -> (k, Obs.Json.Int v)) d.d_attribution) );
      ( "events",
        Obs.Json.List
          (List.map
             (fun (e : Obs.Event.t) ->
               Obs.Json.Obj
                 [
                   ("cycle", Obs.Json.Int e.Obs.Event.cycle);
                   ("sm", Obs.Json.Int e.Obs.Event.sm);
                   ("warp", Obs.Json.Int e.Obs.Event.warp);
                   ( "kind",
                     Obs.Json.String (Obs.Event.kind_name e.Obs.Event.kind) );
                 ])
             d.d_events) );
      ( "engine_state",
        Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) d.d_notes)
      );
    ]

let to_json t =
  let base =
    [
      ("kind", Obs.Json.String (kind_name t));
      ("message", Obs.Json.String (message t));
      ("exit_code", Obs.Json.Int (exit_code t));
    ]
  in
  let extra =
    match t with
    | Cycle_bound { bound; _ } -> [ ("bound", Obs.Json.Int bound) ]
    | Wall_timeout { budget_s; cycle; _ } ->
      [
        ("budget_seconds", Obs.Json.Float budget_s);
        ("cycle", Obs.Json.Int cycle);
      ]
    | Oracle_mismatch { app; machine; mismatches; _ } ->
      [
        ("app", Obs.Json.String app);
        ("machine", Obs.Json.String machine);
        ("mismatches", Obs.Json.Int mismatches);
      ]
    | Deadlock _ | Memory_fault _ | Invariant_violation _ -> []
  in
  let diag =
    match diagnostic t with
    | Some d -> [ ("diagnostic", json_of_diag d) ]
    | None -> []
  in
  Obs.Json.Obj (base @ extra @ diag)
