(** Deterministic seeded fault injection into DARSIE's redundancy
    machinery.

    Faults model the three ways the elimination hardware can corrupt an
    execution: a flipped skip-table entry makes a follower pick up the
    value of the {e wrong occurrence} of a PC; a poisoned HRE register
    forwards a corrupted value vector; and a spurious skip elides an
    instruction that was {e not} redundant. Each fault targets one dynamic
    warp instruction — a (threadblock, warp, instruction, occurrence)
    site — chosen deterministically from a seeded PRNG over the candidate
    sites a profiling pass collected, so a given [(seed, count)] always
    injects the same faults.

    Candidate sites are pre-filtered so that every planned fault is
    {e applicable} (e.g. a poison site really is a follower substitution)
    and {e safely detectable}: spurious skips never target instructions
    whose destination register feeds a memory address, so an injected run
    mis-computes values rather than writing to wild addresses. *)

type kind = Flip_skip_entry | Poison_hre | Skip_non_redundant

val kind_name : kind -> string
(** ["flip_skip_entry"], ["poison_hre"], ["skip_non_redundant"]. *)

val all_kinds : kind list

(** One dynamic warp instruction. *)
type site = { s_tb : int; s_warp : int; s_inst : int; s_occ : int }

type fault = { kind : kind; site : site }

val fault_line : fault -> string
(** One human-readable line: kind plus target site. *)

(** Applicable sites per fault kind, collected by
    {!Oracle.candidates}' profiling pass. *)
type candidates = {
  flip_sites : site list;
      (** follower sites where another live occurrence of the same PC
          holds a different value vector *)
  poison_sites : site list;  (** all follower-substitution sites *)
  skip_sites : site list;
      (** non-redundant sites whose elision cannot corrupt an address *)
}

val total : candidates -> int

val plan : seed:int -> count:int -> candidates -> fault list
(** Pick [count] faults, cycling over the kinds that have candidates and
    sampling sites without replacement from a PRNG seeded with [seed].
    Returns fewer than [count] faults when candidates run out, and [[]]
    when there are none at all. *)
