open Darsie_isa
module W = Darsie_workloads.Workload
module Interp = Darsie_emu.Interp
module Memory = Darsie_emu.Memory

type mismatch =
  | Forward_mismatch of {
      tb : int;
      warp : int;
      inst : int;
      occ : int;
      lane : int;
      recomputed : Value.t;
      forwarded : Value.t;
    }
  | Count_mismatch of { tb : int; warp : int; base : int; darsie : int }
  | Register_mismatch of {
      tb : int;
      warp : int;
      reg : int;
      lane : int;
      base : Value.t;
      darsie : Value.t;
    }
  | Memory_mismatch of { addr : int; base : Value.t; darsie : Value.t }
  | Reference_mismatch of string
  | Crash of { machine : string; error : Interp.error }

let mismatch_line = function
  | Forward_mismatch { tb; warp; inst; occ; lane; recomputed; forwarded } ->
    Printf.sprintf
      "forwarded value differs from recomputed at tb %d warp %d inst %d occ \
       %d lane %d: 0x%x vs 0x%x"
      tb warp inst occ lane forwarded recomputed
  | Count_mismatch { tb; warp; base; darsie } ->
    Printf.sprintf
      "executed-instruction count differs at tb %d warp %d: BASE %d vs \
       DARSIE %d"
      tb warp base darsie
  | Register_mismatch { tb; warp; reg; lane; base; darsie } ->
    Printf.sprintf
      "final register differs at tb %d warp %d r%d lane %d: BASE 0x%x vs \
       DARSIE 0x%x"
      tb warp reg lane base darsie
  | Memory_mismatch { addr; base; darsie } ->
    Printf.sprintf "final memory differs at 0x%x: BASE 0x%x vs DARSIE 0x%x"
      addr base darsie
  | Reference_mismatch m -> Printf.sprintf "CPU reference check failed: %s" m
  | Crash { machine; error } ->
    Printf.sprintf "%s run crashed: %s" machine (Interp.error_message error)

type report = {
  app : string;
  fault : Injector.fault option;
  forwards : int;
  warp_insts : int;
  mismatches : mismatch list;
}

let passed r = r.mismatches = []

let to_error r =
  if passed r then None
  else
    Some
      (Sim_error.Oracle_mismatch
         {
           app = r.app;
           machine = "DARSIE";
           mismatches = List.length r.mismatches;
           message =
             Printf.sprintf "differential oracle failed on %s%s:\n  %s" r.app
               (match r.fault with
               | Some f -> " (injected " ^ Injector.fault_line f ^ ")"
               | None -> "")
               (String.concat "\n  " (List.map mismatch_line r.mismatches));
         })

let warp_size = 32
let full_mask = (1 lsl warp_size) - 1
let mismatch_cap = 32
let candidate_cap = 4096

let config = { Interp.warp_size; capture_operands = true }

(* Static facts about the kernel the replay consults per instruction. *)
type static = {
  tbr : bool array;  (** TB-redundant after launch-time promotion *)
  dst : int option array;
  mem_dep : bool array;
      (** load or transitively load-derived: flushed on store/atomic *)
  is_flush : bool array;  (** store or atomic: flushes mem-dep entries *)
  is_bar : bool array;
  skip_safe : bool array;
      (** safe spurious-skip target: not control flow, writes a register
          that never feeds a memory address *)
}

let static_of (launch : Kernel.launch) =
  let kernel = launch.Kernel.kernel in
  let insts = kernel.Kernel.insts in
  let n = Array.length insts in
  let analysis = Darsie_compiler.Analysis.analyze kernel in
  let promo = Darsie_compiler.Promotion.resolve analysis launch ~warp_size in
  let base_regs = Hashtbl.create 16 in
  let note_base = function
    | Instr.Reg r -> Hashtbl.replace base_regs r ()
    | Instr.Imm _ | Instr.Sreg _ | Instr.Param _ -> ()
  in
  Array.iter
    (fun (i : Instr.t) ->
      match i.Instr.body with
      | Instr.Ld (_, _, base, _) -> note_base base
      | Instr.St (_, base, _, _) -> note_base base
      | Instr.Atom (_, _, addr, _) -> note_base addr
      | _ -> ())
    insts;
  {
    tbr = promo.Darsie_compiler.Promotion.tb_redundant;
    dst = Array.init n (fun i -> Instr.dst_reg insts.(i));
    mem_dep = Array.init n (Darsie_compiler.Analysis.mem_dep analysis);
    is_flush =
      Array.init n (fun i ->
          match insts.(i).Instr.body with
          | Instr.St _ | Instr.Atom _ -> true
          | _ -> false);
    is_bar = Array.init n (fun i -> Instr.is_barrier insts.(i));
    skip_safe =
      Array.init n (fun i ->
          match Instr.dst_reg insts.(i) with
          | Some d -> not (Hashtbl.mem base_regs d)
          | None -> false);
  }

(* What one emulator run leaves behind for comparison. *)
type observation = {
  counts : (int * int, int) Hashtbl.t;  (* (tb, warp) -> executed *)
  last_writes : (int * int * int, Value.t array) Hashtbl.t;
      (* (tb, warp, reg) -> last written vector *)
  mem : Memory.t;
  outcome : (Interp.stats, Interp.error) result;
}

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let observe_base st (prepared : W.prepared) =
  let counts = Hashtbl.create 256 in
  let last_writes = Hashtbl.create 1024 in
  let on_exec (r : Interp.exec_record) =
    bump counts (r.Interp.tb, r.Interp.warp);
    match (st.dst.(r.Interp.inst_index), r.Interp.dst_values) with
    | Some d, Some v ->
      Hashtbl.replace last_writes (r.Interp.tb, r.Interp.warp, d) v
    | _ -> ()
  in
  let outcome =
    Interp.run_result ~config ~on_exec prepared.W.mem prepared.W.launch
  in
  { counts; last_writes; mem = prepared.W.mem; outcome }

type entry = { values : Value.t array; mem_dep : bool }

(* Mutable accumulator for the candidate-profiling pass. *)
type collector = {
  mutable flip : Injector.site list;
  mutable n_flip : int;
  mutable poison : Injector.site list;
  mutable n_poison : int;
  mutable skip : Injector.site list;
  mutable n_skip : int;
}

(* The DARSIE-mode functional replay: leader/follower value forwarding
   with barrier and store invalidation, optionally with one injected
   fault, optionally collecting injection candidates. *)
let observe_darsie ?fault ?collect ~max_insts st (prepared : W.prepared) =
  let launch = prepared.W.launch in
  let nwarps = Kernel.warps_per_block launch ~warp_size in
  let counts = Hashtbl.create 256 in
  let last_writes = Hashtbl.create 1024 in
  let table : (int * int, entry) Hashtbl.t = Hashtbl.create 256 in
  let arrivals : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let cur_tb = ref (-1) in
  let forwards = ref 0 in
  let mismatches = ref [] in
  let n_mism = ref 0 in
  let add_mismatch m =
    incr n_mism;
    if !n_mism <= mismatch_cap then mismatches := m :: !mismatches
  in
  (* One forwarded substitution awaiting its recomputed value. *)
  let pending : (Interp.site * Value.t array) option ref = ref None in
  let enter_tb tb =
    if tb <> !cur_tb then begin
      Hashtbl.reset table;
      Hashtbl.reset arrivals;
      cur_tb := tb
    end
  in
  let site_of (s : Interp.site) =
    {
      Injector.s_tb = s.Interp.site_tb;
      s_warp = s.Interp.site_warp;
      s_inst = s.Interp.site_inst;
      s_occ = s.Interp.site_occ;
    }
  in
  let fault_here (s : Interp.site) =
    match fault with
    | Some { Injector.site = f; _ } ->
      f.Injector.s_tb = s.Interp.site_tb
      && f.Injector.s_warp = s.Interp.site_warp
      && f.Injector.s_inst = s.Interp.site_inst
      && f.Injector.s_occ = s.Interp.site_occ
    | None -> false
  in
  (* The wrong-occurrence entry a flipped skip-table field would hit:
     smallest other occurrence of the same PC holding different values. *)
  let flip_source pc occ values =
    Hashtbl.fold
      (fun (epc, eocc) e best ->
        if epc = pc && eocc <> occ && e.values <> values then
          match best with
          | Some (bocc, _) when bocc <= eocc -> best
          | _ -> Some (eocc, e.values)
        else best)
      table None
  in
  let collect_site kind s =
    match collect with
    | None -> ()
    | Some c -> (
      match (kind : Injector.kind) with
      | Injector.Flip_skip_entry ->
        if c.n_flip < candidate_cap then begin
          c.flip <- site_of s :: c.flip;
          c.n_flip <- c.n_flip + 1
        end
      | Injector.Poison_hre ->
        if c.n_poison < candidate_cap then begin
          c.poison <- site_of s :: c.poison;
          c.n_poison <- c.n_poison + 1
        end
      | Injector.Skip_non_redundant ->
        if c.n_skip < candidate_cap then begin
          c.skip <- site_of s :: c.skip;
          c.n_skip <- c.n_skip + 1
        end)
  in
  let intercept (s : Interp.site) =
    enter_tb s.Interp.site_tb;
    let pc = s.Interp.site_inst and occ = s.Interp.site_occ in
    let forward values =
      incr forwards;
      pending := Some (s, values);
      Interp.Force_dst values
    in
    if fault_here s then begin
      match (Option.get fault).Injector.kind with
      | Injector.Skip_non_redundant -> Interp.Skip_instruction
      | Injector.Poison_hre -> (
        match Hashtbl.find_opt table (pc, occ) with
        | Some e ->
          let poisoned = Array.copy e.values in
          poisoned.(0) <- poisoned.(0) lxor 1;
          forward poisoned
        | None -> Interp.Execute)
      | Injector.Flip_skip_entry -> (
        match Hashtbl.find_opt table (pc, occ) with
        | Some e -> (
          match flip_source pc occ e.values with
          | Some (_, wrong) -> forward (Array.copy wrong)
          | None -> forward e.values)
        | None -> Interp.Execute)
    end
    else if st.tbr.(pc) && s.Interp.site_active = full_mask then begin
      match Hashtbl.find_opt table (pc, occ) with
      | Some e ->
        collect_site Injector.Poison_hre s;
        if flip_source pc occ e.values <> None then
          collect_site Injector.Flip_skip_entry s;
        forward e.values
      | None -> Interp.Execute (* leader; records its value at on_exec *)
    end
    else begin
      if (not st.tbr.(pc)) && st.skip_safe.(pc) then
        collect_site Injector.Skip_non_redundant s;
      Interp.Execute
    end
  in
  let on_exec (r : Interp.exec_record) =
    enter_tb r.Interp.tb;
    let pc = r.Interp.inst_index and occ = r.Interp.occ in
    bump counts (r.Interp.tb, r.Interp.warp);
    (match (st.dst.(pc), r.Interp.dst_values) with
    | Some d, Some v ->
      Hashtbl.replace last_writes (r.Interp.tb, r.Interp.warp, d) v
    | _ -> ());
    (* Follower check: forwarded vs just-recomputed. *)
    (match !pending with
    | Some (s, fw)
      when s.Interp.site_tb = r.Interp.tb
           && s.Interp.site_warp = r.Interp.warp
           && s.Interp.site_inst = pc && s.Interp.site_occ = occ -> (
      pending := None;
      match r.Interp.dst_values with
      | Some rv ->
        for lane = 0 to warp_size - 1 do
          if rv.(lane) <> fw.(lane) then
            add_mismatch
              (Forward_mismatch
                 {
                   tb = r.Interp.tb;
                   warp = r.Interp.warp;
                   inst = pc;
                   occ;
                   lane;
                   recomputed = rv.(lane);
                   forwarded = fw.(lane);
                 })
        done
      | None -> ())
    | _ -> ());
    (* Leader record. *)
    if st.tbr.(pc) && r.Interp.active = full_mask then begin
      match r.Interp.dst_values with
      | Some v when not (Hashtbl.mem table (pc, occ)) ->
        Hashtbl.add table (pc, occ)
          { values = Array.copy v; mem_dep = st.mem_dep.(pc) }
      | _ -> ()
    end;
    (* Invalidation: stores and atomics kill every memory-dependent
       entry — loads and anything transitively computed from a loaded
       value, or followers would forward pre-store data; a barrier every
       warp reached flushes the whole table. *)
    if st.is_flush.(pc) then begin
      let stale =
        Hashtbl.fold
          (fun key e acc -> if e.mem_dep then key :: acc else acc)
          table []
      in
      List.iter (Hashtbl.remove table) stale
    end;
    if st.is_bar.(pc) then begin
      let k = (pc, occ) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt arrivals k) in
      if n >= nwarps then begin
        Hashtbl.reset table;
        Hashtbl.remove arrivals k
      end
      else Hashtbl.replace arrivals k n
    end
  in
  let outcome =
    Interp.run_result ~config ~on_exec ~max_warp_insts:max_insts ~intercept
      prepared.W.mem launch
  in
  ( { counts; last_writes; mem = prepared.W.mem; outcome },
    !forwards,
    List.rev !mismatches )

let compare_runs ~add_mismatch base darsie =
  let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  let count_keys =
    List.sort_uniq compare (keys base.counts @ keys darsie.counts)
  in
  List.iter
    (fun (tb, warp) ->
      let b = Option.value ~default:0 (Hashtbl.find_opt base.counts (tb, warp)) in
      let d =
        Option.value ~default:0 (Hashtbl.find_opt darsie.counts (tb, warp))
      in
      if b <> d then add_mismatch (Count_mismatch { tb; warp; base = b; darsie = d }))
    count_keys;
  let reg_keys =
    List.sort_uniq compare (keys base.last_writes @ keys darsie.last_writes)
  in
  let zeros = Array.make warp_size Value.zero in
  List.iter
    (fun (tb, warp, reg) ->
      let b =
        Option.value ~default:zeros
          (Hashtbl.find_opt base.last_writes (tb, warp, reg))
      in
      let d =
        Option.value ~default:zeros
          (Hashtbl.find_opt darsie.last_writes (tb, warp, reg))
      in
      if b <> d then begin
        let lane = ref 0 in
        while !lane < warp_size && b.(!lane) = d.(!lane) do
          incr lane
        done;
        if !lane < warp_size then
          add_mismatch
            (Register_mismatch
               {
                 tb;
                 warp;
                 reg;
                 lane = !lane;
                 base = b.(!lane);
                 darsie = d.(!lane);
               })
      end)
    reg_keys;
  List.iter
    (fun (addr, b, d) ->
      add_mismatch (Memory_mismatch { addr; base = b; darsie = d }))
    (Memory.diff ~limit:mismatch_cap base.mem darsie.mem)

type subject = { name : string; fresh : unit -> W.prepared }

let subject_of_workload ?(scale = 1) (w : W.t) =
  { name = w.W.abbr; fresh = (fun () -> w.W.prepare ~scale) }

let run_differential_subject ?fault ?collect (s : subject) =
  let base_prep = s.fresh () in
  let darsie_prep = s.fresh () in
  let st = static_of base_prep.W.launch in
  let base = observe_base st base_prep in
  let mismatches = ref [] in
  let n_mism = ref 0 in
  let add_mismatch m =
    incr n_mism;
    if !n_mism <= mismatch_cap then mismatches := m :: !mismatches
  in
  match base.outcome with
  | Error e ->
    add_mismatch (Crash { machine = "BASE"; error = e });
    {
      app = s.name;
      fault;
      forwards = 0;
      warp_insts = 0;
      mismatches = List.rev !mismatches;
    }
  | Ok base_stats ->
    (* A spurious skip can turn a loop infinite; bound the faulted run by
       a small multiple of the clean instruction count so it fails fast
       (a Runaway crash is a detection, not a hang). *)
    let max_insts = (base_stats.Interp.warp_insts * 4) + 10_000 in
    let darsie, forwards, forward_mismatches =
      observe_darsie ?fault ?collect ~max_insts st darsie_prep
    in
    List.iter add_mismatch forward_mismatches;
    (match darsie.outcome with
    | Error e -> add_mismatch (Crash { machine = "DARSIE"; error = e })
    | Ok _ ->
      compare_runs ~add_mismatch base darsie;
      (match darsie_prep.W.verify darsie.mem with
      | Ok () -> ()
      | Error m -> add_mismatch (Reference_mismatch m)));
    {
      app = s.name;
      fault;
      forwards;
      warp_insts = base_stats.Interp.warp_insts;
      mismatches = List.rev !mismatches;
    }

let check_subject s = run_differential_subject s

let check_fault_subject s fault = run_differential_subject ~fault s

let candidates_subject s =
  let c =
    { flip = []; n_flip = 0; poison = []; n_poison = 0; skip = []; n_skip = 0 }
  in
  let (_ : report) = run_differential_subject ~collect:c s in
  {
    Injector.flip_sites = List.rev c.flip;
    poison_sites = List.rev c.poison;
    skip_sites = List.rev c.skip;
  }

let check ?scale w =
  Darsie_telemetry.Telemetry.span
    ~args:[ ("app", Darsie_telemetry.Telemetry.Str w.W.abbr) ]
    "oracle.replay"
    (fun () -> check_subject (subject_of_workload ?scale w))

let check_fault ?scale w fault =
  check_fault_subject (subject_of_workload ?scale w) fault

let candidates ?scale w = candidates_subject (subject_of_workload ?scale w)
