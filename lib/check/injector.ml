type kind = Flip_skip_entry | Poison_hre | Skip_non_redundant

let kind_name = function
  | Flip_skip_entry -> "flip_skip_entry"
  | Poison_hre -> "poison_hre"
  | Skip_non_redundant -> "skip_non_redundant"

let all_kinds = [ Flip_skip_entry; Poison_hre; Skip_non_redundant ]

type site = { s_tb : int; s_warp : int; s_inst : int; s_occ : int }

type fault = { kind : kind; site : site }

let fault_line f =
  Printf.sprintf "%s at tb %d warp %d inst %d occ %d" (kind_name f.kind)
    f.site.s_tb f.site.s_warp f.site.s_inst f.site.s_occ

type candidates = {
  flip_sites : site list;
  poison_sites : site list;
  skip_sites : site list;
}

let total c =
  List.length c.flip_sites + List.length c.poison_sites
  + List.length c.skip_sites

let plan ~seed ~count cands =
  let rng = Random.State.make [| seed |] in
  let pools =
    List.filter_map
      (fun (kind, sites) ->
        if sites = [] then None else Some (kind, ref (Array.of_list sites)))
      [
        (Flip_skip_entry, cands.flip_sites);
        (Poison_hre, cands.poison_sites);
        (Skip_non_redundant, cands.skip_sites);
      ]
  in
  (* Sample without replacement: swap the pick to the end, shrink. *)
  let draw pool =
    let a = !pool in
    let n = Array.length a in
    if n = 0 then None
    else begin
      let i = Random.State.int rng n in
      let picked = a.(i) in
      a.(i) <- a.(n - 1);
      pool := Array.sub a 0 (n - 1);
      Some picked
    end
  in
  let faults = ref [] in
  let want = ref count in
  let progressed = ref true in
  while !want > 0 && !progressed do
    progressed := false;
    List.iter
      (fun (kind, pool) ->
        if !want > 0 then
          match draw pool with
          | Some site ->
            faults := { kind; site } :: !faults;
            decr want;
            progressed := true
          | None -> ())
      pools
  done;
  List.rev !faults
