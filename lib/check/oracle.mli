(** The differential oracle: cross-validation of DARSIE-mode execution
    against the BASE emulator.

    The oracle runs a workload twice through the functional emulator. The
    {e base} run executes every instruction normally. The {e DARSIE-mode}
    run re-enacts the elimination semantics functionally: the first warp
    to reach a TB-redundant (pc, occurrence) is its leader and records
    its destination vector in a forwarding table (the functional
    equivalent of the skip table + HRE registers); every later warp is a
    follower whose destination is overwritten with the forwarded vector.
    The table is flushed at threadblock barriers and its load-sourced
    entries are flushed on stores and atomics, mirroring the timing
    engine's invalidation rules.

    Divergence is caught on four independent channels, each a
    {!mismatch}:
    - every follower substitution compares the forwarded vector against
      the value the follower just recomputed;
    - per-(threadblock, warp) executed-instruction counts;
    - final per-(threadblock, warp, register) last-written values;
    - final global-memory state ({!Darsie_emu.Memory.diff}), plus the
      workload's own CPU-reference check.

    On a clean run all channels agree (zero false positives); an injected
    fault ({!Injector.fault}) must trip at least one of them — a crash of
    the faulted run also counts as detection. *)

type mismatch =
  | Forward_mismatch of {
      tb : int;
      warp : int;
      inst : int;
      occ : int;
      lane : int;
      recomputed : Darsie_isa.Value.t;
      forwarded : Darsie_isa.Value.t;
    }  (** a follower's forwarded value differed from what it recomputed *)
  | Count_mismatch of { tb : int; warp : int; base : int; darsie : int }
      (** executed warp-instruction counts diverged *)
  | Register_mismatch of {
      tb : int;
      warp : int;
      reg : int;
      lane : int;
      base : Darsie_isa.Value.t;
      darsie : Darsie_isa.Value.t;
    }  (** final last-written register values diverged *)
  | Memory_mismatch of {
      addr : int;
      base : Darsie_isa.Value.t;
      darsie : Darsie_isa.Value.t;
    }  (** final global-memory words diverged *)
  | Reference_mismatch of string
      (** the workload's CPU-reference check rejected the DARSIE-mode
          result *)
  | Crash of { machine : string; error : Darsie_emu.Interp.error }
      (** one of the two runs died with a typed emulator error *)

val mismatch_line : mismatch -> string

type report = {
  app : string;
  fault : Injector.fault option;  (** the injected fault, if any *)
  forwards : int;  (** follower substitutions performed and checked *)
  warp_insts : int;  (** dynamic warp instructions in the base run *)
  mismatches : mismatch list;  (** capped; empty means the runs agree *)
}

val passed : report -> bool

val to_error : report -> Sim_error.t option
(** [None] when the report passed; otherwise the corresponding
    [Oracle_mismatch]. *)

(** {1 Library-level verdicts}

    The oracle as a reusable component: anything that can produce fresh
    prepared state (memory + launch + optional reference check) can be
    cross-validated, not just the Table-1 registry. The kernel fuzzer
    drives thousands of generated kernels through this interface. *)

type subject = {
  name : string;  (** label used in reports and error messages *)
  fresh : unit -> Darsie_workloads.Workload.prepared;
      (** produce a {e fresh} prepared state on every call — the base and
          DARSIE-mode runs each consume one *)
}

val subject_of_workload :
  ?scale:int -> Darsie_workloads.Workload.t -> subject

val check_subject : subject -> report

val check_fault_subject : subject -> Injector.fault -> report

val candidates_subject : subject -> Injector.candidates

val check : ?scale:int -> Darsie_workloads.Workload.t -> report
(** Clean differential run: must pass for every workload. *)

val check_fault :
  ?scale:int -> Darsie_workloads.Workload.t -> Injector.fault -> report
(** Differential run with one fault injected into the DARSIE-mode side:
    must NOT pass. *)

val candidates : ?scale:int -> Darsie_workloads.Workload.t -> Injector.candidates
(** Profiling pre-pass: a clean DARSIE-mode run that records every
    applicable injection site per fault kind. *)
