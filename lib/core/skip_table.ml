(* Per-PC entry telemetry, shared by every table the engine creates so
   the counts survive TB retirement (tables are per resident TB and die
   with it). The logical clock is set once per cycle by the engine. *)
module Telemetry = struct
  type cell = {
    mutable allocs : int;
    mutable hits : int;
    mutable parks : int;
    mutable load_flushes : int;
    mutable barrier_flushes : int;
    mutable lifetime : int;
  }

  type t = { mutable now : int; cells : (int, cell) Hashtbl.t }

  let create () = { now = 0; cells = Hashtbl.create 16 }

  let set_now t cycle = t.now <- cycle

  let now t = t.now

  let cell t pc =
    match Hashtbl.find_opt t.cells pc with
    | Some c -> c
    | None ->
      let c =
        {
          allocs = 0;
          hits = 0;
          parks = 0;
          load_flushes = 0;
          barrier_flushes = 0;
          lifetime = 0;
        }
      in
      Hashtbl.add t.cells pc c;
      c

  let note_park t ~pc = (cell t pc).parks <- (cell t pc).parks + 1

  let note_parks t ~pc ~n = (cell t pc).parks <- (cell t pc).parks + n

  let entries t =
    Hashtbl.fold
      (fun pc c acc ->
        ( pc,
          {
            Darsie_obs.Pcstat.sk_allocs = c.allocs;
            sk_hits = c.hits;
            sk_parks = c.parks;
            sk_load_flushes = c.load_flushes;
            sk_barrier_flushes = c.barrier_flushes;
            sk_lifetime = c.lifetime;
          } )
        :: acc)
      t.cells []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

type instance = {
  occ : int;
  leader : int;
  mutable leader_wb : bool;
  mutable done_mask : int;
  mem_dep : bool;
  born : int;  (* telemetry clock at allocation; 0 without telemetry *)
}

type entry = { pc : int; mutable instances : instance list }

type t = {
  max_entries : int;
  rename_regs : int;
  mutable free : int;
  table : (int, entry) Hashtbl.t;
  mutable telemetry : Telemetry.t option;
  (* Store/atomic-flushed load instances, keyed (pc, occ), remembering
     what flushed them and who led; the skip ledger consumes one record
     per flushed instance to name the executing warp's fate. Cleared on
     [flush_all] — a barrier retires every pre-barrier occurrence. *)
  flushed : (int * int, [ `Store | `Atomic ] * int) Hashtbl.t;
}

let create ~max_entries ~rename_regs =
  {
    max_entries;
    rename_regs;
    free = rename_regs;
    table = Hashtbl.create 16;
    telemetry = None;
    flushed = Hashtbl.create 16;
  }

let attach_telemetry t tel = t.telemetry <- Some tel

(* Telemetry bumps; all no-ops when no telemetry is attached. *)
let tel_do t f = match t.telemetry with None -> () | Some tel -> f tel

let tel_free t pc (i : instance) kind =
  tel_do t (fun tel ->
      let c = Telemetry.cell tel pc in
      c.Telemetry.lifetime <-
        c.Telemetry.lifetime + max 0 (Telemetry.now tel - i.born);
      match kind with
      | `Swept -> ()
      | `Load_flush -> c.Telemetry.load_flushes <- c.Telemetry.load_flushes + 1
      | `Barrier_flush ->
        c.Telemetry.barrier_flushes <- c.Telemetry.barrier_flushes + 1)

let find t ~pc ~occ =
  match Hashtbl.find_opt t.table pc with
  | None -> None
  | Some e -> List.find_opt (fun i -> i.occ = occ) e.instances

let has_free_reg t = t.free > 0

let has_entry_slot t ~pc =
  Hashtbl.mem t.table pc || Hashtbl.length t.table < t.max_entries

let can_allocate t ~pc = has_entry_slot t ~pc && has_free_reg t

let allocate t ~pc ~occ ~leader ~mem_dep =
  if not (can_allocate t ~pc) then
    invalid_arg "Skip_table.allocate: table or freelist exhausted";
  if find t ~pc ~occ <> None then
    invalid_arg "Skip_table.allocate: instance already live";
  let born =
    match t.telemetry with Some tel -> Telemetry.now tel | None -> 0
  in
  let inst =
    { occ; leader; leader_wb = false; done_mask = 1 lsl leader; mem_dep; born }
  in
  (match Hashtbl.find_opt t.table pc with
  | Some e -> e.instances <- inst :: e.instances
  | None -> Hashtbl.add t.table pc { pc; instances = [ inst ] });
  t.free <- t.free - 1;
  tel_do t (fun tel ->
      let c = Telemetry.cell tel pc in
      c.Telemetry.allocs <- c.Telemetry.allocs + 1)

(* Free instances whose value is no longer needed: the leader has written
   back and every warp currently on the majority path has passed. *)
let freeable majority i = i.leader_wb && majority land lnot i.done_mask = 0

let sweep_entry t majority e =
  let live, dead = List.partition (fun i -> not (freeable majority i)) e.instances in
  t.free <- t.free + List.length dead;
  List.iter (fun i -> tel_free t e.pc i `Swept) dead;
  e.instances <- live;
  if live = [] then Hashtbl.remove t.table e.pc

let sweep t ~pc ~majority =
  match Hashtbl.find_opt t.table pc with
  | None -> ()
  | Some e -> sweep_entry t majority e

let mark_writeback t ~pc ~occ ~majority =
  (match find t ~pc ~occ with
  | Some i -> i.leader_wb <- true
  | None -> ());
  sweep t ~pc ~majority

let mark_passed t ~pc ~occ ~warp ~majority =
  (match find t ~pc ~occ with
  | Some i ->
    i.done_mask <- i.done_mask lor (1 lsl warp);
    tel_do t (fun tel ->
        let c = Telemetry.cell tel pc in
        c.Telemetry.hits <- c.Telemetry.hits + 1)
  | None -> ());
  sweep t ~pc ~majority

let recheck t ~majority =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
  List.iter (sweep_entry t majority) entries

let flush_loads t ~kind =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
  List.iter
    (fun e ->
      let live, dead = List.partition (fun i -> not i.mem_dep) e.instances in
      t.free <- t.free + List.length dead;
      List.iter
        (fun i ->
          tel_free t e.pc i `Load_flush;
          Hashtbl.replace t.flushed (e.pc, i.occ) (kind, i.leader))
        dead;
      e.instances <- live;
      if live = [] then Hashtbl.remove t.table e.pc)
    entries

let consume_flush t ~pc ~occ =
  match Hashtbl.find_opt t.flushed (pc, occ) with
  | None -> None
  | Some record ->
    Hashtbl.remove t.flushed (pc, occ);
    Some record

let flush_all t =
  Hashtbl.iter
    (fun pc e -> List.iter (fun i -> tel_free t pc i `Barrier_flush) e.instances)
    t.table;
  Hashtbl.reset t.table;
  Hashtbl.reset t.flushed;
  t.free <- t.rename_regs

let live_entries t = Hashtbl.length t.table

let free_regs t = t.free

let live_instances t =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.instances) t.table 0

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if t.free < 0 || t.free > t.rename_regs then
    fail "freelist out of range: %d of %d" t.free t.rename_regs
  else if t.free + live_instances t <> t.rename_regs then
    fail "register leak: %d free + %d live <> %d total" t.free
      (live_instances t) (t.rename_regs)
  else if Hashtbl.length t.table > t.max_entries then
    fail "entry overflow: %d entries, %d slots" (Hashtbl.length t.table)
      t.max_entries
  else
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if key <> e.pc then fail "entry keyed %d holds pc %d" key e.pc
          else if e.instances = [] then fail "empty entry at pc %d" e.pc
          else
            let occs = List.map (fun i -> i.occ) e.instances in
            if List.length (List.sort_uniq compare occs) <> List.length occs
            then fail "duplicate occurrence at pc %d" e.pc
            else if
              List.exists
                (fun i -> i.done_mask land (1 lsl i.leader) = 0)
                e.instances
            then fail "leader missing from done_mask at pc %d" e.pc
            else Ok ())
      t.table (Ok ())
