type instance = {
  occ : int;
  leader : int;
  mutable leader_wb : bool;
  mutable done_mask : int;
  is_load : bool;
}

type entry = { pc : int; mutable instances : instance list }

type t = {
  max_entries : int;
  rename_regs : int;
  mutable free : int;
  table : (int, entry) Hashtbl.t;
}

let create ~max_entries ~rename_regs =
  { max_entries; rename_regs; free = rename_regs; table = Hashtbl.create 16 }

let find t ~pc ~occ =
  match Hashtbl.find_opt t.table pc with
  | None -> None
  | Some e -> List.find_opt (fun i -> i.occ = occ) e.instances

let has_free_reg t = t.free > 0

let has_entry_slot t ~pc =
  Hashtbl.mem t.table pc || Hashtbl.length t.table < t.max_entries

let can_allocate t ~pc = has_entry_slot t ~pc && has_free_reg t

let allocate t ~pc ~occ ~leader ~is_load =
  if not (can_allocate t ~pc) then
    invalid_arg "Skip_table.allocate: table or freelist exhausted";
  if find t ~pc ~occ <> None then
    invalid_arg "Skip_table.allocate: instance already live";
  let inst =
    { occ; leader; leader_wb = false; done_mask = 1 lsl leader; is_load }
  in
  (match Hashtbl.find_opt t.table pc with
  | Some e -> e.instances <- inst :: e.instances
  | None -> Hashtbl.add t.table pc { pc; instances = [ inst ] });
  t.free <- t.free - 1

(* Free instances whose value is no longer needed: the leader has written
   back and every warp currently on the majority path has passed. *)
let freeable majority i = i.leader_wb && majority land lnot i.done_mask = 0

let sweep_entry t majority e =
  let live, dead = List.partition (fun i -> not (freeable majority i)) e.instances in
  t.free <- t.free + List.length dead;
  e.instances <- live;
  if live = [] then Hashtbl.remove t.table e.pc

let sweep t ~pc ~majority =
  match Hashtbl.find_opt t.table pc with
  | None -> ()
  | Some e -> sweep_entry t majority e

let mark_writeback t ~pc ~occ ~majority =
  (match find t ~pc ~occ with
  | Some i -> i.leader_wb <- true
  | None -> ());
  sweep t ~pc ~majority

let mark_passed t ~pc ~occ ~warp ~majority =
  (match find t ~pc ~occ with
  | Some i -> i.done_mask <- i.done_mask lor (1 lsl warp)
  | None -> ());
  sweep t ~pc ~majority

let recheck t ~majority =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
  List.iter (sweep_entry t majority) entries

let flush_loads t =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
  List.iter
    (fun e ->
      let live, dead = List.partition (fun i -> not i.is_load) e.instances in
      t.free <- t.free + List.length dead;
      e.instances <- live;
      if live = [] then Hashtbl.remove t.table e.pc)
    entries

let flush_all t =
  Hashtbl.reset t.table;
  t.free <- t.rename_regs

let live_entries t = Hashtbl.length t.table

let free_regs t = t.free

let live_instances t =
  Hashtbl.fold (fun _ e acc -> acc + List.length e.instances) t.table 0

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if t.free < 0 || t.free > t.rename_regs then
    fail "freelist out of range: %d of %d" t.free t.rename_regs
  else if t.free + live_instances t <> t.rename_regs then
    fail "register leak: %d free + %d live <> %d total" t.free
      (live_instances t) (t.rename_regs)
  else if Hashtbl.length t.table > t.max_entries then
    fail "entry overflow: %d entries, %d slots" (Hashtbl.length t.table)
      t.max_entries
  else
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if key <> e.pc then fail "entry keyed %d holds pc %d" key e.pc
          else if e.instances = [] then fail "empty entry at pc %d" e.pc
          else
            let occs = List.map (fun i -> i.occ) e.instances in
            if List.length (List.sort_uniq compare occs) <> List.length occs
            then fail "duplicate occurrence at pc %d" e.pc
            else if
              List.exists
                (fun i -> i.done_mask land (1 lsl i.leader) = 0)
                e.instances
            then fail "leader missing from done_mask at pc %d" e.pc
            else Ok ())
      t.table (Ok ())
