open Darsie_timing
open Darsie_trace

type options = { ignore_store : bool; no_cf_sync : bool }

let default_options = { ignore_store = false; no_cf_sync = false }

let name_of o =
  match (o.ignore_store, o.no_cf_sync) with
  | false, false -> "DARSIE"
  | true, false -> "DARSIE-IGNORE-STORE"
  | false, true -> "DARSIE-NO-CF-SYNC"
  | true, true -> "DARSIE-IGNORE-STORE-NO-CF-SYNC"

type sync_entry = {
  mutable arrived : int;
  mutable released : bool;
  mutable first_succ : int;
}

type slot_state = {
  skip : Skip_table.t;
  majority : Majority.t;
  syncs : (int * int, sync_entry) Hashtbl.t;  (* (branch pc, occ) *)
  mutable warps : Engine.wctx array;
  mutable bar_arrived : int;
}

let warp_drained (w : Engine.wctx) =
  Engine.warp_done w && Queue.is_empty w.Engine.ibuf

(* Warps still producing work: a finished warp must not gate
   synchronization or register freeing. *)
let alive_mask slot =
  Array.fold_left
    (fun acc (w : Engine.wctx) ->
      if Engine.warp_done w then acc else acc lor (1 lsl w.Engine.warp_in_tb))
    0 slot.warps

let successor_of (w : Engine.wctx) =
  if w.Engine.fi + 1 < Array.length w.Engine.trace then
    w.Engine.trace.(w.Engine.fi + 1).Record.idx
  else -1

let make ?(options = default_options) (kinfo : Kinfo.t) (cfg : Config.t)
    (stats : Stats.t) =
  (* The SM-wide PC skip table has skip_entries_per_tb x max_tbs_per_sm
     entries (256 in the paper); when occupancy limits leave fewer
     threadblocks resident, each resident TB's share of the pool grows. *)
  let entries_per_tb =
    if options.no_cf_sync then max_int / 2
    else begin
      let warps_per_tb =
        Darsie_isa.Kernel.warps_per_block kinfo.Kinfo.launch
          ~warp_size:cfg.Config.warp_size
      in
      let resident = Gpu.occupancy cfg kinfo.Kinfo.kernel ~warps_per_tb in
      max cfg.Config.skip_entries_per_tb
        (cfg.Config.skip_entries_per_tb * cfg.Config.max_tbs_per_sm / resident)
    end
  in
  let rename_regs_per_tb =
    if options.no_cf_sync then max_int / 2
    else cfg.Config.rename_regs_per_tb
  in
  (* One telemetry block outlives the per-TB tables, so [pc_telemetry]
     reports entry statistics over the SM's whole run. *)
  let telemetry = Skip_table.Telemetry.create () in
  let slots : (int, slot_state) Hashtbl.t = Hashtbl.create 8 in
  let full_mask = (1 lsl cfg.Config.warp_size) - 1 in
  (* Steadiness tracking for the fast-forward path: [state_mutated] is
     cleared at the top of every [cycle_skip] and set by any change to
     engine or warp state (parks, releases, cursor moves, table traffic,
     fetch gating). A skip phase that only accumulated statistics leaves
     it false — it will repeat identically while the SM is frozen, so
     a jumped span can charge it in bulk (see [bulk_skip]). *)
  let state_mutated = ref true in
  let mutated () = state_mutated := true in
  (* The fetch gate, park site and freelist-stall counter are per-warp
     fields inlined in the SM's warp context ([Engine.wctx]) — the skip
     phase touches them for every warp every cycle, so they must not go
     through a hash table. *)
  let set_ok (w : Engine.wctx) v =
    if w.Engine.fetch_ok <> v then begin
      mutated ();
      w.Engine.fetch_ok <- v
    end
  in
  (* A warp stalled at a skip-table instruction registers in the entry's
     warps-waiting bitmask (§4.3.2 field 2) and is woken by the leader's
     writeback — re-checking costs no PC-coalescer port. [parked_at] is
     the trace index the warp is parked at, [-1] when not parked. *)
  let park (w : Engine.wctx) =
    if w.Engine.parked_at <> w.Engine.fi then begin
      mutated ();
      w.Engine.parked_at <- w.Engine.fi
    end
  in
  let unpark (w : Engine.wctx) =
    if w.Engine.parked_at >= 0 then begin
      mutated ();
      w.Engine.parked_at <- -1
    end
  in
  let bump_stall (w : Engine.wctx) =
    mutated ();
    w.Engine.skip_stall <- w.Engine.skip_stall + 1;
    w.Engine.skip_stall
  in
  let clear_stall (w : Engine.wctx) =
    if w.Engine.skip_stall <> 0 then begin
      mutated ();
      w.Engine.skip_stall <- 0
    end
  in
  let elim_shape idx =
    match kinfo.Kinfo.shape.(idx) with
    | Darsie_compiler.Marking.Uniform ->
      stats.Stats.elim_uniform <- stats.Stats.elim_uniform + 1
    | Darsie_compiler.Marking.Affine ->
      stats.Stats.elim_affine <- stats.Stats.elim_affine + 1
    | Darsie_compiler.Marking.Unstructured | Darsie_compiler.Marking.Varying ->
      stats.Stats.elim_unstructured <- stats.Stats.elim_unstructured + 1
  in
  (* Finished warps must not gate freeing (strict mode would deadlock on
     them); the idealized no-sync mode instead holds versions for
     laggards — it has unbounded rename registers, so early frees would
     only force spurious re-execution. *)
  let effective_majority slot =
    if options.no_cf_sync then Majority.mask slot.majority
    else Majority.mask slot.majority land alive_mask slot
  in
  (* The per-SM skip ledger, handed over by the SM at construction.
     Fates decided inside the skip phase (follower skips) are recorded
     here; executed occurrences are classified by [exec_fate] below. *)
  let ledger = ref None in
  let note_fate pc fate =
    match !ledger with
    | None -> ()
    | Some l -> Darsie_obs.Ledger.note l ~pc fate
  in
  (* [reason] is the ledger's drop provenance: 1 = SIMD-mask divergence,
     2 = branch synchronization; recorded only on a real on-path ->
     off-path transition so the first cause wins. *)
  let drop_from_majority ~reason slot (w : Engine.wctx) =
    if Majority.on_path slot.majority w.Engine.warp_in_tb then begin
      mutated ();
      w.Engine.drop_reason <- reason;
      Majority.drop slot.majority w.Engine.warp_in_tb;
      stats.Stats.majority_updates <- stats.Stats.majority_updates + 1;
      Skip_table.recheck slot.skip ~majority:(effective_majority slot)
    end
  in
  (* Branch-synchronization release: the majority of arrived warps picks
     the continuation path; warps headed elsewhere leave the majority. *)
  let release_sync slot entry =
    mutated ();
    let votes = Hashtbl.create 4 in
    Array.iter
      (fun (w : Engine.wctx) ->
        let b = 1 lsl w.Engine.warp_in_tb in
        if entry.arrived land b <> 0 then begin
          let s = successor_of w in
          Hashtbl.replace votes s
            (1 + Option.value ~default:0 (Hashtbl.find_opt votes s))
        end)
      slot.warps;
    let winner =
      Hashtbl.fold
        (fun succ n best ->
          match best with
          | Some (_, bn) when bn > n -> best
          | Some (bs, bn) when bn = n && bs <= succ -> best
          | _ -> Some (succ, n))
        votes None
    in
    (match winner with
    | Some (succ, _) ->
      Array.iter
        (fun (w : Engine.wctx) ->
          let b = 1 lsl w.Engine.warp_in_tb in
          if entry.arrived land b <> 0 && successor_of w <> succ then
            drop_from_majority ~reason:2 slot w)
        slot.warps
    | None -> ());
    entry.released <- true
  in
  (* Process one warp's pre-fetch window; returns nothing, sets fetch_ok. *)
  let probed = Hashtbl.create 8 in
  (* Park telemetry funnels through here so [bulk_skip]'s representative
     run can log which PCs park and replay them over the scaled span. *)
  let record_parks = ref false in
  let park_log : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let note_park idx =
    Skip_table.Telemetry.note_park telemetry ~pc:idx;
    if !record_parks then
      Hashtbl.replace park_log idx
        (1 + Option.value ~default:0 (Hashtbl.find_opt park_log idx))
  in
  let process_warp slot (w : Engine.wctx) =
    let rec go chain =
      if Engine.warp_done w then set_ok w true
      else begin
        let op = w.Engine.trace.(w.Engine.fi) in
        let idx = op.Record.idx in
        let win = w.Engine.warp_in_tb in
        if kinfo.Kinfo.is_barrier.(idx) then set_ok w true
        else if
          op.Record.active land full_mask <> full_mask
          && Majority.on_path slot.majority win
          && not (Engine.warp_done w)
        then begin
          (* Intra-warp SIMD divergence: leave the majority path (§4.5). *)
          drop_from_majority ~reason:1 slot w;
          set_ok w true
        end
        else if not (Majority.on_path slot.majority win) then set_ok w true
        else if kinfo.Kinfo.is_branch.(idx) then begin
          let key = (idx, op.Record.occ) in
          let entry =
            match Hashtbl.find_opt slot.syncs key with
            | Some e -> e
            | None ->
              mutated ();
              let e =
                { arrived = 0; released = false; first_succ = successor_of w }
              in
              Hashtbl.add slot.syncs key e;
              e
          in
          if options.no_cf_sync then begin
            (* Idealized: no stall; deviation from the first arrival's
               path drops the warp from the majority. *)
            if successor_of w <> entry.first_succ then
              drop_from_majority ~reason:2 slot w;
            set_ok w true
          end
          else if entry.released then set_ok w true
          else begin
            let arrived' = entry.arrived lor (1 lsl win) in
            if arrived' <> entry.arrived then begin
              mutated ();
              entry.arrived <- arrived'
            end;
            if entry.arrived land effective_majority slot
               = effective_majority slot
            then begin
              release_sync slot entry;
              set_ok w true
            end
            else begin
              stats.Stats.darsie_sync_stalls <-
                stats.Stats.darsie_sync_stalls + 1;
              set_ok w false
            end
          end
        end
        else if kinfo.Kinfo.tb_redundant.(idx) then begin
          (* PC coalescer: a bounded number of distinct skip PCs are
             serviced per cycle; chained skips ride the +8 adders, and
             warps already parked in an entry's waiting bitmask are woken
             for free. *)
          let is_parked = w.Engine.parked_at = w.Engine.fi in
          let port_ok =
            chain > 0 || is_parked || Hashtbl.mem probed idx
            || Hashtbl.length probed < cfg.Config.coalescer_ports
          in
          if not port_ok then set_ok w false
          else begin
            if (not is_parked) && not (Hashtbl.mem probed idx) then begin
              Hashtbl.replace probed idx ();
              stats.Stats.coalescer_probes <- stats.Stats.coalescer_probes + 1
            end;
            if not is_parked then
              stats.Stats.skip_table_probes <- stats.Stats.skip_table_probes + 1;
            match Skip_table.find slot.skip ~pc:idx ~occ:op.Record.occ with
            | Some inst when inst.Skip_table.leader = win ->
              (* The leader executes its own instruction. *)
              unpark w;
              set_ok w true
            | Some inst when inst.Skip_table.leader_wb || options.no_cf_sync ->
              (* Follower skip: PC += 8, remap the register version. The
                 occurrence's ledger fate is decided here: a warp that had
                 parked for LeaderWB resolves as parked-then-skipped, an
                 immediate hit as a plain skip. Skips always mutate state,
                 so this site is never replayed by a fast-forwarded span. *)
              mutated ();
              note_fate idx
                (if is_parked then Darsie_obs.Ledger.Parked_waiting_leaderwb
                 else Darsie_obs.Ledger.Skipped);
              unpark w;
              w.Engine.gave_up_at <- -1;
              w.Engine.fi <- w.Engine.fi + 1;
              stats.Stats.skipped_prefetch <- stats.Stats.skipped_prefetch + 1;
              stats.Stats.rename_accesses <- stats.Stats.rename_accesses + 1;
              elim_shape idx;
              Skip_table.mark_passed slot.skip ~pc:idx ~occ:op.Record.occ
                ~warp:win ~majority:(effective_majority slot);
              clear_stall w;
              if chain + 1 < cfg.Config.max_skips_per_warp_cycle then
                go (chain + 1)
              else set_ok w false
            | Some _ ->
              (* Follower parks in the warps-waiting bitmask until
                 LeaderWB (§4.3.2, field 5). *)
              park w;
              note_park idx;
              stats.Stats.darsie_sync_stalls <-
                stats.Stats.darsie_sync_stalls + 1;
              set_ok w false
            | None ->
              if not (Skip_table.has_entry_slot slot.skip ~pc:idx) then begin
                (* Table full: execute normally, no skipping. *)
                unpark w;
                set_ok w true
              end
              else if not (Skip_table.has_free_reg slot.skip) then begin
                (* Freelist empty: synchronize until a version frees; a
                   bounded fallback keeps forward progress. *)
                if options.no_cf_sync then set_ok w true
                else if bump_stall w > 64 then begin
                  clear_stall w;
                  unpark w;
                  (* Bounded wait exhausted: the warp executes this
                     occurrence itself; remember why for the ledger. *)
                  w.Engine.gave_up_at <- w.Engine.fi;
                  set_ok w true
                end
                else begin
                  park w;
                  stats.Stats.darsie_sync_stalls <-
                    stats.Stats.darsie_sync_stalls + 1;
                  set_ok w false
                end
              end
              else begin
                mutated ();
                Skip_table.allocate slot.skip ~pc:idx ~occ:op.Record.occ
                  ~leader:win ~mem_dep:kinfo.Kinfo.mem_dep.(idx);
                stats.Stats.rename_accesses <- stats.Stats.rename_accesses + 1;
                clear_stall w;
                unpark w;
                w.Engine.gave_up_at <- -1;
                set_ok w true
              end
          end
        end
        else set_ok w true
      end
    in
    go 0
  in
  (* The stat counters the skip phase can move. They are all monotone,
     so a frozen sum ([last_skip_quiet]) means every one was frozen.
     [bulk_skip] snapshots and scales each component individually when a
     steady span is jumped. *)
  let stat_mark () =
    stats.Stats.darsie_sync_stalls + stats.Stats.skipped_prefetch
    + stats.Stats.rename_accesses + stats.Stats.coalescer_probes
    + stats.Stats.skip_table_probes + stats.Stats.majority_updates
    + stats.Stats.elim_uniform + stats.Stats.elim_affine
    + stats.Stats.elim_unstructured
  in
  let last_skip_quiet = ref false in
  let last_skip_steady = ref false in
  let cycle_skip ~cycle =
    Skip_table.Telemetry.set_now telemetry cycle;
    let mark0 = stat_mark () in
    state_mutated := false;
    Hashtbl.reset probed;
    Hashtbl.iter
      (fun _ slot ->
        (* Release branch syncs that completed since last cycle (e.g. the
           majority shrank). *)
        Hashtbl.iter
          (fun _ e ->
            if (not e.released)
               && e.arrived land effective_majority slot
                  = effective_majority slot
               && e.arrived <> 0
            then release_sync slot e)
          slot.syncs;
        Array.iter (process_warp slot) slot.warps)
      slots;
    last_skip_quiet := stat_mark () = mark0;
    last_skip_steady := not !state_mutated
  in
  (* Charge [n] skipped skip-phase executions in one call. Sound only
     after a steady phase: [cycle_skip] is a deterministic function of
     engine and warp state plus the telemetry clock (which only matters
     on flush paths, and flushes are mutations), so with everything
     frozen all [n] executions are identical — run one for real and
     scale its accumulations (the stat counters below and the per-PC
     park telemetry) over the remaining [n - 1]. *)
  let bulk_skip ~cycle ~n =
    if n > 0 then begin
      let sync0 = stats.Stats.darsie_sync_stalls
      and pre0 = stats.Stats.skipped_prefetch
      and ren0 = stats.Stats.rename_accesses
      and coa0 = stats.Stats.coalescer_probes
      and pro0 = stats.Stats.skip_table_probes
      and maj0 = stats.Stats.majority_updates
      and eu0 = stats.Stats.elim_uniform
      and ea0 = stats.Stats.elim_affine
      and eun0 = stats.Stats.elim_unstructured in
      Hashtbl.reset park_log;
      record_parks := true;
      cycle_skip ~cycle;
      record_parks := false;
      if !state_mutated then
        invalid_arg "Darsie_engine.bulk_skip: skip phase was not steady";
      let k = n - 1 in
      if k > 0 then begin
        stats.Stats.darsie_sync_stalls <-
          stats.Stats.darsie_sync_stalls
          + ((stats.Stats.darsie_sync_stalls - sync0) * k);
        stats.Stats.skipped_prefetch <-
          stats.Stats.skipped_prefetch
          + ((stats.Stats.skipped_prefetch - pre0) * k);
        stats.Stats.rename_accesses <-
          stats.Stats.rename_accesses
          + ((stats.Stats.rename_accesses - ren0) * k);
        stats.Stats.coalescer_probes <-
          stats.Stats.coalescer_probes
          + ((stats.Stats.coalescer_probes - coa0) * k);
        stats.Stats.skip_table_probes <-
          stats.Stats.skip_table_probes
          + ((stats.Stats.skip_table_probes - pro0) * k);
        stats.Stats.majority_updates <-
          stats.Stats.majority_updates
          + ((stats.Stats.majority_updates - maj0) * k);
        stats.Stats.elim_uniform <-
          stats.Stats.elim_uniform + ((stats.Stats.elim_uniform - eu0) * k);
        stats.Stats.elim_affine <-
          stats.Stats.elim_affine + ((stats.Stats.elim_affine - ea0) * k);
        stats.Stats.elim_unstructured <-
          stats.Stats.elim_unstructured
          + ((stats.Stats.elim_unstructured - eun0) * k);
        Hashtbl.iter
          (fun pc c ->
            Skip_table.Telemetry.note_parks telemetry ~pc ~n:(c * k))
          park_log
      end
    end
  in
  let can_fetch (w : Engine.wctx) = w.Engine.fetch_ok in
  (* A fetch-bundle follower slot advanced [fi] past the instruction the
     skip phase gated on, so [fetch_ok] is stale; re-run the single-warp
     pre-fetch window at the new cursor. This shares the cycle's
     [probed] port table (a follower consult competes for the same
     PC-coalescer ports) and mutates exactly like the skip phase —
     register a sync arrival, park, or chain skips. Any mutation it
     makes follows a real fetch this cycle, and a fetch already forces
     the SM to step normally ([skip_reads_warp_state]), so the
     fast-forward steadiness snapshot is never trusted after it. *)
  let recheck_fetch (w : Engine.wctx) =
    (match Hashtbl.find_opt slots w.Engine.tb_slot with
    | Some slot -> process_warp slot w
    | None -> set_ok w true);
    w.Engine.fetch_ok
  in
  let on_issue ~cycle:_ (w : Engine.wctx) (op : Record.op) =
    (match Hashtbl.find_opt slots w.Engine.tb_slot with
    | None -> ()
    | Some slot ->
      if kinfo.Kinfo.is_barrier.(op.Record.idx) then begin
        slot.bar_arrived <- slot.bar_arrived lor (1 lsl w.Engine.warp_in_tb);
        let expected =
          Array.fold_left
            (fun acc (x : Engine.wctx) ->
              if warp_drained x && x.Engine.wid <> w.Engine.wid then acc
              else acc lor (1 lsl x.Engine.warp_in_tb))
            0 slot.warps
        in
        if slot.bar_arrived land expected = expected then begin
          (* All warps synchronized: majority bits set back to one and the
             pre-barrier skip state retired (§4.3.3). Every warp is back
             on the path, so the ledger's drop provenance resets too. *)
          Majority.reset slot.majority;
          Array.iter
            (fun (x : Engine.wctx) -> x.Engine.drop_reason <- 0)
            slot.warps;
          Skip_table.flush_all slot.skip;
          Hashtbl.reset slot.syncs;
          slot.bar_arrived <- 0
        end
      end);
    Engine.Execute
  in
  let on_writeback ~cycle:_ (w : Engine.wctx) (op : Record.op) =
    if kinfo.Kinfo.tb_redundant.(op.Record.idx) then
      match Hashtbl.find_opt slots w.Engine.tb_slot with
      | None -> ()
      | Some slot ->
        Skip_table.mark_writeback slot.skip ~pc:op.Record.idx
          ~occ:op.Record.occ ~majority:(effective_majority slot)
  in
  let on_store ~atomic (w : Engine.wctx) =
    if not options.ignore_store then
      match Hashtbl.find_opt slots w.Engine.tb_slot with
      | None -> ()
      | Some slot ->
        Skip_table.flush_loads slot.skip
          ~kind:(if atomic then `Atomic else `Store)
  in
  (* Classify one really-fetched occurrence of a TB-redundant PC. The
     precedence mirrors the skip phase's decision order: off-path warps
     first (they never consult the table), then flush provenance (which
     also covers the original leader refetching post-flush), then the
     bounded freelist wait, then a live instance led by this warp; what
     remains executed because the 8-entry table was exhausted. *)
  let exec_fate (w : Engine.wctx) (op : Record.op) =
    let idx = op.Record.idx in
    match Hashtbl.find_opt slots w.Engine.tb_slot with
    | None -> Darsie_obs.Ledger.Skip_disabled
    | Some slot -> (
      let win = w.Engine.warp_in_tb in
      if w.Engine.drop_reason = 1 then Darsie_obs.Ledger.Blocked_divergence
      else if w.Engine.drop_reason = 2 then Darsie_obs.Ledger.Blocked_branch_sync
      else
        match
          Skip_table.consume_flush slot.skip ~pc:idx ~occ:op.Record.occ
        with
        | Some (_, leader) when leader = win ->
          (* The leader's own execution: the flush happened between its
             allocation and its fetch. *)
          Darsie_obs.Ledger.Leader_executed
        | Some (`Store, _) -> Darsie_obs.Ledger.Flushed_store
        | Some (`Atomic, _) -> Darsie_obs.Ledger.Flushed_atomic
        | None -> (
          if w.Engine.gave_up_at = w.Engine.fi then begin
            w.Engine.gave_up_at <- -1;
            Darsie_obs.Ledger.Freelist_stall
          end
          else
            match Skip_table.find slot.skip ~pc:idx ~occ:op.Record.occ with
            | Some inst when inst.Skip_table.leader = win ->
              Darsie_obs.Ledger.Leader_executed
            | Some _ | None -> Darsie_obs.Ledger.Evicted_capacity))
  in
  let on_tb_launch ~tb_slot ~warps =
    Hashtbl.replace slots tb_slot
      {
        skip =
          (let t =
             Skip_table.create ~max_entries:entries_per_tb
               ~rename_regs:rename_regs_per_tb
           in
           Skip_table.attach_telemetry t telemetry;
           t);
        majority = Majority.create ~warps:(Array.length warps);
        syncs = Hashtbl.create 64;
        warps;
        bar_arrived = 0;
      }
  in
  let on_tb_finish ~tb_slot = Hashtbl.remove slots tb_slot in
  let debug_state () =
    Hashtbl.fold
      (fun _ slot (entries, insts, parked_w, syncs) ->
        ( entries + Skip_table.live_entries slot.skip,
          insts + Skip_table.live_instances slot.skip,
          parked_w
          + Array.fold_left
              (fun a (w : Engine.wctx) ->
                if w.Engine.parked_at >= 0 then a + 1 else a)
              0 slot.warps,
          syncs + Hashtbl.length slot.syncs ))
      slots
      (0, 0, 0, 0)
    |> fun (entries, insts, parked_w, syncs) ->
    [
      ("skip_entries", entries);
      ("live_instances", insts);
      ("parked_warps", parked_w);
      ("open_syncs", syncs);
      ("resident_tbs", Hashtbl.length slots);
    ]
  in
  {
    Engine.name = name_of options;
    cycle_skip;
    quiescent = (fun () -> !last_skip_quiet);
    skip_reads_warp_state = true;
    skip_steady = (fun () -> !last_skip_steady);
    bulk_skip;
    on_fast_forward =
      (* Keep the telemetry clock where stepping would have left it, so
         instance lifetimes flushed on the landing cycle are identical. *)
      (fun ~cycle -> Skip_table.Telemetry.set_now telemetry cycle);
    can_fetch;
    recheck_fetch;
    remove_at_fetch = (fun _ _ -> false);
    on_issue;
    on_writeback;
    on_store;
    exec_fate;
    set_ledger = (fun l -> ledger := Some l);
    on_tb_launch;
    on_tb_finish;
    debug_state;
    pc_telemetry = (fun () -> Skip_table.Telemetry.entries telemetry);
  }

let factory ?options () : Engine.factory =
 fun kinfo cfg stats -> make ?options kinfo cfg stats
