(** The PC skip table with multithreaded register versioning (paper
    §4.3.1–4.3.2).

    One table per resident threadblock. Each entry tracks a static PC that
    is currently being skipped; each live {e instance} of an entry is one
    dynamic execution (a loop iteration) of that PC, holding one renamed
    physical vector register from the per-TB freelist — the paper's
    register versioning. An instance records its leader warp, whether the
    leader has written the value back ([LeaderWB]) and which warps have
    passed it; the physical register returns to the freelist once every
    majority-path warp has passed.

    The table is bounded: at most [max_entries] distinct PCs (8 per TB in
    the paper) and [rename_regs] live instances (32 renamed registers per
    TB). When either is exhausted, arriving warps simply execute the
    instruction themselves. *)

(** Per-PC entry telemetry (allocations, follower hits, park cycles,
    flush causes, live lifetime). One [Telemetry.t] is shared by every
    table an engine creates so the counts survive TB retirement; the
    engine advances the logical clock once per cycle with {!set_now}. *)
module Telemetry : sig
  type t

  val create : unit -> t

  val set_now : t -> int -> unit
  (** Set the logical clock (the SM cycle) used for lifetime accounting. *)

  val note_park : t -> pc:int -> unit
  (** A follower parked in this PC's warps-waiting bitmask this cycle. *)

  val note_parks : t -> pc:int -> n:int -> unit
  (** [n] park cycles at once — the bulk form used when a fast-forwarded
      span replays a steady skip phase (see {!Darsie_engine}). *)

  val entries : t -> (int * Darsie_obs.Pcstat.skip_entry) list
  (** Snapshot, sorted by PC. *)
end

type instance = {
  occ : int;
  leader : int;  (** warp (within the TB) that executes the instruction *)
  mutable leader_wb : bool;
  mutable done_mask : int;  (** warps that have passed this instance *)
  mem_dep : bool;
  born : int;  (** telemetry clock at allocation; 0 without telemetry *)
}

type t

val create : max_entries:int -> rename_regs:int -> t

val attach_telemetry : t -> Telemetry.t -> unit
(** Attach a (possibly shared) telemetry block; without one, all
    telemetry accounting is off. Attach before the first {!allocate}. *)

val find : t -> pc:int -> occ:int -> instance option

val can_allocate : t -> pc:int -> bool
(** True when a new instance at [pc] could be created: the PC already has
    an entry or a table slot is free, and the freelist is non-empty. *)

val has_free_reg : t -> bool

val has_entry_slot : t -> pc:int -> bool

val allocate : t -> pc:int -> occ:int -> leader:int -> mem_dep:bool -> unit
(** Create an instance with the leader already marked in [done_mask].

    @raise Invalid_argument when [can_allocate] is false or the instance
    already exists. *)

val mark_writeback : t -> pc:int -> occ:int -> majority:int -> unit
(** Leader wrote the value back; sets [LeaderWB] and may free the instance
    when every majority warp has already passed. No-op if the instance is
    gone. *)

val mark_passed : t -> pc:int -> occ:int -> warp:int -> majority:int -> unit
(** A follower skipped the instance; frees it when [done_mask] covers the
    majority mask (and the leader has written back). *)

val recheck : t -> majority:int -> unit
(** Re-evaluate every instance's free condition after the majority mask
    shrank. *)

val flush_loads : t -> kind:[ `Store | `Atomic ] -> unit
(** Remove every memory-dependent entry — loads and instructions whose
    inputs transitively came from a load (a store or atomic was
    executed — §4.4; keeping a derived-value entry would hand follower
    warps pre-store data).
    Each flushed instance is remembered, keyed by (pc, occurrence) with
    [kind] and its leader, until {!consume_flush} or {!flush_all} — the
    skip ledger's provenance for [Flushed_store] / [Flushed_atomic]. *)

val consume_flush : t -> pc:int -> occ:int -> ([ `Store | `Atomic ] * int) option
(** Take (and forget) the flush record for (pc, occurrence): what flushed
    the instance and which warp led it. [None] when it was never
    flushed, or the record was already consumed. *)

val flush_all : t -> unit
(** Barrier / TB retirement: drop all state (including pending flush
    records), return all registers. *)

val live_entries : t -> int

val free_regs : t -> int

val live_instances : t -> int

val check_invariants : t -> (unit, string) result
(** Structural soundness: freelist within bounds, free + live instances
    equals the register budget, entry count within the table bound, one
    instance per (pc, occurrence), every leader present in its instance's
    [done_mask]. Used by the robustness layer after fault injection. *)
