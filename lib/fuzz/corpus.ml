open Darsie_isa
module Injector = Darsie_check.Injector

type entry = {
  e_case : Plan.case;
  e_kind : Injector.kind option;
  e_site : Injector.site option;
  e_failure : string;
  e_replay : string;
}

let to_string e =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let c = e.e_case in
  line "# darsie-fuzz corpus v1";
  line "# kind: %s"
    (match e.e_kind with None -> "clean" | Some k -> Injector.kind_name k);
  if e.e_failure <> "" then line "# failure: %s" e.e_failure;
  if e.e_replay <> "" then line "# replay: %s" e.e_replay;
  let gx, gy = c.Plan.c_grid in
  line "# grid: %d %d" gx gy;
  let bx, by, bz = c.Plan.c_block in
  line "# block: %d %d %d" bx by bz;
  List.iter (fun (l, f) -> line "# buffer: %d %d" l f) c.Plan.c_buffers;
  List.iter (fun s -> line "# scalar: %d" (Value.truncate s)) c.Plan.c_scalars;
  (match e.e_site with
  | Some s ->
      line "# site: %d %d %d %d" s.Injector.s_tb s.Injector.s_warp
        s.Injector.s_inst s.Injector.s_occ
  | None -> ());
  Buffer.add_string b (Printer.kernel_to_string c.Plan.kernel);
  Buffer.contents b

let of_string text =
  let headers =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if String.length l > 2 && String.sub l 0 2 = "# " then
             let l = String.sub l 2 (String.length l - 2) in
             match String.index_opt l ':' with
             | Some i ->
                 Some
                   ( String.sub l 0 i,
                     String.trim (String.sub l (i + 1) (String.length l - i - 1))
                   )
             | None -> None
           else None)
  in
  let all key = List.filter_map (fun (k, v) -> if k = key then Some v else None) headers in
  let one key = match all key with v :: _ -> Some v | [] -> None in
  let ints s = String.split_on_char ' ' s |> List.filter (( <> ) "") in
  try
    let kernel = Parser.parse_kernel text in
    let kind =
      match one "kind" with
      | None | Some "clean" -> None
      | Some name -> (
          match
            List.find_opt (fun k -> Injector.kind_name k = name) Injector.all_kinds
          with
          | Some k -> Some k
          | None -> failwith (Printf.sprintf "unknown fault kind %S" name))
    in
    let grid =
      match one "grid" with
      | Some s -> (
          match ints s with
          | [ x; y ] -> (int_of_string x, int_of_string y)
          | _ -> failwith "malformed grid header")
      | None -> failwith "missing grid header"
    in
    let block =
      match one "block" with
      | Some s -> (
          match ints s with
          | [ x; y; z ] -> (int_of_string x, int_of_string y, int_of_string z)
          | _ -> failwith "malformed block header")
      | None -> failwith "missing block header"
    in
    let buffers =
      List.map
        (fun s ->
          match ints s with
          | [ l; f ] -> (int_of_string l, int_of_string f)
          | _ -> failwith "malformed buffer header")
        (all "buffer")
    in
    let scalars = List.map int_of_string (all "scalar") in
    let site =
      match one "site" with
      | None -> None
      | Some s -> (
          match ints s with
          | [ tb; w; i; o ] ->
              Some
                {
                  Injector.s_tb = int_of_string tb;
                  s_warp = int_of_string w;
                  s_inst = int_of_string i;
                  s_occ = int_of_string o;
                }
          | _ -> failwith "malformed site header")
    in
    if kernel.Kernel.nparams <> List.length buffers + List.length scalars then
      failwith
        (Printf.sprintf
           ".params %d does not match %d buffers + %d scalars"
           kernel.Kernel.nparams (List.length buffers) (List.length scalars));
    Ok
      {
        e_case =
          {
            Plan.cname = kernel.Kernel.name;
            kernel;
            c_grid = grid;
            c_block = block;
            c_buffers = buffers;
            c_scalars = scalars;
          };
        e_kind = kind;
        e_site = site;
        e_failure = Option.value ~default:"" (one "failure");
        e_replay = Option.value ~default:"" (one "replay");
      }
  with
  | Failure msg -> Error msg
  | Parser.Parse_error (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)
  | Invalid_argument msg -> Error msg

let write ~dir ~filename entry =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir filename in
  let oc = open_out path in
  output_string oc (to_string entry);
  close_out oc;
  path

let load_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fuzz")
    |> List.sort compare
    |> List.map (fun f -> (f, load_file (Filename.concat dir f)))
