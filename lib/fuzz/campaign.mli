(** Fuzz campaigns: seeded batches of generated kernels through the
    stacked differential, with shrinking, corpus management and replay.

    Scheduling uses {!Darsie_harness.Parallel} with input-order result
    merging, and each kernel's generation stream depends only on
    [(seed, index)] — so a campaign's report (text and JSON) is
    byte-identical at any [-j], and any kernel can be replayed alone
    with [--replay SEED:INDEX]. Failures are shrunk in the worker that
    found them; corpus files are written after the deterministic merge,
    in index order. *)

type config = {
  seed : int;
  count : int;
  jobs : int option;  (** [None]: {!Darsie_harness.Parallel.default_jobs} *)
  max_shrink : int;  (** shrinker predicate-evaluation budget per failure *)
  corpus_dir : string option;  (** write shrunk counterexamples here *)
  inject : bool;
      (** fault-injection mode: instead of expecting every kernel to
          pass, find a kernel with an applicable injection site for each
          fault kind, verify the stacked oracle detects the injected
          fault, and shrink that kernel to a minimal witness *)
  base_cfg : Darsie_timing.Config.t;
      (** machine point the timing stages run at (pass
          [Darsie_timing.Config.default] for the legacy behaviour);
          lets campaigns exercise non-default [issue_width] / [mshrs] /
          [smem_banks] settings through the whole stack *)
}

type failure_rec = {
  fr_index : int;
  fr_style : string;
  fr_kind : string;
  fr_detail : string;
  fr_replay : string;  (** exact command line reproducing this kernel *)
  fr_items_before : int;
  fr_items_after : int;
  fr_evals : int;  (** shrinker predicate evaluations spent *)
  fr_case : Plan.case option;  (** the shrunk kernel ([None] iff build failure) *)
  fr_file : string option;  (** corpus path, when [corpus_dir] was given *)
}

type inject_rec = {
  ir_kind : string;
  ir_index : int option;  (** first kernel with an applicable site *)
  ir_detected : bool;
  ir_site : Darsie_check.Injector.site option;  (** site in the shrunk kernel *)
  ir_insts : int;  (** instruction count of the shrunk witness *)
  ir_file : string option;
}

type report = {
  r_seed : int;
  r_count : int;
  r_inject : bool;
  r_kernels : int;
  r_passed : int;
  r_styles : (string * int) list;  (** sorted by style name *)
  r_promoted : int;  (** kernels whose block geometry promotes CR to DR *)
  r_warp_insts : int;
  r_forwards : int;
  r_skips : int;
  r_cycles : int;
  r_failures : failure_rec list;
  r_injects : inject_rec list;
}

val run : config -> report

val passed : report -> bool
(** Clean mode: no failures. Inject mode: every fault kind found an
    applicable site and was detected. *)

val exit_code : report -> int
(** [0] when {!passed}; otherwise [7] if the first failure is an oracle
    mismatch, [2] for everything else. *)

val render : report -> string
(** Deterministic human-readable summary — independent of [jobs] and
    wall-clock, so CI can diff it. *)

val to_json : report -> Darsie_obs.Json.t
(** ["fuzz_campaign"] document, validated by
    {!Darsie_harness.Metrics.validate_fuzz}. *)

val replay :
  ?base_cfg:Darsie_timing.Config.t -> seed:int -> index:int -> unit ->
  string * int
(** Regenerate kernel [index] of campaign [seed], run the full stack on
    it alone (at [base_cfg], default the stock machine), and return the
    rendered case (geometry, assembly, verdict) plus a process exit
    code. *)

val replay_corpus :
  ?base_cfg:Darsie_timing.Config.t -> dir:string -> unit -> string * int
(** Re-run every [*.fuzz] file: clean entries must pass the stacked
    differential; injected entries must pass clean {e and} have their
    recorded fault detected when re-injected. *)
