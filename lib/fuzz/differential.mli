(** The stacked differential: every generated kernel runs through all
    three of the repo's cross-checking layers in sequence.

    1. {e Functional oracle} — DARSIE-mode functional replay vs the BASE
       emulator ({!Darsie_check.Oracle.check_subject}): forwarded values,
       instruction counts, final registers and memory must agree.
    2. {e Fast-forward bit-identity} — the same trace replayed through the
       DARSIE timing engine with event-driven fast-forwarding on and off:
       cycles, stats, stall attribution, skip telemetry and the skip
       ledger must match bit-for-bit.
    3. {e Accounting invariants} — {!Darsie_timing.Gpu.check_attribution}
       (every simulated cycle lands in exactly one stall bucket) and
       {!Darsie_timing.Gpu.check_ledger} (eligible = sum of fates, per SM
       and aggregated) on both timing runs.

    A failure carries a stable kind tag — the shrinker's predicate is
    "the same kind still fails", so minimization never wanders from an
    oracle bug onto an unrelated crash. *)

type failure = {
  f_kind : string;
      (** ["build"], ["crash"], ["oracle"], ["timing"],
          ["ff_divergence"], ["attribution"] or ["ledger"] *)
  f_detail : string;  (** deterministic one-to-few-line description *)
}

type verdict = {
  v_failure : failure option;  (** [None]: all three layers agree *)
  v_forwards : int;  (** follower substitutions the oracle checked *)
  v_warp_insts : int;  (** dynamic warp instructions (base run) *)
  v_cycles : int;  (** DARSIE timing cycles (fast-forward on) *)
  v_skips : int;  (** instructions skipped by the timing engine *)
}

val check_case : ?base_cfg:Darsie_timing.Config.t -> Plan.case -> verdict
(** [base_cfg] (default {!Darsie_timing.Config.default}) sets the
    machine point the timing stages run at — e.g. a non-default
    [issue_width] / [mshrs] / [smem_banks] — so fuzz campaigns can
    exercise the whole differential stack at every fidelity knob
    setting. The [fast_forward] and [max_cycles] fields are overridden
    by the stack itself. *)

val exit_code : failure -> int
(** Process exit code for a campaign that ends on this failure: oracle
    mismatches exit 7, everything else is an invariant violation (2) —
    the same codes the rest of the CLI uses. *)
