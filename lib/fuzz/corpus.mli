(** On-disk counterexample corpus.

    Each [.fuzz] file is one minimized counterexample: a [#]-comment
    header carrying everything the asm cannot (launch geometry, buffer
    sizes and fill seeds, scalar parameters, the fault kind and site for
    injected cases, and the exact replay command line) followed by the
    kernel in the canonical {!Darsie_isa.Printer} syntax. The whole file
    parses with {!Darsie_isa.Parser.parse_kernel} — the header lines are
    ordinary comments to the assembler — so corpus files double as
    human-readable repro recipes. [dune runtest] and [make fuzz-smoke]
    replay every checked-in file through the full differential stack. *)

type entry = {
  e_case : Plan.case;
  e_kind : Darsie_check.Injector.kind option;
      (** [Some k]: an injected-fault counterexample (the kernel is clean;
          injecting [k] at [e_site] must be detected). [None]: a clean
          kernel the stack must accept. *)
  e_site : Darsie_check.Injector.site option;
  e_failure : string;  (** failure tag for historical context; may be [""] *)
  e_replay : string;  (** exact command line that regenerates this case *)
}

val to_string : entry -> string

val of_string : string -> (entry, string) result

val write : dir:string -> filename:string -> entry -> string
(** Create [dir] if needed, write the entry, return the path. *)

val load_file : string -> (entry, string) result

val load_dir : string -> (string * (entry, string) result) list
(** Every [*.fuzz] file in the directory, sorted by filename. *)
