open Darsie_isa

type src =
  | SItem of int
  | SImm of int
  | SParam of int
  | SSreg of Instr.sreg

type target = Gbuf of int | Shm

type op = Bop of Instr.binop | Uop of Instr.unop | Top of Instr.ternop

type cond = {
  ckind : Instr.cmp_kind;
  ccmp : Instr.cmp;
  ca : src;
  cb : src;
}

type item =
  | Arith of { id : int; op : op; a : src; b : src; c : src }
  | Select of { id : int; cond : cond; a : src; b : src }
  | Load of { id : int; tgt : target; idx : src }
  | Store of { tgt : target; idx : src; v : src }
  | Atomic of { id : int; aop : Instr.atom_op; buf : int; idx : src; v : src }
  | Barrier
  | If of { cond : cond; body : item list }
  | Loop of { id : int; trip : int; body : item list }

type t = {
  name : string;
  grid : int * int;
  block : int * int * int;
  buffers : (int * int) list;
  scalars : int list;
  shared_log2 : int option;
  body : item list;
}

type case = {
  cname : string;
  kernel : Kernel.t;
  c_grid : int * int;
  c_block : int * int * int;
  c_buffers : (int * int) list;
  c_scalars : int list;
}

let rec size_items items =
  List.fold_left
    (fun acc it ->
      acc
      +
      match it with
      | If { body; _ } -> 1 + size_items body
      | Loop { body; _ } -> 1 + size_items body
      | _ -> 1)
    0 items

let size p = size_items p.body

exception Bad of string

let build (p : t) : (case, string) result =
  let gx, gy = p.grid in
  let bx, by, bz = p.block in
  let nbufs = List.length p.buffers in
  let nscalars = List.length p.scalars in
  try
    if gx < 1 || gy < 1 || bx < 1 || by < 1 || bz < 1 then
      raise (Bad "non-positive launch dimension");
    if bx * by * bz > 1024 then raise (Bad "threadblock exceeds 1024 threads");
    let shared_words =
      match p.shared_log2 with
      | Some l when l < 0 || l > 12 -> raise (Bad "shared_log2 out of range")
      | Some l -> 1 lsl l
      | None -> 0
    in
    let b =
      Builder.create ~name:p.name ~nparams:(nbufs + nscalars)
        ~shared_bytes:(4 * shared_words) ()
    in
    let module O = Builder.O in
    (* item id -> vector register holding its (latest) value *)
    let regs : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let operand_of = function
      | SItem id -> (
          match Hashtbl.find_opt regs id with
          | Some r -> O.r r
          | None -> O.i 0)
      | SImm v -> Instr.Imm (Value.truncate v)
      | SParam k -> if k >= 0 && k < nscalars then O.p (nbufs + k) else O.i 0
      | SSreg s -> Instr.Sreg s
    in
    let emit_cond c =
      let pr = Builder.pred b in
      Builder.setp b c.ckind c.ccmp pr (operand_of c.ca) (operand_of c.cb);
      pr
    in
    (* Mask the index into the target's word count and scale to a byte
       offset: addresses are non-negative, word-aligned and in-bounds by
       construction, so no generated kernel can fault the emulator. *)
    let addr_reg tgt idx =
      let words_log2, base =
        match tgt with
        | Gbuf k ->
            if k < 0 || k >= nbufs then
              raise (Bad (Printf.sprintf "Gbuf %d out of range" k));
            (fst (List.nth p.buffers k), Some (O.p k))
        | Shm -> (
            match p.shared_log2 with
            | None -> raise (Bad "Shm access without shared memory")
            | Some l -> (l, None))
      in
      let m = Builder.reg b in
      Builder.bin b Instr.And m (operand_of idx) (O.i ((1 lsl words_log2) - 1));
      let sh = Builder.reg b in
      Builder.shl b sh (O.r m) (O.i 2);
      match base with
      | None -> sh
      | Some base ->
          let a = Builder.reg b in
          Builder.add b a (O.r sh) base;
          a
    in
    let rec emit_items items = List.iter emit_item items
    and emit_item = function
      | Arith { id; op; a; b = ob; c } -> (
          let d = Builder.reg b in
          Hashtbl.replace regs id d;
          match op with
          | Bop o -> Builder.bin b o d (operand_of a) (operand_of ob)
          | Uop o -> Builder.un b o d (operand_of a)
          | Top o ->
              Builder.emit b
                (Instr.Tern (o, d, operand_of a, operand_of ob, operand_of c)))
      | Select { id; cond; a; b = ob } ->
          let pr = emit_cond cond in
          let d = Builder.reg b in
          Hashtbl.replace regs id d;
          Builder.selp b d (operand_of a) (operand_of ob) pr
      | Load { id; tgt; idx } ->
          let a = addr_reg tgt idx in
          let space =
            match tgt with Gbuf _ -> Instr.Global | Shm -> Instr.Shared
          in
          let d = Builder.reg b in
          Hashtbl.replace regs id d;
          Builder.ld b space d (O.r a) ()
      | Store { tgt; idx; v } ->
          let a = addr_reg tgt idx in
          let space =
            match tgt with Gbuf _ -> Instr.Global | Shm -> Instr.Shared
          in
          Builder.st b space (O.r a) (operand_of v)
      | Atomic { id; aop; buf; idx; v } ->
          let a = addr_reg (Gbuf buf) idx in
          let d = Builder.reg b in
          Hashtbl.replace regs id d;
          Builder.atom b aop d (O.r a) (operand_of v)
      | Barrier -> Builder.bar b
      | If { cond; body } ->
          let pr = emit_cond cond in
          let l = Builder.fresh_label b in
          Builder.bra b ~guard:(false, pr) l;
          emit_items body;
          Builder.place b l
      | Loop { id; trip; body } ->
          let trip = max 1 trip in
          let c = Builder.reg b in
          Hashtbl.replace regs id c;
          Builder.mov b c (O.i 0);
          let top = Builder.here b in
          emit_items body;
          Builder.add b c (O.r c) (O.i 1);
          let pr = Builder.pred b in
          Builder.setp b Instr.Scmp Instr.Lt pr (O.r c) (O.i trip);
          Builder.bra b ~guard:(true, pr) top
    in
    emit_items p.body;
    Builder.exit_ b;
    match Builder.finish_result b with
    | Ok kernel ->
        Ok
          {
            cname = p.name;
            kernel;
            c_grid = p.grid;
            c_block = p.block;
            c_buffers = p.buffers;
            c_scalars = p.scalars;
          }
    | Error e -> Error (Builder.error_message e)
  with Bad msg -> Error msg

let prepared (c : case) =
  let mem = Darsie_emu.Memory.create () in
  let bases =
    List.map
      (fun (words_log2, fill) ->
        let words = 1 lsl words_log2 in
        let base = Darsie_emu.Memory.alloc mem (4 * words) in
        for j = 0 to words - 1 do
          Darsie_emu.Memory.store_u32 mem (base + (4 * j)) (Sprng.hash2 fill j)
        done;
        base)
      c.c_buffers
  in
  let params =
    Array.of_list
      (List.map Value.truncate bases
      @ List.map Value.truncate c.c_scalars)
  in
  let gx, gy = c.c_grid in
  let bx, by, bz = c.c_block in
  let launch =
    Kernel.launch c.kernel
      ~grid:(Kernel.dim3 gx ~y:gy)
      ~block:(Kernel.dim3 bx ~y:by ~z:bz)
      ~params
  in
  { Darsie_workloads.Workload.mem; launch; verify = (fun _ -> Ok ()) }

let subject (c : case) =
  { Darsie_check.Oracle.name = c.cname; fresh = (fun () -> prepared c) }

let instruction_count (c : case) = Array.length c.kernel.Kernel.insts
