(** Delta-debugging minimizer over generation plans.

    Works on the {!Plan} representation, not on instruction streams, so
    every candidate edit yields a well-formed kernel by construction.
    Greedy fixpoint over an ordered edit menu — geometry ladder, ddmin
    chunk/single removal of body items (recursing into [If]/[Loop]
    bodies), structure collapse ([If]/[Loop] replaced by their body,
    trip counts dropped to 1), unused buffer/scalar dropping with
    reference renumbering, buffer-size and immediate simplification.
    An edit is kept iff [predicate] still holds on the edited plan; the
    caller's predicate pins the original failure kind, so shrinking
    cannot wander from (say) an oracle mismatch onto an unrelated crash.
    Deterministic: the result depends only on the input plan and the
    predicate. *)

val shrink :
  predicate:(Plan.t -> bool) ->
  max_evals:int ->
  Plan.t ->
  Plan.t * int
(** [(minimized, evals_used)]. [predicate] must hold on the input plan;
    at most [max_evals] predicate evaluations are spent. *)
