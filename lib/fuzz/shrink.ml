open Plan

(* ---- traversals ------------------------------------------------------ *)

let rec iter_srcs f items =
  List.iter
    (fun it ->
      match it with
      | Arith { a; b; c; _ } -> f a; f b; f c
      | Select { cond; a; b; _ } -> f cond.ca; f cond.cb; f a; f b
      | Load { idx; _ } -> f idx
      | Store { idx; v; _ } -> f idx; f v
      | Atomic { idx; v; _ } -> f idx; f v
      | Barrier -> ()
      | If { cond; body } -> f cond.ca; f cond.cb; iter_srcs f body
      | Loop { body; _ } -> iter_srcs f body)
    items

let rec iter_targets f items =
  List.iter
    (fun it ->
      match it with
      | Load { tgt; _ } | Store { tgt; _ } -> f tgt
      | Atomic { buf; _ } -> f (Gbuf buf)
      | If { body; _ } | Loop { body; _ } -> iter_targets f body
      | _ -> ())
    items

let rec map_body ~src ~tgt items =
  let cond c = { c with ca = src c.ca; cb = src c.cb } in
  List.map
    (fun it ->
      match it with
      | Arith { id; op; a; b; c } ->
          Arith { id; op; a = src a; b = src b; c = src c }
      | Select { id; cond = c; a; b } ->
          Select { id; cond = cond c; a = src a; b = src b }
      | Load { id; tgt = t; idx } -> Load { id; tgt = tgt t; idx = src idx }
      | Store { tgt = t; idx; v } ->
          Store { tgt = tgt t; idx = src idx; v = src v }
      | Atomic { id; aop; buf; idx; v } ->
          let buf = match tgt (Gbuf buf) with Gbuf b -> b | Shm -> buf in
          Atomic { id; aop; buf; idx = src idx; v = src v }
      | Barrier -> Barrier
      | If { cond = c; body } -> If { cond = cond c; body = map_body ~src ~tgt body }
      | Loop { id; trip; body } ->
          Loop { id; trip; body = map_body ~src ~tgt body })
    items

(* ---- edit menus ------------------------------------------------------ *)

let geometry_edits p =
  let gx, gy = p.grid and bx, by, bz = p.block in
  let threads = bx * by * bz in
  let grids =
    List.filter
      (fun g -> g <> p.grid && fst g * snd g < gx * gy)
      [ (1, 1); (2, 1) ]
  in
  let blocks =
    List.filter
      (fun (x, y, z) ->
        (x, y, z) <> p.block && x * y * z <= threads && (x, y, z) <> (bx, by, bz))
      [ (1, 1, 1); (2, 2, 1); (bx, 1, 1); (bx, by, 1); (4, 2, 1) ]
    |> List.sort_uniq compare
  in
  List.map (fun g -> { p with grid = g }) grids
  @ List.map (fun b -> { p with block = b }) blocks

(* One-level candidate bodies: ddmin-style chunk removals, then
   structural collapses, recursing into nested bodies. *)
let rec body_variants items =
  let n = List.length items in
  let arr = Array.of_list items in
  let remove_slice start len =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i -> if i >= start && i < start + len then None else Some arr.(i))
            (Seq.init n Fun.id)))
  in
  let chunked len =
    if len < 1 || len >= n + 1 then []
    else
      List.init ((n + len - 1) / len) (fun k -> remove_slice (k * len) len)
  in
  let removals =
    (if n >= 4 then chunked (n / 2) else [])
    @ (if n >= 8 then chunked (n / 4) else [])
    @ (if n >= 1 then chunked 1 else [])
  in
  let replace i it' = Array.to_list (Array.mapi (fun j x -> if j = i then it' else x) arr) in
  let splice i body =
    List.concat
      (List.mapi
         (fun j x -> if j = i then body else [ x ])
         items)
  in
  let structural =
    List.concat
      (List.mapi
         (fun i it ->
           match it with
           | If { cond; body } ->
               splice i body
               :: List.map
                    (fun b -> replace i (If { cond; body = b }))
                    (body_variants body)
           | Loop { id; trip; body } ->
               (splice i body
               ::
               (if trip > 1 then [ replace i (Loop { id; trip = 1; body }) ]
                else []))
               @ List.map
                   (fun b -> replace i (Loop { id; trip; body = b }))
                   (body_variants body)
           | _ -> [])
         items)
  in
  removals @ structural

let body_edits p = List.map (fun b -> { p with body = b }) (body_variants p.body)

let buffer_edits p =
  let nbufs = List.length p.buffers in
  let used = Array.make (max nbufs 1) false in
  iter_targets
    (function Gbuf k when k >= 0 && k < nbufs -> used.(k) <- true | _ -> ())
    p.body;
  let drops =
    List.concat
      (List.init nbufs (fun k ->
           if used.(k) || nbufs = 1 then []
           else
             let buffers = List.filteri (fun j _ -> j <> k) p.buffers in
             let tgt = function
               | Gbuf j when j > k -> Gbuf (j - 1)
               | t -> t
             in
             [
               {
                 p with
                 buffers;
                 body = map_body ~src:Fun.id ~tgt p.body;
               };
             ]))
  in
  let resizes =
    List.concat
      (List.mapi
         (fun k (l, f) ->
           (if l > 3 then
              [ { p with buffers = List.mapi (fun j b -> if j = k then (3, f) else b) p.buffers } ]
            else [])
           @
           if f <> 0 then
             [ { p with buffers = List.mapi (fun j b -> if j = k then (l, 0) else b) p.buffers } ]
           else [])
         p.buffers)
  in
  drops @ resizes

let scalar_edits p =
  let ns = List.length p.scalars in
  let used = Array.make (max ns 1) false in
  iter_srcs
    (function SParam k when k >= 0 && k < ns -> used.(k) <- true | _ -> ())
    p.body;
  let drops =
    List.concat
      (List.init ns (fun k ->
           if used.(k) then []
           else
             let scalars = List.filteri (fun j _ -> j <> k) p.scalars in
             let src = function
               | SParam j when j > k -> SParam (j - 1)
               | s -> s
             in
             [ { p with scalars; body = map_body ~src ~tgt:Fun.id p.body } ]))
  in
  let zeros =
    List.concat
      (List.mapi
         (fun k v ->
           if v <> 0 then
             [ { p with scalars = List.mapi (fun j x -> if j = k then 0 else x) p.scalars } ]
           else [])
         p.scalars)
  in
  drops @ zeros

let shared_edits p =
  match p.shared_log2 with
  | None -> []
  | Some l ->
      let uses_shm = ref false in
      iter_targets (function Shm -> uses_shm := true | _ -> ()) p.body;
      (if !uses_shm then [] else [ { p with shared_log2 = None } ])
      @ if l > 3 then [ { p with shared_log2 = Some 3 } ] else []

let imm_edits p =
  let values = ref [] in
  iter_srcs
    (function
      | SImm v when v <> 0 && v <> 1 && not (List.mem v !values) ->
          values := v :: !values
      | _ -> ())
    p.body;
  List.concat_map
    (fun v ->
      List.map
        (fun v' ->
          let src = function SImm x when x = v -> SImm v' | s -> s in
          { p with body = map_body ~src ~tgt:Fun.id p.body })
        [ 0; 1 ])
    (List.rev !values)

let edits p =
  geometry_edits p @ body_edits p @ buffer_edits p @ scalar_edits p
  @ shared_edits p @ imm_edits p

(* ---- greedy fixpoint ------------------------------------------------- *)

let shrink ~predicate ~max_evals plan =
  Darsie_telemetry.Telemetry.span "fuzz.shrink" @@ fun () ->
  let evals = ref 0 in
  let keep p =
    if !evals >= max_evals then false
    else begin
      incr evals;
      Darsie_telemetry.Telemetry.incr "shrink.evals";
      predicate p
    end
  in
  let rec improve p =
    if !evals >= max_evals then p
    else
      let rec first = function
        | [] -> p
        | c :: rest -> if keep c then improve c else first rest
      in
      first (edits p)
  in
  (* Bind before pairing: tuple components evaluate right-to-left, which
     would read [evals] before [improve] has run. *)
  let shrunk = improve plan in
  (shrunk, !evals)
