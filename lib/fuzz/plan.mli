(** Generation plans: the structured representation of a fuzzed kernel.

    The generator does not emit instructions directly — it emits a
    {e plan}: launch geometry, input buffers, and a tree of high-level
    items (arithmetic, memory ops, barriers, structured [If]/[Loop]
    control flow). {!build} lowers a plan through
    {!Darsie_isa.Builder}, so every generated kernel is well-formed by
    construction (masked word-aligned addressing, converging forward
    branches, counted uniform loops, a final [exit]); the shrinker
    operates on the same representation, where "drop an instruction" or
    "collapse a branch" are single-constructor edits that cannot produce
    an ill-formed kernel. *)

(** A value source. [SItem id] refers to the value produced by the item
    with that id; a dangling reference (possible after shrinking removed
    the producer) lowers to immediate [0]. Out-of-range [SParam]s lower
    to immediate [0] for the same reason. *)
type src =
  | SItem of int
  | SImm of int  (** 32-bit pattern *)
  | SParam of int  (** index into {!t.scalars} *)
  | SSreg of Darsie_isa.Instr.sreg

(** A memory target: global buffer [k] of the plan, or threadblock
    shared memory. *)
type target = Gbuf of int | Shm

type op =
  | Bop of Darsie_isa.Instr.binop
  | Uop of Darsie_isa.Instr.unop
  | Top of Darsie_isa.Instr.ternop

type cond = {
  ckind : Darsie_isa.Instr.cmp_kind;
  ccmp : Darsie_isa.Instr.cmp;
  ca : src;
  cb : src;
}

type item =
  | Arith of { id : int; op : op; a : src; b : src; c : src }
      (** [b]/[c] ignored for unary/binary ops *)
  | Select of { id : int; cond : cond; a : src; b : src }
  | Load of { id : int; tgt : target; idx : src }
      (** loads word [(idx mod words) * 4] of the target *)
  | Store of { tgt : target; idx : src; v : src }
  | Atomic of { id : int; aop : Darsie_isa.Instr.atom_op; buf : int;
                idx : src; v : src }
  | Barrier  (** only valid at nesting depth 0 (outside any [If]) *)
  | If of { cond : cond; body : item list }
      (** forward branch over [body]; reconverges immediately after *)
  | Loop of { id : int; trip : int; body : item list }
      (** counted uniform loop; [id] exposes the counter register as a
          value (current iteration inside the body, [trip] after) *)

type t = {
  name : string;
  grid : int * int;
  block : int * int * int;
  buffers : (int * int) list;
      (** per global buffer: [(words_log2, fill_seed)]; size is
          [2^words_log2] words, word [j] is filled with
          [Sprng.hash2 fill_seed j] *)
  scalars : int list;  (** 32-bit scalar parameters, after the buffer bases *)
  shared_log2 : int option;  (** shared-memory words (log2); required by [Shm] *)
  body : item list;
}

(** A built, runnable kernel plus everything needed to reconstruct its
    launch state from scratch. *)
type case = {
  cname : string;
  kernel : Darsie_isa.Kernel.t;
  c_grid : int * int;
  c_block : int * int * int;
  c_buffers : (int * int) list;
  c_scalars : int list;
}

val build : t -> (case, string) result
(** Lower the plan to a kernel. Fails (with a message) on invalid
    geometry, a [Gbuf] out of range, [Shm] without [shared_log2], or a
    {!Darsie_isa.Builder} well-formedness rejection — the shrinker
    treats a failing build as a rejected edit. *)

val prepared : case -> Darsie_workloads.Workload.prepared
(** Fresh memory (buffers allocated and deterministically filled),
    launch, and a trivial reference check — generated kernels are
    validated differentially, not against a CPU oracle. *)

val subject : case -> Darsie_check.Oracle.subject

val instruction_count : case -> int

val size : t -> int
(** Total item count, nested items included — the shrinker's progress
    metric. *)
