(* SplitMix64 (Steele, Lea, Flood 2014): a tiny splittable generator with
   excellent statistical quality for fuzzing purposes. State is one int64;
   each draw adds the golden-gamma and finalizes with a murmur-style
   mixer. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let for_index ~seed ~index =
  (* Mix seed and index through two rounds so that nearby (seed, index)
     pairs land far apart. *)
  let z = mix64 (Int64.add (mix64 (Int64.of_int seed)) (Int64.of_int index)) in
  { state = z }

let split t = { state = next t }

let bits32 t = Int64.to_int (Int64.logand (next t) 0xFFFFFFFFL)

let int t bound =
  if bound <= 0 then invalid_arg "Sprng.int: bound must be positive";
  (* 62 uniform bits mod bound: bias is negligible for fuzzing bounds. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let in_range t lo hi = lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let chance t pct = int t 100 < pct

let choose t = function
  | [] -> invalid_arg "Sprng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Sprng.weighted: non-positive total weight";
  let n = int t total in
  let rec pick n = function
    | [] -> invalid_arg "Sprng.weighted: empty list"
    | (w, x) :: rest -> if n < w then x else pick (n - w) rest
  in
  pick n pairs

let hash2 a b =
  let z = mix64 (Int64.add (mix64 (Int64.of_int a)) (Int64.of_int b)) in
  Int64.to_int (Int64.logand z 0xFFFFFFFFL)
