(** Splittable deterministic PRNG (SplitMix64).

    The fuzzer's only randomness source. Splittability is what makes the
    campaign embarrassingly parallel yet bit-reproducible: the kernel at
    index [i] of seed [s] is generated from [for_index ~seed:s ~index:i],
    a stream that depends on nothing but [(s, i)] — not on scheduling
    order, not on the number of worker domains, not on any other kernel.
    [darsie fuzz --replay S:I] re-creates exactly that stream. *)

type t

val create : int -> t
(** Stream seeded from a single integer. *)

val for_index : seed:int -> index:int -> t
(** The canonical per-kernel stream: deterministic in [(seed, index)]
    only. *)

val split : t -> t
(** Child stream derived from (and advancing) the parent — the two then
    evolve independently. *)

val bits32 : t -> int
(** Next 32 uniform bits as a non-negative int in [0, 2^32). *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound] must be
    positive. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] draws uniformly from [lo, hi] inclusive. *)

val bool : t -> bool

val chance : t -> int -> bool
(** [chance t pct] is true with probability [pct]/100. *)

val choose : t -> 'a list -> 'a
(** Uniform pick; the list must be non-empty. *)

val weighted : t -> (int * 'a) list -> 'a
(** Pick with the given positive integer weights. *)

val hash2 : int -> int -> int
(** Stateless 32-bit mix of two integers — deterministic buffer-fill
    patterns. *)
