(** Lattice-guided kernel generation.

    Each kernel is drawn from one of five {e styles} that overweight the
    corners where DARSIE's machinery earns its keep:

    - [promotion_boundary] — block geometries on and just off the §4.2
      launch-time promotion test (x a power of two at/above/below the
      warp size, multi-dimensional vs flat), chosen with
      {!Darsie_compiler.Promotion.resolves_redundant} so roughly half the
      kernels promote their conditionally redundant instructions and
      half demote them;
    - [store_racer] — store/atomic-dense bodies whose writes invalidate
      load-sourced skip-table entries between leader and followers;
    - [divergent] — [tid]-conditioned [If] bodies wrapping marked
      instructions, so skips meet partial SIMD masks;
    - [barrier_heavy] — barriers between redundant chains, flushing the
      table mid-threadblock;
    - [mixed] — everything at once.

    The generator tracks an approximate {!Darsie_compiler.Marking.cls}
    for every produced value (the same meet rules the compiler pass
    uses) and biases operand choice toward long definitely/conditionally
    redundant chains — the instructions DARSIE will actually mark and
    skip — instead of drowning them in vector noise. *)

val generate : seed:int -> index:int -> string * Plan.t
(** [(style_name, plan)] for kernel [index] of campaign [seed] —
    deterministic in [(seed, index)] alone. *)

val styles : string list
(** All style names, for reporting. *)
