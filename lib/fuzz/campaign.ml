module Oracle = Darsie_check.Oracle
module Injector = Darsie_check.Injector
module Parallel = Darsie_harness.Parallel
module Json = Darsie_obs.Json
module M = Darsie_compiler.Marking

type config = {
  seed : int;
  count : int;
  jobs : int option;
  max_shrink : int;
  corpus_dir : string option;
  inject : bool;
  base_cfg : Darsie_timing.Config.t;
}

type failure_rec = {
  fr_index : int;
  fr_style : string;
  fr_kind : string;
  fr_detail : string;
  fr_replay : string;
  fr_items_before : int;
  fr_items_after : int;
  fr_evals : int;
  fr_case : Plan.case option;
  fr_file : string option;
}

type inject_rec = {
  ir_kind : string;
  ir_index : int option;
  ir_detected : bool;
  ir_site : Injector.site option;
  ir_insts : int;
  ir_file : string option;
}

type report = {
  r_seed : int;
  r_count : int;
  r_inject : bool;
  r_kernels : int;
  r_passed : int;
  r_styles : (string * int) list;
  r_promoted : int;
  r_warp_insts : int;
  r_forwards : int;
  r_skips : int;
  r_cycles : int;
  r_failures : failure_rec list;
  r_injects : inject_rec list;
}

let replay_command ~seed ~index =
  Printf.sprintf "darsie fuzz --seed %d --replay %d:%d" seed seed index

let promoted_of (plan : Plan.t) =
  let x, y, z = plan.Plan.block in
  Darsie_compiler.Promotion.resolves_redundant M.Cond_redundant
    ~block:(Darsie_isa.Kernel.dim3 x ~y ~z)
    ~warp_size:32

let sites_of kind (c : Injector.candidates) =
  match kind with
  | Injector.Flip_skip_entry -> c.Injector.flip_sites
  | Injector.Poison_hre -> c.Injector.poison_sites
  | Injector.Skip_non_redundant -> c.Injector.skip_sites

(* Per-kernel worker result; merged in input order so every downstream
   artifact is independent of scheduling. *)
type outcome = {
  o_style : string;
  o_promoted : bool;
  o_clean : bool;
  o_forwards : int;
  o_warp_insts : int;
  o_cycles : int;
  o_skips : int;
  o_flags : bool * bool * bool;  (* applicable flip/poison/skip sites *)
  o_fail : (string * string * Plan.t * int * int) option;
      (* kind, detail, shrunk plan, evals, items before *)
}

let no_outcome style promoted =
  {
    o_style = style;
    o_promoted = promoted;
    o_clean = false;
    o_forwards = 0;
    o_warp_insts = 0;
    o_cycles = 0;
    o_skips = 0;
    o_flags = (false, false, false);
    o_fail = None;
  }

let clean_worker cfg index =
  let style, plan = Gen.generate ~seed:cfg.seed ~index in
  let promoted = promoted_of plan in
  let items_before = Plan.size plan in
  match Plan.build plan with
  | Error msg ->
      let predicate p =
        match Plan.build p with Error _ -> true | Ok _ -> false
      in
      let shrunk, evals =
        Shrink.shrink ~predicate ~max_evals:cfg.max_shrink plan
      in
      {
        (no_outcome style promoted) with
        o_fail = Some ("build", msg, shrunk, evals, items_before);
      }
  | Ok case -> (
      let v = Differential.check_case ~base_cfg:cfg.base_cfg case in
      let base =
        {
          (no_outcome style promoted) with
          o_forwards = v.Differential.v_forwards;
          o_warp_insts = v.Differential.v_warp_insts;
          o_cycles = v.Differential.v_cycles;
          o_skips = v.Differential.v_skips;
        }
      in
      match v.Differential.v_failure with
      | None -> { base with o_clean = true }
      | Some f ->
          let predicate p =
            match Plan.build p with
            | Error _ -> f.Differential.f_kind = "build"
            | Ok c -> (
                match
                  (Differential.check_case ~base_cfg:cfg.base_cfg c)
                    .Differential.v_failure
                with
                | Some f' -> f'.Differential.f_kind = f.Differential.f_kind
                | None -> false)
          in
          let shrunk, evals =
            Shrink.shrink ~predicate ~max_evals:cfg.max_shrink plan
          in
          {
            base with
            o_fail =
              Some
                ( f.Differential.f_kind,
                  f.Differential.f_detail,
                  shrunk,
                  evals,
                  items_before );
          })

let inject_worker cfg index =
  let style, plan = Gen.generate ~seed:cfg.seed ~index in
  let promoted = promoted_of plan in
  match Plan.build plan with
  | Error _ -> no_outcome style promoted
  | Ok case -> (
      let subj = Plan.subject case in
      match Oracle.check_subject subj with
      | rep when Oracle.passed rep ->
          let c = Oracle.candidates_subject subj in
          {
            (no_outcome style promoted) with
            o_clean = true;
            o_forwards = rep.Oracle.forwards;
            o_warp_insts = rep.Oracle.warp_insts;
            o_flags =
              ( c.Injector.flip_sites <> [],
                c.Injector.poison_sites <> [],
                c.Injector.skip_sites <> [] );
          }
      | _ -> no_outcome style promoted
      | exception _ -> no_outcome style promoted)

(* Fault-injection witness for one kind: first kernel (by index) with an
   applicable site, detection check, then shrinking under "still has a
   site of this kind whose injection the stack detects". *)
let witness cfg outcomes kind =
  let kind_name = Injector.kind_name kind in
  let flag (f, p, s) =
    match kind with
    | Injector.Flip_skip_entry -> f
    | Injector.Poison_hre -> p
    | Injector.Skip_non_redundant -> s
  in
  let first =
    List.find_index
      (fun o -> o.o_clean && flag o.o_flags)
      outcomes
  in
  match first with
  | None ->
      {
        ir_kind = kind_name;
        ir_index = None;
        ir_detected = false;
        ir_site = None;
        ir_insts = 0;
        ir_file = None;
      }
  | Some index ->
      let _, plan = Gen.generate ~seed:cfg.seed ~index in
      let detect p =
        match Plan.build p with
        | Error _ -> false
        | Ok case -> (
            let subj = Plan.subject case in
            match Oracle.check_subject subj with
            | rep when not (Oracle.passed rep) -> false
            | _ -> (
                match sites_of kind (Oracle.candidates_subject subj) with
                | [] -> false
                | site :: _ ->
                    not
                      (Oracle.passed
                         (Oracle.check_fault_subject subj { Injector.kind; site })))
            | exception _ -> false)
      in
      if not (detect plan) then
        (* The site was applicable but injection went undetected: the
           fuzzer found a real oracle gap. Report it unshrunk. *)
        {
          ir_kind = kind_name;
          ir_index = Some index;
          ir_detected = false;
          ir_site = None;
          ir_insts = 0;
          ir_file = None;
        }
      else
        let shrunk, _evals =
          Shrink.shrink ~predicate:detect ~max_evals:cfg.max_shrink plan
        in
        let case =
          match Plan.build shrunk with
          | Ok c -> c
          | Error _ -> assert false (* detect held on [shrunk] *)
        in
        let site =
          List.nth_opt (sites_of kind (Oracle.candidates_subject (Plan.subject case))) 0
        in
        let file =
          match cfg.corpus_dir with
          | None -> None
          | Some dir ->
              Some
                (Corpus.write ~dir
                   ~filename:(Printf.sprintf "injected_%s.fuzz" kind_name)
                   {
                     Corpus.e_case = case;
                     e_kind = Some kind;
                     e_site = site;
                     e_failure = "";
                     e_replay =
                       Printf.sprintf "darsie fuzz --seed %d --count %d --inject"
                         cfg.seed cfg.count;
                   })
        in
        {
          ir_kind = kind_name;
          ir_index = Some index;
          ir_detected = true;
          ir_site = site;
          ir_insts = Plan.instruction_count case;
          ir_file = file;
        }

let run cfg =
  let indices = List.init cfg.count Fun.id in
  let worker = if cfg.inject then inject_worker cfg else clean_worker cfg in
  let outcomes =
    Parallel.run ?jobs:cfg.jobs
      ~label:(Printf.sprintf "kernel %d")
      (fun i ->
        try worker i
        with e ->
          let style, plan = Gen.generate ~seed:cfg.seed ~index:i in
          {
            (no_outcome style (promoted_of plan)) with
            o_fail =
              Some ("crash", Printexc.to_string e, plan, 0, Plan.size plan);
          })
      indices
    |> List.map (function
         | Ok o -> o
         | Error e ->
             {
               (no_outcome "unknown" false) with
               o_fail = Some ("crash", Printexc.to_string e, Gen.(snd (generate ~seed:cfg.seed ~index:0)), 0, 0);
             })
  in
  let styles =
    List.sort_uniq compare (List.map (fun o -> o.o_style) outcomes)
    |> List.map (fun s ->
           (s, List.length (List.filter (fun o -> o.o_style = s) outcomes)))
  in
  let failures =
    List.concat
      (List.mapi
         (fun i o ->
           match o.o_fail with
           | None -> []
           | Some (kind, detail, shrunk, evals, items_before) ->
               let case =
                 match Plan.build shrunk with Ok c -> Some c | Error _ -> None
               in
               let file =
                 match (cfg.corpus_dir, case) with
                 | Some dir, Some case ->
                     Some
                       (Corpus.write ~dir
                          ~filename:
                            (Printf.sprintf "s%d_i%d_%s.fuzz" cfg.seed i kind)
                          {
                            Corpus.e_case = case;
                            e_kind = None;
                            e_site = None;
                            e_failure = kind;
                            e_replay = replay_command ~seed:cfg.seed ~index:i;
                          })
                 | _ -> None
               in
               [
                 {
                   fr_index = i;
                   fr_style = o.o_style;
                   fr_kind = kind;
                   fr_detail = detail;
                   fr_replay = replay_command ~seed:cfg.seed ~index:i;
                   fr_items_before = items_before;
                   fr_items_after = Plan.size shrunk;
                   fr_evals = evals;
                   fr_case = case;
                   fr_file = file;
                 };
               ])
         outcomes)
  in
  let injects =
    if cfg.inject then List.map (witness cfg outcomes) Injector.all_kinds
    else []
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  {
    r_seed = cfg.seed;
    r_count = cfg.count;
    r_inject = cfg.inject;
    r_kernels = List.length outcomes;
    r_passed = List.length (List.filter (fun o -> o.o_clean) outcomes);
    r_styles = styles;
    r_promoted = List.length (List.filter (fun o -> o.o_promoted) outcomes);
    r_warp_insts = sum (fun o -> o.o_warp_insts);
    r_forwards = sum (fun o -> o.o_forwards);
    r_skips = sum (fun o -> o.o_skips);
    r_cycles = sum (fun o -> o.o_cycles);
    r_failures = failures;
    r_injects = injects;
  }

let passed r =
  if r.r_inject then
    r.r_injects <> []
    && List.for_all
         (fun ir -> ir.ir_index <> None && ir.ir_detected)
         r.r_injects
  else r.r_failures = []

let exit_code r =
  if passed r then 0
  else
    match r.r_failures with
    | f :: _ ->
        Differential.exit_code
          { Differential.f_kind = f.fr_kind; f_detail = f.fr_detail }
    | [] -> 2

let render r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "fuzz campaign: seed %d, %d kernels%s" r.r_seed r.r_count
    (if r.r_inject then ", fault-injection mode" else "");
  line "stack: oracle + fast-forward bit-identity + attribution/ledger invariants";
  line "styles: %s"
    (String.concat ", "
       (List.map (fun (s, n) -> Printf.sprintf "%s %d" s n) r.r_styles));
  line "geometry: %d/%d blocks promote CR->DR (x-dim condition)" r.r_promoted
    r.r_kernels;
  line "dynamic: %d warp insts, %d forwards, %d skips, %d cycles" r.r_warp_insts
    r.r_forwards r.r_skips r.r_cycles;
  List.iter
    (fun f ->
      line "FAIL kernel %d (%s): %s: %s" f.fr_index f.fr_style f.fr_kind
        f.fr_detail;
      line "  replay: %s" f.fr_replay;
      line "  shrunk: %d -> %d items (%d evals)%s" f.fr_items_before
        f.fr_items_after f.fr_evals
        (match f.fr_file with
        | Some p -> Printf.sprintf ", corpus: %s" p
        | None -> ""))
    r.r_failures;
  List.iter
    (fun ir ->
      match ir.ir_index with
      | None ->
          line "inject %s: NO applicable site in %d kernels" ir.ir_kind
            r.r_kernels
      | Some i ->
          if ir.ir_detected then
            line "inject %s: kernel %d, detected, shrunk witness %d insts%s"
              ir.ir_kind i ir.ir_insts
              (match ir.ir_file with
              | Some p -> Printf.sprintf ", corpus: %s" p
              | None -> "")
          else line "inject %s: kernel %d, NOT DETECTED" ir.ir_kind i)
    r.r_injects;
  if r.r_inject then
    line "result: %s"
      (if passed r then "PASS (all fault kinds witnessed and detected)"
       else "FAIL")
  else
    line "result: %s %d/%d"
      (if passed r then "PASS" else "FAIL")
      r.r_passed r.r_kernels;
  Buffer.contents b

let site_json (s : Injector.site) =
  Json.Obj
    [
      ("tb", Json.Int s.Injector.s_tb);
      ("warp", Json.Int s.Injector.s_warp);
      ("inst", Json.Int s.Injector.s_inst);
      ("occ", Json.Int s.Injector.s_occ);
    ]

let to_json r =
  let opt_str = function None -> Json.Null | Some s -> Json.String s in
  Json.Obj
    [
      ("kind", Json.String "fuzz_campaign");
      ("schema_version", Json.Int Darsie_harness.Metrics.fuzz_schema_version);
      ("seed", Json.Int r.r_seed);
      ("count", Json.Int r.r_count);
      ("inject", Json.Bool r.r_inject);
      ("kernels", Json.Int r.r_kernels);
      ("passed", Json.Int r.r_passed);
      ("promoted", Json.Int r.r_promoted);
      ( "styles",
        Json.Obj (List.map (fun (s, n) -> (s, Json.Int n)) r.r_styles) );
      ( "totals",
        Json.Obj
          [
            ("warp_insts", Json.Int r.r_warp_insts);
            ("forwards", Json.Int r.r_forwards);
            ("skips", Json.Int r.r_skips);
            ("cycles", Json.Int r.r_cycles);
          ] );
      ( "failures",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("index", Json.Int f.fr_index);
                   ("style", Json.String f.fr_style);
                   ("failure", Json.String f.fr_kind);
                   ("detail", Json.String f.fr_detail);
                   ("replay", Json.String f.fr_replay);
                   ("items_before", Json.Int f.fr_items_before);
                   ("items_after", Json.Int f.fr_items_after);
                   ("shrink_evals", Json.Int f.fr_evals);
                   ("corpus_file", opt_str f.fr_file);
                 ])
             r.r_failures) );
      ( "injected",
        Json.List
          (List.map
             (fun ir ->
               Json.Obj
                 [
                   ("fault", Json.String ir.ir_kind);
                   ( "index",
                     match ir.ir_index with
                     | None -> Json.Null
                     | Some i -> Json.Int i );
                   ("detected", Json.Bool ir.ir_detected);
                   ( "site",
                     match ir.ir_site with
                     | None -> Json.Null
                     | Some s -> site_json s );
                   ("instructions", Json.Int ir.ir_insts);
                   ("corpus_file", opt_str ir.ir_file);
                 ])
             r.r_injects) );
    ]

(* ---- replay ---------------------------------------------------------- *)

let render_case (c : Plan.case) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let gx, gy = c.Plan.c_grid and bx, by, bz = c.Plan.c_block in
  line "grid (%d,%d), block (%d,%d,%d)" gx gy bx by bz;
  List.iteri
    (fun i (l, f) -> line "buffer %d: %d words, fill seed %d" i (1 lsl l) f)
    c.Plan.c_buffers;
  List.iteri (fun i s -> line "scalar %d: %d" i s) c.Plan.c_scalars;
  Buffer.add_string b (Darsie_isa.Printer.kernel_to_string c.Plan.kernel);
  Buffer.contents b

let replay ?base_cfg ~seed ~index () =
  let style, plan = Gen.generate ~seed ~index in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "replay: seed %d, kernel %d, style %s" seed index style;
  match Plan.build plan with
  | Error msg ->
      line "FAIL build: %s" msg;
      (Buffer.contents b, 2)
  | Ok case -> (
      Buffer.add_string b (render_case case);
      let analysis = Darsie_compiler.Analysis.analyze case.Plan.kernel in
      Buffer.add_string b
        (Format.asprintf "%a" Darsie_compiler.Analysis.pp_markings analysis);
      let v = Differential.check_case ?base_cfg case in
      match v.Differential.v_failure with
      | None ->
          line "PASS: %d warp insts, %d forwards, %d skips, %d cycles"
            v.Differential.v_warp_insts v.Differential.v_forwards
            v.Differential.v_skips v.Differential.v_cycles;
          (Buffer.contents b, 0)
      | Some f ->
          line "FAIL %s: %s" f.Differential.f_kind f.Differential.f_detail;
          line "replay: %s" (replay_command ~seed ~index);
          (Buffer.contents b, Differential.exit_code f))

let replay_corpus ?base_cfg ~dir () =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let worst = ref 0 in
  let bump code = if !worst = 0 then worst := code in
  let entries = Corpus.load_dir dir in
  if entries = [] then line "corpus %s: no .fuzz files" dir
  else
    List.iter
      (fun (fname, res) ->
        match res with
        | Error msg ->
            line "%s: PARSE ERROR: %s" fname msg;
            bump 2
        | Ok e -> (
            match e.Corpus.e_kind with
            | None -> (
                let v = Differential.check_case ?base_cfg e.Corpus.e_case in
                match v.Differential.v_failure with
                | None -> line "%s: clean, full stack passes" fname
                | Some f ->
                    line "%s: FAIL %s: %s" fname f.Differential.f_kind
                      f.Differential.f_detail;
                    bump (Differential.exit_code f))
            | Some kind -> (
                let subj = Plan.subject e.Corpus.e_case in
                match Oracle.check_subject subj with
                | rep when not (Oracle.passed rep) ->
                    line "%s: FAIL: kernel no longer passes the clean oracle"
                      fname;
                    bump 7
                | _ -> (
                    let sites = sites_of kind (Oracle.candidates_subject subj) in
                    let site =
                      match e.Corpus.e_site with
                      | Some s when List.mem s sites -> Some s
                      | _ -> List.nth_opt sites 0
                    in
                    match site with
                    | None ->
                        line "%s: FAIL: no applicable %s site" fname
                          (Injector.kind_name kind);
                        bump 2
                    | Some site ->
                        if
                          Oracle.passed
                            (Oracle.check_fault_subject subj
                               { Injector.kind; site })
                        then begin
                          line "%s: FAIL: injected %s went undetected" fname
                            (Injector.kind_name kind);
                          bump 2
                        end
                        else
                          line "%s: injected %s detected" fname
                            (Injector.kind_name kind)))))
      entries;
  line "corpus result: %s" (if !worst = 0 then "PASS" else "FAIL");
  (Buffer.contents b, !worst)
