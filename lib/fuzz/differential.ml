module Oracle = Darsie_check.Oracle
module Sim_error = Darsie_check.Sim_error
module Gpu = Darsie_timing.Gpu
module Config = Darsie_timing.Config
module Kinfo = Darsie_timing.Kinfo
module Json = Darsie_obs.Json

type failure = { f_kind : string; f_detail : string }

type verdict = {
  v_failure : failure option;
  v_forwards : int;
  v_warp_insts : int;
  v_cycles : int;
  v_skips : int;
}

let fail kind detail = { f_kind = kind; f_detail = detail }

let failed ?(forwards = 0) ?(warp_insts = 0) f =
  {
    v_failure = Some f;
    v_forwards = forwards;
    v_warp_insts = warp_insts;
    v_cycles = 0;
    v_skips = 0;
  }

(* Cap the simulation: generated kernels are tiny, so a run that needs
   millions of cycles is itself a bug worth reporting. *)
let cfg ~base ~fast_forward =
  { base with Config.fast_forward; Config.max_cycles = 5_000_000 }

let ledger_string l = Json.to_string (Darsie_obs.Ledger.to_json l)

let assoc_string kvs =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs)

(* First bit-level difference between the fast-forward-on and -off runs,
   or None when they agree everywhere we can observe. *)
let ff_diff (on : Gpu.result) (off : Gpu.result) =
  if on.Gpu.cycles <> off.Gpu.cycles then
    Some
      (Printf.sprintf "cycles: ff-on %d vs ff-off %d" on.Gpu.cycles
         off.Gpu.cycles)
  else if on.Gpu.stats <> off.Gpu.stats then Some "aggregate stats differ"
  else if on.Gpu.per_sm <> off.Gpu.per_sm then Some "per-SM stats differ"
  else if
    Darsie_obs.Attrib.to_assoc on.Gpu.attribution
    <> Darsie_obs.Attrib.to_assoc off.Gpu.attribution
  then
    Some
      (Printf.sprintf "attribution: ff-on {%s} vs ff-off {%s}"
         (assoc_string (Darsie_obs.Attrib.to_assoc on.Gpu.attribution))
         (assoc_string (Darsie_obs.Attrib.to_assoc off.Gpu.attribution)))
  else if
    Array.map Darsie_obs.Attrib.to_assoc on.Gpu.per_sm_attribution
    <> Array.map Darsie_obs.Attrib.to_assoc off.Gpu.per_sm_attribution
  then Some "per-SM attribution differs"
  else if on.Gpu.skip_telemetry <> off.Gpu.skip_telemetry then
    Some "skip telemetry differs"
  else if ledger_string on.Gpu.ledger <> ledger_string off.Gpu.ledger then
    Some
      (Printf.sprintf "ledger: ff-on %s vs ff-off %s"
         (ledger_string on.Gpu.ledger)
         (ledger_string off.Gpu.ledger))
  else if
    Array.map ledger_string on.Gpu.per_sm_ledger
    <> Array.map ledger_string off.Gpu.per_sm_ledger
  then Some "per-SM ledger differs"
  else None

let oracle_detail (rep : Oracle.report) =
  let shown = ref [] in
  List.iteri
    (fun i m -> if i < 3 then shown := Oracle.mismatch_line m :: !shown)
    rep.Oracle.mismatches;
  String.concat "; " (List.rev !shown)

let check_case ?(base_cfg = Config.default) (case : Plan.case) : verdict =
  match Oracle.check_subject (Plan.subject case) with
  | exception e -> failed (fail "crash" ("oracle stage: " ^ Printexc.to_string e))
  | rep when not (Oracle.passed rep) ->
      failed ~forwards:rep.Oracle.forwards ~warp_insts:rep.Oracle.warp_insts
        (fail "oracle" (oracle_detail rep))
  | rep -> (
      let forwards = rep.Oracle.forwards in
      let warp_insts = rep.Oracle.warp_insts in
      match
        let prep = Plan.prepared case in
        let kinfo =
          Kinfo.make ~warp_size:Config.default.Config.warp_size
            prep.Darsie_workloads.Workload.launch
        in
        let trace =
          Darsie_trace.Record.generate prep.Darsie_workloads.Workload.mem
            prep.Darsie_workloads.Workload.launch
        in
        let run ff =
          Gpu.run ~cfg:(cfg ~base:base_cfg ~fast_forward:ff)
            (Darsie_core.Darsie_engine.factory ())
            kinfo trace
        in
        (run true, run false)
      with
      | exception e ->
          failed ~forwards ~warp_insts
            (fail "crash" ("timing stage: " ^ Printexc.to_string e))
      | Error e, _ | _, Error e ->
          failed ~forwards ~warp_insts (fail "timing" (Sim_error.summary e))
      | Ok on, Ok off -> (
          let failure =
            match ff_diff on off with
            | Some d -> Some (fail "ff_divergence" d)
            | None -> (
                let inv name check r =
                  match check r with
                  | Ok () -> None
                  | Error msg -> Some (fail name msg)
                in
                match
                  List.find_map
                    (fun f -> f ())
                    [
                      (fun () -> inv "attribution" Gpu.check_attribution on);
                      (fun () -> inv "attribution" Gpu.check_attribution off);
                      (fun () -> inv "ledger" Gpu.check_ledger on);
                      (fun () -> inv "ledger" Gpu.check_ledger off);
                    ]
                with
                | Some f -> Some f
                | None -> None)
          in
          match failure with
          | Some f -> failed ~forwards ~warp_insts f
          | None ->
              {
                v_failure = None;
                v_forwards = forwards;
                v_warp_insts = warp_insts;
                v_cycles = on.Gpu.cycles;
                v_skips = on.Gpu.stats.Darsie_timing.Stats.skipped_prefetch;
              }))

let exit_code f = if f.f_kind = "oracle" then 7 else 2
