open Darsie_isa
module M = Darsie_compiler.Marking
module P = Plan

type style =
  | Promotion_boundary
  | Store_racer
  | Divergent
  | Barrier_heavy
  | Mixed

let style_name = function
  | Promotion_boundary -> "promotion_boundary"
  | Store_racer -> "store_racer"
  | Divergent -> "divergent"
  | Barrier_heavy -> "barrier_heavy"
  | Mixed -> "mixed"

let all_styles =
  [ Promotion_boundary; Store_racer; Divergent; Barrier_heavy; Mixed ]

let styles = List.map style_name all_styles

type ctx = {
  rng : Sprng.t;
  style : style;
  nbufs : int;
  nscalars : int;
  has_shared : bool;
  mutable next_id : int;
  mutable left : int;  (* item budget, nested items included *)
  mutable classes : (int * M.cls) list;  (* item id -> approximate class *)
}

let fresh_id ctx =
  let id = ctx.next_id in
  ctx.next_id <- id + 1;
  id

let dr_uniform = { M.red = M.Def_redundant; shape = M.Uniform }

let cls_of_sreg = function
  | Instr.Tid Instr.X -> { M.red = M.Cond_redundant; shape = M.Affine }
  | Instr.Tid _ -> M.bottom
  | Instr.Ntid _ | Instr.Ctaid _ | Instr.Nctaid _ -> dr_uniform

let cls_of_src ctx = function
  | P.SItem id ->
      Option.value ~default:M.bottom (List.assoc_opt id ctx.classes)
  | P.SImm _ | P.SParam _ -> dr_uniform
  | P.SSreg s -> cls_of_sreg s

let is_redundant (c : M.cls) =
  match c.M.red with
  | M.Def_redundant | M.Cond_redundant -> true
  | M.Cond_redundant_xy | M.Vector -> false

(* Leaf sources: values with known lattice seeds. *)
let leaf_red ctx =
  let rng = ctx.rng in
  match
    Sprng.weighted rng
      [
        (3, `Small);
        (2, `Wide);
        ((if ctx.nscalars > 0 then 3 else 0), `Param);
        (3, `Sreg);
      ]
  with
  | `Small -> P.SImm (Sprng.int rng 64)
  | `Wide -> P.SImm (Sprng.bits32 rng)
  | `Param -> P.SParam (Sprng.int rng ctx.nscalars)
  | `Sreg ->
      P.SSreg
        (Sprng.choose rng
           [
             Instr.Ntid Instr.X;
             Instr.Ntid Instr.Y;
             Instr.Ctaid Instr.X;
             Instr.Ctaid Instr.Y;
             Instr.Nctaid Instr.X;
             Instr.Nctaid Instr.Y;
           ])

let leaf_vec ctx =
  P.SSreg
    (Sprng.weighted ctx.rng
       [
         (6, Instr.Tid Instr.X);
         (2, Instr.Tid Instr.Y);
         (1, Instr.Tid Instr.Z);
       ])

let items_where ctx p =
  List.filter_map
    (fun (id, c) -> if p c then Some (P.SItem id) else None)
    ctx.classes

(* Operand choice, biased by the wanted lattice class so redundant chains
   grow long instead of collapsing to vector noise at the first operand. *)
let pick_src ctx want =
  let rng = ctx.rng in
  match want with
  | `Red ->
      let pool = items_where ctx is_redundant in
      if pool <> [] && Sprng.chance rng 65 then Sprng.choose rng pool
      else leaf_red ctx
  | `Vec ->
      let pool = items_where ctx (fun c -> c.M.red = M.Vector) in
      if pool <> [] && Sprng.chance rng 55 then Sprng.choose rng pool
      else leaf_vec ctx
  | `Any ->
      if ctx.classes <> [] && Sprng.chance rng 55 then
        Sprng.choose rng (List.map (fun (id, _) -> P.SItem id) ctx.classes)
      else if Sprng.bool rng then leaf_red ctx
      else leaf_vec ctx

let gen_binop rng =
  Sprng.weighted rng
    [
      (8, Instr.Add); (6, Instr.Sub); (5, Instr.Mul); (5, Instr.And);
      (5, Instr.Or); (5, Instr.Xor); (4, Instr.Shl); (4, Instr.Shr_u);
      (2, Instr.Shr_s); (2, Instr.Min_s); (2, Instr.Max_u); (2, Instr.Mulhi);
      (1, Instr.Div_u); (1, Instr.Rem_u); (2, Instr.Fadd); (2, Instr.Fmul);
      (1, Instr.Fsub); (1, Instr.Fmin);
    ]

let gen_unop rng =
  Sprng.weighted rng
    [
      (6, Instr.Mov); (3, Instr.Not); (3, Instr.Neg); (2, Instr.Abs_s);
      (2, Instr.Cvt_i2f); (2, Instr.Cvt_u2f); (1, Instr.Cvt_f2i);
      (1, Instr.Fneg); (1, Instr.Fabs); (1, Instr.Fsqrt); (1, Instr.Frcp);
    ]

let gen_cond ctx ~divergent =
  let rng = ctx.rng in
  let ckind =
    if Sprng.chance rng 10 then Instr.Fcmp
    else if Sprng.bool rng then Instr.Scmp
    else Instr.Ucmp
  in
  let ccmp =
    Sprng.choose rng
      [ Instr.Lt; Instr.Le; Instr.Gt; Instr.Ge; Instr.Eq; Instr.Ne ]
  in
  let ca = if divergent then pick_src ctx `Vec else pick_src ctx `Red in
  let cb =
    if Sprng.chance rng 70 then P.SImm (Sprng.int ctx.rng 48)
    else pick_src ctx `Red
  in
  { P.ckind; ccmp; ca; cb }

let cond_cls ctx c = M.meet (cls_of_src ctx c.P.ca) (cls_of_src ctx c.P.cb)

let gen_target ctx =
  if ctx.has_shared && Sprng.chance ctx.rng 30 then P.Shm
  else P.Gbuf (Sprng.int ctx.rng ctx.nbufs)

let gen_idx ctx =
  pick_src ctx (Sprng.weighted ctx.rng [ (5, `Vec); (3, `Red); (2, `Any) ])

let item_weights ctx depth =
  let base =
    [
      (30, `Arith); (6, `Select); (14, `Load); (7, `Store); (3, `Atomic);
      ((if depth = 0 then 5 else 0), `Bar);
      ((if depth < 2 then 7 else 0), `If);
      ((if depth < 2 then 6 else 0), `Loop);
    ]
  in
  let boost k extra =
    List.map (fun (w, k') -> if k = k' then (w + extra, k') else (w, k')) base
  in
  match ctx.style with
  | Promotion_boundary -> boost `Arith 14
  | Store_racer ->
      List.fold_left
        (fun acc (k, e) ->
          List.map (fun (w, k') -> if k = k' then (w + e, k') else (w, k')) acc)
        base
        [ (`Store, 11); (`Atomic, 6); (`Load, 8) ]
  | Divergent -> boost `If 9 |> List.map (fun (w, k) -> if k = `Select then (w + 5, k) else (w, k))
  | Barrier_heavy -> if depth = 0 then boost `Bar 11 else base
  | Mixed -> base

let rec gen_item ctx depth : P.item option =
  if ctx.left <= 0 then None
  else begin
    ctx.left <- ctx.left - 1;
    let rng = ctx.rng in
    match Sprng.weighted rng (item_weights ctx depth) with
    | `Arith ->
        let redundant_chain =
          Sprng.chance rng
            (match ctx.style with Promotion_boundary -> 70 | _ -> 50)
        in
        let want = if redundant_chain then `Red else `Any in
        let id = fresh_id ctx in
        let op, srcs =
          match Sprng.weighted rng [ (6, `B); (3, `U); (1, `T) ] with
          | `B ->
              let a = pick_src ctx want and b = pick_src ctx want in
              (P.Bop (gen_binop rng), [ a; b; P.SImm 0 ])
          | `U ->
              let a = pick_src ctx want in
              (P.Uop (gen_unop rng), [ a; P.SImm 0; P.SImm 0 ])
          | `T ->
              let a = pick_src ctx want
              and b = pick_src ctx want
              and c = pick_src ctx want in
              ( P.Top (Sprng.choose rng [ Instr.Mad; Instr.Fma ]),
                [ a; b; c ] )
        in
        let used =
          match (op, srcs) with
          | P.Uop _, a :: _ -> [ a ]
          | P.Bop _, a :: b :: _ -> [ a; b ]
          | _, l -> l
        in
        let cls =
          List.fold_left
            (fun acc s -> M.meet acc (cls_of_src ctx s))
            M.top used
        in
        ctx.classes <- (id, cls) :: ctx.classes;
        let a, b, c =
          match srcs with [ a; b; c ] -> (a, b, c) | _ -> assert false
        in
        Some (P.Arith { id; op; a; b; c })
    | `Select ->
        let cond = gen_cond ctx ~divergent:(Sprng.chance rng 60) in
        let a = pick_src ctx `Any and b = pick_src ctx `Any in
        let id = fresh_id ctx in
        let cls =
          M.meet (cond_cls ctx cond)
            (M.meet (cls_of_src ctx a) (cls_of_src ctx b))
        in
        ctx.classes <- (id, cls) :: ctx.classes;
        Some (P.Select { id; cond; a; b })
    | `Load ->
        let tgt = gen_target ctx in
        let idx = gen_idx ctx in
        let id = fresh_id ctx in
        let cls =
          {
            M.red = (cls_of_src ctx idx).M.red;
            shape = M.meet_shape M.Unstructured (cls_of_src ctx idx).M.shape;
          }
        in
        ctx.classes <- (id, cls) :: ctx.classes;
        Some (P.Load { id; tgt; idx })
    | `Store ->
        Some (P.Store { tgt = gen_target ctx; idx = gen_idx ctx;
                        v = pick_src ctx `Any })
    | `Atomic ->
        let id = fresh_id ctx in
        ctx.classes <- (id, M.bottom) :: ctx.classes;
        Some
          (P.Atomic
             {
               id;
               aop =
                 Sprng.weighted rng
                   [
                     (4, Instr.Atom_add); (2, Instr.Atom_max);
                     (2, Instr.Atom_min); (1, Instr.Atom_exch);
                     (1, Instr.Atom_cas);
                   ];
               buf = Sprng.int rng ctx.nbufs;
               idx = gen_idx ctx;
               v = pick_src ctx `Any;
             })
    | `Bar -> Some P.Barrier
    | `If ->
        let cond = gen_cond ctx ~divergent:(Sprng.chance rng 70) in
        let before = ctx.next_id in
        let body = gen_items ctx (depth + 1) (Sprng.in_range rng 1 4) in
        (* values defined under the branch are control-dependent on it *)
        let ccls = cond_cls ctx cond in
        ctx.classes <-
          List.map
            (fun (id, c) -> if id >= before then (id, M.meet c ccls) else (id, c))
            ctx.classes;
        Some (P.If { cond; body })
    | `Loop ->
        let id = fresh_id ctx in
        ctx.classes <- (id, dr_uniform) :: ctx.classes;
        let trip = Sprng.in_range rng 2 5 in
        let body = gen_items ctx depth (Sprng.in_range rng 1 4) in
        Some (P.Loop { id; trip; body })
  end

and gen_items ctx depth n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match gen_item ctx depth with
      | None -> List.rev acc
      | Some it -> go (it :: acc) (k - 1)
  in
  go [] n

(* Block geometries on both sides of the §4.2 x-dimension promotion
   test; every entry is sanity-checked against the lattice query at
   module load. *)
let promoted_blocks =
  [ (32, 2, 1); (16, 4, 1); (8, 8, 1); (4, 2, 2); (32, 4, 1); (2, 16, 1);
    (16, 2, 2); (1, 32, 1) ]

let demoted_blocks =
  [ (33, 2, 1); (31, 2, 1); (48, 2, 1); (3, 5, 1); (64, 2, 1); (33, 1, 1);
    (40, 2, 1) ]

let flat_blocks = [ (32, 1, 1); (64, 1, 1); (128, 1, 1); (37, 1, 1); (256, 1, 1) ]

let () =
  let check expect (x, y, z) =
    let block = Kernel.dim3 x ~y ~z in
    assert (
      Darsie_compiler.Promotion.resolves_redundant M.Cond_redundant ~block
        ~warp_size:32
      = expect)
  in
  List.iter (check true) promoted_blocks;
  List.iter (check false) demoted_blocks;
  List.iter (check false) flat_blocks

let gen_geometry rng style =
  let block =
    match style with
    | Promotion_boundary ->
        if Sprng.bool rng then Sprng.choose rng promoted_blocks
        else Sprng.choose rng demoted_blocks
    | _ ->
        Sprng.weighted rng
          [
            (5, `P); (3, `D); (2, `F);
          ]
        |> (function
             | `P -> Sprng.choose rng promoted_blocks
             | `D -> Sprng.choose rng demoted_blocks
             | `F -> Sprng.choose rng flat_blocks)
  in
  let grid =
    Sprng.weighted rng
      [ (5, (1, 1)); (3, (2, 1)); (2, (2, 2)); (1, (3, 1)); (1, (4, 1)) ]
  in
  (grid, block)

let generate ~seed ~index =
  let rng = Sprng.for_index ~seed ~index in
  let style = List.nth all_styles (abs index mod List.length all_styles) in
  let nbufs = Sprng.in_range rng 1 3 in
  let buffers =
    List.init nbufs (fun _ ->
        (Sprng.in_range rng 3 7, Sprng.int rng 1_000_000))
  in
  let nscalars = Sprng.in_range rng 0 3 in
  let scalars = List.init nscalars (fun _ -> Sprng.bits32 rng) in
  let has_shared = Sprng.chance rng 40 in
  let shared_log2 = if has_shared then Some (Sprng.in_range rng 4 6) else None in
  let grid, block = gen_geometry rng style in
  let budget =
    match style with
    | Promotion_boundary -> Sprng.in_range rng 8 22
    | _ -> Sprng.in_range rng 6 24
  in
  let ctx =
    {
      rng;
      style;
      nbufs;
      nscalars;
      has_shared;
      next_id = 0;
      left = budget;
      classes = [];
    }
  in
  let body = gen_items ctx 0 budget in
  let body =
    if body = [] then
      [
        P.Arith
          {
            id = fresh_id ctx;
            op = P.Bop Instr.Add;
            a = P.SSreg (Instr.Tid Instr.X);
            b = P.SImm 1;
            c = P.SImm 0;
          };
      ]
    else body
  in
  let name = Printf.sprintf "fuzz_s%d_i%d" (abs seed) (abs index) in
  ( style_name style,
    {
      P.name;
      grid;
      block;
      buffers;
      scalars;
      shared_log2;
      body;
    } )
