(** Precomputed static instruction information shared by the SM pipeline
    and the skip engines: functional-unit class, redundancy markings
    resolved against the launch, per-instruction shape, and structural
    flags. *)

type unit_class = Alu | Sfu | Mem_global | Mem_shared | Ctrl

type t = {
  kernel : Darsie_isa.Kernel.t;
  launch : Darsie_isa.Kernel.launch;
  analysis : Darsie_compiler.Analysis.t;
  promotion : Darsie_compiler.Promotion.t;
  unit_of : unit_class array;
  is_branch : bool array;
  is_barrier : bool array;
  is_load : bool array;
  mem_dep : bool array;
      (** load or transitively load-derived ({!Analysis.mem_dep}); what a
          store/atomic invalidates in the skip table *)
  is_store : bool array;
  is_atomic : bool array;
  src_regs : int list array;
  dst_reg : int option array;
  nsrcs : int array;  (** vector source operand count (RF read ports used) *)
  tb_redundant : bool array;  (** DARSIE-skippable after promotion *)
  dac_removable : bool array;
  uv_eligible : bool array;
  marked_eligible : bool array;
      (** statically DR or CR and structurally skippable {e before}
          launch-time promotion — the skip ledger's eligibility set *)
  shape : Darsie_compiler.Marking.shape array;
}

val make :
  ?tid_y_redundancy:bool -> warp_size:int -> Darsie_isa.Kernel.launch -> t
(** Runs the compiler pass and launch-time promotion. [tid_y_redundancy]
    enables the 3D-threadblock extension (tid.y conditional redundancy). *)

val of_promotion :
  Darsie_compiler.Promotion.t -> Darsie_isa.Kernel.launch -> t
(** Reuse an existing analysis/promotion (avoids re-analyzing). *)
