(** The instruction-elimination engine interface.

    The SM pipeline is a fixed machine; BASE, UV, DAC-IDEAL, DARSIE and the
    DARSIE ablations are all engines plugged into it — mirroring the
    paper's controlled comparison. An engine can:

    - remove instructions from the stream before they are fetched at zero
      cost ([remove_at_fetch], used by the idealized DAC);
    - skip instructions pre-fetch with its own per-cycle logic
      ([cycle_skip], used by DARSIE: advances warps' trace cursors and
      accounts for skip-table/renaming activity and synchronization);
    - hold a warp back from fetching ([can_fetch] = false, used by DARSIE
      for branch synchronization, follower LeaderWB waits and freelist
      pressure);
    - drop instructions at issue after fetch/decode ([on_issue] = [Drop],
      used by UV's reuse buffer);
    - observe writebacks, stores and TB lifecycle events. *)

(** Per-warp pipeline context, owned by the SM but visible to engines. *)
type wctx = {
  wid : int;  (** SM-local warp slot *)
  tb_slot : int;  (** SM-local threadblock slot *)
  tb_id : int;  (** global threadblock index *)
  warp_in_tb : int;
  trace : Darsie_trace.Record.op array;
  mutable fi : int;  (** next trace index to fetch *)
  ibuf : (Darsie_trace.Record.op * int) Queue.t;
      (** fetched (op, fetch_cycle) pairs awaiting issue *)
  pending : int array;  (** scoreboard: outstanding writes per vreg *)
  mutable pending_count : int;
  mutable at_barrier : bool;
  mutable finished : bool;
  mutable last_issued : int;  (** cycle of last issue, for GTO *)
  mutable fetch_ready_at : int;  (** earliest cycle the next fetch may
                                     complete (I-cache miss fill) *)
}

val warp_done : wctx -> bool
(** Trace exhausted and nothing left in flight for fetch purposes. *)

val next_op : wctx -> Darsie_trace.Record.op option

type issue_decision = Execute | Drop

type t = {
  name : string;
  cycle_skip : cycle:int -> unit;
      (** called once per SM cycle, before fetch *)
  can_fetch : wctx -> bool;
  remove_at_fetch : wctx -> Darsie_trace.Record.op -> bool;
  on_issue : cycle:int -> wctx -> Darsie_trace.Record.op -> issue_decision;
  on_writeback : cycle:int -> wctx -> Darsie_trace.Record.op -> unit;
  on_store : wctx -> unit;  (** a store or atomic issued by this warp's TB *)
  on_tb_launch : tb_slot:int -> warps:wctx array -> unit;
  on_tb_finish : tb_slot:int -> unit;
  debug_state : unit -> (string * int) list;
      (** engine-specific counters for failure diagnostics (e.g. DARSIE
          skip-table occupancy, free rename registers); cheap, called only
          when assembling an error dump *)
  pc_telemetry : unit -> (int * Darsie_obs.Pcstat.skip_entry) list;
      (** per-PC skip-table entry telemetry (DARSIE: allocations, follower
          hits, park cycles, flush causes, lifetimes), aggregated over the
          engine's whole lifetime; engines without a skip table return [[]] *)
}

val base : unit -> t
(** The do-nothing engine: the baseline GPU. *)

type factory = Kinfo.t -> Config.t -> Stats.t -> t
(** Engines are instantiated per SM with the kernel's static information,
    the configuration and the SM's stats block. *)

val base_factory : factory
