(** The instruction-elimination engine interface.

    The SM pipeline is a fixed machine; BASE, UV, DAC-IDEAL, DARSIE and the
    DARSIE ablations are all engines plugged into it — mirroring the
    paper's controlled comparison. An engine can:

    - remove instructions from the stream before they are fetched at zero
      cost ([remove_at_fetch], used by the idealized DAC);
    - skip instructions pre-fetch with its own per-cycle logic
      ([cycle_skip], used by DARSIE: advances warps' trace cursors and
      accounts for skip-table/renaming activity and synchronization);
    - hold a warp back from fetching ([can_fetch] = false, used by DARSIE
      for branch synchronization, follower LeaderWB waits and freelist
      pressure);
    - drop instructions at issue after fetch/decode ([on_issue] = [Drop],
      used by UV's reuse buffer);
    - observe writebacks, stores and TB lifecycle events. *)

(** Per-warp pipeline context, owned by the SM but visible to engines. *)
type wctx = {
  wid : int;  (** SM-local warp slot *)
  tb_slot : int;  (** SM-local threadblock slot *)
  tb_id : int;  (** global threadblock index *)
  warp_in_tb : int;
  trace : Darsie_trace.Record.op array;
  mutable fi : int;  (** next trace index to fetch *)
  ibuf : (Darsie_trace.Record.op * int) Queue.t;
      (** fetched (op, fetch_cycle) pairs awaiting issue *)
  pending : int array;  (** scoreboard: outstanding writes per vreg *)
  mutable pending_count : int;
  mutable at_barrier : bool;
  mutable finished : bool;
  mutable last_issued : int;  (** cycle of last issue, for GTO *)
  mutable fetch_ready_at : int;  (** earliest cycle the next fetch may
                                     complete (I-cache miss fill) *)
  mutable mem_inflight : int;
      (** in-flight memory operations issued by this warp and not yet
          written back; maintained by the SM so stall classification
          needs no scan over the in-flight list *)
  mutable mshr_used : int;
      (** miss-status holding registers this warp occupies: one per
          L1-missed line still in flight, released (out of order) at
          writeback. Gates global-load issue when [Config.mshrs] > 0;
          stays 0 when the knob is off. Maintained by the SM *)
  mutable fetch_ok : bool;
      (** engine fetch gate ([can_fetch] for the gating engines); owned
          by the engine, inlined here so the per-warp-per-cycle skip
          phase pays a field access instead of a hash lookup. Starts
          [true] *)
  mutable parked_at : int;
      (** trace index this warp is parked at in a skip-table entry's
          warps-waiting bitmask, or [-1] when not parked; engine-owned *)
  mutable skip_stall : int;
      (** consecutive cycles stalled on an empty rename freelist
          (DARSIE's bounded synchronization fallback); engine-owned *)
  mutable drop_reason : int;
      (** why this warp is off the majority path: [0] on path, [1]
          dropped by SIMD-mask divergence, [2] dropped at a branch
          synchronization; engine-owned skip-ledger provenance, reset
          when the majority mask resets at a barrier *)
  mutable gave_up_at : int;
      (** trace index at which this warp gave up waiting on an empty
          rename freelist and fell through to a real fetch, or [-1];
          engine-owned skip-ledger provenance *)
}

val warp_done : wctx -> bool
(** Trace exhausted and nothing left in flight for fetch purposes. *)

val next_op : wctx -> Darsie_trace.Record.op option

type issue_decision = Execute | Drop

type t = {
  name : string;
  cycle_skip : cycle:int -> unit;
      (** called once per SM cycle, before fetch *)
  quiescent : unit -> bool;
      (** true when the most recent [cycle_skip] was a no-op (no stat
          deltas, no warp state changes) {e and} would stay one while the
          rest of the SM is frozen — the license the fast-forward path
          needs to skip calling [cycle_skip] for a jumped-over span.
          Engines whose skip phase does per-cycle work while warps are
          stalled (DARSIE probe/park accounting) must return [false] on
          such cycles; stateless engines always return [true] *)
  skip_reads_warp_state : bool;
      (** true when [cycle_skip] inspects warp state (trace cursors,
          parked sets). The fetch phase runs after [cycle_skip], so for
          such engines a fetch this cycle invalidates the [quiescent]
          and [skip_steady] snapshots: the SM steps one more cycle
          before fast-forwarding. Stateless skip phases leave this
          [false] *)
  skip_steady : unit -> bool;
      (** true when the most recent [cycle_skip] mutated no engine or
          warp state — at most it accumulated per-cycle statistics
          (DARSIE's probe, park and sync-stall counters). A steady skip
          phase is a deterministic function of frozen state, so it
          repeats identically across a jumped span; this — not
          [quiescent] — is the license the fast-forward path gates on.
          Stateless engines return [true] *)
  bulk_skip : cycle:int -> n:int -> unit;
      (** charge [n] skipped executions of the skip phase ending at
          [cycle] in one call; invoked by {!Sm.fast_forward} only when
          [skip_steady ()] held. Accumulating engines run the phase
          once and scale the stat deltas by [n]; stateless engines
          no-op *)
  on_fast_forward : cycle:int -> unit;
      (** the SM clock jumped: the span up to and including [cycle]
          was skipped without calling [cycle_skip]. Engines tracking the
          current cycle (DARSIE's skip-table telemetry clock) resync
          here; called only when [quiescent ()] held *)
  can_fetch : wctx -> bool;
  recheck_fetch : wctx -> bool;
      (** re-evaluate the fetch gate for [w] at its {e current} cursor.
          [can_fetch] reads the decision the skip phase made for the
          cursor it saw at the top of the cycle; a fetch-bundle follower
          slot ([Config.issue_width] > 1) has since advanced [fi], so
          the stale gate must not be trusted — a warp could sail past a
          branch synchronization without registering arrival. Gating
          engines re-run the single-warp pre-fetch window (registering
          syncs, parking, or chaining skips exactly as the skip phase
          would) and return the fresh gate; stateless engines return
          [true]. Called by the SM's fetch phase only between bundle
          slots, never for the first slot of a cycle *)
  remove_at_fetch : wctx -> Darsie_trace.Record.op -> bool;
  on_issue : cycle:int -> wctx -> Darsie_trace.Record.op -> issue_decision;
  on_writeback : cycle:int -> wctx -> Darsie_trace.Record.op -> unit;
  on_store : atomic:bool -> wctx -> unit;
      (** a store ([atomic = false]) or atomic ([atomic = true]) issued
          by this warp's TB — the load-entry flush trigger (§4.4) *)
  exec_fate : wctx -> Darsie_trace.Record.op -> Darsie_obs.Ledger.fate;
      (** classify one {e executed} (really fetched) occurrence of a
          statically eligible instruction for the skip ledger; called by
          the SM's fetch phase exactly once per such occurrence. Engines
          without a skip path return
          {!Darsie_obs.Ledger.Skip_disabled} *)
  set_ledger : Darsie_obs.Ledger.t -> unit;
      (** receive the per-SM skip ledger at SM construction, so
          engine-internal pre-fetch skips can record their fates
          ([Skipped], [Parked_waiting_leaderwb]); engines without a skip
          path ignore it *)
  on_tb_launch : tb_slot:int -> warps:wctx array -> unit;
  on_tb_finish : tb_slot:int -> unit;
  debug_state : unit -> (string * int) list;
      (** engine-specific counters for failure diagnostics (e.g. DARSIE
          skip-table occupancy, free rename registers); cheap, called only
          when assembling an error dump *)
  pc_telemetry : unit -> (int * Darsie_obs.Pcstat.skip_entry) list;
      (** per-PC skip-table entry telemetry (DARSIE: allocations, follower
          hits, park cycles, flush causes, lifetimes), aggregated over the
          engine's whole lifetime; engines without a skip table return [[]] *)
}

val base : unit -> t
(** The do-nothing engine: the baseline GPU. *)

type factory = Kinfo.t -> Config.t -> Stats.t -> t
(** Engines are instantiated per SM with the kernel's static information,
    the configuration and the SM's stats block. *)

val base_factory : factory
