open Darsie_trace
module Obs = Darsie_obs

type slot_state = {
  mutable occupied : bool;
  mutable tb_id : int;
  mutable inflight_ops : int;
  mutable barrier_release_at : int;  (* -1 when no release pending *)
}

type in_flight = {
  fly_warp : Engine.wctx;
  fly_op : Record.op;
  finish : int;
}

type t = {
  cfg : Config.t;
  kinfo : Kinfo.t;
  stats : Stats.t;
  engine : Engine.t;
  dram : Mem_model.Dram.t;
  l1 : Mem_model.L1.t;
  icache : Mem_model.L1.t;
  collectors : int array;  (* per-unit busy-until cycle *)
  slots : slot_state array;
  warps : Engine.wctx option array;  (* wid = slot * warps_per_tb + lane *)
  warps_per_tb : int;
  mutable inflight : in_flight list;
  mutable fetch_ptr : int;
  greedy : int array;  (* per scheduler: preferred wid, or -1 *)
  mutable cycle : int;
  bank_use : int array;  (* per-RF-bank reads scheduled this cycle *)
  sm_id : int;
  sink : Obs.Sink.t;
  attr : Obs.Attrib.t;
  pcstat : Obs.Pcstat.t option;
  series : Obs.Series.t option;
  mutable issue_slots_used : int;  (* issues + drops this cycle *)
  mutable active_pc : int;  (* first PC issued/dropped this cycle *)
  mutable last_barrier_pc : int;  (* most recent barrier-setting PC *)
}

(* Counters snapshotted into the per-interval time-series; the order here
   is the column order of the CSV/JSON exports. *)
let sample_names =
  [ "issued"; "fetched"; "skipped_prefetch"; "dropped_issue"; "icache_misses";
    "l1_accesses"; "l1_misses"; "dram_transactions"; "barrier_stall_cycles";
    "darsie_sync_stalls" ]

let sample_snapshot (s : Stats.t) =
  [|
    s.Stats.issued; s.Stats.fetched; s.Stats.skipped_prefetch;
    s.Stats.dropped_issue; s.Stats.icache_misses; s.Stats.l1_accesses;
    s.Stats.l1_misses; s.Stats.dram_transactions;
    s.Stats.barrier_stall_cycles; s.Stats.darsie_sync_stalls;
  |]

let create ?(sm_id = 0) ?(sink = Obs.Sink.null) ?series ?pcstat cfg kinfo
    factory dram ~slots ~warps_per_tb =
  let stats = Stats.create () in
  {
    cfg;
    kinfo;
    stats;
    engine = factory kinfo cfg stats;
    dram;
    l1 =
      Mem_model.L1.create ~bytes:cfg.Config.l1_bytes ~assoc:cfg.Config.l1_assoc
        ~line:cfg.Config.l1_line;
    icache =
      Mem_model.L1.create ~bytes:cfg.Config.icache_bytes ~assoc:4
        ~line:cfg.Config.icache_line;
    collectors = Array.make cfg.Config.collector_units 0;
    slots =
      Array.init slots (fun _ ->
          {
            occupied = false;
            tb_id = -1;
            inflight_ops = 0;
            barrier_release_at = -1;
          });
    warps = Array.make (slots * warps_per_tb) None;
    warps_per_tb;
    inflight = [];
    fetch_ptr = 0;
    greedy = Array.make cfg.Config.num_schedulers (-1);
    cycle = 0;
    bank_use = Array.make cfg.Config.rf_banks 0;
    sm_id;
    sink;
    attr = Obs.Attrib.create ();
    pcstat;
    series;
    issue_slots_used = 0;
    active_pc = -1;
    last_barrier_pc = -1;
  }

let pc_note t f = match t.pcstat with None -> () | Some p -> f p

let emit t ~warp kind =
  if Obs.Sink.enabled t.sink then
    Obs.Sink.emit t.sink
      { Obs.Event.cycle = t.cycle; sm = t.sm_id; warp; kind }

let can_accept t = Array.exists (fun s -> not s.occupied) t.slots

let launch_tb t ~tb_id ~traces =
  let slot_idx =
    let rec find i =
      if i >= Array.length t.slots then
        invalid_arg "Sm.launch_tb: no free slot"
      else if not t.slots.(i).occupied then i
      else find (i + 1)
    in
    find 0
  in
  let slot = t.slots.(slot_idx) in
  slot.occupied <- true;
  slot.tb_id <- tb_id;
  slot.inflight_ops <- 0;
  slot.barrier_release_at <- -1;
  if Array.length traces > t.warps_per_tb then
    invalid_arg "Sm.launch_tb: threadblock has too many warps for this SM";
  let nregs = max t.kinfo.Kinfo.kernel.Darsie_isa.Kernel.nregs 1 in
  let warps =
    Array.init (Array.length traces) (fun w ->
        {
          Engine.wid = (slot_idx * t.warps_per_tb) + w;
          tb_slot = slot_idx;
          tb_id;
          warp_in_tb = w;
          trace = traces.(w);
          fi = 0;
          ibuf = Queue.create ();
          pending = Array.make nregs 0;
          pending_count = 0;
          at_barrier = false;
          finished = false;
          last_issued = 0;
          fetch_ready_at = 0;
        })
  in
  Array.iteri
    (fun w ctx -> t.warps.((slot_idx * t.warps_per_tb) + w) <- Some ctx)
    warps;
  for w = Array.length traces to t.warps_per_tb - 1 do
    t.warps.((slot_idx * t.warps_per_tb) + w) <- None
  done;
  emit t ~warp:tb_id Obs.Event.Tb_launch;
  t.engine.Engine.on_tb_launch ~tb_slot:slot_idx ~warps

let busy t =
  Array.exists (fun s -> s.occupied) t.slots || t.inflight <> []

let stats t = t.stats

let engine_name t = t.engine.Engine.name

let cycle t = t.cycle

let attribution t = t.attr

let pcstat t = t.pcstat

let skip_telemetry t = t.engine.Engine.pc_telemetry ()

let series t = t.series

let inflight_count t = List.length t.inflight

(* Monotone counter that moves iff the pipeline did something this cycle:
   fetched, issued, dropped at issue or skipped pre-fetch. The watchdog
   declares deadlock when it freezes with nothing in flight. *)
let progress_token t =
  t.stats.Stats.fetched + t.stats.Stats.issued + t.stats.Stats.dropped_issue
  + t.stats.Stats.skipped_prefetch

let debug_state t = t.engine.Engine.debug_state ()

let warp_snapshots t =
  let base = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some (w : Engine.wctx) ->
        let len = Array.length w.Engine.trace in
        let pc =
          if w.Engine.fi < len then w.Engine.trace.(w.Engine.fi).Record.idx
          else -1
        in
        let drained = Engine.warp_done w && Queue.is_empty w.Engine.ibuf in
        let state =
          if drained && w.Engine.pending_count = 0 then "finished"
          else if w.Engine.at_barrier then "at_barrier"
          else if Queue.is_empty w.Engine.ibuf && not (t.engine.Engine.can_fetch w)
          then "fetch_gated"
          else "runnable"
        in
        let snap =
          {
            Darsie_check.Sim_error.ws_sm = t.sm_id;
            ws_warp = w.Engine.wid;
            ws_tb = w.Engine.tb_id;
            ws_pc = pc;
            ws_state = state;
            ws_detail =
              Printf.sprintf "trace %d/%d, ibuf %d, pending %d" w.Engine.fi
                len
                (Queue.length w.Engine.ibuf)
                w.Engine.pending_count;
          }
        in
        base := snap :: !base)
    t.warps;
  List.rev !base

(* Flush the trailing partial sampling interval (no-op when the run ended
   exactly on a boundary, or when sampling is off), and fold the engine's
   per-PC skip telemetry into the profile: DARSIE advances trace cursors
   inside its own skip phase, so those eliminations never pass through
   the fetch stage the SM instruments. *)
let finalize t =
  (match t.series with
  | Some s -> Obs.Series.record s ~cycle:t.cycle (sample_snapshot t.stats)
  | None -> ());
  pc_note t (fun p ->
      List.iter
        (fun (pc, (e : Obs.Pcstat.skip_entry)) ->
          Obs.Pcstat.note_skips p ~pc e.Obs.Pcstat.sk_hits)
        (skip_telemetry t))

(* A warp has issued everything when its trace cursor is exhausted and its
   I-buffer has drained. *)
let warp_drained (w : Engine.wctx) =
  Engine.warp_done w && Queue.is_empty w.Engine.ibuf

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* ------------------------------------------------------------------ *)
(* Writeback                                                           *)
(* ------------------------------------------------------------------ *)

let writeback t =
  let stats = t.stats in
  let still = ref [] in
  List.iter
    (fun f ->
      if f.finish <= t.cycle then begin
        let w = f.fly_warp in
        (match t.kinfo.Kinfo.dst_reg.(f.fly_op.Record.idx) with
        | Some d ->
          w.Engine.pending.(d) <- w.Engine.pending.(d) - 1;
          w.Engine.pending_count <- w.Engine.pending_count - 1;
          stats.Stats.rf_writes <- stats.Stats.rf_writes + 1
        | None -> ());
        t.slots.(w.Engine.tb_slot).inflight_ops <-
          t.slots.(w.Engine.tb_slot).inflight_ops - 1;
        t.engine.Engine.on_writeback ~cycle:t.cycle w f.fly_op
      end
      else still := f :: !still)
    t.inflight;
  t.inflight <- !still

(* ------------------------------------------------------------------ *)
(* Barrier release and TB retirement                                   *)
(* ------------------------------------------------------------------ *)

let slot_warps t slot_idx =
  let base = slot_idx * t.warps_per_tb in
  let rec collect w acc =
    if w < 0 then acc
    else
      collect (w - 1)
        (match t.warps.(base + w) with Some c -> c :: acc | None -> acc)
  in
  collect (t.warps_per_tb - 1) []

let barriers_and_retirement t =
  Array.iteri
    (fun slot_idx slot ->
      if slot.occupied then begin
        let warps = slot_warps t slot_idx in
        let any_waiting =
          List.exists (fun w -> w.Engine.at_barrier) warps
        in
        if any_waiting then begin
          let all_arrived =
            List.for_all
              (fun w -> w.Engine.at_barrier || warp_drained w)
              warps
          in
          List.iter
            (fun w ->
              if w.Engine.at_barrier then
                t.stats.Stats.barrier_stall_cycles <-
                  t.stats.Stats.barrier_stall_cycles + 1)
            warps;
          (* The barrier network takes barrier_lat cycles from last-warp
             arrival to release. *)
          if all_arrived && slot.barrier_release_at < 0 then
            slot.barrier_release_at <- t.cycle + t.cfg.Config.barrier_lat;
          if slot.barrier_release_at >= 0 && t.cycle >= slot.barrier_release_at
          then begin
            List.iter (fun w -> w.Engine.at_barrier <- false) warps;
            slot.barrier_release_at <- -1;
            emit t ~warp:slot_idx Obs.Event.Barrier_release
          end
        end;
        (* Retirement: all warps drained, nothing in flight. *)
        if
          slot.inflight_ops = 0
          && List.for_all warp_drained warps
          && not (List.exists (fun w -> w.Engine.at_barrier) warps)
        then begin
          slot.occupied <- false;
          let base = slot_idx * t.warps_per_tb in
          for w = 0 to t.warps_per_tb - 1 do
            t.warps.(base + w) <- None
          done;
          emit t ~warp:slot_idx Obs.Event.Tb_finish;
          t.engine.Engine.on_tb_finish ~tb_slot:slot_idx
        end
      end)
    t.slots

(* ------------------------------------------------------------------ *)
(* Issue                                                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic architectural register -> bank map; renamed (DARSIE)
   registers live in a strided region of the same banks, which is how
   follower reads create extra conflicts. *)
let bank_of t (w : Engine.wctx) reg =
  ((w.Engine.wid * t.kinfo.Kinfo.kernel.Darsie_isa.Kernel.nregs) + reg)
  mod t.cfg.Config.rf_banks

let scoreboard_ready (w : Engine.wctx) kinfo idx =
  let srcs = kinfo.Kinfo.src_regs.(idx) in
  List.for_all (fun r -> w.Engine.pending.(r) = 0) srcs
  &&
  match kinfo.Kinfo.dst_reg.(idx) with
  | Some d -> w.Engine.pending.(d) = 0
  | None -> true

type issue_budget = {
  mutable mem_left : int;
  mutable sfu_left : int;
}

(* Issue one op from warp [w]; returns false if the head op cannot issue. *)
let try_issue_head t budget (w : Engine.wctx) =
  if w.Engine.at_barrier then false
  else
    match Queue.peek_opt w.Engine.ibuf with
    | None -> false
    | Some (op, fetch_cycle) ->
      let idx = op.Record.idx in
      let kinfo = t.kinfo in
      let unit_class = kinfo.Kinfo.unit_of.(idx) in
      let structural_ok =
        match unit_class with
        | Kinfo.Mem_global | Kinfo.Mem_shared -> budget.mem_left > 0
        | Kinfo.Sfu -> budget.sfu_left > 0
        | Kinfo.Alu | Kinfo.Ctrl -> true
      in
      (* operand collection: instructions reading registers need a free
         operand-collector unit *)
      let collector =
        if kinfo.Kinfo.nsrcs.(idx) = 0 then Some (-1)
        else begin
          let found = ref None in
          Array.iteri
            (fun u busy -> if !found = None && busy <= t.cycle then found := Some u)
            t.collectors;
          !found
        end
      in
      if fetch_cycle >= t.cycle || not structural_ok || collector = None
         || not (scoreboard_ready w kinfo idx)
      then false
      else begin
        ignore (Queue.pop w.Engine.ibuf);
        let stats = t.stats in
        let cfg = t.cfg in
        w.Engine.last_issued <- t.cycle;
        t.issue_slots_used <- t.issue_slots_used + 1;
        if t.issue_slots_used = 1 then t.active_pc <- idx;
        (match t.engine.Engine.on_issue ~cycle:t.cycle w op with
        | Engine.Drop ->
          (* Eliminated at issue (UV): consumed fetch/decode and an issue
             slot but no execution resources; the reuse-buffer value is
             available to dependents next cycle. *)
          stats.Stats.dropped_issue <- stats.Stats.dropped_issue + 1;
          pc_note t (fun p -> Obs.Pcstat.note_drop p ~pc:idx);
          emit t ~warp:w.Engine.wid Obs.Event.Drop_at_issue;
          (match kinfo.Kinfo.shape.(idx) with
          | Darsie_compiler.Marking.Uniform ->
            stats.Stats.elim_uniform <- stats.Stats.elim_uniform + 1
          | Darsie_compiler.Marking.Affine ->
            stats.Stats.elim_affine <- stats.Stats.elim_affine + 1
          | Darsie_compiler.Marking.Unstructured | Darsie_compiler.Marking.Varying ->
            stats.Stats.elim_unstructured <- stats.Stats.elim_unstructured + 1);
          (match kinfo.Kinfo.dst_reg.(idx) with
          | Some d ->
            w.Engine.pending.(d) <- w.Engine.pending.(d) + 1;
            w.Engine.pending_count <- w.Engine.pending_count + 1;
            t.slots.(w.Engine.tb_slot).inflight_ops <-
              t.slots.(w.Engine.tb_slot).inflight_ops + 1;
            t.inflight <-
              { fly_warp = w; fly_op = op; finish = t.cycle + 1 } :: t.inflight
          | None -> ())
        | Engine.Execute ->
          stats.Stats.issued <- stats.Stats.issued + 1;
          pc_note t (fun p -> Obs.Pcstat.note_issue p ~pc:idx);
          stats.Stats.executed_threads <-
            stats.Stats.executed_threads + popcount op.Record.active;
          emit t ~warp:w.Engine.wid Obs.Event.Issue;
          (* Register file reads and bank conflicts. *)
          let conflicts = ref 0 in
          List.iter
            (fun r ->
              let b = bank_of t w r in
              if t.bank_use.(b) > 0 then incr conflicts;
              t.bank_use.(b) <- t.bank_use.(b) + 1;
              stats.Stats.rf_reads <- stats.Stats.rf_reads + 1)
            kinfo.Kinfo.src_regs.(idx);
          stats.Stats.rf_bank_conflicts <-
            stats.Stats.rf_bank_conflicts + !conflicts;
          (match collector with
          | Some u when u >= 0 -> t.collectors.(u) <- t.cycle + 2 + !conflicts
          | _ -> ());
          let finish =
            match unit_class with
            | Kinfo.Alu ->
              stats.Stats.alu_ops <- stats.Stats.alu_ops + 1;
              t.cycle + cfg.Config.alu_lat + !conflicts
            | Kinfo.Ctrl ->
              if kinfo.Kinfo.is_barrier.(idx) then w.Engine.at_barrier <- true
              else if kinfo.Kinfo.is_branch.(idx) && cfg.Config.sync_at_branches
              then w.Engine.at_barrier <- true;
              if w.Engine.at_barrier then begin
                t.last_barrier_pc <- idx;
                emit t ~warp:w.Engine.wid Obs.Event.Barrier_arrive
              end;
              t.cycle + cfg.Config.alu_lat
            | Kinfo.Sfu ->
              budget.sfu_left <- budget.sfu_left - 1;
              stats.Stats.sfu_ops <- stats.Stats.sfu_ops + 1;
              t.cycle + cfg.Config.sfu_lat + !conflicts
            | Kinfo.Mem_shared ->
              budget.mem_left <- budget.mem_left - 1;
              stats.Stats.mem_ops <- stats.Stats.mem_ops + 1;
              emit t ~warp:w.Engine.wid Obs.Event.Mem_access;
              let sc =
                Mem_model.shared_conflicts ~banks:cfg.Config.warp_size
                  op.Record.accesses
              in
              stats.Stats.shared_accesses <-
                stats.Stats.shared_accesses + 1 + sc;
              stats.Stats.shared_bank_conflicts <-
                stats.Stats.shared_bank_conflicts + sc;
              t.cycle + cfg.Config.shared_lat + sc + !conflicts
            | Kinfo.Mem_global ->
              budget.mem_left <- budget.mem_left - 1;
              stats.Stats.mem_ops <- stats.Stats.mem_ops + 1;
              emit t ~warp:w.Engine.wid Obs.Event.Mem_access;
              let lines =
                Mem_model.coalesce ~line_bytes:cfg.Config.l1_line
                  op.Record.accesses
              in
              let nlines = List.length lines in
              if kinfo.Kinfo.is_atomic.(idx) then begin
                (* Atomics bypass the L1 and serialize at DRAM. *)
                t.engine.Engine.on_store w;
                stats.Stats.dram_transactions <-
                  stats.Stats.dram_transactions + nlines;
                emit t ~warp:w.Engine.wid Obs.Event.Dram_txn;
                Mem_model.Dram.request t.dram ~now:(t.cycle + cfg.Config.l1_lat)
                  ~ntxns:nlines
              end
              else if kinfo.Kinfo.is_store.(idx) then begin
                (* Write-through, no-allocate: stores drain to DRAM and do
                   not stall the pipeline. *)
                t.engine.Engine.on_store w;
                stats.Stats.l1_accesses <- stats.Stats.l1_accesses + nlines;
                stats.Stats.dram_transactions <-
                  stats.Stats.dram_transactions + nlines;
                emit t ~warp:w.Engine.wid Obs.Event.Dram_txn;
                ignore
                  (Mem_model.Dram.request t.dram ~now:(t.cycle + cfg.Config.l1_lat)
                     ~ntxns:nlines);
                t.cycle + cfg.Config.alu_lat
              end
              else begin
                stats.Stats.l1_accesses <- stats.Stats.l1_accesses + nlines;
                let misses =
                  List.fold_left
                    (fun acc line ->
                      if Mem_model.L1.access t.l1 line then acc else acc + 1)
                    0 lines
                in
                stats.Stats.l1_misses <- stats.Stats.l1_misses + misses;
                if misses = 0 then
                  t.cycle + cfg.Config.l1_lat + nlines - 1 + !conflicts
                else begin
                  stats.Stats.dram_transactions <-
                    stats.Stats.dram_transactions + misses;
                  emit t ~warp:w.Engine.wid Obs.Event.L1_miss;
                  emit t ~warp:w.Engine.wid Obs.Event.Dram_txn;
                  Mem_model.Dram.request t.dram ~now:(t.cycle + cfg.Config.l1_lat)
                    ~ntxns:misses
                end
              end
          in
          (match unit_class with
          | Kinfo.Mem_global | Kinfo.Mem_shared ->
            pc_note t (fun p ->
                Obs.Pcstat.note_mem_latency p ~pc:idx ~lat:(finish - t.cycle))
          | Kinfo.Alu | Kinfo.Sfu | Kinfo.Ctrl -> ());
          (* Track every executed op for TB retirement; register release
             happens at writeback only for ops that write one. *)
          (match kinfo.Kinfo.dst_reg.(idx) with
          | Some d ->
            w.Engine.pending.(d) <- w.Engine.pending.(d) + 1;
            w.Engine.pending_count <- w.Engine.pending_count + 1
          | None -> ());
          t.slots.(w.Engine.tb_slot).inflight_ops <-
            t.slots.(w.Engine.tb_slot).inflight_ops + 1;
          t.inflight <- { fly_warp = w; fly_op = op; finish } :: t.inflight);
        true
      end

let issue t =
  Array.fill t.bank_use 0 (Array.length t.bank_use) 0;
  let cfg = t.cfg in
  let nw = Array.length t.warps in
  let budget =
    { mem_left = cfg.Config.mem_per_cycle; sfu_left = cfg.Config.sfu_per_cycle }
  in
  for sched = 0 to cfg.Config.num_schedulers - 1 do
    (* Candidates: this scheduler's warps with an issueable head. *)
    let issueable wid =
      match t.warps.(wid) with
      | Some w when not w.Engine.at_barrier -> (
        match Queue.peek_opt w.Engine.ibuf with
        | Some (op, fc) ->
          fc < t.cycle && scoreboard_ready w t.kinfo op.Record.idx
        | None -> false)
      | _ -> false
    in
    let pick () =
      match cfg.Config.scheduler with
      | Config.Gto ->
        (* Greedy-then-oldest: stick with the last warp this scheduler
           issued from; otherwise take the lowest warp slot (oldest TB). *)
        let g = t.greedy.(sched) in
        if g >= 0 && g mod cfg.Config.num_schedulers = sched && issueable g
        then Some g
        else begin
          let found = ref None in
          let wid = ref sched in
          while !found = None && !wid < nw do
            if issueable !wid then found := Some !wid;
            wid := !wid + cfg.Config.num_schedulers
          done;
          !found
        end
      | Config.Lrr ->
        (* Loose round robin: resume scanning after the last pick. *)
        let per_sched = (nw + cfg.Config.num_schedulers - 1) / cfg.Config.num_schedulers in
        let last = t.greedy.(sched) in
        let start =
          if last >= 0 then ((last - sched) / cfg.Config.num_schedulers) + 1
          else 0
        in
        let found = ref None in
        let k = ref 0 in
        while !found = None && !k < per_sched do
          let slot = (start + !k) mod per_sched in
          let wid = sched + (slot * cfg.Config.num_schedulers) in
          if wid < nw && issueable wid then found := Some wid;
          incr k
        done;
        !found
    in
    match pick () with
    | None -> t.greedy.(sched) <- -1
    | Some wid ->
      t.greedy.(sched) <- wid;
      (match t.warps.(wid) with
      | None -> ()
      | Some w ->
        let issued = ref 0 in
        while
          !issued < cfg.Config.issue_per_scheduler && try_issue_head t budget w
        do
          incr issued
        done)
  done

(* ------------------------------------------------------------------ *)
(* Fetch                                                               *)
(* ------------------------------------------------------------------ *)

let fetch t =
  let cfg = t.cfg in
  let nw = Array.length t.warps in
  if nw = 0 then ()
  else begin
    let fetched = ref 0 and scanned = ref 0 in
    let ptr = ref t.fetch_ptr in
    while !fetched < cfg.Config.fetch_width && !scanned < nw do
      (match t.warps.(!ptr mod nw) with
      | Some w
        when (not w.Engine.finished)
             && (not w.Engine.at_barrier)
             && t.cycle >= w.Engine.fetch_ready_at
             && Queue.length w.Engine.ibuf < cfg.Config.ibuf_depth
             && (not (Engine.warp_done w))
             && t.engine.Engine.can_fetch w -> begin
        (* Zero-cost stream removal (DAC-IDEAL). *)
        let continue_removing = ref true in
        while !continue_removing do
          match Engine.next_op w with
          | Some op when t.engine.Engine.remove_at_fetch w op ->
            w.Engine.fi <- w.Engine.fi + 1;
            t.stats.Stats.skipped_prefetch <- t.stats.Stats.skipped_prefetch + 1;
            pc_note t (fun p -> Obs.Pcstat.note_skip p ~pc:op.Record.idx);
            emit t ~warp:w.Engine.wid Obs.Event.Skip_prefetch;
            (match t.kinfo.Kinfo.shape.(op.Record.idx) with
            | Darsie_compiler.Marking.Uniform ->
              t.stats.Stats.elim_uniform <- t.stats.Stats.elim_uniform + 1
            | Darsie_compiler.Marking.Affine ->
              t.stats.Stats.elim_affine <- t.stats.Stats.elim_affine + 1
            | Darsie_compiler.Marking.Unstructured | Darsie_compiler.Marking.Varying
              ->
              t.stats.Stats.elim_unstructured <-
                t.stats.Stats.elim_unstructured + 1)
          | _ -> continue_removing := false
        done;
        match Engine.next_op w with
        | Some op ->
          incr fetched;
          let pc = Darsie_isa.Kernel.pc_of_index op.Record.idx in
          if Mem_model.L1.access t.icache pc then begin
            t.stats.Stats.fetched <- t.stats.Stats.fetched + 1;
            pc_note t (fun p -> Obs.Pcstat.note_fetch p ~pc:op.Record.idx);
            emit t ~warp:w.Engine.wid Obs.Event.Fetch;
            Queue.push (op, t.cycle) w.Engine.ibuf;
            w.Engine.fi <- w.Engine.fi + 1
          end
          else begin
            (* I-cache miss: the line fills and the warp refetches *)
            t.stats.Stats.icache_misses <- t.stats.Stats.icache_misses + 1;
            emit t ~warp:w.Engine.wid Obs.Event.Icache_miss;
            w.Engine.fetch_ready_at <- t.cycle + cfg.Config.icache_miss_lat
          end;
          t.fetch_ptr <- (!ptr + 1) mod nw
        | None -> ()
      end
      | _ -> ());
      incr ptr;
      incr scanned
    done;
    if !fetched = 0 then
      t.stats.Stats.fetch_stall_cycles <- t.stats.Stats.fetch_stall_cycles + 1
  end

(* ------------------------------------------------------------------ *)
(* Stall-cycle attribution                                             *)
(* ------------------------------------------------------------------ *)

let warp_has_mem_inflight t (w : Engine.wctx) =
  List.exists
    (fun f ->
      f.fly_warp == w
      &&
      match t.kinfo.Kinfo.unit_of.(f.fly_op.Record.idx) with
      | Kinfo.Mem_global | Kinfo.Mem_shared -> true
      | Kinfo.Alu | Kinfo.Sfu | Kinfo.Ctrl -> false)
    t.inflight

(* PC of the in-flight memory op finishing soonest for warp [w] (or for
   any warp when [w] is [None]); the instruction a memory-bound cycle is
   most fairly blamed on. -1 when nothing qualifies. *)
let nearest_inflight_pc ?w t =
  let best = ref None in
  List.iter
    (fun f ->
      let mine = match w with None -> true | Some w -> f.fly_warp == w in
      let is_mem =
        match t.kinfo.Kinfo.unit_of.(f.fly_op.Record.idx) with
        | Kinfo.Mem_global | Kinfo.Mem_shared -> true
        | Kinfo.Alu | Kinfo.Sfu | Kinfo.Ctrl -> false
      in
      if mine && (w = None || is_mem) then
        match !best with
        | Some (fin, _) when fin <= f.finish -> ()
        | _ -> best := Some (f.finish, f.fly_op.Record.idx))
    t.inflight;
  match !best with Some (_, idx) -> idx | None -> -1

let head_pc (w : Engine.wctx) =
  match Queue.peek_opt w.Engine.ibuf with
  | Some (op, _) -> op.Record.idx
  | None -> -1

let next_pc (w : Engine.wctx) =
  match Engine.next_op w with Some op -> op.Record.idx | None -> -1

(* Classify one cycle into exactly one Attrib bucket, and name the static
   instruction blocking progress (-1 = the none-row). Called at the end
   of [step], so "aged" I-buffer heads (fetch_cycle < cycle) are exactly
   the ones the issue stage considered and rejected this cycle. Pcstat
   and Attrib are both fed from this single result, which is what makes
   the per-PC table conservative by construction. *)
let classify_cycle t =
  if t.issue_slots_used > 0 then (Obs.Attrib.Active, t.active_pc)
  else begin
    let runnable = ref [] in
    Array.iter
      (function
        | Some w when not (warp_drained w) -> runnable := w :: !runnable
        | _ -> ())
      t.warps;
    match List.rev !runnable with
    | [] ->
      if t.inflight <> [] then (Obs.Attrib.Mem_pending, nearest_inflight_pc t)
      else (Obs.Attrib.Idle, -1)
    | ws ->
      if List.for_all (fun (w : Engine.wctx) -> w.Engine.at_barrier) ws then
        (Obs.Attrib.Barrier, t.last_barrier_pc)
      else begin
        let ws =
          List.filter (fun (w : Engine.wctx) -> not w.Engine.at_barrier) ws
        in
        (* Warps whose head instruction was old enough to issue but did
           not: operand (scoreboard) or issue-resource blocked. *)
        let aged_blocked =
          List.filter
            (fun (w : Engine.wctx) ->
              match Queue.peek_opt w.Engine.ibuf with
              | Some (_, fc) -> fc < t.cycle
              | None -> false)
            ws
        in
        if aged_blocked <> [] then begin
          let on_memory =
            List.find_opt
              (fun (w : Engine.wctx) ->
                match Queue.peek_opt w.Engine.ibuf with
                | Some (op, _) ->
                  (not (scoreboard_ready w t.kinfo op.Record.idx))
                  && warp_has_mem_inflight t w
                | None -> false)
              aged_blocked
          in
          match on_memory with
          | Some w -> (Obs.Attrib.Mem_pending, nearest_inflight_pc ~w t)
          | None -> (Obs.Attrib.Scoreboard, head_pc (List.hd aged_blocked))
        end
        else begin
          let fetch_gated =
            List.find_opt
              (fun (w : Engine.wctx) ->
                Queue.is_empty w.Engine.ibuf
                && not (t.engine.Engine.can_fetch w))
              ws
          in
          match fetch_gated with
          | Some w -> (Obs.Attrib.Darsie_sync, next_pc w)
          | None ->
            let pc =
              match ws with
              | [] -> -1
              | w :: _ -> (match head_pc w with -1 -> next_pc w | p -> p)
            in
            (Obs.Attrib.Fetch_starved, pc)
        end
      end
  end

let step t =
  t.cycle <- t.cycle + 1;
  t.stats.Stats.cycles <- t.cycle;
  t.issue_slots_used <- 0;
  writeback t;
  barriers_and_retirement t;
  issue t;
  if Obs.Sink.enabled t.sink then begin
    (* The engine's skip phase mutates counters internally; emit the
       per-cycle deltas as aggregate (warp = -1) events. *)
    let sp0 = t.stats.Stats.skipped_prefetch in
    let ds0 = t.stats.Stats.darsie_sync_stalls in
    t.engine.Engine.cycle_skip ~cycle:t.cycle;
    for _ = 1 to t.stats.Stats.skipped_prefetch - sp0 do
      emit t ~warp:(-1) Obs.Event.Skip_prefetch
    done;
    for _ = 1 to t.stats.Stats.darsie_sync_stalls - ds0 do
      emit t ~warp:(-1) Obs.Event.Darsie_sync_stall
    done
  end
  else t.engine.Engine.cycle_skip ~cycle:t.cycle;
  fetch t;
  let bucket, blocking_pc = classify_cycle t in
  Obs.Attrib.bump t.attr bucket;
  pc_note t (fun p -> Obs.Pcstat.charge p ~pc:blocking_pc bucket);
  match t.series with
  | Some s when Obs.Series.boundary s ~cycle:t.cycle ->
    Obs.Series.record s ~cycle:t.cycle (sample_snapshot t.stats)
  | _ -> ()
