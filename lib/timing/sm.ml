open Darsie_trace
module Obs = Darsie_obs

type slot_state = {
  mutable occupied : bool;
  mutable tb_id : int;
  mutable inflight_ops : int;
  mutable barrier_release_at : int;  (* -1 when no release pending *)
  mutable n_at_barrier : int;  (* resident warps with at_barrier set *)
}

type in_flight = {
  fly_warp : Engine.wctx;
  fly_op : Record.op;
  (* Mutable for the sharded cycle loop only: a deferred DRAM request
     carries a [max_int] placeholder until the epoch barrier replays the
     queue and patches the real completion in ([commit_epoch]). The
     serial loop never mutates it. *)
  mutable finish : int;
  fly_mshrs : int;  (* MSHR entries this op holds until writeback *)
}

(* One deferred DRAM channel access (sharded cycle loop): everything
   needed to replay [Mem_model.Dram.request] at the epoch barrier in
   canonical order, plus the in-flight record whose placeholder finish
   the replay patches ([None] for stores, whose pipeline latency does
   not depend on the channel). *)
type dram_req = {
  dq_now : int;  (* the [~now] the issue site would have passed *)
  dq_ntxns : int;
  mutable dq_fly : in_flight option;
}

type t = {
  cfg : Config.t;
  kinfo : Kinfo.t;
  stats : Stats.t;
  engine : Engine.t;
  dram : Mem_model.Dram.t;
  l1 : Mem_model.L1.t;
  icache : Mem_model.L1.t;
  collectors : int array;  (* per-unit busy-until cycle *)
  slots : slot_state array;
  warps : Engine.wctx option array;  (* wid = slot * warps_per_tb + lane *)
  warps_per_tb : int;
  mutable inflight : in_flight list;
  mutable n_inflight : int;
  mutable next_wb : int;  (* earliest finish in [inflight]; max_int if none *)
  mutable fetch_ptr : int;
  (* True when this cycle's fetch phase advanced any warp (fi, ibuf or
     fetch_ready_at changed). Fetch runs after the engine's cycle_skip,
     so its quiescence snapshot is stale whenever this is set. *)
  mutable fetch_mutated : bool;
  greedy : int array;  (* per scheduler: preferred wid, or -1 *)
  mutable cycle : int;
  bank_use : int array;  (* per-RF-bank reads scheduled this cycle *)
  sm_id : int;
  sink : Obs.Sink.t;
  attr : Obs.Attrib.t;
  ledger : Obs.Ledger.t;
  pcstat : Obs.Pcstat.t option;
  series : Obs.Series.t option;
  mutable issue_slots_used : int;  (* issues + drops this cycle *)
  mutable active_pc : int;  (* first PC issued/dropped this cycle *)
  mutable last_barrier_pc : int;  (* most recent barrier-setting PC *)
  (* Shared-memory bank-conflict replay port (smem_banks > 0): the port
     is busy serializing replays through [smem_replay_until], and
     [smem_replay_pc] names the occupying access for stall blame. Both
     stay at their initial values when the knob is off. *)
  mutable smem_replay_until : int;
  mutable smem_replay_pc : int;
  (* Sharded cycle loop (sm_domains > 1) bookkeeping; all dormant in the
     serial loop. [dram_defer] routes issue-stage DRAM requests into
     [dram_q] (reverse issue order) instead of the shared channel;
     [dram_patch] carries the request between [dram_request] and the
     [add_inflight] whose record it must patch. The remaining fields let
     the epoch driver reproduce serial TB dispatch and the deadlock
     watchdog exactly: [tbs_retired] is a monotone retirement counter
     (a worker pauses at a retirement so the driver can replay the
     serial dispatch scan), [last_wb_cycle] / [last_progress] timestamp
     the most recent writeback and progress-token movement. *)
  dram_defer : bool;
  mutable dram_q : dram_req list;
  mutable dram_patch : dram_req option;
  mutable tbs_retired : int;
  mutable last_wb_cycle : int;
  mutable last_progress : int;
  mutable progress_snapshot : int;
}

(* Counters snapshotted into the per-interval time-series; the order here
   is the column order of the CSV/JSON exports. *)
let sample_names =
  [ "issued"; "fetched"; "skipped_prefetch"; "dropped_issue"; "icache_misses";
    "l1_accesses"; "l1_misses"; "dram_transactions"; "barrier_stall_cycles";
    "darsie_sync_stalls" ]

let sample_snapshot (s : Stats.t) =
  [|
    s.Stats.issued; s.Stats.fetched; s.Stats.skipped_prefetch;
    s.Stats.dropped_issue; s.Stats.icache_misses; s.Stats.l1_accesses;
    s.Stats.l1_misses; s.Stats.dram_transactions;
    s.Stats.barrier_stall_cycles; s.Stats.darsie_sync_stalls;
  |]

let create ?(sm_id = 0) ?(sink = Obs.Sink.null) ?series ?pcstat
    ?(deferred_dram = false) cfg kinfo factory dram ~slots ~warps_per_tb =
  let stats = Stats.create () in
  let engine = factory kinfo cfg stats in
  (* The skip ledger is always on (a handful of int arrays); the engine
     gets a handle so its internal pre-fetch skips can record fates. *)
  let ledger = Obs.Ledger.create ~n:(Array.length kinfo.Kinfo.unit_of) in
  engine.Engine.set_ledger ledger;
  {
    cfg;
    kinfo;
    stats;
    engine;
    dram;
    l1 =
      Mem_model.L1.create ~bytes:cfg.Config.l1_bytes ~assoc:cfg.Config.l1_assoc
        ~line:cfg.Config.l1_line;
    icache =
      Mem_model.L1.create ~bytes:cfg.Config.icache_bytes ~assoc:4
        ~line:cfg.Config.icache_line;
    collectors = Array.make cfg.Config.collector_units 0;
    slots =
      Array.init slots (fun _ ->
          {
            occupied = false;
            tb_id = -1;
            inflight_ops = 0;
            barrier_release_at = -1;
            n_at_barrier = 0;
          });
    warps = Array.make (slots * warps_per_tb) None;
    warps_per_tb;
    inflight = [];
    n_inflight = 0;
    next_wb = max_int;
    fetch_ptr = 0;
    fetch_mutated = false;
    greedy = Array.make cfg.Config.num_schedulers (-1);
    cycle = 0;
    bank_use = Array.make cfg.Config.rf_banks 0;
    sm_id;
    sink;
    attr = Obs.Attrib.create ();
    ledger;
    pcstat;
    series;
    issue_slots_used = 0;
    active_pc = -1;
    last_barrier_pc = -1;
    smem_replay_until = 0;
    smem_replay_pc = -1;
    dram_defer = deferred_dram;
    dram_q = [];
    dram_patch = None;
    tbs_retired = 0;
    last_wb_cycle = 0;
    (* 1, not 0: the serial watchdog's progress ref starts one compare
       behind the token (initialized to -1), so even a machine that
       never progresses is only charged idle from cycle 2 on — the same
       lag this seed reproduces in the barrier-time idle formula. *)
    last_progress = 1;
    progress_snapshot = 0;
  }

let pc_note t f = match t.pcstat with None -> () | Some p -> f p

let emit t ~warp kind =
  if Obs.Sink.enabled t.sink then
    Obs.Sink.emit t.sink
      { Obs.Event.cycle = t.cycle; sm = t.sm_id; warp; kind }

let can_accept t = Array.exists (fun s -> not s.occupied) t.slots

let launch_tb t ~tb_id ~traces =
  let slot_idx =
    let rec find i =
      if i >= Array.length t.slots then
        invalid_arg "Sm.launch_tb: no free slot"
      else if not t.slots.(i).occupied then i
      else find (i + 1)
    in
    find 0
  in
  let slot = t.slots.(slot_idx) in
  slot.occupied <- true;
  slot.tb_id <- tb_id;
  slot.inflight_ops <- 0;
  slot.barrier_release_at <- -1;
  slot.n_at_barrier <- 0;
  if Array.length traces > t.warps_per_tb then
    invalid_arg "Sm.launch_tb: threadblock has too many warps for this SM";
  let nregs = max t.kinfo.Kinfo.kernel.Darsie_isa.Kernel.nregs 1 in
  let warps =
    Array.init (Array.length traces) (fun w ->
        {
          Engine.wid = (slot_idx * t.warps_per_tb) + w;
          tb_slot = slot_idx;
          tb_id;
          warp_in_tb = w;
          trace = traces.(w);
          fi = 0;
          ibuf = Queue.create ();
          pending = Array.make nregs 0;
          pending_count = 0;
          at_barrier = false;
          finished = false;
          last_issued = 0;
          fetch_ready_at = 0;
          mem_inflight = 0;
          mshr_used = 0;
          fetch_ok = true;
          parked_at = -1;
          skip_stall = 0;
          drop_reason = 0;
          gave_up_at = -1;
        })
  in
  (* Independent eligible-occurrence count for the skip ledger: scan the
     installed traces once so the conservation check does not depend on
     the fetch-path bookkeeping it verifies. *)
  Array.iter
    (fun trace ->
      Array.iter
        (fun (op : Record.op) ->
          if t.kinfo.Kinfo.marked_eligible.(op.Record.idx) then
            Obs.Ledger.note_expected t.ledger ~pc:op.Record.idx)
        trace)
    traces;
  Array.iteri
    (fun w ctx -> t.warps.((slot_idx * t.warps_per_tb) + w) <- Some ctx)
    warps;
  for w = Array.length traces to t.warps_per_tb - 1 do
    t.warps.((slot_idx * t.warps_per_tb) + w) <- None
  done;
  emit t ~warp:tb_id Obs.Event.Tb_launch;
  t.engine.Engine.on_tb_launch ~tb_slot:slot_idx ~warps

let busy t =
  Array.exists (fun s -> s.occupied) t.slots || t.inflight <> []

let stats t = t.stats

let engine_name t = t.engine.Engine.name

let cycle t = t.cycle

let attribution t = t.attr

let ledger t = t.ledger

let pcstat t = t.pcstat

let skip_telemetry t = t.engine.Engine.pc_telemetry ()

let series t = t.series

let inflight_count t = t.n_inflight

(* Monotone counter that moves iff the pipeline did something this cycle:
   fetched, issued, dropped at issue or skipped pre-fetch. The watchdog
   declares deadlock when it freezes with nothing in flight. *)
let progress_token t =
  t.stats.Stats.fetched + t.stats.Stats.issued + t.stats.Stats.dropped_issue
  + t.stats.Stats.skipped_prefetch

let debug_state t = t.engine.Engine.debug_state ()

let warp_snapshots t =
  let base = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some (w : Engine.wctx) ->
        let len = Array.length w.Engine.trace in
        let pc =
          if w.Engine.fi < len then w.Engine.trace.(w.Engine.fi).Record.idx
          else -1
        in
        let drained = Engine.warp_done w && Queue.is_empty w.Engine.ibuf in
        let state =
          if drained && w.Engine.pending_count = 0 then "finished"
          else if w.Engine.at_barrier then "at_barrier"
          else if Queue.is_empty w.Engine.ibuf && not (t.engine.Engine.can_fetch w)
          then "fetch_gated"
          else "runnable"
        in
        let snap =
          {
            Darsie_check.Sim_error.ws_sm = t.sm_id;
            ws_warp = w.Engine.wid;
            ws_tb = w.Engine.tb_id;
            ws_pc = pc;
            ws_state = state;
            ws_detail =
              Printf.sprintf "trace %d/%d, ibuf %d, pending %d" w.Engine.fi
                len
                (Queue.length w.Engine.ibuf)
                w.Engine.pending_count;
          }
        in
        base := snap :: !base)
    t.warps;
  List.rev !base

(* Flush the trailing partial sampling interval (no-op when the run ended
   exactly on a boundary, or when sampling is off), and fold the engine's
   per-PC skip telemetry into the profile: DARSIE advances trace cursors
   inside its own skip phase, so those eliminations never pass through
   the fetch stage the SM instruments. *)
let finalize t =
  (match t.series with
  | Some s -> Obs.Series.record s ~cycle:t.cycle (sample_snapshot t.stats)
  | None -> ());
  pc_note t (fun p ->
      List.iter
        (fun (pc, (e : Obs.Pcstat.skip_entry)) ->
          Obs.Pcstat.note_skips p ~pc e.Obs.Pcstat.sk_hits)
        (skip_telemetry t))

(* A warp has issued everything when its trace cursor is exhausted and its
   I-buffer has drained. *)
let warp_drained (w : Engine.wctx) =
  Engine.warp_done w && Queue.is_empty w.Engine.ibuf

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* ------------------------------------------------------------------ *)
(* Writeback                                                           *)
(* ------------------------------------------------------------------ *)

let is_mem_class t idx =
  match t.kinfo.Kinfo.unit_of.(idx) with
  | Kinfo.Mem_global | Kinfo.Mem_shared -> true
  | Kinfo.Alu | Kinfo.Sfu | Kinfo.Ctrl -> false

(* Record one operation entering the pipeline between issue and
   writeback; every insertion site must go through here so the
   maintained counters ([n_inflight], [next_wb], per-warp
   [mem_inflight], [mshr_used]) stay consistent with the list.
   [mshrs] is the number of MSHR entries the op allocated (missed
   lines of a gated global load; 0 everywhere else). *)
let add_inflight ?(mshrs = 0) t (w : Engine.wctx) op ~finish =
  t.inflight <- { fly_warp = w; fly_op = op; finish; fly_mshrs = mshrs }
                :: t.inflight;
  t.n_inflight <- t.n_inflight + 1;
  if finish < t.next_wb then t.next_wb <- finish;
  if mshrs > 0 then w.Engine.mshr_used <- w.Engine.mshr_used + mshrs;
  if is_mem_class t op.Record.idx then
    w.Engine.mem_inflight <- w.Engine.mem_inflight + 1

let writeback t =
  if t.next_wb <= t.cycle then begin
    (* [next_wb] is the minimum pending finish, so entering here means at
       least one operation completes this cycle. *)
    t.last_wb_cycle <- t.cycle;
    let stats = t.stats in
    let still = ref [] in
    let nwb = ref max_int in
    List.iter
      (fun f ->
        if f.finish <= t.cycle then begin
          let w = f.fly_warp in
          (match t.kinfo.Kinfo.dst_reg.(f.fly_op.Record.idx) with
          | Some d ->
            w.Engine.pending.(d) <- w.Engine.pending.(d) - 1;
            w.Engine.pending_count <- w.Engine.pending_count - 1;
            stats.Stats.rf_writes <- stats.Stats.rf_writes + 1
          | None -> ());
          t.slots.(w.Engine.tb_slot).inflight_ops <-
            t.slots.(w.Engine.tb_slot).inflight_ops - 1;
          t.n_inflight <- t.n_inflight - 1;
          if f.fly_mshrs > 0 then
            w.Engine.mshr_used <- w.Engine.mshr_used - f.fly_mshrs;
          if is_mem_class t f.fly_op.Record.idx then
            w.Engine.mem_inflight <- w.Engine.mem_inflight - 1;
          t.engine.Engine.on_writeback ~cycle:t.cycle w f.fly_op
        end
        else begin
          if f.finish < !nwb then nwb := f.finish;
          still := f :: !still
        end)
      t.inflight;
    t.inflight <- !still;
    t.next_wb <- !nwb
  end

(* ------------------------------------------------------------------ *)
(* Barrier release and TB retirement                                   *)
(* ------------------------------------------------------------------ *)

(* Barrier presence is tracked incrementally: [slot.n_at_barrier] is
   bumped when a Ctrl issue parks a warp at a barrier and zeroed on
   release and TB launch, so the per-cycle scans the old code did are a
   single integer test. Debug builds cross-check the counter against a
   recount. *)
let count_at_barrier t slot_idx =
  let base = slot_idx * t.warps_per_tb in
  let n = ref 0 in
  for k = 0 to t.warps_per_tb - 1 do
    match t.warps.(base + k) with
    | Some w when w.Engine.at_barrier -> incr n
    | _ -> ()
  done;
  !n

let barriers_and_retirement t =
  let wpt = t.warps_per_tb in
  for slot_idx = 0 to Array.length t.slots - 1 do
    let slot = t.slots.(slot_idx) in
    if slot.occupied then begin
      let base = slot_idx * wpt in
      assert (slot.n_at_barrier = count_at_barrier t slot_idx);
      if slot.n_at_barrier > 0 then begin
        t.stats.Stats.barrier_stall_cycles <-
          t.stats.Stats.barrier_stall_cycles + slot.n_at_barrier;
        let all_arrived = ref true in
        for k = 0 to wpt - 1 do
          match t.warps.(base + k) with
          | Some w when (not w.Engine.at_barrier) && not (warp_drained w) ->
            all_arrived := false
          | _ -> ()
        done;
        (* The barrier network takes barrier_lat cycles from last-warp
           arrival to release. *)
        if !all_arrived && slot.barrier_release_at < 0 then
          slot.barrier_release_at <- t.cycle + t.cfg.Config.barrier_lat;
        if slot.barrier_release_at >= 0 && t.cycle >= slot.barrier_release_at
        then begin
          for k = 0 to wpt - 1 do
            match t.warps.(base + k) with
            | Some w -> w.Engine.at_barrier <- false
            | None -> ()
          done;
          slot.n_at_barrier <- 0;
          slot.barrier_release_at <- -1;
          emit t ~warp:slot_idx Obs.Event.Barrier_release
        end
      end;
      (* Retirement: all warps drained, nothing in flight, none parked
         at a barrier. *)
      if slot.inflight_ops = 0 && slot.n_at_barrier = 0 then begin
        let all_drained = ref true in
        for k = 0 to wpt - 1 do
          match t.warps.(base + k) with
          | Some w when not (warp_drained w) -> all_drained := false
          | _ -> ()
        done;
        if !all_drained then begin
          slot.occupied <- false;
          for k = 0 to wpt - 1 do
            t.warps.(base + k) <- None
          done;
          t.tbs_retired <- t.tbs_retired + 1;
          emit t ~warp:slot_idx Obs.Event.Tb_finish;
          t.engine.Engine.on_tb_finish ~tb_slot:slot_idx
        end
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Issue                                                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic architectural register -> bank map; renamed (DARSIE)
   registers live in a strided region of the same banks, which is how
   follower reads create extra conflicts. *)
let bank_of t (w : Engine.wctx) reg =
  ((w.Engine.wid * t.kinfo.Kinfo.kernel.Darsie_isa.Kernel.nregs) + reg)
  mod t.cfg.Config.rf_banks

let scoreboard_ready (w : Engine.wctx) kinfo idx =
  let srcs = kinfo.Kinfo.src_regs.(idx) in
  List.for_all (fun r -> w.Engine.pending.(r) = 0) srcs
  &&
  match kinfo.Kinfo.dst_reg.(idx) with
  | Some d -> w.Engine.pending.(d) = 0
  | None -> true

type issue_budget = {
  mutable mem_left : int;
  mutable sfu_left : int;
}

(* Structural memory-limit gate for the head instruction at [idx] of
   warp [w]: true when a configured fidelity knob blocks issue this
   cycle — the shared port is still serializing a bank-conflict replay
   (smem_banks > 0), or a global load finds no free MSHR (mshrs > 0).
   Both knobs default to 0, making this a constant [false] and keeping
   the default model bit-identical. Cycles lost here are charged to the
   [Mem_struct] bucket by [classify_stall]. *)
let mem_struct_blocked t (w : Engine.wctx) idx =
  let cfg = t.cfg in
  match t.kinfo.Kinfo.unit_of.(idx) with
  | Kinfo.Mem_shared -> cfg.Config.smem_banks > 0 && t.cycle <= t.smem_replay_until
  | Kinfo.Mem_global ->
    cfg.Config.mshrs > 0
    && (not t.kinfo.Kinfo.is_store.(idx))
    && (not t.kinfo.Kinfo.is_atomic.(idx))
    && w.Engine.mshr_used >= cfg.Config.mshrs
  | Kinfo.Alu | Kinfo.Sfu | Kinfo.Ctrl -> false

(* One DRAM channel access from the issue stage. The serial loop
   consults the shared channel directly. A sharded SM defers: the
   request is queued locally (no cross-domain traffic) under a
   [max_int] placeholder completion, and the epoch barrier replays
   every SM's queue against the real channel in canonical order
   ([commit_epoch]), patching the in-flight records. Sound because the
   epoch length is capped at [l1_lat + dram_lat]: a request issued
   inside an epoch finishes strictly after it, so a placeholder is
   never consulted before it is patched. *)
let dram_request t ~now ~ntxns =
  if not t.dram_defer then Mem_model.Dram.request t.dram ~now ~ntxns
  else begin
    let req = { dq_now = now; dq_ntxns = ntxns; dq_fly = None } in
    t.dram_q <- req :: t.dram_q;
    t.dram_patch <- Some req;
    max_int
  end

(* Issue one op from warp [w]; returns false if the head op cannot issue. *)
let try_issue_head t budget (w : Engine.wctx) =
  if w.Engine.at_barrier then false
  else
    match Queue.peek_opt w.Engine.ibuf with
    | None -> false
    | Some (op, fetch_cycle) ->
      let idx = op.Record.idx in
      let kinfo = t.kinfo in
      let unit_class = kinfo.Kinfo.unit_of.(idx) in
      let structural_ok =
        match unit_class with
        | Kinfo.Mem_global | Kinfo.Mem_shared -> budget.mem_left > 0
        | Kinfo.Sfu -> budget.sfu_left > 0
        | Kinfo.Alu | Kinfo.Ctrl -> true
      in
      (* operand collection: instructions reading registers need a free
         operand-collector unit *)
      let collector =
        if kinfo.Kinfo.nsrcs.(idx) = 0 then Some (-1)
        else begin
          let found = ref None in
          Array.iteri
            (fun u busy -> if !found = None && busy <= t.cycle then found := Some u)
            t.collectors;
          !found
        end
      in
      if fetch_cycle >= t.cycle || not structural_ok || collector = None
         || (not (scoreboard_ready w kinfo idx))
         || mem_struct_blocked t w idx
      then false
      else begin
        ignore (Queue.pop w.Engine.ibuf);
        let stats = t.stats in
        let cfg = t.cfg in
        let mshrs_alloc = ref 0 in
        w.Engine.last_issued <- t.cycle;
        t.issue_slots_used <- t.issue_slots_used + 1;
        if t.issue_slots_used = 1 then t.active_pc <- idx;
        (match t.engine.Engine.on_issue ~cycle:t.cycle w op with
        | Engine.Drop ->
          (* Eliminated at issue (UV): consumed fetch/decode and an issue
             slot but no execution resources; the reuse-buffer value is
             available to dependents next cycle. *)
          stats.Stats.dropped_issue <- stats.Stats.dropped_issue + 1;
          pc_note t (fun p -> Obs.Pcstat.note_drop p ~pc:idx);
          emit t ~warp:w.Engine.wid Obs.Event.Drop_at_issue;
          (match kinfo.Kinfo.shape.(idx) with
          | Darsie_compiler.Marking.Uniform ->
            stats.Stats.elim_uniform <- stats.Stats.elim_uniform + 1
          | Darsie_compiler.Marking.Affine ->
            stats.Stats.elim_affine <- stats.Stats.elim_affine + 1
          | Darsie_compiler.Marking.Unstructured | Darsie_compiler.Marking.Varying ->
            stats.Stats.elim_unstructured <- stats.Stats.elim_unstructured + 1);
          (match kinfo.Kinfo.dst_reg.(idx) with
          | Some d ->
            w.Engine.pending.(d) <- w.Engine.pending.(d) + 1;
            w.Engine.pending_count <- w.Engine.pending_count + 1;
            t.slots.(w.Engine.tb_slot).inflight_ops <-
              t.slots.(w.Engine.tb_slot).inflight_ops + 1;
            add_inflight t w op ~finish:(t.cycle + 1)
          | None -> ())
        | Engine.Execute ->
          stats.Stats.issued <- stats.Stats.issued + 1;
          pc_note t (fun p -> Obs.Pcstat.note_issue p ~pc:idx);
          stats.Stats.executed_threads <-
            stats.Stats.executed_threads + popcount op.Record.active;
          emit t ~warp:w.Engine.wid Obs.Event.Issue;
          (* Register file reads and bank conflicts. *)
          let conflicts = ref 0 in
          List.iter
            (fun r ->
              let b = bank_of t w r in
              if t.bank_use.(b) > 0 then incr conflicts;
              t.bank_use.(b) <- t.bank_use.(b) + 1;
              stats.Stats.rf_reads <- stats.Stats.rf_reads + 1)
            kinfo.Kinfo.src_regs.(idx);
          stats.Stats.rf_bank_conflicts <-
            stats.Stats.rf_bank_conflicts + !conflicts;
          (match collector with
          | Some u when u >= 0 -> t.collectors.(u) <- t.cycle + 2 + !conflicts
          | _ -> ());
          let finish =
            match unit_class with
            | Kinfo.Alu ->
              stats.Stats.alu_ops <- stats.Stats.alu_ops + 1;
              t.cycle + cfg.Config.alu_lat + !conflicts
            | Kinfo.Ctrl ->
              if kinfo.Kinfo.is_barrier.(idx) then w.Engine.at_barrier <- true
              else if kinfo.Kinfo.is_branch.(idx) && cfg.Config.sync_at_branches
              then w.Engine.at_barrier <- true;
              if w.Engine.at_barrier then begin
                (* the issue guard rejects warps already at a barrier, so
                   this transition is always false -> true *)
                t.slots.(w.Engine.tb_slot).n_at_barrier <-
                  t.slots.(w.Engine.tb_slot).n_at_barrier + 1;
                t.last_barrier_pc <- idx;
                emit t ~warp:w.Engine.wid Obs.Event.Barrier_arrive
              end;
              t.cycle + cfg.Config.alu_lat
            | Kinfo.Sfu ->
              budget.sfu_left <- budget.sfu_left - 1;
              stats.Stats.sfu_ops <- stats.Stats.sfu_ops + 1;
              t.cycle + cfg.Config.sfu_lat + !conflicts
            | Kinfo.Mem_shared ->
              budget.mem_left <- budget.mem_left - 1;
              stats.Stats.mem_ops <- stats.Stats.mem_ops + 1;
              emit t ~warp:w.Engine.wid Obs.Event.Mem_access;
              let banks =
                if cfg.Config.smem_banks > 0 then cfg.Config.smem_banks
                else cfg.Config.warp_size
              in
              let sc =
                Mem_model.shared_conflicts ~banks op.Record.accesses
              in
              stats.Stats.shared_accesses <-
                stats.Stats.shared_accesses + 1 + sc;
              stats.Stats.shared_bank_conflicts <-
                stats.Stats.shared_bank_conflicts + sc;
              (* Conflict replay: the shared port stays busy while the
                 [sc] replay passes serialize; the gate above keeps
                 further shared accesses out until it frees. *)
              if cfg.Config.smem_banks > 0 && sc > 0 then begin
                t.smem_replay_until <- t.cycle + sc;
                t.smem_replay_pc <- idx;
                stats.Stats.smem_replay_cycles <-
                  stats.Stats.smem_replay_cycles + sc
              end;
              t.cycle + cfg.Config.shared_lat + sc + !conflicts
            | Kinfo.Mem_global ->
              budget.mem_left <- budget.mem_left - 1;
              stats.Stats.mem_ops <- stats.Stats.mem_ops + 1;
              emit t ~warp:w.Engine.wid Obs.Event.Mem_access;
              let lines =
                Mem_model.coalesce ~line_bytes:cfg.Config.l1_line
                  op.Record.accesses
              in
              let nlines = List.length lines in
              if kinfo.Kinfo.is_atomic.(idx) then begin
                (* Atomics bypass the L1 and serialize at DRAM. *)
                t.engine.Engine.on_store ~atomic:true w;
                stats.Stats.dram_transactions <-
                  stats.Stats.dram_transactions + nlines;
                emit t ~warp:w.Engine.wid Obs.Event.Dram_txn;
                dram_request t ~now:(t.cycle + cfg.Config.l1_lat) ~ntxns:nlines
              end
              else if kinfo.Kinfo.is_store.(idx) then begin
                (* Write-through, no-allocate: stores drain to DRAM and do
                   not stall the pipeline. *)
                t.engine.Engine.on_store ~atomic:false w;
                stats.Stats.l1_accesses <- stats.Stats.l1_accesses + nlines;
                stats.Stats.dram_transactions <-
                  stats.Stats.dram_transactions + nlines;
                emit t ~warp:w.Engine.wid Obs.Event.Dram_txn;
                ignore
                  (dram_request t ~now:(t.cycle + cfg.Config.l1_lat)
                     ~ntxns:nlines);
                (* the store's own finish is latency-independent of DRAM;
                   the queued request only matters for channel ordering *)
                t.dram_patch <- None;
                t.cycle + cfg.Config.alu_lat
              end
              else begin
                stats.Stats.l1_accesses <- stats.Stats.l1_accesses + nlines;
                let misses =
                  List.fold_left
                    (fun acc line ->
                      if Mem_model.L1.access t.l1 line then acc else acc + 1)
                    0 lines
                in
                stats.Stats.l1_misses <- stats.Stats.l1_misses + misses;
                if misses = 0 then
                  t.cycle + cfg.Config.l1_lat + nlines - 1 + !conflicts
                else begin
                  (* the gate guaranteed at least one free MSHR; the
                     load allocates one per missed line, released at
                     writeback *)
                  if cfg.Config.mshrs > 0 then mshrs_alloc := misses;
                  stats.Stats.dram_transactions <-
                    stats.Stats.dram_transactions + misses;
                  emit t ~warp:w.Engine.wid Obs.Event.L1_miss;
                  emit t ~warp:w.Engine.wid Obs.Event.Dram_txn;
                  dram_request t ~now:(t.cycle + cfg.Config.l1_lat)
                    ~ntxns:misses
                end
              end
          in
          (match unit_class with
          | Kinfo.Mem_global | Kinfo.Mem_shared ->
            pc_note t (fun p ->
                Obs.Pcstat.note_mem_latency p ~pc:idx ~lat:(finish - t.cycle))
          | Kinfo.Alu | Kinfo.Sfu | Kinfo.Ctrl -> ());
          (* Track every executed op for TB retirement; register release
             happens at writeback only for ops that write one. *)
          (match kinfo.Kinfo.dst_reg.(idx) with
          | Some d ->
            w.Engine.pending.(d) <- w.Engine.pending.(d) + 1;
            w.Engine.pending_count <- w.Engine.pending_count + 1
          | None -> ());
          t.slots.(w.Engine.tb_slot).inflight_ops <-
            t.slots.(w.Engine.tb_slot).inflight_ops + 1;
          add_inflight ~mshrs:!mshrs_alloc t w op ~finish;
          (* Deferred DRAM: bind the queued request to the in-flight
             record just consed so [commit_epoch] can patch its real
             completion cycle in. *)
          (match t.dram_patch with
          | Some req ->
            req.dq_fly <- Some (List.hd t.inflight);
            t.dram_patch <- None
          | None -> ()));
        true
      end

(* Candidates: warps with an issueable head. Top-level (not a per-cycle
   closure) so the issue stage allocates nothing on the steady path. *)
let issueable t wid =
  match t.warps.(wid) with
  | Some w when not w.Engine.at_barrier -> (
    match Queue.peek_opt w.Engine.ibuf with
    | Some (op, fc) ->
      fc < t.cycle
      && scoreboard_ready w t.kinfo op.Record.idx
      (* structural memory gates (MSHR / replay port) hide the warp from
         the schedulers so GTO moves on instead of sticking to it *)
      && not (mem_struct_blocked t w op.Record.idx)
    | None -> false)
  | _ -> false

let pick_warp t sched =
  let cfg = t.cfg in
  let nw = Array.length t.warps in
  match cfg.Config.scheduler with
  | Config.Gto ->
    (* Greedy-then-oldest: stick with the last warp this scheduler
       issued from; otherwise take the lowest warp slot (oldest TB). *)
    let g = t.greedy.(sched) in
    if g >= 0 && g mod cfg.Config.num_schedulers = sched && issueable t g
    then g
    else begin
      let found = ref (-1) in
      let wid = ref sched in
      while !found < 0 && !wid < nw do
        if issueable t !wid then found := !wid;
        wid := !wid + cfg.Config.num_schedulers
      done;
      !found
    end
  | Config.Lrr ->
    (* Loose round robin: resume scanning after the last pick. *)
    let per_sched =
      (nw + cfg.Config.num_schedulers - 1) / cfg.Config.num_schedulers
    in
    let last = t.greedy.(sched) in
    let start =
      if last >= 0 then ((last - sched) / cfg.Config.num_schedulers) + 1
      else 0
    in
    let found = ref (-1) in
    let k = ref 0 in
    while !found < 0 && !k < per_sched do
      let slot = (start + !k) mod per_sched in
      let wid = sched + (slot * cfg.Config.num_schedulers) in
      if wid < nw && issueable t wid then found := wid;
      incr k
    done;
    !found

let issue t =
  Array.fill t.bank_use 0 (Array.length t.bank_use) 0;
  let cfg = t.cfg in
  let budget =
    { mem_left = cfg.Config.mem_per_cycle; sfu_left = cfg.Config.sfu_per_cycle }
  in
  for sched = 0 to cfg.Config.num_schedulers - 1 do
    match pick_warp t sched with
    | -1 -> t.greedy.(sched) <- -1
    | wid ->
      t.greedy.(sched) <- wid;
      (match t.warps.(wid) with
      | None -> ()
      | Some w ->
        let issued = ref 0 in
        while
          !issued < cfg.Config.issue_per_scheduler && try_issue_head t budget w
        do
          incr issued
        done)
  done

(* ------------------------------------------------------------------ *)
(* Fetch                                                               *)
(* ------------------------------------------------------------------ *)

(* Skip-ledger fate of one eligible occurrence passing the fetch slot.
   Launch-time demotion (CR whose xdim condition failed) is decided here
   from static information; everything else is the engine's story. An
   occurrence the engine removed or skipped pre-fetch never reaches this
   point — those fates are recorded at the elimination site. *)
let note_exec_fate t (w : Engine.wctx) (op : Record.op) =
  let idx = op.Record.idx in
  if t.kinfo.Kinfo.marked_eligible.(idx) then
    let fate =
      if not t.kinfo.Kinfo.tb_redundant.(idx) then Obs.Ledger.Demoted_at_launch
      else t.engine.Engine.exec_fate w op
    in
    Obs.Ledger.note t.ledger ~pc:idx fate

let fetch t =
  let cfg = t.cfg in
  t.fetch_mutated <- false;
  let nw = Array.length t.warps in
  if nw = 0 then ()
  else begin
    let fetched = ref 0 and scanned = ref 0 in
    let ptr = ref t.fetch_ptr in
    while !fetched < cfg.Config.fetch_width && !scanned < nw do
      (match t.warps.(!ptr mod nw) with
      | Some w
        when (not w.Engine.finished)
             && (not w.Engine.at_barrier)
             && t.cycle >= w.Engine.fetch_ready_at
             && Queue.length w.Engine.ibuf < cfg.Config.ibuf_depth
             && (not (Engine.warp_done w))
             && t.engine.Engine.can_fetch w -> begin
        (* Fetch a bundle of up to [issue_width] sequential instructions
           from the selected warp in this one cycle (dual-issue
           superscalar fetch at 2). Every bundle slot independently
           re-runs the zero-cost removal loop and re-consults the
           engine's fetch gate, so a leader the engine skipped or
           removed can pair with its follower; an I-cache miss or a
           full I-buffer ends the bundle. The warp consumes one
           [fetch_width] slot regardless of bundle fill. *)
        let slot_used = ref false in
        let bundle_left = ref cfg.Config.issue_width in
        let continue_slot = ref true in
        while !continue_slot do
          continue_slot := false;
          (* Zero-cost stream removal (DAC-IDEAL). *)
          let continue_removing = ref true in
          while !continue_removing do
            match Engine.next_op w with
            | Some op when t.engine.Engine.remove_at_fetch w op ->
              t.fetch_mutated <- true;
              if t.kinfo.Kinfo.marked_eligible.(op.Record.idx) then
                Obs.Ledger.note t.ledger ~pc:op.Record.idx Obs.Ledger.Skipped;
              w.Engine.fi <- w.Engine.fi + 1;
              t.stats.Stats.skipped_prefetch <-
                t.stats.Stats.skipped_prefetch + 1;
              pc_note t (fun p -> Obs.Pcstat.note_skip p ~pc:op.Record.idx);
              emit t ~warp:w.Engine.wid Obs.Event.Skip_prefetch;
              (match t.kinfo.Kinfo.shape.(op.Record.idx) with
              | Darsie_compiler.Marking.Uniform ->
                t.stats.Stats.elim_uniform <- t.stats.Stats.elim_uniform + 1
              | Darsie_compiler.Marking.Affine ->
                t.stats.Stats.elim_affine <- t.stats.Stats.elim_affine + 1
              | Darsie_compiler.Marking.Unstructured
              | Darsie_compiler.Marking.Varying ->
                t.stats.Stats.elim_unstructured <-
                  t.stats.Stats.elim_unstructured + 1)
            | _ -> continue_removing := false
          done;
          match Engine.next_op w with
          | Some op ->
            if not !slot_used then begin
              slot_used := true;
              incr fetched
            end;
            t.fetch_mutated <- true;
            let pc = Darsie_isa.Kernel.pc_of_index op.Record.idx in
            if Mem_model.L1.access t.icache pc then begin
              t.stats.Stats.fetched <- t.stats.Stats.fetched + 1;
              pc_note t (fun p -> Obs.Pcstat.note_fetch p ~pc:op.Record.idx);
              emit t ~warp:w.Engine.wid Obs.Event.Fetch;
              note_exec_fate t w op;
              Queue.push (op, t.cycle) w.Engine.ibuf;
              w.Engine.fi <- w.Engine.fi + 1;
              decr bundle_left;
              if
                !bundle_left > 0
                && Queue.length w.Engine.ibuf < cfg.Config.ibuf_depth
                && (not (Engine.warp_done w))
                (* [can_fetch] is stale once [fi] moved: the follower
                   slot must re-consult the engine at the new cursor, or
                   a warp could fetch past a branch sync it never
                   arrived at. *)
                && t.engine.Engine.recheck_fetch w
              then continue_slot := true
            end
            else begin
              (* I-cache miss: the line fills and the warp refetches *)
              t.stats.Stats.icache_misses <- t.stats.Stats.icache_misses + 1;
              emit t ~warp:w.Engine.wid Obs.Event.Icache_miss;
              w.Engine.fetch_ready_at <- t.cycle + cfg.Config.icache_miss_lat
            end
          | None -> ()
        done;
        if !slot_used then t.fetch_ptr <- (!ptr + 1) mod nw
      end
      | _ -> ());
      incr ptr;
      incr scanned
    done;
    if !fetched = 0 then
      t.stats.Stats.fetch_stall_cycles <- t.stats.Stats.fetch_stall_cycles + 1
  end

(* ------------------------------------------------------------------ *)
(* Stall-cycle attribution                                             *)
(* ------------------------------------------------------------------ *)

(* PC of the in-flight memory op finishing soonest for warp [w] (or for
   any warp when [w] is [None]); the instruction a memory-bound cycle is
   most fairly blamed on. -1 when nothing qualifies. Ties on the finish
   cycle break toward the lower PC so the blame is independent of the
   in-flight list's order — a requirement for fast-forward bit-identity,
   since the stepped path rebuilds (and reorders) the list per cycle. *)
let nearest_inflight_pc ?w t =
  let best_fin = ref max_int in
  let best_pc = ref (-1) in
  List.iter
    (fun f ->
      let mine = match w with None -> true | Some w -> f.fly_warp == w in
      let is_mem = is_mem_class t f.fly_op.Record.idx in
      if mine && (w = None || is_mem) then begin
        let pc = f.fly_op.Record.idx in
        if
          f.finish < !best_fin
          || (f.finish = !best_fin && (pc < !best_pc || !best_pc < 0))
        then begin
          best_fin := f.finish;
          best_pc := pc
        end
      end)
    t.inflight;
  !best_pc

let head_pc (w : Engine.wctx) =
  match Queue.peek_opt w.Engine.ibuf with
  | Some (op, _) -> op.Record.idx
  | None -> -1

let next_pc (w : Engine.wctx) =
  match Engine.next_op w with Some op -> op.Record.idx | None -> -1

(* Classify one cycle into exactly one Attrib bucket, and name the static
   instruction blocking progress (-1 = the none-row). Called at the end
   of [step], so "aged" I-buffer heads (fetch_cycle < cycle) are exactly
   the ones the issue stage considered and rejected this cycle. Pcstat
   and Attrib are both fed from this single result, which is what makes
   the per-PC table conservative by construction. *)
(* The non-issuing-cycle half of the classification, shared by [step]
   and the fast-forward bulk charge. Allocation-free: the old list
   builds ([runnable], [aged_blocked]) are replaced by direct scans over
   the warp array in the same order, so the chosen bucket and blocking
   PC are identical. *)
let classify_stall t =
  let nw = Array.length t.warps in
  let any_runnable = ref false in
  let all_barrier = ref true in
  let first_nonbarrier = ref (-1) in
  for i = 0 to nw - 1 do
    match t.warps.(i) with
    | Some w when not (warp_drained w) ->
      any_runnable := true;
      if not w.Engine.at_barrier then begin
        all_barrier := false;
        if !first_nonbarrier < 0 then first_nonbarrier := i
      end
    | _ -> ()
  done;
  if not !any_runnable then
    if t.inflight <> [] then (Obs.Attrib.Mem_pending, nearest_inflight_pc t)
    else (Obs.Attrib.Idle, -1)
  else if !all_barrier then (Obs.Attrib.Barrier, t.last_barrier_pc)
  else begin
    (* Warps whose head instruction was old enough to issue but did not:
       operand (scoreboard) or issue-resource blocked. *)
    let first_aged = ref (-1) in
    let i = ref 0 in
    while !first_aged < 0 && !i < nw do
      (match t.warps.(!i) with
      | Some w when (not (warp_drained w)) && not w.Engine.at_barrier -> (
        match Queue.peek_opt w.Engine.ibuf with
        | Some (_, fc) when fc < t.cycle -> first_aged := !i
        | _ -> ())
      | _ -> ());
      incr i
    done;
    if !first_aged >= 0 then begin
      let mem_w = ref None in
      let i = ref !first_aged in
      while !mem_w = None && !i < nw do
        (match t.warps.(!i) with
        | Some w when (not (warp_drained w)) && not w.Engine.at_barrier -> (
          match Queue.peek_opt w.Engine.ibuf with
          | Some (op, fc)
            when fc < t.cycle
                 && (not (scoreboard_ready w t.kinfo op.Record.idx))
                 && w.Engine.mem_inflight > 0 ->
            mem_w := Some w
          | _ -> ())
        | _ -> ());
        incr i
      done;
      match !mem_w with
      | Some w -> (Obs.Attrib.Mem_pending, nearest_inflight_pc ~w t)
      | None ->
        (* Structural memory gates (fidelity knobs): an aged head that
           cleared the scoreboard but was held back by a full MSHR file
           or the busy shared replay port. The scan is skipped entirely
           at the default knob settings, where the gate is constant
           false, so the classification is unchanged. *)
        let struct_w = ref None in
        if t.cfg.Config.mshrs > 0 || t.cfg.Config.smem_banks > 0 then begin
          let i = ref !first_aged in
          while !struct_w = None && !i < nw do
            (match t.warps.(!i) with
            | Some w when (not (warp_drained w)) && not w.Engine.at_barrier -> (
              match Queue.peek_opt w.Engine.ibuf with
              | Some (op, fc)
                when fc < t.cycle
                     && scoreboard_ready w t.kinfo op.Record.idx
                     && mem_struct_blocked t w op.Record.idx ->
                struct_w := Some (w, op.Record.idx)
              | _ -> ())
            | _ -> ());
            incr i
          done
        end;
        (match !struct_w with
        | Some (w, idx) ->
          (* blame the access occupying the port, or the nearest of the
             warp's own in-flight misses holding its MSHRs *)
          let pc =
            match t.kinfo.Kinfo.unit_of.(idx) with
            | Kinfo.Mem_shared -> t.smem_replay_pc
            | _ -> nearest_inflight_pc ~w t
          in
          (Obs.Attrib.Mem_struct, pc)
        | None ->
          let pc =
            match t.warps.(!first_aged) with
            | Some w -> head_pc w
            | None -> -1
          in
          (Obs.Attrib.Scoreboard, pc))
    end
    else begin
      let gated = ref None in
      let i = ref 0 in
      while !gated = None && !i < nw do
        (match t.warps.(!i) with
        | Some w
          when (not (warp_drained w))
               && (not w.Engine.at_barrier)
               && Queue.is_empty w.Engine.ibuf
               && not (t.engine.Engine.can_fetch w) ->
          gated := Some w
        | _ -> ());
        incr i
      done;
      match !gated with
      | Some w -> (Obs.Attrib.Darsie_sync, next_pc w)
      | None ->
        let pc =
          match t.warps.(!first_nonbarrier) with
          | Some w -> (match head_pc w with -1 -> next_pc w | p -> p)
          | None -> -1
        in
        (Obs.Attrib.Fetch_starved, pc)
    end
  end

let classify_cycle t =
  if t.issue_slots_used > 0 then (Obs.Attrib.Active, t.active_pc)
  else classify_stall t

let step t =
  t.cycle <- t.cycle + 1;
  t.stats.Stats.cycles <- t.cycle;
  t.issue_slots_used <- 0;
  writeback t;
  barriers_and_retirement t;
  issue t;
  if Obs.Sink.enabled t.sink then begin
    (* The engine's skip phase mutates counters internally; emit the
       per-cycle deltas as aggregate (warp = -1) events. *)
    let sp0 = t.stats.Stats.skipped_prefetch in
    let ds0 = t.stats.Stats.darsie_sync_stalls in
    t.engine.Engine.cycle_skip ~cycle:t.cycle;
    for _ = 1 to t.stats.Stats.skipped_prefetch - sp0 do
      emit t ~warp:(-1) Obs.Event.Skip_prefetch
    done;
    for _ = 1 to t.stats.Stats.darsie_sync_stalls - ds0 do
      emit t ~warp:(-1) Obs.Event.Darsie_sync_stall
    done
  end
  else t.engine.Engine.cycle_skip ~cycle:t.cycle;
  fetch t;
  let bucket, blocking_pc = classify_cycle t in
  Obs.Attrib.bump t.attr bucket;
  pc_note t (fun p -> Obs.Pcstat.charge p ~pc:blocking_pc bucket);
  (* Sharded-loop watchdog bookkeeping: remember the last cycle this SM
     fetched, issued, dropped or skipped anything (mirrors the serial
     loop's global [progress_token] comparison). *)
  let tok = progress_token t in
  if tok <> t.progress_snapshot then begin
    t.progress_snapshot <- tok;
    t.last_progress <- t.cycle
  end;
  match t.series with
  | Some s when Obs.Series.boundary s ~cycle:t.cycle ->
    Obs.Series.record s ~cycle:t.cycle (sample_snapshot t.stats)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Event-driven fast-forwarding                                        *)
(* ------------------------------------------------------------------ *)

(* Earliest future cycle at which stepping this SM could do anything
   observable, evaluated between two [step] calls. [max_int] means "no
   event will ever fire here" (an idle or deadlocked SM — deadlocks must
   keep stepping so the watchdog sees them). The computation is
   deliberately conservative: any doubt returns [cycle + 1], which just
   disables jumping for a cycle. Sources:

   - the engine's skip phase was not a no-op last cycle (it must keep
     running every cycle), or this cycle's fetch advanced a warp after
     the skip phase ran and made its quiescence snapshot stale;
   - the earliest pending writeback ([next_wb]);
   - barrier machinery: a pending release fires at [barrier_release_at];
     a fully-arrived barrier whose timer is not armed yet arms it next
     step; TB retirement (and thus a possible TB launch) happens next
     step once everything drained;
   - a warp whose I-buffer head clears the scoreboard can issue next
     cycle (structural/collector limits are ignored — conservative);
   - a fetch-capable warp wakes at [fetch_ready_at] (I-cache miss fill);
   - the next time-series sampling boundary, so interval records always
     come from a normally-stepped cycle. *)
let next_event_cycle t =
  (* Jumping needs the engine's last skip phase to have been steady —
     a pure per-cycle accumulation over frozen state, which repeats
     identically across the span and is charged by [Engine.bulk_skip].
     (Quiescence is not enough: a skip phase can mutate state, e.g.
     release a branch sync, without moving any stat counter.) The flag
     reflects a phase that ran before this cycle's fetch; when the skip
     phase inspects warp state, a fetch mutates state it has not seen,
     so a fetch forces one more normal step. *)
  if
    (not (t.engine.Engine.skip_steady ()))
    || (t.fetch_mutated && t.engine.Engine.skip_reads_warp_state)
  then
    if busy t then t.cycle + 1 else max_int
  else begin
    let now1 = t.cycle + 1 in
    let wake = ref max_int in
    let note c = if c < !wake then wake := c in
    if t.inflight <> [] then note (max now1 t.next_wb);
    (* Fidelity-knob event sources. MSHR entries free at writeback, so
       their releases ride on [next_wb] above. The shared replay port
       frees the cycle after [smem_replay_until]; noting it bounds any
       jump at the port release. (A head blocked by either gate is
       scoreboard-ready, so the per-warp issue-side source below already
       pins the wake to [now1] whenever a warp is actually waiting —
       this source only matters when the port drains unobserved.) *)
    if t.smem_replay_until > t.cycle then
      note (max now1 (t.smem_replay_until + 1));
    let wpt = t.warps_per_tb in
    Array.iteri
      (fun slot_idx slot ->
        if slot.occupied && !wake > now1 then begin
          let base = slot_idx * wpt in
          let all_drained = ref true in
          let all_arrived = ref true in
          (* Once the wake is [now1] no later source can improve it; the
             remaining per-warp checks (and, harmlessly, the barrier and
             retirement notes below, which can only yield >= now1) are
             skipped. *)
          let k = ref 0 in
          while !k < wpt && !wake > now1 do
            (match t.warps.(base + !k) with
            | None -> ()
            | Some w ->
              let drained = warp_drained w in
              if not drained then begin
                all_drained := false;
                if not w.Engine.at_barrier then begin
                  all_arrived := false;
                  (* issue side: every buffered head is aged by the next
                     cycle, so a scoreboard-ready head can issue then *)
                  (match Queue.peek_opt w.Engine.ibuf with
                  | Some (op, _) ->
                    if scoreboard_ready w t.kinfo op.Record.idx then
                      note now1
                  | None -> ());
                  (* fetch side *)
                  if
                    !wake > now1
                    && Queue.length w.Engine.ibuf < t.cfg.Config.ibuf_depth
                    && (not (Engine.warp_done w))
                    && t.engine.Engine.can_fetch w
                  then note (max now1 w.Engine.fetch_ready_at)
                end
              end);
            incr k
          done;
          if slot.n_at_barrier > 0 then begin
            if slot.barrier_release_at >= 0 then
              note (max now1 slot.barrier_release_at)
            else if !all_arrived then note now1
          end
          else if slot.inflight_ops = 0 && !all_drained then
            (* retirement pending: the next step frees the slot and may
               trigger a TB launch *)
            note now1
        end)
      t.slots;
    (match t.series with
    | Some s ->
      let interval = Obs.Series.interval s in
      note (((t.cycle / interval) + 1) * interval)
    | None -> ());
    !wake
  end

(* Jump the clock to [to_], bulk-charging the skipped span exactly as
   stepping it would have: the stall classification is evaluated once at
   the first skipped cycle (with no events due before [to_ + 1], the SM
   state — and therefore the classification — is frozen across the
   span), then multiplied into the Attrib bucket, the per-PC charge and
   the per-cycle stall counters. Keeps [Gpu.check_attribution] true by
   construction: span cycles, span bucket charges, span per-PC charges. *)
let fast_forward t ~to_ =
  let span = to_ - t.cycle in
  if span > 0 then begin
    let landing = t.cycle in
    t.cycle <- landing + 1;
    let bucket, blocking_pc = classify_stall t in
    t.cycle <- to_;
    t.stats.Stats.cycles <- to_;
    Obs.Attrib.bump_n t.attr bucket span;
    pc_note t (fun p -> Obs.Pcstat.charge_n p ~pc:blocking_pc bucket ~n:span);
    (* the stepped path bumps these once per no-progress cycle *)
    if Array.length t.warps > 0 then
      t.stats.Stats.fetch_stall_cycles <-
        t.stats.Stats.fetch_stall_cycles + span;
    Array.iter
      (fun slot ->
        if slot.occupied && slot.n_at_barrier > 0 then
          t.stats.Stats.barrier_stall_cycles <-
            t.stats.Stats.barrier_stall_cycles + (span * slot.n_at_barrier))
      t.slots;
    (* Every skipped cycle is issue-less, and the stepped path resets
       each scheduler's greedy pick on issue-less cycles: without this
       a stale greedy warp would beat a lower, equally-ready warp out
       of the post-landing scan order and reorder issues vs stepping. *)
    Array.fill t.greedy 0 (Array.length t.greedy) (-1);
    (* the engine's skip phase would have run once per skipped cycle *)
    t.engine.Engine.bulk_skip ~cycle:to_ ~n:span;
    t.engine.Engine.on_fast_forward ~cycle:to_;
    (* bulk_skip can advance the skip counters, which the serial
       watchdog counts as progress at the landing cycle *)
    let tok = progress_token t in
    if tok <> t.progress_snapshot then begin
      t.progress_snapshot <- tok;
      t.last_progress <- to_
    end
  end

(* ------------------------------------------------------------------ *)
(* Epoch-batched DRAM commit (sharded cycle loop)                      *)
(* ------------------------------------------------------------------ *)

let tbs_retired t = t.tbs_retired
let last_wb_cycle t = t.last_wb_cycle
let last_progress t = t.last_progress

(* Replay every SM's deferred DRAM requests against the real channel in
   canonical serial order and patch the placeholder completions. The
   serial loop steps SMs cycle-by-cycle in SM-index order, so the shared
   channel observes requests ordered by (issue cycle, SM index, per-SM
   issue sequence). Each deferred request carries [dq_now] =
   issue cycle + l1_lat — the same constant offset for every site — so
   sorting by [dq_now] recovers the cycle order, a stable sort over the
   sm_id-ordered concatenation breaks ties by SM index, and each per-SM
   queue is already in issue order (reversed from the cons list).
   Returns the number of requests replayed (for telemetry). *)
let commit_epoch ~dram sms =
  let runs = ref [] in
  Array.iter
    (fun t ->
      if t.dram_q <> [] then begin
        (* cons list -> issue order *)
        runs := List.rev t.dram_q :: !runs;
        t.dram_q <- []
      end)
    sms;
  (* sm_id-ordered concatenation of issue-ordered runs *)
  let reqs = List.concat (List.rev !runs) in
  match reqs with
  | [] -> 0
  | _ ->
    let ordered =
      List.stable_sort (fun a b -> compare (a.dq_now : int) b.dq_now) reqs
    in
    List.iter
      (fun req ->
        let finish = Mem_model.Dram.request dram ~now:req.dq_now ~ntxns:req.dq_ntxns in
        match req.dq_fly with
        | Some fly -> fly.finish <- finish
        | None -> ())
      ordered;
    (* Placeholder finishes were [max_int], which never lowered
       [next_wb]; recompute it from the patched list. *)
    Array.iter
      (fun t ->
        if t.inflight <> [] then
          t.next_wb <-
            List.fold_left (fun acc f -> min acc f.finish) max_int t.inflight)
      sms;
    List.length ordered
