type t = {
  mutable cycles : int;
  mutable fetched : int;
  mutable icache_misses : int;
  mutable issued : int;
  mutable executed_threads : int;
  mutable skipped_prefetch : int;
  mutable dropped_issue : int;
  mutable elim_uniform : int;
  mutable elim_affine : int;
  mutable elim_unstructured : int;
  mutable rf_reads : int;
  mutable rf_writes : int;
  mutable alu_ops : int;
  mutable sfu_ops : int;
  mutable mem_ops : int;
  mutable shared_accesses : int;
  mutable shared_bank_conflicts : int;
  mutable smem_replay_cycles : int;
  mutable l1_accesses : int;
  mutable l1_misses : int;
  mutable dram_transactions : int;
  mutable rf_bank_conflicts : int;
  mutable barrier_stall_cycles : int;
  mutable fetch_stall_cycles : int;
  mutable darsie_sync_stalls : int;
  mutable skip_table_probes : int;
  mutable rename_accesses : int;
  mutable coalescer_probes : int;
  mutable majority_updates : int;
}

let create () =
  {
    cycles = 0;
    fetched = 0;
    icache_misses = 0;
    issued = 0;
    executed_threads = 0;
    skipped_prefetch = 0;
    dropped_issue = 0;
    elim_uniform = 0;
    elim_affine = 0;
    elim_unstructured = 0;
    rf_reads = 0;
    rf_writes = 0;
    alu_ops = 0;
    sfu_ops = 0;
    mem_ops = 0;
    shared_accesses = 0;
    shared_bank_conflicts = 0;
    smem_replay_cycles = 0;
    l1_accesses = 0;
    l1_misses = 0;
    dram_transactions = 0;
    rf_bank_conflicts = 0;
    barrier_stall_cycles = 0;
    fetch_stall_cycles = 0;
    darsie_sync_stalls = 0;
    skip_table_probes = 0;
    rename_accesses = 0;
    coalescer_probes = 0;
    majority_updates = 0;
  }

let add acc x =
  acc.cycles <- max acc.cycles x.cycles;
  acc.fetched <- acc.fetched + x.fetched;
  acc.icache_misses <- acc.icache_misses + x.icache_misses;
  acc.issued <- acc.issued + x.issued;
  acc.executed_threads <- acc.executed_threads + x.executed_threads;
  acc.skipped_prefetch <- acc.skipped_prefetch + x.skipped_prefetch;
  acc.dropped_issue <- acc.dropped_issue + x.dropped_issue;
  acc.elim_uniform <- acc.elim_uniform + x.elim_uniform;
  acc.elim_affine <- acc.elim_affine + x.elim_affine;
  acc.elim_unstructured <- acc.elim_unstructured + x.elim_unstructured;
  acc.rf_reads <- acc.rf_reads + x.rf_reads;
  acc.rf_writes <- acc.rf_writes + x.rf_writes;
  acc.alu_ops <- acc.alu_ops + x.alu_ops;
  acc.sfu_ops <- acc.sfu_ops + x.sfu_ops;
  acc.mem_ops <- acc.mem_ops + x.mem_ops;
  acc.shared_accesses <- acc.shared_accesses + x.shared_accesses;
  acc.shared_bank_conflicts <- acc.shared_bank_conflicts + x.shared_bank_conflicts;
  acc.smem_replay_cycles <- acc.smem_replay_cycles + x.smem_replay_cycles;
  acc.l1_accesses <- acc.l1_accesses + x.l1_accesses;
  acc.l1_misses <- acc.l1_misses + x.l1_misses;
  acc.dram_transactions <- acc.dram_transactions + x.dram_transactions;
  acc.rf_bank_conflicts <- acc.rf_bank_conflicts + x.rf_bank_conflicts;
  acc.barrier_stall_cycles <- acc.barrier_stall_cycles + x.barrier_stall_cycles;
  acc.fetch_stall_cycles <- acc.fetch_stall_cycles + x.fetch_stall_cycles;
  acc.darsie_sync_stalls <- acc.darsie_sync_stalls + x.darsie_sync_stalls;
  acc.skip_table_probes <- acc.skip_table_probes + x.skip_table_probes;
  acc.rename_accesses <- acc.rename_accesses + x.rename_accesses;
  acc.coalescer_probes <- acc.coalescer_probes + x.coalescer_probes;
  acc.majority_updates <- acc.majority_updates + x.majority_updates

let total_eliminated t = t.skipped_prefetch + t.dropped_issue

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d fetched=%d issued=%d skipped=%d dropped=%d (uni=%d aff=%d \
     unstr=%d) rf=%d/%d l1=%d/%d dram=%d sync_stalls=%d"
    t.cycles t.fetched t.issued t.skipped_prefetch t.dropped_issue
    t.elim_uniform t.elim_affine t.elim_unstructured t.rf_reads t.rf_writes
    t.l1_accesses t.l1_misses t.dram_transactions t.darsie_sync_stalls
