type scheduler = Gto | Lrr

type t = {
  num_sms : int;
  warp_size : int;
  max_warps_per_sm : int;
  max_tbs_per_sm : int;
  regfile_vregs : int;
  rf_banks : int;
  num_schedulers : int;
  scheduler : scheduler;
  issue_per_scheduler : int;
  fetch_width : int;
  issue_width : int;
  ibuf_depth : int;
  shared_bytes_per_sm : int;
  barrier_lat : int;
  alu_lat : int;
  sfu_lat : int;
  shared_lat : int;
  icache_bytes : int;
  icache_line : int;
  icache_miss_lat : int;
  collector_units : int;
  l1_lat : int;
  l1_bytes : int;
  l1_assoc : int;
  l1_line : int;
  dram_lat : int;
  dram_txn_cycles : int;
  mshrs : int;
  smem_banks : int;
  sfu_per_cycle : int;
  mem_per_cycle : int;
  sync_at_branches : bool;
  skip_entries_per_tb : int;
  rename_regs_per_tb : int;
  coalescer_ports : int;
  max_skips_per_warp_cycle : int;
  max_cycles : int;
  watchdog_cycles : int;
  fast_forward : bool;
  sm_domains : int;
  epoch_slack : int;
}

let default =
  {
    num_sms = 4;
    warp_size = 32;
    max_warps_per_sm = 64;
    max_tbs_per_sm = 32;
    regfile_vregs = 2048;
    rf_banks = 16;
    num_schedulers = 4;
    scheduler = Gto;
    issue_per_scheduler = 2;
    fetch_width = 2;
    issue_width = 1;
    ibuf_depth = 2;
    shared_bytes_per_sm = 96 * 1024;
    barrier_lat = 20;
    alu_lat = 4;
    sfu_lat = 16;
    shared_lat = 24;
    icache_bytes = 8 * 1024;
    icache_line = 128;
    icache_miss_lat = 50;
    collector_units = 8;
    l1_lat = 28;
    l1_bytes = 32 * 1024;
    l1_assoc = 8;
    l1_line = 128;
    dram_lat = 220;
    dram_txn_cycles = 2;
    mshrs = 0;
    smem_banks = 0;
    sfu_per_cycle = 1;
    mem_per_cycle = 1;
    sync_at_branches = false;
    skip_entries_per_tb = 8;
    rename_regs_per_tb = 32;
    coalescer_ports = 2;
    max_skips_per_warp_cycle = 8;
    max_cycles = 500_000_000;
    watchdog_cycles = 50_000;
    fast_forward = true;
    sm_domains = 1;
    epoch_slack = 0;
  }

let pp fmt c =
  Format.fprintf fmt
    "GPU        | %d SMs, %d warps/SM, %d thread blocks/SM@\n\
     SM         | %d SIMD width, %d vector registers per SM@\n\
     Scheduler  | %d warp schedulers/SM, %s scheduling, dual issue %d@\n\
     Frontend   | fetch width %d, bundle width %d, %d-entry I-buffers, %d KB \
     I-cache@\n\
     Shared mem | %d KB/SM, latency %d, %s@\n\
     L1         | %d KB, %d-way, %dB lines, hit latency %d@\n\
     DRAM       | latency %d, %d cycles/transaction, %s@\n\
     DARSIE     | %d skip entries/TB, %d rename regs/TB, %d coalescer ports@\n\
     Limits     | %d max cycles, watchdog %s"
    c.num_sms c.max_warps_per_sm c.max_tbs_per_sm c.warp_size c.regfile_vregs
    c.num_schedulers
    (match c.scheduler with Gto -> "GTO" | Lrr -> "LRR")
    c.issue_per_scheduler c.fetch_width c.issue_width c.ibuf_depth
    (c.icache_bytes / 1024)
    (c.shared_bytes_per_sm / 1024)
    c.shared_lat
    (if c.smem_banks = 0 then "no bank-conflict replay"
     else Printf.sprintf "%d banks with conflict replay" c.smem_banks)
    (c.l1_bytes / 1024) c.l1_assoc c.l1_line c.l1_lat c.dram_lat
    c.dram_txn_cycles
    (if c.mshrs = 0 then "unlimited MSHRs"
     else Printf.sprintf "%d MSHRs/warp" c.mshrs)
    c.skip_entries_per_tb c.rename_regs_per_tb c.coalescer_ports c.max_cycles
    (if c.watchdog_cycles = 0 then "off"
     else Printf.sprintf "%d idle cycles" c.watchdog_cycles)

(* Stable name -> value listing of every integer knob; docs/machine-model.md
   quotes these as "`name` = value" and test_docs cross-checks the quoted
   defaults against this table, so the doc cannot drift from the code. *)
let knobs c =
  [
    ("num_sms", c.num_sms);
    ("warp_size", c.warp_size);
    ("max_warps_per_sm", c.max_warps_per_sm);
    ("max_tbs_per_sm", c.max_tbs_per_sm);
    ("regfile_vregs", c.regfile_vregs);
    ("rf_banks", c.rf_banks);
    ("num_schedulers", c.num_schedulers);
    ("issue_per_scheduler", c.issue_per_scheduler);
    ("fetch_width", c.fetch_width);
    ("issue_width", c.issue_width);
    ("ibuf_depth", c.ibuf_depth);
    ("shared_bytes_per_sm", c.shared_bytes_per_sm);
    ("barrier_lat", c.barrier_lat);
    ("alu_lat", c.alu_lat);
    ("sfu_lat", c.sfu_lat);
    ("shared_lat", c.shared_lat);
    ("icache_bytes", c.icache_bytes);
    ("icache_line", c.icache_line);
    ("icache_miss_lat", c.icache_miss_lat);
    ("collector_units", c.collector_units);
    ("l1_lat", c.l1_lat);
    ("l1_bytes", c.l1_bytes);
    ("l1_assoc", c.l1_assoc);
    ("l1_line", c.l1_line);
    ("dram_lat", c.dram_lat);
    ("dram_txn_cycles", c.dram_txn_cycles);
    ("mshrs", c.mshrs);
    ("smem_banks", c.smem_banks);
    ("sfu_per_cycle", c.sfu_per_cycle);
    ("mem_per_cycle", c.mem_per_cycle);
    ("skip_entries_per_tb", c.skip_entries_per_tb);
    ("rename_regs_per_tb", c.rename_regs_per_tb);
    ("coalescer_ports", c.coalescer_ports);
    ("max_skips_per_warp_cycle", c.max_skips_per_warp_cycle);
  ]
