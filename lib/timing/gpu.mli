(** Whole-GPU simulation: threadblock dispatch over multiple SMs sharing
    one DRAM channel. *)

type result = {
  cycles : int;
  stats : Stats.t;  (** aggregated over SMs (cycles = max) *)
  per_sm : Stats.t array;
  engine : string;
  tbs_per_sm : int;  (** resident threadblock occupancy used *)
  attribution : Darsie_obs.Attrib.t;
      (** stall attribution summed over SMs; totals [num_sms * cycles] *)
  per_sm_attribution : Darsie_obs.Attrib.t array;
      (** each sums exactly to [cycles] *)
  series : Darsie_obs.Series.t array;
      (** per-SM interval-sampled counters; [[||]] when sampling was off *)
  pcstat : Darsie_obs.Pcstat.t option;
      (** per-PC profile aggregated over SMs; [None] when profiling was
          off *)
  per_sm_pcstat : Darsie_obs.Pcstat.t array;
      (** [[||]] when profiling was off; each mirrors its SM's
          attribution bucket-by-bucket *)
  skip_telemetry : (int * Darsie_obs.Pcstat.skip_entry) list;
      (** per-PC skip-table entry telemetry merged over SMs; [[]] for
          engines without a skip table *)
  ledger : Darsie_obs.Ledger.t;
      (** skip ledger (dynamic fates of statically DR/CR instructions)
          summed over SMs; always on *)
  per_sm_ledger : Darsie_obs.Ledger.t array;
      (** each conserves eligible = Σ fates per PC on its own SM *)
}

val occupancy : Config.t -> Darsie_isa.Kernel.t -> warps_per_tb:int -> int
(** Resident threadblocks per SM given the warp, register, shared-memory
    and slot limits. *)

val run :
  ?cfg:Config.t ->
  ?sink:Darsie_obs.Sink.t ->
  ?sample_interval:int ->
  ?event_window:int ->
  ?deadline:float ->
  ?pcstat:bool ->
  Engine.factory ->
  Kinfo.t ->
  Darsie_trace.Record.t ->
  (result, Darsie_check.Sim_error.t) Stdlib.result
(** Replay a recorded trace through the timing model with the given
    engine. Threadblocks are dispatched to SMs greedily in index order as
    slots free up. [sink] receives typed pipeline events (default: the
    null sink — tracing off); [sample_interval] turns on per-SM counter
    time-series with one point per that many cycles; [pcstat] (default
    false) turns on per-static-instruction profiling (the table behind
    [darsie annotate]).

    When [cfg.fast_forward] is on (the default), idle spans where no SM
    can make observable progress — every warp waiting on a memory return,
    a barrier release or an I-cache fill — are skipped in one clock jump
    to the earliest wake-up event ({!Sm.next_event_cycle}), bulk-charging
    the skipped cycles into the same stall-attribution buckets stepping
    would have filled. Results are bit-identical either way; [false]
    forces the cycle-by-cycle path (the [--no-fast-forward] escape
    hatch).

    When [cfg.sm_domains] is not 1, the SM array is sharded across that
    many OCaml domains (0 auto-sizes to the host), advancing in lockstep
    epochs of at most [l1_lat + dram_lat] cycles with DRAM requests
    replayed in canonical serial order at every epoch barrier. Sharding
    is timing-invisible: results are bit-identical to the serial loop at
    every domain count. Runs that request serial-only diagnostics
    ([pcstat], a non-null [sink], [sample_interval] or [event_window])
    fall back to the serial loop automatically.

    Failures come back as typed {!Darsie_check.Sim_error.t} values
    carrying a diagnostic dump (per-warp state, stall attribution, engine
    counters, and — when [event_window] > 0 — the last that many pipeline
    events):
    - [Cycle_bound] when the simulation exceeds [cfg.max_cycles];
    - [Deadlock] when, for [cfg.watchdog_cycles] consecutive cycles, no
      SM fetched, issued, dropped or skipped anything and nothing was
      between issue and writeback ([0] disables the watchdog);
    - [Wall_timeout] when [deadline] (processor seconds for this run) is
      exhausted. *)

val run_exn :
  ?cfg:Config.t ->
  ?sink:Darsie_obs.Sink.t ->
  ?sample_interval:int ->
  ?event_window:int ->
  ?deadline:float ->
  ?pcstat:bool ->
  Engine.factory ->
  Kinfo.t ->
  Darsie_trace.Record.t ->
  result
(** {!run}, raising {!Darsie_check.Sim_error.Simulation_error} instead of
    returning [Error]. For call sites that treat failure as fatal. *)

val ipc : result -> float
(** Executed warp instructions (including eliminated ones' useful work is
    excluded) per cycle: [issued / cycles]. *)

val check_attribution : result -> (unit, string) Stdlib.result
(** Verify the per-SM stall-attribution invariant (every simulated cycle
    classified exactly once) and, when per-PC profiling was on, that each
    SM's per-PC stall charges sum to its bucket totals. The CLI turns an
    [Error] into a nonzero exit status so CI catches model drift. *)

val check_ledger : result -> (unit, string) Stdlib.result
(** Verify the skip-ledger conservation invariant: on every SM and for
    every statically eligible PC, the independently counted eligible
    dynamic occurrences equal the sum of recorded fates, and the
    aggregate ledger reproduces the per-SM sum. Holds bit-identically
    with fast-forwarding on or off; enforced by the CLI next to
    {!check_attribution}. *)
