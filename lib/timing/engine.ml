type wctx = {
  wid : int;
  tb_slot : int;
  tb_id : int;
  warp_in_tb : int;
  trace : Darsie_trace.Record.op array;
  mutable fi : int;
  ibuf : (Darsie_trace.Record.op * int) Queue.t;
  pending : int array;
  mutable pending_count : int;
  mutable at_barrier : bool;
  mutable finished : bool;
  mutable last_issued : int;
  mutable fetch_ready_at : int;
  mutable mem_inflight : int;
  mutable mshr_used : int;
  (* Engine-owned per-warp scratch, inlined here so the skip phase's
     hottest per-warp-per-cycle accesses are field reads instead of
     Hashtbl traffic. Only the engine writes these. *)
  mutable fetch_ok : bool;
  mutable parked_at : int;
  mutable skip_stall : int;
  (* Skip-ledger provenance, engine-owned like the fields above: why this
     warp is off the majority path (0 = on path, 1 = divergence drop,
     2 = branch-sync drop) and the trace index at which it gave up on an
     empty rename freelist (-1 = it did not). *)
  mutable drop_reason : int;
  mutable gave_up_at : int;
}

let warp_done w = w.fi >= Array.length w.trace

let next_op w = if warp_done w then None else Some w.trace.(w.fi)

type issue_decision = Execute | Drop

type t = {
  name : string;
  cycle_skip : cycle:int -> unit;
  quiescent : unit -> bool;
  (* True when [cycle_skip] inspects warp state (trace cursors, parked
     sets). The SM's fetch phase runs after [cycle_skip], so for such
     engines a fetch invalidates the [quiescent] snapshot and the SM
     must step one more cycle before fast-forwarding. *)
  skip_reads_warp_state : bool;
  (* True when the most recent [cycle_skip] mutated no engine or warp
     state — it only accumulated per-cycle statistics. Such a skip phase
     repeats identically while the SM is frozen, which licenses
     fast-forwarding even when it is not quiescent: [bulk_skip] charges
     the skipped span. *)
  skip_steady : unit -> bool;
  (* Charge [n] skipped skip-phase executions at [cycle] in one call;
     only invoked when [skip_steady ()] held. Engines with per-cycle
     accumulation run the phase once and scale the deltas. *)
  bulk_skip : cycle:int -> n:int -> unit;
  on_fast_forward : cycle:int -> unit;
  can_fetch : wctx -> bool;
  (* Fresh fetch-gate decision at the warp's current cursor; bundle
     follower slots must use this, not the (stale) [can_fetch]. *)
  recheck_fetch : wctx -> bool;
  remove_at_fetch : wctx -> Darsie_trace.Record.op -> bool;
  on_issue : cycle:int -> wctx -> Darsie_trace.Record.op -> issue_decision;
  on_writeback : cycle:int -> wctx -> Darsie_trace.Record.op -> unit;
  on_store : atomic:bool -> wctx -> unit;
  (* Classify one executed (fetched, not skipped) occurrence of a
     statically eligible instruction for the skip ledger; the SM calls it
     at fetch time, once per occurrence. *)
  exec_fate : wctx -> Darsie_trace.Record.op -> Darsie_obs.Ledger.fate;
  (* The SM hands the engine its per-SM skip ledger at construction so
     engine-internal skips (DARSIE's pre-fetch path) can record fates. *)
  set_ledger : Darsie_obs.Ledger.t -> unit;
  on_tb_launch : tb_slot:int -> warps:wctx array -> unit;
  on_tb_finish : tb_slot:int -> unit;
  debug_state : unit -> (string * int) list;
  pc_telemetry : unit -> (int * Darsie_obs.Pcstat.skip_entry) list;
}

let base () =
  {
    name = "BASE";
    cycle_skip = (fun ~cycle:_ -> ());
    quiescent = (fun () -> true);
    skip_reads_warp_state = false;
    skip_steady = (fun () -> true);
    bulk_skip = (fun ~cycle:_ ~n:_ -> ());
    on_fast_forward = (fun ~cycle:_ -> ());
    can_fetch = (fun _ -> true);
    recheck_fetch = (fun _ -> true);
    remove_at_fetch = (fun _ _ -> false);
    on_issue = (fun ~cycle:_ _ _ -> Execute);
    on_writeback = (fun ~cycle:_ _ _ -> ());
    on_store = (fun ~atomic:_ _ -> ());
    exec_fate = (fun _ _ -> Darsie_obs.Ledger.Skip_disabled);
    set_ledger = (fun _ -> ());
    on_tb_launch = (fun ~tb_slot:_ ~warps:_ -> ());
    on_tb_finish = (fun ~tb_slot:_ -> ());
    debug_state = (fun () -> []);
    pc_telemetry = (fun () -> []);
  }

type factory = Kinfo.t -> Config.t -> Stats.t -> t

let base_factory : factory = fun _ _ _ -> base ()
