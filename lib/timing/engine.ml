type wctx = {
  wid : int;
  tb_slot : int;
  tb_id : int;
  warp_in_tb : int;
  trace : Darsie_trace.Record.op array;
  mutable fi : int;
  ibuf : (Darsie_trace.Record.op * int) Queue.t;
  pending : int array;
  mutable pending_count : int;
  mutable at_barrier : bool;
  mutable finished : bool;
  mutable last_issued : int;
  mutable fetch_ready_at : int;
}

let warp_done w = w.fi >= Array.length w.trace

let next_op w = if warp_done w then None else Some w.trace.(w.fi)

type issue_decision = Execute | Drop

type t = {
  name : string;
  cycle_skip : cycle:int -> unit;
  can_fetch : wctx -> bool;
  remove_at_fetch : wctx -> Darsie_trace.Record.op -> bool;
  on_issue : cycle:int -> wctx -> Darsie_trace.Record.op -> issue_decision;
  on_writeback : cycle:int -> wctx -> Darsie_trace.Record.op -> unit;
  on_store : wctx -> unit;
  on_tb_launch : tb_slot:int -> warps:wctx array -> unit;
  on_tb_finish : tb_slot:int -> unit;
  debug_state : unit -> (string * int) list;
  pc_telemetry : unit -> (int * Darsie_obs.Pcstat.skip_entry) list;
}

let base () =
  {
    name = "BASE";
    cycle_skip = (fun ~cycle:_ -> ());
    can_fetch = (fun _ -> true);
    remove_at_fetch = (fun _ _ -> false);
    on_issue = (fun ~cycle:_ _ _ -> Execute);
    on_writeback = (fun ~cycle:_ _ _ -> ());
    on_store = (fun _ -> ());
    on_tb_launch = (fun ~tb_slot:_ ~warps:_ -> ());
    on_tb_finish = (fun ~tb_slot:_ -> ());
    debug_state = (fun () -> []);
    pc_telemetry = (fun () -> []);
  }

type factory = Kinfo.t -> Config.t -> Stats.t -> t

let base_factory : factory = fun _ _ _ -> base ()
