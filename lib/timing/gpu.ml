open Darsie_isa
open Darsie_trace
module Obs = Darsie_obs

type result = {
  cycles : int;
  stats : Stats.t;
  per_sm : Stats.t array;
  engine : string;
  tbs_per_sm : int;
  attribution : Obs.Attrib.t;
  per_sm_attribution : Obs.Attrib.t array;
  series : Obs.Series.t array;
}

let occupancy (cfg : Config.t) (kernel : Kernel.t) ~warps_per_tb =
  let by_warps = cfg.Config.max_warps_per_sm / warps_per_tb in
  let by_shared =
    if kernel.Kernel.shared_bytes = 0 then max_int
    else cfg.Config.shared_bytes_per_sm / kernel.Kernel.shared_bytes
  in
  let by_regs =
    let per_tb = max 1 (kernel.Kernel.nregs * warps_per_tb) in
    cfg.Config.regfile_vregs / per_tb
  in
  max 1 (min (min cfg.Config.max_tbs_per_sm by_warps) (min by_shared by_regs))

let run ?(cfg = Config.default) ?(sink = Obs.Sink.null) ?sample_interval
    factory (kinfo : Kinfo.t) (trace : Record.t) =
  let kernel = kinfo.Kinfo.kernel in
  let warps_per_tb = Record.warps_per_tb trace in
  let tbs_per_sm = occupancy cfg kernel ~warps_per_tb in
  let dram =
    Mem_model.Dram.create ~txn_cycles:cfg.Config.dram_txn_cycles
      ~latency:cfg.Config.dram_lat
  in
  let sms =
    Array.init cfg.Config.num_sms (fun i ->
        let series =
          Option.map
            (fun interval ->
              Obs.Series.create ~interval ~names:Sm.sample_names)
            sample_interval
        in
        Sm.create ~sm_id:i ~sink ?series cfg kinfo factory dram
          ~slots:tbs_per_sm ~warps_per_tb)
  in
  let ntbs = Record.num_tbs trace in
  let next_tb = ref 0 in
  let dispatch () =
    Array.iter
      (fun sm ->
        while !next_tb < ntbs && Sm.can_accept sm do
          Sm.launch_tb sm ~tb_id:!next_tb ~traces:trace.Record.tbs.(!next_tb);
          incr next_tb
        done)
      sms
  in
  let safety = 500_000_000 in
  let cycles = ref 0 in
  dispatch ();
  while Array.exists Sm.busy sms || !next_tb < ntbs do
    incr cycles;
    if !cycles > safety then
      failwith "Gpu.run: exceeded simulation cycle bound (deadlock?)";
    Array.iter Sm.step sms;
    dispatch ()
  done;
  Array.iter Sm.finalize sms;
  let per_sm = Array.map Sm.stats sms in
  let agg = Stats.create () in
  Array.iter (fun s -> Stats.add agg s) per_sm;
  agg.Stats.cycles <- !cycles;
  let per_sm_attribution = Array.map Sm.attribution sms in
  let attribution = Obs.Attrib.create () in
  Array.iter (fun a -> Obs.Attrib.add attribution a) per_sm_attribution;
  let series =
    if sample_interval = None then [||]
    else
      Array.map
        (fun sm ->
          match Sm.series sm with Some s -> s | None -> assert false)
        sms
  in
  {
    cycles = !cycles;
    stats = agg;
    per_sm;
    engine = Sm.engine_name sms.(0);
    tbs_per_sm;
    attribution;
    per_sm_attribution;
    series;
  }

let ipc r =
  if r.cycles = 0 then 0.0
  else float_of_int r.stats.Stats.issued /. float_of_int r.cycles

(* Each SM steps once per simulated cycle and classifies that cycle into
   exactly one bucket, so this can only fail if the model drifts. *)
let check_attribution r =
  let bad = ref [] in
  Array.iteri
    (fun i a ->
      let tot = Obs.Attrib.total a in
      if tot <> r.cycles then bad := (i, tot) :: !bad)
    r.per_sm_attribution;
  match List.rev !bad with
  | [] -> Ok ()
  | (sm, tot) :: _ ->
    Error
      (Printf.sprintf
         "stall attribution does not sum to cycles on SM %d: %d buckets vs %d \
          cycles (engine %s)"
         sm tot r.cycles r.engine)
