open Darsie_isa
open Darsie_trace
module Obs = Darsie_obs

type result = {
  cycles : int;
  stats : Stats.t;
  per_sm : Stats.t array;
  engine : string;
  tbs_per_sm : int;
  attribution : Obs.Attrib.t;
  per_sm_attribution : Obs.Attrib.t array;
  series : Obs.Series.t array;
  pcstat : Obs.Pcstat.t option;
  per_sm_pcstat : Obs.Pcstat.t array;
  skip_telemetry : (int * Obs.Pcstat.skip_entry) list;
}

let occupancy (cfg : Config.t) (kernel : Kernel.t) ~warps_per_tb =
  let by_warps = cfg.Config.max_warps_per_sm / warps_per_tb in
  let by_shared =
    if kernel.Kernel.shared_bytes = 0 then max_int
    else cfg.Config.shared_bytes_per_sm / kernel.Kernel.shared_bytes
  in
  let by_regs =
    let per_tb = max 1 (kernel.Kernel.nregs * warps_per_tb) in
    cfg.Config.regfile_vregs / per_tb
  in
  max 1 (min (min cfg.Config.max_tbs_per_sm by_warps) (min by_shared by_regs))

module Sim_error = Darsie_check.Sim_error

(* Merge per-SM engine counters by name for the diagnostic dump. *)
let merge_notes per_sm_notes =
  let acc = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (List.iter (fun (k, v) ->
         match Hashtbl.find_opt acc k with
         | Some n -> Hashtbl.replace acc k (n + v)
         | None ->
           Hashtbl.add acc k v;
           order := k :: !order))
    per_sm_notes;
  List.rev_map (fun k -> (k, Hashtbl.find acc k)) !order

let run ?(cfg = Config.default) ?(sink = Obs.Sink.null) ?sample_interval
    ?(event_window = 0) ?deadline ?(pcstat = false) factory (kinfo : Kinfo.t)
    (trace : Record.t) =
  let kernel = kinfo.Kinfo.kernel in
  let warps_per_tb = Record.warps_per_tb trace in
  let tbs_per_sm = occupancy cfg kernel ~warps_per_tb in
  let dram =
    Mem_model.Dram.create ~txn_cycles:cfg.Config.dram_txn_cycles
      ~latency:cfg.Config.dram_lat
  in
  let ring = if event_window > 0 then Some (Obs.Ring.create ~cap:event_window) else None in
  let sink = match ring with Some r -> Obs.Ring.tee r sink | None -> sink in
  let ninsts = Array.length kernel.Kernel.insts in
  let sms =
    Array.init cfg.Config.num_sms (fun i ->
        let series =
          Option.map
            (fun interval ->
              Obs.Series.create ~interval ~names:Sm.sample_names)
            sample_interval
        in
        let pcstat =
          if pcstat then Some (Obs.Pcstat.create ~n:ninsts) else None
        in
        Sm.create ~sm_id:i ~sink ?series ?pcstat cfg kinfo factory dram
          ~slots:tbs_per_sm ~warps_per_tb)
  in
  let ntbs = Record.num_tbs trace in
  let next_tb = ref 0 in
  let dispatch () =
    Array.iter
      (fun sm ->
        while !next_tb < ntbs && Sm.can_accept sm do
          Sm.launch_tb sm ~tb_id:!next_tb ~traces:trace.Record.tbs.(!next_tb);
          incr next_tb
        done)
      sms
  in
  let cycles = ref 0 in
  let diag () =
    let attr = Obs.Attrib.create () in
    Array.iter (fun sm -> Obs.Attrib.add attr (Sm.attribution sm)) sms;
    {
      Sim_error.d_cycle = !cycles;
      d_engine = Sm.engine_name sms.(0);
      d_warps =
        List.concat_map Sm.warp_snapshots (Array.to_list sms);
      d_attribution = Obs.Attrib.to_assoc attr;
      d_events = (match ring with Some r -> Obs.Ring.events r | None -> []);
      d_notes = merge_notes (Array.to_list (Array.map Sm.debug_state sms));
    }
  in
  let started = Sys.time () in
  let progress = ref (-1) in
  let idle = ref 0 in
  let error = ref None in
  dispatch ();
  while !error = None && (Array.exists Sm.busy sms || !next_tb < ntbs) do
    incr cycles;
    if !cycles > cfg.Config.max_cycles then
      error :=
        Some
          (Sim_error.Cycle_bound
             {
               bound = cfg.Config.max_cycles;
               message =
                 Printf.sprintf
                   "simulation exceeded its cycle bound of %d cycles"
                   cfg.Config.max_cycles;
               diag = diag ();
             })
    else begin
      Array.iter Sm.step sms;
      dispatch ();
      (* Deadlock watchdog: every SM's progress token frozen with no
         operation between issue and writeback for watchdog_cycles. *)
      if cfg.Config.watchdog_cycles > 0 then begin
        let token =
          Array.fold_left (fun acc sm -> acc + Sm.progress_token sm) 0 sms
        in
        let inflight =
          Array.fold_left (fun acc sm -> acc + Sm.inflight_count sm) 0 sms
        in
        if token = !progress && inflight = 0 then begin
          incr idle;
          if !idle >= cfg.Config.watchdog_cycles then
            error :=
              Some
                (Sim_error.Deadlock
                   {
                     message =
                       Printf.sprintf
                         "no warp fetched, issued or skipped and no \
                          operation was in flight for %d cycles"
                         !idle;
                     diag = diag ();
                   })
        end
        else begin
          progress := token;
          idle := 0
        end
      end;
      (* Wall-clock budget, checked at a coarse cadence. *)
      match deadline with
      | Some budget_s when !cycles land 0xfff = 0 ->
        let elapsed = Sys.time () -. started in
        if elapsed > budget_s then
          error :=
            Some
              (Sim_error.Wall_timeout
                 {
                   budget_s;
                   cycle = !cycles;
                   message =
                     Printf.sprintf
                       "wall-clock budget of %gs exhausted at cycle %d"
                       budget_s !cycles;
                 })
      | _ -> ()
    end
  done;
  match !error with
  | Some e -> Stdlib.Error e
  | None ->
    Array.iter Sm.finalize sms;
    let per_sm = Array.map Sm.stats sms in
    let agg = Stats.create () in
    Array.iter (fun s -> Stats.add agg s) per_sm;
    agg.Stats.cycles <- !cycles;
    let per_sm_attribution = Array.map Sm.attribution sms in
    let attribution = Obs.Attrib.create () in
    Array.iter (fun a -> Obs.Attrib.add attribution a) per_sm_attribution;
    let series =
      if sample_interval = None then [||]
      else
        Array.map
          (fun sm ->
            match Sm.series sm with Some s -> s | None -> assert false)
          sms
    in
    let per_sm_pcstat =
      if not pcstat then [||]
      else
        Array.map
          (fun sm ->
            match Sm.pcstat sm with Some p -> p | None -> assert false)
          sms
    in
    let pcstat_agg =
      if Array.length per_sm_pcstat = 0 then None
      else begin
        let acc = Obs.Pcstat.create ~n:(Array.length kernel.Kernel.insts) in
        Array.iter (fun p -> Obs.Pcstat.add acc p) per_sm_pcstat;
        Some acc
      end
    in
    let skip_telemetry =
      Obs.Pcstat.merge_skip_telemetry
        (Array.to_list (Array.map Sm.skip_telemetry sms))
    in
    Ok
      {
        cycles = !cycles;
        stats = agg;
        per_sm;
        engine = Sm.engine_name sms.(0);
        tbs_per_sm;
        attribution;
        per_sm_attribution;
        series;
        pcstat = pcstat_agg;
        per_sm_pcstat;
        skip_telemetry;
      }

let run_exn ?cfg ?sink ?sample_interval ?event_window ?deadline ?pcstat
    factory kinfo trace =
  match run ?cfg ?sink ?sample_interval ?event_window ?deadline ?pcstat
          factory kinfo trace
  with
  | Ok r -> r
  | Stdlib.Error e -> raise (Sim_error.Simulation_error e)

let ipc r =
  if r.cycles = 0 then 0.0
  else float_of_int r.stats.Stats.issued /. float_of_int r.cycles

(* Each SM steps once per simulated cycle and classifies that cycle into
   exactly one bucket, so this can only fail if the model drifts. When
   per-PC profiling was on, the same classification also charged exactly
   one (PC row, bucket) pair per cycle, so each SM's per-PC column sums
   must reproduce its bucket totals — the cross-layer conservation
   invariant behind [darsie annotate]. *)
let check_attribution r =
  let bad = ref [] in
  Array.iteri
    (fun i a ->
      let tot = Obs.Attrib.total a in
      if tot <> r.cycles then bad := (i, tot) :: !bad)
    r.per_sm_attribution;
  match List.rev !bad with
  | (sm, tot) :: _ ->
    Error
      (Printf.sprintf
         "stall attribution does not sum to cycles on SM %d: %d buckets vs %d \
          cycles (engine %s)"
         sm tot r.cycles r.engine)
  | [] ->
    let mismatch = ref None in
    Array.iteri
      (fun i p ->
        if !mismatch = None then begin
          let per_pc = Obs.Attrib.to_assoc (Obs.Pcstat.bucket_totals p) in
          let per_sm = Obs.Attrib.to_assoc r.per_sm_attribution.(i) in
          List.iter2
            (fun (name, pc_tot) (_, sm_tot) ->
              if !mismatch = None && pc_tot <> sm_tot then
                mismatch := Some (i, name, pc_tot, sm_tot))
            per_pc per_sm
        end)
      r.per_sm_pcstat;
    (match !mismatch with
    | None -> Ok ()
    | Some (sm, name, pc_tot, sm_tot) ->
      Error
        (Printf.sprintf
           "per-PC stall charges diverge from SM attribution on SM %d, \
            bucket %s: %d per-PC vs %d per-SM (engine %s)"
           sm name pc_tot sm_tot r.engine))
