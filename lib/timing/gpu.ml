open Darsie_isa
open Darsie_trace
module Obs = Darsie_obs
module Tel = Darsie_telemetry.Telemetry

type result = {
  cycles : int;
  stats : Stats.t;
  per_sm : Stats.t array;
  engine : string;
  tbs_per_sm : int;
  attribution : Obs.Attrib.t;
  per_sm_attribution : Obs.Attrib.t array;
  series : Obs.Series.t array;
  pcstat : Obs.Pcstat.t option;
  per_sm_pcstat : Obs.Pcstat.t array;
  skip_telemetry : (int * Obs.Pcstat.skip_entry) list;
  ledger : Obs.Ledger.t;  (** skip ledger summed over SMs; always on *)
  per_sm_ledger : Obs.Ledger.t array;
      (** each conserves eligible = Σ fates per PC on its own SM *)
}

let occupancy (cfg : Config.t) (kernel : Kernel.t) ~warps_per_tb =
  let by_warps = cfg.Config.max_warps_per_sm / warps_per_tb in
  let by_shared =
    if kernel.Kernel.shared_bytes = 0 then max_int
    else cfg.Config.shared_bytes_per_sm / kernel.Kernel.shared_bytes
  in
  let by_regs =
    let per_tb = max 1 (kernel.Kernel.nregs * warps_per_tb) in
    cfg.Config.regfile_vregs / per_tb
  in
  max 1 (min (min cfg.Config.max_tbs_per_sm by_warps) (min by_shared by_regs))

module Sim_error = Darsie_check.Sim_error

(* Merge per-SM engine counters by name for the diagnostic dump. *)
let merge_notes per_sm_notes =
  let acc = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (List.iter (fun (k, v) ->
         match Hashtbl.find_opt acc k with
         | Some n -> Hashtbl.replace acc k (n + v)
         | None ->
           Hashtbl.add acc k v;
           order := k :: !order))
    per_sm_notes;
  List.rev_map (fun k -> (k, Hashtbl.find acc k)) !order

(* Fold the drained SM array into a [result]; shared by the serial and
   the sharded cycle loops (the sharded one always passes
   [sample_interval = None] and [pcstat = false] — it falls back to the
   serial loop whenever either is requested). *)
let assemble ~cycles ~sample_interval ~pcstat ~tbs_per_sm (kernel : Kernel.t)
    sms =
  Array.iter Sm.finalize sms;
  let per_sm = Array.map Sm.stats sms in
  let agg = Stats.create () in
  Array.iter (fun s -> Stats.add agg s) per_sm;
  agg.Stats.cycles <- cycles;
  let per_sm_attribution = Array.map Sm.attribution sms in
  let attribution = Obs.Attrib.create () in
  Array.iter (fun a -> Obs.Attrib.add attribution a) per_sm_attribution;
  let series =
    if sample_interval = None then [||]
    else
      Array.map
        (fun sm -> match Sm.series sm with Some s -> s | None -> assert false)
        sms
  in
  let per_sm_pcstat =
    if not pcstat then [||]
    else
      Array.map
        (fun sm -> match Sm.pcstat sm with Some p -> p | None -> assert false)
        sms
  in
  let pcstat_agg =
    if Array.length per_sm_pcstat = 0 then None
    else begin
      let acc = Obs.Pcstat.create ~n:(Array.length kernel.Kernel.insts) in
      Array.iter (fun p -> Obs.Pcstat.add acc p) per_sm_pcstat;
      Some acc
    end
  in
  let skip_telemetry =
    Obs.Pcstat.merge_skip_telemetry
      (Array.to_list (Array.map Sm.skip_telemetry sms))
  in
  let per_sm_ledger = Array.map Sm.ledger sms in
  let ledger = Obs.Ledger.create ~n:(Array.length kernel.Kernel.insts) in
  Array.iter (fun l -> Obs.Ledger.add ledger l) per_sm_ledger;
  {
    cycles;
    stats = agg;
    per_sm;
    engine = Sm.engine_name sms.(0);
    tbs_per_sm;
    attribution;
    per_sm_attribution;
    series;
    pcstat = pcstat_agg;
    per_sm_pcstat;
    skip_telemetry;
    ledger;
    per_sm_ledger;
  }

let run_body ~cfg ~sink ~sample_interval ~event_window ~deadline ~pcstat
    factory (kinfo : Kinfo.t) (trace : Record.t) =
  let kernel = kinfo.Kinfo.kernel in
  let warps_per_tb = Record.warps_per_tb trace in
  let tbs_per_sm = occupancy cfg kernel ~warps_per_tb in
  let dram =
    Mem_model.Dram.create ~txn_cycles:cfg.Config.dram_txn_cycles
      ~latency:cfg.Config.dram_lat
  in
  let ring = if event_window > 0 then Some (Obs.Ring.create ~cap:event_window) else None in
  let sink = match ring with Some r -> Obs.Ring.tee r sink | None -> sink in
  let ninsts = Array.length kernel.Kernel.insts in
  let sms =
    Array.init cfg.Config.num_sms (fun i ->
        let series =
          Option.map
            (fun interval ->
              Obs.Series.create ~interval ~names:Sm.sample_names)
            sample_interval
        in
        let pcstat =
          if pcstat then Some (Obs.Pcstat.create ~n:ninsts) else None
        in
        Sm.create ~sm_id:i ~sink ?series ?pcstat cfg kinfo factory dram
          ~slots:tbs_per_sm ~warps_per_tb)
  in
  let ntbs = Record.num_tbs trace in
  let next_tb = ref 0 in
  let cycles = ref 0 in
  (* Per-SM wake-up calendar (fast-forward mode): [wakes.(i)] is the next
     cycle SM [i] must be stepped at; until then its clock is left behind
     and lazily caught up with a bulk charge. 0 = step immediately. *)
  let wakes = Array.make (Array.length sms) 0 in
  let catch_up target =
    Array.iter
      (fun sm ->
        if Sm.cycle sm < target then Sm.fast_forward sm ~to_:target)
      sms
  in
  let dispatch () =
    Array.iteri
      (fun i sm ->
        while !next_tb < ntbs && Sm.can_accept sm do
          (* A lagging SM must be on the global clock before warps are
             installed, and has fetchable work from the next cycle on. *)
          if Sm.cycle sm < !cycles then Sm.fast_forward sm ~to_:!cycles;
          wakes.(i) <- !cycles + 1;
          Sm.launch_tb sm ~tb_id:!next_tb ~traces:trace.Record.tbs.(!next_tb);
          incr next_tb
        done)
      sms
  in
  let diag ~at () =
    catch_up at;
    let attr = Obs.Attrib.create () in
    Array.iter (fun sm -> Obs.Attrib.add attr (Sm.attribution sm)) sms;
    {
      Sim_error.d_cycle = !cycles;
      d_engine = Sm.engine_name sms.(0);
      d_warps =
        List.concat_map Sm.warp_snapshots (Array.to_list sms);
      d_attribution = Obs.Attrib.to_assoc attr;
      d_events = (match ring with Some r -> Obs.Ring.events r | None -> []);
      d_notes = merge_notes (Array.to_list (Array.map Sm.debug_state sms));
    }
  in
  let started = Sys.time () in
  let hb_t0 = Tel.elapsed_ns () in
  let progress = ref (-1) in
  let idle = ref 0 in
  let error = ref None in
  (* Telemetry counters are accumulated in plain refs on the hot path and
     flushed once after the loop, so instrumented runs pay integer adds. *)
  let tel_jumps = ref 0 and tel_elided = ref 0 and tel_arms = ref 0 in
  (* Deadlock watchdog: every SM's progress token frozen with no operation
     between issue and writeback for watchdog_cycles. [span] is how many
     simulated cycles elapsed since the previous check (1 when stepping,
     the jump width when fast-forwarding — skipped cycles are idle by
     construction, so a frozen token accumulates the whole span). *)
  let check_watchdog span =
    if cfg.Config.watchdog_cycles > 0 then begin
      let token =
        Array.fold_left (fun acc sm -> acc + Sm.progress_token sm) 0 sms
      in
      let inflight =
        Array.fold_left (fun acc sm -> acc + Sm.inflight_count sm) 0 sms
      in
      if token = !progress && inflight = 0 then begin
        if !idle = 0 then incr tel_arms;
        idle := !idle + span;
        if !idle >= cfg.Config.watchdog_cycles then
          error :=
            Some
              (Sim_error.Deadlock
                 {
                   message =
                     Printf.sprintf
                       "no warp fetched, issued or skipped and no \
                        operation was in flight for %d cycles"
                       !idle;
                   diag = diag ~at:!cycles ();
                 })
      end
      else begin
        progress := token;
        idle := 0
      end
    end
  in
  (* Wall-clock budget, checked at a coarse cadence: whenever the clock
     crosses a 4096-cycle boundary — same cadence as stepping cycle by
     cycle, and a jump cannot out-run it because the check also fires at
     jump boundaries. *)
  let wall_mark = ref 0 in
  let check_wall () =
    match deadline with
    | Some budget_s when !cycles lsr 12 <> !wall_mark ->
      wall_mark := !cycles lsr 12;
      let elapsed = Sys.time () -. started in
      if elapsed > budget_s then
        error :=
          Some
            (Sim_error.Wall_timeout
               {
                 budget_s;
                 cycle = !cycles;
                 message =
                   Printf.sprintf
                     "wall-clock budget of %gs exhausted at cycle %d"
                     budget_s !cycles;
               })
    | _ -> ()
  in
  let ff_steps = ref 0 and ff_skipped = ref 0 in
  let ff_debug = Sys.getenv_opt "DARSIE_FF_DEBUG" <> None in
  dispatch ();
  while !error = None && (Array.exists Sm.busy sms || !next_tb < ntbs) do
    (* Event-driven fast-forward: each SM is stepped only at cycles on
       its wake-up calendar; in between, its clock lags and is caught up
       with one bulk charge ({!Sm.fast_forward}) right before its next
       real step. When even the earliest wake-up is more than one cycle
       out, the global clock additionally advances in one jump.
       Bit-identical to stepping: skipped cycles land in the same
       attribution buckets and stall counters, and jump targets are
       capped so the cycle bound and the watchdog fire at exactly the
       cycle they would have when stepping. [wake = max_int] everywhere
       (deadlock) keeps stepping so the watchdog sees it. *)
    if cfg.Config.fast_forward then begin
      let wake = Array.fold_left min max_int wakes in
      let wake =
        match Mem_model.Dram.next_event dram ~now:!cycles with
        | Some c -> min wake c
        | None -> wake
      in
      if wake < max_int && wake > !cycles + 1 then begin
        let target = min (wake - 1) cfg.Config.max_cycles in
        let target =
          (* Never jump past the cycle where the watchdog would fire.
             Skipped cycles never advance a progress token, so when
             nothing is in flight the idle counter grows with the span. *)
          if
            cfg.Config.watchdog_cycles > 0
            && Array.fold_left
                 (fun acc sm -> acc + Sm.inflight_count sm)
                 0 sms
               = 0
          then min target (!cycles + cfg.Config.watchdog_cycles - !idle)
          else target
        in
        let span = target - !cycles in
        if span > 0 then begin
          incr tel_jumps;
          tel_elided := !tel_elided + span;
          cycles := target;
          check_watchdog span;
          check_wall ()
        end
      end
    end;
    if !error = None then begin
      incr cycles;
      if !cycles > cfg.Config.max_cycles then
        error :=
          Some
            (Sim_error.Cycle_bound
               {
                 bound = cfg.Config.max_cycles;
                 message =
                   Printf.sprintf
                     "simulation exceeded its cycle bound of %d cycles"
                     cfg.Config.max_cycles;
                 diag = diag ~at:(!cycles - 1) ();
               })
      else begin
        if cfg.Config.fast_forward then
          Array.iteri
            (fun i sm ->
              if wakes.(i) <= !cycles then begin
                if Sm.cycle sm < !cycles - 1 then begin
                  if ff_debug then
                    ff_skipped := !ff_skipped + (!cycles - 1 - Sm.cycle sm);
                  Sm.fast_forward sm ~to_:(!cycles - 1)
                end;
                if ff_debug then incr ff_steps;
                Sm.step sm;
                wakes.(i) <- Sm.next_event_cycle sm
              end)
            sms
        else Array.iter Sm.step sms;
        dispatch ();
        check_watchdog 1;
        check_wall ();
        if !cycles land 0xFFFF = 0 && Tel.Progress.mode () <> Tel.Progress.Off
        then begin
          let elapsed_s =
            float_of_int (Tel.elapsed_ns () - hb_t0) /. 1e9
          in
          Tel.Progress.cycles ~cycles:!cycles
            ~cycles_per_sec:
              (if elapsed_s <= 0.0 then 0.0
               else float_of_int !cycles /. elapsed_s)
            ~engine:(Sm.engine_name sms.(0))
        end
      end
    end
  done;
  if !tel_jumps > 0 then Tel.incr ~by:!tel_jumps "ff.jumps";
  if !tel_elided > 0 then Tel.incr ~by:!tel_elided "ff.cycles_elided";
  if !tel_arms > 0 then Tel.incr ~by:!tel_arms "watchdog.arms";
  (* Lagging SMs charge their tail idle span up to the final cycle so the
     attribution invariant (bucket total = cycles on every SM) holds. *)
  if cfg.Config.fast_forward then begin
    if ff_debug then
      Array.iter
        (fun sm ->
          if Sm.cycle sm < !cycles then
            ff_skipped := !ff_skipped + (!cycles - Sm.cycle sm))
        sms;
    catch_up !cycles
  end;
  if ff_debug then
    Printf.eprintf "[ff] cycles=%d sm_steps=%d skipped_sm_cycles=%d (%.1f%%)\n%!"
      !cycles !ff_steps !ff_skipped
      (let total = !cycles * Array.length sms in
       if total = 0 then 0.0
       else 100.0 *. float_of_int !ff_skipped /. float_of_int total);
  match !error with
  | Some e -> Stdlib.Error e
  | None ->
    Ok (assemble ~cycles:!cycles ~sample_interval ~pcstat ~tbs_per_sm kernel sms)

(* ------------------------------------------------------------------ *)
(* Sharded cycle loop: one simulation across several domains           *)
(* ------------------------------------------------------------------ *)

(* How many worker domains [cfg.sm_domains] asks for on this machine:
   1 stays 1 (the serial loop, bit-identical by construction), 0
   auto-sizes to the host, anything else is capped at the SM count
   (extra domains would own empty shards). *)
let resolve_domains (cfg : Config.t) =
  match cfg.Config.sm_domains with
  | 1 -> 1
  | 0 -> max 1 (min cfg.Config.num_sms (Domain.recommended_domain_count ()))
  | n when n < 1 -> 1
  | n -> min n cfg.Config.num_sms

(* Epoch slack: how far a worker may run ahead of the earliest wake-up
   before the next barrier. Soundness bound: a deferred DRAM request
   issued at cycle [x] completes no earlier than [x + l1_lat +
   dram_lat], so as long as the epoch ends before that, its [max_int]
   placeholder is never consulted — the issuing SM cannot observe the
   writeback inside the epoch. [0] picks the bound itself; explicit
   values are clamped into [1, bound]. *)
let resolve_slack (cfg : Config.t) =
  let bound = cfg.Config.l1_lat + cfg.Config.dram_lat in
  if cfg.Config.epoch_slack <= 0 then bound
  else max 1 (min cfg.Config.epoch_slack bound)

(* The epoch-barrier protocol.

   Workers advance disjoint SM shards independently from barrier [B] to
   barrier [E] (all cross-SM state is frozen for the epoch): DRAM
   requests are queued SM-locally under placeholder completions, and a
   worker *pauses* an SM right after any step that retires a
   threadblock while TBs remain undispatched — the only instants the
   serial loop's per-cycle dispatch scan can act. At the barrier the
   driver, single-threaded:

   1. replays the pause queue in (cycle, SM index) order — exactly the
      serial dispatch order — launching TBs and advancing the paused SM
      onward to [E] (which may pause it again, re-queued in order);
   2. replays every deferred DRAM request against the shared channel in
      canonical (cycle, SM index, issue sequence) order
      ({!Sm.commit_epoch}), patching the placeholder completions;
   3. re-derives each live SM's wake-up from the patched state, decides
      termination / cycle-bound / deadlock-watchdog exactly as the
      serial loop would have at [E], and picks the next [E].

   Epoch ends are chosen as [min-wake + slack - 1] (no SM steps before
   its wake-up, so every request of the epoch still completes after
   [E]), additionally capped so the watchdog can only fire exactly at a
   barrier, with exactly the serial loop's idle count and cycle. *)
let sharded_body ~cfg ~deadline ~domains factory (kinfo : Kinfo.t)
    (trace : Record.t) =
  let kernel = kinfo.Kinfo.kernel in
  let warps_per_tb = Record.warps_per_tb trace in
  let tbs_per_sm = occupancy cfg kernel ~warps_per_tb in
  let dram =
    Mem_model.Dram.create ~txn_cycles:cfg.Config.dram_txn_cycles
      ~latency:cfg.Config.dram_lat
  in
  let num_sms = cfg.Config.num_sms in
  let sms =
    Array.init num_sms (fun i ->
        Sm.create ~sm_id:i ~deferred_dram:true cfg kinfo factory dram
          ~slots:tbs_per_sm ~warps_per_tb)
  in
  let ntbs = Record.num_tbs trace in
  let next_tb = ref 0 in
  let slack = resolve_slack cfg in
  let wakes = Array.make num_sms 1 in
  (* cycle the SM went idle with dispatch closed; -1 = still live *)
  let done_at = Array.make num_sms (-1) in
  (* cycle the SM paused at for a dispatch scan; -1 = no pause pending *)
  let pauses = Array.make num_sms (-1) in
  let retired_seen = Array.make num_sms 0 in
  let launch i c =
    let sm = sms.(i) in
    while !next_tb < ntbs && Sm.can_accept sm do
      wakes.(i) <- c + 1;
      Sm.launch_tb sm ~tb_id:!next_tb ~traces:trace.Record.tbs.(!next_tb);
      incr next_tb
    done
  in
  (* Advance SM [i] to epoch end [e]: the serial loop's per-SM schedule
     (fast-forward to the wake-up, step there) with two extra exits —
     done (idle with dispatch closed) and paused (retired a TB with
     dispatch open). [open_] is the epoch's dispatch snapshot; only the
     driver moves [next_tb], so it is exact for the whole epoch. *)
  let advance ~open_ i e =
    let sm = sms.(i) in
    let continue = ref (done_at.(i) < 0) in
    while !continue do
      if (not (Sm.busy sm)) && not open_ then begin
        done_at.(i) <- Sm.cycle sm;
        continue := false
      end
      else if Sm.cycle sm >= e then continue := false
      else begin
        let wake = wakes.(i) in
        if wake = max_int then begin
          (* never wakes inside this epoch (idle or deadlocked: the
             watchdog accounting happens at the barrier) *)
          Sm.fast_forward sm ~to_:e;
          continue := false
        end
        else begin
          if wake > Sm.cycle sm + 1 then
            Sm.fast_forward sm ~to_:(min (wake - 1) e);
          if Sm.cycle sm < e then begin
            Sm.step sm;
            wakes.(i) <- Sm.next_event_cycle sm;
            let r = Sm.tbs_retired sm in
            if open_ && r <> retired_seen.(i) then begin
              retired_seen.(i) <- r;
              pauses.(i) <- Sm.cycle sm;
              continue := false
            end
          end
          else continue := false
        end
      end
    done
  in
  (* --- persistent worker domains, released epoch-by-epoch ----------- *)
  let nworkers = min domains (max 1 num_sms) in
  let shard_lo w = w * num_sms / nworkers in
  let m = Mutex.create () in
  let cv_go = Condition.create () in
  let cv_done = Condition.create () in
  let epoch_id = ref 0 in
  let remaining = ref 0 in
  let target = ref 0 in
  let open_snap = ref true in
  let stop = ref false in
  let worker_exn = ref None in
  let worker_busy_ns = Array.make nworkers 0 in
  let run_shard w ~open_ e =
    let t0 = Tel.elapsed_ns () in
    (try
       for i = shard_lo w to shard_lo (w + 1) - 1 do
         advance ~open_ i e
       done
     with exn ->
       Mutex.lock m;
       if !worker_exn = None then worker_exn := Some exn;
       Mutex.unlock m);
    worker_busy_ns.(w) <- worker_busy_ns.(w) + (Tel.elapsed_ns () - t0)
  in
  (* shard 0 runs on the driver domain itself, so only shards 1..n-1
     get a spawned worker: at every barrier the driver has real work
     instead of parking on the condition variable, saving one domain
     handoff per epoch *)
  let worker w =
    let sp = Tel.begin_span ~args:[ ("worker", Tel.Int w) ] "sim.shard" in
    let my_epoch = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock m;
      while !epoch_id = !my_epoch && not !stop do
        Condition.wait cv_go m
      done;
      let e = !target and open_ = !open_snap and stopped = !stop in
      my_epoch := !epoch_id;
      Mutex.unlock m;
      if stopped then running := false
      else begin
        run_shard w ~open_ e;
        Mutex.lock m;
        remaining := !remaining - 1;
        if !remaining = 0 then Condition.signal cv_done;
        Mutex.unlock m
      end
    done;
    Tel.end_span sp
  in
  let run_epoch e =
    let open_ = !next_tb < ntbs in
    if nworkers > 1 then begin
      Mutex.lock m;
      target := e;
      open_snap := open_;
      remaining := nworkers - 1;
      incr epoch_id;
      Condition.broadcast cv_go;
      Mutex.unlock m
    end;
    run_shard 0 ~open_ e;
    if nworkers > 1 then begin
      Mutex.lock m;
      while !remaining > 0 do
        Condition.wait cv_done m
      done;
      Mutex.unlock m
    end;
    match !worker_exn with Some exn -> raise exn | None -> ()
  in
  let catch_up at =
    Array.iter
      (fun sm -> if Sm.cycle sm < at then Sm.fast_forward sm ~to_:at)
      sms
  in
  let diag ~at ~cycles () =
    catch_up at;
    let attr = Obs.Attrib.create () in
    Array.iter (fun sm -> Obs.Attrib.add attr (Sm.attribution sm)) sms;
    {
      Sim_error.d_cycle = cycles;
      d_engine = Sm.engine_name sms.(0);
      d_warps = List.concat_map Sm.warp_snapshots (Array.to_list sms);
      d_attribution = Obs.Attrib.to_assoc attr;
      d_events = [];
      d_notes = merge_notes (Array.to_list (Array.map Sm.debug_state sms));
    }
  in
  let started = Sys.time () in
  let hb_t0 = Tel.elapsed_ns () in
  let tel_epochs = ref 0 and tel_pauses = ref 0 and tel_batched = ref 0 in
  let tel_arms = ref 0 in
  let idle = ref 0 in
  let error = ref None in
  let finished = ref None in
  (* the serial loop's pre-loop dispatch scan: fill every SM *)
  for i = 0 to num_sms - 1 do
    launch i 0
  done;
  let b = ref 0 in
  let workers =
    Array.init (nworkers - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let stop_workers () =
    Mutex.lock m;
    stop := true;
    Condition.broadcast cv_go;
    Mutex.unlock m;
    Array.iter Domain.join workers
  in
  (try
     while !error = None && !finished = None do
          (* earliest wake-up among live SMs decides where the next
             barrier may land: no SM steps before it, so every DRAM
             request of the epoch still completes after [e] *)
          let s = ref max_int in
          for i = 0 to num_sms - 1 do
            if done_at.(i) < 0 && wakes.(i) < !s then s := wakes.(i)
          done;
          let e =
            if !s = max_int then !b + slack (* deadlock: keep advancing *)
            else !s + slack - 1
          in
          let e =
            if cfg.Config.watchdog_cycles > 0 then
              min e (!b + cfg.Config.watchdog_cycles - !idle)
            else e
          in
          let e = min e cfg.Config.max_cycles in
          let e = max e (!b + 1) in
          incr tel_epochs;
          run_epoch e;
          (* serial dispatch replay, in (cycle, SM index) order *)
          let rec resolve () =
            let best = ref (-1) in
            Array.iteri
              (fun i c ->
                if
                  c >= 0
                  && (!best < 0
                     || c < pauses.(!best)
                     || (c = pauses.(!best) && i < !best))
                then best := i)
              pauses;
            if !best >= 0 then begin
              let i = !best in
              let c = pauses.(i) in
              pauses.(i) <- -1;
              incr tel_pauses;
              launch i c;
              advance ~open_:(!next_tb < ntbs) i e;
              resolve ()
            end
          in
          resolve ();
          tel_batched := !tel_batched + Sm.commit_epoch ~dram sms;
          for i = 0 to num_sms - 1 do
            if done_at.(i) < 0 then wakes.(i) <- Sm.next_event_cycle sms.(i)
          done;
          if Array.for_all (fun d -> d >= 0) done_at then
            (* the serial loop exits right after the cycle of the last
               retirement; lagging SMs are caught up below *)
            finished := Some (Array.fold_left max 0 done_at)
          else begin
            (* Deadlock watchdog, evaluated at the barrier from per-SM
               timestamps: idle spans the checks the serial loop would
               have made since the later of last token movement + 1 and
               the last writeback (in-flight work drains exactly there).
               The epoch caps above make the count hit [watchdog_cycles]
               exactly at a barrier — the serial firing cycle. *)
            if cfg.Config.watchdog_cycles > 0 then begin
              let inflight =
                Array.fold_left
                  (fun acc sm -> acc + Sm.inflight_count sm)
                  0 sms
              in
              let prev_idle = !idle in
              if inflight > 0 then idle := 0
              else begin
                let f = ref 1 in
                Array.iter
                  (fun sm ->
                    let p = Sm.last_progress sm + 1 in
                    if p > !f then f := p;
                    let wb = Sm.last_wb_cycle sm in
                    if wb > !f then f := wb)
                  sms;
                idle := max 0 (e - !f + 1)
              end;
              if prev_idle = 0 && !idle > 0 then incr tel_arms;
              if !idle >= cfg.Config.watchdog_cycles then
                error :=
                  Some
                    (Sim_error.Deadlock
                       {
                         message =
                           Printf.sprintf
                             "no warp fetched, issued or skipped and no \
                              operation was in flight for %d cycles"
                             !idle;
                         diag = diag ~at:e ~cycles:e ();
                       })
            end;
            (* the serial loop only declares the bound exceeded when it
               enters cycle max_cycles + 1, i.e. after the watchdog had
               its chance at max_cycles *)
            if !error = None && e >= cfg.Config.max_cycles then
              error :=
                Some
                  (Sim_error.Cycle_bound
                     {
                       bound = cfg.Config.max_cycles;
                       message =
                         Printf.sprintf
                           "simulation exceeded its cycle bound of %d cycles"
                           cfg.Config.max_cycles;
                       diag =
                         diag ~at:cfg.Config.max_cycles
                           ~cycles:(cfg.Config.max_cycles + 1) ();
                     });
            (match deadline with
            | Some budget_s when !error = None ->
              let elapsed = Sys.time () -. started in
              if elapsed > budget_s then
                error :=
                  Some
                    (Sim_error.Wall_timeout
                       {
                         budget_s;
                         cycle = e;
                         message =
                           Printf.sprintf
                             "wall-clock budget of %gs exhausted at cycle %d"
                             budget_s e;
                       })
            | _ -> ());
            if
              !b lsr 16 <> e lsr 16
              && Tel.Progress.mode () <> Tel.Progress.Off
            then begin
              let elapsed_s = float_of_int (Tel.elapsed_ns () - hb_t0) /. 1e9 in
              Tel.Progress.cycles ~cycles:e
                ~cycles_per_sec:
                  (if elapsed_s <= 0.0 then 0.0
                   else float_of_int e /. elapsed_s)
                ~engine:(Sm.engine_name sms.(0))
            end
          end;
          b := e
        done
   with exn ->
     stop_workers ();
     raise exn);
  stop_workers ();
  if !tel_epochs > 0 then Tel.incr ~by:!tel_epochs "shard.epochs";
  if !tel_pauses > 0 then Tel.incr ~by:!tel_pauses "shard.pauses";
  if !tel_batched > 0 then Tel.incr ~by:!tel_batched "shard.dram_batched";
  if !tel_arms > 0 then Tel.incr ~by:!tel_arms "watchdog.arms";
  (* straggler report: a shard that dominates the epoch wall time caps
     the speedup; say so when someone is watching progress *)
  (if Tel.Progress.mode () <> Tel.Progress.Off && nworkers > 1 then begin
     let total = Array.fold_left ( + ) 0 worker_busy_ns in
     let busiest = ref 0 in
     Array.iteri
       (fun w ns -> if ns > worker_busy_ns.(!busiest) then busiest := w)
       worker_busy_ns;
     if total > 0 then begin
       let share =
         float_of_int worker_busy_ns.(!busiest) /. float_of_int total
       in
       if share > 1.5 /. float_of_int nworkers then
         Tel.Progress.warn
           (Printf.sprintf
              "shard straggler: domain %d carried %.0f%% of %d domains' \
               simulation time"
              !busiest (100.0 *. share) nworkers)
     end
   end);
  match !error with
  | Some e -> Stdlib.Error e
  | None ->
    let cycles = match !finished with Some c -> c | None -> assert false in
    catch_up cycles;
    Ok
      (assemble ~cycles ~sample_interval:None ~pcstat:false ~tbs_per_sm kernel
         sms)

let run ?(cfg = Config.default) ?(sink = Obs.Sink.null) ?sample_interval
    ?(event_window = 0) ?deadline ?(pcstat = false) factory (kinfo : Kinfo.t)
    (trace : Record.t) =
  let sp = Tel.begin_span "gpu.run" in
  let domains = resolve_domains cfg in
  (* The sharded loop trades away the per-cycle observability hooks; any
     request for them (or a degenerate memory model whose requests could
     complete inside an epoch) falls back to the serial loop, which is
     always bit-identical anyway. *)
  let sharded =
    domains > 1 && (not pcstat)
    && (not (Obs.Sink.enabled sink))
    && event_window = 0 && sample_interval = None
    && cfg.Config.l1_lat + cfg.Config.dram_lat >= 1
  in
  match
    if sharded then
      sharded_body ~cfg ~deadline ~domains factory kinfo trace
    else
      run_body ~cfg ~sink ~sample_interval ~event_window ~deadline ~pcstat
        factory kinfo trace
  with
  | Ok r as res ->
    Tel.end_span
      ~args:[ ("engine", Tel.Str r.engine); ("cycles", Tel.Int r.cycles) ]
      sp;
    res
  | Stdlib.Error _ as res ->
    Tel.end_span ~args:[ ("error", Tel.Bool true) ] sp;
    res
  | exception e ->
    Tel.end_span ~args:[ ("raised", Tel.Bool true) ] sp;
    raise e

let run_exn ?cfg ?sink ?sample_interval ?event_window ?deadline ?pcstat
    factory kinfo trace =
  match run ?cfg ?sink ?sample_interval ?event_window ?deadline ?pcstat
          factory kinfo trace
  with
  | Ok r -> r
  | Stdlib.Error e -> raise (Sim_error.Simulation_error e)

let ipc r =
  if r.cycles = 0 then 0.0
  else float_of_int r.stats.Stats.issued /. float_of_int r.cycles

(* Each SM steps once per simulated cycle and classifies that cycle into
   exactly one bucket, so this can only fail if the model drifts. When
   per-PC profiling was on, the same classification also charged exactly
   one (PC row, bucket) pair per cycle, so each SM's per-PC column sums
   must reproduce its bucket totals — the cross-layer conservation
   invariant behind [darsie annotate]. *)
let check_attribution r =
  let bad = ref [] in
  Array.iteri
    (fun i a ->
      let tot = Obs.Attrib.total a in
      if tot <> r.cycles then bad := (i, tot) :: !bad)
    r.per_sm_attribution;
  match List.rev !bad with
  | (sm, tot) :: _ ->
    Error
      (Printf.sprintf
         "stall attribution does not sum to cycles on SM %d: %d buckets vs %d \
          cycles (engine %s)"
         sm tot r.cycles r.engine)
  | [] ->
    let mismatch = ref None in
    Array.iteri
      (fun i p ->
        if !mismatch = None then begin
          let per_pc = Obs.Attrib.to_assoc (Obs.Pcstat.bucket_totals p) in
          let per_sm = Obs.Attrib.to_assoc r.per_sm_attribution.(i) in
          List.iter2
            (fun (name, pc_tot) (_, sm_tot) ->
              if !mismatch = None && pc_tot <> sm_tot then
                mismatch := Some (i, name, pc_tot, sm_tot))
            per_pc per_sm
        end)
      r.per_sm_pcstat;
    (match !mismatch with
    | None -> Ok ()
    | Some (sm, name, pc_tot, sm_tot) ->
      Error
        (Printf.sprintf
           "per-PC stall charges diverge from SM attribution on SM %d, \
            bucket %s: %d per-PC vs %d per-SM (engine %s)"
           sm name pc_tot sm_tot r.engine))

(* The skip-ledger conservation invariant, enforced like the attribution
   one: per SM and per PC the eligible dynamic occurrences must equal the
   recorded fates, and the run-wide ledger must reproduce the per-SM sum
   exactly. *)
let check_ledger r =
  let bad = ref None in
  Array.iteri
    (fun i l ->
      if !bad = None then
        match Obs.Ledger.check l with
        | Ok () -> ()
        | Error msg -> bad := Some (Printf.sprintf "SM %d: %s" i msg))
    r.per_sm_ledger;
  match !bad with
  | Some msg -> Error (Printf.sprintf "%s (engine %s)" msg r.engine)
  | None -> (
    match Obs.Ledger.check r.ledger with
    | Error msg -> Error (Printf.sprintf "aggregate: %s (engine %s)" msg r.engine)
    | Ok () ->
      let sum_expected =
        Array.fold_left
          (fun acc l -> acc + Obs.Ledger.expected_total l)
          0 r.per_sm_ledger
      in
      if sum_expected <> Obs.Ledger.expected_total r.ledger then
        Error
          (Printf.sprintf
             "aggregate ledger diverges from per-SM sum: %d vs %d eligible \
              occurrences (engine %s)"
             (Obs.Ledger.expected_total r.ledger)
             sum_expected r.engine)
      else Ok ())
