open Darsie_isa
open Darsie_compiler

type unit_class = Alu | Sfu | Mem_global | Mem_shared | Ctrl

type t = {
  kernel : Kernel.t;
  launch : Kernel.launch;
  analysis : Analysis.t;
  promotion : Promotion.t;
  unit_of : unit_class array;
  is_branch : bool array;
  is_barrier : bool array;
  is_load : bool array;
  mem_dep : bool array;
  is_store : bool array;
  is_atomic : bool array;
  src_regs : int list array;
  dst_reg : int option array;
  nsrcs : int array;
  tb_redundant : bool array;
  dac_removable : bool array;
  uv_eligible : bool array;
  marked_eligible : bool array;
  shape : Marking.shape array;
}

let classify inst =
  if Instr.is_barrier inst || Instr.is_exit inst then Ctrl
  else if Instr.is_branch inst then Ctrl
  else if Instr.is_atomic inst then Mem_global
  else
    match inst.Instr.body with
    | Instr.Ld (Instr.Global, _, _, _) | Instr.St (Instr.Global, _, _, _) ->
      Mem_global
    | Instr.Ld (Instr.Shared, _, _, _) | Instr.St (Instr.Shared, _, _, _) ->
      Mem_shared
    | _ -> if Instr.is_sfu inst then Sfu else Alu

let of_promotion (promotion : Promotion.t) (launch : Kernel.launch) =
  let analysis = promotion.Promotion.analysis in
  let kernel = analysis.Analysis.kernel in
  let insts = kernel.Kernel.insts in
  let n = Array.length insts in
  {
    kernel;
    launch;
    analysis;
    promotion;
    unit_of = Array.map classify insts;
    is_branch = Array.map Instr.is_branch insts;
    is_barrier = Array.map Instr.is_barrier insts;
    is_load = Array.map Instr.is_load insts;
    mem_dep = Array.init n (Analysis.mem_dep analysis);
    is_store = Array.map Instr.is_store insts;
    is_atomic = Array.map Instr.is_atomic insts;
    src_regs = Array.map Instr.src_regs insts;
    dst_reg = Array.map Instr.dst_reg insts;
    nsrcs = Array.map (fun i -> List.length (Instr.src_regs i)) insts;
    tb_redundant = promotion.Promotion.tb_redundant;
    dac_removable = promotion.Promotion.dac_removable;
    uv_eligible = promotion.Promotion.uv_eligible;
    marked_eligible =
      Array.init n (fun i ->
          Analysis.skippable analysis i
          && Analysis.marking analysis i <> Marking.Vector);
    shape = Array.init n (fun i -> Analysis.shape analysis i);
  }

let make ?(tid_y_redundancy = false) ~warp_size (launch : Kernel.launch) =
  let analysis = Analysis.analyze ~tid_y_redundancy launch.Kernel.kernel in
  let promotion = Promotion.resolve analysis launch ~warp_size in
  of_promotion promotion launch
