(** Memory-system timing: global-memory coalescing, a per-SM L1 cache, a
    shared DRAM channel and shared-memory bank-conflict accounting. *)

val coalesce : line_bytes:int -> int array -> int list
(** Unique cache-line base addresses touched by a warp's accesses, in first
    touch order — the number of memory transactions after coalescing. *)

val shared_conflicts : banks:int -> int array -> int
(** Extra serialization cycles from shared-memory bank conflicts: with
    word-interleaved banks, the maximum number of distinct words mapped to
    one bank, minus one. Lanes reading the same word broadcast for free. *)

(** Set-associative, write-through, no-write-allocate L1 with LRU
    replacement. *)
module L1 : sig
  type t

  val create : bytes:int -> assoc:int -> line:int -> t

  val access : t -> int -> bool
  (** [access t line_addr] — true on hit; allocates on miss. *)

  val probe : t -> int -> bool
  (** Hit test without state change. *)

  val flush : t -> unit
end

(** A single DRAM channel shared by all SMs: fixed service rate and fixed
    latency on top of queueing. *)
module Dram : sig
  type t

  val create : txn_cycles:int -> latency:int -> t

  val request : t -> now:int -> ntxns:int -> int
  (** Completion cycle for a burst of transactions issued at [now]. *)

  val busy_until : t -> int

  val next_event : t -> now:int -> int option
  (** Earliest future cycle the channel state changes (the queue drains),
      or [None] when it is already idle. Bounds fast-forward jumps; the
      per-burst completion cycles live in each SM's in-flight list. *)
end
