(** Timing-model configuration (paper Table 2, scaled).

    The paper models a GTX 1080 Ti (Pascal): 28 SMs, 64 warps/SM, 32
    TBs/SM, 2K vector registers per SM, 4 GTO warp schedulers. We default
    to 4 SMs so the full evaluation runs in seconds on a laptop; all other
    per-SM parameters follow the paper. *)

(** Warp-issue scheduling policy: greedy-then-oldest (the paper's best
    performer) or loose round robin. The paper reports these regular
    applications are largely insensitive to the choice. *)
type scheduler = Gto | Lrr

type t = {
  num_sms : int;
  warp_size : int;
  max_warps_per_sm : int;
  max_tbs_per_sm : int;
  regfile_vregs : int;  (** vector registers per SM *)
  rf_banks : int;
  num_schedulers : int;
  scheduler : scheduler;
  issue_per_scheduler : int;  (** dual issue = 2 *)
  fetch_width : int;  (** warps fetched from per SM per cycle *)
  issue_width : int;
      (** fetch-bundle width: sequential instructions fetched from one
          selected warp in one cycle (milo832-style dual-issue
          superscalar fetch = 2). Each bundle slot re-consults the
          engine's fetch gate and pre-fetch skip path independently, so
          a skipped leader can pair with its follower. [1] (default)
          reproduces the original single-issue fetch exactly *)
  ibuf_depth : int;  (** per-warp instruction buffer entries *)
  shared_bytes_per_sm : int;
  barrier_lat : int;
      (** cycles from last-warp arrival to barrier release (the barrier
          network round trip; also charged to SILICON-SYNC branches) *)
  alu_lat : int;
  sfu_lat : int;
  shared_lat : int;
  icache_bytes : int;  (** per-SM instruction cache *)
  icache_line : int;  (** instructions share 128B lines (16 instructions) *)
  icache_miss_lat : int;
  collector_units : int;
      (** operand-collector units: instructions concurrently gathering
          register operands (structural limit on issue) *)
  l1_lat : int;
  l1_bytes : int;
  l1_assoc : int;
  l1_line : int;
  dram_lat : int;
  dram_txn_cycles : int;  (** cycles of DRAM channel occupancy per 128B transaction *)
  mshrs : int;
      (** per-warp miss-status holding registers: outstanding L1-missed
          lines a single warp may have in flight; a global load needs a
          free MSHR to issue and allocates one per missed line, released
          out of order at writeback. [0] (default) models unlimited
          MSHRs — the original idealized memory path, bit-identical to
          the pre-knob simulator. The milo832 spec value is 64 *)
  smem_banks : int;
      (** shared-memory banks with conflict {e replay}: a conflicting
          shared access holds the shared port for its serialized replay
          cycles, blocking further shared issues and charging the
          [Mem_struct] stall bucket. [0] (default) keeps the legacy
          model — conflicts only lengthen the access's own latency
          (computed over [warp_size] banks) without occupying the port *)
  sfu_per_cycle : int;
  mem_per_cycle : int;  (** memory instructions issued per SM per cycle *)
  sync_at_branches : bool;
      (** SILICON-SYNC: a TB-wide barrier at every basic-block boundary *)
  skip_entries_per_tb : int;  (** DARSIE PC-skip-table entries per TB *)
  rename_regs_per_tb : int;  (** DARSIE renamed physical registers per TB *)
  coalescer_ports : int;  (** PC-coalescer ports: distinct skip PCs per cycle *)
  max_skips_per_warp_cycle : int;
  max_cycles : int;
      (** hard simulation cycle bound; exceeding it is a
          [Sim_error.Cycle_bound] *)
  watchdog_cycles : int;
      (** deadlock watchdog: fail when no warp makes progress and no
          memory request is in flight for this many consecutive cycles;
          [0] disables the watchdog *)
  fast_forward : bool;
      (** event-driven idle-cycle fast-forwarding: when every SM is
          stalled on known-latency events, jump the clock to the earliest
          wake-up and bulk-charge the skipped span. Bit-identical to
          stepping every cycle; [false] forces the cycle-by-cycle path
          (the [--no-fast-forward] escape hatch) *)
  sm_domains : int;
      (** host-side worker domains one {!Gpu.run} shards its SM array
          across. [1] (default) is the serial cycle loop, bit-identical
          to the historical machine by construction; [0] auto-sizes to
          [min num_sms (Domain.recommended_domain_count ())]. Sharded
          runs are bit-identical to serial stepping — this is a host
          performance knob, not a machine parameter, so it is excluded
          from {!knobs} and from the metrics [machine_config] echo *)
  epoch_slack : int;
      (** epoch length (clock slack) of the sharded cycle loop: each
          worker advances its SMs this many cycles between barriers.
          [0] (default) auto-sizes to the soundness bound
          [l1_lat + dram_lat]; explicit values are clamped to that
          bound, below which a deferred DRAM request provably cannot
          complete inside its own epoch. Like [sm_domains], timing
          invisible *)
}

val default : t

val pp : Format.formatter -> t -> unit
(** Render the configuration as a Table-2 style listing. *)

val knobs : t -> (string * int) list
(** Stable [(name, value)] listing of every integer knob. The
    machine-model doc quotes defaults as ["`name` = value"]; the docs
    test validates each quoted default against [knobs default]. *)
