(** Event counters collected by the timing model.

    These counters drive both the performance results (cycles, instruction
    reductions by taxonomy class) and the energy model, which assigns a
    per-event energy to each counter. *)

type t = {
  mutable cycles : int;
  mutable fetched : int;  (** warp instructions fetched (I-cache accesses) *)
  mutable icache_misses : int;
  mutable issued : int;  (** warp instructions issued to execution *)
  mutable executed_threads : int;  (** thread-level instructions executed *)
  mutable skipped_prefetch : int;
      (** warp instructions eliminated before fetch (DARSIE skips, DAC
          stream removal) *)
  mutable dropped_issue : int;  (** eliminated at issue (UV reuse hits) *)
  mutable elim_uniform : int;  (** eliminated instructions by static shape *)
  mutable elim_affine : int;
  mutable elim_unstructured : int;
  mutable rf_reads : int;
  mutable rf_writes : int;
  mutable alu_ops : int;
  mutable sfu_ops : int;
  mutable mem_ops : int;
  mutable shared_accesses : int;
  mutable shared_bank_conflicts : int;
  mutable smem_replay_cycles : int;
      (** shared-port cycles spent serializing bank-conflict replays;
          counted only when [Config.smem_banks] > 0 *)
  mutable l1_accesses : int;
  mutable l1_misses : int;
  mutable dram_transactions : int;
  mutable rf_bank_conflicts : int;
  mutable barrier_stall_cycles : int;  (** warp-cycles spent at barriers *)
  mutable fetch_stall_cycles : int;
      (** cycles the fetch stage found nothing fetchable *)
  mutable darsie_sync_stalls : int;
      (** warp-cycles stalled by DARSIE synchronization (branch sync,
          follower waiting for LeaderWB, freelist pressure) *)
  mutable skip_table_probes : int;
  mutable rename_accesses : int;
  mutable coalescer_probes : int;
  mutable majority_updates : int;
}

val create : unit -> t

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (cycles take the max, for
    summing per-SM stats into a GPU total). *)

val total_eliminated : t -> int

val pp : Format.formatter -> t -> unit
