(** One streaming multiprocessor: the paper's Figure 4 pipeline.

    Per cycle: writeback of completed operations, barrier release, GTO
    dual-issue from per-warp instruction buffers (with scoreboard and
    structural hazards, register-file bank conflicts, and the memory
    system), then the plugged-in engine's pre-fetch skip phase, then
    loose-round-robin fetch into the I-buffers.

    The SM is trace-driven: each resident warp replays the instruction
    stream recorded by the functional emulator. *)

type t

val sample_names : string list
(** Counter names (column order) of the per-interval time-series. *)

val create :
  ?sm_id:int ->
  ?sink:Darsie_obs.Sink.t ->
  ?series:Darsie_obs.Series.t ->
  ?pcstat:Darsie_obs.Pcstat.t ->
  ?deferred_dram:bool ->
  Config.t ->
  Kinfo.t ->
  Engine.factory ->
  Mem_model.Dram.t ->
  slots:int ->
  warps_per_tb:int ->
  t
(** [sm_id] tags emitted events (default 0); [sink] defaults to the null
    sink (tracing off costs one branch per event site); [series], when
    given, receives an interval-sampled counter snapshot (see
    {!sample_names}); [pcstat], when given, receives per-static-PC
    occurrence counters and a per-cycle stall charge mirroring
    {!attribution}; [deferred_dram] (default false, sharded cycle loop
    only) queues issue-stage DRAM requests locally under a placeholder
    completion until {!commit_epoch} replays them against the shared
    channel. *)

val can_accept : t -> bool
(** Has a free threadblock slot. *)

val launch_tb : t -> tb_id:int -> traces:Darsie_trace.Record.op array array -> unit
(** Install a threadblock's per-warp traces into a free slot.

    @raise Invalid_argument when no slot is free. *)

val step : t -> unit
(** Advance one cycle. *)

val next_event_cycle : t -> int
(** Earliest future cycle at which stepping this SM could do anything
    observable: the soonest of a pending writeback completion, a barrier
    release (or a barrier/retirement state transition due next step), a
    scoreboard-ready instruction-buffer head, a fetch-latency expiry, the
    next time-series sampling boundary, or "runnable now" whenever the
    plugged-in engine's skip phase was not a no-op last cycle. [max_int]
    means no event will ever fire (idle, or deadlocked — deadlocks must
    keep stepping so the watchdog sees them). Valid between two {!step}
    calls; conservative by construction. *)

val fast_forward : t -> to_:int -> unit
(** Jump the clock to [to_] without stepping, bulk-charging the skipped
    span into the same {!attribution} bucket, per-PC charge and stall
    counters that stepping each cycle would have produced. Only sound
    when [to_ < next_event_cycle t]; bit-identical to stepping by
    construction. *)

val busy : t -> bool
(** True while any threadblock is resident or operations are in flight. *)

val stats : t -> Stats.t

val engine_name : t -> string

val cycle : t -> int

val attribution : t -> Darsie_obs.Attrib.t
(** Per-cycle stall attribution; its total equals {!cycle} at any point
    between two {!step} calls. *)

val ledger : t -> Darsie_obs.Ledger.t
(** The always-on skip ledger: per statically eligible PC, the fates of
    every dynamic occurrence this SM has fully fetched or skipped. Its
    conservation invariant (eligible = Σ fates) holds once the SM has
    drained; see {!Gpu.check_ledger}. *)

val pcstat : t -> Darsie_obs.Pcstat.t option
(** The per-PC profile passed to {!create}, if any. Complete only after
    {!finalize} (which folds in engine-side skip telemetry). *)

val skip_telemetry : t -> (int * Darsie_obs.Pcstat.skip_entry) list
(** Per-PC skip-table entry telemetry from the plugged-in engine; empty
    for engines without a skip table. *)

val inflight_count : t -> int
(** Operations currently between issue and writeback. *)

val progress_token : t -> int
(** Monotone counter that advances exactly when the SM fetched, issued,
    dropped or skipped something. The GPU-level deadlock watchdog fires
    when every SM's token freezes with nothing in flight. *)

val tbs_retired : t -> int
(** Monotone count of threadblocks this SM has retired. The sharded
    cycle loop's workers pause an SM whenever this advances so the epoch
    driver can replay the serial loop's dispatch scan at the exact
    retirement instant. *)

val last_wb_cycle : t -> int
(** Cycle of this SM's most recent writeback (0 before any). With
    {!last_progress}, lets the epoch driver evaluate the serial deadlock
    watchdog exactly at epoch barriers. *)

val last_progress : t -> int
(** Most recent cycle at which this SM's {!progress_token} advanced
    (1 before any, mirroring the serial watchdog's one-compare lag). *)

val commit_epoch : dram:Mem_model.Dram.t -> t array -> int
(** Epoch barrier of the sharded cycle loop: drain every SM's deferred
    DRAM queue, replay the requests against [dram] in canonical serial
    (cycle, SM index, issue sequence) order, patch the placeholder
    completions of the affected in-flight records, and restore each SM's
    earliest-writeback bound. Sound because the epoch length never
    exceeds [l1_lat + dram_lat], so no deferred request can complete
    within the epoch that issued it. Returns the number of requests
    replayed. *)

val warp_snapshots : t -> Darsie_check.Sim_error.warp_snapshot list
(** Per-resident-warp state for failure diagnostics. *)

val debug_state : t -> (string * int) list
(** The plugged-in engine's diagnostic counters. *)

val series : t -> Darsie_obs.Series.t option

val finalize : t -> unit
(** Flush the trailing partial sampling interval and fold engine-side
    skip telemetry into the per-PC profile. Call once after the last
    {!step}. *)
