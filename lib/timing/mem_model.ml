(* Int-keyed hash tables for the per-access hot paths; same hash as the
   polymorphic default (so bucket layouts — and thus any iteration
   order — are unchanged), but with monomorphic key equality. *)
module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) (b : int) = a = b

  let hash = Hashtbl.hash
end)

let rec mem_int (x : int) = function
  | [] -> false
  | y :: ys -> y = x || mem_int x ys

let coalesce ~line_bytes accesses =
  let seen = Int_tbl.create 32 in
  let lines = ref [] in
  Array.iter
    (fun addr ->
      let line = addr - (addr mod line_bytes) in
      if not (Int_tbl.mem seen line) then begin
        Int_tbl.add seen line ();
        lines := line :: !lines
      end)
    accesses;
  List.rev !lines

let shared_conflicts ~banks accesses =
  if Array.length accesses = 0 then 0
  else begin
    (* bank = word address mod banks; distinct words on the same bank
       serialize, identical words broadcast *)
    let per_bank = Int_tbl.create 64 in
    Array.iter
      (fun addr ->
        let word = addr / 4 in
        let bank = word mod banks in
        let words =
          match Int_tbl.find_opt per_bank bank with
          | None -> []
          | Some ws -> ws
        in
        if not (mem_int word words) then
          Int_tbl.replace per_bank bank (word :: words))
      accesses;
    let worst =
      Int_tbl.fold (fun _ ws acc -> max acc (List.length ws)) per_bank 1
    in
    worst - 1
  end

module L1 = struct
  type set = { tags : int array; last_use : int array }

  type t = {
    assoc : int;
    line : int;
    nsets : int;
    sets : set array;
    mutable tick : int;
  }

  let create ~bytes ~assoc ~line =
    let nsets = max 1 (bytes / (assoc * line)) in
    {
      assoc;
      line;
      nsets;
      sets =
        Array.init nsets (fun _ ->
            { tags = Array.make assoc (-1); last_use = Array.make assoc 0 });
      tick = 0;
    }

  let locate t addr =
    let line_id = addr / t.line in
    let set = line_id mod t.nsets in
    let tag = line_id / t.nsets in
    (t.sets.(set), tag)

  let probe t addr =
    let set, tag = locate t addr in
    Array.exists (fun x -> x = tag) set.tags

  let access t addr =
    t.tick <- t.tick + 1;
    let set, tag = locate t addr in
    let hit = ref false in
    Array.iteri
      (fun i x ->
        if x = tag then begin
          hit := true;
          set.last_use.(i) <- t.tick
        end)
      set.tags;
    if not !hit then begin
      (* LRU victim *)
      let victim = ref 0 in
      for i = 1 to t.assoc - 1 do
        if set.last_use.(i) < set.last_use.(!victim) then victim := i
      done;
      set.tags.(!victim) <- tag;
      set.last_use.(!victim) <- t.tick
    end;
    !hit

  let flush t =
    Array.iter
      (fun s ->
        Array.fill s.tags 0 (Array.length s.tags) (-1);
        Array.fill s.last_use 0 (Array.length s.last_use) 0)
      t.sets
end

module Dram = struct
  type t = { txn_cycles : int; latency : int; mutable next_free : int }

  let create ~txn_cycles ~latency = { txn_cycles; latency; next_free = 0 }

  let request t ~now ~ntxns =
    let start = max now t.next_free in
    t.next_free <- start + (ntxns * t.txn_cycles);
    t.next_free + t.latency

  let busy_until t = t.next_free

  (* Earliest future event on the channel: the queue draining. Individual
     burst completions are tracked by the issuing SM's in-flight list;
     this only bounds how far the fast-forward path may jump while the
     channel is still serving transactions. *)
  let next_event t ~now = if t.next_free > now then Some t.next_free else None
end
