open Darsie_isa

type config = { warp_size : int; capture_operands : bool }

let default_config = { warp_size = 32; capture_operands = false }

type exec_record = {
  tb : int;
  warp : int;
  inst_index : int;
  occ : int;
  active : int;
  operands : Value.t array array;
  dst_values : Value.t array option;
  accesses : int array;
}

type stats = { warp_insts : int; thread_insts : int; max_stack_depth : int }

type site = {
  site_tb : int;
  site_warp : int;
  site_inst : int;
  site_occ : int;
  site_active : int;
}

type action = Execute | Skip_instruction | Force_dst of Value.t array

type park_state = Running | At_barrier | Exited

type warp_park = {
  park_warp : int;
  park_pc : int;
  park_state : park_state;
  park_barrier_pc : int;
}

type error =
  | Barrier_deadlock of { tb : int; warps : warp_park list }
  | No_progress of { tb : int; warps : warp_park list }
  | Runaway of { executed : int; bound : int }
  | Exec_fault of string

exception Fault of string

exception Error of error

let fault fmt = Printf.ksprintf (fun m -> raise (Fault m)) fmt

let park_line p =
  match p.park_state with
  | Exited -> Printf.sprintf "warp %d: exited" p.park_warp
  | At_barrier ->
    Printf.sprintf "warp %d: parked at barrier (inst %d), resume pc %d"
      p.park_warp p.park_barrier_pc p.park_pc
  | Running -> Printf.sprintf "warp %d: runnable at pc %d" p.park_warp p.park_pc

let error_message = function
  | Barrier_deadlock { tb; warps } ->
    Printf.sprintf "barrier deadlock in threadblock %d:\n  %s" tb
      (String.concat "\n  " (List.map park_line warps))
  | No_progress { tb; warps } ->
    Printf.sprintf "scheduler made no progress in threadblock %d:\n  %s" tb
      (String.concat "\n  " (List.map park_line warps))
  | Runaway { executed; bound } ->
    Printf.sprintf "runaway kernel: executed %d warp instructions (bound %d)"
      executed bound
  | Exec_fault m -> m

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* Per-warp architectural state. *)
type warp_state = {
  regs : Value.t array array;  (* [reg].[lane] *)
  preds : bool array array;
  stack : Simt_stack.t;
  occs : int array;  (* per instruction index *)
  tid_x : int array;
  tid_y : int array;
  tid_z : int array;
  valid_mask : int;  (* lanes backed by real threads *)
  mutable at_barrier : bool;
  mutable exited : bool;
  mutable last_barrier_pc : int;  (* last barrier executed; -1 if none *)
}

type tb_ctx = {
  launch : Kernel.launch;
  tb_index : int;
  ctaid : int * int * int;
  shared : Bytes.t;
  warps : warp_state array;
}

let sreg_value ctx ws lane (s : Instr.sreg) =
  let bx, by, bz = ctx.ctaid in
  let bd = ctx.launch.Kernel.block_dim and gd = ctx.launch.Kernel.grid_dim in
  let axis_of (x, y, z) = function Instr.X -> x | Instr.Y -> y | Instr.Z -> z in
  match s with
  | Instr.Tid a ->
    axis_of (ws.tid_x.(lane), ws.tid_y.(lane), ws.tid_z.(lane)) a
  | Instr.Ntid a -> axis_of (bd.Kernel.x, bd.Kernel.y, bd.Kernel.z) a
  | Instr.Ctaid a -> axis_of (bx, by, bz) a
  | Instr.Nctaid a -> axis_of (gd.Kernel.x, gd.Kernel.y, gd.Kernel.z) a

let operand_value ctx ws lane (op : Instr.operand) =
  match op with
  | Instr.Reg r -> ws.regs.(r).(lane)
  | Instr.Imm v -> v
  | Instr.Sreg s -> Value.of_signed (sreg_value ctx ws lane s)
  | Instr.Param i -> ctx.launch.Kernel.params.(i)

let shared_load ctx addr =
  if addr < 0 || addr + 4 > Bytes.length ctx.shared || addr land 3 <> 0 then
    fault "shared load out of bounds or misaligned: 0x%x" addr;
  Value.of_int32 (Bytes.get_int32_le ctx.shared addr)

let shared_store ctx addr v =
  if addr < 0 || addr + 4 > Bytes.length ctx.shared || addr land 3 <> 0 then
    fault "shared store out of bounds or misaligned: 0x%x" addr;
  Bytes.set_int32_le ctx.shared addr (Value.to_int32 v)

let eval_binop (op : Instr.binop) a b =
  match op with
  | Instr.Add -> Value.add a b
  | Instr.Sub -> Value.sub a b
  | Instr.Mul -> Value.mul a b
  | Instr.Mulhi -> Value.mulhi_s a b
  | Instr.Div_s -> Value.div_s a b
  | Instr.Div_u -> Value.div_u a b
  | Instr.Rem_s -> Value.rem_s a b
  | Instr.Rem_u -> Value.rem_u a b
  | Instr.Min_s -> Value.min_s a b
  | Instr.Max_s -> Value.max_s a b
  | Instr.Min_u -> Value.min_u a b
  | Instr.Max_u -> Value.max_u a b
  | Instr.And -> Value.logand a b
  | Instr.Or -> Value.logor a b
  | Instr.Xor -> Value.logxor a b
  | Instr.Shl -> Value.shl a b
  | Instr.Shr_u -> Value.shr_u a b
  | Instr.Shr_s -> Value.shr_s a b
  | Instr.Fadd -> Value.fadd a b
  | Instr.Fsub -> Value.fsub a b
  | Instr.Fmul -> Value.fmul a b
  | Instr.Fdiv -> Value.fdiv a b
  | Instr.Fmin -> Value.fmin a b
  | Instr.Fmax -> Value.fmax a b

let eval_unop (op : Instr.unop) a =
  match op with
  | Instr.Mov -> a
  | Instr.Not -> Value.lognot a
  | Instr.Neg -> Value.neg a
  | Instr.Abs_s -> Value.abs_s a
  | Instr.Fneg -> Value.fneg a
  | Instr.Fabs -> Value.fabs a
  | Instr.Fsqrt -> Value.fsqrt a
  | Instr.Frcp -> Value.frcp a
  | Instr.Fexp2 -> Value.fexp2 a
  | Instr.Flog2 -> Value.flog2 a
  | Instr.Fsin -> Value.fsin a
  | Instr.Fcos -> Value.fcos a
  | Instr.Cvt_i2f -> Value.cvt_i2f a
  | Instr.Cvt_u2f -> Value.cvt_u2f a
  | Instr.Cvt_f2i -> Value.cvt_f2i a

let eval_cmp (kind : Instr.cmp_kind) (cmp : Instr.cmp) a b =
  let test c =
    match cmp with
    | Instr.Eq -> c = 0
    | Instr.Ne -> c <> 0
    | Instr.Lt -> c < 0
    | Instr.Le -> c <= 0
    | Instr.Gt -> c > 0
    | Instr.Ge -> c >= 0
  in
  match kind with
  | Instr.Scmp -> test (Value.cmp_s a b)
  | Instr.Ucmp -> test (Value.cmp_u a b)
  | Instr.Fcmp -> (
    match Value.cmp_f a b with None -> cmp = Instr.Ne | Some c -> test c)

let eval_atom (op : Instr.atom_op) old v cas_cmp =
  match op with
  | Instr.Atom_add -> Value.add old v
  | Instr.Atom_max -> Value.max_s old v
  | Instr.Atom_min -> Value.min_s old v
  | Instr.Atom_exch -> v
  | Instr.Atom_cas -> if old = cas_cmp then v else old

let run ?(config = default_config) ?on_exec ?(max_warp_insts = 50_000_000)
    ?(strict_barriers = false) ?intercept (mem : Memory.t)
    (launch : Kernel.launch) =
  let kernel = launch.Kernel.kernel in
  let insts = kernel.Kernel.insts in
  let ninsts = Array.length insts in
  let ws_size = config.warp_size in
  if ws_size < 1 || ws_size > 62 then
    invalid_arg "Interp.run: warp size must be within 1..62";
  let cfg = Darsie_compiler.Cfg.build kernel in
  let postdom = Darsie_compiler.Postdom.compute cfg in
  let reconv = Array.init ninsts (fun i ->
      if Instr.is_branch insts.(i) then
        match Darsie_compiler.Postdom.reconvergence_inst postdom i with
        | Some r -> r
        | None -> -1
      else -1)
  in
  let nwarps = Kernel.warps_per_block launch ~warp_size:ws_size in
  let total_warp_insts = ref 0 and total_thread_insts = ref 0 in
  let max_depth = ref 1 in
  let init_warp w =
    let tid_x = Array.make ws_size 0
    and tid_y = Array.make ws_size 0
    and tid_z = Array.make ws_size 0 in
    let valid = ref 0 in
    for lane = 0 to ws_size - 1 do
      match Kernel.thread_of_lane launch ~warp_size:ws_size ~warp:w ~lane with
      | Some (x, y, z) ->
        tid_x.(lane) <- x;
        tid_y.(lane) <- y;
        tid_z.(lane) <- z;
        valid := !valid lor (1 lsl lane)
      | None -> ()
    done;
    {
      regs = Array.init (max kernel.Kernel.nregs 1) (fun _ -> Array.make ws_size Value.zero);
      preds =
        Array.init (max kernel.Kernel.npregs 1) (fun _ -> Array.make ws_size false);
      stack = Simt_stack.create ~full_mask:!valid;
      occs = Array.make ninsts 0;
      tid_x;
      tid_y;
      tid_z;
      valid_mask = !valid;
      at_barrier = false;
      exited = false;
      last_barrier_pc = -1;
    }
  in
  let parks ctx =
    Array.to_list
      (Array.mapi
         (fun w (ws : warp_state) ->
           {
             park_warp = w;
             park_pc =
               (if ws.exited || Simt_stack.finished ws.stack then -1
                else Simt_stack.pc ws.stack);
             park_state =
               (if ws.exited then Exited
                else if ws.at_barrier then At_barrier
                else Running);
             park_barrier_pc = ws.last_barrier_pc;
           })
         ctx.warps)
  in
  let run_tb tb_index =
    let ctx =
      {
        launch;
        tb_index;
        ctaid = Kernel.block_of_index launch tb_index;
        shared = Bytes.make kernel.Kernel.shared_bytes '\000';
        warps = Array.init nwarps init_warp;
      }
    in
    (* Execute one instruction for warp [w]; returns [false] when the warp
       can make no further progress this quantum (barrier or exit). *)
    let step w =
      let ws = ctx.warps.(w) in
      Simt_stack.reconverge_if_needed ws.stack;
      if Simt_stack.finished ws.stack then begin
        ws.exited <- true;
        false
      end
      else begin
        let pc = Simt_stack.pc ws.stack in
        if pc < 0 || pc >= ninsts then
          fault "warp %d fell off the program at index %d" w pc;
        let inst = insts.(pc) in
        let mask = Simt_stack.active_mask ws.stack in
        let occ = ws.occs.(pc) in
        let act =
          match intercept with
          | None -> Execute
          | Some f -> (
            match inst.Instr.body with
            | Instr.Bra _ | Instr.Bar | Instr.Exit -> Execute
            | _ ->
              f
                {
                  site_tb = tb_index;
                  site_warp = w;
                  site_inst = pc;
                  site_occ = occ;
                  site_active = mask;
                })
        in
        match act with
        | Skip_instruction ->
          (* The elided occurrence still consumes its occurrence number
             and advances the stream, like a (faulty) pre-fetch skip. *)
          ws.occs.(pc) <- occ + 1;
          Simt_stack.advance ws.stack (pc + 1);
          true
        | Execute | Force_dst _ ->
        ws.occs.(pc) <- occ + 1;
        incr total_warp_insts;
        total_thread_insts := !total_thread_insts + popcount mask;
        if !total_warp_insts > max_warp_insts then
          raise
            (Error (Runaway { executed = !total_warp_insts; bound = max_warp_insts }));
        let d = Simt_stack.depth ws.stack in
        if d > !max_depth then max_depth := d;
        (* Predication: lanes where the guard holds. *)
        let guard_mask =
          match inst.Instr.guard with
          | None -> mask
          | Some (sense, p) ->
            let m = ref 0 in
            for lane = 0 to ws_size - 1 do
              if
                mask land (1 lsl lane) <> 0
                && ws.preds.(p).(lane) = sense
              then m := !m lor (1 lsl lane)
            done;
            !m
        in
        let opv lane op = operand_value ctx ws lane op in
        let each_exec_lane f =
          for lane = 0 to ws_size - 1 do
            if guard_mask land (1 lsl lane) <> 0 then f lane
          done
        in
        let accesses = ref [||] in
        let continue_ = ref true in
        (match inst.Instr.body with
        | Instr.Bin (op, d, a, b) ->
          each_exec_lane (fun lane ->
              ws.regs.(d).(lane) <- eval_binop op (opv lane a) (opv lane b));
          Simt_stack.advance ws.stack (pc + 1)
        | Instr.Un (op, d, a) ->
          each_exec_lane (fun lane ->
              ws.regs.(d).(lane) <- eval_unop op (opv lane a));
          Simt_stack.advance ws.stack (pc + 1)
        | Instr.Tern (op, d, a, b, c) ->
          each_exec_lane (fun lane ->
              let va = opv lane a and vb = opv lane b and vc = opv lane c in
              ws.regs.(d).(lane) <-
                (match op with
                | Instr.Mad -> Value.add (Value.mul va vb) vc
                | Instr.Fma -> Value.ffma va vb vc));
          Simt_stack.advance ws.stack (pc + 1)
        | Instr.Setp (kind, cmp, p, a, b) ->
          each_exec_lane (fun lane ->
              ws.preds.(p).(lane) <- eval_cmp kind cmp (opv lane a) (opv lane b));
          Simt_stack.advance ws.stack (pc + 1)
        | Instr.Selp (d, a, b, p) ->
          each_exec_lane (fun lane ->
              ws.regs.(d).(lane) <-
                (if ws.preds.(p).(lane) then opv lane a else opv lane b));
          Simt_stack.advance ws.stack (pc + 1)
        | Instr.Ld (space, d, base, off) ->
          let addrs = ref [] in
          each_exec_lane (fun lane ->
              let addr = Value.truncate (Value.add (opv lane base) (Value.of_signed off)) in
              addrs := addr :: !addrs;
              ws.regs.(d).(lane) <-
                (match space with
                | Instr.Global -> Memory.load_u32 mem addr
                | Instr.Shared -> shared_load ctx addr));
          accesses := Array.of_list (List.rev !addrs);
          Simt_stack.advance ws.stack (pc + 1)
        | Instr.St (space, base, off, v) ->
          let addrs = ref [] in
          each_exec_lane (fun lane ->
              let addr = Value.truncate (Value.add (opv lane base) (Value.of_signed off)) in
              addrs := addr :: !addrs;
              let value = opv lane v in
              match space with
              | Instr.Global -> Memory.store_u32 mem addr value
              | Instr.Shared -> shared_store ctx addr value);
          accesses := Array.of_list (List.rev !addrs);
          Simt_stack.advance ws.stack (pc + 1)
        | Instr.Atom (op, d, addr_op, v) ->
          let addrs = ref [] in
          each_exec_lane (fun lane ->
              let addr = opv lane addr_op in
              addrs := addr :: !addrs;
              let old = Memory.load_u32 mem addr in
              let cas_cmp = ws.regs.(d).(lane) in
              Memory.store_u32 mem addr (eval_atom op old (opv lane v) cas_cmp);
              ws.regs.(d).(lane) <- old);
          accesses := Array.of_list (List.rev !addrs);
          Simt_stack.advance ws.stack (pc + 1)
        | Instr.Bra target ->
          let taken = guard_mask in
          if taken = mask then Simt_stack.advance ws.stack target
          else if taken = 0 then Simt_stack.advance ws.stack (pc + 1)
          else
            Simt_stack.diverge ws.stack ~reconv:reconv.(pc) ~taken_pc:target
              ~taken_mask:taken ~fallthrough_pc:(pc + 1)
        | Instr.Bar ->
          if Simt_stack.depth ws.stack > 1 then
            fault "barrier executed under intra-warp divergence (pc %d)" pc;
          Simt_stack.advance ws.stack (pc + 1);
          ws.at_barrier <- true;
          ws.last_barrier_pc <- pc;
          continue_ := false
        | Instr.Exit ->
          Simt_stack.retire_lanes ws.stack guard_mask;
          if guard_mask <> mask then Simt_stack.advance ws.stack (pc + 1)
          else ();
          if Simt_stack.finished ws.stack then begin
            ws.exited <- true;
            continue_ := false
          end);
        (match on_exec with
        | None -> ()
        | Some f ->
          let operands =
            if config.capture_operands then
              Array.of_list
                (List.map
                   (fun op ->
                     Array.init ws_size (fun lane -> operand_value ctx ws lane op))
                   (Instr.operands inst))
            else [||]
          in
          let dst_values =
            if config.capture_operands then
              Option.map (fun d -> Array.copy ws.regs.(d)) (Instr.dst_reg inst)
            else None
          in
          f
            {
              tb = tb_index;
              warp = w;
              inst_index = pc;
              occ;
              active = mask;
              operands;
              dst_values;
              accesses = !accesses;
            });
        (* A Force_dst interception overwrites the destination after the
           observer saw the recomputed values, modelling a (possibly
           corrupted) HRE forward taking effect. *)
        (match act with
        | Force_dst v -> (
          match Instr.dst_reg inst with
          | Some d ->
            if Array.length v < ws_size then
              fault "Force_dst: %d values for %d lanes" (Array.length v)
                ws_size;
            for lane = 0 to ws_size - 1 do
              if guard_mask land (1 lsl lane) <> 0 then
                ws.regs.(d).(lane) <- v.(lane)
            done
          | None -> ())
        | Execute | Skip_instruction -> ());
        !continue_
      end
    in
    (* Round-robin: run each warp until it blocks, release barriers when
       every live warp has arrived. *)
    let all_done () = Array.for_all (fun w -> w.exited) ctx.warps in
    let iterations = ref 0 in
    while not (all_done ()) do
      incr iterations;
      if !iterations > max_warp_insts then
        raise (Error (No_progress { tb = tb_index; warps = parks ctx }));
      let ran = ref false in
      Array.iteri
        (fun w ws ->
          if not ws.exited && not ws.at_barrier then begin
            ran := true;
            while step w do
              ()
            done
          end)
        ctx.warps;
      (* Barrier release: every warp is either exited or waiting. *)
      if Array.for_all (fun w -> w.exited || w.at_barrier) ctx.warps then begin
        let any_waiting = Array.exists (fun w -> w.at_barrier) ctx.warps in
        if any_waiting then begin
          (* Releasing a barrier some warps will never reach is the
             CUDA-illegal pattern; strict mode reports who is parked
             where instead of letting the stragglers run past it. *)
          if strict_barriers && Array.exists (fun w -> w.exited) ctx.warps
          then
            raise (Error (Barrier_deadlock { tb = tb_index; warps = parks ctx }));
          Array.iter (fun w -> w.at_barrier <- false) ctx.warps
        end
        else if not (all_done ()) then
          raise (Error (Barrier_deadlock { tb = tb_index; warps = parks ctx }))
      end
      else if not !ran then
        raise (Error (No_progress { tb = tb_index; warps = parks ctx }))
    done
  in
  for tb = 0 to Kernel.num_blocks launch - 1 do
    run_tb tb
  done;
  {
    warp_insts = !total_warp_insts;
    thread_insts = !total_thread_insts;
    max_stack_depth = !max_depth;
  }

let run_result ?config ?on_exec ?max_warp_insts ?strict_barriers ?intercept mem
    launch =
  match run ?config ?on_exec ?max_warp_insts ?strict_barriers ?intercept mem launch with
  | stats -> Ok stats
  | exception Error e -> Stdlib.Error e
  | exception Fault m -> Stdlib.Error (Exec_fault m)
  | exception Invalid_argument m ->
    (* Illegal guest memory access (misaligned or out-of-range address,
       e.g. from an injected fault corrupting an address register) — an
       execution fault of the simulated program, not a harness error. *)
    Stdlib.Error (Exec_fault m)
