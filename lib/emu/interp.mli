(** Functional (architectural) emulator for PTX-lite kernels.

    Executes a kernel launch against a {!Memory} instance, resolving SIMT
    control flow with per-warp reconvergence stacks (immediate
    postdominator). Threadblocks run one after another; warps within a
    threadblock interleave round-robin between barriers — a legal
    interleaving of the CUDA memory model for the regular workloads the
    paper studies.

    Every executed warp-instruction can be observed through the [on_exec]
    callback; the trace library uses this to build timing traces and
    redundancy limit studies. *)

type config = {
  warp_size : int;
  capture_operands : bool;
      (** when true, [exec_record.operands] and [dst_values] are
          populated — required by the limit studies, off for plain timing
          traces *)
}

val default_config : config
(** Warp size 32, no operand capture. *)

type exec_record = {
  tb : int;  (** linear threadblock index in the grid *)
  warp : int;  (** warp index within the threadblock *)
  inst_index : int;
  occ : int;  (** how many times this warp has executed this PC before *)
  active : int;  (** SIMT active mask when the instruction issued *)
  operands : Darsie_isa.Value.t array array;
      (** per source operand, per lane (length [warp_size]); empty unless
          [capture_operands] *)
  dst_values : Darsie_isa.Value.t array option;
      (** the destination vector register after the write; [None] when the
          instruction writes no vector register or capture is off *)
  accesses : int array;
      (** byte addresses of the active lanes for memory instructions, in
          lane order; empty otherwise *)
}

type stats = {
  warp_insts : int;  (** dynamic warp-level instructions executed *)
  thread_insts : int;  (** dynamic thread-level instructions *)
  max_stack_depth : int;
}

(** {1 Execution interception}

    The robustness layer ([darsie_check]) uses interception to model
    DARSIE value forwarding functionally and to inject faults: a site
    identifies one dynamic warp instruction before it executes, and the
    returned action either runs it normally, elides it entirely, or runs
    it and then overwrites its destination register with given per-lane
    values (as a corrupted HRE forward would). Control flow (branches,
    barriers, exit) is never intercepted. *)

type site = {
  site_tb : int;
  site_warp : int;
  site_inst : int;  (** static instruction index *)
  site_occ : int;  (** occurrence of that index in this warp, pre-execution *)
  site_active : int;  (** SIMT active mask *)
}

type action =
  | Execute
  | Skip_instruction
      (** advance past the instruction without executing it; it is not
          counted in {!stats} and [on_exec] does not see it, but its
          occurrence number is still consumed *)
  | Force_dst of Darsie_isa.Value.t array
      (** execute normally (so [on_exec] observes the recomputed values),
          then overwrite the destination register's guarded lanes with
          these values; ignored for instructions without a destination *)

(** {1 Errors} *)

type park_state = Running | At_barrier | Exited

type warp_park = {
  park_warp : int;
  park_pc : int;  (** current instruction index; [-1] once exited *)
  park_state : park_state;
  park_barrier_pc : int;  (** last barrier this warp executed; [-1] if none *)
}

(** Structured execution errors. [Exec_fault] wraps lane-level faults
    (out-of-bounds shared access, falling off the program, divergent
    barriers) that are raised as {!Fault} by [run]. *)
type error =
  | Barrier_deadlock of { tb : int; warps : warp_park list }
      (** warps are parked at a barrier that can never release — the
          per-warp list says who is parked at which barrier/PC and who
          already exited *)
  | No_progress of { tb : int; warps : warp_park list }
      (** the warp scheduler made no progress (internal invariant) *)
  | Runaway of { executed : int; bound : int }
      (** [max_warp_insts] exceeded *)
  | Exec_fault of string

exception Fault of string
(** Raised on lane-level execution errors: barrier under divergence,
    out-of-bounds shared access, falling off the program. *)

exception Error of error
(** Raised on scheduler-level errors: barrier deadlock, no progress,
    runaway execution. *)

val error_message : error -> string
(** One human-readable line per warp for the deadlock cases. *)

val run :
  ?config:config ->
  ?on_exec:(exec_record -> unit) ->
  ?max_warp_insts:int ->
  ?strict_barriers:bool ->
  ?intercept:(site -> action) ->
  Memory.t ->
  Darsie_isa.Kernel.launch ->
  stats
(** [max_warp_insts] (default 50M) bounds total dynamic warp instructions
    to catch runaway kernels. [strict_barriers] (default false) makes a
    barrier fail with {!Barrier_deadlock} when some warps of the
    threadblock already exited while others wait — the CUDA-illegal
    pattern the permissive default releases anyway.

    @raise Fault on lane-level execution errors.
    @raise Error on deadlock / no-progress / runaway. *)

val run_result :
  ?config:config ->
  ?on_exec:(exec_record -> unit) ->
  ?max_warp_insts:int ->
  ?strict_barriers:bool ->
  ?intercept:(site -> action) ->
  Memory.t ->
  Darsie_isa.Kernel.launch ->
  (stats, error) result
(** Like {!run} but returns every execution error as a typed [Error]
    value ({!Fault} messages arrive as [Exec_fault], as do illegal guest
    memory accesses that {!Memory} rejects with [Invalid_argument]). *)
