(** Flat, byte-addressed global memory with a bump allocator.

    Models a GPU's global memory space: word accesses must be naturally
    aligned, loads of never-written locations read zero, and the space
    grows on demand. A bump allocator hands out 256-byte-aligned regions so
    harness code can lay out kernel inputs the way [cudaMalloc] would. *)

type t

val create : ?initial_bytes:int -> unit -> t

val load_u32 : t -> int -> Darsie_isa.Value.t
(** @raise Invalid_argument on negative or misaligned addresses. *)

val store_u32 : t -> int -> Darsie_isa.Value.t -> unit

val load_f32 : t -> int -> float

val store_f32 : t -> int -> float -> unit

val alloc : t -> int -> int
(** [alloc t nbytes] reserves a fresh 256-byte-aligned region and returns
    its base address. Allocation starts above address 0 so that 0 behaves
    like a null pointer. *)

val write_i32s : t -> int -> int array -> unit
(** Store an array of (signed) integers at consecutive words. *)

val read_i32s : t -> int -> int -> int array
(** [read_i32s t base n] reads [n] consecutive signed words. *)

val write_f32s : t -> int -> float array -> unit

val read_f32s : t -> int -> int -> float array

val extent : t -> int
(** Bytes backed so far (capacity of the underlying store). *)

val diff : ?limit:int -> t -> t -> (int * Darsie_isa.Value.t * Darsie_isa.Value.t) list
(** [diff a b] lists words that differ between the two spaces as
    [(addr, value_in_a, value_in_b)], reading unbacked words as zero, up
    to [limit] entries (default 32). The differential oracle uses this to
    compare final memory states of two runs. *)
