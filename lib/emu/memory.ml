open Darsie_isa

type t = { mutable data : Bytes.t; mutable brk : int }

let base_address = 0x1000

let create ?(initial_bytes = 1 lsl 16) () =
  { data = Bytes.make initial_bytes '\000'; brk = base_address }

let check _t addr =
  if addr < 0 then invalid_arg "Memory: negative address";
  if addr land 3 <> 0 then
    invalid_arg (Printf.sprintf "Memory: misaligned word access at 0x%x" addr)

let ensure t upto =
  let len = Bytes.length t.data in
  if upto > len then begin
    let rec grow n = if n >= upto then n else grow (2 * n) in
    let bigger = Bytes.make (grow len) '\000' in
    Bytes.blit t.data 0 bigger 0 len;
    t.data <- bigger
  end

let load_u32 t addr =
  check t addr;
  if addr + 4 > Bytes.length t.data then Value.zero
  else Value.of_int32 (Bytes.get_int32_le t.data addr)

let store_u32 t addr v =
  check t addr;
  ensure t (addr + 4);
  Bytes.set_int32_le t.data addr (Value.to_int32 v)

let load_f32 t addr = Value.to_float (load_u32 t addr)

let store_f32 t addr f = store_u32 t addr (Value.of_float f)

let alloc t nbytes =
  if nbytes < 0 then invalid_arg "Memory.alloc: negative size";
  let base = t.brk in
  t.brk <- (t.brk + nbytes + 255) land lnot 255;
  ensure t t.brk;
  base

let write_i32s t base xs =
  Array.iteri (fun i x -> store_u32 t (base + (4 * i)) (Value.of_signed x)) xs

let read_i32s t base n =
  Array.init n (fun i -> Value.to_signed (load_u32 t (base + (4 * i))))

let write_f32s t base xs =
  Array.iteri (fun i x -> store_f32 t (base + (4 * i)) x) xs

let read_f32s t base n = Array.init n (fun i -> load_f32 t (base + (4 * i)))

let extent t = Bytes.length t.data

let diff ?(limit = 32) a b =
  let words = (max (extent a) (extent b)) / 4 in
  let read t addr =
    if addr + 4 > Bytes.length t.data then Value.zero
    else Value.of_int32 (Bytes.get_int32_le t.data addr)
  in
  let out = ref [] and n = ref 0 in
  let w = ref 0 in
  while !n < limit && !w < words do
    let addr = 4 * !w in
    let va = read a addr and vb = read b addr in
    if va <> vb then begin
      out := (addr, va, vb) :: !out;
      incr n
    end;
    incr w
  done;
  List.rev !out
