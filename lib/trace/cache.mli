(** Content-addressed, persistent cache of functional traces.

    The timing model is trace-driven and the trace is machine-invariant:
    the per-warp dynamic instruction stream of an (app, launch geometry,
    input) triple depends only on the functional emulation, never on
    which timing machine replays it. So the emulator needs to run {e
    once} per workload — the same trace replays through BASE, DARSIE and
    every ablation, across [bench --trend] repeats, and across CLI
    invocations.

    A cache entry is keyed by a digest of everything the emulation can
    observe: the kernel's full disassembly, the grid and block
    dimensions, the launch parameters, the warp size, the workload name
    and input scale, and the cache format version. Any change to any of
    these — including recompiling a workload into different code —
    produces a different key, so entries never go stale; they only
    become garbage (the directory can be deleted at any time).

    Entries are stored under [dir/<digest>.trace] with an atomic
    write-then-rename, so concurrent writers (parallel suite workers, or
    two CLI processes) race benignly: both write identical bytes and the
    last rename wins. A corrupt or truncated entry is treated as a miss
    and regenerated. *)

type t
(** A cache handle: the entry directory plus hit/miss/store counters.
    The counters are atomics — one handle may be shared by every worker
    of a {e parallel} suite build. *)

val format_version : int
(** Bumped whenever the on-disk layout or the trace record type changes;
    part of the key, so old entries are simply never looked up again. *)

val default_dir : string
(** ["_cache"], resolved relative to the working directory. *)

val create : ?dir:string -> unit -> t
(** Make a handle rooted at [dir] (default {!default_dir}). The
    directory is created lazily on the first {!store}. *)

val dir : t -> string

val hits : t -> int
(** Lookups served from disk since [create]. *)

val misses : t -> int
(** Lookups that fell through to the emulator since [create]. *)

val stores : t -> int
(** Entries written since [create]. *)

val summary : t -> string
(** One human line, e.g. ["trace cache: 13 hit(s), 0 miss(es) (_cache)"]. *)

val key :
  ?warp_size:int -> name:string -> scale:int -> Darsie_isa.Kernel.launch ->
  string
(** The content digest (hex) identifying one functional trace. *)

val find : t -> key:string -> Record.t option
(** Disk lookup; counts a hit or a miss. Unreadable entries are misses. *)

val store : t -> key:string -> Record.t -> unit
(** Persist an entry (atomic rename); failures to write — read-only
    disk, no space — are silently ignored, the cache is an accelerator,
    never a correctness dependency. *)

val generate :
  ?warp_size:int ->
  t ->
  name:string ->
  scale:int ->
  Darsie_emu.Memory.t ->
  Darsie_isa.Kernel.launch ->
  Record.t
(** Cached front-end to {!Record.generate}: return the stored trace when
    the key is present, otherwise emulate, store and return. On a hit
    the emulator does {e not} run, so [mem] is left untouched — callers
    that read the post-kernel memory (functional verification does) must
    run the emulator themselves on a fresh workload instance, which is
    what every existing verify path already does. *)
