module Kernel = Darsie_isa.Kernel

let format_version = 1

let default_dir = "_cache"

(* The payload is the Record.t marshaled behind a magic line; the magic
   carries the format version so a stale-format file from a future (or
   past) binary reads as corrupt, not as a wrong trace. *)
let magic = Printf.sprintf "DARSIE-TRACE/%d\n" format_version

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
}

let create ?(dir = default_dir) () =
  { dir; hits = Atomic.make 0; misses = Atomic.make 0; stores = Atomic.make 0 }

let dir t = t.dir

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let stores t = Atomic.get t.stores

let summary t =
  Printf.sprintf "trace cache: %d hit(s), %d miss(es) (%s)" (hits t) (misses t)
    t.dir

let key ?(warp_size = 32) ~name ~scale (launch : Kernel.launch) =
  let b = Buffer.create 4096 in
  let dim (d : Kernel.dim3) = Printf.sprintf "%dx%dx%d" d.x d.y d.z in
  Buffer.add_string b
    (Printf.sprintf "v%d|%s|scale=%d|warp=%d|grid=%s|block=%s|params="
       format_version name scale warp_size
       (dim launch.Kernel.grid_dim)
       (dim launch.Kernel.block_dim));
  Array.iter (fun p -> Buffer.add_string b (string_of_int p ^ ","))
    launch.Kernel.params;
  (* The disassembly pins the exact instruction stream; shared_bytes and
     the register counts are not printed per-instruction, so add them. *)
  let k = launch.Kernel.kernel in
  Buffer.add_string b
    (Printf.sprintf "|regs=%d/%d/%d|shared=%d|" k.Kernel.nregs k.Kernel.npregs
       k.Kernel.nparams k.Kernel.shared_bytes);
  Buffer.add_string b (Darsie_isa.Printer.kernel_to_string k);
  Digest.to_hex (Digest.string (Buffer.contents b))

let path t key = Filename.concat t.dir (key ^ ".trace")

(* [check] guards against a digest collision or a mis-filed entry: the
   loaded record must at least have the launch's threadblock/warp shape. *)
let lookup t ~key ~check =
  let p = path t key in
  let entry =
    Darsie_telemetry.Telemetry.span "cache.lookup" (fun () ->
        if not (Sys.file_exists p) then None
        else
          try
            let ic = open_in_bin p in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let m = really_input_string ic (String.length magic) in
                if m <> magic then None
                else
                  let (r : Record.t) = Marshal.from_channel ic in
                  if check r then Some r else None)
          with _ -> None)
  in
  (match entry with
  | Some _ ->
    Atomic.incr t.hits;
    Darsie_telemetry.Telemetry.incr "trace_cache.hits"
  | None ->
    Atomic.incr t.misses;
    Darsie_telemetry.Telemetry.incr "trace_cache.misses");
  entry

let find t ~key = lookup t ~key ~check:(fun _ -> true)

let store t ~key record =
  try
    if not (Sys.file_exists t.dir) then (
      try Sys.mkdir t.dir 0o755 with Sys_error _ -> ());
    let final = path t key in
    let tmp =
      Printf.sprintf "%s.%d.%d.tmp" final (Unix.getpid ())
        (Domain.self () :> int)
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        Marshal.to_channel oc record []);
    Sys.rename tmp final;
    Atomic.incr t.stores;
    Darsie_telemetry.Telemetry.incr "trace_cache.stores"
  with _ -> ()

let generate ?(warp_size = 32) t ~name ~scale mem launch =
  let k = key ~warp_size ~name ~scale launch in
  let shape_ok (r : Record.t) =
    r.Record.warp_size = warp_size
    && Record.num_tbs r = Kernel.num_blocks launch
    && Record.warps_per_tb r = Kernel.warps_per_block launch ~warp_size
  in
  match lookup t ~key:k ~check:shape_ok with
  | Some r -> r
  | None ->
    let r = Record.generate ~warp_size mem launch in
    store t ~key:k r;
    r
