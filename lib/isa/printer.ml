open Instr

let axis_name = function X -> "x" | Y -> "y" | Z -> "z"

let sreg_name = function
  | Tid a -> "%tid." ^ axis_name a
  | Ntid a -> "%ntid." ^ axis_name a
  | Ctaid a -> "%ctaid." ^ axis_name a
  | Nctaid a -> "%nctaid." ^ axis_name a

let operand fmt = function
  | Reg r -> Format.fprintf fmt "%%r%d" r
  | Imm v ->
    if v < 65536 then Format.fprintf fmt "%d" v
    else Format.fprintf fmt "0x%x" v
  | Sreg s -> Format.pp_print_string fmt (sreg_name s)
  | Param i -> Format.fprintf fmt "%%param%d" i

let binop_name = function
  | Add -> "add.u32"
  | Sub -> "sub.u32"
  | Mul -> "mul.lo.u32"
  | Mulhi -> "mul.hi.s32"
  | Div_s -> "div.s32"
  | Div_u -> "div.u32"
  | Rem_s -> "rem.s32"
  | Rem_u -> "rem.u32"
  | Min_s -> "min.s32"
  | Max_s -> "max.s32"
  | Min_u -> "min.u32"
  | Max_u -> "max.u32"
  | And -> "and.b32"
  | Or -> "or.b32"
  | Xor -> "xor.b32"
  | Shl -> "shl.b32"
  | Shr_u -> "shr.u32"
  | Shr_s -> "shr.s32"
  | Fadd -> "add.f32"
  | Fsub -> "sub.f32"
  | Fmul -> "mul.f32"
  | Fdiv -> "div.f32"
  | Fmin -> "min.f32"
  | Fmax -> "max.f32"

let unop_name = function
  | Mov -> "mov.u32"
  | Not -> "not.b32"
  | Neg -> "neg.s32"
  | Abs_s -> "abs.s32"
  | Fneg -> "neg.f32"
  | Fabs -> "abs.f32"
  | Fsqrt -> "sqrt.f32"
  | Frcp -> "rcp.f32"
  | Fexp2 -> "ex2.f32"
  | Flog2 -> "lg2.f32"
  | Fsin -> "sin.f32"
  | Fcos -> "cos.f32"
  | Cvt_i2f -> "cvt.f32.s32"
  | Cvt_u2f -> "cvt.f32.u32"
  | Cvt_f2i -> "cvt.s32.f32"

let ternop_name = function Mad -> "mad.lo.u32" | Fma -> "fma.f32"

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let cmp_kind_name = function Scmp -> "s32" | Ucmp -> "u32" | Fcmp -> "f32"

let space_name = function Global -> "global" | Shared -> "shared"

let atom_name = function
  | Atom_add -> "add"
  | Atom_max -> "max"
  | Atom_min -> "min"
  | Atom_exch -> "exch"
  | Atom_cas -> "cas"

let label_of_target target = Printf.sprintf "L%d" target

let body fmt = function
  | Bin (op, d, a, b) ->
    Format.fprintf fmt "%s %%r%d, %a, %a" (binop_name op) d operand a
      operand b
  | Un (op, d, a) ->
    Format.fprintf fmt "%s %%r%d, %a" (unop_name op) d operand a
  | Tern (op, d, a, b, c) ->
    Format.fprintf fmt "%s %%r%d, %a, %a, %a" (ternop_name op) d operand a
      operand b operand c
  | Setp (kind, cmp, p, a, b) ->
    Format.fprintf fmt "setp.%s.%s %%p%d, %a, %a" (cmp_name cmp)
      (cmp_kind_name kind) p operand a operand b
  | Selp (d, a, b, p) ->
    Format.fprintf fmt "selp.b32 %%r%d, %a, %a, %%p%d" d operand a operand b
      p
  | Ld (space, d, base, off) ->
    Format.fprintf fmt "ld.%s.u32 %%r%d, [%a+%d]" (space_name space) d
      operand base off
  | St (space, base, off, v) ->
    Format.fprintf fmt "st.%s.u32 [%a+%d], %a" (space_name space) operand
      base off operand v
  | Atom (op, d, addr, v) ->
    Format.fprintf fmt "atom.global.%s.u32 %%r%d, [%a], %a" (atom_name op) d
      operand addr operand v
  | Bra target -> Format.fprintf fmt "bra %s" (label_of_target target)
  | Bar -> Format.pp_print_string fmt "bar.sync"
  | Exit -> Format.pp_print_string fmt "exit"

let instr fmt t =
  (match t.guard with
  | Some (true, p) -> Format.fprintf fmt "@@%%p%d " p
  | Some (false, p) -> Format.fprintf fmt "@@!%%p%d " p
  | None -> ());
  Format.fprintf fmt "%a;" body t.body

let instr_to_string t = Format.asprintf "%a" instr t

let branch_targets (k : Kernel.t) =
  let targets = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      match Instr.branch_target i with
      | Some t -> Hashtbl.replace targets t ()
      | None -> ())
    k.Kernel.insts;
  targets

let kernel_lines (k : Kernel.t) =
  let targets = branch_targets k in
  Array.to_list
    (Array.mapi
       (fun i inst ->
         let label =
           if Hashtbl.mem targets i then Some (label_of_target i) else None
         in
         (i, label, instr_to_string inst))
       k.Kernel.insts)

let kernel fmt (k : Kernel.t) =
  Format.fprintf fmt ".kernel %s@\n" k.Kernel.name;
  Format.fprintf fmt ".params %d@\n" k.Kernel.nparams;
  Format.fprintf fmt ".shared %d@\n" k.Kernel.shared_bytes;
  let targets = branch_targets k in
  Array.iteri
    (fun i inst ->
      if Hashtbl.mem targets i then
        Format.fprintf fmt "%s:@\n" (label_of_target i);
      Format.fprintf fmt "  %a@\n" instr inst)
    k.Kernel.insts

let kernel_to_string k = Format.asprintf "%a" kernel k
