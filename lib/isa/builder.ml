open Instr

(* An emitted instruction whose branch target may still be symbolic. *)
type pending = { guard : (bool * int) option; body : body; target : int option }

type t = {
  name : string;
  nparams : int;
  shared_bytes : int;
  mutable next_reg : int;
  mutable next_pred : int;
  mutable code : pending list;  (* reversed *)
  mutable count : int;
  mutable label_positions : int option array;
  mutable next_label : int;
}

type label = int

let create ~name ?(nparams = 0) ?(shared_bytes = 0) () =
  {
    name;
    nparams;
    shared_bytes;
    next_reg = 0;
    next_pred = 0;
    code = [];
    count = 0;
    label_positions = Array.make 8 None;
    next_label = 0;
  }

let reg b =
  let r = b.next_reg in
  b.next_reg <- r + 1;
  r

let regs b n = List.init n (fun _ -> reg b)

let pred b =
  let p = b.next_pred in
  b.next_pred <- p + 1;
  p

let fresh_label b =
  if b.next_label = Array.length b.label_positions then begin
    let bigger = Array.make (2 * b.next_label) None in
    Array.blit b.label_positions 0 bigger 0 b.next_label;
    b.label_positions <- bigger
  end;
  let l = b.next_label in
  b.next_label <- l + 1;
  l

let place b l =
  match b.label_positions.(l) with
  | Some _ -> invalid_arg "Builder.place: label already placed"
  | None -> b.label_positions.(l) <- Some b.count

let here b =
  let l = fresh_label b in
  place b l;
  l

let push b pending =
  b.code <- pending :: b.code;
  b.count <- b.count + 1

let emit b ?guard body = push b { guard; body; target = None }

let bin b op dst a b' = emit b (Bin (op, dst, a, b'))

let un b op dst a = emit b (Un (op, dst, a))

let mov b dst a = un b Mov dst a

let add b dst x y = bin b Add dst x y

let sub b dst x y = bin b Sub dst x y

let mul b dst x y = bin b Mul dst x y

let shl b dst x y = bin b Shl dst x y

let mad b dst x y z = emit b (Tern (Mad, dst, x, y, z))

let fma b dst x y z = emit b (Tern (Fma, dst, x, y, z))

let fadd b dst x y = bin b Fadd dst x y

let fsub b dst x y = bin b Fsub dst x y

let fmul b dst x y = bin b Fmul dst x y

let setp b kind cmp p x y = emit b (Setp (kind, cmp, p, x, y))

let selp b dst x y p = emit b (Selp (dst, x, y, p))

let ld b space dst base ?(off = 0) () = emit b (Ld (space, dst, base, off))

let st b space base ?(off = 0) v = emit b (St (space, base, off, v))

let atom b op dst addr v = emit b (Atom (op, dst, addr, v))

let bra b ?guard l = push b { guard; body = Bra 0; target = Some l }

let bar b = emit b Bar

let exit_ b = emit b Exit

let count b = b.count

let regs_used b = b.next_reg

let preds_used b = b.next_pred

let decision_trace b =
  let pendings = Array.of_list (List.rev b.code) in
  let labels_at = Hashtbl.create 8 in
  for l = 0 to b.next_label - 1 do
    match b.label_positions.(l) with
    | Some i ->
      Hashtbl.replace labels_at i (l :: Option.value ~default:[] (Hashtbl.find_opt labels_at i))
    | None -> ()
  done;
  let lines = ref [] in
  let line s = lines := s :: !lines in
  for i = 0 to Array.length pendings do
    (match Hashtbl.find_opt labels_at i with
    | Some ls -> List.iter (fun l -> line (Printf.sprintf "L%d:" l)) (List.sort compare ls)
    | None -> ());
    if i < Array.length pendings then begin
      let p = pendings.(i) in
      match p.target with
      | Some l ->
        let guard =
          match p.guard with
          | Some (true, pr) -> Printf.sprintf "@%%p%d " pr
          | Some (false, pr) -> Printf.sprintf "@!%%p%d " pr
          | None -> ""
        in
        line (Printf.sprintf "%s%sL%d;" guard "bra " l)
      | None -> line (Printer.instr_to_string { Instr.body = p.body; guard = p.guard })
    end
  done;
  List.rev !lines

type error =
  | Empty_kernel
  | No_terminator of { last : string }
  | Unplaced_label of { label : int }
  | Label_out_of_range of { label : int; index : int }
  | Unallocated_register of { reg : int; at : int }
  | Unallocated_predicate of { pred : int; at : int }

let error_message = function
  | Empty_kernel -> "Builder.finish: empty kernel"
  | No_terminator { last } ->
    Printf.sprintf
      "Builder.finish: control can fall off the end (last instruction is %S, \
       not exit or an unguarded bra)"
      last
  | Unplaced_label { label } ->
    Printf.sprintf "Builder.finish: label L%d referenced but never placed" label
  | Label_out_of_range { label; index } ->
    Printf.sprintf
      "Builder.finish: label L%d placed at index %d, past the last instruction"
      label index
  | Unallocated_register { reg; at } ->
    Printf.sprintf
      "Builder.finish: instruction %d references vector register %%r%d, which \
       was never allocated"
      at reg
  | Unallocated_predicate { pred; at } ->
    Printf.sprintf
      "Builder.finish: instruction %d references predicate %%p%d, which was \
       never allocated"
      at pred

exception Reject of error

let finish_result b =
  let resolve l =
    match b.label_positions.(l) with
    | Some i ->
      if i >= b.count then raise (Reject (Label_out_of_range { label = l; index = i }));
      i
    | None -> raise (Reject (Unplaced_label { label = l }))
  in
  match
    let pendings = Array.of_list (List.rev b.code) in
    if Array.length pendings = 0 then raise (Reject Empty_kernel);
    let insts =
      Array.map
        (fun p ->
          let body =
            match p.target with Some l -> Bra (resolve l) | None -> p.body
          in
          { Instr.body; guard = p.guard })
        pendings
    in
    (* Register discipline: every referenced vector/predicate register
       must have come from the builder's allocators. *)
    Array.iteri
      (fun at inst ->
        let check_reg r =
          if r < 0 || r >= b.next_reg then
            raise (Reject (Unallocated_register { reg = r; at }))
        in
        let check_pred p =
          if p < 0 || p >= b.next_pred then
            raise (Reject (Unallocated_predicate { pred = p; at }))
        in
        Option.iter check_reg (Instr.dst_reg inst);
        List.iter check_reg (Instr.src_regs inst);
        Option.iter check_pred (Instr.dst_pred inst);
        List.iter check_pred (Instr.src_preds inst))
      insts;
    (* Fall-off-the-end check: the final instruction must be a
       terminator — exit, or an unconditional branch backward. *)
    let last = insts.(Array.length insts - 1) in
    let terminates =
      match (last.Instr.body, last.Instr.guard) with
      | Exit, None -> true
      | Bra _, None -> true
      | _ -> false
    in
    if not terminates then
      raise (Reject (No_terminator { last = Printer.instr_to_string last }));
    Kernel.make ~name:b.name ~npregs:b.next_pred ~nparams:b.nparams
      ~shared_bytes:b.shared_bytes insts
  with
  | kernel -> Ok kernel
  | exception Reject e -> Error e

let finish b =
  match finish_result b with
  | Ok k -> k
  | Error e -> invalid_arg (error_message e)

module O = struct
  let r n = Reg n

  let i n = Imm (Value.of_signed n)

  let f x = Imm (Value.of_float x)

  let p n = Param n

  let tid_x = Sreg (Tid X)

  let tid_y = Sreg (Tid Y)

  let tid_z = Sreg (Tid Z)

  let ntid_x = Sreg (Ntid X)

  let ntid_y = Sreg (Ntid Y)

  let ntid_z = Sreg (Ntid Z)

  let tid_all a = Sreg (Tid a)

  let ctaid_x = Sreg (Ctaid X)

  let ctaid_y = Sreg (Ctaid Y)

  let nctaid_x = Sreg (Nctaid X)

  let nctaid_y = Sreg (Nctaid Y)
end
