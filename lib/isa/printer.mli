(** Textual rendering of PTX-lite kernels and instructions.

    The output is the canonical assembly syntax accepted by {!Parser};
    [Parser.parse_kernel (Printer.kernel_to_string k)] reconstructs [k]
    exactly. *)

val operand : Format.formatter -> Instr.operand -> unit

val instr : Format.formatter -> Instr.t -> unit
(** Render one instruction (without label or trailing newline); branch
    targets print as [L<index>]. *)

val instr_to_string : Instr.t -> string

val kernel_lines : Kernel.t -> (int * string option * string) list
(** One [(index, label, text)] triple per instruction, in program order;
    [label] is [Some "L<i>"] on branch targets. The building block of
    annotated listings ([darsie annotate]). *)

val kernel : Format.formatter -> Kernel.t -> unit
(** Render a full kernel: directives, labels on branch targets, one
    instruction per line. *)

val kernel_to_string : Kernel.t -> string
