(** Programmatic kernel construction.

    A mutable builder with fresh-register allocation and forward-referencing
    labels; the workload kernels (lib/workloads) are written against this
    interface. Example:
    {[
      let b = Builder.create ~name:"saxpy" ~nparams:3 () in
      let open Builder.O in
      let i = Builder.reg b in
      Builder.mad b i (sreg ctaid_x) (sreg ntid_x) (sreg tid_x);
      ...
      Builder.exit_ b;
      let kernel = Builder.finish b
    ]} *)

type t

type label

val create : name:string -> ?nparams:int -> ?shared_bytes:int -> unit -> t

val reg : t -> int
(** Allocate a fresh vector register. *)

val regs : t -> int -> int list
(** Allocate [n] fresh vector registers. *)

val pred : t -> int
(** Allocate a fresh predicate register. *)

val fresh_label : t -> label

val place : t -> label -> unit
(** Bind a label to the next emitted instruction.

    @raise Invalid_argument if the label was already placed. *)

val here : t -> label
(** [fresh_label] + [place] in one step (for backward branches). *)

val emit : t -> ?guard:bool * int -> Instr.body -> unit

(** {1 Generator hooks}

    Query accessors and a decision-trace recorder for programmatic
    clients (the property-based kernel fuzzer walks the builder through
    these). *)

val count : t -> int
(** Instructions emitted so far (the index the next emission gets). *)

val regs_used : t -> int
(** Vector registers allocated so far through {!reg}/{!regs}. *)

val preds_used : t -> int
(** Predicate registers allocated so far through {!pred}. *)

val decision_trace : t -> string list
(** The builder's decision trace: one line per eDSL decision taken so
    far, in emission order — label placements as ["L<i>:"], emitted
    instructions as their assembly text (symbolic [L<i>] targets for
    not-yet-resolved branches). The fuzzer prints this next to shrunk
    counterexamples so a failure is readable as the exact builder walk
    that produced it. *)

(** {1 Finishing}

    A kernel can be malformed in ways only visible once the whole
    instruction stream exists: control can fall off the end, a branch
    can reference a label that was never placed (or placed past the last
    instruction), and an operand can name a register that was never
    allocated through {!reg}/{!pred}. [finish_result] rejects all of
    these with a typed error — the fuzzer's well-formedness backstop. *)

type error =
  | Empty_kernel
  | No_terminator of { last : string }
      (** the final instruction is not [exit] or an unguarded [bra], so
          execution can fall off the program *)
  | Unplaced_label of { label : int }
      (** a branch references a label that was never {!place}d *)
  | Label_out_of_range of { label : int; index : int }
      (** a label was placed past the last instruction, so a branch to it
          would leave the program *)
  | Unallocated_register of { reg : int; at : int }
      (** instruction [at] names vector register [reg], but only
          {!regs_used} registers were ever allocated *)
  | Unallocated_predicate of { pred : int; at : int }

val error_message : error -> string

val finish_result : t -> (Kernel.t, error) result
(** Resolve all branch targets, validate well-formedness, and produce
    the kernel. *)

val finish : t -> Kernel.t
(** [finish_result], raising on malformed kernels.

    @raise Invalid_argument with {!error_message} on any {!error}. *)

(** {1 Instruction sugar} *)

val bin : t -> Instr.binop -> int -> Instr.operand -> Instr.operand -> unit

val un : t -> Instr.unop -> int -> Instr.operand -> unit

val mov : t -> int -> Instr.operand -> unit

val add : t -> int -> Instr.operand -> Instr.operand -> unit

val sub : t -> int -> Instr.operand -> Instr.operand -> unit

val mul : t -> int -> Instr.operand -> Instr.operand -> unit

val shl : t -> int -> Instr.operand -> Instr.operand -> unit

val mad : t -> int -> Instr.operand -> Instr.operand -> Instr.operand -> unit
(** Integer multiply-add [dst = a*b + c]. *)

val fma : t -> int -> Instr.operand -> Instr.operand -> Instr.operand -> unit

val fadd : t -> int -> Instr.operand -> Instr.operand -> unit

val fsub : t -> int -> Instr.operand -> Instr.operand -> unit

val fmul : t -> int -> Instr.operand -> Instr.operand -> unit

val setp :
  t -> Instr.cmp_kind -> Instr.cmp -> int -> Instr.operand -> Instr.operand
  -> unit

val selp : t -> int -> Instr.operand -> Instr.operand -> int -> unit

val ld : t -> Instr.space -> int -> Instr.operand -> ?off:int -> unit -> unit

val st :
  t -> Instr.space -> Instr.operand -> ?off:int -> Instr.operand -> unit

val atom : t -> Instr.atom_op -> int -> Instr.operand -> Instr.operand -> unit

val bra : t -> ?guard:bool * int -> label -> unit

val bar : t -> unit

val exit_ : t -> unit

(** Operand constructors. *)
module O : sig
  val r : int -> Instr.operand

  val i : int -> Instr.operand
  (** Signed integer immediate. *)

  val f : float -> Instr.operand
  (** Float immediate (IEEE-754 single bits). *)

  val p : int -> Instr.operand
  (** Kernel parameter. *)

  val tid_x : Instr.operand

  val tid_y : Instr.operand

  val tid_z : Instr.operand

  val ntid_x : Instr.operand

  val ntid_y : Instr.operand

  val ntid_z : Instr.operand

  val tid_all : Instr.axis -> Instr.operand

  val ctaid_x : Instr.operand

  val ctaid_y : Instr.operand

  val nctaid_x : Instr.operand

  val nctaid_y : Instr.operand
end
