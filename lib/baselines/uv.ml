open Darsie_timing
open Darsie_trace

type buf_slot = { occ : int; mutable ready : bool }

let factory : Engine.factory =
 fun kinfo _cfg stats ->
  (* (tb_slot, pc) -> reuse-buffer slot *)
  let buffer : (int * int, buf_slot) Hashtbl.t = Hashtbl.create 256 in
  let on_issue ~cycle:_ (w : Engine.wctx) (op : Record.op) =
    let idx = op.Record.idx in
    if not kinfo.Kinfo.uv_eligible.(idx) then Engine.Execute
    else begin
      let key = (w.Engine.tb_slot, idx) in
      match Hashtbl.find_opt buffer key with
      | Some slot when slot.occ = op.Record.occ && slot.ready -> Engine.Drop
      | Some slot when slot.occ = op.Record.occ ->
        (* Value still in flight: reuse-buffer miss, execute normally. *)
        Engine.Execute
      | _ ->
        Hashtbl.replace buffer key { occ = op.Record.occ; ready = false };
        Engine.Execute
    end
  in
  let on_writeback ~cycle:_ (w : Engine.wctx) (op : Record.op) =
    if kinfo.Kinfo.uv_eligible.(op.Record.idx) then
      match Hashtbl.find_opt buffer (w.Engine.tb_slot, op.Record.idx) with
      | Some slot when slot.occ = op.Record.occ -> slot.ready <- true
      | _ -> ()
  in
  let on_tb_finish ~tb_slot =
    Hashtbl.iter
      (fun (s, pc) _ -> if s = tb_slot then Hashtbl.remove buffer (s, pc))
      (Hashtbl.copy buffer)
  in
  ignore stats;
  {
    Engine.name = "UV";
    cycle_skip = (fun ~cycle:_ -> ());
    quiescent = (fun () -> true);
    skip_reads_warp_state = false;
    skip_steady = (fun () -> true);
    bulk_skip = (fun ~cycle:_ ~n:_ -> ());
    on_fast_forward = (fun ~cycle:_ -> ());
    can_fetch = (fun _ -> true);
    recheck_fetch = (fun _ -> true);
    remove_at_fetch = (fun _ _ -> false);
    on_issue;
    on_writeback;
    on_store = (fun ~atomic:_ _ -> ());
    exec_fate = (fun _ _ -> Darsie_obs.Ledger.Skip_disabled);
    set_ledger = (fun _ -> ());
    on_tb_launch = (fun ~tb_slot:_ ~warps:_ -> ());
    on_tb_finish;
    debug_state = (fun () -> [ ("reuse_buffer_slots", Hashtbl.length buffer) ]);
    pc_telemetry = (fun () -> []);
  }
