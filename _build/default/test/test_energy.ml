(* Tests for the energy and area models. *)

open Darsie_timing
open Darsie_energy

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_float = Alcotest.(check (float 1e-6))

let test_energy_zero () =
  let b = Energy_model.account Config.default (Stats.create ()) in
  check_float "empty stats cost nothing" 0.0 b.Energy_model.total

let test_energy_accounting () =
  let s = Stats.create () in
  s.Stats.fetched <- 10;
  s.Stats.issued <- 10;
  s.Stats.rf_reads <- 100;
  s.Stats.rf_writes <- 50;
  s.Stats.cycles <- 1000;
  let p = Energy_model.default_params in
  let b = Energy_model.account Config.default s in
  check_float "rf energy uses Table 2 values"
    ((100.0 *. p.Energy_model.e_rf_read) +. (50.0 *. p.Energy_model.e_rf_write))
    b.Energy_model.register_file;
  check_float "static scales with SMs and cycles"
    (1000.0 *. p.Energy_model.p_static *. 4.0)
    b.Energy_model.static;
  check_float "totals add up"
    (b.Energy_model.frontend +. b.Energy_model.register_file
    +. b.Energy_model.execute +. b.Energy_model.memory +. b.Energy_model.static
    +. b.Energy_model.darsie_overhead)
    b.Energy_model.total

let test_energy_paper_rf_values () =
  let p = Energy_model.default_params in
  check_float "14.2 pJ/read" 14.2 p.Energy_model.e_rf_read;
  check_float "25.9 pJ/write" 25.9 p.Energy_model.e_rf_write

let test_energy_monotone_in_events () =
  let s1 = Stats.create () and s2 = Stats.create () in
  s1.Stats.dram_transactions <- 10;
  s2.Stats.dram_transactions <- 20;
  let b1 = Energy_model.account Config.default s1 in
  let b2 = Energy_model.account Config.default s2 in
  check_bool "more DRAM, more energy" true
    (b2.Energy_model.total > b1.Energy_model.total)

let test_energy_overhead_fraction () =
  let s = Stats.create () in
  s.Stats.skip_table_probes <- 1000;
  s.Stats.alu_ops <- 1000;
  let b = Energy_model.account Config.default s in
  let f = Energy_model.overhead_fraction b in
  check_bool "overhead fraction small but positive" true (f > 0.0 && f < 0.1)

(* ------------------------------------------------------------------ *)
(* Area (paper §6.3)                                                   *)
(* ------------------------------------------------------------------ *)

let test_area_paper_numbers () =
  let a = Area.estimate () in
  check_int "82-bit skip entries" 82 a.Area.skip_entry_bits;
  check_int "skip table: 82 x 8 x 32" (82 * 8 * 32) a.Area.skip_table_bits;
  check_int "majority: 32 x 32" 1024 a.Area.majority_bits;
  check_int "21-bit rename entries" 21 a.Area.rename_entry_bits;
  check_int "rename: 21 x 32 x 32" (21 * 32 * 32) a.Area.rename_bits;
  (* the paper's headline: 5.31 kB total, 2.1% of the register file *)
  check_bool "5.31 kB" true
    (abs_float ((a.Area.total_bytes /. 1024.0) -. 5.3125) < 0.01);
  check_bool "~2.1% of RF" true
    (abs_float ((100.0 *. a.Area.fraction_of_rf) -. 2.07) < 0.1)

let test_area_scales_with_config () =
  let cfg = { Config.default with Config.skip_entries_per_tb = 16 } in
  let a = Area.estimate ~cfg () in
  check_int "doubling entries doubles the table" (82 * 16 * 32)
    a.Area.skip_table_bits

let () =
  Alcotest.run "darsie_energy"
    [
      ( "energy",
        [
          Alcotest.test_case "zero" `Quick test_energy_zero;
          Alcotest.test_case "accounting" `Quick test_energy_accounting;
          Alcotest.test_case "paper RF values" `Quick test_energy_paper_rf_values;
          Alcotest.test_case "monotone" `Quick test_energy_monotone_in_events;
          Alcotest.test_case "overhead fraction" `Quick
            test_energy_overhead_fraction;
        ] );
      ( "area",
        [
          Alcotest.test_case "paper numbers" `Quick test_area_paper_numbers;
          Alcotest.test_case "config scaling" `Quick test_area_scales_with_config;
        ] );
    ]
