(* Tests for the functional emulator: memory, SIMT stack, instruction
   semantics, divergence/reconvergence, barriers and atomics. *)

open Darsie_isa
open Darsie_emu

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let parse = Parser.parse_kernel

let run_kernel ?(grid = Kernel.dim3 1) ?(block = Kernel.dim3 32) ?on_exec
    ?(config = Interp.default_config) k params mem =
  let launch = Kernel.launch k ~grid ~block ~params in
  Interp.run ~config ?on_exec mem launch

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_basics () =
  let m = Memory.create () in
  Memory.store_u32 m 0x100 42;
  check_int "load back" 42 (Memory.load_u32 m 0x100);
  check_int "unwritten reads zero" 0 (Memory.load_u32 m 0x200);
  Memory.store_f32 m 0x104 1.5;
  Alcotest.(check (float 0.0)) "float roundtrip" 1.5 (Memory.load_f32 m 0x104)

let test_memory_alignment () =
  let m = Memory.create () in
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Memory: misaligned word access at 0x101") (fun () ->
      ignore (Memory.load_u32 m 0x101))

let test_memory_alloc () =
  let m = Memory.create () in
  let a = Memory.alloc m 100 in
  let b = Memory.alloc m 8 in
  check_bool "alloc aligned" true (a land 255 = 0);
  check_bool "regions disjoint" true (b >= a + 100);
  Memory.write_i32s m a [| 1; -2; 3 |];
  Alcotest.(check (array int)) "i32 roundtrip" [| 1; -2; 3 |] (Memory.read_i32s m a 3)

let test_memory_growth () =
  let m = Memory.create ~initial_bytes:16 () in
  Memory.store_u32 m 0x10000 7;
  check_int "grown" 7 (Memory.load_u32 m 0x10000)

(* ------------------------------------------------------------------ *)
(* SIMT stack                                                          *)
(* ------------------------------------------------------------------ *)

let test_stack_uniform () =
  let s = Simt_stack.create ~full_mask:0xF in
  check_int "initial pc" 0 (Simt_stack.pc s);
  check_int "initial mask" 0xF (Simt_stack.active_mask s);
  Simt_stack.advance s 5;
  check_int "advanced" 5 (Simt_stack.pc s)

let test_stack_divergence () =
  let s = Simt_stack.create ~full_mask:0xF in
  Simt_stack.advance s 1;
  Simt_stack.diverge s ~reconv:10 ~taken_pc:5 ~taken_mask:0x3 ~fallthrough_pc:2;
  check_int "taken path on top" 5 (Simt_stack.pc s);
  check_int "taken mask" 0x3 (Simt_stack.active_mask s);
  check_int "depth" 3 (Simt_stack.depth s);
  (* taken path reaches reconvergence *)
  Simt_stack.advance s 10;
  Simt_stack.reconverge_if_needed s;
  check_int "fallthrough now" 2 (Simt_stack.pc s);
  check_int "fallthrough mask" 0xC (Simt_stack.active_mask s);
  Simt_stack.advance s 10;
  Simt_stack.reconverge_if_needed s;
  check_int "reconverged pc" 10 (Simt_stack.pc s);
  check_int "full mask back" 0xF (Simt_stack.active_mask s)

let test_stack_retire () =
  let s = Simt_stack.create ~full_mask:0xF in
  Simt_stack.retire_lanes s 0x3;
  check_int "lanes gone" 0xC (Simt_stack.active_mask s);
  Simt_stack.retire_lanes s 0xC;
  check_bool "finished" true (Simt_stack.finished s)

let test_stack_bad_diverge () =
  let s = Simt_stack.create ~full_mask:0xF in
  Alcotest.check_raises "full mask not a divergence"
    (Invalid_argument "Simt_stack.diverge: mask is not a proper subset")
    (fun () ->
      Simt_stack.diverge s ~reconv:1 ~taken_pc:1 ~taken_mask:0xF
        ~fallthrough_pc:1)

(* ------------------------------------------------------------------ *)
(* Straight-line execution                                             *)
(* ------------------------------------------------------------------ *)

let test_exec_saxpy_like () =
  (* out[i] = a * in[i] + b for one 32-thread block *)
  let k =
    parse
      {|
.kernel axpb
.params 4
  shl.b32 %r0, %tid.x, 2;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  mul.lo.u32 %r3, %r2, %param2;
  add.u32 %r3, %r3, %param3;
  add.u32 %r4, %r0, %param1;
  st.global.u32 [%r4+0], %r3;
  exit;
|}
  in
  let m = Memory.create () in
  let src = Memory.alloc m 128 and dst = Memory.alloc m 128 in
  Memory.write_i32s m src (Array.init 32 (fun i -> i));
  let stats = run_kernel k [| src; dst; 3; 7 |] m in
  let out = Memory.read_i32s m dst 32 in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "out[%d]" i) ((3 * i) + 7) v)
    out;
  check_int "one warp, 8 instructions" 8 stats.Interp.warp_insts;
  check_int "thread instructions" (8 * 32) stats.Interp.thread_insts

let test_exec_float () =
  let k =
    parse
      {|
.kernel fsq
.params 2
  shl.b32 %r0, %tid.x, 2;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  mul.f32 %r3, %r2, %r2;
  sqrt.f32 %r4, %r3;
  add.u32 %r5, %r0, %param1;
  st.global.u32 [%r5+0], %r4;
  exit;
|}
  in
  let m = Memory.create () in
  let src = Memory.alloc m 128 and dst = Memory.alloc m 128 in
  Memory.write_f32s m src (Array.init 32 (fun i -> float_of_int i));
  ignore (run_kernel k [| src; dst |] m);
  let out = Memory.read_f32s m dst 32 in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "sqrt(%d^2)" i)
        (float_of_int i) v)
    out

let test_exec_special_registers () =
  (* each thread stores its global linear id computed from sregs *)
  let k =
    parse
      {|
.kernel ids
.params 1
  mad.lo.u32 %r0, %ctaid.x, %ntid.x, %tid.x;
  shl.b32 %r1, %r0, 2;
  add.u32 %r1, %r1, %param0;
  st.global.u32 [%r1+0], %r0;
  exit;
|}
  in
  let m = Memory.create () in
  let dst = Memory.alloc m (4 * 64) in
  ignore (run_kernel ~grid:(Kernel.dim3 2) ~block:(Kernel.dim3 32) k [| dst |] m);
  let out = Memory.read_i32s m dst 64 in
  Array.iteri (fun i v -> check_int "global id" i v) out

let test_exec_2d_tids () =
  (* store tid.x + 100*tid.y at the thread's linear offset *)
  let k =
    parse
      {|
.kernel tid2d
.params 1
  mul.lo.u32 %r0, %tid.y, %ntid.x;
  add.u32 %r0, %r0, %tid.x;
  mul.lo.u32 %r1, %tid.y, 100;
  add.u32 %r1, %r1, %tid.x;
  shl.b32 %r2, %r0, 2;
  add.u32 %r2, %r2, %param0;
  st.global.u32 [%r2+0], %r1;
  exit;
|}
  in
  let m = Memory.create () in
  let dst = Memory.alloc m (4 * 64) in
  ignore (run_kernel ~block:(Kernel.dim3 8 ~y:8) k [| dst |] m);
  let out = Memory.read_i32s m dst 64 in
  for y = 0 to 7 do
    for x = 0 to 7 do
      check_int
        (Printf.sprintf "thread (%d,%d)" x y)
        (x + (100 * y))
        out.((y * 8) + x)
    done
  done

(* ------------------------------------------------------------------ *)
(* Control flow                                                        *)
(* ------------------------------------------------------------------ *)

let test_exec_divergence () =
  (* threads below 16 get value 1, others 2; all reconverge and add 10 *)
  let k =
    parse
      {|
.kernel div
.params 1
  setp.lt.s32 %p0, %tid.x, 16;
@%p0 bra low;
  mov.u32 %r0, 2;
  bra join;
low:
  mov.u32 %r0, 1;
join:
  add.u32 %r0, %r0, 10;
  shl.b32 %r1, %tid.x, 2;
  add.u32 %r1, %r1, %param0;
  st.global.u32 [%r1+0], %r0;
  exit;
|}
  in
  let m = Memory.create () in
  let dst = Memory.alloc m 128 in
  let stats = run_kernel k [| dst |] m in
  let out = Memory.read_i32s m dst 32 in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "thread %d" i) (if i < 16 then 11 else 12) v)
    out;
  check_bool "divergence happened" true (stats.Interp.max_stack_depth >= 3)

let test_exec_loop () =
  (* each thread sums 0..tid.x *)
  let k =
    parse
      {|
.kernel tri
.params 1
  mov.u32 %r0, 0;
  mov.u32 %r1, 0;
top:
  setp.gt.s32 %p0, %r1, %tid.x;
@%p0 bra done;
  add.u32 %r0, %r0, %r1;
  add.u32 %r1, %r1, 1;
  bra top;
done:
  shl.b32 %r2, %tid.x, 2;
  add.u32 %r2, %r2, %param0;
  st.global.u32 [%r2+0], %r0;
  exit;
|}
  in
  let m = Memory.create () in
  let dst = Memory.alloc m 128 in
  ignore (run_kernel k [| dst |] m);
  let out = Memory.read_i32s m dst 32 in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "sum 0..%d" i) (i * (i + 1) / 2) v)
    out

let test_exec_nested_divergence () =
  let k =
    parse
      {|
.kernel nest
.params 1
  mov.u32 %r0, 0;
  setp.lt.s32 %p0, %tid.x, 16;
@!%p0 bra outer_else;
  setp.lt.s32 %p1, %tid.x, 8;
@!%p1 bra inner_else;
  add.u32 %r0, %r0, 1;
  bra inner_join;
inner_else:
  add.u32 %r0, %r0, 2;
inner_join:
  add.u32 %r0, %r0, 10;
  bra outer_join;
outer_else:
  add.u32 %r0, %r0, 3;
outer_join:
  add.u32 %r0, %r0, 100;
  shl.b32 %r1, %tid.x, 2;
  add.u32 %r1, %r1, %param0;
  st.global.u32 [%r1+0], %r0;
  exit;
|}
  in
  let m = Memory.create () in
  let dst = Memory.alloc m 128 in
  ignore (run_kernel k [| dst |] m);
  let out = Memory.read_i32s m dst 32 in
  Array.iteri
    (fun i v ->
      let expected = if i < 8 then 111 else if i < 16 then 112 else 103 in
      check_int (Printf.sprintf "thread %d" i) expected v)
    out

let test_exec_predicated_store () =
  (* only even threads store *)
  let k =
    parse
      {|
.kernel evens
.params 1
  and.b32 %r0, %tid.x, 1;
  setp.eq.s32 %p0, %r0, 0;
  shl.b32 %r1, %tid.x, 2;
  add.u32 %r1, %r1, %param0;
@%p0 st.global.u32 [%r1+0], 7;
  exit;
|}
  in
  let m = Memory.create () in
  let dst = Memory.alloc m 128 in
  ignore (run_kernel k [| dst |] m);
  let out = Memory.read_i32s m dst 32 in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "thread %d" i) (if i mod 2 = 0 then 7 else 0) v)
    out

(* ------------------------------------------------------------------ *)
(* Shared memory and barriers                                          *)
(* ------------------------------------------------------------------ *)

let test_exec_shared_reverse () =
  (* block-wide reverse through shared memory, needs the barrier *)
  let k =
    parse
      {|
.kernel rev
.params 2
.shared 256
  shl.b32 %r0, %tid.x, 2;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  st.shared.u32 [%r0+0], %r2;
  bar.sync;
  sub.u32 %r3, %ntid.x, %tid.x;
  sub.u32 %r3, %r3, 1;
  shl.b32 %r3, %r3, 2;
  ld.shared.u32 %r4, [%r3+0];
  add.u32 %r5, %r0, %param1;
  st.global.u32 [%r5+0], %r4;
  exit;
|}
  in
  let m = Memory.create () in
  let src = Memory.alloc m 256 and dst = Memory.alloc m 256 in
  Memory.write_i32s m src (Array.init 64 (fun i -> i * i));
  ignore (run_kernel ~block:(Kernel.dim3 64) k [| src; dst |] m);
  let out = Memory.read_i32s m dst 64 in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "rev[%d]" i) ((63 - i) * (63 - i)) v)
    out

let test_exec_barrier_under_divergence_faults () =
  let k =
    parse
      {|
.kernel bad
  setp.lt.s32 %p0, %tid.x, 4;
@!%p0 bra skip;
  bar.sync;
skip:
  exit;
|}
  in
  let m = Memory.create () in
  check_bool "faults" true
    (match run_kernel k [||] m with
    | exception Interp.Fault _ -> true
    | _ -> false)

let test_exec_shared_out_of_bounds_faults () =
  let k =
    parse
      {|
.kernel oob
.shared 16
  st.shared.u32 [64], 1;
  exit;
|}
  in
  let m = Memory.create () in
  check_bool "faults" true
    (match run_kernel ~block:(Kernel.dim3 1) k [||] m with
    | exception Interp.Fault _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Atomics                                                             *)
(* ------------------------------------------------------------------ *)

let test_exec_atomic_add () =
  let k =
    parse
      {|
.kernel count
.params 1
  atom.global.add.u32 %r0, [%param0], 1;
  exit;
|}
  in
  let m = Memory.create () in
  let cell = Memory.alloc m 4 in
  ignore (run_kernel ~grid:(Kernel.dim3 4) ~block:(Kernel.dim3 64) k [| cell |] m);
  check_int "256 increments" 256 (Memory.load_u32 m cell)

let test_exec_atomic_max () =
  let k =
    parse
      {|
.kernel peak
.params 1
  mad.lo.u32 %r1, %ctaid.x, %ntid.x, %tid.x;
  atom.global.max.u32 %r0, [%param0], %r1;
  exit;
|}
  in
  let m = Memory.create () in
  let cell = Memory.alloc m 4 in
  ignore (run_kernel ~grid:(Kernel.dim3 3) ~block:(Kernel.dim3 32) k [| cell |] m);
  check_int "max id" 95 (Memory.load_u32 m cell)

(* ------------------------------------------------------------------ *)
(* Trace callback                                                      *)
(* ------------------------------------------------------------------ *)

let test_trace_callback () =
  let k =
    parse
      {|
.kernel t
.params 1
  mov.u32 %r0, %tid.x;
loop:
  sub.u32 %r0, %r0, 1;
  setp.gt.s32 %p0, %r0, 0;
@%p0 bra loop;
  st.global.u32 [%param0], %r0;
  exit;
|}
  in
  let m = Memory.create () in
  let dst = Memory.alloc m 4 in
  let records = ref [] in
  let config = { Interp.warp_size = 4; capture_operands = true } in
  ignore
    (run_kernel ~block:(Kernel.dim3 4) ~config
       ~on_exec:(fun r -> records := r :: !records)
       k [| dst |] m);
  let records = List.rev !records in
  check_bool "records present" true (List.length records > 5);
  let first = List.hd records in
  check_int "first record inst" 0 first.Interp.inst_index;
  check_int "first record occ" 0 first.Interp.occ;
  check_int "full mask" 0xF first.Interp.active;
  (match first.Interp.dst_values with
  | Some v ->
    Alcotest.(check (array int)) "captured tid.x" [| 0; 1; 2; 3 |] v
  | None -> Alcotest.fail "expected dst capture");
  (* occurrence counters: the loop body executes multiple times *)
  let subs = List.filter (fun r -> r.Interp.inst_index = 1) records in
  check_int "loop iterations = max tid" 3 (List.length subs);
  let occs = List.map (fun r -> r.Interp.occ) subs in
  Alcotest.(check (list int)) "occurrences count up" [ 0; 1; 2 ] occs

let test_partial_last_warp () =
  (* 40 threads: warp 1 runs with an 8-lane mask *)
  let k =
    parse
      {|
.kernel p
.params 1
  shl.b32 %r0, %tid.x, 2;
  add.u32 %r0, %r0, %param0;
  st.global.u32 [%r0+0], 5;
  exit;
|}
  in
  let m = Memory.create () in
  let dst = Memory.alloc m 256 in
  let masks = ref [] in
  ignore
    (run_kernel ~block:(Kernel.dim3 40)
       ~on_exec:(fun r -> if r.Interp.warp = 1 then masks := r.Interp.active :: !masks)
       k [| dst |] m);
  check_bool "warp 1 uses partial mask" true
    (List.for_all (fun m -> m = 0xFF) !masks);
  let out = Memory.read_i32s m dst 41 in
  check_int "thread 39 stored" 5 out.(39);
  check_int "thread 40 untouched" 0 out.(40)

(* ------------------------------------------------------------------ *)
(* Differential testing: SIMT emulator vs a scalar per-thread
   interpreter on random straight-line kernels                          *)
(* ------------------------------------------------------------------ *)

let nregs_diff = 6

let npregs_diff = 2

(* An independent scalar interpreter: one thread at a time, no SIMT
   machinery. Any divergence from the emulator is a bug in one of them. *)
let scalar_eval_kernel (k : Kernel.t) ~params ~block_x ~tid =
  let regs = Array.make (max k.Kernel.nregs 1) Value.zero in
  let preds = Array.make (max k.Kernel.npregs 1) false in
  let operand = function
    | Instr.Reg r -> regs.(r)
    | Instr.Imm v -> v
    | Instr.Param i -> params.(i)
    | Instr.Sreg (Instr.Tid Instr.X) -> tid
    | Instr.Sreg (Instr.Ntid Instr.X) -> block_x
    | Instr.Sreg (Instr.Ctaid _ | Instr.Nctaid _) -> 0
    | Instr.Sreg _ -> 0
  in
  Array.iter
    (fun (inst : Instr.t) ->
      let active =
        match inst.Instr.guard with
        | None -> true
        | Some (sense, p) -> preds.(p) = sense
      in
      if active then
        match inst.Instr.body with
        | Instr.Bin (op, d, a, b) ->
          let x = operand a and y = operand b in
          regs.(d) <-
            (match op with
            | Instr.Add -> Value.add x y
            | Instr.Sub -> Value.sub x y
            | Instr.Mul -> Value.mul x y
            | Instr.Mulhi -> Value.mulhi_s x y
            | Instr.Div_s -> Value.div_s x y
            | Instr.Div_u -> Value.div_u x y
            | Instr.Rem_s -> Value.rem_s x y
            | Instr.Rem_u -> Value.rem_u x y
            | Instr.Min_s -> Value.min_s x y
            | Instr.Max_s -> Value.max_s x y
            | Instr.Min_u -> Value.min_u x y
            | Instr.Max_u -> Value.max_u x y
            | Instr.And -> Value.logand x y
            | Instr.Or -> Value.logor x y
            | Instr.Xor -> Value.logxor x y
            | Instr.Shl -> Value.shl x y
            | Instr.Shr_u -> Value.shr_u x y
            | Instr.Shr_s -> Value.shr_s x y
            | Instr.Fadd -> Value.fadd x y
            | Instr.Fsub -> Value.fsub x y
            | Instr.Fmul -> Value.fmul x y
            | Instr.Fdiv -> Value.fdiv x y
            | Instr.Fmin -> Value.fmin x y
            | Instr.Fmax -> Value.fmax x y)
        | Instr.Un (op, d, a) ->
          let x = operand a in
          regs.(d) <-
            (match op with
            | Instr.Mov -> x
            | Instr.Not -> Value.lognot x
            | Instr.Neg -> Value.neg x
            | Instr.Abs_s -> Value.abs_s x
            | Instr.Fneg -> Value.fneg x
            | Instr.Fabs -> Value.fabs x
            | Instr.Fsqrt -> Value.fsqrt x
            | Instr.Frcp -> Value.frcp x
            | Instr.Fexp2 -> Value.fexp2 x
            | Instr.Flog2 -> Value.flog2 x
            | Instr.Fsin -> Value.fsin x
            | Instr.Fcos -> Value.fcos x
            | Instr.Cvt_i2f -> Value.cvt_i2f x
            | Instr.Cvt_u2f -> Value.cvt_u2f x
            | Instr.Cvt_f2i -> Value.cvt_f2i x)
        | Instr.Tern (op, d, a, b, c) ->
          let x = operand a and y = operand b and z = operand c in
          regs.(d) <-
            (match op with
            | Instr.Mad -> Value.add (Value.mul x y) z
            | Instr.Fma -> Value.ffma x y z)
        | Instr.Setp (kind, cmp, p, a, b) ->
          let x = operand a and y = operand b in
          let test c =
            match cmp with
            | Instr.Eq -> c = 0
            | Instr.Ne -> c <> 0
            | Instr.Lt -> c < 0
            | Instr.Le -> c <= 0
            | Instr.Gt -> c > 0
            | Instr.Ge -> c >= 0
          in
          preds.(p) <-
            (match kind with
            | Instr.Scmp -> test (Value.cmp_s x y)
            | Instr.Ucmp -> test (Value.cmp_u x y)
            | Instr.Fcmp -> (
              match Value.cmp_f x y with
              | None -> cmp = Instr.Ne
              | Some c -> test c))
        | Instr.Selp (d, a, b, p) ->
          regs.(d) <- (if preds.(p) then operand a else operand b)
        | Instr.Ld _ | Instr.St _ | Instr.Atom _ | Instr.Bra _ | Instr.Bar
        | Instr.Exit ->
          ())
    k.Kernel.insts;
  regs

let diff_body_gen =
  let open QCheck.Gen in
  let reg = int_bound (nregs_diff - 1) in
  let operand =
    oneof
      [
        map (fun r -> Instr.Reg r) reg;
        map (fun v -> Instr.Imm (Value.truncate (abs v))) (int_bound 0xFFFFF);
        return (Instr.Sreg (Instr.Tid Instr.X));
        map (fun i -> Instr.Param i) (int_bound 1);
      ]
  in
  let binop =
    oneofl
      [
        Instr.Add; Instr.Sub; Instr.Mul; Instr.Mulhi; Instr.Div_s;
        Instr.Div_u; Instr.Rem_s; Instr.Rem_u; Instr.Min_s; Instr.Max_u;
        Instr.And; Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr_u; Instr.Shr_s;
        Instr.Fadd; Instr.Fmul;
      ]
  in
  let unop =
    oneofl
      [ Instr.Mov; Instr.Not; Instr.Neg; Instr.Abs_s; Instr.Cvt_i2f;
        Instr.Cvt_u2f ]
  in
  let guard =
    oneof
      [ return None; map (fun s -> Some (s, 0)) bool;
        map (fun s -> Some (s, 1)) bool ]
  in
  let body =
    oneof
      [
        map3 (fun op d (a, b) -> Instr.Bin (op, d, a, b)) binop reg
          (pair operand operand);
        map3 (fun op d a -> Instr.Un (op, d, a)) unop reg operand;
        map3
          (fun d (a, b) c -> Instr.Tern (Instr.Mad, d, a, b, c))
          reg (pair operand operand) operand;
        map3
          (fun p (a, b) cmp -> Instr.Setp (Instr.Scmp, cmp, p, a, b))
          (int_bound (npregs_diff - 1))
          (pair operand operand)
          (oneofl [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Ge ]);
        map3
          (fun d (a, b) p -> Instr.Selp (d, a, b, p))
          reg (pair operand operand)
          (int_bound (npregs_diff - 1));
      ]
  in
  map2 (fun g b -> Instr.mk ?guard:g b) guard body

let diff_kernel_gen =
  QCheck.Gen.(
    map
      (fun bodies ->
        (* touch every predicate so npregs is stable *)
        let prelude =
          [
            Instr.mk (Instr.Setp (Instr.Scmp, Instr.Ge, 0, Instr.Reg 0, Instr.Imm 0));
            Instr.mk (Instr.Setp (Instr.Scmp, Instr.Ge, 1, Instr.Reg 0, Instr.Imm 1));
            Instr.mk (Instr.Un (Instr.Mov, nregs_diff - 1, Instr.Imm 0));
          ]
        in
        Kernel.make ~name:"diff" ~nparams:2
          (Array.of_list (prelude @ bodies @ [ Instr.mk Instr.Exit ])))
      (list_size (int_range 5 40) diff_body_gen))

let qcheck_differential =
  QCheck.Test.make ~name:"SIMT emulator matches scalar interpreter"
    ~count:150
    (QCheck.make ~print:Printer.kernel_to_string diff_kernel_gen)
    (fun k ->
      let block_x = 8 in
      let params = [| 12345; 67 |] in
      let mem = Memory.create () in
      let base = Memory.alloc mem (4 * block_x * k.Kernel.nregs) in
      (* augment the kernel to dump every register to a distinct address *)
      let augmented =
        let addr_reg = k.Kernel.nregs in
        let stores =
          List.concat_map
            (fun r ->
              [
                Instr.mk
                  (Instr.Tern
                     ( Instr.Mad,
                       addr_reg,
                       Instr.Sreg (Instr.Tid Instr.X),
                       Instr.Imm 4,
                       Instr.Imm (base + (4 * block_x * r)) ));
                Instr.mk
                  (Instr.St (Instr.Global, Instr.Reg addr_reg, 0, Instr.Reg r));
              ])
            (List.init k.Kernel.nregs (fun r -> r))
        in
        let without_exit =
          List.filter
            (fun i -> not (Instr.is_exit i))
            (Array.to_list k.Kernel.insts)
        in
        Kernel.make ~name:"diff" ~nparams:2
          (Array.of_list (without_exit @ stores @ [ Instr.mk Instr.Exit ]))
      in
      let launch =
        Kernel.launch augmented ~grid:(Kernel.dim3 1)
          ~block:(Kernel.dim3 block_x) ~params
      in
      let config = { Interp.warp_size = 4; capture_operands = false } in
      ignore (Interp.run ~config mem launch);
      List.for_all
        (fun tid ->
          let expected = scalar_eval_kernel k ~params ~block_x ~tid in
          List.for_all
            (fun r ->
              Memory.load_u32 mem (base + (4 * block_x * r) + (4 * tid))
              = expected.(r))
            (List.init k.Kernel.nregs (fun r -> r)))
        (List.init block_x (fun t -> t)))

let () =
  Alcotest.run "darsie_emu"
    [
      ( "memory",
        [
          Alcotest.test_case "basics" `Quick test_memory_basics;
          Alcotest.test_case "alignment" `Quick test_memory_alignment;
          Alcotest.test_case "alloc" `Quick test_memory_alloc;
          Alcotest.test_case "growth" `Quick test_memory_growth;
        ] );
      ( "simt-stack",
        [
          Alcotest.test_case "uniform" `Quick test_stack_uniform;
          Alcotest.test_case "divergence" `Quick test_stack_divergence;
          Alcotest.test_case "retire" `Quick test_stack_retire;
          Alcotest.test_case "bad diverge" `Quick test_stack_bad_diverge;
        ] );
      ( "straight-line",
        [
          Alcotest.test_case "axpb" `Quick test_exec_saxpy_like;
          Alcotest.test_case "float" `Quick test_exec_float;
          Alcotest.test_case "special registers" `Quick test_exec_special_registers;
          Alcotest.test_case "2d tids" `Quick test_exec_2d_tids;
        ] );
      ( "control-flow",
        [
          Alcotest.test_case "divergence" `Quick test_exec_divergence;
          Alcotest.test_case "loop" `Quick test_exec_loop;
          Alcotest.test_case "nested divergence" `Quick test_exec_nested_divergence;
          Alcotest.test_case "predicated store" `Quick test_exec_predicated_store;
        ] );
      ( "shared-and-barriers",
        [
          Alcotest.test_case "reverse" `Quick test_exec_shared_reverse;
          Alcotest.test_case "barrier under divergence" `Quick
            test_exec_barrier_under_divergence_faults;
          Alcotest.test_case "shared bounds" `Quick
            test_exec_shared_out_of_bounds_faults;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "add" `Quick test_exec_atomic_add;
          Alcotest.test_case "max" `Quick test_exec_atomic_max;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "callback" `Quick test_trace_callback;
          Alcotest.test_case "partial warp" `Quick test_partial_last_warp;
        ] );
      ("differential", [ QCheck_alcotest.to_alcotest qcheck_differential ]);
    ]
