(* Tests for the experiment harness: aggregation helpers, rendering, the
   suite matrix, and the figure projections on a reduced app set (full
   runs live in bench/main.exe). *)

open Darsie_harness


let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_float = Alcotest.(check (float 1e-9))

let test_geomean () =
  check_float "geomean of equal values" 2.0 (Stats_util.geomean [ 2.0; 2.0 ]);
  check_float "geomean 1x4" 2.0 (Stats_util.geomean [ 1.0; 4.0 ]);
  check_float "empty" 1.0 (Stats_util.geomean []);
  check_bool "zero clamps, does not zero out" true
    (Stats_util.geomean [ 0.0; 100.0 ] > 0.0);
  check_float "mean" 2.5 (Stats_util.mean [ 1.0; 4.0 ]);
  check_float "mean empty" 0.0 (Stats_util.mean []);
  check_float "percent" 25.0 (Stats_util.percent 1 4);
  check_float "percent of zero" 0.0 (Stats_util.percent 1 0)

let test_render () =
  let s = Render.table ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  check_int "header + sep + 2 rows + trailing" 5 (List.length lines);
  check_bool "separator present" true
    (String.length (List.nth lines 1) > 0
    && String.for_all (fun c -> c = '-' || c = ' ') (List.nth lines 1));
  check_bool "pct format" true (Render.pct 25.04 = "25.0%");
  check_bool "f2 format" true (Render.f2 1.234 = "1.23")

(* A reduced matrix: two fast apps, three machines. *)
let small_matrix =
  lazy
    (Suite.build_matrix
       ~machines:Suite.all_machines
       ~apps:
         [ Darsie_workloads.Floyd_warshall.workload;
           Darsie_workloads.Fast_walsh.workload ]
       ())

let test_matrix_contents () =
  let m = Lazy.force small_matrix in
  check_int "two apps" 2 (List.length m.Suite.apps);
  check_int "fourteen runs" 14 (Hashtbl.length m.Suite.runs);
  let base = Suite.get m "FWS" Suite.Base in
  check_bool "base machine recorded" true (base.Suite.machine = Suite.Base);
  check_float "base speedup is 1" 1.0 (Suite.speedup m "FWS" Suite.Base);
  check_bool "darsie speedup sane" true
    (let s = Suite.speedup m "FWS" Suite.Darsie in
     s > 0.8 && s < 3.0);
  check_bool "unknown app raises" true
    (match Suite.get m "MM" Suite.Base with
    | exception Not_found -> true
    | _ -> false)

let test_matrix_reductions () =
  let m = Lazy.force small_matrix in
  check_float "base eliminates nothing" 0.0 (Suite.instr_reduction m "FW" Suite.Base);
  check_bool "darsie eliminates on FWS" true
    (Suite.instr_reduction m "FWS" Suite.Darsie > 5.0);
  check_bool "energy reduction plausible" true
    (let e = Suite.energy_reduction m "FWS" Suite.Darsie in
     e > -10.0 && e < 80.0)

let test_machine_names () =
  Alcotest.(check (list string))
    "names"
    [ "BASE"; "UV"; "DAC-IDEAL"; "DARSIE"; "DARSIE-IGNORE-STORE";
      "DARSIE-NO-CF-SYNC"; "SILICON-SYNC" ]
    (List.map Suite.machine_name Suite.all_machines)

let test_figures_on_small_matrix () =
  let m = Lazy.force small_matrix in
  let rows9, text = Figures.fig9 m in
  check_bool "fig9 has FW rows" true
    (List.exists
       (fun (r : Figures.reduction_row) -> r.Figures.abbr = "FW")
       rows9);
  check_bool "fig9 renders" true (String.length text > 0);
  (* every figure projection works on this matrix *)
  let rows8, _, _, text8 = Figures.fig8 m in
  check_int "fig8 rows" 2 (List.length rows8);
  check_bool "fig8 renders" true (String.length text8 > 0);
  let rows11, _, _, text11 = Figures.fig11 m in
  check_int "fig11 rows" 2 (List.length rows11);
  check_bool "fig11 renders" true (String.length text11 > 0);
  let rows12, gmean12, text12 = Figures.fig12 m in
  check_int "fig12 rows" 2 (List.length rows12);
  check_bool "fig12 gmeans sane" true
    (gmean12.Figures.darsie > 0.5 && gmean12.Figures.silicon_sync <= 1.05);
  check_bool "fig12 renders" true (String.length text12 > 0);
  let ov, _ = Figures.darsie_overhead m in
  check_bool "overhead fraction small" true (ov >= 0.0 && ov < 5.0)

let test_table_renderers () =
  check_bool "table1 mentions MM" true
    (let t = Figures.table1 () in
     String.length t > 0
     &&
     let re = String.split_on_char '\n' t in
     List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 <> "  "
                           && String.length l > 0) re);
  check_bool "table2 mentions GTO" true
    (let t = Figures.table2 () in
     String.length t > 50);
  check_bool "table3 rows" true
    (let t = Figures.table3 () in
     String.length t > 100);
  let a, text = Figures.area () in
  check_bool "area text" true (String.length text > 20);
  check_int "area entry bits" 82 a.Darsie_energy.Area.skip_entry_bits

let test_fig6_contains_markings () =
  let t = Figures.fig6 () in
  let lines = String.split_on_char '\n' t in
  check_bool "has CR lines" true
    (List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "CR") lines);
  check_bool "has DR lines" true
    (List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "DR") lines)

let () =
  Alcotest.run "darsie_harness"
    [
      ( "stats-util",
        [
          Alcotest.test_case "geomean/mean/percent" `Quick test_geomean;
          Alcotest.test_case "render" `Quick test_render;
        ] );
      ( "suite",
        [
          Alcotest.test_case "matrix contents" `Quick test_matrix_contents;
          Alcotest.test_case "reductions" `Quick test_matrix_reductions;
          Alcotest.test_case "machine names" `Quick test_machine_names;
        ] );
      ( "figures",
        [
          Alcotest.test_case "small matrix" `Quick test_figures_on_small_matrix;
          Alcotest.test_case "tables" `Quick test_table_renderers;
          Alcotest.test_case "figure 6" `Quick test_fig6_contains_markings;
        ] );
    ]
