(* Tests for the compiler substrate: CFG construction, postdominators,
   the marking lattice, the redundancy dataflow and launch-time
   promotion. *)

open Darsie_isa
open Darsie_compiler

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let parse = Parser.parse_kernel

(* ------------------------------------------------------------------ *)
(* Marking lattice                                                     *)
(* ------------------------------------------------------------------ *)

let all_red =
  Marking.[ Vector; Cond_redundant_xy; Cond_redundant; Def_redundant ]

let all_shapes = Marking.[ Varying; Unstructured; Affine; Uniform ]

let all_cls =
  List.concat_map
    (fun r -> List.map (fun s -> { Marking.red = r; shape = s }) all_shapes)
    all_red

let test_lattice_meet () =
  let open Marking in
  check_bool "weakest wins" true (meet_red Vector Def_redundant = Vector);
  check_bool "CR vs DR" true (meet_red Cond_redundant Def_redundant = Cond_redundant);
  check_bool "shape meet" true (meet_shape Affine Uniform = Affine);
  (* meet is commutative, associative and idempotent over the whole
     (small) lattice. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_bool "meet commutes" true (Marking.equal (meet a b) (meet b a));
          check_bool "meet lower bound" true (Marking.leq (meet a b) a);
          List.iter
            (fun c ->
              check_bool "meet associates" true
                (Marking.equal (meet a (meet b c)) (meet (meet a b) c)))
            all_cls)
        all_cls;
      check_bool "idempotent" true (Marking.equal (meet a a) a);
      check_bool "top is identity" true (Marking.equal (meet a Marking.top) a);
      check_bool "bottom absorbs" true
        (Marking.equal (meet a Marking.bottom) Marking.bottom))
    all_cls

(* ------------------------------------------------------------------ *)
(* CFG                                                                 *)
(* ------------------------------------------------------------------ *)

let diamond_kernel =
  parse
    {|
.kernel diamond
  setp.lt.s32 %p0, %tid.x, 16;
@%p0 bra then;
  add.u32 %r0, %r0, 1;
  bra join;
then:
  add.u32 %r0, %r0, 2;
join:
  st.global.u32 [%param0], %r0;
  exit;
|}

let test_cfg_diamond () =
  let cfg = Cfg.build diamond_kernel in
  check_int "four blocks" 4 (Cfg.num_blocks cfg);
  let b0 = cfg.Cfg.blocks.(0) in
  Alcotest.(check (list int)) "entry successors" [ 2; 1 ] b0.Cfg.succs;
  let b3 = cfg.Cfg.blocks.(3) in
  Alcotest.(check (list int)) "join has no successors" [] b3.Cfg.succs;
  Alcotest.(check (list int)) "join preds" [ 1; 2 ] b3.Cfg.preds

let loop_kernel =
  parse
    {|
.kernel loop
  mov.u32 %r0, 0;
top:
  add.u32 %r0, %r0, 1;
  setp.lt.s32 %p0, %r0, 10;
@%p0 bra top;
  exit;
|}

let test_cfg_loop () =
  let cfg = Cfg.build loop_kernel in
  check_int "three blocks" 3 (Cfg.num_blocks cfg);
  let body = cfg.Cfg.blocks.(1) in
  check_bool "loop back edge" true (List.mem 1 body.Cfg.succs);
  check_bool "loop exit edge" true (List.mem 2 body.Cfg.succs)

let test_cfg_unconditional_branch () =
  let k =
    parse
      {|
.kernel skip
  bra target;
  add.u32 %r0, %r0, 1;
target:
  exit;
|}
  in
  let cfg = Cfg.build k in
  let b0 = cfg.Cfg.blocks.(0) in
  Alcotest.(check (list int)) "no fallthrough after unguarded bra" [ 2 ]
    b0.Cfg.succs;
  let b1 = cfg.Cfg.blocks.(1) in
  Alcotest.(check (list int)) "dead block still linked" [ 2 ] b1.Cfg.succs

(* ------------------------------------------------------------------ *)
(* Postdominators                                                      *)
(* ------------------------------------------------------------------ *)

let test_postdom_diamond () =
  let cfg = Cfg.build diamond_kernel in
  let pd = Postdom.compute cfg in
  check_bool "join postdominates entry" true (Postdom.postdominates pd 3 0);
  check_bool "join postdominates both arms" true
    (Postdom.postdominates pd 3 1 && Postdom.postdominates pd 3 2);
  check_bool "arm does not postdominate entry" false
    (Postdom.postdominates pd 1 0);
  Alcotest.(check (option int)) "ipdom of entry" (Some 3) (Postdom.ipdom_block pd 0);
  (* The branch at instruction 1 reconverges at the join block's first
     instruction (index 5). *)
  Alcotest.(check (option int)) "reconvergence inst" (Some 5)
    (Postdom.reconvergence_inst pd 1)

let test_postdom_loop () =
  let cfg = Cfg.build loop_kernel in
  let pd = Postdom.compute cfg in
  Alcotest.(check (option int)) "loop branch reconverges at exit block"
    (Some 2)
    (Postdom.ipdom_block pd 1);
  check_bool "exit block postdominates all" true
    (Postdom.postdominates pd 2 0 && Postdom.postdominates pd 2 1)

let test_postdom_no_reconvergence () =
  (* Two arms that both exit: reconvergence only at thread exit. *)
  let k =
    parse
      {|
.kernel split
  setp.lt.s32 %p0, %tid.x, 4;
@%p0 bra a;
  exit;
a:
  exit;
|}
  in
  let cfg = Cfg.build k in
  let pd = Postdom.compute cfg in
  Alcotest.(check (option int)) "no ipdom" None (Postdom.ipdom_block pd 0);
  Alcotest.(check (option int)) "no reconvergence point" None
    (Postdom.reconvergence_inst pd 1)

(* ------------------------------------------------------------------ *)
(* Redundancy analysis                                                 *)
(* ------------------------------------------------------------------ *)

(* The paper's Figure 3 kernel: read an integer array at base 10 indexed
   by tid.x (we use a parameter for the base). *)
let fig3_kernel =
  parse
    {|
.kernel fig3
.params 1
  mul.lo.u32 %r1, %tid.x, 4;
  add.u32 %r2, %r1, %param0;
  ld.global.u32 %r3, [%r2+0];
  exit;
|}

let test_analysis_fig3 () =
  let a = Analysis.analyze fig3_kernel in
  (* MUL tid.x,4 -> conditionally redundant affine *)
  check_bool "mul is CR" true (Analysis.marking a 0 = Marking.Cond_redundant);
  check_bool "mul is affine" true (Analysis.shape a 0 = Marking.Affine);
  (* ADD propagates *)
  check_bool "add is CR" true (Analysis.marking a 1 = Marking.Cond_redundant);
  check_bool "add is affine" true (Analysis.shape a 1 = Marking.Affine);
  (* the load takes the address's redundancy with unstructured shape *)
  check_bool "ld is CR" true (Analysis.marking a 2 = Marking.Cond_redundant);
  check_bool "ld is unstructured" true
    (Analysis.shape a 2 = Marking.Unstructured);
  check_bool "ld skippable" true (Analysis.skippable a 2)

let test_analysis_uniform_seeds () =
  let k =
    parse
      {|
.kernel seeds
.params 1
  mov.u32 %r0, %ctaid.x;
  mov.u32 %r1, %ntid.y;
  mov.u32 %r2, %param0;
  mov.u32 %r3, 42;
  add.u32 %r4, %r0, %r1;
  exit;
|}
  in
  let a = Analysis.analyze k in
  for i = 0 to 4 do
    check_bool
      (Printf.sprintf "inst %d is DR" i)
      true
      (Analysis.marking a i = Marking.Def_redundant);
    check_bool
      (Printf.sprintf "inst %d is uniform" i)
      true
      (Analysis.shape a i = Marking.Uniform)
  done

let test_analysis_tid_y_varies () =
  let k =
    parse
      {|
.kernel tidy
  mov.u32 %r0, %tid.y;
  add.u32 %r1, %r0, 1;
  exit;
|}
  in
  let a = Analysis.analyze k in
  check_bool "tid.y move is vector" true (Analysis.marking a 0 = Marking.Vector);
  check_bool "dependent op is vector" true (Analysis.marking a 1 = Marking.Vector)

let test_analysis_weakest_wins () =
  let k =
    parse
      {|
.kernel weakest
  mov.u32 %r0, %ctaid.x;
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %tid.y;
  add.u32 %r3, %r0, %r1;
  add.u32 %r4, %r0, %r2;
  add.u32 %r5, %r1, %r2;
  exit;
|}
  in
  let a = Analysis.analyze k in
  check_bool "DR+CR = CR" true (Analysis.marking a 3 = Marking.Cond_redundant);
  check_bool "DR+V = V" true (Analysis.marking a 4 = Marking.Vector);
  check_bool "CR+V = V" true (Analysis.marking a 5 = Marking.Vector)

let test_analysis_affine_algebra () =
  let k =
    parse
      {|
.kernel affine
  shl.b32 %r0, %tid.x, 2;
  add.u32 %r1, %r0, %tid.x;
  mul.lo.u32 %r2, %tid.x, %tid.x;
  xor.b32 %r3, %tid.x, 5;
  mul.lo.u32 %r4, %tid.x, %ctaid.x;
  exit;
|}
  in
  let a = Analysis.analyze k in
  check_bool "shl by uniform stays affine" true (Analysis.shape a 0 = Marking.Affine);
  check_bool "affine + affine stays affine" true (Analysis.shape a 1 = Marking.Affine);
  check_bool "affine * affine is unstructured" true
    (Analysis.shape a 2 = Marking.Unstructured);
  check_bool "xor of affine is unstructured" true
    (Analysis.shape a 3 = Marking.Unstructured);
  check_bool "affine * uniform stays affine" true (Analysis.shape a 4 = Marking.Affine);
  (* all of these are still conditionally redundant *)
  for i = 0 to 4 do
    check_bool
      (Printf.sprintf "inst %d CR" i)
      true
      (Analysis.marking a i = Marking.Cond_redundant)
  done

let test_analysis_loop_fixpoint () =
  (* A register that is CR on entry but merged with a vector value around
     the loop must settle at vector. *)
  let k =
    parse
      {|
.kernel mix
  mov.u32 %r0, %tid.x;
top:
  add.u32 %r0, %r0, %tid.y;
  setp.lt.s32 %p0, %r0, 100;
@%p0 bra top;
  add.u32 %r1, %r0, 1;
  exit;
|}
  in
  let a = Analysis.analyze k in
  check_bool "loop-carried add degrades to vector" true
    (Analysis.marking a 1 = Marking.Vector);
  check_bool "use after the loop is vector" true
    (Analysis.marking a 4 = Marking.Vector)

let test_analysis_load_from_vector_address () =
  let k =
    parse
      {|
.kernel vload
  mov.u32 %r0, %tid.y;
  shl.b32 %r1, %r0, 2;
  ld.global.u32 %r2, [%r1+0];
  exit;
|}
  in
  let a = Analysis.analyze k in
  check_bool "load from vector address is vector" true
    (Analysis.marking a 2 = Marking.Vector)

let test_analysis_atomics_and_guards () =
  let k =
    parse
      {|
.kernel atomics
  mov.u32 %r1, %ctaid.x;
  atom.global.add.u32 %r0, [%param0], %r1;
  setp.lt.s32 %p0, %tid.y, 4;
@%p0 add.u32 %r2, %r1, 1;
  exit;
|}
  in
  let a = Analysis.analyze k in
  check_bool "atomic result is vector" true (Analysis.marking a 1 = Marking.Vector);
  check_bool "atomic not skippable" false (Analysis.skippable a 1);
  check_bool "guarded instr not skippable" false (Analysis.skippable a 3)

let test_analysis_store_not_skippable () =
  let a = Analysis.analyze fig3_kernel in
  let k =
    parse
      {|
.kernel st
  st.global.u32 [%param0], %ctaid.x;
  exit;
|}
  in
  let a2 = Analysis.analyze k in
  check_bool "store not skippable" false (Analysis.skippable a2 0);
  check_bool "exit not skippable" false (Analysis.skippable a 3)

(* ------------------------------------------------------------------ *)
(* Promotion                                                           *)
(* ------------------------------------------------------------------ *)

let launch_with k bx by =
  Kernel.launch k ~grid:(Kernel.dim3 4) ~block:(Kernel.dim3 bx ~y:by)
    ~params:(Array.make k.Kernel.nparams 0x2000)

let test_promotion_2d () =
  let a = Analysis.analyze fig3_kernel in
  let p = Promotion.resolve a (launch_with fig3_kernel 16 16) ~warp_size:32 in
  check_bool "promoted" true p.Promotion.promoted;
  check_bool "mul skippable" true p.Promotion.tb_redundant.(0);
  check_bool "add skippable" true p.Promotion.tb_redundant.(1);
  check_bool "ld skippable" true p.Promotion.tb_redundant.(2);
  check_bool "exit not skippable" false p.Promotion.tb_redundant.(3);
  check_int "three static skips" 3 (Promotion.skip_count_upper_bound p)

let test_promotion_1d () =
  let a = Analysis.analyze fig3_kernel in
  let p = Promotion.resolve a (launch_with fig3_kernel 256 1) ~warp_size:32 in
  check_bool "not promoted" false p.Promotion.promoted;
  check_bool "mul demoted to vector" false p.Promotion.tb_redundant.(0);
  (* but DAC-IDEAL still removes the affine arithmetic in 1D *)
  check_bool "DAC removes the mul" true p.Promotion.dac_removable.(0);
  check_bool "DAC removes the add" true p.Promotion.dac_removable.(1);
  check_bool "DAC keeps the load" false p.Promotion.dac_removable.(2)

let test_promotion_bad_xdim () =
  let a = Analysis.analyze fig3_kernel in
  let p = Promotion.resolve a (launch_with fig3_kernel 48 2) ~warp_size:32 in
  check_bool "xdim 48 not promoted" false p.Promotion.promoted;
  let p = Promotion.resolve a (launch_with fig3_kernel 12 4) ~warp_size:32 in
  check_bool "xdim 12 not promoted (not a power of 2)" false
    p.Promotion.promoted;
  let p = Promotion.resolve a (launch_with fig3_kernel 32 2) ~warp_size:32 in
  check_bool "xdim 32 promoted" true p.Promotion.promoted

let test_promotion_uniform_always () =
  let k =
    parse
      {|
.kernel uni
.params 1
  mov.u32 %r0, %ctaid.x;
  shl.b32 %r1, %r0, 2;
  exit;
|}
  in
  let a = Analysis.analyze k in
  let p = Promotion.resolve a (launch_with k 256 1) ~warp_size:32 in
  check_bool "uniform redundancy survives 1D" true p.Promotion.tb_redundant.(0);
  check_bool "uv eligible" true p.Promotion.uv_eligible.(0)

let test_uv_excludes_loads () =
  let k =
    parse
      {|
.kernel uvload
.params 1
  ld.global.u32 %r0, [%param0+0];
  add.u32 %r1, %r0, 1;
  exit;
|}
  in
  let a = Analysis.analyze k in
  let p = Promotion.resolve a (launch_with k 16 16) ~warp_size:32 in
  check_bool "uniform load is TB-redundant for DARSIE" true
    p.Promotion.tb_redundant.(0);
  check_bool "UV never skips loads" false p.Promotion.uv_eligible.(0);
  check_bool "dependent add uniform, UV eligible" true p.Promotion.uv_eligible.(1)

(* ------------------------------------------------------------------ *)
(* 3D extension: tid.y conditional redundancy                          *)
(* ------------------------------------------------------------------ *)

let tidy_kernel =
  parse
    {|
.kernel t3d
.params 1
  mul.lo.u32 %r0, %tid.y, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  mul.lo.u32 %r3, %tid.x, %tid.y;
  exit;
|}

let test_tid_y_extension_markings () =
  let off = Analysis.analyze tidy_kernel in
  check_bool "tid.y is vector without the extension" true
    (Analysis.marking off 0 = Marking.Vector);
  let on = Analysis.analyze ~tid_y_redundancy:true tidy_kernel in
  check_bool "tid.y chain is CR-xy" true
    (Analysis.marking on 0 = Marking.Cond_redundant_xy);
  check_bool "load inherits CR-xy" true
    (Analysis.marking on 2 = Marking.Cond_redundant_xy);
  (* a value mixing tid.x and tid.y takes the weaker condition *)
  check_bool "mixed x*y is CR-xy (weakest wins)" true
    (Analysis.marking on 3 = Marking.Cond_redundant_xy);
  check_bool "CR-xy weaker than CR" true
    Marking.(meet_red Cond_redundant Cond_redundant_xy = Cond_redundant_xy)

let test_xydim_condition () =
  let mk bx by bz =
    Kernel.launch tidy_kernel ~grid:(Kernel.dim3 2)
      ~block:(Kernel.dim3 bx ~y:by ~z:bz)
      ~params:[| 0x2000 |]
  in
  check_bool "4x4x4 satisfies xy condition" true
    (Kernel.xydim_condition (mk 4 4 4) ~warp_size:32);
  check_bool "4x8x2 satisfies (xy = 32)" true
    (Kernel.xydim_condition (mk 4 8 2) ~warp_size:32);
  check_bool "8x8x2 too wide (xy = 64)" false
    (Kernel.xydim_condition (mk 8 8 2) ~warp_size:32);
  check_bool "2D block fails (needs z > 1)" false
    (Kernel.xydim_condition (mk 4 4 1) ~warp_size:32)

let test_tid_y_promotion () =
  let a = Analysis.analyze ~tid_y_redundancy:true tidy_kernel in
  let launch bx by bz =
    Kernel.launch tidy_kernel ~grid:(Kernel.dim3 2)
      ~block:(Kernel.dim3 bx ~y:by ~z:bz)
      ~params:[| 0x2000 |]
  in
  let p3d = Promotion.resolve a (launch 4 4 4) ~warp_size:32 in
  check_bool "3D block promotes the tid.y chain" true
    p3d.Promotion.tb_redundant.(0);
  check_bool "3D block promotes the tid.y load" true
    p3d.Promotion.tb_redundant.(2);
  let p2d = Promotion.resolve a (launch 16 16 1) ~warp_size:32 in
  check_bool "2D block demotes the tid.y chain" false
    p2d.Promotion.tb_redundant.(0);
  (* sanity: the dynamic limit study agrees that tid.y work is
     TB-redundant under a 4x4x4 launch *)
  let mem = Darsie_emu.Memory.create () in
  let base = Darsie_emu.Memory.alloc mem 4096 in
  Darsie_emu.Memory.write_i32s mem base (Array.init 64 (fun i -> i * 37));
  let l =
    Kernel.launch tidy_kernel ~grid:(Kernel.dim3 2)
      ~block:(Kernel.dim3 4 ~y:4 ~z:4)
      ~params:[| base |]
  in
  let r = Darsie_trace.Limit_study.measure mem l in
  check_bool "dynamically TB-redundant too" true
    (r.Darsie_trace.Limit_study.tb_red = r.Darsie_trace.Limit_study.eligible)

(* The compiler-to-binary bridge: markings travel in the encoded words'
   spare bits (§4.2). *)
let test_hints_in_binary () =
  let k = Encode.legalize fig3_kernel in
  let a = Analysis.analyze k in
  let hints = Analysis.hints a in
  match Encode.encode_kernel ~hints k with
  | Error (i, e) ->
    Alcotest.failf "instruction %d unencodable: %s" i (Encode.error_to_string e)
  | Ok words ->
    Array.iteri
      (fun i w ->
        match Encode.decode w with
        | Ok (_, h) -> check_int (Printf.sprintf "hint %d survives" i) hints.(i) h
        | Error m -> Alcotest.fail m)
      words;
    (* the tid.x chain carries CR hints through the binary *)
    check_bool "CR hints present in the image" true
      (Array.exists (fun h -> h = 1) hints)

(* Figure 6 style dump sanity. *)
let test_pp_markings () =
  let a = Analysis.analyze fig3_kernel in
  let s = Format.asprintf "%a" Analysis.pp_markings a in
  check_bool "dump mentions CR" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (fun l -> String.length l >= 2 && String.sub l 0 2 = "CR"))

let () =
  Alcotest.run "darsie_compiler"
    [
      ("lattice", [ Alcotest.test_case "meet laws" `Quick test_lattice_meet ]);
      ( "cfg",
        [
          Alcotest.test_case "diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "loop" `Quick test_cfg_loop;
          Alcotest.test_case "unconditional" `Quick test_cfg_unconditional_branch;
        ] );
      ( "postdom",
        [
          Alcotest.test_case "diamond" `Quick test_postdom_diamond;
          Alcotest.test_case "loop" `Quick test_postdom_loop;
          Alcotest.test_case "no reconvergence" `Quick test_postdom_no_reconvergence;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "figure 3" `Quick test_analysis_fig3;
          Alcotest.test_case "uniform seeds" `Quick test_analysis_uniform_seeds;
          Alcotest.test_case "tid.y varies" `Quick test_analysis_tid_y_varies;
          Alcotest.test_case "weakest wins" `Quick test_analysis_weakest_wins;
          Alcotest.test_case "affine algebra" `Quick test_analysis_affine_algebra;
          Alcotest.test_case "loop fixpoint" `Quick test_analysis_loop_fixpoint;
          Alcotest.test_case "vector load" `Quick test_analysis_load_from_vector_address;
          Alcotest.test_case "atomics and guards" `Quick test_analysis_atomics_and_guards;
          Alcotest.test_case "stores" `Quick test_analysis_store_not_skippable;
          Alcotest.test_case "figure 6 dump" `Quick test_pp_markings;
          Alcotest.test_case "hints in binary" `Quick test_hints_in_binary;
        ] );
      ( "tid-y-extension",
        [
          Alcotest.test_case "markings" `Quick test_tid_y_extension_markings;
          Alcotest.test_case "xy condition" `Quick test_xydim_condition;
          Alcotest.test_case "promotion" `Quick test_tid_y_promotion;
        ] );
      ( "promotion",
        [
          Alcotest.test_case "2d promotes" `Quick test_promotion_2d;
          Alcotest.test_case "1d demotes" `Quick test_promotion_1d;
          Alcotest.test_case "bad xdim" `Quick test_promotion_bad_xdim;
          Alcotest.test_case "uniform always redundant" `Quick test_promotion_uniform_always;
          Alcotest.test_case "uv excludes loads" `Quick test_uv_excludes_loads;
        ] );
    ]
