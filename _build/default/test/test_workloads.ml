(* Functional validation of all 13 Table-1 workloads against their CPU
   references, registry integrity, and the per-app properties the paper's
   narrative relies on (dimensionality, redundancy character, DARSIE
   benefit on the flagship workloads). *)

module W = Darsie_workloads.Workload
open Darsie_timing

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let test_registry () =
  check_int "13 applications" 13 (List.length Darsie_workloads.Registry.all);
  check_int "5 one-dimensional" 5 (List.length Darsie_workloads.Registry.one_d);
  check_int "8 two-dimensional" 8 (List.length Darsie_workloads.Registry.two_d);
  check_bool "find by abbr" true
    (Darsie_workloads.Registry.find "mm" <> None);
  check_bool "unknown app" true (Darsie_workloads.Registry.find "nope" = None);
  let abbrs = Darsie_workloads.Registry.abbrs in
  check_int "unique abbrs" (List.length abbrs)
    (List.length (List.sort_uniq compare abbrs))

let test_table1_dims () =
  (* threadblock dimensions must match the paper's Table 1 *)
  let expected =
    [
      ("BIN", (256, 1)); ("PT", (1024, 1)); ("FW", (256, 1));
      ("SR1", (512, 1)); ("LIB", (256, 1)); ("IMNLM", (16, 16));
      ("BP", (16, 16)); ("DCT8x8", (8, 8)); ("FWS", (16, 16));
      ("HS", (16, 16)); ("CP", (16, 8)); ("CONVTEX", (16, 16));
      ("MM", (32, 32));
    ]
  in
  List.iter
    (fun (abbr, dims) ->
      match Darsie_workloads.Registry.find abbr with
      | Some w ->
        Alcotest.(check (pair int int)) abbr dims w.W.block_dim
      | None -> Alcotest.failf "missing %s" abbr)
    expected

let verify_one (w : W.t) () =
  let p = w.W.prepare ~scale:1 in
  ignore (Darsie_emu.Interp.run p.W.mem p.W.launch);
  match p.W.verify p.W.mem with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" w.W.abbr e

let test_determinism () =
  (* two independent prepares produce identical launches and results *)
  let w = Darsie_workloads.Matmul.workload in
  let p1 = w.W.prepare ~scale:1 and p2 = w.W.prepare ~scale:1 in
  let s1 = Darsie_emu.Interp.run p1.W.mem p1.W.launch in
  let s2 = Darsie_emu.Interp.run p2.W.mem p2.W.launch in
  check_int "same dynamic size" s1.Darsie_emu.Interp.warp_insts
    s2.Darsie_emu.Interp.warp_insts;
  check_bool "both verify" true
    (p1.W.verify p1.W.mem = Ok () && p2.W.verify p2.W.mem = Ok ())

let test_scaling () =
  let w = Darsie_workloads.Hotspot.workload in
  let p1 = w.W.prepare ~scale:1 and p2 = w.W.prepare ~scale:2 in
  let s1 = Darsie_emu.Interp.run p1.W.mem p1.W.launch in
  let s2 = Darsie_emu.Interp.run p2.W.mem p2.W.launch in
  check_bool "scale grows the work" true
    (s2.Darsie_emu.Interp.warp_insts > s1.Darsie_emu.Interp.warp_insts);
  check_bool "scaled run verifies" true (p2.W.verify p2.W.mem = Ok ())

let test_checkers () =
  let f32_ok e a = W.check_f32 ~name:"t" ~expected:e a = Ok () in
  let i32_ok e a = W.check_i32 ~name:"t" ~expected:e a = Ok () in
  check_bool "f32 pass" true (f32_ok [| 1.0; 2.0 |] [| 1.0; 2.0000001 |]);
  check_bool "f32 fail" false (f32_ok [| 1.0 |] [| 1.5 |]);
  check_bool "f32 nan fails" false (f32_ok [| 1.0 |] [| Float.nan |]);
  check_bool "i32 pass" true (i32_ok [| 1; 2 |] [| 1; 2 |]);
  check_bool "i32 fail" false (i32_ok [| 1; 2 |] [| 2; 1 |]);
  check_bool "length mismatch" false (i32_ok [| 1 |] [| 1; 2 |])

(* paper-narrative properties, one timing run per app is too slow here;
   cover the two flagships *)

let speedup_of (w : W.t) machine =
  let app = Darsie_harness.Suite.load_app w in
  let base = Darsie_harness.Suite.run_app app Darsie_harness.Suite.Base in
  let r = Darsie_harness.Suite.run_app app machine in
  float_of_int base.Darsie_harness.Suite.gpu.Gpu.cycles
  /. float_of_int r.Darsie_harness.Suite.gpu.Gpu.cycles

let test_mm_darsie_wins () =
  let s = speedup_of Darsie_workloads.Matmul.workload Darsie_harness.Suite.Darsie in
  check_bool "MM speedup > 1.3 (paper: 2.16)" true (s > 1.3);
  let d =
    speedup_of Darsie_workloads.Matmul.workload Darsie_harness.Suite.Dac_ideal
  in
  check_bool "DARSIE beats DAC-IDEAL on MM" true (s > d)

let test_lib_uniform_heavy () =
  (* LIB: mostly uniform redundancy; both DARSIE and DAC benefit a lot,
     and UV removes many instructions without speedup (fetch-bound). *)
  let w = Darsie_workloads.Libor.workload in
  let app = Darsie_harness.Suite.load_app w in
  let base = Darsie_harness.Suite.run_app app Darsie_harness.Suite.Base in
  let uv = Darsie_harness.Suite.run_app app Darsie_harness.Suite.Uv in
  let darsie = Darsie_harness.Suite.run_app app Darsie_harness.Suite.Darsie in
  check_bool "UV drops a lot" true
    (uv.Darsie_harness.Suite.gpu.Gpu.stats.Stats.dropped_issue
    > base.Darsie_harness.Suite.gpu.Gpu.stats.Stats.issued / 5);
  let uv_speedup =
    float_of_int base.Darsie_harness.Suite.gpu.Gpu.cycles
    /. float_of_int uv.Darsie_harness.Suite.gpu.Gpu.cycles
  in
  check_bool "but UV barely speeds up" true (uv_speedup < 1.1);
  let s =
    float_of_int base.Darsie_harness.Suite.gpu.Gpu.cycles
    /. float_of_int darsie.Darsie_harness.Suite.gpu.Gpu.cycles
  in
  check_bool "DARSIE speeds LIB up a lot" true (s > 1.4)

let test_figure2_shape () =
  (* Lock the paper's Figure 2 claims as regression bands: 1D apps have
     no affine/unstructured TB redundancy; every 2D app has some; the
     flagship compositions hold. *)
  let study (w : W.t) =
    let p = w.W.prepare ~scale:1 in
    Darsie_trace.Limit_study.measure p.W.mem p.W.launch
  in
  let open Darsie_trace.Limit_study in
  List.iter
    (fun (w : W.t) ->
      let r = study w in
      check_bool
        (w.W.abbr ^ ": 1D has no affine/unstructured redundancy")
        true
        (r.tb_affine = 0 && r.tb_unstructured = 0))
    Darsie_workloads.Registry.one_d;
  List.iter
    (fun (w : W.t) ->
      let r = study w in
      check_bool
        (w.W.abbr ^ ": 2D has non-uniform TB redundancy")
        true
        (r.tb_affine + r.tb_unstructured > 0))
    Darsie_workloads.Registry.two_d;
  (* flagship compositions *)
  let mm = study Darsie_workloads.Matmul.workload in
  check_bool "MM: unstructured > 10% of executed" true
    (fraction mm.tb_unstructured mm > 0.10);
  let lib = study Darsie_workloads.Libor.workload in
  check_bool "LIB: uniform > 50% of executed" true
    (fraction lib.tb_uniform lib > 0.50);
  let sr1 = study Darsie_workloads.Srad.workload in
  check_bool "SR1: little redundancy (paper's smallest)" true
    (fraction sr1.tb_red sr1 < 0.15)

let test_extended_registry () =
  check_int "six extended workloads" 6
    (List.length Darsie_workloads.Registry.extended);
  check_bool "extended apps stay out of the Table-1 lists" true
    (List.for_all
       (fun (w : W.t) ->
         not (List.memq w Darsie_workloads.Registry.all))
       Darsie_workloads.Registry.extended);
  check_bool "but find resolves them (CLI access)" true
    (Darsie_workloads.Registry.find "spmv" <> None)

(* The strongest end-to-end invariant: on every workload (including the
   divergent SpMV and the atomic histogram) and under every elimination
   machine, the dynamic instruction stream is conserved:
   issued + pre-fetch skips + issue drops = baseline issued. *)
let test_stream_conservation () =
  let machines =
    Darsie_harness.Suite.
      [ Uv; Dac_ideal; Darsie; Darsie_ignore_store; Darsie_no_cf_sync ]
  in
  List.iter
    (fun (w : W.t) ->
      let app = Darsie_harness.Suite.load_app w in
      let base = Darsie_harness.Suite.run_app app Darsie_harness.Suite.Base in
      let base_issued =
        base.Darsie_harness.Suite.gpu.Gpu.stats.Stats.issued
      in
      List.iter
        (fun m ->
          let r = Darsie_harness.Suite.run_app app m in
          let s = r.Darsie_harness.Suite.gpu.Gpu.stats in
          check_int
            (Printf.sprintf "%s under %s conserves the stream" w.W.abbr
               (Darsie_harness.Suite.machine_name m))
            base_issued
            (s.Stats.issued + Stats.total_eliminated s))
        machines)
    (Darsie_workloads.Registry.extended
    @ [ Darsie_workloads.Backprop.workload; Darsie_workloads.Libor.workload ])

let () =
  let per_app =
    List.map
      (fun (w : W.t) ->
        Alcotest.test_case (w.W.abbr ^ " verifies") `Quick (verify_one w))
      Darsie_workloads.Registry.all
  in
  let per_ext =
    List.map
      (fun (w : W.t) ->
        Alcotest.test_case (w.W.abbr ^ " verifies") `Quick (verify_one w))
      Darsie_workloads.Registry.extended
  in
  Alcotest.run "darsie_workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "structure" `Quick test_registry;
          Alcotest.test_case "table 1 dims" `Quick test_table1_dims;
        ] );
      ("functional", per_app);
      ("extended", per_ext);
      ( "properties",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "scaling" `Quick test_scaling;
          Alcotest.test_case "checkers" `Quick test_checkers;
          Alcotest.test_case "MM: darsie wins" `Quick test_mm_darsie_wins;
          Alcotest.test_case "LIB: uniform heavy" `Quick test_lib_uniform_heavy;
          Alcotest.test_case "figure 2 shape bands" `Quick test_figure2_shape;
          Alcotest.test_case "extended registry" `Quick test_extended_registry;
          Alcotest.test_case "stream conservation" `Quick test_stream_conservation;
        ] );
    ]
