test/test_compiler.ml: Alcotest Analysis Array Cfg Darsie_compiler Darsie_emu Darsie_isa Darsie_trace Encode Format Kernel List Marking Parser Postdom Printf Promotion String
