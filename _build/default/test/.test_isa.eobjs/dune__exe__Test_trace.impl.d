test/test_trace.ml: Alcotest Array Darsie_emu Darsie_isa Darsie_trace Kernel Limit_study List Parser QCheck QCheck_alcotest Record Value Vec
