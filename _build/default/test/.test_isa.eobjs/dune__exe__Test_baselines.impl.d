test/test_baselines.ml: Alcotest Array Darsie_baselines Darsie_core Darsie_emu Darsie_isa Darsie_timing Darsie_trace Engine Gpu Kernel Kinfo Parser Stats
