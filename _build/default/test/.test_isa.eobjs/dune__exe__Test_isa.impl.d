test/test_isa.ml: Alcotest Array Builder Darsie_emu Darsie_isa Darsie_workloads Encode Float Gen Instr Int64 Kernel List Parser Printer QCheck QCheck_alcotest Result Test Value
