test/test_timing.ml: Alcotest Array Config Darsie_core Darsie_emu Darsie_isa Darsie_timing Darsie_trace Engine Gpu Instr Kernel Kinfo List Mem_model Parser Printf Stats String
