test/test_emu.ml: Alcotest Array Darsie_emu Darsie_isa Instr Interp Kernel List Memory Parser Printer Printf QCheck QCheck_alcotest Simt_stack Value
