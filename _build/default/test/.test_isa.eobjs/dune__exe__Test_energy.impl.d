test/test_energy.ml: Alcotest Area Config Darsie_energy Darsie_timing Energy_model Stats
