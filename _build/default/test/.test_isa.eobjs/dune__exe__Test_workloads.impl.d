test/test_workloads.ml: Alcotest Darsie_emu Darsie_harness Darsie_timing Darsie_trace Darsie_workloads Float Gpu List Printf Stats
