test/test_harness.ml: Alcotest Darsie_energy Darsie_harness Darsie_workloads Figures Hashtbl Lazy List Render Stats_util String Suite
