(* Tests for the trace library: growable vectors, trace recording, and the
   redundancy limit studies (Figure 1/2 machinery). *)

open Darsie_isa
open Darsie_trace

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let parse = Parser.parse_kernel

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec () =
  let v = Vec.create () in
  check_int "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 49 (Vec.get v 7);
  check_int "to_array" 81 (Vec.to_array v).(9);
  let sum = ref 0 in
  Vec.iter (fun x -> sum := !sum + x) v;
  check_int "iter sums" 328350 !sum;
  Alcotest.check_raises "bounds" (Invalid_argument "Vec.get: out of bounds")
    (fun () -> ignore (Vec.get v 100))

(* ------------------------------------------------------------------ *)
(* Pattern tests                                                       *)
(* ------------------------------------------------------------------ *)

let test_vector_patterns () =
  check_bool "uniform" true (Limit_study.vector_uniform [| 5; 5; 5; 5 |]);
  check_bool "not uniform" false (Limit_study.vector_uniform [| 5; 5; 6; 5 |]);
  check_bool "affine stride 4" true
    (Limit_study.vector_affine [| 0; 4; 8; 12 |]);
  check_bool "uniform is affine" true (Limit_study.vector_affine [| 3; 3; 3; 3 |]);
  check_bool "periodic affine (2D tid.x layout)" true
    (Limit_study.vector_affine [| 0; 1; 2; 3; 0; 1; 2; 3 |]);
  check_bool "periodic affine stride 4" true
    (Limit_study.vector_affine [| 10; 14; 10; 14 |]);
  check_bool "unstructured" false
    (Limit_study.vector_affine [| 7; 3; 0; 90 |]);
  check_bool "broken period" false
    (Limit_study.vector_affine [| 0; 1; 2; 3; 0; 1; 2; 5 |]);
  (* wrap-around strides still count (mod 2^32 arithmetic) *)
  check_bool "wrapping affine" true
    (Limit_study.vector_affine
       [| 0xFFFFFFFE; 0xFFFFFFFF; 0; 1 |])

let affine_gen =
  QCheck.Gen.(
    map3
      (fun base stride n ->
        (abs base land 0xFFFFFF, abs stride land 0xFFFF, (abs n mod 4) + 1))
      int int int)

let qcheck_affine =
  QCheck.Test.make ~name:"generated affine vectors are affine" ~count:300
    (QCheck.make affine_gen) (fun (base, stride, log_period) ->
      let period = 1 lsl log_period in
      let n = 32 in
      let v =
        Array.init n (fun i -> Value.add base (Value.mul stride (i mod period)))
      in
      Limit_study.vector_affine v)

(* ------------------------------------------------------------------ *)
(* Record generation                                                   *)
(* ------------------------------------------------------------------ *)

let loop_kernel =
  parse
    {|
.kernel t
.params 1
  mov.u32 %r0, 0;
top:
  add.u32 %r0, %r0, 1;
  setp.lt.s32 %p0, %r0, 3;
@%p0 bra top;
  st.global.u32 [%param0], %r0;
  exit;
|}

let test_record_generate () =
  let mem = Darsie_emu.Memory.create () in
  let dst = Darsie_emu.Memory.alloc mem 4 in
  let launch =
    Kernel.launch loop_kernel ~grid:(Kernel.dim3 2) ~block:(Kernel.dim3 64)
      ~params:[| dst |]
  in
  let t = Record.generate mem launch in
  check_int "tbs" 2 (Record.num_tbs t);
  check_int "warps per tb" 2 (Record.warps_per_tb t);
  (* 1 mov + 3*(add,setp,bra) + st + exit = 12 per warp *)
  check_int "ops per warp" 12 (Array.length t.Record.tbs.(0).(0));
  check_int "total" (12 * 4) (Record.total_ops t);
  (* occurrence numbers count loop iterations *)
  let w = t.Record.tbs.(1).(1) in
  let adds = Array.to_list w |> List.filter (fun o -> o.Record.idx = 1) in
  Alcotest.(check (list int))
    "occurrences" [ 0; 1; 2 ]
    (List.map (fun o -> o.Record.occ) adds);
  (* memory op carries addresses *)
  let st = Array.to_list w |> List.find (fun o -> o.Record.idx = 4) in
  check_int "store addresses" 32 (Array.length st.Record.accesses);
  check_int "full mask recorded" ((1 lsl 32) - 1) st.Record.active

(* ------------------------------------------------------------------ *)
(* Limit study on crafted kernels                                      *)
(* ------------------------------------------------------------------ *)

let measure ?(grid = Kernel.dim3 2) ?(block = Kernel.dim3 16 ~y:16) k params =
  let mem = Darsie_emu.Memory.create () in
  let params =
    Array.map
      (fun need ->
        if need then begin
          let base = Darsie_emu.Memory.alloc mem 65536 in
          (* patterned, non-affine data so loaded values are judged by
             their real structure *)
          Darsie_emu.Memory.write_i32s mem base
            (Array.init 16384 (fun i -> (i * 2654435761) land 0xFFFFF));
          base
        end
        else 0)
      params
  in
  let launch = Kernel.launch k ~grid ~block ~params in
  (Limit_study.measure mem launch, params)

let test_limit_uniform_kernel () =
  (* Everything derived from ctaid: fully TB- (but not grid-) redundant. *)
  let k =
    parse
      {|
.kernel u
.params 1
  mov.u32 %r0, %ctaid.x;
  add.u32 %r1, %r0, 10;
  mul.lo.u32 %r2, %r1, 3;
  st.global.u32 [%param0], %r2;
  exit;
|}
  in
  let r, _ = measure k [| true |] in
  (* eligible = mov+add+mul+st = 4 of 5 per warp; all TB-redundant
     uniform *)
  check_int "tb_red counts eligible instances" r.Limit_study.tb_red
    r.Limit_study.tb_uniform;
  check_bool "everything eligible is TB-redundant" true
    (r.Limit_study.tb_red = r.Limit_study.eligible);
  (* ctaid differs across blocks: only the exit-independent ops with
     constant operands are grid-redundant; mov reads ctaid (differs), so
     grid_red < tb_red *)
  check_bool "grid strictly less" true
    (r.Limit_study.grid_red < r.Limit_study.tb_red)

let test_limit_grid_redundant () =
  let k =
    parse
      {|
.kernel g
.params 1
  mov.u32 %r0, 42;
  add.u32 %r1, %r0, %param0;
  exit;
|}
  in
  let r, _ = measure k [| false |] in
  check_bool "constant ops grid-redundant" true
    (r.Limit_study.grid_red = r.Limit_study.eligible)

let test_limit_2d_vs_1d () =
  (* The Figure 3 kernel: affine-redundant in 2D, non-redundant in 1D. *)
  let k =
    parse
      {|
.kernel f3
.params 1
  mul.lo.u32 %r1, %tid.x, 4;
  add.u32 %r2, %r1, %param0;
  ld.global.u32 %r3, [%r2+0];
  exit;
|}
  in
  let r2d, _ = measure ~block:(Kernel.dim3 16 ~y:16) k [| true |] in
  check_bool "2D: all eligible TB-redundant" true
    (r2d.Limit_study.tb_red = r2d.Limit_study.eligible);
  check_bool "2D: affine present" true (r2d.Limit_study.tb_affine > 0);
  check_bool "2D: load is unstructured" true
    (r2d.Limit_study.tb_unstructured > 0);
  let r1d, _ = measure ~block:(Kernel.dim3 256) k [| true |] in
  check_int "1D: nothing TB-redundant" 0 r1d.Limit_study.tb_red

let test_limit_divergence_not_redundant () =
  (* Same computation under a partial mask: counted non-redundant. *)
  let k =
    parse
      {|
.kernel d
  setp.lt.s32 %p0, %tid.y, 8;
@!%p0 bra skip;
  mov.u32 %r0, %ctaid.x;
  add.u32 %r1, %r0, 1;
skip:
  exit;
|}
  in
  (* 16x16 block: tid.y < 8 is a *warp-level* split (full masks), so the
     mov/add remain TB-non-redundant only because not every warp runs
     them. *)
  let r, _ = measure k [| |] in
  check_int "guarded-path ops not TB-redundant" 0 r.Limit_study.tb_red

let test_limit_warp_level () =
  (* tid.y is warp-uniform in a 16x16 block only when warps span 2 rows -
     it is NOT: two y values per warp. tid.x patterns are shared. *)
  let k =
    parse
      {|
.kernel w
  mov.u32 %r0, %ctaid.y;
  mov.u32 %r1, %tid.x;
  exit;
|}
  in
  let r, _ = measure k [||] in
  (* per warp: mov ctaid.y is scalar; mov tid.x is not *)
  check_bool "warp_red counts scalar instances" true
    (r.Limit_study.warp_red * 2 = r.Limit_study.tb_red)

let test_limit_load_value_dependence () =
  (* Two blocks read the same uniform address but a store in between does
     not occur; loads are TB-redundant; values differ per-TB only via
     ctaid — here address is constant so grid-redundant too. *)
  let k =
    parse
      {|
.kernel lv
.params 1
  ld.global.u32 %r0, [%param0+0];
  add.u32 %r1, %r0, 1;
  exit;
|}
  in
  let r, _ = measure k [| true |] in
  check_bool "uniform load redundant at grid level" true
    (r.Limit_study.grid_red = r.Limit_study.eligible);
  check_bool "classified uniform" true
    (r.Limit_study.tb_uniform = r.Limit_study.tb_red)

let test_limit_atomics_excluded () =
  let k =
    parse
      {|
.kernel a
.params 1
  atom.global.add.u32 %r0, [%param0], 1;
  exit;
|}
  in
  let r, _ = measure k [| true |] in
  check_int "atomics never redundant" 0 r.Limit_study.tb_red;
  check_int "atomics not eligible" 0 r.Limit_study.eligible

let () =
  Alcotest.run "darsie_trace"
    [
      ("vec", [ Alcotest.test_case "basics" `Quick test_vec ]);
      ( "patterns",
        [
          Alcotest.test_case "classification" `Quick test_vector_patterns;
          QCheck_alcotest.to_alcotest qcheck_affine;
        ] );
      ( "record",
        [ Alcotest.test_case "generation" `Quick test_record_generate ] );
      ( "limit-study",
        [
          Alcotest.test_case "uniform kernel" `Quick test_limit_uniform_kernel;
          Alcotest.test_case "grid redundant" `Quick test_limit_grid_redundant;
          Alcotest.test_case "2d vs 1d" `Quick test_limit_2d_vs_1d;
          Alcotest.test_case "divergence" `Quick
            test_limit_divergence_not_redundant;
          Alcotest.test_case "warp level" `Quick test_limit_warp_level;
          Alcotest.test_case "uniform loads" `Quick
            test_limit_load_value_dependence;
          Alcotest.test_case "atomics" `Quick test_limit_atomics_excluded;
        ] );
    ]
