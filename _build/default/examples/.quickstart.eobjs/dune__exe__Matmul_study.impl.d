examples/matmul_study.ml: Array Darsie_compiler Darsie_harness Darsie_isa Darsie_timing Darsie_trace Darsie_workloads Format Gpu List Printf Stats String
