examples/extension_3d.mli:
