examples/quickstart.mli:
