examples/extension_3d.ml: Array Builder Darsie_compiler Darsie_core Darsie_emu Darsie_isa Darsie_timing Darsie_trace Engine Gpu Instr Kernel Kinfo List Printf Stats
