examples/quickstart.ml: Array Darsie_compiler Darsie_core Darsie_emu Darsie_isa Darsie_timing Darsie_trace Engine Format Gpu Kernel Kinfo Parser Printf Stats
