examples/figure3_walkthrough.ml: Array Darsie_emu Darsie_isa Darsie_trace Hashtbl Kernel List Option Parser Printf String Value
