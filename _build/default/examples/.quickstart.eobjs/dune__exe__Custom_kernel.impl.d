examples/custom_kernel.ml: Array Builder Darsie_compiler Darsie_emu Darsie_isa Format Instr Kernel List Printer Printf
