(* Building a kernel with the Builder eDSL and exploring how threadblock
   dimensionality changes what DARSIE can skip — the paper's central
   observation, on a kernel of your own.

     dune exec examples/custom_kernel.exe *)

open Darsie_isa
module B = Builder

(* out[gid] = table[tid.x] + row_constant: one load from a tid.x-based
   address (conditionally redundant) and one uniform parameter add. *)
let build () =
  let b = B.create ~name:"custom" ~nparams:3 () in
  let open B.O in
  let gid = B.reg b in
  B.mad b gid ctaid_x ntid_x tid_x;
  let gy = B.reg b in
  B.mad b gy ctaid_y ntid_y tid_y;
  let width = B.reg b in
  B.mul b width ntid_x nctaid_x;
  B.mad b gid (r gy) (r width) (r gid);
  let t_addr = B.reg b in
  B.mad b t_addr tid_x (i 4) (p 0);
  let tv = B.reg b in
  B.ld b Instr.Global tv (r t_addr) ();
  let v = B.reg b in
  B.add b v (r tv) (p 2);
  let o_addr = B.reg b in
  B.mad b o_addr (r gid) (i 4) (p 1);
  B.st b Instr.Global (r o_addr) (r v);
  B.exit_ b;
  B.finish b

let try_block kernel analysis (bx, by) =
  let mem = Darsie_emu.Memory.create () in
  let table = Darsie_emu.Memory.alloc mem (4 * 1024) in
  let out = Darsie_emu.Memory.alloc mem (4 * 65536) in
  Darsie_emu.Memory.write_i32s mem table (Array.init 1024 (fun i -> 7 * i));
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 4 ~y:2)
      ~block:(Kernel.dim3 bx ~y:by)
      ~params:[| table; out; 100 |]
  in
  let promo = Darsie_compiler.Promotion.resolve analysis launch ~warp_size:32 in
  let skippable = Darsie_compiler.Promotion.skip_count_upper_bound promo in
  Printf.printf "  %4dx%-3d  promoted=%-5b  skippable instructions: %d\n" bx by
    promo.Darsie_compiler.Promotion.promoted skippable;
  (* run it to make sure each shape also executes correctly *)
  ignore (Darsie_emu.Interp.run mem launch);
  let got = Darsie_emu.Memory.read_i32s mem out 3 in
  assert (got.(0) = 100 && got.(1) = 107 && got.(2) = 114)

let () =
  let kernel = build () in
  print_endline "kernel assembly:";
  print_string (Printer.kernel_to_string kernel);
  print_newline ();
  let analysis = Darsie_compiler.Analysis.analyze kernel in
  Format.printf "markings:@\n%a@\n" Darsie_compiler.Analysis.pp_markings
    analysis;
  print_endline
    "launch-time promotion across threadblock shapes (x-dim must be a\n\
     power of two no larger than the warp size, and the TB must be 2D):";
  List.iter
    (try_block kernel analysis)
    [ (256, 1); (32, 8); (16, 16); (8, 32); (48, 4); (12, 12) ];
  print_endline "\n(The same binary; only the launch geometry changed.)"
