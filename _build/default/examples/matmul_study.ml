(* A deep dive into the paper's flagship workload, matrixMul: assembly,
   compiler markings (Figure 6), dynamic redundancy (Figure 2's MM bar)
   and timing under every machine configuration (Figure 8's MM group).

     dune exec examples/matmul_study.exe *)

module W = Darsie_workloads.Workload
open Darsie_timing

let () =
  let mm = Darsie_workloads.Matmul.workload in
  Printf.printf "=== %s (%s), %dx%d threadblocks ===\n\n" mm.W.full_name
    mm.W.suite (fst mm.W.block_dim) (snd mm.W.block_dim);

  (* Compiler view. *)
  let p = mm.W.prepare ~scale:1 in
  let kernel = p.W.launch.Darsie_isa.Kernel.kernel in
  let analysis = Darsie_compiler.Analysis.analyze kernel in
  let count_mark target =
    let n = ref 0 in
    Array.iteri
      (fun i _ ->
        if
          Darsie_compiler.Analysis.skippable analysis i
          && Darsie_compiler.Analysis.marking analysis i = target
        then incr n)
      kernel.Darsie_isa.Kernel.insts;
    !n
  in
  Printf.printf
    "static instructions: %d (DR %d, CR %d of which skippable)\n\n"
    (Array.length kernel.Darsie_isa.Kernel.insts)
    (count_mark Darsie_compiler.Marking.Def_redundant)
    (count_mark Darsie_compiler.Marking.Cond_redundant);
  Printf.printf "unrolled inner-loop markings (paper Figure 6 pattern):\n";
  let text = Format.asprintf "%a" Darsie_compiler.Analysis.pp_markings analysis in
  let lines = String.split_on_char '\n' text in
  List.iteri (fun i l -> if i >= 20 && i < 29 then print_endline l) lines;
  print_newline ();

  (* Dynamic redundancy (Figure 2's MM column). *)
  let fresh = mm.W.prepare ~scale:1 in
  let r = Darsie_trace.Limit_study.measure fresh.W.mem fresh.W.launch in
  let open Darsie_trace.Limit_study in
  let pct n = 100.0 *. fraction n r in
  Printf.printf
    "dynamic TB redundancy: %.1f%% (uniform %.1f%%, affine %.1f%%, \
     unstructured %.1f%%)\n\n"
    (pct r.tb_red) (pct r.tb_uniform) (pct r.tb_affine) (pct r.tb_unstructured);

  (* Timing under each machine. *)
  let app = Darsie_harness.Suite.load_app mm in
  let base =
    (Darsie_harness.Suite.run_app app Darsie_harness.Suite.Base)
      .Darsie_harness.Suite.gpu
  in
  Printf.printf "%-22s %10s %9s %9s\n" "machine" "cycles" "speedup" "elim%";
  List.iter
    (fun machine ->
      let run = Darsie_harness.Suite.run_app app machine in
      let g = run.Darsie_harness.Suite.gpu in
      Printf.printf "%-22s %10d %8.2fx %8.1f%%\n"
        (Darsie_harness.Suite.machine_name machine)
        g.Gpu.cycles
        (float_of_int base.Gpu.cycles /. float_of_int g.Gpu.cycles)
        (100.0
        *. float_of_int (Stats.total_eliminated g.Gpu.stats)
        /. float_of_int base.Gpu.stats.Stats.issued))
    Darsie_harness.Suite.all_machines;
  Printf.printf
    "\n(The paper reports MM as DARSIE's best case: tiled shared-memory\n\
     loads at tid.x-based addresses are unstructured redundant, which\n\
     neither UV nor DAC-IDEAL can remove.)\n"
