(* Figure 3 walkthrough: the paper's pseudo-assembly example that reads an
   integer array indexed by tid.x, executed with a warp size of 4 on a 1D
   (8x1) and a 2D (4x2) threadblock. Reproduces the output-register values
   and their cross-threadblock classification from the paper's Figure 3.

     dune exec examples/figure3_walkthrough.exe *)

open Darsie_isa

let warp_size = 4

(* MUL R1, tid.x, 4 ; ADD R2, R1, #base ; LD R3, MEM[R2] *)
let kernel base =
  Parser.parse_kernel
    (Printf.sprintf
       {|
.kernel fig3
  mul.lo.u32 %%r1, %%tid.x, 4;
  add.u32 %%r2, %%r1, %d;
  ld.global.u32 %%r3, [%%r2+0];
  exit;
|}
       base)

let classify v =
  if Darsie_trace.Limit_study.vector_uniform v then "uniform"
  else if Darsie_trace.Limit_study.vector_affine v then "affine"
  else "unstructured"

let run_case ~name ~block base_addr =
  Printf.printf "--- %s ---\n" name;
  let k = kernel base_addr in
  let mem = Darsie_emu.Memory.create () in
  (* The paper's memory contents: [7, 3, 0, 90, 55, 8, 22, 1] at the
     array base. *)
  Darsie_emu.Memory.write_i32s mem base_addr [| 7; 3; 0; 90; 55; 8; 22; 1 |];
  let launch = Kernel.launch k ~grid:(Kernel.dim3 1) ~block ~params:[||] in
  (* collect each warp's output register per instruction *)
  let per_inst : (int, (int * Value.t array) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let config = { Darsie_emu.Interp.warp_size; capture_operands = true } in
  let on_exec (r : Darsie_emu.Interp.exec_record) =
    match r.Darsie_emu.Interp.dst_values with
    | Some v ->
      let cur =
        Option.value ~default:[]
          (Hashtbl.find_opt per_inst r.Darsie_emu.Interp.inst_index)
      in
      Hashtbl.replace per_inst r.Darsie_emu.Interp.inst_index
        (cur @ [ (r.Darsie_emu.Interp.warp, v) ])
    | None -> ()
  in
  ignore (Darsie_emu.Interp.run ~config ~on_exec mem launch);
  let names = [| "MUL R1, tid.x, 4"; "ADD R2, R1, #base"; "LD  R3, MEM[R2]" |] in
  for i = 0 to 2 do
    let warps = Hashtbl.find per_inst i in
    let values =
      String.concat "  "
        (List.map
           (fun (w, v) ->
             Printf.sprintf "W%d:[%s]" w
               (String.concat ","
                  (Array.to_list
                     (Array.map (fun x -> string_of_int (Value.to_signed x)) v))))
           warps)
    in
    let all_same =
      match warps with
      | (_, first) :: rest -> List.for_all (fun (_, v) -> v = first) rest
      | [] -> false
    in
    let shape = classify (snd (List.hd warps)) in
    Printf.printf "%-18s -> %s\n %20s pattern: %s%s\n" names.(i) values ""
      shape
      (if all_same then " + redundant across warps" else " (not redundant)")
  done;
  print_newline ()

let () =
  Printf.printf
    "Paper Figure 3: warp size %d, array base 10 holding [7,3,0,90,55,8,22,1]\n\n"
    warp_size;
  (* Use a word-aligned stand-in for the paper's base address of 10. *)
  let base = 0x1000 in
  run_case ~name:"(a) 1D threadblock (xdim=8, ydim=1)" ~block:(Kernel.dim3 8)
    base;
  run_case ~name:"(b) 2D threadblock (xdim=4, ydim=2)"
    ~block:(Kernel.dim3 4 ~y:2) base;
  Printf.printf
    "As in the paper: the 1D layout gives TB-affine but non-redundant\n\
     values; the 2D layout makes tid.x repeat per warp, so the address\n\
     chain is affine-redundant and the loaded data is unstructured\n\
     redundant.\n"
