lib/timing/sm.ml: Array Config Darsie_compiler Darsie_isa Darsie_trace Engine Kinfo List Mem_model Queue Record Stats
