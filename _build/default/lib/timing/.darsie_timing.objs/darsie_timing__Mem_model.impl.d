lib/timing/mem_model.ml: Array Hashtbl List
