lib/timing/engine.mli: Config Darsie_trace Kinfo Queue Stats
