lib/timing/stats.ml: Format
