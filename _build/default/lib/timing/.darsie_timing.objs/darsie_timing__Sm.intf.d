lib/timing/sm.mli: Config Darsie_trace Engine Kinfo Mem_model Stats
