lib/timing/gpu.mli: Config Darsie_isa Darsie_trace Engine Kinfo Stats
