lib/timing/config.mli: Format
