lib/timing/mem_model.mli:
