lib/timing/gpu.ml: Array Config Darsie_isa Darsie_trace Kernel Kinfo Mem_model Record Sm Stats
