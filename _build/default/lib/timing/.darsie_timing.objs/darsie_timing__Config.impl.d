lib/timing/config.ml: Format
