lib/timing/stats.mli: Format
