lib/timing/engine.ml: Array Config Darsie_trace Kinfo Queue Stats
