lib/timing/kinfo.mli: Darsie_compiler Darsie_isa
