lib/timing/kinfo.ml: Analysis Array Darsie_compiler Darsie_isa Instr Kernel List Marking Promotion
