let coalesce ~line_bytes accesses =
  let seen = Hashtbl.create 8 in
  let lines = ref [] in
  Array.iter
    (fun addr ->
      let line = addr - (addr mod line_bytes) in
      if not (Hashtbl.mem seen line) then begin
        Hashtbl.add seen line ();
        lines := line :: !lines
      end)
    accesses;
  List.rev !lines

let shared_conflicts ~banks accesses =
  if Array.length accesses = 0 then 0
  else begin
    (* bank = word address mod banks; distinct words on the same bank
       serialize, identical words broadcast *)
    let per_bank = Hashtbl.create 16 in
    Array.iter
      (fun addr ->
        let word = addr / 4 in
        let bank = word mod banks in
        let words =
          match Hashtbl.find_opt per_bank bank with
          | None -> []
          | Some ws -> ws
        in
        if not (List.mem word words) then
          Hashtbl.replace per_bank bank (word :: words))
      accesses;
    let worst = Hashtbl.fold (fun _ ws acc -> max acc (List.length ws)) per_bank 1 in
    worst - 1
  end

module L1 = struct
  type set = { tags : int array; last_use : int array }

  type t = {
    assoc : int;
    line : int;
    nsets : int;
    sets : set array;
    mutable tick : int;
  }

  let create ~bytes ~assoc ~line =
    let nsets = max 1 (bytes / (assoc * line)) in
    {
      assoc;
      line;
      nsets;
      sets =
        Array.init nsets (fun _ ->
            { tags = Array.make assoc (-1); last_use = Array.make assoc 0 });
      tick = 0;
    }

  let locate t addr =
    let line_id = addr / t.line in
    let set = line_id mod t.nsets in
    let tag = line_id / t.nsets in
    (t.sets.(set), tag)

  let probe t addr =
    let set, tag = locate t addr in
    Array.exists (fun x -> x = tag) set.tags

  let access t addr =
    t.tick <- t.tick + 1;
    let set, tag = locate t addr in
    let hit = ref false in
    Array.iteri
      (fun i x ->
        if x = tag then begin
          hit := true;
          set.last_use.(i) <- t.tick
        end)
      set.tags;
    if not !hit then begin
      (* LRU victim *)
      let victim = ref 0 in
      for i = 1 to t.assoc - 1 do
        if set.last_use.(i) < set.last_use.(!victim) then victim := i
      done;
      set.tags.(!victim) <- tag;
      set.last_use.(!victim) <- t.tick
    end;
    !hit

  let flush t =
    Array.iter
      (fun s ->
        Array.fill s.tags 0 (Array.length s.tags) (-1);
        Array.fill s.last_use 0 (Array.length s.last_use) 0)
      t.sets
end

module Dram = struct
  type t = { txn_cycles : int; latency : int; mutable next_free : int }

  let create ~txn_cycles ~latency = { txn_cycles; latency; next_free = 0 }

  let request t ~now ~ntxns =
    let start = max now t.next_free in
    t.next_free <- start + (ntxns * t.txn_cycles);
    t.next_free + t.latency

  let busy_until t = t.next_free
end
