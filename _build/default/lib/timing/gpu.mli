(** Whole-GPU simulation: threadblock dispatch over multiple SMs sharing
    one DRAM channel. *)

type result = {
  cycles : int;
  stats : Stats.t;  (** aggregated over SMs (cycles = max) *)
  per_sm : Stats.t array;
  engine : string;
  tbs_per_sm : int;  (** resident threadblock occupancy used *)
}

val occupancy : Config.t -> Darsie_isa.Kernel.t -> warps_per_tb:int -> int
(** Resident threadblocks per SM given the warp, register, shared-memory
    and slot limits. *)

val run :
  ?cfg:Config.t -> Engine.factory -> Kinfo.t -> Darsie_trace.Record.t -> result
(** Replay a recorded trace through the timing model with the given
    engine. Threadblocks are dispatched to SMs greedily in index order as
    slots free up.

    @raise Failure if simulation exceeds a safety cycle bound. *)

val ipc : result -> float
(** Executed warp instructions (including eliminated ones' useful work is
    excluded) per cycle: [issued / cycles]. *)
