open Darsie_isa

type block = {
  id : int;
  first : int;
  last : int;
  succs : int list;
  preds : int list;
}

type t = {
  kernel : Kernel.t;
  blocks : block array;
  block_of_inst : int array;
}

let build (kernel : Kernel.t) =
  let insts = kernel.Kernel.insts in
  let n = Array.length insts in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun i inst ->
      match Instr.branch_target inst with
      | Some target ->
        leader.(target) <- true;
        if i + 1 < n then leader.(i + 1) <- true
      | None -> if Instr.is_exit inst && i + 1 < n then leader.(i + 1) <- true)
    insts;
  let firsts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then firsts := i :: !firsts
  done;
  let firsts = Array.of_list !firsts in
  let nb = Array.length firsts in
  let block_of_inst = Array.make n 0 in
  let last_of b = if b + 1 < nb then firsts.(b + 1) - 1 else n - 1 in
  for b = 0 to nb - 1 do
    for i = firsts.(b) to last_of b do
      block_of_inst.(i) <- b
    done
  done;
  let succs_of b =
    let last = last_of b in
    let inst = insts.(last) in
    let fallthrough = if b + 1 < nb then [ b + 1 ] else [] in
    match Instr.branch_target inst with
    | Some target ->
      let tb = block_of_inst.(target) in
      (* An unguarded branch has no fallthrough. *)
      if inst.Instr.guard = None then [ tb ]
      else if List.mem tb fallthrough then fallthrough
      else tb :: fallthrough
    | None ->
      if Instr.is_exit inst && inst.Instr.guard = None then []
      else fallthrough
  in
  let succs = Array.init nb succs_of in
  let preds = Array.make nb [] in
  Array.iteri
    (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
    succs;
  let blocks =
    Array.init nb (fun b ->
        {
          id = b;
          first = firsts.(b);
          last = last_of b;
          succs = succs.(b);
          preds = List.rev preds.(b);
        })
  in
  { kernel; blocks; block_of_inst }

let num_blocks t = Array.length t.blocks

let entry t = t.blocks.(0)

let exit_blocks t =
  Array.to_list t.blocks
  |> List.filter (fun b -> b.succs = [])
  |> List.map (fun b -> b.id)

let pp fmt t =
  Array.iter
    (fun b ->
      Format.fprintf fmt "B%d [%d..%d] -> %a@\n" b.id b.first b.last
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ",")
           Format.pp_print_int)
        b.succs)
    t.blocks
