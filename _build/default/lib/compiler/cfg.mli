(** Control-flow graphs over PTX-lite kernels.

    Basic blocks are maximal straight-line instruction ranges; block leaders
    are the entry instruction, every branch target and every instruction
    following a branch or exit. Barriers do not break blocks (they are not
    control flow), but {!block_boundaries} exposes them for the
    SILICON-SYNC experiment, which inserts TB-wide synchronization at every
    basic-block boundary. *)

type block = {
  id : int;
  first : int;  (** index of the first instruction *)
  last : int;  (** index of the last instruction (inclusive) *)
  succs : int list;  (** successor block ids *)
  preds : int list;
}

type t = {
  kernel : Darsie_isa.Kernel.t;
  blocks : block array;
  block_of_inst : int array;  (** instruction index -> block id *)
}

val build : Darsie_isa.Kernel.t -> t

val num_blocks : t -> int

val entry : t -> block

val exit_blocks : t -> int list
(** Blocks with no successors (those ending in an unguarded [Exit], or
    falling off the end of the program). *)

val pp : Format.formatter -> t -> unit
