lib/compiler/marking.ml: Format
