lib/compiler/cfg.mli: Darsie_isa Format
