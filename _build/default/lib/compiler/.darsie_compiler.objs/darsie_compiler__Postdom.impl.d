lib/compiler/postdom.ml: Array Cfg List
