lib/compiler/analysis.ml: Array Cfg Darsie_isa Format Instr Kernel List Marking Option Postdom Printer Queue
