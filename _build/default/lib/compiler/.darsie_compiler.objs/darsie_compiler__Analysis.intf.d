lib/compiler/analysis.mli: Cfg Darsie_isa Format Marking Postdom
