lib/compiler/promotion.mli: Analysis Darsie_isa
