lib/compiler/promotion.ml: Analysis Array Darsie_isa Instr Kernel Marking
