lib/compiler/postdom.mli: Cfg
