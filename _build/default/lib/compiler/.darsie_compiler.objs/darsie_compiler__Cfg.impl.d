lib/compiler/cfg.ml: Array Darsie_isa Format Instr Kernel List
