lib/compiler/marking.mli: Format
