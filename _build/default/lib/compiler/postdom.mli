(** Postdominator analysis for SIMT reconvergence.

    GPUs reconverge divergent warps at the immediate postdominator (IPDOM)
    of the divergent branch; the functional emulator's SIMT stack pushes the
    IPDOM as the reconvergence PC. Computed with the classic iterative
    bit-set dataflow over the reverse CFG with a virtual exit node joining
    all exit blocks. *)

type t

val compute : Cfg.t -> t

val postdominates : t -> int -> int -> bool
(** [postdominates t a b] — does block [a] postdominate block [b]? A block
    postdominates itself. *)

val ipdom_block : t -> int -> int option
(** Immediate postdominator block of a block, or [None] for blocks
    postdominated only by the virtual exit. *)

val reconvergence_inst : t -> int -> int option
(** [reconvergence_inst t i] is the instruction index where a divergent
    branch at instruction [i] reconverges (the first instruction of the
    branch block's immediate postdominator), or [None] when the paths only
    rejoin at thread exit. *)
