type t = {
  cfg : Cfg.t;
  (* pdom.(b).(a) = block a postdominates block b; index nb is the virtual
     exit node. *)
  pdom : bool array array;
  ipdom : int option array;
}

let compute (cfg : Cfg.t) =
  let nb = Cfg.num_blocks cfg in
  let vexit = nb in
  let succs b =
    let block = cfg.Cfg.blocks.(b) in
    if block.Cfg.succs = [] then [ vexit ] else block.Cfg.succs
  in
  (* Initialize: exit postdominated only by itself, others by everything. *)
  let pdom =
    Array.init (nb + 1) (fun b ->
        if b = vexit then Array.init (nb + 1) (fun a -> a = vexit)
        else Array.make (nb + 1) true)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Reverse program order converges fastest for postdominators. *)
    for b = nb - 1 downto 0 do
      for a = 0 to nb do
        if a <> b then begin
          let everywhere =
            List.for_all (fun s -> pdom.(s).(a)) (succs b)
          in
          if pdom.(b).(a) && not everywhere then begin
            pdom.(b).(a) <- false;
            changed := true
          end
        end
      done
    done
  done;
  (* ipdom(b): the strict postdominator closest to b — the candidate whose
     own postdominator set contains every other candidate. *)
  let ipdom =
    Array.init nb (fun b ->
        let candidates =
          List.filter
            (fun a -> a <> b && a <> vexit && pdom.(b).(a))
            (List.init nb (fun i -> i))
        in
        let closest =
          List.find_opt
            (fun p ->
              List.for_all (fun q -> q = p || pdom.(p).(q)) candidates)
            candidates
        in
        closest)
  in
  { cfg; pdom; ipdom }

let postdominates t a b = t.pdom.(b).(a)

let ipdom_block t b = t.ipdom.(b)

let reconvergence_inst t i =
  let b = t.cfg.Cfg.block_of_inst.(i) in
  match t.ipdom.(b) with
  | Some p -> Some t.cfg.Cfg.blocks.(p).Cfg.first
  | None -> None
