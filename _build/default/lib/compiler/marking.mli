(** The redundancy and value-shape lattices of the DARSIE compiler pass.

    The paper (§4.2) classifies every register and instruction into one of
    three redundancy states — definitely redundant, conditionally redundant
    or true vector — with "weakest definition wins" when multiple states
    reach an operand. Orthogonally, §2's taxonomy distinguishes the
    {e shape} of redundant values: uniform (one scalar for the whole
    threadblock), affine (a single [<base, stride>] pair replicated in each
    warp) and unstructured (equal vectors with no pattern). We track shape
    for every value, redundant or not, because DAC-IDEAL removes affine
    values that are not redundant (e.g. a 1D kernel's [tid.x]). *)

(** Redundancy across the warps of a threadblock, ordered
    [Vector < Cond_redundant_xy < Cond_redundant < Def_redundant]. The
    meet ({!meet_red}) picks the weakest.

    [Cond_redundant] depends only on the launch's x-dimension condition
    (the paper's main analysis, seeded by [tid.x]). [Cond_redundant_xy]
    additionally requires the 3D-threadblock condition on [xdim * ydim]
    (the paper's §2 observation that [tid.y] is conditionally redundant
    in 3D TBs); it is weaker because both conditions must hold. *)
type redundancy = Vector | Cond_redundant_xy | Cond_redundant | Def_redundant

(** Value shape, ordered [Varying < Unstructured < Affine < Uniform]. *)
type shape = Varying | Unstructured | Affine | Uniform

type cls = { red : redundancy; shape : shape }
(** The abstract class of one register at one program point. *)

val top : cls
(** Optimistic initial state for the fixpoint: [(Def_redundant, Uniform)]. *)

val bottom : cls

val meet_red : redundancy -> redundancy -> redundancy

val meet_shape : shape -> shape -> shape

val meet : cls -> cls -> cls

val equal : cls -> cls -> bool

val leq : cls -> cls -> bool
(** Pointwise lattice order ([leq a b] iff [a] is at most as strong). *)

val red_to_string : redundancy -> string
(** ["DR"], ["CR"] or ["V"] — the paper's Figure 6 notation. *)

val shape_to_string : shape -> string

val pp : Format.formatter -> cls -> unit
