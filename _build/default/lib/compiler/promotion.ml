open Darsie_isa

type t = {
  analysis : Analysis.t;
  promoted : bool;
  tb_redundant : bool array;
  dac_removable : bool array;
  uv_eligible : bool array;
}

let resolve (analysis : Analysis.t) (launch : Kernel.launch) ~warp_size =
  let promoted = Kernel.xdim_condition launch ~warp_size in
  let promoted_xy = Kernel.xydim_condition launch ~warp_size in
  let n = Array.length analysis.Analysis.info in
  let resolved_red i =
    match Analysis.marking analysis i with
    | Marking.Def_redundant -> true
    | Marking.Cond_redundant -> promoted
    | Marking.Cond_redundant_xy -> promoted_xy
    | Marking.Vector -> false
  in
  let tb_redundant =
    Array.init n (fun i -> Analysis.skippable analysis i && resolved_red i)
  in
  let insts = analysis.Analysis.kernel.Kernel.insts in
  let dac_removable =
    Array.init n (fun i ->
        let inst = insts.(i) in
        let alu =
          Analysis.skippable analysis i
          && (not (Instr.is_load inst))
          && not (Instr.is_atomic inst)
        in
        alu
        &&
        match Analysis.shape analysis i with
        | Marking.Uniform | Marking.Affine -> true
        | Marking.Unstructured | Marking.Varying -> false)
  in
  let uv_eligible =
    Array.init n (fun i ->
        Analysis.skippable analysis i
        && (not (Instr.is_load insts.(i)))
        && Analysis.shape analysis i = Marking.Uniform
        && resolved_red i)
  in
  { analysis; promoted; tb_redundant; dac_removable; uv_eligible }

let skip_count_upper_bound t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.tb_redundant
