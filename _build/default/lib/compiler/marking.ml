type redundancy = Vector | Cond_redundant_xy | Cond_redundant | Def_redundant

type shape = Varying | Unstructured | Affine | Uniform

type cls = { red : redundancy; shape : shape }

let top = { red = Def_redundant; shape = Uniform }

let bottom = { red = Vector; shape = Varying }

let red_rank = function
  | Vector -> 0
  | Cond_redundant_xy -> 1
  | Cond_redundant -> 2
  | Def_redundant -> 3

let shape_rank = function
  | Varying -> 0
  | Unstructured -> 1
  | Affine -> 2
  | Uniform -> 3

let meet_red a b = if red_rank a <= red_rank b then a else b

let meet_shape a b = if shape_rank a <= shape_rank b then a else b

let meet a b = { red = meet_red a.red b.red; shape = meet_shape a.shape b.shape }

let equal a b = a.red = b.red && a.shape = b.shape

let leq a b = red_rank a.red <= red_rank b.red && shape_rank a.shape <= shape_rank b.shape

let red_to_string = function
  | Vector -> "V"
  | Cond_redundant_xy -> "CRY"
  | Cond_redundant -> "CR"
  | Def_redundant -> "DR"

let shape_to_string = function
  | Varying -> "varying"
  | Unstructured -> "unstructured"
  | Affine -> "affine"
  | Uniform -> "uniform"

let pp fmt c =
  Format.fprintf fmt "%s/%s" (red_to_string c.red) (shape_to_string c.shape)
