(** The idealized Decoupled Affine Computation baseline (Wang & Lin,
    ISCA'17), as modeled in the paper's §5.

    DAC compiles affine computation into a separate scalar stream executed
    once. The paper's DAC-IDEAL model assumes every statically affine or
    uniform ALU instruction — redundant or not, in 1D and 2D kernels — is
    executed only once with zero synchronization cost between the affine
    and vector streams. Memory operations and control flow stay in the
    SIMT stream, and unstructured redundancy cannot be removed.

    Model: such instructions are filtered out of every warp's instruction
    stream before fetch, at zero cost. *)

val factory : Darsie_timing.Engine.factory
