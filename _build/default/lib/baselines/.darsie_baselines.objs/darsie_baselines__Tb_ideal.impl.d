lib/baselines/tb_ideal.ml: Array Config Darsie_timing Darsie_trace Engine Kinfo
