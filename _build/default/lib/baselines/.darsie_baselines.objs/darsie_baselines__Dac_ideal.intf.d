lib/baselines/dac_ideal.mli: Darsie_timing
