lib/baselines/uv.ml: Array Darsie_timing Darsie_trace Engine Hashtbl Kinfo Record
