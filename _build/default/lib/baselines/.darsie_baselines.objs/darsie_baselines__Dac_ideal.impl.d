lib/baselines/dac_ideal.ml: Array Darsie_timing Darsie_trace Engine Kinfo
