lib/baselines/tb_ideal.mli: Darsie_timing
