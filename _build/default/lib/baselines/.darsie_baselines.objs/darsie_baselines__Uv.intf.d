lib/baselines/uv.mli: Darsie_timing
