open Darsie_timing

let factory : Engine.factory =
 fun kinfo _cfg _stats ->
  let base = Engine.base () in
  {
    base with
    Engine.name = "DAC-IDEAL";
    remove_at_fetch =
      (fun _ op -> kinfo.Kinfo.dac_removable.(op.Darsie_trace.Record.idx));
  }
