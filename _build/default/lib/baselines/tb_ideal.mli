(** An idealized upper bound on TB-redundancy elimination.

    Every TB-redundant instruction is executed exactly once per
    threadblock (by its first warp) and removed from every other warp's
    stream before fetch, with no skip-table capacity, coalescer-port,
    LeaderWB or branch-synchronization costs. Comparing DARSIE against
    this bound measures how much of the opportunity the real mechanism
    captures; comparing it against the Figure-1 limit study measures what
    the promotion rules leave behind. Not a paper configuration — an
    analysis aid. *)

val factory : Darsie_timing.Engine.factory
