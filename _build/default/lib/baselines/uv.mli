(** The Uniform Vector baseline (Xiang et al., ICS'13), as modeled in the
    paper's §5.

    UV detects inter-warp uniform values with an instruction reuse buffer
    and prevents redundant instructions from {e executing} at the issue
    stage — after they have been fetched, decoded and buffered. It removes
    only uniform redundancy, never memory operations, and saves no fetch
    bandwidth: exactly why the paper finds it barely improves performance
    while DARSIE does.

    Model: per resident threadblock, a reuse buffer with one slot per
    static PC. The first warp to issue a uniform-redundant instruction
    executes it and fills the slot at writeback; warps issuing the same
    dynamic instance afterwards hit the buffer and are dropped at issue. *)

val factory : Darsie_timing.Engine.factory
