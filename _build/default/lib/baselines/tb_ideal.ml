open Darsie_timing

let factory : Engine.factory =
 fun kinfo cfg _stats ->
  let base = Engine.base () in
  let full = (1 lsl cfg.Config.warp_size) - 1 in
  {
    base with
    Engine.name = "TB-IDEAL";
    remove_at_fetch =
      (fun w op ->
        kinfo.Kinfo.tb_redundant.(op.Darsie_trace.Record.idx)
        && w.Engine.warp_in_tb <> 0
        && op.Darsie_trace.Record.active land full = full);
  }
