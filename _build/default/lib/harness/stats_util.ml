let geomean xs =
  match xs with
  | [] -> 1.0
  | _ ->
    let logs = List.map (fun x -> log (max x 1e-4)) xs in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length xs))

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole
