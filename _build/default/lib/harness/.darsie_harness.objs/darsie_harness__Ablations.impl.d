lib/harness/ablations.ml: Config Darsie_baselines Darsie_core Darsie_timing Darsie_workloads Engine Gpu List Printf Render Stats Stats_util Suite
