lib/harness/figures.mli: Darsie_energy Darsie_timing Suite
