lib/harness/stats_util.mli:
