lib/harness/suite.mli: Darsie_energy Darsie_timing Darsie_trace Darsie_workloads Hashtbl
