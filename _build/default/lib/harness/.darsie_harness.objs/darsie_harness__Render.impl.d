lib/harness/render.ml: Array List Printf String
