lib/harness/stats_util.ml: List
