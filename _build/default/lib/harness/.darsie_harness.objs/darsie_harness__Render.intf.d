lib/harness/render.mli:
