lib/harness/ablations.mli: Suite
