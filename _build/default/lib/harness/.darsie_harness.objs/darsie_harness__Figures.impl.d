lib/harness/figures.ml: Config Darsie_compiler Darsie_energy Darsie_isa Darsie_timing Darsie_trace Darsie_workloads Format Gpu List Printf Render Stats Stats_util Suite
