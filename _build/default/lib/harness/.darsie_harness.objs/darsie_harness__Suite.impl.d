lib/harness/suite.ml: Config Darsie_baselines Darsie_core Darsie_energy Darsie_timing Darsie_trace Darsie_workloads Engine Gpu Hashtbl Kinfo List Stats Stats_util
