(** Ablation studies of DARSIE's hardware parameters.

    The paper fixes the design point (8 skip entries/TB, 32 renamed
    registers/TB, a 2-port PC coalescer, §4.3/§6.3) and reports that the
    coalescer was sized experimentally. These sweeps regenerate that
    design-space exploration on representative workloads: each row is one
    parameter value, with DARSIE's speedup and instruction reduction at
    that point. *)

type point = {
  value : int;
  speedup : float;
  reduction_pct : float;  (** eliminated / baseline issued *)
  sync_stalls : int;
}

type sweep = {
  parameter : string;
  app : string;
  points : point list;
}

val sweep_skip_entries : ?values:int list -> Suite.app -> sweep

val sweep_coalescer_ports : ?values:int list -> Suite.app -> sweep

val sweep_rename_regs : ?values:int list -> Suite.app -> sweep

val sweep_max_chain : ?values:int list -> Suite.app -> sweep
(** Maximum consecutive skips per warp per cycle (the +8 adder chain). *)

val scheduler_comparison :
  Suite.app list -> (string * float * float) list
(** Per app: (abbr, GTO baseline IPC, LRR baseline IPC) — reproducing the
    paper's methodology note that these regular applications are
    insensitive to warp-scheduler choice, with GTO the best option. *)

val render_schedulers : (string * float * float) list -> string

val mechanism_efficiency :
  Suite.app list -> (string * float * float * float) list
(** Per app: (abbr, DARSIE speedup, TB-IDEAL speedup, fraction of the
    ideal's eliminated instructions that DARSIE's real mechanism also
    eliminates). TB-IDEAL removes every follower instance of a
    TB-redundant instruction at zero cost — an upper bound on what the
    skip table, coalescer and synchronization can deliver. *)

val render_efficiency : (string * float * float * float) list -> string

val run_default :
  unit -> sweep list
(** The sweeps reported by the bench harness: skip entries, ports, rename
    registers and chain length on MM (capacity-sensitive) and CONVTEX
    (throughput-sensitive). *)

val render : sweep -> string
