(** Small numeric helpers for experiment aggregation. *)

val geomean : float list -> float
(** Geometric mean; non-positive inputs are clamped to [1e-4] (the paper
    reports geometric means of percentages that can be ~0 for UV). Empty
    input yields 1. *)

val mean : float list -> float

val percent : int -> int -> float
(** [percent part whole] = 100 * part/whole (0 when whole = 0). *)
