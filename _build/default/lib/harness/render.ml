let table ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           if i = 0 then
             cell ^ String.make (widths.(i) - String.length cell) ' '
           else String.make (widths.(i) - String.length cell) ' ' ^ cell)
         r)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map render_row rows in
  String.concat "\n" ((render_row (pad header) :: sep :: body) @ [ "" ])

let pct x = Printf.sprintf "%.1f%%" x

let f2 x = Printf.sprintf "%.2f" x
