(** Plain-text table rendering for experiment output. *)

val table : header:string list -> string list list -> string
(** Left-aligned first column, right-aligned numeric columns, separator
    under the header. *)

val pct : float -> string
(** Render a percentage with one decimal, e.g. ["23.4%"]. *)

val f2 : float -> string
(** Two-decimal float. *)
