type t = { mutable cur : int; all : int }

let create ~warps =
  let all = (1 lsl warps) - 1 in
  { cur = all; all }

let on_path t w = t.cur land (1 lsl w) <> 0

let drop t w = t.cur <- t.cur land lnot (1 lsl w)

let mask t = t.cur

let all_mask t = t.all

let covers t m = t.cur land lnot m = 0

let reset t = t.cur <- t.all

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0
