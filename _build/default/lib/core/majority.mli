(** The majority-path bitmask (paper §4.3.3).

    One bit per warp of a threadblock indicates whether the warp is still
    on the TB-majority control-flow path and therefore eligible for
    instruction skipping. Bits are cleared when a warp deviates from the
    majority path (or encounters intra-warp SIMD divergence) and all set
    back on a [__syncthreads]. *)

type t

val create : warps:int -> t

val on_path : t -> int -> bool

val drop : t -> int -> unit

val mask : t -> int

val all_mask : t -> int

val covers : t -> int -> bool
(** [covers t m] — does [m] include every warp currently on the majority
    path? *)

val reset : t -> unit
(** Set every warp back on the path (barrier semantics). *)

val popcount : int -> int
