lib/core/skip_table.ml: Hashtbl List
