lib/core/majority.ml:
