lib/core/darsie_engine.mli: Darsie_timing
