lib/core/majority.mli:
