lib/core/darsie_engine.ml: Array Config Darsie_compiler Darsie_isa Darsie_timing Darsie_trace Engine Gpu Hashtbl Kinfo Majority Option Queue Record Skip_table Stats
