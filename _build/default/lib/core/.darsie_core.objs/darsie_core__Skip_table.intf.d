lib/core/skip_table.mli:
