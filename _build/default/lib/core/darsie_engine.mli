(** DARSIE: the fetch-stage instruction-skipping engine (paper §4).

    Plugs into the timing model's {!Darsie_timing.Engine} interface. Per
    resident threadblock it maintains a {!Skip_table} (PC skip table +
    register versioning + physical-register freelist), a {!Majority} path
    mask and a branch-synchronization table. Each cycle, up to
    [coalescer_ports] distinct skip PCs are processed (the PC coalescer);
    warps at those PCs skip up to [max_skips_per_warp_cycle] consecutive
    TB-redundant instructions by incrementing their PC, never touching the
    I-cache.

    Semantics follow the paper:
    - the first majority-path warp to reach a TB-redundant PC becomes the
      {e leader}: it allocates a skip-table instance and a renamed register
      and executes the instruction normally;
    - {e followers} wait until the leader's writeback ([LeaderWB]) and then
      skip, remapping their register version;
    - branches force a TB-wide synchronization among majority-path warps;
      warps whose successor differs from the majority are dropped from the
      path, as are warps that issue under a partial SIMD mask;
    - barriers reset the majority mask and flush the skip table;
    - stores flush load entries (unless [ignore_store] — the paper's
      DARSIE-IGNORE-STORE ablation);
    - [no_cf_sync] removes every DARSIE-induced stall (the paper's
      DARSIE-NO-CF-SYNC idealization). *)

type options = {
  ignore_store : bool;  (** DARSIE-IGNORE-STORE *)
  no_cf_sync : bool;  (** DARSIE-NO-CF-SYNC *)
}

val default_options : options

val factory : ?options:options -> unit -> Darsie_timing.Engine.factory

val name_of : options -> string
