lib/isa/value.ml: Float Format Int32 Int64
