lib/isa/parser.mli: Instr Kernel
