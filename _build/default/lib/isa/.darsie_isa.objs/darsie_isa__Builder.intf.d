lib/isa/builder.mli: Instr Kernel
