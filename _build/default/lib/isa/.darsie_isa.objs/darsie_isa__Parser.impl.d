lib/isa/parser.ml: Array Hashtbl Instr Kernel List Printf String Value
