lib/isa/builder.ml: Array Instr Kernel List Value
