lib/isa/kernel.ml: Array Instr List Option Printf Value
