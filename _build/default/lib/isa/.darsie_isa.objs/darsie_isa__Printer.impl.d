lib/isa/printer.ml: Array Format Hashtbl Instr Kernel Printf
