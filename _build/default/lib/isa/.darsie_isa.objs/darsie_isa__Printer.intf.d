lib/isa/printer.mli: Format Instr Kernel
