lib/isa/encode.ml: Array Instr Int64 Kernel List Printf Result Value
