lib/isa/instr.ml: List Value
