lib/isa/kernel.mli: Instr Value
