lib/isa/encode.mli: Instr Kernel
