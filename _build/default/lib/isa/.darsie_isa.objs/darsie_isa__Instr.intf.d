lib/isa/instr.mli: Value
