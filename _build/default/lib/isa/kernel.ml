type dim3 = { x : int; y : int; z : int }

let dim3 ?(y = 1) ?(z = 1) x = { x; y; z }

let dim3_count d = d.x * d.y * d.z

type t = {
  name : string;
  insts : Instr.t array;
  nregs : int;
  npregs : int;
  nparams : int;
  shared_bytes : int;
}

let make ~name ?(npregs = 0) ?(nparams = 0) ?(shared_bytes = 0) insts =
  if Array.length insts = 0 then
    invalid_arg "Kernel.make: empty instruction stream";
  let nregs = ref 0 and npreds = ref npregs in
  let see_reg r = if r + 1 > !nregs then nregs := r + 1 in
  let see_pred p = if p + 1 > !npreds then npreds := p + 1 in
  Array.iteri
    (fun i inst ->
      (match Instr.branch_target inst with
      | Some t when t < 0 || t >= Array.length insts ->
        invalid_arg
          (Printf.sprintf "Kernel.make: branch at %d targets invalid index %d"
             i t)
      | _ -> ());
      Option.iter see_reg (Instr.dst_reg inst);
      List.iter see_reg (Instr.src_regs inst);
      Option.iter see_pred (Instr.dst_pred inst);
      List.iter see_pred (Instr.src_preds inst))
    insts;
  { name; insts; nregs = !nregs; npregs = !npreds; nparams; shared_bytes }

let pc_of_index i = i * Instr.width_bytes

let index_of_pc pc = pc / Instr.width_bytes

type launch = {
  kernel : t;
  grid_dim : dim3;
  block_dim : dim3;
  params : Value.t array;
}

let launch kernel ~grid ~block ~params =
  if Array.length params <> kernel.nparams then
    invalid_arg
      (Printf.sprintf "Kernel.launch %s: expected %d params, got %d"
         kernel.name kernel.nparams (Array.length params));
  let positive d = d.x > 0 && d.y > 0 && d.z > 0 in
  if not (positive grid && positive block) then
    invalid_arg "Kernel.launch: dimensions must be positive";
  if dim3_count block > 1024 then
    invalid_arg "Kernel.launch: threadblock exceeds 1024 threads";
  { kernel; grid_dim = grid; block_dim = block; params }

let threads_per_block l = dim3_count l.block_dim

let warps_per_block l ~warp_size =
  (threads_per_block l + warp_size - 1) / warp_size

let num_blocks l = dim3_count l.grid_dim

let thread_of_lane l ~warp_size ~warp ~lane =
  let linear = (warp * warp_size) + lane in
  if linear >= threads_per_block l then None
  else
    let bx = l.block_dim.x and by = l.block_dim.y in
    let x = linear mod bx in
    let y = linear / bx mod by in
    let z = linear / (bx * by) in
    Some (x, y, z)

let block_of_index l i =
  let gx = l.grid_dim.x and gy = l.grid_dim.y in
  (i mod gx, i / gx mod gy, i / (gx * gy))

let is_multidimensional l = l.block_dim.y > 1 || l.block_dim.z > 1

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let xdim_condition l ~warp_size =
  is_multidimensional l
  && l.block_dim.x <= warp_size
  && is_power_of_two l.block_dim.x

let xydim_condition l ~warp_size =
  l.block_dim.z > 1
  && l.block_dim.x * l.block_dim.y <= warp_size
  && is_power_of_two (l.block_dim.x * l.block_dim.y)
