(** 32-bit GPU register values.

    Every vector-register lane holds a 32-bit word. We represent the word as
    a native [int] kept in canonical unsigned form (between [0] and
    [2{^32} - 1]); integer arithmetic wraps modulo 2{^32} and floating-point
    operations round-trip through IEEE-754 single precision via
    [Int32.bits_of_float], so register contents are bit-exact with real GPU
    registers. *)

type t = int
(** A 32-bit word in canonical unsigned form. *)

val truncate : int -> t
(** [truncate x] keeps the low 32 bits of [x]. All operations below return
    already-truncated values. *)

val zero : t

val of_int32 : int32 -> t

val to_int32 : t -> int32

val to_signed : t -> int
(** Interpret as a signed 32-bit integer (sign extended into the native
    [int]). *)

val of_signed : int -> t
(** Inverse of {!to_signed}: wrap a native integer into canonical form. *)

val of_float : float -> t
(** IEEE-754 single-precision bit pattern of [f] (after rounding [f] to
    single precision). *)

val to_float : t -> float
(** Reinterpret the bit pattern as an IEEE-754 single-precision float. *)

(** {1 Integer arithmetic (wrapping, unsigned canonical results)} *)

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t
(** Low 32 bits of the product. *)

val mulhi_s : t -> t -> t
(** High 32 bits of the signed 64-bit product. *)

val div_s : t -> t -> t
(** Signed division; division by zero yields [0xFFFFFFFF] (GPU-style,
    non-trapping). *)

val div_u : t -> t -> t

val rem_s : t -> t -> t
(** Signed remainder; remainder by zero yields the dividend. *)

val rem_u : t -> t -> t

val neg : t -> t

val min_s : t -> t -> t

val max_s : t -> t -> t

val min_u : t -> t -> t

val max_u : t -> t -> t

val abs_s : t -> t

(** {1 Bitwise} *)

val logand : t -> t -> t

val logor : t -> t -> t

val logxor : t -> t -> t

val lognot : t -> t

val shl : t -> t -> t
(** Shift left by [b mod 32] (GPU semantics clamp at 32; we clamp: shifts of
    32 or more yield 0). *)

val shr_u : t -> t -> t
(** Logical shift right; shifts of 32 or more yield 0. *)

val shr_s : t -> t -> t
(** Arithmetic shift right; shifts of 32 or more yield the sign fill. *)

(** {1 Floating point (single precision)} *)

val fadd : t -> t -> t

val fsub : t -> t -> t

val fmul : t -> t -> t

val fdiv : t -> t -> t

val ffma : t -> t -> t -> t
(** [ffma a b c] computes [a *. b +. c] in single precision. *)

val fmin : t -> t -> t

val fmax : t -> t -> t

val fneg : t -> t

val fabs : t -> t

val fsqrt : t -> t

val frcp : t -> t
(** Reciprocal approximation ([1.0 /. x] rounded to single precision). *)

val fexp2 : t -> t

val flog2 : t -> t

val fsin : t -> t

val fcos : t -> t

val cvt_i2f : t -> t
(** Signed integer to single-precision float. *)

val cvt_u2f : t -> t

val cvt_f2i : t -> t
(** Single-precision float to signed integer (round toward zero, saturating
    at the int32 range, NaN maps to 0). *)

(** {1 Comparisons} *)

val cmp_s : t -> t -> int
(** Signed three-way comparison. *)

val cmp_u : t -> t -> int

val cmp_f : t -> t -> int option
(** IEEE comparison; [None] when unordered (either operand NaN). *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x0000002a]. *)
