(** Assembler for the PTX-lite textual syntax produced by {!Printer}.

    The accepted grammar (one instruction per line):
    {v
    .kernel NAME          directives; .params and .shared are optional
    .params N
    .shared BYTES
    label:                labels may share a line with nothing else
      mov.u32 %r0, %tid.x;
      setp.lt.s32 %p0, %r0, 42;
    @%p0 bra label;       guards: @%pN or @!%pN
      ld.global.u32 %r1, [%r2+4];
      st.shared.u32 [%r3], %r1;
      exit;
    v}
    Comments start with [//] or [#]. Integer immediates may be decimal
    (optionally negative) or [0x] hexadecimal; float immediates use a
    trailing [f] (e.g. [1.5f]) or the PTX bit-pattern form [0f3F800000].
    Trailing semicolons are optional. Type suffixes are checked loosely:
    e.g. [add.s32] and [add.u32] denote the same wrapping addition. *)

exception Parse_error of int * string
(** [(line, message)]; lines are 1-based. *)

val parse_kernel : string -> Kernel.t
(** @raise Parse_error on malformed input. *)

val parse_instr : resolve:(string -> int) -> string -> Instr.t
(** Parse a single instruction line; [resolve] maps label names to
    instruction indices.

    @raise Parse_error on malformed input (line number 0). *)
