open Instr

type hint = int

let hint_bits = 2

type error =
  | Too_many_immediates
  | Offset_out_of_range of int
  | Register_out_of_range of int
  | Predicate_out_of_range of int
  | Target_out_of_range of int

let error_to_string = function
  | Too_many_immediates -> "more than one wide immediate operand"
  | Offset_out_of_range n -> Printf.sprintf "offset %d out of range" n
  | Register_out_of_range n -> Printf.sprintf "register %d out of range" n
  | Predicate_out_of_range n -> Printf.sprintf "predicate %d out of range" n
  | Target_out_of_range n -> Printf.sprintf "branch target %d out of range" n

(* Field layout, LSB first:
   hint:2 | opcode:6 | gvalid:1 | gsense:1 | gpred:3 | dst:8 | mod:6 |
   slotA:12 | slotB:12 | slotC:12                      (= 63 bits)
   A slot is tag:2 | payload:10. mov_wide instead uses bits [63:32] as a
   full 32-bit immediate. *)

let small_imm_max = 1023

let max_target = 1023

(* opcode numbers *)
let binop_code = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Mulhi -> 3 | Div_s -> 4 | Div_u -> 5
  | Rem_s -> 6 | Rem_u -> 7 | Min_s -> 8 | Max_s -> 9 | Min_u -> 10
  | Max_u -> 11 | And -> 12 | Or -> 13 | Xor -> 14 | Shl -> 15 | Shr_u -> 16
  | Shr_s -> 17 | Fadd -> 18 | Fsub -> 19 | Fmul -> 20 | Fdiv -> 21
  | Fmin -> 22 | Fmax -> 23
  [@@ocamlformat "disable"]

let binop_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Mulhi | 4 -> Div_s | 5 -> Div_u
  | 6 -> Rem_s | 7 -> Rem_u | 8 -> Min_s | 9 -> Max_s | 10 -> Min_u
  | 11 -> Max_u | 12 -> And | 13 -> Or | 14 -> Xor | 15 -> Shl | 16 -> Shr_u
  | 17 -> Shr_s | 18 -> Fadd | 19 -> Fsub | 20 -> Fmul | 21 -> Fdiv
  | 22 -> Fmin | _ -> Fmax
  [@@ocamlformat "disable"]

let unop_code = function
  | Mov -> 0 | Not -> 1 | Neg -> 2 | Abs_s -> 3 | Fneg -> 4 | Fabs -> 5
  | Fsqrt -> 6 | Frcp -> 7 | Fexp2 -> 8 | Flog2 -> 9 | Fsin -> 10
  | Fcos -> 11 | Cvt_i2f -> 12 | Cvt_u2f -> 13 | Cvt_f2i -> 14
  [@@ocamlformat "disable"]

let unop_of_code = function
  | 0 -> Mov | 1 -> Not | 2 -> Neg | 3 -> Abs_s | 4 -> Fneg | 5 -> Fabs
  | 6 -> Fsqrt | 7 -> Frcp | 8 -> Fexp2 | 9 -> Flog2 | 10 -> Fsin
  | 11 -> Fcos | 12 -> Cvt_i2f | 13 -> Cvt_u2f | _ -> Cvt_f2i
  [@@ocamlformat "disable"]

let op_bin = 0 (* 0..23 *)

let op_un = 24 (* 24..38 *)

let op_mad = 39

let op_fma = 40

let op_setp = 41

let op_selp = 42

let op_ld_global = 43

let op_ld_shared = 44

let op_st_global = 45

let op_st_shared = 46

let op_atom = 47 (* 47..51 *)

let op_bra = 52

let op_bar = 53

let op_exit = 54

let op_mov_wide = 55

let atom_code = function
  | Atom_add -> 0
  | Atom_max -> 1
  | Atom_min -> 2
  | Atom_exch -> 3
  | Atom_cas -> 4

let atom_of_code = function
  | 0 -> Atom_add
  | 1 -> Atom_max
  | 2 -> Atom_min
  | 3 -> Atom_exch
  | _ -> Atom_cas

let cmp_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let cmp_of_code = function
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Le
  | 4 -> Gt
  | _ -> Ge

let kind_code = function Scmp -> 0 | Ucmp -> 1 | Fcmp -> 2

let kind_of_code = function 0 -> Scmp | 1 -> Ucmp | _ -> Fcmp

let sreg_payload s =
  let kind, axis =
    match s with
    | Tid a -> (0, a)
    | Ntid a -> (1, a)
    | Ctaid a -> (2, a)
    | Nctaid a -> (3, a)
  in
  let ax = match axis with X -> 0 | Y -> 1 | Z -> 2 in
  (kind * 3) + ax

let sreg_of_payload p =
  let ax = match p mod 3 with 0 -> X | 1 -> Y | _ -> Z in
  match p / 3 with 0 -> Tid ax | 1 -> Ntid ax | 2 -> Ctaid ax | _ -> Nctaid ax

let ( let* ) = Result.bind

let check_reg r =
  if r < 0 || r > 255 then Error (Register_out_of_range r) else Ok r

let check_pred p =
  if p < 0 || p > 7 then Error (Predicate_out_of_range p) else Ok p

let slot_of_operand = function
  | Reg r ->
    let* r = check_reg r in
    Ok ((0 lsl 10) lor r)
  | Sreg s -> Ok ((1 lsl 10) lor sreg_payload s)
  | Param i ->
    if i < 0 || i > 255 then Error (Register_out_of_range i)
    else Ok ((2 lsl 10) lor i)
  | Imm v ->
    if v >= 0 && v <= small_imm_max then Ok ((3 lsl 10) lor v)
    else Error Too_many_immediates

let operand_of_slot slot =
  let tag = (slot lsr 10) land 3 and payload = slot land 0x3FF in
  match tag with
  | 0 -> Reg payload
  | 1 -> Sreg (sreg_of_payload payload)
  | 2 -> Param payload
  | _ -> Imm payload

let pack ~hint ~opcode ~guard ~dst ~md ~a ~b ~c =
  let g =
    match guard with
    | None -> 0
    | Some (sense, p) -> 1 lor ((if sense then 1 else 0) lsl 1) lor (p lsl 2)
  in
  let open Int64 in
  logor (of_int (hint land 3))
    (logor
       (shift_left (of_int (opcode land 63)) 2)
       (logor
          (shift_left (of_int (g land 31)) 8)
          (logor
             (shift_left (of_int (dst land 255)) 13)
             (logor
                (shift_left (of_int (md land 63)) 21)
                (logor
                   (shift_left (of_int (a land 4095)) 27)
                   (logor
                      (shift_left (of_int (b land 4095)) 39)
                      (shift_left (of_int (c land 4095)) 51)))))))

let field w lo width =
  Int64.to_int (Int64.logand (Int64.shift_right_logical w lo) (Int64.of_int ((1 lsl width) - 1)))

let encode ?(hint = 0) (t : Instr.t) =
  let* () =
    match t.guard with
    | Some (_, p) -> Result.map (fun _ -> ()) (check_pred p)
    | None -> Ok ()
  in
  let pack = pack ~hint ~guard:t.guard in
  let zero = (0 lsl 10) lor 0 in
  match t.body with
  | Un (Mov, d, Imm v) when v > small_imm_max ->
    (* wide-immediate move: the 32-bit constant occupies bits [63:32] *)
    let* d = check_reg d in
    let base = pack ~opcode:op_mov_wide ~dst:d ~md:0 ~a:0 ~b:0 ~c:0 in
    let low = Int64.logand base 0xFFFFFFFFL in
    Ok (Int64.logor low (Int64.shift_left (Int64.of_int v) 32))
  | Bin (op, d, a, b) ->
    let* d = check_reg d in
    let* sa = slot_of_operand a in
    let* sb = slot_of_operand b in
    Ok (pack ~opcode:(op_bin + binop_code op) ~dst:d ~md:0 ~a:sa ~b:sb ~c:zero)
  | Un (op, d, a) ->
    let* d = check_reg d in
    let* sa = slot_of_operand a in
    Ok (pack ~opcode:(op_un + unop_code op) ~dst:d ~md:0 ~a:sa ~b:zero ~c:zero)
  | Tern (op, d, a, b, c) ->
    let* d = check_reg d in
    let* sa = slot_of_operand a in
    let* sb = slot_of_operand b in
    let* sc = slot_of_operand c in
    Ok
      (pack
         ~opcode:(match op with Mad -> op_mad | Fma -> op_fma)
         ~dst:d ~md:0 ~a:sa ~b:sb ~c:sc)
  | Setp (kind, cmp, p, a, b) ->
    let* p = check_pred p in
    let* sa = slot_of_operand a in
    let* sb = slot_of_operand b in
    Ok
      (pack ~opcode:op_setp ~dst:p
         ~md:(cmp_code cmp lor (kind_code kind lsl 3))
         ~a:sa ~b:sb ~c:zero)
  | Selp (d, a, b, p) ->
    let* d = check_reg d in
    let* p = check_pred p in
    let* sa = slot_of_operand a in
    let* sb = slot_of_operand b in
    Ok (pack ~opcode:op_selp ~dst:d ~md:p ~a:sa ~b:sb ~c:zero)
  | Ld (space, d, base, off) ->
    let* d = check_reg d in
    let* sb = slot_of_operand base in
    if off < 0 || off > small_imm_max then Error (Offset_out_of_range off)
    else
      Ok
        (pack
           ~opcode:(match space with Global -> op_ld_global | Shared -> op_ld_shared)
           ~dst:d ~md:0 ~a:sb ~b:((3 lsl 10) lor off) ~c:zero)
  | St (space, base, off, v) ->
    let* sb = slot_of_operand base in
    let* sv = slot_of_operand v in
    if off < 0 || off > small_imm_max then Error (Offset_out_of_range off)
    else
      Ok
        (pack
           ~opcode:(match space with Global -> op_st_global | Shared -> op_st_shared)
           ~dst:0 ~md:0 ~a:sb ~b:((3 lsl 10) lor off) ~c:sv)
  | Atom (op, d, addr, v) ->
    let* d = check_reg d in
    let* sa = slot_of_operand addr in
    let* sv = slot_of_operand v in
    Ok (pack ~opcode:(op_atom + atom_code op) ~dst:d ~md:0 ~a:sa ~b:sv ~c:zero)
  | Bra target ->
    if target < 0 || target > max_target then Error (Target_out_of_range target)
    else Ok (pack ~opcode:op_bra ~dst:0 ~md:0 ~a:target ~b:zero ~c:zero)
  | Bar -> Ok (pack ~opcode:op_bar ~dst:0 ~md:0 ~a:zero ~b:zero ~c:zero)
  | Exit -> Ok (pack ~opcode:op_exit ~dst:0 ~md:0 ~a:zero ~b:zero ~c:zero)

let encodable t = Result.is_ok (encode t)

let decode w =
  let hint = field w 0 2 in
  let opcode = field w 2 6 in
  let g = field w 8 5 in
  let guard =
    if g land 1 = 0 then None else Some (g land 2 <> 0, (g lsr 2) land 7)
  in
  let dst = field w 13 8 in
  let md = field w 21 6 in
  let a = field w 27 12 and b = field w 39 12 and c = field w 51 12 in
  let oa () = operand_of_slot a and ob () = operand_of_slot b in
  let oc () = operand_of_slot c in
  let body =
    if opcode >= op_bin && opcode < op_bin + 24 then
      Ok (Bin (binop_of_code (opcode - op_bin), dst, oa (), ob ()))
    else if opcode >= op_un && opcode < op_un + 15 then
      Ok (Un (unop_of_code (opcode - op_un), dst, oa ()))
    else if opcode = op_mad then Ok (Tern (Mad, dst, oa (), ob (), oc ()))
    else if opcode = op_fma then Ok (Tern (Fma, dst, oa (), ob (), oc ()))
    else if opcode = op_setp then
      Ok
        (Setp (kind_of_code ((md lsr 3) land 3), cmp_of_code (md land 7), dst, oa (), ob ()))
    else if opcode = op_selp then Ok (Selp (dst, oa (), ob (), md))
    else if opcode = op_ld_global || opcode = op_ld_shared then
      let space = if opcode = op_ld_global then Global else Shared in
      Ok (Ld (space, dst, oa (), b land 0x3FF))
    else if opcode = op_st_global || opcode = op_st_shared then
      let space = if opcode = op_st_global then Global else Shared in
      Ok (St (space, oa (), b land 0x3FF, oc ()))
    else if opcode >= op_atom && opcode < op_atom + 5 then
      Ok (Atom (atom_of_code (opcode - op_atom), dst, oa (), ob ()))
    else if opcode = op_bra then Ok (Bra a)
    else if opcode = op_bar then Ok Bar
    else if opcode = op_exit then Ok Exit
    else if opcode = op_mov_wide then
      Ok (Un (Mov, dst, Imm (Int64.to_int (Int64.shift_right_logical w 32))))
    else Error (Printf.sprintf "unknown opcode %d" opcode)
  in
  Result.map (fun body -> ({ body; guard }, hint)) body

(* ------------------------------------------------------------------ *)
(* Legalization                                                        *)
(* ------------------------------------------------------------------ *)

let legalize (k : Kernel.t) =
  let scratch_base = k.Kernel.nregs in
  (* First pass: rewrite instructions, remembering how many encoded
     instructions each original one expands into. *)
  let expansions =
    Array.map
      (fun (inst : Instr.t) ->
        if encodable inst then [ inst ]
        else begin
          (* materialize wide immediates (and fold wide offsets) into
             three rotating scratch registers via wide moves *)
          let pre = ref [] in
          let next_scratch = ref 0 in
          let take_scratch () =
            let s = scratch_base + min !next_scratch 2 in
            incr next_scratch;
            s
          in
          let fix_op op =
            match op with
            | Imm v when v > small_imm_max ->
              let s = take_scratch () in
              pre := Instr.mk ?guard:inst.Instr.guard (Un (Mov, s, Imm v)) :: !pre;
              Reg s
            | _ -> op
          in
          let fix_mem base off =
            if off >= 0 && off <= small_imm_max then (fix_op base, off)
            else begin
              let base = fix_op base in
              let s = take_scratch () in
              pre :=
                Instr.mk ?guard:inst.Instr.guard (Un (Mov, s, Imm (Value.of_signed off)))
                :: !pre;
              let s2 = take_scratch () in
              pre :=
                Instr.mk ?guard:inst.Instr.guard (Bin (Add, s2, Reg s, base)) :: !pre;
              (Reg s2, 0)
            end
          in
          let body =
            match inst.Instr.body with
            | Bin (op, d, a, b) -> Bin (op, d, fix_op a, fix_op b)
            | Un (op, d, a) -> Un (op, d, fix_op a)
            | Tern (op, d, a, b, c) -> Tern (op, d, fix_op a, fix_op b, fix_op c)
            | Setp (kind, cmp, p, a, b) -> Setp (kind, cmp, p, fix_op a, fix_op b)
            | Selp (d, a, b, p) -> Selp (d, fix_op a, fix_op b, p)
            | Ld (space, d, base, off) ->
              let base, off = fix_mem base off in
              Ld (space, d, base, off)
            | St (space, base, off, v) ->
              let v = fix_op v in
              let base, off = fix_mem base off in
              St (space, base, off, v)
            | Atom (op, d, addr, v) -> Atom (op, d, fix_op addr, fix_op v)
            | (Bra _ | Bar | Exit) as b -> b
          in
          List.rev (Instr.mk ?guard:inst.Instr.guard body :: !pre)
        end)
      k.Kernel.insts
  in
  (* Second pass: remap branch targets to the new indices. *)
  let n = Array.length expansions in
  let new_index = Array.make (n + 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i group ->
      new_index.(i) <- !total;
      total := !total + List.length group)
    expansions;
  new_index.(n) <- !total;
  let out =
    Array.concat
      (Array.to_list
         (Array.map
            (fun group ->
              Array.of_list
                (List.map
                   (fun (inst : Instr.t) ->
                     match inst.Instr.body with
                     | Bra t -> { inst with Instr.body = Bra new_index.(t) }
                     | _ -> inst)
                   group))
            expansions))
  in
  Kernel.make ~name:k.Kernel.name ~npregs:k.Kernel.npregs
    ~nparams:k.Kernel.nparams ~shared_bytes:k.Kernel.shared_bytes out

let encode_kernel ?hints (k : Kernel.t) =
  let n = Array.length k.Kernel.insts in
  let hints = match hints with Some h -> h | None -> Array.make n 0 in
  let out = Array.make n 0L in
  let rec go i =
    if i >= n then Ok out
    else
      match encode ~hint:hints.(i) k.Kernel.insts.(i) with
      | Ok w ->
        out.(i) <- w;
        go (i + 1)
      | Error e -> Error (i, e)
  in
  go 0

let image_bytes k = Instr.width_bytes * Array.length k.Kernel.insts
