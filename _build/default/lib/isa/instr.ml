type axis = X | Y | Z

type sreg = Tid of axis | Ntid of axis | Ctaid of axis | Nctaid of axis

type operand = Reg of int | Imm of Value.t | Sreg of sreg | Param of int

type binop =
  | Add
  | Sub
  | Mul
  | Mulhi
  | Div_s
  | Div_u
  | Rem_s
  | Rem_u
  | Min_s
  | Max_s
  | Min_u
  | Max_u
  | And
  | Or
  | Xor
  | Shl
  | Shr_u
  | Shr_s
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmin
  | Fmax

type unop =
  | Mov
  | Not
  | Neg
  | Abs_s
  | Fneg
  | Fabs
  | Fsqrt
  | Frcp
  | Fexp2
  | Flog2
  | Fsin
  | Fcos
  | Cvt_i2f
  | Cvt_u2f
  | Cvt_f2i

type ternop = Mad | Fma

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cmp_kind = Scmp | Ucmp | Fcmp

type space = Global | Shared

type atom_op = Atom_add | Atom_max | Atom_min | Atom_exch | Atom_cas

type body =
  | Bin of binop * int * operand * operand
  | Un of unop * int * operand
  | Tern of ternop * int * operand * operand * operand
  | Setp of cmp_kind * cmp * int * operand * operand
  | Selp of int * operand * operand * int
  | Ld of space * int * operand * int
  | St of space * operand * int * operand
  | Atom of atom_op * int * operand * operand
  | Bra of int
  | Bar
  | Exit

type t = { body : body; guard : (bool * int) option }

let mk ?guard body = { body; guard }

let width_bytes = 8

let dst_reg t =
  match t.body with
  | Bin (_, d, _, _) | Un (_, d, _) | Tern (_, d, _, _, _)
  | Selp (d, _, _, _) | Ld (_, d, _, _) | Atom (_, d, _, _) ->
    Some d
  | Setp _ | St _ | Bra _ | Bar | Exit -> None

let dst_pred t =
  match t.body with Setp (_, _, p, _, _) -> Some p | _ -> None

let operands t =
  match t.body with
  | Bin (_, _, a, b) -> [ a; b ]
  | Un (_, _, a) -> [ a ]
  | Tern (_, _, a, b, c) -> [ a; b; c ]
  | Setp (_, _, _, a, b) -> [ a; b ]
  | Selp (_, a, b, _) -> [ a; b ]
  | Ld (_, _, a, _) -> [ a ]
  | St (_, a, _, v) -> [ a; v ]
  | Atom (op, d, a, v) ->
    (* CAS additionally reads the destination register as the compare
       value. *)
    if op = Atom_cas then [ a; v; Reg d ] else [ a; v ]
  | Bra _ | Bar | Exit -> []

let src_regs t =
  let regs =
    List.filter_map (function Reg r -> Some r | _ -> None) (operands t)
  in
  List.rev (List.fold_left (fun acc r -> if List.mem r acc then acc else r :: acc) [] regs)

let src_preds t =
  let guard = match t.guard with Some (_, p) -> [ p ] | None -> [] in
  match t.body with Selp (_, _, _, p) -> guard @ [ p ] | _ -> guard

let is_load t = match t.body with Ld _ -> true | _ -> false

let is_store t = match t.body with St _ -> true | _ -> false

let is_atomic t = match t.body with Atom _ -> true | _ -> false

let is_branch t = match t.body with Bra _ -> true | _ -> false

let is_barrier t = match t.body with Bar -> true | _ -> false

let is_exit t = match t.body with Exit -> true | _ -> false

let is_float_op t =
  match t.body with
  | Bin ((Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax), _, _, _) -> true
  | Un ((Fneg | Fabs | Fsqrt | Frcp | Fexp2 | Flog2 | Fsin | Fcos
        | Cvt_i2f | Cvt_u2f | Cvt_f2i), _, _) ->
    true
  | Tern (Fma, _, _, _, _) -> true
  | Setp (Fcmp, _, _, _, _) -> true
  | Bin _ | Un _ | Tern _ | Setp _ | Selp _ | Ld _ | St _ | Atom _ | Bra _
  | Bar | Exit ->
    false

let is_sfu t =
  match t.body with
  | Bin ((Div_s | Div_u | Rem_s | Rem_u | Fdiv), _, _, _) -> true
  | Un ((Fsqrt | Frcp | Fexp2 | Flog2 | Fsin | Fcos), _, _) -> true
  | Bin _ | Un _ | Tern _ | Setp _ | Selp _ | Ld _ | St _ | Atom _ | Bra _
  | Bar | Exit ->
    false

let has_side_effect t =
  match t.body with St _ | Atom _ | Bar | Exit -> true | _ -> false

let branch_target t = match t.body with Bra target -> Some target | _ -> None
