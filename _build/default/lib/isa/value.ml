type t = int

let mask = 0xFFFFFFFF

let truncate x = x land mask

let zero = 0

let of_int32 x = Int32.to_int x land mask

let to_int32 x = Int32.of_int x

let to_signed x = if x land 0x80000000 <> 0 then x - 0x100000000 else x

let of_signed x = x land mask

let round_f32 f = Int32.float_of_bits (Int32.bits_of_float f)

let of_float f = of_int32 (Int32.bits_of_float f)

let to_float x = Int32.float_of_bits (to_int32 x)

let add a b = (a + b) land mask

let sub a b = (a - b) land mask

let mul a b =
  (* Split to avoid overflow of the native 63-bit product on 32x32 inputs:
     native ints hold 62-bit magnitudes, and 32x32 products fit in 64 bits
     only; compute the low 32 bits via 16-bit limbs. *)
  let alo = a land 0xFFFF and ahi = a lsr 16 in
  let blo = b land 0xFFFF and bhi = b lsr 16 in
  let lo = alo * blo in
  let mid = ((alo * bhi) + (ahi * blo)) land 0xFFFF in
  (lo + (mid lsl 16)) land mask

let mulhi_s a b =
  let p = Int64.mul (Int64.of_int (to_signed a)) (Int64.of_int (to_signed b)) in
  Int64.to_int (Int64.shift_right p 32) land mask

let div_s a b =
  if b = 0 then mask
  else
    let sa = to_signed a and sb = to_signed b in
    (* OCaml's (/) truncates toward zero, matching C/PTX semantics. *)
    of_signed (sa / sb)

let div_u a b = if b = 0 then mask else a / b

let rem_s a b =
  if b = 0 then a else of_signed (to_signed a mod to_signed b)

let rem_u a b = if b = 0 then a else a mod b

let neg a = (0 - a) land mask

let min_s a b = if to_signed a <= to_signed b then a else b

let max_s a b = if to_signed a >= to_signed b then a else b

let min_u a b = if a <= b then a else b

let max_u a b = if a >= b then a else b

let abs_s a = if to_signed a < 0 then neg a else a

let logand a b = a land b

let logor a b = a lor b

let logxor a b = a lxor b

let lognot a = lnot a land mask

let shl a b = if b land mask >= 32 then 0 else (a lsl b) land mask

let shr_u a b = if b land mask >= 32 then 0 else a lsr b

let shr_s a b =
  let s = to_signed a in
  if b land mask >= 32 then of_signed (s asr 62) else of_signed (s asr b)

let f2 op a b = of_float (round_f32 (op (to_float a) (to_float b)))

let f1 op a = of_float (round_f32 (op (to_float a)))

let fadd = f2 ( +. )

let fsub = f2 ( -. )

let fmul = f2 ( *. )

let fdiv = f2 ( /. )

let ffma a b c =
  of_float (round_f32 ((to_float a *. to_float b) +. to_float c))

let fmin a b =
  let x = to_float a and y = to_float b in
  if Float.is_nan x then b else if Float.is_nan y then a else if x <= y then a else b

let fmax a b =
  let x = to_float a and y = to_float b in
  if Float.is_nan x then b else if Float.is_nan y then a else if x >= y then a else b

let fneg a = a lxor 0x80000000

let fabs a = a land 0x7FFFFFFF

let fsqrt = f1 sqrt

let frcp = f1 (fun x -> 1.0 /. x)

let fexp2 = f1 (fun x -> Float.exp2 x)

let flog2 = f1 (fun x -> Float.log2 x)

let fsin = f1 sin

let fcos = f1 cos

let cvt_i2f a = of_float (round_f32 (float_of_int (to_signed a)))

let cvt_u2f a = of_float (round_f32 (float_of_int a))

let cvt_f2i a =
  let f = to_float a in
  if Float.is_nan f then 0
  else if f >= 2147483647.0 then 0x7FFFFFFF
  else if f <= -2147483648.0 then 0x80000000
  else of_signed (int_of_float (Float.trunc f))

let cmp_s a b = compare (to_signed a) (to_signed b)

let cmp_u a b = compare a b

let cmp_f a b =
  let x = to_float a and y = to_float b in
  if Float.is_nan x || Float.is_nan y then None else Some (compare x y)

let pp fmt x = Format.fprintf fmt "0x%08x" x
