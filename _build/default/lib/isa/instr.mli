(** The PTX-lite virtual instruction set.

    This is a register-allocated, PTX-like SIMT ISA modeled on the PTXPlus
    representation the paper runs on (GPGPU-Sim's register-allocated PTX).
    All instructions are notionally 64 bits long, so a thread's program
    counter is [8 * index] and skipping an instruction is a [PC += 8] — the
    property DARSIE's fetch-stage skipper relies on (§4 of the paper). *)

(** Thread-geometry axis. *)
type axis = X | Y | Z

(** Special (intrinsic) read-only registers. *)
type sreg =
  | Tid of axis  (** thread index within the threadblock *)
  | Ntid of axis  (** threadblock dimensions *)
  | Ctaid of axis  (** threadblock index within the grid *)
  | Nctaid of axis  (** grid dimensions *)

(** Source operands. [Reg] is a general-purpose vector register (one 32-bit
    word per lane), [Imm] an immediate encoded as a 32-bit word (float
    immediates use their IEEE-754 bit pattern), [Sreg] an intrinsic register
    and [Param] the i-th 32-bit kernel launch parameter. *)
type operand = Reg of int | Imm of Value.t | Sreg of sreg | Param of int

(** Two-source integer and floating-point operations. *)
type binop =
  | Add
  | Sub
  | Mul
  | Mulhi
  | Div_s
  | Div_u
  | Rem_s
  | Rem_u
  | Min_s
  | Max_s
  | Min_u
  | Max_u
  | And
  | Or
  | Xor
  | Shl
  | Shr_u
  | Shr_s
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmin
  | Fmax

(** One-source operations. *)
type unop =
  | Mov
  | Not
  | Neg
  | Abs_s
  | Fneg
  | Fabs
  | Fsqrt
  | Frcp
  | Fexp2
  | Flog2
  | Fsin
  | Fcos
  | Cvt_i2f
  | Cvt_u2f
  | Cvt_f2i

(** Three-source operations. [Mad]/[Fma] compute [a*b + c]. *)
type ternop = Mad | Fma

(** Comparison predicates for [Setp]. *)
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Whether a comparison is over signed ints, unsigned ints or floats.
    Float comparisons are ordered: unordered operands compare false. *)
type cmp_kind = Scmp | Ucmp | Fcmp

(** Memory state spaces. [Param] values are operands, not a space: the only
    addressable spaces are global and per-threadblock shared memory. *)
type space = Global | Shared

(** Atomic read-modify-write operations on global memory. *)
type atom_op = Atom_add | Atom_max | Atom_min | Atom_exch | Atom_cas

(** Instruction bodies. Branch targets are instruction indices into the
    enclosing kernel (multiply by 8 for a byte PC). *)
type body =
  | Bin of binop * int * operand * operand  (** [Bin (op, dst, a, b)] *)
  | Un of unop * int * operand
  | Tern of ternop * int * operand * operand * operand
  | Setp of cmp_kind * cmp * int * operand * operand
      (** [Setp (kind, cmp, pdst, a, b)] writes predicate register [pdst]. *)
  | Selp of int * operand * operand * int
      (** [Selp (dst, a, b, p)] selects [a] where predicate [p] holds. *)
  | Ld of space * int * operand * int
      (** [Ld (space, dst, base, offset)] loads the 32-bit word at
          [base + offset]. *)
  | St of space * operand * int * operand
      (** [St (space, base, offset, value)]. *)
  | Atom of atom_op * int * operand * operand
      (** [Atom (op, dst, addr, value)] on global memory; [dst] receives the
          old value. For [Atom_cas] the compare value is the current [dst]
          register content. *)
  | Bra of int  (** unconditional or guarded branch to instruction index *)
  | Bar  (** threadblock-wide barrier (__syncthreads) *)
  | Exit  (** thread termination *)

type t = {
  body : body;
  guard : (bool * int) option;
      (** [Some (sense, p)] executes the instruction only in lanes where
          predicate [p] equals [sense]. *)
}

val mk : ?guard:bool * int -> body -> t

val width_bytes : int
(** Encoded size of every instruction: 8 bytes. *)

val dst_reg : t -> int option
(** Destination vector register, if the instruction writes one. *)

val dst_pred : t -> int option

val src_regs : t -> int list
(** Source vector registers read, including [Selp]/[Atom_cas] extra reads
    (deduplicated, in operand order). *)

val src_preds : t -> int list
(** Source predicate registers, including the guard. *)

val operands : t -> operand list
(** All source operands in order (registers, immediates, sregs, params). *)

val is_load : t -> bool

val is_store : t -> bool

val is_atomic : t -> bool

val is_branch : t -> bool

val is_barrier : t -> bool

val is_exit : t -> bool

val is_float_op : t -> bool
(** True for instructions executed on floating-point pipelines. *)

val is_sfu : t -> bool
(** True for transcendental/division ops that use the special-function
    unit. *)

val has_side_effect : t -> bool
(** Stores, atomics, barriers and exits: instructions DARSIE must never
    skip regardless of operand redundancy. *)

val branch_target : t -> int option
