(** Kernel programs and launch geometry. *)

type dim3 = { x : int; y : int; z : int }

val dim3 : ?y:int -> ?z:int -> int -> dim3
(** [dim3 x ~y ~z] with [y] and [z] defaulting to 1. *)

val dim3_count : dim3 -> int
(** Total element count [x * y * z]. *)

type t = {
  name : string;
  insts : Instr.t array;
  nregs : int;  (** number of vector registers used (R0..nregs-1) *)
  npregs : int;  (** number of predicate registers *)
  nparams : int;  (** number of 32-bit launch parameters *)
  shared_bytes : int;  (** per-threadblock shared memory footprint *)
}

val make :
  name:string ->
  ?npregs:int ->
  ?nparams:int ->
  ?shared_bytes:int ->
  Instr.t array ->
  t
(** Build a kernel, inferring [nregs] and (at least) [npregs] from the
    instruction stream and validating that every branch target is a valid
    instruction index.

    @raise Invalid_argument on out-of-range branch targets or an empty
    instruction stream. *)

val pc_of_index : int -> int
(** Byte program counter of an instruction index ([8 * index]). *)

val index_of_pc : int -> int

(** A kernel launch: grid and threadblock dimensions plus parameter
    values. Mirrors a CUDA [<<<grid, block>>>] launch. *)
type launch = {
  kernel : t;
  grid_dim : dim3;
  block_dim : dim3;
  params : Value.t array;
}

val launch :
  t -> grid:dim3 -> block:dim3 -> params:Value.t array -> launch
(** @raise Invalid_argument if the parameter count does not match
    [kernel.nparams], a dimension is non-positive, or the threadblock
    exceeds 1024 threads. *)

val threads_per_block : launch -> int

val warps_per_block : launch -> warp_size:int -> int
(** Number of warps per threadblock, rounding up. *)

val num_blocks : launch -> int

val thread_of_lane :
  launch -> warp_size:int -> warp:int -> lane:int -> (int * int * int) option
(** [(tid.x, tid.y, tid.z)] of the given lane of the warp-th warp of a
    threadblock, or [None] if the linear thread id falls outside the block
    (partial last warp). Threads are linearized x-first, then y, then z —
    the CUDA layout that creates the dimensionality redundancy the paper
    studies (§2). *)

val block_of_index : launch -> int -> int * int * int
(** [(ctaid.x, ctaid.y, ctaid.z)] of the linear block index, x-first. *)

val is_multidimensional : launch -> bool
(** True when [block_dim.y > 1] or [block_dim.z > 1]. *)

val xdim_condition : launch -> warp_size:int -> bool
(** The paper's §4.2 launch-time promotion test: the threadblock is
    multi-dimensional, and its x dimension is a power of two that is at
    most the warp size. When true, conditionally redundant instructions
    become definitely redundant. *)

val xydim_condition : launch -> warp_size:int -> bool
(** The 3D extension of the promotion test (paper §2): the threadblock is
    three-dimensional and [xdim * ydim] is a power of two no larger than
    the warp size, so warps cover whole xy-planes and the [tid.y] pattern
    repeats per warp. *)
