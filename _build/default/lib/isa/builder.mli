(** Programmatic kernel construction.

    A mutable builder with fresh-register allocation and forward-referencing
    labels; the workload kernels (lib/workloads) are written against this
    interface. Example:
    {[
      let b = Builder.create ~name:"saxpy" ~nparams:3 () in
      let open Builder.O in
      let i = Builder.reg b in
      Builder.mad b i (sreg ctaid_x) (sreg ntid_x) (sreg tid_x);
      ...
      Builder.exit_ b;
      let kernel = Builder.finish b
    ]} *)

type t

type label

val create : name:string -> ?nparams:int -> ?shared_bytes:int -> unit -> t

val reg : t -> int
(** Allocate a fresh vector register. *)

val regs : t -> int -> int list
(** Allocate [n] fresh vector registers. *)

val pred : t -> int
(** Allocate a fresh predicate register. *)

val fresh_label : t -> label

val place : t -> label -> unit
(** Bind a label to the next emitted instruction.

    @raise Invalid_argument if the label was already placed. *)

val here : t -> label
(** [fresh_label] + [place] in one step (for backward branches). *)

val emit : t -> ?guard:bool * int -> Instr.body -> unit

val finish : t -> Kernel.t
(** Resolve all branch targets and produce the kernel.

    @raise Invalid_argument if a referenced label was never placed. *)

(** {1 Instruction sugar} *)

val bin : t -> Instr.binop -> int -> Instr.operand -> Instr.operand -> unit

val un : t -> Instr.unop -> int -> Instr.operand -> unit

val mov : t -> int -> Instr.operand -> unit

val add : t -> int -> Instr.operand -> Instr.operand -> unit

val sub : t -> int -> Instr.operand -> Instr.operand -> unit

val mul : t -> int -> Instr.operand -> Instr.operand -> unit

val shl : t -> int -> Instr.operand -> Instr.operand -> unit

val mad : t -> int -> Instr.operand -> Instr.operand -> Instr.operand -> unit
(** Integer multiply-add [dst = a*b + c]. *)

val fma : t -> int -> Instr.operand -> Instr.operand -> Instr.operand -> unit

val fadd : t -> int -> Instr.operand -> Instr.operand -> unit

val fsub : t -> int -> Instr.operand -> Instr.operand -> unit

val fmul : t -> int -> Instr.operand -> Instr.operand -> unit

val setp :
  t -> Instr.cmp_kind -> Instr.cmp -> int -> Instr.operand -> Instr.operand
  -> unit

val selp : t -> int -> Instr.operand -> Instr.operand -> int -> unit

val ld : t -> Instr.space -> int -> Instr.operand -> ?off:int -> unit -> unit

val st :
  t -> Instr.space -> Instr.operand -> ?off:int -> Instr.operand -> unit

val atom : t -> Instr.atom_op -> int -> Instr.operand -> Instr.operand -> unit

val bra : t -> ?guard:bool * int -> label -> unit

val bar : t -> unit

val exit_ : t -> unit

(** Operand constructors. *)
module O : sig
  val r : int -> Instr.operand

  val i : int -> Instr.operand
  (** Signed integer immediate. *)

  val f : float -> Instr.operand
  (** Float immediate (IEEE-754 single bits). *)

  val p : int -> Instr.operand
  (** Kernel parameter. *)

  val tid_x : Instr.operand

  val tid_y : Instr.operand

  val tid_z : Instr.operand

  val ntid_x : Instr.operand

  val ntid_y : Instr.operand

  val ntid_z : Instr.operand

  val tid_all : Instr.axis -> Instr.operand

  val ctaid_x : Instr.operand

  val ctaid_y : Instr.operand

  val nctaid_x : Instr.operand

  val nctaid_y : Instr.operand
end
