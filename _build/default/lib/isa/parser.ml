open Instr

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let strip_comment s =
  let n = String.length s in
  let rec scan i =
    if i >= n then s
    else if s.[i] = '#' then String.sub s 0 i
    else if i + 1 < n && s.[i] = '/' && s.[i + 1] = '/' then String.sub s 0 i
    else scan (i + 1)
  in
  scan 0

let trim = String.trim

(* Split an operand list on top-level commas; commas never appear inside
   bracketed memory operands in this grammar, so a flat split suffices. *)
let split_operands s =
  if trim s = "" then []
  else String.split_on_char ',' s |> List.map trim

let axis_of_string line = function
  | "x" -> X
  | "y" -> Y
  | "z" -> Z
  | a -> fail line "unknown axis %S" a

let parse_int line s =
  let s = trim s in
  match int_of_string_opt s with
  | Some v -> Value.of_signed v
  | None -> fail line "bad integer literal %S" s

let parse_immediate line s =
  let n = String.length s in
  if n > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    (* Hex literals may end in 'f' — check before float detection. *)
    parse_int line s
  else if n > 2 && s.[0] = '-' && String.length s > 3 && s.[1] = '0'
          && (s.[2] = 'x' || s.[2] = 'X') then parse_int line s
  else if n > 2 && s.[0] = '0' && (s.[1] = 'f' || s.[1] = 'F') then
    (* PTX float bit-pattern form, e.g. 0f3F800000. *)
    match int_of_string_opt ("0x" ^ String.sub s 2 (n - 2)) with
    | Some bits -> Value.truncate bits
    | None -> fail line "bad float bit pattern %S" s
  else if n > 1 && (s.[n - 1] = 'f' || s.[n - 1] = 'F')
          && String.exists (fun c -> c = '.' || c = 'e' || c = 'E')
               (String.sub s 0 (n - 1)) then
    match float_of_string_opt (String.sub s 0 (n - 1)) with
    | Some f -> Value.of_float f
    | None -> fail line "bad float literal %S" s
  else parse_int line s

let parse_operand line s =
  let s = trim s in
  if s = "" then fail line "empty operand"
  else if s.[0] = '%' then begin
    let body = String.sub s 1 (String.length s - 1) in
    let named prefix mk =
      if String.length body > String.length prefix
         && String.sub body 0 (String.length prefix) = prefix then
        let rest =
          String.sub body (String.length prefix)
            (String.length body - String.length prefix)
        in
        Some (mk rest)
      else None
    in
    let sreg_axis prefix mk =
      (* e.g. "tid.x" *)
      named (prefix ^ ".") (fun rest -> Sreg (mk (axis_of_string line rest)))
    in
    let candidates =
      [
        sreg_axis "tid" (fun a -> Tid a);
        sreg_axis "ntid" (fun a -> Ntid a);
        sreg_axis "ctaid" (fun a -> Ctaid a);
        sreg_axis "nctaid" (fun a -> Nctaid a);
        named "param" (fun rest -> Param (Value.to_signed (parse_int line rest)));
        named "r" (fun rest -> Reg (Value.to_signed (parse_int line rest)));
      ]
    in
    match List.find_map (fun c -> c) candidates with
    | Some op -> op
    | None -> fail line "unknown register operand %S" s
  end
  else Imm (parse_immediate line s)

let parse_reg line s =
  match parse_operand line s with
  | Reg r -> r
  | _ -> fail line "expected a vector register, got %S" s

let parse_pred line s =
  let s = trim s in
  let n = String.length s in
  if n >= 3 && s.[0] = '%' && s.[1] = 'p' then
    match int_of_string_opt (String.sub s 2 (n - 2)) with
    | Some p -> p
    | None -> fail line "bad predicate register %S" s
  else fail line "expected a predicate register, got %S" s

(* Memory operand: [base] or [base+offset] (offset may be negative). *)
let parse_mem line s =
  let s = trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail line "expected a [base+offset] memory operand, got %S" s
  else
    let inner = trim (String.sub s 1 (n - 2)) in
    match String.index_opt inner '+' with
    | Some i ->
      let base = parse_operand line (String.sub inner 0 i) in
      let off =
        Value.to_signed
          (parse_int line (String.sub inner (i + 1) (String.length inner - i - 1)))
      in
      (base, off)
    | None ->
      (* A leading '-' after base would be unusual; only support '+'. *)
      (parse_operand line inner, 0)

let cmp_of_string line = function
  | "eq" -> Eq
  | "ne" -> Ne
  | "lt" -> Lt
  | "le" -> Le
  | "gt" -> Gt
  | "ge" -> Ge
  | c -> fail line "unknown comparison %S" c

let cmp_kind_of_string line = function
  | "s32" -> Scmp
  | "u32" | "b32" -> Ucmp
  | "f32" -> Fcmp
  | k -> fail line "unknown comparison type %S" k

let space_of_string line = function
  | "global" -> Global
  | "shared" -> Shared
  | s -> fail line "unknown state space %S" s

let atom_of_string line = function
  | "add" -> Atom_add
  | "max" -> Atom_max
  | "min" -> Atom_min
  | "exch" -> Atom_exch
  | "cas" -> Atom_cas
  | a -> fail line "unknown atomic op %S" a

(* Map a dotted mnemonic to an instruction constructor. Type suffixes that
   do not change semantics (u32 vs s32 for wrapping ops) are accepted
   interchangeably. *)
let parse_body ~resolve line mnemonic operand_text =
  let ops = split_operands operand_text in
  let parts = String.split_on_char '.' mnemonic in
  let op1 o = parse_operand line o in
  let bin op =
    match ops with
    | [ d; a; b ] -> Bin (op, parse_reg line d, op1 a, op1 b)
    | _ -> fail line "%s expects 3 operands" mnemonic
  in
  let un op =
    match ops with
    | [ d; a ] -> Un (op, parse_reg line d, op1 a)
    | _ -> fail line "%s expects 2 operands" mnemonic
  in
  let tern op =
    match ops with
    | [ d; a; b; c ] -> Tern (op, parse_reg line d, op1 a, op1 b, op1 c)
    | _ -> fail line "%s expects 4 operands" mnemonic
  in
  match parts with
  | "add" :: ("u32" | "s32") :: _ | [ "add" ] -> bin Add
  | "sub" :: ("u32" | "s32") :: _ | [ "sub" ] -> bin Sub
  | "mul" :: "lo" :: _ | "mul" :: ("u32" | "s32") :: _ -> bin Mul
  | "mul" :: "hi" :: _ -> bin Mulhi
  | "mul" :: "f32" :: _ -> bin Fmul
  | [ "div"; "s32" ] -> bin Div_s
  | [ "div"; "u32" ] -> bin Div_u
  | [ "div"; "f32" ] -> bin Fdiv
  | [ "rem"; "s32" ] -> bin Rem_s
  | [ "rem"; "u32" ] -> bin Rem_u
  | [ "min"; "s32" ] -> bin Min_s
  | [ "max"; "s32" ] -> bin Max_s
  | [ "min"; "u32" ] -> bin Min_u
  | [ "max"; "u32" ] -> bin Max_u
  | [ "min"; "f32" ] -> bin Fmin
  | [ "max"; "f32" ] -> bin Fmax
  | "and" :: _ -> bin And
  | "or" :: _ -> bin Or
  | "xor" :: _ -> bin Xor
  | "shl" :: _ -> bin Shl
  | [ "shr"; ("u32" | "b32") ] -> bin Shr_u
  | [ "shr"; "s32" ] -> bin Shr_s
  | [ "add"; "f32" ] -> bin Fadd
  | [ "sub"; "f32" ] -> bin Fsub
  | "mov" :: _ -> un Mov
  | "not" :: _ -> un Not
  | [ "neg"; "s32" ] | [ "neg" ] -> un Neg
  | [ "abs"; "s32" ] -> un Abs_s
  | [ "neg"; "f32" ] -> un Fneg
  | [ "abs"; "f32" ] -> un Fabs
  | "sqrt" :: _ -> un Fsqrt
  | "rcp" :: _ -> un Frcp
  | "ex2" :: _ -> un Fexp2
  | "lg2" :: _ -> un Flog2
  | "sin" :: _ -> un Fsin
  | "cos" :: _ -> un Fcos
  | [ "cvt"; "f32"; "s32" ] -> un Cvt_i2f
  | [ "cvt"; "f32"; "u32" ] -> un Cvt_u2f
  | [ "cvt"; "s32"; "f32" ] | [ "cvt"; "u32"; "f32" ] -> un Cvt_f2i
  | "mad" :: "f32" :: _ | "fma" :: _ -> tern Fma
  | "mad" :: _ -> tern Mad
  | [ "setp"; cmp; kind ] -> begin
    match ops with
    | [ p; a; b ] ->
      Setp
        ( cmp_kind_of_string line kind,
          cmp_of_string line cmp,
          parse_pred line p,
          op1 a,
          op1 b )
    | _ -> fail line "setp expects 3 operands"
  end
  | "selp" :: _ -> begin
    match ops with
    | [ d; a; b; p ] ->
      Selp (parse_reg line d, op1 a, op1 b, parse_pred line p)
    | _ -> fail line "selp expects 4 operands"
  end
  | "ld" :: space :: _ -> begin
    match ops with
    | [ d; mem ] ->
      let base, off = parse_mem line mem in
      Ld (space_of_string line space, parse_reg line d, base, off)
    | _ -> fail line "ld expects 2 operands"
  end
  | "st" :: space :: _ -> begin
    match ops with
    | [ mem; v ] ->
      let base, off = parse_mem line mem in
      St (space_of_string line space, base, off, op1 v)
    | _ -> fail line "st expects 2 operands"
  end
  | "atom" :: "global" :: aop :: _ -> begin
    match ops with
    | [ d; mem; v ] ->
      let base, off = parse_mem line mem in
      if off <> 0 then fail line "atomics take a bare [address] operand";
      Atom (atom_of_string line aop, parse_reg line d, base, op1 v)
    | _ -> fail line "atom expects 3 operands"
  end
  | [ "bra" ] -> begin
    match ops with
    | [ target ] -> Bra (resolve target)
    | _ -> fail line "bra expects 1 operand"
  end
  | "bar" :: _ -> if ops = [] then Bar else fail line "bar takes no operands"
  | [ "exit" ] -> if ops = [] then Exit else fail line "exit takes no operands"
  | _ -> fail line "unknown mnemonic %S" mnemonic

(* Parse "@%p0 bra foo;" into (guard, mnemonic, operand text). *)
let parse_instr_parts line s =
  let s = trim s in
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = ';' then trim (String.sub s 0 (n - 1)) else s
  in
  let guard, rest =
    if String.length s > 0 && s.[0] = '@' then begin
      match String.index_opt s ' ' with
      | None -> fail line "guard without instruction"
      | Some i ->
        let g = String.sub s 1 (i - 1) in
        let sense, preg_text =
          if String.length g > 0 && g.[0] = '!' then
            (false, String.sub g 1 (String.length g - 1))
          else (true, g)
        in
        let p = parse_pred line preg_text in
        (Some (sense, p), trim (String.sub s i (String.length s - i)))
    end
    else (None, s)
  in
  match String.index_opt rest ' ' with
  | None -> (guard, rest, "")
  | Some i ->
    ( guard,
      String.sub rest 0 i,
      trim (String.sub rest i (String.length rest - i)) )

let parse_instr_line ~resolve line s =
  let guard, mnemonic, operand_text = parse_instr_parts line s in
  { body = parse_body ~resolve line mnemonic operand_text; guard }

let parse_instr ~resolve s = parse_instr_line ~resolve 0 s

type raw_line =
  | Directive of string * string
  | Label of string
  | Instruction of string

let classify line s =
  let s = trim (strip_comment s) in
  if s = "" then None
  else if s.[0] = '.' then begin
    match String.index_opt s ' ' with
    | None -> fail line "directive %S needs an argument" s
    | Some i ->
      Some
        (Directive
           (String.sub s 0 i, trim (String.sub s i (String.length s - i))))
  end
  else
    let n = String.length s in
    if s.[n - 1] = ':' && not (String.contains s ' ') then
      Some (Label (String.sub s 0 (n - 1)))
    else Some (Instruction s)

let parse_kernel text =
  let lines = String.split_on_char '\n' text in
  let name = ref None and nparams = ref 0 and shared_bytes = ref 0 in
  let npregs = ref 0 in
  let labels = Hashtbl.create 16 in
  (* First pass: directives, label indices, and the instruction lines. *)
  let insts_rev = ref [] and count = ref 0 in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      match classify line raw with
      | None -> ()
      | Some (Directive (".kernel", v)) -> name := Some v
      | Some (Directive (".params", v)) ->
        nparams := Value.to_signed (parse_int line v)
      | Some (Directive (".shared", v)) ->
        shared_bytes := Value.to_signed (parse_int line v)
      | Some (Directive (".pregs", v)) ->
        npregs := Value.to_signed (parse_int line v)
      | Some (Directive (d, _)) -> fail line "unknown directive %S" d
      | Some (Label l) ->
        if Hashtbl.mem labels l then fail line "duplicate label %S" l;
        Hashtbl.replace labels l !count
      | Some (Instruction s) ->
        insts_rev := (line, s) :: !insts_rev;
        incr count)
    lines;
  let resolve_at line l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> (
      (* Accept bare L<index> targets even without an explicit label. *)
      match
        if String.length l > 1 && l.[0] = 'L' then
          int_of_string_opt (String.sub l 1 (String.length l - 1))
        else None
      with
      | Some i -> i
      | None -> fail line "unknown label %S" l)
  in
  let insts =
    List.rev_map
      (fun (line, s) ->
        parse_instr_line ~resolve:(resolve_at line) line s)
      !insts_rev
  in
  match !name with
  | None -> fail 1 ".kernel directive missing"
  | Some name ->
    Kernel.make ~name ~npregs:!npregs ~nparams:!nparams
      ~shared_bytes:!shared_bytes (Array.of_list insts)
