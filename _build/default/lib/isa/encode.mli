(** Binary encoding of PTX-lite instructions into 64-bit words.

    The paper relies on two encoding facts (§4, §4.2): every machine
    instruction is 64 bits long — so a redundant instruction is skipped by
    adding 8 to the PC — and the RISC-like machine ISA has spare bits, one
    or two of which carry the compiler's redundancy marking into the
    hardware. This module realizes both: a fixed 64-bit format with a
    2-bit redundancy-hint field, plus the legalization pass a real
    compiler would run (at most one 32-bit immediate per instruction;
    extra immediates are materialized into registers).

    Word layout (most significant bits first):
    {v
    [63:62] redundancy hint   (0 = vector, 1 = CR, 2 = DR, 3 = CR-xy)
    [61:56] opcode
    [55:50] guard             (valid, sense, predicate)
    [49:42] destination       (vector or predicate register)
    [41:36] modifier          (space / atomic op / cmp / cmp kind)
    [35:32] operand tags      (2 x 2 bits for the small slots)
    [31:0]  big slot          (one immediate, branch target, or
                               offset:16 | small operands)
    v}
    Exact field packing is internal; the contract is
    [decode (encode i) = Ok i] for every legal instruction. *)

type hint = int
(** Redundancy hint, 0..3. *)

val hint_bits : int
(** 2 — the spare bits consumed, as in the paper's SASS discussion. *)

type error =
  | Too_many_immediates  (** more than one 32-bit immediate operand *)
  | Offset_out_of_range of int  (** ld/st offset beyond 16 bits signed *)
  | Register_out_of_range of int
  | Predicate_out_of_range of int
  | Target_out_of_range of int

val error_to_string : error -> string

val encode : ?hint:hint -> Instr.t -> (int64, error) result

val decode : int64 -> (Instr.t * hint, string) result
(** Inverse of {!encode}; fails only on corrupted words. *)

val encodable : Instr.t -> bool

val legalize : Kernel.t -> Kernel.t
(** Rewrite the kernel so that every instruction is encodable, by
    materializing surplus immediate operands into [mov] instructions on a
    fresh scratch register (what a real register allocator/emitter does).
    Semantics are preserved; the instruction count may grow. *)

val encode_kernel :
  ?hints:hint array -> Kernel.t -> (int64 array, int * error) result
(** Encode all instructions (after you have {!legalize}d if needed); on
    failure returns the offending instruction index. [hints] defaults to
    all-vector. *)

val image_bytes : Kernel.t -> int
(** Size of the encoded kernel image: 8 bytes per instruction. *)
