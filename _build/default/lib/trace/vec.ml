type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let push t x =
  if t.len = Array.length t.data then begin
    let cap = max 8 (2 * Array.length t.data) in
    let bigger = Array.make cap x in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: out of bounds";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done
