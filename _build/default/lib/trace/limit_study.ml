open Darsie_isa
open Darsie_emu

type result = {
  total : int;
  eligible : int;
  grid_red : int;
  tb_red : int;
  warp_red : int;
  tb_uniform : int;
  tb_affine : int;
  tb_unstructured : int;
}

let vector_uniform v =
  Array.length v = 0 || Array.for_all (fun x -> x = v.(0)) v

(* v.(i) = base + stride * (i mod period) for some period dividing the
   warp. Multi-dimensional threadblocks with xdim < warp size lay tid.x
   out periodically within the warp (e.g. [0..15, 0..15] for a 16-wide
   row in a 32-wide warp); the paper treats such <base, stride> patterns
   as affine. *)
let affine_with_period v period =
  let n = Array.length v in
  if period < 2 then vector_uniform v
  else begin
    let stride = Value.sub v.(1) v.(0) in
    let ok = ref true in
    for i = 0 to n - 1 do
      let j = i mod period in
      let expected = Value.add v.(0) (Value.truncate (Value.mul stride j)) in
      if v.(i) <> expected then ok := false
    done;
    !ok
  end

let vector_affine v =
  let n = Array.length v in
  if n <= 1 then true
  else begin
    let rec try_period p = p >= 2 && (affine_with_period v p || try_period (p / 2)) in
    try_period n
  end

(* Per-(pc, occurrence) aggregation within one threadblock. The signature
   is the source operand vectors plus, for loads, the loaded destination
   vector: a load is only eliminable if every warp actually received the
   same data, and its taxonomy class is judged by the values it produced
   (addresses based on affine-redundant indices load unstructured data —
   §2). *)
type agg = {
  mutable sig_ : Value.t array array;  (* first arriving warp's operands *)
  mutable dst : Value.t array option;  (* first warp's loaded value *)
  mutable same : bool;
  mutable warps : int;
  mutable clean : bool;  (* every arrival eligible and full-mask *)
}

(* Cross-threadblock aggregation. *)
type grid_agg = {
  mutable gsig : Value.t array array;
  mutable gsame : bool;
  mutable gtbs : int;
}

type taxonomy = T_uniform | T_affine | T_unstructured

let classify_sig sig_ =
  if Array.for_all vector_uniform sig_ then T_uniform
  else if Array.for_all vector_affine sig_ then T_affine
  else T_unstructured

(* Loads are classified by the pattern of the data they produced. *)
let classify_agg ~is_load agg =
  match (is_load, agg.dst) with
  | true, Some dst ->
    if vector_uniform dst then T_uniform
    else if vector_affine dst then T_affine
    else T_unstructured
  | _ -> classify_sig agg.sig_

let sig_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x = y) a b

let measure ?(warp_size = 32) mem (launch : Kernel.launch) =
  let kernel = launch.Kernel.kernel in
  let insts = kernel.Kernel.insts in
  let ntbs = Kernel.num_blocks launch in
  let nwarps = Kernel.warps_per_block launch ~warp_size in
  let full = (1 lsl warp_size) - 1 in
  let eligible_inst =
    Array.map
      (fun i ->
        not
          (Instr.is_branch i || Instr.is_barrier i || Instr.is_exit i
          || Instr.is_atomic i))
      insts
  in
  let total = ref 0
  and eligible = ref 0
  and warp_red = ref 0
  and tb_red = ref 0
  and tb_uniform = ref 0
  and tb_affine = ref 0
  and tb_unstructured = ref 0 in
  let tb_table : (int * int, agg) Hashtbl.t = Hashtbl.create 4096 in
  let grid_table : (int * int, grid_agg) Hashtbl.t = Hashtbl.create 4096 in
  let current_tb = ref (-1) in
  let feed_grid key ok sig_ =
    match Hashtbl.find_opt grid_table key with
    | None -> Hashtbl.add grid_table key { gsig = sig_; gsame = ok; gtbs = 1 }
    | Some g ->
      g.gtbs <- g.gtbs + 1;
      if g.gsame then
        if not ok then g.gsame <- false
        else if not (sig_equal g.gsig sig_) then g.gsame <- false
  in
  let is_load_inst = Array.map Instr.is_load insts in
  let flush_tb () =
    Hashtbl.iter
      (fun ((idx, _) as key) agg ->
        let is_tb_red = agg.same && agg.clean && agg.warps = nwarps in
        if is_tb_red then begin
          tb_red := !tb_red + nwarps;
          (match classify_agg ~is_load:is_load_inst.(idx) agg with
          | T_uniform -> tb_uniform := !tb_uniform + nwarps
          | T_affine -> tb_affine := !tb_affine + nwarps
          | T_unstructured -> tb_unstructured := !tb_unstructured + nwarps)
        end;
        feed_grid key is_tb_red agg.sig_)
      tb_table;
    Hashtbl.reset tb_table
  in
  let on_exec (r : Interp.exec_record) =
    if r.Interp.tb <> !current_tb then begin
      if !current_tb >= 0 then flush_tb ();
      current_tb := r.Interp.tb
    end;
    incr total;
    let idx = r.Interp.inst_index in
    let ok_inst = eligible_inst.(idx) in
    if ok_inst then incr eligible;
    let clean = ok_inst && r.Interp.active = full in
    if clean && Array.for_all vector_uniform r.Interp.operands then
      incr warp_red;
    let key = (idx, r.Interp.occ) in
    match Hashtbl.find_opt tb_table key with
    | None ->
      Hashtbl.add tb_table key
        {
          sig_ = r.Interp.operands;
          dst = (if is_load_inst.(idx) then r.Interp.dst_values else None);
          same = true;
          warps = 1;
          clean;
        }
    | Some agg ->
      agg.warps <- agg.warps + 1;
      agg.clean <- agg.clean && clean;
      if agg.same && not (sig_equal agg.sig_ r.Interp.operands) then
        agg.same <- false;
      if agg.same && is_load_inst.(idx) then
        match (agg.dst, r.Interp.dst_values) with
        | Some a, Some b when a <> b -> agg.same <- false
        | _ -> ()
  in
  let config = { Interp.warp_size; capture_operands = true } in
  ignore (Interp.run ~config ~on_exec mem launch);
  if !current_tb >= 0 then flush_tb ();
  let grid_red = ref 0 in
  Hashtbl.iter
    (fun _ g -> if g.gsame && g.gtbs = ntbs then grid_red := !grid_red + (ntbs * nwarps))
    grid_table;
  {
    total = !total;
    eligible = !eligible;
    grid_red = !grid_red;
    tb_red = !tb_red;
    warp_red = !warp_red;
    tb_uniform = !tb_uniform;
    tb_affine = !tb_affine;
    tb_unstructured = !tb_unstructured;
  }

let fraction n r = if r.total = 0 then 0.0 else float_of_int n /. float_of_int r.total
