(** Dynamic redundancy limit studies (paper Figures 1 and 2).

    Executes a kernel launch with full operand capture and classifies every
    dynamic warp-level instruction by comparing its source operand vectors
    across the warps of its threadblock (and across threadblocks for the
    grid level):

    - {e warp-wide redundant} ("scalar"): every source operand vector holds
      one scalar replicated across the lanes;
    - {e TB-wide redundant}: every warp of the threadblock executed the
      same dynamic instance (same PC, same occurrence) with identical
      source operand vectors, all under a full active mask;
    - {e grid-wide redundant}: TB-wide redundant in every threadblock with
      identical operands across threadblocks.

    TB-redundant instances are further classified by the paper's taxonomy:
    uniform (all operands scalar), affine (all operands scalar or a single
    [<base, stride>] pattern, at least one strided) or unstructured.

    Instructions executed in diverged control flow (partial active mask, or
    not reached by every warp) are considered non-redundant, as in the
    paper's Figure 2. Control flow (branches, barriers, exits) and atomics
    are never counted as redundant. *)

type result = {
  total : int;  (** all dynamic warp-level instructions *)
  eligible : int;  (** excluding control flow and atomics *)
  grid_red : int;
  tb_red : int;  (** includes grid-redundant instances *)
  warp_red : int;  (** warp-wide scalar instances *)
  tb_uniform : int;  (** taxonomy split of [tb_red] *)
  tb_affine : int;
  tb_unstructured : int;
}

val measure :
  ?warp_size:int -> Darsie_emu.Memory.t -> Darsie_isa.Kernel.launch -> result

val fraction : int -> result -> float
(** [fraction n r] is [n / r.total] (0 when the trace is empty). *)

(** Operand-vector pattern tests, exposed for unit tests. *)

val vector_uniform : Darsie_isa.Value.t array -> bool

val vector_affine : Darsie_isa.Value.t array -> bool
(** True when the vector is [base + stride * (lane mod period)] for some
    power-of-two period dividing the warp size — a single
    [<base, stride>] pattern, possibly repeated per threadblock row (the
    layout multi-dimensional TBs give [tid.x] when the x dimension is
    smaller than the warp). Uniform vectors are affine with stride 0;
    arithmetic is modulo 2{^32}. *)
