open Darsie_isa
open Darsie_emu

type op = { idx : int; occ : int; active : int; accesses : int array }

type t = {
  launch : Kernel.launch;
  warp_size : int;
  tbs : op array array array;
  emu_stats : Interp.stats;
}

let generate ?(warp_size = 32) mem (launch : Kernel.launch) =
  let ntbs = Kernel.num_blocks launch in
  let nwarps = Kernel.warps_per_block launch ~warp_size in
  let vecs = Array.init ntbs (fun _ -> Array.init nwarps (fun _ -> Vec.create ())) in
  let on_exec (r : Interp.exec_record) =
    Vec.push
      vecs.(r.Interp.tb).(r.Interp.warp)
      {
        idx = r.Interp.inst_index;
        occ = r.Interp.occ;
        active = r.Interp.active;
        accesses = r.Interp.accesses;
      }
  in
  let config = { Interp.warp_size; capture_operands = false } in
  let emu_stats = Interp.run ~config ~on_exec mem launch in
  let tbs = Array.map (Array.map Vec.to_array) vecs in
  { launch; warp_size; tbs; emu_stats }

let total_ops t =
  Array.fold_left
    (fun acc tb -> Array.fold_left (fun a w -> a + Array.length w) acc tb)
    0 t.tbs

let num_tbs t = Array.length t.tbs

let warps_per_tb t = Kernel.warps_per_block t.launch ~warp_size:t.warp_size

let full_mask t = (1 lsl t.warp_size) - 1
