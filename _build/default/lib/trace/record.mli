(** Dynamic execution traces for the timing model.

    The timing simulator is trace-driven (like Accel-Sim): the functional
    emulator resolves control flow and memory addresses per warp, and the
    timing model replays each warp's instruction stream. One {!op} is one
    dynamic warp-level instruction. *)

type op = {
  idx : int;  (** static instruction index in the kernel *)
  occ : int;  (** occurrence number of this PC within this warp *)
  active : int;  (** SIMT active mask at issue *)
  accesses : int array;
      (** byte addresses touched by active lanes (memory ops only) *)
}

type t = {
  launch : Darsie_isa.Kernel.launch;
  warp_size : int;
  tbs : op array array array;  (** [tb].[warp].[n] *)
  emu_stats : Darsie_emu.Interp.stats;
}

val generate :
  ?warp_size:int -> Darsie_emu.Memory.t -> Darsie_isa.Kernel.launch -> t
(** Functionally execute the launch (mutating [mem]) and collect per-warp
    traces. *)

val total_ops : t -> int

val num_tbs : t -> int

val warps_per_tb : t -> int

val full_mask : t -> int
