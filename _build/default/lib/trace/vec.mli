(** A minimal growable array (OCaml 5.1 predates [Stdlib.Dynarray]). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit

val length : 'a t -> int

val get : 'a t -> int -> 'a

val to_array : 'a t -> 'a array

val iter : ('a -> unit) -> 'a t -> unit
