lib/trace/limit_study.ml: Array Darsie_emu Darsie_isa Hashtbl Instr Interp Kernel Value
