lib/trace/vec.mli:
