lib/trace/limit_study.mli: Darsie_emu Darsie_isa
