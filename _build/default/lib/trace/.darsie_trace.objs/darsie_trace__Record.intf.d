lib/trace/record.mli: Darsie_emu Darsie_isa
