lib/trace/record.ml: Array Darsie_emu Darsie_isa Interp Kernel Vec
