type entry = { reconv : int; mutable pc : int; mutable mask : int }

type t = { mutable stack : entry list }

let create ~full_mask =
  { stack = [ { reconv = -1; pc = 0; mask = full_mask } ] }

let top t =
  match t.stack with
  | [] -> invalid_arg "Simt_stack: empty"
  | e :: _ -> e

let active_mask t = match t.stack with [] -> 0 | e :: _ -> e.mask

let pc t = (top t).pc

let finished t = t.stack = []

let reconverge_if_needed t =
  let rec pop () =
    match t.stack with
    | e :: rest when e.reconv >= 0 && e.pc = e.reconv ->
      t.stack <- rest;
      pop ()
    | _ -> ()
  in
  pop ()

let advance t pc = (top t).pc <- pc

let diverge t ~reconv ~taken_pc ~taken_mask ~fallthrough_pc =
  let e = top t in
  let mask = e.mask in
  if taken_mask = 0 || taken_mask land lnot mask <> 0 || taken_mask = mask
  then invalid_arg "Simt_stack.diverge: mask is not a proper subset";
  let fall_mask = mask land lnot taken_mask in
  e.pc <- reconv;
  (* When paths only rejoin at exit there is no reconvergence entry to
     return to; the continuation entry is dropped. *)
  let rest = if reconv >= 0 then t.stack else List.tl t.stack in
  t.stack <-
    { reconv; pc = taken_pc; mask = taken_mask }
    :: { reconv; pc = fallthrough_pc; mask = fall_mask }
    :: rest

let retire_lanes t mask =
  let keep =
    List.filter_map
      (fun e ->
        let m = e.mask land lnot mask in
        if m = 0 then None
        else begin
          e.mask <- m;
          Some e
        end)
      t.stack
  in
  t.stack <- keep

let depth t = List.length t.stack
