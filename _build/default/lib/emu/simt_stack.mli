(** Per-warp SIMT reconvergence stack.

    The classic immediate-postdominator stack: a divergent branch replaces
    the top-of-stack PC with the reconvergence point and pushes one entry
    per taken path; entries pop when execution reaches their reconvergence
    PC. Lane masks are [warp_size]-bit integers. *)

type t

val create : full_mask:int -> t
(** A fresh stack with a single entry at instruction index 0. *)

val active_mask : t -> int
(** Mask of the currently executing path; [0] once all lanes exited. *)

val pc : t -> int
(** Next instruction index of the current path. *)

val finished : t -> bool

val reconverge_if_needed : t -> unit
(** Pop entries whose PC has reached their reconvergence point. Call before
    fetching each instruction. *)

val advance : t -> int -> unit
(** Set the current path's next PC (fallthrough or uniform branch). *)

val diverge : t -> reconv:int -> taken_pc:int -> taken_mask:int ->
  fallthrough_pc:int -> unit
(** Split the current path at a divergent branch. [taken_mask] must be a
    non-empty strict subset of the active mask. The current entry continues
    at [reconv] (index [-1] meaning thread exit) with the full path mask;
    the not-taken and taken paths are pushed, taken on top. *)

val retire_lanes : t -> int -> unit
(** Remove exited lanes (mask) from every stack entry, popping entries that
    become empty. *)

val depth : t -> int
