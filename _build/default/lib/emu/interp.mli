(** Functional (architectural) emulator for PTX-lite kernels.

    Executes a kernel launch against a {!Memory} instance, resolving SIMT
    control flow with per-warp reconvergence stacks (immediate
    postdominator). Threadblocks run one after another; warps within a
    threadblock interleave round-robin between barriers — a legal
    interleaving of the CUDA memory model for the regular workloads the
    paper studies.

    Every executed warp-instruction can be observed through the [on_exec]
    callback; the trace library uses this to build timing traces and
    redundancy limit studies. *)

type config = {
  warp_size : int;
  capture_operands : bool;
      (** when true, [exec_record.operands] and [dst_values] are
          populated — required by the limit studies, off for plain timing
          traces *)
}

val default_config : config
(** Warp size 32, no operand capture. *)

type exec_record = {
  tb : int;  (** linear threadblock index in the grid *)
  warp : int;  (** warp index within the threadblock *)
  inst_index : int;
  occ : int;  (** how many times this warp has executed this PC before *)
  active : int;  (** SIMT active mask when the instruction issued *)
  operands : Darsie_isa.Value.t array array;
      (** per source operand, per lane (length [warp_size]); empty unless
          [capture_operands] *)
  dst_values : Darsie_isa.Value.t array option;
      (** the destination vector register after the write; [None] when the
          instruction writes no vector register or capture is off *)
  accesses : int array;
      (** byte addresses of the active lanes for memory instructions, in
          lane order; empty otherwise *)
}

type stats = {
  warp_insts : int;  (** dynamic warp-level instructions executed *)
  thread_insts : int;  (** dynamic thread-level instructions *)
  max_stack_depth : int;
}

exception Fault of string
(** Raised on execution errors: barrier under divergence, barrier
    deadlock, or runaway execution. *)

val run :
  ?config:config ->
  ?on_exec:(exec_record -> unit) ->
  ?max_warp_insts:int ->
  Memory.t ->
  Darsie_isa.Kernel.launch ->
  stats
(** [max_warp_insts] (default 50M) bounds total dynamic warp instructions
    to catch runaway kernels. *)
