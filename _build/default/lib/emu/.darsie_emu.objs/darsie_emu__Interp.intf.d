lib/emu/interp.mli: Darsie_isa Memory
