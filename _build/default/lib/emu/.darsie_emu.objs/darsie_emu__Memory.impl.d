lib/emu/memory.ml: Array Bytes Darsie_isa Printf Value
