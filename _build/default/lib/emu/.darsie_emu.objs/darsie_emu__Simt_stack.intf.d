lib/emu/simt_stack.mli:
