lib/emu/interp.ml: Array Bytes Darsie_compiler Darsie_isa Instr Kernel List Memory Option Printf Simt_stack Value
