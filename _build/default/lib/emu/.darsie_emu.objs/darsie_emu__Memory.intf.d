lib/emu/memory.mli: Darsie_isa
