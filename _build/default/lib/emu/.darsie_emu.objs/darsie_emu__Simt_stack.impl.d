lib/emu/simt_stack.ml: List
