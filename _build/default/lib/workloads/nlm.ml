(* IMNLM — ImageDenoisingNLM (CUDA SDK), 16x16 threadblocks.

   Non-local-means style denoising: each pixel accumulates
   exponentially-weighted contributions from a 5x5 search window. The
   window-offset arithmetic is uniform (SFU div/rem per tap), column
   indices are conditionally redundant affine, and the exp2/rcp work is
   SFU-heavy. *)

open Darsie_isa
module B = Builder

let bdim = 16

let radius = 2

let taps = (2 * radius) + 1

let inv_h2 = 8.0

let build () =
  let b = B.create ~name:"imageDenoisingNLM" ~nparams:4 () in
  let open B.O in
  (* params: 0=src 1=dst 2=width 3=height *)
  let gx = Util.global_id_x b in
  let gy = Util.global_id_y b in
  let wm1 = B.reg b in
  B.sub b wm1 (p 2) (i 1);
  let hm1 = B.reg b in
  B.sub b hm1 (p 3) (i 1);
  let w4 = B.reg b in
  B.shl b w4 (p 2) (i 2);
  let c_addr = B.reg b in
  B.mul b c_addr (r gy) (r w4);
  B.add b c_addr (r c_addr) (p 0);
  let gx4 = B.reg b in
  B.shl b gx4 (r gx) (i 2);
  B.add b c_addr (r c_addr) (r gx4);
  let center = B.reg b in
  B.ld b Instr.Global center (r c_addr) ();
  let sum = B.reg b in
  B.mov b sum (f 0.0);
  let norm = B.reg b in
  B.mov b norm (f 0.0);
  (* fully unrolled search window, scratch registers reused across taps *)
  let sx = B.reg b and sy = B.reg b and a = B.reg b and sx4 = B.reg b in
  let v = B.reg b and d = B.reg b and d2 = B.reg b and wgt = B.reg b in
  for t = 0 to (taps * taps) - 1 do
    let dy = (t / taps) - radius and dx = (t mod taps) - radius in
    B.add b sx (r gx) (i dx);
    B.bin b Instr.Max_s sx (r sx) (i 0);
    B.bin b Instr.Min_s sx (r sx) (r wm1);
    B.add b sy (r gy) (i dy);
    B.bin b Instr.Max_s sy (r sy) (i 0);
    B.bin b Instr.Min_s sy (r sy) (r hm1);
    B.mul b a (r sy) (r w4);
    B.add b a (r a) (p 0);
    B.shl b sx4 (r sx) (i 2);
    B.add b a (r a) (r sx4);
    B.ld b Instr.Global v (r a) ();
    B.fsub b d (r v) (r center);
    B.fmul b d2 (r d) (r d);
    B.fmul b d2 (r d2) (f (-.inv_h2));
    B.un b Instr.Fexp2 wgt (r d2);
    B.fma b sum (r wgt) (r v) (r sum);
    B.fadd b norm (r norm) (r wgt)
  done;
  let inv_norm = B.reg b in
  B.un b Instr.Frcp inv_norm (r norm);
  let out = B.reg b in
  B.fmul b out (r sum) (r inv_norm);
  let o_addr = B.reg b in
  B.mul b o_addr (r gy) (r w4);
  B.add b o_addr (r o_addr) (p 1);
  B.add b o_addr (r o_addr) (r gx4);
  B.st b Instr.Global (r o_addr) (r out);
  B.exit_ b;
  B.finish b

let reference ~w ~h src =
  let r32 = Util.r32 in
  Array.init (w * h) (fun idx ->
      let x = idx mod w and y = idx / w in
      let center = src.(idx) in
      let sum = ref 0.0 and norm = ref 0.0 in
      for t = 0 to (taps * taps) - 1 do
        let dy = (t / taps) - radius and dx = (t mod taps) - radius in
        let sx = max 0 (min (w - 1) (x + dx)) in
        let sy = max 0 (min (h - 1) (y + dy)) in
        let v = src.((sy * w) + sx) in
        let d = r32 (v -. center) in
        let d2 = r32 (r32 (d *. d) *. -.inv_h2) in
        let wgt = r32 (Float.exp2 d2) in
        sum := r32 (r32 (wgt *. v) +. !sum);
        norm := r32 (!norm +. wgt)
      done;
      r32 (!sum *. r32 (1.0 /. !norm)))

let prepare ~scale =
  let w = 64 and h = 32 * scale in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 83 in
  let src = Util.Rng.f32_array rng (w * h) 1.0 in
  let s_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  let d_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  Darsie_emu.Memory.write_f32s mem s_base src;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (w / bdim) ~y:(h / bdim))
      ~block:(Kernel.dim3 bdim ~y:bdim)
      ~params:[| s_base; d_base; w; h |]
  in
  let expected = reference ~w ~h src in
  let verify mem' =
    Workload.check_f32 ~tol:2e-2 ~name:"IMNLM" ~expected
      (Darsie_emu.Memory.read_f32s mem' d_base (w * h))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "IMNLM";
    full_name = "ImageDenoisingNLM";
    suite = "CUDA SDK";
    block_dim = (16, 16);
    dimensionality = Workload.D2;
    prepare;
  }
