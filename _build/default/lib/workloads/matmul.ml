(* MM — matrixMul (CUDA SDK), 32x32 threadblocks (Table 1).

   Classic shared-memory tiled matrix multiply. With a 32-wide warp and a
   32x32 TB, every warp is one row of the tile: the Bs[k][tx] shared loads
   use conditionally redundant affine addresses and produce the
   unstructured redundancy the paper's Figure 6 highlights, while the
   As[ty][k] loads are true vector operations. *)

open Darsie_isa
module B = Builder

let tile = 32

let build () =
  let b = B.create ~name:"matrixMul" ~nparams:5 ~shared_bytes:(2 * tile * tile * 4) () in
  let open B.O in
  (* params: 0=A 1=B 2=C 3=n(elements) 4=tiles *)
  let row = B.reg b in
  B.mad b row ctaid_y (i tile) tid_y;
  let col = B.reg b in
  B.mad b col ctaid_x (i tile) tid_x;
  let acc = B.reg b in
  B.mov b acc (f 0.0);
  let n4 = B.reg b in
  B.shl b n4 (p 3) (i 2);
  (* &A[row][0] *)
  let a_row = B.reg b in
  B.mul b a_row (r row) (r n4);
  B.add b a_row (r a_row) (p 0);
  (* &B[0][col] *)
  let b_col = B.reg b in
  B.mad b b_col (r col) (i 4) (p 1);
  (* shared-store offset of this thread's tile slot, in bytes *)
  let s_idx = B.reg b in
  B.mad b s_idx tid_y (i tile) tid_x;
  B.shl b s_idx (r s_idx) (i 2);
  (* As[ty][.] base in bytes; Bs region starts at tile*tile*4 *)
  let a_srow = B.reg b in
  B.mul b a_srow tid_y (i (tile * 4));
  let b_scol = B.reg b in
  B.mad b b_scol tid_x (i 4) (i (tile * tile * 4));
  Util.counted_loop b ~bound:(p 4) (fun t ->
      (* global loads of the A and B tiles *)
      let ga = B.reg b in
      B.mad b ga (r t) (i (tile * 4)) (i 0);
      B.add b ga (r ga) (r a_row);
      let off_x = B.reg b in
      B.shl b off_x tid_x (i 2);
      B.add b ga (r ga) (r off_x);
      let va = B.reg b in
      B.ld b Instr.Global va (r ga) ();
      B.st b Instr.Shared (r s_idx) (r va);
      let gb = B.reg b in
      B.mad b gb (r t) (i tile) tid_y;
      B.mul b gb (r gb) (r n4);
      B.add b gb (r gb) (r b_col);
      let vb = B.reg b in
      B.ld b Instr.Global vb (r gb) ();
      B.st b Instr.Shared (r s_idx) ~off:(tile * tile * 4) (r vb);
      B.bar b;
      (* Fully unrolled inner product over the tile, matching the
         register-allocated PTXPlus the paper's Figure 6 analyzes: per
         step, a conditionally redundant Bs-pointer increment, a
         conditionally redundant Bs[k][tx] shared load, a vector As[ty][k]
         shared load (PTXPlus folds this one into the mad's shared-memory
         operand; our ISA keeps it explicit) and the vector fma. *)
      let av = B.reg b and bv = B.reg b in
      let b_ptr = B.reg b in
      B.mov b b_ptr (r b_scol);
      for k = 0 to tile - 1 do
        B.ld b Instr.Shared av (r a_srow) ~off:(k * 4) ();
        B.ld b Instr.Shared bv (r b_ptr) ();
        B.add b b_ptr (r b_ptr) (i (tile * 4));
        B.fma b acc (r av) (r bv) (r acc)
      done;
      B.bar b);
  let c_addr = B.reg b in
  B.mul b c_addr (r row) (r n4);
  B.add b c_addr (r c_addr) (p 2);
  let col4 = B.reg b in
  B.shl b col4 (r col) (i 2);
  B.add b c_addr (r c_addr) (r col4);
  B.st b Instr.Global (r c_addr) (r acc);
  B.exit_ b;
  B.finish b

let reference ~n a bm =
  let c = Array.make (n * n) 0.0 in
  for row = 0 to n - 1 do
    for col = 0 to n - 1 do
      (* accumulate in the kernel's order with f32 rounding *)
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := Util.r32 ((Util.r32 (a.((row * n) + k) *. bm.((k * n) + col))) +. !acc)
      done;
      c.((row * n) + col) <- !acc
    done
  done;
  c

let prepare ~scale =
  let n = 64 * scale in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 11 in
  let a = Util.Rng.f32_array rng (n * n) 1.0 in
  let bm = Util.Rng.f32_array rng (n * n) 1.0 in
  let a_base = Darsie_emu.Memory.alloc mem (4 * n * n) in
  let b_base = Darsie_emu.Memory.alloc mem (4 * n * n) in
  let c_base = Darsie_emu.Memory.alloc mem (4 * n * n) in
  Darsie_emu.Memory.write_f32s mem a_base a;
  Darsie_emu.Memory.write_f32s mem b_base bm;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (n / tile) ~y:(n / tile))
      ~block:(Kernel.dim3 tile ~y:tile)
      ~params:[| a_base; b_base; c_base; n; n / tile |]
  in
  let expected = reference ~n a bm in
  let verify mem' =
    Workload.check_f32 ~tol:1e-3 ~name:"MM"
      ~expected
      (Darsie_emu.Memory.read_f32s mem' c_base (n * n))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "MM";
    full_name = "matrixMul";
    suite = "CUDA SDK";
    block_dim = (32, 32);
    dimensionality = Workload.D2;
    prepare;
  }
