(* DCT8x8 (CUDA SDK), 8x8 threadblocks.

   Two-pass 8-point DCT-II on 8x8 tiles through shared memory. The row
   pass reads the coefficient table at tid.x-based (conditionally
   redundant affine) addresses; the column pass reads the intermediate
   tile at k*8+tid.x addresses — the unstructured redundancy the paper
   attributes to this benchmark. *)

open Darsie_isa
module B = Builder

let bs = 8

let coef_table =
  (* c.(u).(k) = alpha(u) * cos((2k+1) u pi / 16), single precision *)
  Array.init bs (fun u ->
      Array.init bs (fun k ->
          let alpha =
            if u = 0 then sqrt (1.0 /. float_of_int bs)
            else sqrt (2.0 /. float_of_int bs)
          in
          Util.r32
            (alpha
            *. cos
                 (Float.pi
                 *. float_of_int ((2 * k) + 1)
                 *. float_of_int u /. 16.0))))

let build () =
  let b =
    B.create ~name:"dct8x8" ~nparams:4 ~shared_bytes:(2 * bs * bs * 4) ()
  in
  let open B.O in
  (* params: 0=src 1=dst 2=coef 3=width *)
  let gx = Util.global_id_x b in
  let gy = Util.global_id_y b in
  let w4 = B.reg b in
  B.shl b w4 (p 3) (i 2);
  let g_addr = B.reg b in
  B.mul b g_addr (r gy) (r w4);
  B.add b g_addr (r g_addr) (p 0);
  let gx4 = B.reg b in
  B.shl b gx4 (r gx) (i 2);
  B.add b g_addr (r g_addr) (r gx4);
  let v = B.reg b in
  B.ld b Instr.Global v (r g_addr) ();
  (* tile slot in bytes *)
  let s_idx = B.reg b in
  B.mad b s_idx tid_y (i bs) tid_x;
  B.shl b s_idx (r s_idx) (i 2);
  B.st b Instr.Shared (r s_idx) (r v);
  B.bar b;
  (* Row pass: tmp[ty][tx] = sum_k coef[tx][k] * tile[ty][k] *)
  let acc = B.reg b in
  B.mov b acc (f 0.0);
  let coef_row = B.reg b in
  B.mad b coef_row tid_x (i (bs * 4)) (p 2);
  let tile_row = B.reg b in
  B.mul b tile_row tid_y (i (bs * 4));
  (* fully unrolled, as nvcc compiles the SDK kernel: per step one
     conditionally redundant coefficient load and one vector tile load *)
  let cv = B.reg b and tv = B.reg b in
  for k = 0 to bs - 1 do
    B.ld b Instr.Global cv (r coef_row) ~off:(k * 4) ();
    B.ld b Instr.Shared tv (r tile_row) ~off:(k * 4) ();
    B.fma b acc (r cv) (r tv) (r acc)
  done;
  B.st b Instr.Shared (r s_idx) ~off:(bs * bs * 4) (r acc);
  B.bar b;
  (* Column pass: out[ty][tx] = sum_k coef[ty][k] * tmp[k][tx] *)
  let acc2 = B.reg b in
  B.mov b acc2 (f 0.0);
  let coef_row2 = B.reg b in
  B.mad b coef_row2 tid_y (i (bs * 4)) (p 2);
  let tx4 = B.reg b in
  B.mad b tx4 tid_x (i 4) (i (bs * bs * 4));
  (* column pass, unrolled: vector coefficient load plus the
     conditionally redundant tmp[k][tx] shared load (unstructured
     redundancy, §2) *)
  let cv2 = B.reg b and tv2 = B.reg b in
  for k = 0 to bs - 1 do
    B.ld b Instr.Global cv2 (r coef_row2) ~off:(k * 4) ();
    B.ld b Instr.Shared tv2 (r tx4) ~off:(k * bs * 4) ();
    B.fma b acc2 (r cv2) (r tv2) (r acc2)
  done;
  let out_addr = B.reg b in
  B.mul b out_addr (r gy) (r w4);
  B.add b out_addr (r out_addr) (p 1);
  B.add b out_addr (r out_addr) (r gx4);
  B.st b Instr.Global (r out_addr) (r acc2);
  B.exit_ b;
  B.finish b

let reference ~w ~h src =
  let tmp = Array.make (w * h) 0.0 and out = Array.make (w * h) 0.0 in
  let tiles_x = w / bs and tiles_y = h / bs in
  for ty = 0 to tiles_y - 1 do
    for tx = 0 to tiles_x - 1 do
      let at arr y x = arr.(((ty * bs) + y) * w + (tx * bs) + x) in
      let set arr y x v = arr.(((ty * bs) + y) * w + (tx * bs) + x) <- v in
      for y = 0 to bs - 1 do
        for x = 0 to bs - 1 do
          let acc = ref 0.0 in
          for k = 0 to bs - 1 do
            acc := Util.r32 (Util.r32 (coef_table.(x).(k) *. at src y k) +. !acc)
          done;
          set tmp y x !acc
        done
      done;
      for y = 0 to bs - 1 do
        for x = 0 to bs - 1 do
          let acc = ref 0.0 in
          for k = 0 to bs - 1 do
            acc := Util.r32 (Util.r32 (coef_table.(y).(k) *. at tmp k x) +. !acc)
          done;
          set out y x !acc
        done
      done
    done
  done;
  out

let prepare ~scale =
  let w = 64 * scale and h = 64 in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 23 in
  let src = Util.Rng.f32_array rng (w * h) 255.0 in
  let src_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  let dst_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  let coef_base = Darsie_emu.Memory.alloc mem (4 * bs * bs) in
  Darsie_emu.Memory.write_f32s mem src_base src;
  Darsie_emu.Memory.write_f32s mem coef_base
    (Array.concat (Array.to_list coef_table));
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (w / bs) ~y:(h / bs))
      ~block:(Kernel.dim3 bs ~y:bs)
      ~params:[| src_base; dst_base; coef_base; w |]
  in
  let expected = reference ~w ~h src in
  let verify mem' =
    Workload.check_f32 ~tol:1e-2 ~name:"DCT8x8" ~expected
      (Darsie_emu.Memory.read_f32s mem' dst_base (w * h))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "DCT8x8";
    full_name = "DCT8x8";
    suite = "CUDA SDK";
    block_dim = (8, 8);
    dimensionality = Workload.D2;
    prepare;
  }
