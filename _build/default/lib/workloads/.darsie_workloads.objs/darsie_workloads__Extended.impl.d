lib/workloads/extended.ml: Array Builder Darsie_emu Darsie_isa Instr Kernel Util Workload
