lib/workloads/floyd_warshall.ml: Array Builder Darsie_emu Darsie_isa Instr Kernel Util Workload
