lib/workloads/registry.ml: Backprop Bin_opt Conv_tex Coulomb Dct8x8 Extended Fast_walsh Floyd_warshall Hotspot Libor List Matmul Nlm Pathfinder Srad String Workload
