lib/workloads/nlm.ml: Array Builder Darsie_emu Darsie_isa Float Instr Kernel Util Workload
