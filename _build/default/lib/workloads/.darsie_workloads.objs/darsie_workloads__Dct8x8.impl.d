lib/workloads/dct8x8.ml: Array Builder Darsie_emu Darsie_isa Float Instr Kernel Util Workload
