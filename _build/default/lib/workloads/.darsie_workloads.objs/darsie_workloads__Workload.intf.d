lib/workloads/workload.mli: Darsie_emu Darsie_isa
