lib/workloads/util.ml: Array Builder Darsie_isa Instr Int32
