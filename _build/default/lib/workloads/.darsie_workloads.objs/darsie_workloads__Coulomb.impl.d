lib/workloads/coulomb.ml: Array Builder Darsie_emu Darsie_isa Instr Kernel Util Workload
