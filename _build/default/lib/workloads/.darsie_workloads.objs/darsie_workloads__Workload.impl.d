lib/workloads/workload.ml: Array Darsie_emu Darsie_isa Float Printf
