lib/workloads/conv_tex.ml: Array Builder Darsie_emu Darsie_isa Instr Kernel Util Workload
