lib/workloads/backprop.ml: Array Builder Darsie_emu Darsie_isa Instr Kernel Util Workload
