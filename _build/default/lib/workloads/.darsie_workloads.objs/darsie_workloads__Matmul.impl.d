lib/workloads/matmul.ml: Array Builder Darsie_emu Darsie_isa Instr Kernel Util Workload
