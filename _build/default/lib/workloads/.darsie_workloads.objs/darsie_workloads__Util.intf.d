lib/workloads/util.mli: Darsie_isa
