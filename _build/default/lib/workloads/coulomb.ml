(* CP — Coulombic Potential (GPGPU-sim distribution / VMD cionize),
   16x8 threadblocks.

   Each thread accumulates the electrostatic potential of all atoms at one
   lattice point. The per-iteration atom loads use uniform (definitely
   redundant) addresses and the distance math is SFU-heavy — the uniform
   redundancy plus compute density the paper reports for CP. *)

open Darsie_isa
module B = Builder

let bx = 16

let by = 8

let spacing = 0.25

let build () =
  let b = B.create ~name:"coulomb" ~nparams:4 () in
  let open B.O in
  (* params: 0=atoms (x,y,z,q quads) 1=out 2=natoms 3=width *)
  let gx = Util.global_id_x b in
  let gy = Util.global_id_y b in
  let fx = B.reg b in
  B.un b Instr.Cvt_i2f fx (r gx);
  B.fmul b fx (r fx) (f spacing);
  let fy = B.reg b in
  B.un b Instr.Cvt_i2f fy (r gy);
  B.fmul b fy (r fy) (f spacing);
  let acc = B.reg b in
  B.mov b acc (f 0.0);
  Util.counted_loop b ~bound:(p 2) (fun t ->
      (* uniform atom record address *)
      let a = B.reg b in
      B.mad b a (r t) (i 16) (p 0);
      let ax = B.reg b in
      B.ld b Instr.Global ax (r a) ();
      let ay = B.reg b in
      B.ld b Instr.Global ay (r a) ~off:4 ();
      let az = B.reg b in
      B.ld b Instr.Global az (r a) ~off:8 ();
      let aq = B.reg b in
      B.ld b Instr.Global aq (r a) ~off:12 ();
      let dx = B.reg b in
      B.fsub b dx (r fx) (r ax);
      let dy = B.reg b in
      B.fsub b dy (r fy) (r ay);
      let d2 = B.reg b in
      B.fmul b d2 (r dx) (r dx);
      B.fma b d2 (r dy) (r dy) (r d2);
      B.fma b d2 (r az) (r az) (r d2);
      let dist = B.reg b in
      B.un b Instr.Fsqrt dist (r d2);
      let inv = B.reg b in
      B.un b Instr.Frcp inv (r dist);
      B.fma b acc (r aq) (r inv) (r acc));
  let w4 = B.reg b in
  B.shl b w4 (p 3) (i 2);
  let addr = B.reg b in
  B.mul b addr (r gy) (r w4);
  B.add b addr (r addr) (p 1);
  let gx4 = B.reg b in
  B.shl b gx4 (r gx) (i 2);
  B.add b addr (r addr) (r gx4);
  B.st b Instr.Global (r addr) (r acc);
  B.exit_ b;
  B.finish b

let reference ~w ~h ~natoms atoms =
  let r32 = Util.r32 in
  Array.init (w * h) (fun idx ->
      let x = idx mod w and y = idx / w in
      let fx = r32 (r32 (float_of_int x) *. spacing) in
      let fy = r32 (r32 (float_of_int y) *. spacing) in
      let acc = ref 0.0 in
      for t = 0 to natoms - 1 do
        let ax = atoms.((t * 4) + 0)
        and ay = atoms.((t * 4) + 1)
        and az = atoms.((t * 4) + 2)
        and aq = atoms.((t * 4) + 3) in
        let dx = r32 (fx -. ax) and dy = r32 (fy -. ay) in
        let d2 = r32 (dx *. dx) in
        let d2 = r32 (r32 (dy *. dy) +. d2) in
        let d2 = r32 (r32 (az *. az) +. d2) in
        let dist = r32 (sqrt d2) in
        let inv = r32 (1.0 /. dist) in
        acc := r32 (r32 (aq *. inv) +. !acc)
      done;
      !acc)

let prepare ~scale =
  let w = 64 and h = 32 * scale in
  let natoms = 24 in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 53 in
  let atoms =
    Array.init (natoms * 4) (fun i ->
        if i mod 4 = 2 then Util.r32 (Util.Rng.float rng 4.0 +. 0.5)
        else Util.Rng.float rng 16.0)
  in
  let a_base = Darsie_emu.Memory.alloc mem (4 * natoms * 4) in
  let o_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  Darsie_emu.Memory.write_f32s mem a_base atoms;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (w / bx) ~y:(h / by))
      ~block:(Kernel.dim3 bx ~y:by)
      ~params:[| a_base; o_base; natoms; w |]
  in
  let expected = reference ~w ~h ~natoms atoms in
  let verify mem' =
    Workload.check_f32 ~tol:1e-2 ~name:"CP" ~expected
      (Darsie_emu.Memory.read_f32s mem' o_base (w * h))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "CP";
    full_name = "Coulombic Potential";
    suite = "GPGPU-sim dist";
    block_dim = (16, 8);
    dimensionality = Workload.D2;
    prepare;
  }
