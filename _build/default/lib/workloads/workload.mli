(** Workload interface: the paper's Table 1 applications, re-implemented
    as PTX-lite kernels with deterministic inputs and CPU reference
    implementations for functional validation. *)

type prepared = {
  mem : Darsie_emu.Memory.t;
  launch : Darsie_isa.Kernel.launch;
  verify : Darsie_emu.Memory.t -> (unit, string) result;
      (** compare device results against the CPU reference after
          execution *)
}

type dimensionality = D1 | D2

type t = {
  abbr : string;  (** Table 1 abbreviation, e.g. "MM" *)
  full_name : string;
  suite : string;  (** CUDA SDK / Rodinia / Parboil / Pannotia / GPGPU-sim *)
  block_dim : int * int;  (** Table 1 TB dimensions *)
  dimensionality : dimensionality;
  prepare : scale:int -> prepared;
      (** [scale] grows the input/grid; 1 is the default benchmarked
          size *)
}

val check_f32 :
  ?tol:float -> name:string -> expected:float array -> float array ->
  (unit, string) result
(** Relative-error comparison of float outputs. *)

val check_i32 :
  name:string -> expected:int array -> int array -> (unit, string) result
