type prepared = {
  mem : Darsie_emu.Memory.t;
  launch : Darsie_isa.Kernel.launch;
  verify : Darsie_emu.Memory.t -> (unit, string) result;
}

type dimensionality = D1 | D2

type t = {
  abbr : string;
  full_name : string;
  suite : string;
  block_dim : int * int;
  dimensionality : dimensionality;
  prepare : scale:int -> prepared;
}

let check_f32 ?(tol = 1e-3) ~name ~expected actual =
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "%s: length mismatch (%d vs %d)" name
         (Array.length expected) (Array.length actual))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e ->
        if !bad = None then begin
          let a = actual.(i) in
          let denom = max (abs_float e) 1.0 in
          if abs_float (a -. e) /. denom > tol || Float.is_nan a then
            bad := Some (i, e, a)
        end)
      expected;
    match !bad with
    | None -> Ok ()
    | Some (i, e, a) ->
      Error (Printf.sprintf "%s: element %d: expected %g, got %g" name i e a)
  end

let check_i32 ~name ~expected actual =
  if Array.length expected <> Array.length actual then
    Error
      (Printf.sprintf "%s: length mismatch (%d vs %d)" name
         (Array.length expected) (Array.length actual))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e -> if !bad = None && actual.(i) <> e then bad := Some i)
      expected;
    match !bad with
    | None -> Ok ()
    | Some i ->
      Error
        (Printf.sprintf "%s: element %d: expected %d, got %d" name i
           expected.(i) actual.(i))
  end
