(* BIN — binomialOptions (CUDA SDK), 256x1 threadblocks.

   One option per threadblock: a backward-induction binomial lattice in
   shared memory with a barrier per step. The shrinking `tid < t` frontier
   produces warp-level (and eventually intra-warp) divergence each step;
   the per-step probabilities and loop bookkeeping are uniform. *)

open Darsie_isa
module B = Builder

let threads = 256

let steps = threads - 1

let pu = 0.52

let pd = 0.47

let ds = 0.5

let build () =
  let b =
    B.create ~name:"binomialOptions" ~nparams:3 ~shared_bytes:(threads * 4) ()
  in
  let open B.O in
  (* params: 0=spot array 1=strike array 2=out array (one per option/TB) *)
  let opt4 = B.reg b in
  B.shl b opt4 ctaid_x (i 2);
  let s_addr = B.reg b in
  B.add b s_addr (p 0) (r opt4);
  let s0 = B.reg b in
  B.ld b Instr.Global s0 (r s_addr) ();
  let x_addr = B.reg b in
  B.add b x_addr (p 1) (r opt4);
  let strike = B.reg b in
  B.ld b Instr.Global strike (r x_addr) ();
  (* leaf payoff: max(s0 + tid*ds - strike, 0) *)
  let fi = B.reg b in
  B.un b Instr.Cvt_i2f fi tid_x;
  let v = B.reg b in
  B.fma b v (r fi) (f ds) (r s0);
  B.fsub b v (r v) (r strike);
  B.bin b Instr.Fmax v (r v) (f 0.0);
  let sh = B.reg b in
  B.shl b sh tid_x (i 2);
  B.st b Instr.Shared (r sh) (r v);
  B.bar b;
  (* backward induction: t = steps, steps-1, ..., 1 *)
  Util.counted_loop b ~bound:(i steps) (fun it ->
      let t = B.reg b in
      B.mov b t (i steps);
      B.sub b t (r t) (r it);
      let skip = B.fresh_label b in
      let p_out = B.pred b in
      B.setp b Instr.Scmp Instr.Ge p_out tid_x (r t);
      B.bra b ~guard:(true, p_out) skip;
      let v1 = B.reg b in
      B.ld b Instr.Shared v1 (r sh) ~off:4 ();
      let v0 = B.reg b in
      B.ld b Instr.Shared v0 (r sh) ();
      let nv = B.reg b in
      B.fmul b nv (r v1) (f pu);
      B.fma b nv (r v0) (f pd) (r nv);
      B.st b Instr.Shared (r sh) (r nv);
      B.place b skip;
      B.bar b);
  (* thread 0 stores the option value *)
  let p0 = B.pred b in
  B.setp b Instr.Scmp Instr.Eq p0 tid_x (i 0);
  let result = B.reg b in
  B.ld b Instr.Shared result (Instr.Imm 0) ();
  let o_addr = B.reg b in
  B.add b o_addr (p 2) (r opt4);
  B.emit b ~guard:(true, p0)
    (Instr.St (Instr.Global, Instr.Reg o_addr, 0, Instr.Reg result));
  B.exit_ b;
  B.finish b

let reference spot strike =
  let r32 = Util.r32 in
  Array.map2
    (fun s0 x ->
      let v =
        Array.init threads (fun i ->
            max 0.0 (r32 (r32 (r32 (float_of_int i *. ds) +. s0) -. x)))
      in
      for t = steps downto 1 do
        for i = 0 to t - 1 do
          v.(i) <- r32 (r32 (v.(i + 1) *. pu) +. r32 (v.(i) *. pd))
        done
      done;
      v.(0))
    spot strike

let prepare ~scale =
  let noptions = 4 * scale in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 97 in
  let spot = Array.map (fun x -> Util.r32 (x +. 20.0)) (Util.Rng.f32_array rng noptions 20.0) in
  let strike = Array.map (fun x -> Util.r32 (x +. 30.0)) (Util.Rng.f32_array rng noptions 20.0) in
  let s_base = Darsie_emu.Memory.alloc mem (4 * noptions) in
  let x_base = Darsie_emu.Memory.alloc mem (4 * noptions) in
  let o_base = Darsie_emu.Memory.alloc mem (4 * noptions) in
  Darsie_emu.Memory.write_f32s mem s_base spot;
  Darsie_emu.Memory.write_f32s mem x_base strike;
  let launch =
    Kernel.launch kernel ~grid:(Kernel.dim3 noptions)
      ~block:(Kernel.dim3 threads)
      ~params:[| s_base; x_base; o_base |]
  in
  let expected = reference spot strike in
  let verify mem' =
    Workload.check_f32 ~tol:1e-2 ~name:"BIN" ~expected
      (Darsie_emu.Memory.read_f32s mem' o_base noptions)
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "BIN";
    full_name = "binomialOptions";
    suite = "CUDA SDK";
    block_dim = (256, 1);
    dimensionality = Workload.D1;
    prepare;
  }
