(** All Table-1 applications, in the paper's order (1D first, then 2D). *)

val all : Workload.t list

val one_d : Workload.t list

val two_d : Workload.t list

val find : string -> Workload.t option
(** Look up by abbreviation, case-insensitive; covers Table 1 and the
    extended set. *)

val abbrs : string list

val extended : Workload.t list
(** Additional kernels beyond Table 1 (reduction, transpose, histogram,
    SpMV, n-body, 3D stencil) used for broader simulator validation; not
    part of the paper's experiments. *)
