(* FW — fastWalshTransform (CUDA SDK), 256x1 threadblocks.

   A 512-point Walsh-Hadamard transform per threadblock in shared memory:
   9 butterfly stages with a barrier between stages. The butterfly index
   arithmetic is tid.x-based shift/mask work — affine in 2D terms but, in
   these 1D blocks, non-redundant (DAC's idealized affine stream removes
   it; DARSIE correctly does not). *)

open Darsie_isa
module B = Builder

let threads = 256

let n = 2 * threads

let log_n = 9

let build () =
  let b =
    B.create ~name:"fastWalshTransform" ~nparams:2 ~shared_bytes:(n * 4) ()
  in
  let open B.O in
  (* params: 0=data in/out (n per TB) *)
  let base = B.reg b in
  B.mul b base ctaid_x (i (n * 4));
  B.add b base (r base) (p 0);
  let t4 = B.reg b in
  B.shl b t4 tid_x (i 2);
  let g0 = B.reg b in
  B.add b g0 (r base) (r t4);
  let v0 = B.reg b in
  B.ld b Instr.Global v0 (r g0) ();
  B.st b Instr.Shared (r t4) (r v0);
  let v1 = B.reg b in
  B.ld b Instr.Global v1 (r g0) ~off:(threads * 4) ();
  B.st b Instr.Shared (r t4) ~off:(threads * 4) (r v1);
  B.bar b;
  Util.counted_loop b ~bound:(i log_n) (fun s ->
      (* stride = 2^(log_n - 1 - s); i0 = (q << (log+1)) + rem with
         q = tid >> log, rem = tid & (stride - 1) *)
      let logs = B.reg b in
      B.mov b logs (i (log_n - 1));
      B.sub b logs (r logs) (r s);
      let stride = B.reg b in
      B.mov b stride (i 1);
      B.shl b stride (r stride) (r logs);
      let q = B.reg b in
      B.bin b Instr.Shr_u q tid_x (r logs);
      let mask = B.reg b in
      B.sub b mask (r stride) (i 1);
      let rem = B.reg b in
      B.bin b Instr.And rem tid_x (r mask);
      let logs1 = B.reg b in
      B.add b logs1 (r logs) (i 1);
      let i0 = B.reg b in
      B.shl b i0 (r q) (r logs1);
      B.add b i0 (r i0) (r rem);
      let a0 = B.reg b in
      B.shl b a0 (r i0) (i 2);
      let a1 = B.reg b in
      B.mad b a1 (r stride) (i 4) (r a0);
      let x = B.reg b in
      B.ld b Instr.Shared x (r a0) ();
      let y = B.reg b in
      B.ld b Instr.Shared y (r a1) ();
      let sum = B.reg b in
      B.fadd b sum (r x) (r y);
      let diff = B.reg b in
      B.fsub b diff (r x) (r y);
      B.st b Instr.Shared (r a0) (r sum);
      B.st b Instr.Shared (r a1) (r diff);
      B.bar b);
  let o0 = B.reg b in
  B.ld b Instr.Shared o0 (r t4) ();
  B.st b Instr.Global (r g0) (r o0);
  let o1 = B.reg b in
  B.ld b Instr.Shared o1 (r t4) ~off:(threads * 4) ();
  B.st b Instr.Global (r g0) ~off:(threads * 4) (r o1);
  B.exit_ b;
  B.finish b

let reference data =
  let out = Array.copy data in
  let blocks = Array.length data / n in
  for blk = 0 to blocks - 1 do
    let off = blk * n in
    let stride = ref (n / 2) in
    while !stride >= 1 do
      for t = 0 to threads - 1 do
        let q = t / !stride and rem = t mod !stride in
        let i0 = (q * 2 * !stride) + rem in
        let x = out.(off + i0) and y = out.(off + i0 + !stride) in
        out.(off + i0) <- Util.r32 (x +. y);
        out.(off + i0 + !stride) <- Util.r32 (x -. y)
      done;
      stride := !stride / 2
    done
  done;
  out

let prepare ~scale =
  let blocks = 8 * scale in
  let total = blocks * n in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 113 in
  let data = Util.Rng.f32_array rng total 2.0 in
  let d_base = Darsie_emu.Memory.alloc mem (4 * total) in
  Darsie_emu.Memory.write_f32s mem d_base data;
  let launch =
    Kernel.launch kernel ~grid:(Kernel.dim3 blocks)
      ~block:(Kernel.dim3 threads) ~params:[| d_base; 0 |]
  in
  let expected = reference data in
  let verify mem' =
    Workload.check_f32 ~tol:1e-3 ~name:"FW" ~expected
      (Darsie_emu.Memory.read_f32s mem' d_base total)
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "FW";
    full_name = "fastWalshTransform";
    suite = "CUDA SDK";
    block_dim = (256, 1);
    dimensionality = Workload.D1;
    prepare;
  }
