(* HS — HotSpot (Rodinia), 16x16 threadblocks.

   One step of the thermal stencil: each cell's new temperature is
   computed from its four neighbours (clamped at the chip boundary with
   min/max — no divergence), its power dissipation and the ambient
   temperature. Column index arithmetic is conditionally redundant
   (tid.x-based); rows vary per warp. *)

open Darsie_isa
module B = Builder

let bdim = 16

let cap = 0.5

let rx = 1.0 /. 10.0

let ry = 1.0 /. 8.0

let rz = 1.0 /. 4.0

let amb = 80.0

let build () =
  let b = B.create ~name:"hotspot" ~nparams:5 () in
  let open B.O in
  (* params: 0=temp_in 1=power 2=temp_out 3=width 4=height *)
  let gx = Util.global_id_x b in
  let gy = Util.global_id_y b in
  let wm1 = B.reg b in
  B.sub b wm1 (p 3) (i 1);
  let hm1 = B.reg b in
  B.sub b hm1 (p 4) (i 1);
  (* clamped neighbour coordinates *)
  let clamp dst v lo hi =
    B.bin b Instr.Max_s dst v lo;
    B.bin b Instr.Min_s dst (r dst) hi
  in
  let xl = B.reg b in
  B.sub b xl (r gx) (i 1);
  clamp xl (r xl) (i 0) (r wm1);
  let xr2 = B.reg b in
  B.add b xr2 (r gx) (i 1);
  clamp xr2 (r xr2) (i 0) (r wm1);
  let yu = B.reg b in
  B.sub b yu (r gy) (i 1);
  clamp yu (r yu) (i 0) (r hm1);
  let yd = B.reg b in
  B.add b yd (r gy) (i 1);
  clamp yd (r yd) (i 0) (r hm1);
  (* addresses *)
  let w4 = B.reg b in
  B.shl b w4 (p 3) (i 2);
  let row = B.reg b in
  B.mul b row (r gy) (r w4);
  let addr_of dst base rowreg colreg =
    B.mad b dst colreg (i 4) base;
    B.add b dst (r dst) rowreg
  in
  let a_c = B.reg b in
  addr_of a_c (p 0) (r row) (r gx);
  let center = B.reg b in
  B.ld b Instr.Global center (r a_c) ();
  let a_w = B.reg b in
  addr_of a_w (p 0) (r row) (r xl);
  let west = B.reg b in
  B.ld b Instr.Global west (r a_w) ();
  let a_e = B.reg b in
  addr_of a_e (p 0) (r row) (r xr2);
  let east = B.reg b in
  B.ld b Instr.Global east (r a_e) ();
  let row_u = B.reg b in
  B.mul b row_u (r yu) (r w4);
  let a_n = B.reg b in
  addr_of a_n (p 0) (r row_u) (r gx);
  let north = B.reg b in
  B.ld b Instr.Global north (r a_n) ();
  let row_d = B.reg b in
  B.mul b row_d (r yd) (r w4);
  let a_s = B.reg b in
  addr_of a_s (p 0) (r row_d) (r gx);
  let south = B.reg b in
  B.ld b Instr.Global south (r a_s) ();
  let a_p = B.reg b in
  addr_of a_p (p 1) (r row) (r gx);
  let power = B.reg b in
  B.ld b Instr.Global power (r a_p) ();
  (* delta = cap * (power + (n + s - 2c)*ry + (e + w - 2c)*rx + (amb - c)*rz) *)
  let two_c = B.reg b in
  B.fmul b two_c (r center) (f 2.0);
  let ns = B.reg b in
  B.fadd b ns (r north) (r south);
  B.fsub b ns (r ns) (r two_c);
  let ew = B.reg b in
  B.fadd b ew (r east) (r west);
  B.fsub b ew (r ew) (r two_c);
  let az = B.reg b in
  B.fsub b az (f amb) (r center);
  let acc = B.reg b in
  B.fmul b acc (r ns) (f ry);
  B.fma b acc (r ew) (f rx) (r acc);
  B.fma b acc (r az) (f rz) (r acc);
  B.fadd b acc (r acc) (r power);
  let out = B.reg b in
  B.fma b out (r acc) (f cap) (r center);
  let a_o = B.reg b in
  addr_of a_o (p 2) (r row) (r gx);
  B.st b Instr.Global (r a_o) (r out);
  B.exit_ b;
  B.finish b

let reference ~w ~h temp power =
  let out = Array.make (w * h) 0.0 in
  let r32 = Util.r32 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let at a yy xx =
        let yy = max 0 (min (h - 1) yy) and xx = max 0 (min (w - 1) xx) in
        a.((yy * w) + xx)
      in
      let c = at temp y x in
      let two_c = r32 (c *. 2.0) in
      let ns = r32 (r32 (at temp (y - 1) x +. at temp (y + 1) x) -. two_c) in
      let ew = r32 (r32 (at temp y (x + 1) +. at temp y (x - 1)) -. two_c) in
      let az = r32 (amb -. c) in
      let acc = r32 (ns *. ry) in
      let acc = r32 (r32 (ew *. rx) +. acc) in
      let acc = r32 (r32 (az *. rz) +. acc) in
      let acc = r32 (acc +. power.((y * w) + x)) in
      out.((y * w) + x) <- r32 (r32 (acc *. cap) +. c)
    done
  done;
  out

let prepare ~scale =
  let w = 64 and h = 64 * scale in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 37 in
  let temp = Array.map (fun x -> Util.r32 (x +. 300.0)) (Util.Rng.f32_array rng (w * h) 40.0) in
  let power = Util.Rng.f32_array rng (w * h) 1.0 in
  let t_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  let p_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  let o_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  Darsie_emu.Memory.write_f32s mem t_base temp;
  Darsie_emu.Memory.write_f32s mem p_base power;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (w / bdim) ~y:(h / bdim))
      ~block:(Kernel.dim3 bdim ~y:bdim)
      ~params:[| t_base; p_base; o_base; w; h |]
  in
  let expected = reference ~w ~h temp power in
  let verify mem' =
    Workload.check_f32 ~tol:1e-3 ~name:"HS" ~expected
      (Darsie_emu.Memory.read_f32s mem' o_base (w * h))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "HS";
    full_name = "HotSpot";
    suite = "Rodinia";
    block_dim = (16, 16);
    dimensionality = Workload.D2;
    prepare;
  }
