(* CONVTEX — convolutionTexture (CUDA SDK), 16x16 threadblocks.

   5x5 image convolution with boundary clamping. Filter coefficients are
   loaded from uniform addresses (definitely redundant); the column offset
   arithmetic is conditionally redundant affine; the image loads
   themselves vary per warp. *)

open Darsie_isa
module B = Builder

let bdim = 16

let radius = 2

let taps = (2 * radius) + 1

let build () =
  let b = B.create ~name:"convolutionTexture" ~nparams:5 () in
  let open B.O in
  (* params: 0=src 1=dst 2=coef 3=width 4=height *)
  let gx = Util.global_id_x b in
  let gy = Util.global_id_y b in
  let wm1 = B.reg b in
  B.sub b wm1 (p 3) (i 1);
  let hm1 = B.reg b in
  B.sub b hm1 (p 4) (i 1);
  let w4 = B.reg b in
  B.shl b w4 (p 3) (i 2);
  let acc = B.reg b in
  B.mov b acc (f 0.0);
  (* Fully unrolled taps (the SDK kernel is #pragma unroll):
     conditionally redundant column clamping, vector row addressing and
     image load, uniform coefficient load. Scratch registers reused across
     taps like a register allocator would. *)
  let sx = B.reg b and sy = B.reg b and a = B.reg b in
  let sx4 = B.reg b and v = B.reg b and ca = B.reg b and cv = B.reg b in
  for t = 0 to (taps * taps) - 1 do
    let dy = (t / taps) - radius and dx = (t mod taps) - radius in
    B.add b sx (r gx) (i dx);
    B.bin b Instr.Max_s sx (r sx) (i 0);
    B.bin b Instr.Min_s sx (r sx) (r wm1);
    B.add b sy (r gy) (i dy);
    B.bin b Instr.Max_s sy (r sy) (i 0);
    B.bin b Instr.Min_s sy (r sy) (r hm1);
    B.mul b a (r sy) (r w4);
    B.add b a (r a) (p 0);
    B.shl b sx4 (r sx) (i 2);
    B.add b a (r a) (r sx4);
    B.ld b Instr.Global v (r a) ();
    B.mov b ca (p 2);
    B.ld b Instr.Global cv (r ca) ~off:(t * 4) ();
    B.fma b acc (r v) (r cv) (r acc)
  done;
  let addr = B.reg b in
  B.mul b addr (r gy) (r w4);
  B.add b addr (r addr) (p 1);
  let gx4 = B.reg b in
  B.shl b gx4 (r gx) (i 2);
  B.add b addr (r addr) (r gx4);
  B.st b Instr.Global (r addr) (r acc);
  B.exit_ b;
  B.finish b

let reference ~w ~h src coef =
  let r32 = Util.r32 in
  Array.init (w * h) (fun idx ->
      let x = idx mod w and y = idx / w in
      let acc = ref 0.0 in
      for t = 0 to (taps * taps) - 1 do
        let dy = (t / taps) - radius and dx = (t mod taps) - radius in
        let sx = max 0 (min (w - 1) (x + dx)) in
        let sy = max 0 (min (h - 1) (y + dy)) in
        acc := r32 (r32 (src.((sy * w) + sx) *. coef.(t)) +. !acc)
      done;
      !acc)

let prepare ~scale =
  let w = 64 and h = 32 * scale in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 61 in
  let src = Util.Rng.f32_array rng (w * h) 1.0 in
  let coef =
    Array.init (taps * taps) (fun _ -> Util.Rng.float rng (1.0 /. 12.0))
  in
  let s_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  let d_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  let c_base = Darsie_emu.Memory.alloc mem (4 * taps * taps) in
  Darsie_emu.Memory.write_f32s mem s_base src;
  Darsie_emu.Memory.write_f32s mem c_base coef;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (w / bdim) ~y:(h / bdim))
      ~block:(Kernel.dim3 bdim ~y:bdim)
      ~params:[| s_base; d_base; c_base; w; h |]
  in
  let expected = reference ~w ~h src coef in
  let verify mem' =
    Workload.check_f32 ~tol:1e-2 ~name:"CONVTEX" ~expected
      (Darsie_emu.Memory.read_f32s mem' d_base (w * h))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "CONVTEX";
    full_name = "convolutionTexture";
    suite = "CUDA SDK";
    block_dim = (16, 16);
    dimensionality = Workload.D2;
    prepare;
  }
