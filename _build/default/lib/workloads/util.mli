(** Shared helpers for workload construction: a deterministic PRNG for
    inputs, single-precision rounding for CPU references, and common
    Builder idioms. *)

(** Deterministic xorshift PRNG (inputs must not depend on OCaml's seeded
    hashing or [Random]'s global state). *)
module Rng : sig
  type t

  val create : int -> t

  val int : t -> int -> int
  (** uniform in [0, bound). *)

  val float : t -> float -> float
  (** uniform in [0, bound), rounded to single precision. *)

  val f32_array : t -> int -> float -> float array

  val i32_array : t -> int -> int -> int array
end

val r32 : float -> float
(** Round to IEEE-754 single precision (for CPU references that must track
    the kernel's f32 arithmetic). *)

val counted_loop :
  Darsie_isa.Builder.t -> bound:Darsie_isa.Instr.operand -> (int -> unit) ->
  unit
(** [counted_loop b ~bound body] emits a loop running [body i] with counter
    register [i] going 0, 1, ... while [i+1 < bound] allows; [bound] must
    be at least 1 (the body always runs once). The counter and branch are
    uniform when [bound] is uniform, so the loop adds no divergence. *)

val global_id_x : Darsie_isa.Builder.t -> int
(** Emit [ctaid.x * ntid.x + tid.x] into a fresh register. *)

val global_id_y : Darsie_isa.Builder.t -> int
