(* SR1 — SRAD v1 (Rodinia), 512x1 threadblocks.

   Speckle-reducing anisotropic diffusion over a flat 2D image addressed
   with 1D thread ids: per pixel, gradient magnitudes from four clamped
   neighbours feed a rational diffusion coefficient (SFU divisions), which
   scales the Laplacian update. *)

open Darsie_isa
module B = Builder

let threads = 512

let lambda = 0.25

let eps = 1e-6

let build () =
  let b = B.create ~name:"srad" ~nparams:4 () in
  let open B.O in
  (* params: 0=img 1=out 2=width 3=height *)
  let gid = Util.global_id_x b in
  let row = B.reg b in
  B.bin b Instr.Div_s row (r gid) (p 2);
  let col = B.reg b in
  B.bin b Instr.Rem_s col (r gid) (p 2);
  let wm1 = B.reg b in
  B.sub b wm1 (p 2) (i 1);
  let hm1 = B.reg b in
  B.sub b hm1 (p 3) (i 1);
  let clamp dst v lo hi =
    B.bin b Instr.Max_s dst v lo;
    B.bin b Instr.Min_s dst (r dst) hi
  in
  let rn = B.reg b in
  B.sub b rn (r row) (i 1);
  clamp rn (r rn) (i 0) (r hm1);
  let rs = B.reg b in
  B.add b rs (r row) (i 1);
  clamp rs (r rs) (i 0) (r hm1);
  let cw = B.reg b in
  B.sub b cw (r col) (i 1);
  clamp cw (r cw) (i 0) (r wm1);
  let ce = B.reg b in
  B.add b ce (r col) (i 1);
  clamp ce (r ce) (i 0) (r wm1);
  let w4 = B.reg b in
  B.shl b w4 (p 2) (i 2);
  let load dst rowreg colreg =
    let a = B.reg b in
    B.mul b a rowreg (r w4);
    B.add b a (r a) (p 0);
    let c4 = B.reg b in
    B.shl b c4 colreg (i 2);
    B.add b a (r a) (r c4);
    B.ld b Instr.Global dst (r a) ()
  in
  let c = B.reg b in
  load c (r row) (r col);
  let vn = B.reg b in
  load vn (r rn) (r col);
  let vs = B.reg b in
  load vs (r rs) (r col);
  let vw = B.reg b in
  load vw (r row) (r cw);
  let ve = B.reg b in
  load ve (r row) (r ce);
  let dn = B.reg b in
  B.fsub b dn (r vn) (r c);
  let ds_ = B.reg b in
  B.fsub b ds_ (r vs) (r c);
  let dw = B.reg b in
  B.fsub b dw (r vw) (r c);
  let de = B.reg b in
  B.fsub b de (r ve) (r c);
  (* g2 = (dn^2 + ds^2 + dw^2 + de^2) / (c^2 + eps) *)
  let g2 = B.reg b in
  B.fmul b g2 (r dn) (r dn);
  B.fma b g2 (r ds_) (r ds_) (r g2);
  B.fma b g2 (r dw) (r dw) (r g2);
  B.fma b g2 (r de) (r de) (r g2);
  let c2 = B.reg b in
  B.fmul b c2 (r c) (r c);
  B.fadd b c2 (r c2) (f eps);
  let q = B.reg b in
  B.bin b Instr.Fdiv q (r g2) (r c2);
  (* coef = 1 / (1 + q) *)
  let den = B.reg b in
  B.fadd b den (r q) (f 1.0);
  let coef = B.reg b in
  B.un b Instr.Frcp coef (r den);
  (* out = c + lambda * coef * (dn + ds + dw + de) *)
  let lap = B.reg b in
  B.fadd b lap (r dn) (r ds_);
  B.fadd b lap (r lap) (r dw);
  B.fadd b lap (r lap) (r de);
  B.fmul b lap (r lap) (r coef);
  let out = B.reg b in
  B.fma b out (r lap) (f lambda) (r c);
  let o_addr = B.reg b in
  B.mad b o_addr (r gid) (i 4) (p 1);
  B.st b Instr.Global (r o_addr) (r out);
  B.exit_ b;
  B.finish b

let reference ~w ~h img =
  let r32 = Util.r32 in
  Array.init (w * h) (fun idx ->
      let row = idx / w and col = idx mod w in
      let at rr cc =
        img.((max 0 (min (h - 1) rr) * w) + max 0 (min (w - 1) cc))
      in
      let c = at row col in
      let dn = r32 (at (row - 1) col -. c) in
      let ds_ = r32 (at (row + 1) col -. c) in
      let dw = r32 (at row (col - 1) -. c) in
      let de = r32 (at row (col + 1) -. c) in
      let g2 = r32 (dn *. dn) in
      let g2 = r32 (r32 (ds_ *. ds_) +. g2) in
      let g2 = r32 (r32 (dw *. dw) +. g2) in
      let g2 = r32 (r32 (de *. de) +. g2) in
      let c2 = r32 (r32 (c *. c) +. eps) in
      let q = r32 (g2 /. c2) in
      let coef = r32 (1.0 /. r32 (q +. 1.0)) in
      let lap = r32 (r32 (r32 (dn +. ds_) +. dw) +. de) in
      let lap = r32 (lap *. coef) in
      r32 (r32 (lap *. lambda) +. c))

let prepare ~scale =
  let w = 128 and h = 64 * scale in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 127 in
  let img = Array.map (fun x -> Util.r32 (x +. 0.5)) (Util.Rng.f32_array rng (w * h) 1.0) in
  let i_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  let o_base = Darsie_emu.Memory.alloc mem (4 * w * h) in
  Darsie_emu.Memory.write_f32s mem i_base img;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (w * h / threads))
      ~block:(Kernel.dim3 threads)
      ~params:[| i_base; o_base; w; h |]
  in
  let expected = reference ~w ~h img in
  let verify mem' =
    Workload.check_f32 ~tol:1e-3 ~name:"SR1" ~expected
      (Darsie_emu.Memory.read_f32s mem' o_base (w * h))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "SR1";
    full_name = "SRADV1";
    suite = "Rodinia";
    block_dim = (512, 1);
    dimensionality = Workload.D1;
    prepare;
  }
