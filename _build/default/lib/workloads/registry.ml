let one_d =
  [
    Bin_opt.workload;
    Pathfinder.workload;
    Fast_walsh.workload;
    Srad.workload;
    Libor.workload;
  ]

let two_d =
  [
    Nlm.workload;
    Backprop.workload;
    Dct8x8.workload;
    Floyd_warshall.workload;
    Hotspot.workload;
    Coulomb.workload;
    Conv_tex.workload;
    Matmul.workload;
  ]

let all = one_d @ two_d

let extended = Extended.all

let find abbr =
  let needle = String.lowercase_ascii abbr in
  List.find_opt
    (fun w -> String.lowercase_ascii w.Workload.abbr = needle)
    (all @ extended)

let abbrs = List.map (fun w -> w.Workload.abbr) all
