(* Extended workload set.

   Six additional kernels beyond the paper's Table 1, used to validate the
   simulator and DARSIE across a broader range of behaviours: tree
   reductions (warp-level divergence), tiled transpose (pure addressing
   redundancy), histogram (global atomics, which flush DARSIE's load
   entries), CSR SpMV (data-dependent loop trip counts, majority-path
   stress), n-body (uniform-load/SFU-dense like CP but 1D), and a 3D
   7-point stencil (exercises 3D launches and the tid.y extension). They
   are not part of the paper's evaluation and are kept out of
   Registry.all. *)

open Darsie_isa
module B = Builder
module M = Darsie_emu.Memory

let r32 = Util.r32

(* ------------------------------------------------------------------ *)
(* reduction: per-block sum of 256 ints via a shared-memory tree       *)
(* ------------------------------------------------------------------ *)

let reduction =
  let threads = 256 in
  let build () =
    let b = B.create ~name:"reduction" ~nparams:2 ~shared_bytes:(threads * 4) () in
    let open B.O in
    (* params: 0=in 1=out (one per block) *)
    let gid = Util.global_id_x b in
    let a = B.reg b in
    B.mad b a (r gid) (i 4) (p 0);
    let v = B.reg b in
    B.ld b Instr.Global v (r a) ();
    let sh = B.reg b in
    B.shl b sh tid_x (i 2);
    B.st b Instr.Shared (r sh) (r v);
    B.bar b;
    (* s = 128, 64, ..., 1 *)
    Util.counted_loop b ~bound:(i 8) (fun t ->
        let s = B.reg b in
        B.mov b s (i (threads / 2));
        B.bin b Instr.Shr_u s (r s) (r t);
        let skip = B.fresh_label b in
        let p_out = B.pred b in
        B.setp b Instr.Scmp Instr.Ge p_out tid_x (r s);
        B.bra b ~guard:(true, p_out) skip;
        let other = B.reg b in
        B.add b other tid_x (r s);
        B.shl b other (r other) (i 2);
        let ov = B.reg b in
        B.ld b Instr.Shared ov (r other) ();
        let mine = B.reg b in
        B.ld b Instr.Shared mine (r sh) ();
        B.add b mine (r mine) (r ov);
        B.st b Instr.Shared (r sh) (r mine);
        B.place b skip;
        B.bar b);
    let p0 = B.pred b in
    B.setp b Instr.Scmp Instr.Eq p0 tid_x (i 0);
    let total = B.reg b in
    B.ld b Instr.Shared total (Instr.Imm 0) ();
    let o = B.reg b in
    B.mad b o ctaid_x (i 4) (p 1);
    B.emit b ~guard:(true, p0)
      (Instr.St (Instr.Global, Instr.Reg o, 0, Instr.Reg total));
    B.exit_ b;
    B.finish b
  in
  let prepare ~scale =
    let blocks = 8 * scale in
    let kernel = build () in
    let mem = M.create () in
    let rng = Util.Rng.create 211 in
    let data = Util.Rng.i32_array rng (blocks * threads) 1000 in
    let i_base = M.alloc mem (4 * blocks * threads) in
    let o_base = M.alloc mem (4 * blocks) in
    M.write_i32s mem i_base data;
    let launch =
      Kernel.launch kernel ~grid:(Kernel.dim3 blocks)
        ~block:(Kernel.dim3 threads) ~params:[| i_base; o_base |]
    in
    let expected =
      Array.init blocks (fun blk ->
          let s = ref 0 in
          for i = 0 to threads - 1 do
            s := !s + data.((blk * threads) + i)
          done;
          !s)
    in
    let verify mem' =
      Workload.check_i32 ~name:"REDUCE" ~expected (M.read_i32s mem' o_base blocks)
    in
    { Workload.mem; launch; verify }
  in
  {
    Workload.abbr = "REDUCE";
    full_name = "block reduction";
    suite = "extended";
    block_dim = (threads, 1);
    dimensionality = Workload.D1;
    prepare;
  }

(* ------------------------------------------------------------------ *)
(* transpose: tiled matrix transpose through shared memory             *)
(* ------------------------------------------------------------------ *)

let transpose =
  let bdim = 16 in
  let build () =
    let b =
      B.create ~name:"transpose" ~nparams:3 ~shared_bytes:(bdim * bdim * 4) ()
    in
    let open B.O in
    (* params: 0=in 1=out 2=n *)
    let gx = Util.global_id_x b in
    let gy = Util.global_id_y b in
    let n4 = B.reg b in
    B.shl b n4 (p 2) (i 2);
    let a_in = B.reg b in
    B.mul b a_in (r gy) (r n4);
    B.add b a_in (r a_in) (p 0);
    let gx4 = B.reg b in
    B.shl b gx4 (r gx) (i 2);
    B.add b a_in (r a_in) (r gx4);
    let v = B.reg b in
    B.ld b Instr.Global v (r a_in) ();
    (* store transposed within the tile: tile[tx][ty] *)
    let s_in = B.reg b in
    B.mad b s_in tid_x (i bdim) tid_y;
    B.shl b s_in (r s_in) (i 2);
    B.st b Instr.Shared (r s_in) (r v);
    B.bar b;
    (* read back row-major and write to the transposed block position *)
    let s_out = B.reg b in
    B.mad b s_out tid_y (i bdim) tid_x;
    B.shl b s_out (r s_out) (i 2);
    let tv = B.reg b in
    B.ld b Instr.Shared tv (r s_out) ();
    let ox = B.reg b in
    B.mad b ox ctaid_y (i bdim) tid_x;
    let oy = B.reg b in
    B.mad b oy ctaid_x (i bdim) tid_y;
    let a_out = B.reg b in
    B.mul b a_out (r oy) (r n4);
    B.add b a_out (r a_out) (p 1);
    let ox4 = B.reg b in
    B.shl b ox4 (r ox) (i 2);
    B.add b a_out (r a_out) (r ox4);
    B.st b Instr.Global (r a_out) (r tv);
    B.exit_ b;
    B.finish b
  in
  let prepare ~scale =
    let n = 64 * scale in
    let kernel = build () in
    let mem = M.create () in
    let rng = Util.Rng.create 223 in
    let data = Util.Rng.i32_array rng (n * n) 100000 in
    let i_base = M.alloc mem (4 * n * n) in
    let o_base = M.alloc mem (4 * n * n) in
    M.write_i32s mem i_base data;
    let launch =
      Kernel.launch kernel
        ~grid:(Kernel.dim3 (n / bdim) ~y:(n / bdim))
        ~block:(Kernel.dim3 bdim ~y:bdim)
        ~params:[| i_base; o_base; n |]
    in
    let expected =
      Array.init (n * n) (fun idx ->
          let y = idx / n and x = idx mod n in
          data.((x * n) + y))
    in
    let verify mem' =
      Workload.check_i32 ~name:"TRANS" ~expected (M.read_i32s mem' o_base (n * n))
    in
    { Workload.mem; launch; verify }
  in
  {
    Workload.abbr = "TRANS";
    full_name = "tiled transpose";
    suite = "extended";
    block_dim = (bdim, bdim);
    dimensionality = Workload.D2;
    prepare;
  }

(* ------------------------------------------------------------------ *)
(* histogram: global atomics over 64 bins                              *)
(* ------------------------------------------------------------------ *)

let histogram =
  let threads = 256 in
  let bins = 64 in
  let build () =
    let b = B.create ~name:"histogram" ~nparams:2 () in
    let open B.O in
    (* params: 0=in 1=bins *)
    let gid = Util.global_id_x b in
    let a = B.reg b in
    B.mad b a (r gid) (i 4) (p 0);
    let v = B.reg b in
    B.ld b Instr.Global v (r a) ();
    let bin = B.reg b in
    B.bin b Instr.And bin (r v) (i (bins - 1));
    let ba = B.reg b in
    B.mad b ba (r bin) (i 4) (p 1);
    let old = B.reg b in
    B.atom b Instr.Atom_add old (r ba) (i 1);
    B.exit_ b;
    B.finish b
  in
  let prepare ~scale =
    let blocks = 8 * scale in
    let total = blocks * threads in
    let kernel = build () in
    let mem = M.create () in
    let rng = Util.Rng.create 227 in
    let data = Util.Rng.i32_array rng total 100000 in
    let i_base = M.alloc mem (4 * total) in
    let b_base = M.alloc mem (4 * bins) in
    M.write_i32s mem i_base data;
    let launch =
      Kernel.launch kernel ~grid:(Kernel.dim3 blocks)
        ~block:(Kernel.dim3 threads) ~params:[| i_base; b_base |]
    in
    let expected = Array.make bins 0 in
    Array.iter
      (fun v ->
        let b = v land (bins - 1) in
        expected.(b) <- expected.(b) + 1)
      data;
    let verify mem' =
      Workload.check_i32 ~name:"HIST" ~expected (M.read_i32s mem' b_base bins)
    in
    { Workload.mem; launch; verify }
  in
  {
    Workload.abbr = "HIST";
    full_name = "histogram (global atomics)";
    suite = "extended";
    block_dim = (threads, 1);
    dimensionality = Workload.D1;
    prepare;
  }

(* ------------------------------------------------------------------ *)
(* spmv: CSR sparse matrix-vector product, one row per thread          *)
(* ------------------------------------------------------------------ *)

let spmv =
  let threads = 128 in
  let build () =
    let b = B.create ~name:"spmv_csr" ~nparams:5 () in
    let open B.O in
    (* params: 0=row_ptr 1=cols 2=vals 3=x 4=y *)
    let row = Util.global_id_x b in
    let rp = B.reg b in
    B.mad b rp (r row) (i 4) (p 0);
    let start_ = B.reg b in
    B.ld b Instr.Global start_ (r rp) ();
    let stop = B.reg b in
    B.ld b Instr.Global stop (r rp) ~off:4 ();
    let acc = B.reg b in
    B.mov b acc (f 0.0);
    let j = B.reg b in
    B.mov b j (r start_);
    let p_more = B.pred b in
    (* data-dependent trip count: intra-warp divergence by design *)
    let top = B.fresh_label b in
    let done_ = B.fresh_label b in
    B.place b top;
    B.setp b Instr.Scmp Instr.Ge p_more (r j) (r stop);
    B.bra b ~guard:(true, p_more) done_;
    let ca = B.reg b in
    B.mad b ca (r j) (i 4) (p 1);
    let col = B.reg b in
    B.ld b Instr.Global col (r ca) ();
    let va = B.reg b in
    B.mad b va (r j) (i 4) (p 2);
    let mv = B.reg b in
    B.ld b Instr.Global mv (r va) ();
    let xa = B.reg b in
    B.mad b xa (r col) (i 4) (p 3);
    let xv = B.reg b in
    B.ld b Instr.Global xv (r xa) ();
    B.fma b acc (r mv) (r xv) (r acc);
    B.add b j (r j) (i 1);
    B.bra b top;
    B.place b done_;
    let ya = B.reg b in
    B.mad b ya (r row) (i 4) (p 4);
    B.st b Instr.Global (r ya) (r acc);
    B.exit_ b;
    B.finish b
  in
  let prepare ~scale =
    let rows = threads * 2 * scale in
    let cols_n = 64 in
    let rng = Util.Rng.create 229 in
    (* ragged rows: 0..7 nonzeros each *)
    let row_len = Array.init rows (fun _ -> Util.Rng.int rng 8) in
    let row_ptr = Array.make (rows + 1) 0 in
    for i = 0 to rows - 1 do
      row_ptr.(i + 1) <- row_ptr.(i) + row_len.(i)
    done;
    let nnz = row_ptr.(rows) in
    let cols = Array.init nnz (fun _ -> Util.Rng.int rng cols_n) in
    let vals = Array.init nnz (fun _ -> Util.Rng.float rng 2.0) in
    let x = Array.init cols_n (fun _ -> Util.Rng.float rng 2.0) in
    let kernel = build () in
    let mem = M.create () in
    let rp_base = M.alloc mem (4 * (rows + 1)) in
    let c_base = M.alloc mem (4 * (max nnz 1)) in
    let v_base = M.alloc mem (4 * (max nnz 1)) in
    let x_base = M.alloc mem (4 * cols_n) in
    let y_base = M.alloc mem (4 * rows) in
    M.write_i32s mem rp_base row_ptr;
    M.write_i32s mem c_base cols;
    M.write_f32s mem v_base vals;
    M.write_f32s mem x_base x;
    let launch =
      Kernel.launch kernel
        ~grid:(Kernel.dim3 (rows / threads))
        ~block:(Kernel.dim3 threads)
        ~params:[| rp_base; c_base; v_base; x_base; y_base |]
    in
    let expected =
      Array.init rows (fun r ->
          let acc = ref 0.0 in
          for j = row_ptr.(r) to row_ptr.(r + 1) - 1 do
            acc := r32 (r32 (vals.(j) *. x.(cols.(j))) +. !acc)
          done;
          !acc)
    in
    let verify mem' =
      Workload.check_f32 ~tol:1e-3 ~name:"SPMV" ~expected
        (M.read_f32s mem' y_base rows)
    in
    { Workload.mem; launch; verify }
  in
  {
    Workload.abbr = "SPMV";
    full_name = "CSR sparse matrix-vector";
    suite = "extended";
    block_dim = (threads, 1);
    dimensionality = Workload.D1;
    prepare;
  }

(* ------------------------------------------------------------------ *)
(* nbody: all-pairs force accumulation, uniform body loads             *)
(* ------------------------------------------------------------------ *)

let nbody =
  let threads = 256 in
  let nbodies = 32 in
  let build () =
    let b = B.create ~name:"nbody" ~nparams:3 () in
    let open B.O in
    (* params: 0=bodies (x,y quads of 2) 1=out 2=nbodies *)
    let gid = Util.global_id_x b in
    let fx = B.reg b in
    B.un b Instr.Cvt_i2f fx (r gid);
    B.fmul b fx (r fx) (f 0.015625);
    let acc = B.reg b in
    B.mov b acc (f 0.0);
    Util.counted_loop b ~bound:(p 2) (fun t ->
        let a = B.reg b in
        B.mad b a (r t) (i 8) (p 0);
        let bx = B.reg b in
        B.ld b Instr.Global bx (r a) ();
        let bm = B.reg b in
        B.ld b Instr.Global bm (r a) ~off:4 ();
        let dx = B.reg b in
        B.fsub b dx (r bx) (r fx);
        let d2 = B.reg b in
        B.fmul b d2 (r dx) (r dx);
        B.fadd b d2 (r d2) (f 0.01);
        let inv = B.reg b in
        B.un b Instr.Fsqrt inv (r d2);
        B.un b Instr.Frcp inv (r inv);
        let inv3 = B.reg b in
        B.fmul b inv3 (r inv) (r inv);
        B.fmul b inv3 (r inv3) (r inv);
        let f_ = B.reg b in
        B.fmul b f_ (r bm) (r inv3);
        B.fma b acc (r f_) (r dx) (r acc));
    let o = B.reg b in
    B.mad b o (r gid) (i 4) (p 1);
    B.st b Instr.Global (r o) (r acc);
    B.exit_ b;
    B.finish b
  in
  let prepare ~scale =
    let blocks = 4 * scale in
    let total = blocks * threads in
    let kernel = build () in
    let mem = M.create () in
    let rng = Util.Rng.create 233 in
    let bodies =
      Array.init (nbodies * 2) (fun i ->
          if i mod 2 = 0 then Util.Rng.float rng 8.0
          else r32 (Util.Rng.float rng 1.0 +. 0.1))
    in
    let b_base = M.alloc mem (4 * nbodies * 2) in
    let o_base = M.alloc mem (4 * total) in
    M.write_f32s mem b_base bodies;
    let launch =
      Kernel.launch kernel ~grid:(Kernel.dim3 blocks)
        ~block:(Kernel.dim3 threads)
        ~params:[| b_base; o_base; nbodies |]
    in
    let expected =
      Array.init total (fun gid ->
          let fx = r32 (r32 (float_of_int gid) *. 0.015625) in
          let acc = ref 0.0 in
          for t = 0 to nbodies - 1 do
            let bx = bodies.(t * 2) and bm = bodies.((t * 2) + 1) in
            let dx = r32 (bx -. fx) in
            let d2 = r32 (r32 (dx *. dx) +. 0.01) in
            let inv = r32 (1.0 /. r32 (sqrt d2)) in
            let inv3 = r32 (r32 (inv *. inv) *. inv) in
            let f_ = r32 (bm *. inv3) in
            acc := r32 (r32 (f_ *. dx) +. !acc)
          done;
          !acc)
    in
    let verify mem' =
      Workload.check_f32 ~tol:1e-2 ~name:"NBODY" ~expected
        (M.read_f32s mem' o_base total)
    in
    { Workload.mem; launch; verify }
  in
  {
    Workload.abbr = "NBODY";
    full_name = "all-pairs n-body";
    suite = "extended";
    block_dim = (threads, 1);
    dimensionality = Workload.D1;
    prepare;
  }

(* ------------------------------------------------------------------ *)
(* stencil3d: 7-point stencil on a 3D field, 4x8x8 threadblocks        *)
(* ------------------------------------------------------------------ *)

let stencil3d =
  let nx = 4 and ny = 8 and nz = 8 in
  let build () =
    let b = B.create ~name:"stencil3d" ~nparams:5 () in
    let open B.O in
    (* params: 0=in 1=out 2=W 3=H 4=D; grid is 1D over z-slabs of blocks *)
    let x = B.reg b in
    B.mov b x tid_x;
    let y = B.reg b in
    B.mov b y tid_y;
    let z = B.reg b in
    B.mad b z ctaid_x ntid_z tid_z;
    let clamp dst v hi =
      B.bin b Instr.Max_s dst v (i 0);
      B.bin b Instr.Min_s dst (r dst) hi
    in
    let wm1 = B.reg b in
    B.sub b wm1 (p 2) (i 1);
    let hm1 = B.reg b in
    B.sub b hm1 (p 3) (i 1);
    let dm1 = B.reg b in
    B.sub b dm1 (p 4) (i 1);
    let addr dst xx yy zz =
      (* ((z*H + y)*W + x)*4 + in *)
      let t1 = B.reg b in
      B.mad b t1 zz (p 3) yy;
      B.mad b t1 (r t1) (p 2) xx;
      B.shl b dst (r t1) (i 2);
      B.add b dst (r dst) (p 0)
    in
    let load_at dst xx yy zz =
      let a = B.reg b in
      addr a xx yy zz;
      B.ld b Instr.Global dst (r a) ()
    in
    let c = B.reg b in
    load_at c (r x) (r y) (r z);
    let sum = B.reg b in
    B.fmul b sum (r c) (f (-6.0));
    let neighbor dx dy dz =
      let xx = B.reg b and yy = B.reg b and zz = B.reg b in
      B.add b xx (r x) (i dx);
      clamp xx (r xx) (r wm1);
      B.add b yy (r y) (i dy);
      clamp yy (r yy) (r hm1);
      B.add b zz (r z) (i dz);
      clamp zz (r zz) (r dm1);
      let v = B.reg b in
      load_at v (r xx) (r yy) (r zz);
      B.fadd b sum (r sum) (r v)
    in
    neighbor (-1) 0 0;
    neighbor 1 0 0;
    neighbor 0 (-1) 0;
    neighbor 0 1 0;
    neighbor 0 0 (-1);
    neighbor 0 0 1;
    let out = B.reg b in
    B.fma b out (r sum) (f 0.1) (r c);
    let oa = B.reg b in
    addr oa (r x) (r y) (r z);
    B.sub b oa (r oa) (p 0);
    B.add b oa (r oa) (p 1);
    B.st b Instr.Global (r oa) (r out);
    B.exit_ b;
    B.finish b
  in
  let prepare ~scale =
    let w = nx and h = ny and d = nz * 4 * scale in
    let kernel = build () in
    let mem = M.create () in
    let rng = Util.Rng.create 239 in
    let field = Util.Rng.f32_array rng (w * h * d) 4.0 in
    let i_base = M.alloc mem (4 * w * h * d) in
    let o_base = M.alloc mem (4 * w * h * d) in
    M.write_f32s mem i_base field;
    let launch =
      Kernel.launch kernel
        ~grid:(Kernel.dim3 (d / nz))
        ~block:(Kernel.dim3 nx ~y:ny ~z:nz)
        ~params:[| i_base; o_base; w; h; d |]
    in
    let at xx yy zz =
      let xx = max 0 (min (w - 1) xx)
      and yy = max 0 (min (h - 1) yy)
      and zz = max 0 (min (d - 1) zz) in
      field.((((zz * h) + yy) * w) + xx)
    in
    let expected =
      Array.init (w * h * d) (fun idx ->
          let x = idx mod w in
          let y = idx / w mod h in
          let z = idx / (w * h) in
          let c = at x y z in
          let sum = r32 (c *. -6.0) in
          let sum = r32 (sum +. at (x - 1) y z) in
          let sum = r32 (sum +. at (x + 1) y z) in
          let sum = r32 (sum +. at x (y - 1) z) in
          let sum = r32 (sum +. at x (y + 1) z) in
          let sum = r32 (sum +. at x y (z - 1)) in
          let sum = r32 (sum +. at x y (z + 1)) in
          r32 (r32 (sum *. 0.1) +. c))
    in
    let verify mem' =
      Workload.check_f32 ~tol:1e-3 ~name:"ST3D" ~expected
        (M.read_f32s mem' o_base (w * h * d))
    in
    { Workload.mem; launch; verify }
  in
  {
    Workload.abbr = "ST3D";
    full_name = "7-point 3D stencil";
    suite = "extended";
    block_dim = (nx, ny);
    dimensionality = Workload.D2;
    prepare;
  }

let all = [ reduction; transpose; histogram; spmv; nbody; stencil3d ]
