open Darsie_isa

module Rng = struct
  type t = { mutable s : int }

  let create seed = { s = (if seed = 0 then 0x9E3779B9 else seed land 0x3FFFFFFF) }

  let next t =
    (* xorshift over 30 bits, deterministic across platforms *)
    let x = t.s in
    let x = x lxor (x lsl 13) land 0x3FFFFFFF in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0x3FFFFFFF in
    t.s <- x;
    x

  let int t bound = if bound <= 0 then 0 else next t mod bound

  let r32 f = Int32.float_of_bits (Int32.bits_of_float f)

  let float t bound = r32 (float_of_int (next t) /. 1073741824.0 *. bound)

  let f32_array t n bound = Array.init n (fun _ -> float t bound)

  let i32_array t n bound = Array.init n (fun _ -> int t bound)
end

let r32 f = Int32.float_of_bits (Int32.bits_of_float f)

let counted_loop b ~bound body =
  let i = Builder.reg b in
  let p = Builder.pred b in
  Builder.mov b i (Builder.O.i 0);
  let top = Builder.here b in
  body i;
  Builder.add b i (Builder.O.r i) (Builder.O.i 1);
  Builder.setp b Instr.Scmp Instr.Lt p (Builder.O.r i) bound;
  Builder.bra b ~guard:(true, p) top

let global_id_x b =
  let r = Builder.reg b in
  Builder.mad b r Builder.O.ctaid_x Builder.O.ntid_x Builder.O.tid_x;
  r

let global_id_y b =
  let r = Builder.reg b in
  Builder.mad b r Builder.O.ctaid_y Builder.O.ntid_y Builder.O.tid_y;
  r
