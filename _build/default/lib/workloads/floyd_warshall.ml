(* FWS — Floyd-Warshall (Pannotia), 16x16 threadblocks.

   One k-step of all-pairs shortest paths:
   dist'[i][j] = min(dist[i][j], dist[i][k] + dist[k][j]).
   The dist[k][j] load uses a conditionally redundant affine address
   (k uniform, j = blockIdx.x*16 + tid.x), so its value is unstructured
   redundant; the kernel is memory-dominated, which is why the paper sees
   only a 13% speedup from a 21% instruction reduction on FWS. *)

open Darsie_isa
module B = Builder

let bdim = 16

let build () =
  let b = B.create ~name:"floydWarshall" ~nparams:4 () in
  let open B.O in
  (* params: 0=dist_in 1=dist_out 2=n 3=k *)
  let j = Util.global_id_x b in
  let i_ = Util.global_id_y b in
  let n4 = B.reg b in
  B.shl b n4 (p 2) (i 2);
  let j4 = B.reg b in
  B.shl b j4 (r j) (i 2);
  (* dist[i][j] *)
  let a_ij = B.reg b in
  B.mul b a_ij (r i_) (r n4);
  B.add b a_ij (r a_ij) (p 0);
  B.add b a_ij (r a_ij) (r j4);
  let d_ij = B.reg b in
  B.ld b Instr.Global d_ij (r a_ij) ();
  (* dist[i][k] *)
  let a_ik = B.reg b in
  B.mul b a_ik (r i_) (r n4);
  B.add b a_ik (r a_ik) (p 0);
  let k4 = B.reg b in
  B.shl b k4 (p 3) (i 2);
  B.add b a_ik (r a_ik) (r k4);
  let d_ik = B.reg b in
  B.ld b Instr.Global d_ik (r a_ik) ();
  (* dist[k][j]: k*n uniform + affine column -> CR address *)
  let a_kj = B.reg b in
  B.mul b a_kj (p 3) (r n4);
  B.add b a_kj (r a_kj) (p 0);
  B.add b a_kj (r a_kj) (r j4);
  let d_kj = B.reg b in
  B.ld b Instr.Global d_kj (r a_kj) ();
  let via = B.reg b in
  B.add b via (r d_ik) (r d_kj);
  let best = B.reg b in
  B.bin b Instr.Min_s best (r d_ij) (r via);
  let a_out = B.reg b in
  B.mul b a_out (r i_) (r n4);
  B.add b a_out (r a_out) (p 1);
  B.add b a_out (r a_out) (r j4);
  B.st b Instr.Global (r a_out) (r best);
  B.exit_ b;
  B.finish b

let reference ~n ~k dist =
  Array.init (n * n) (fun idx ->
      let i = idx / n and j = idx mod n in
      min dist.(idx) (dist.((i * n) + k) + dist.((k * n) + j)))

let prepare ~scale =
  let n = 64 * scale in
  let k = 5 in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 41 in
  let dist = Util.Rng.i32_array rng (n * n) 1000 in
  let in_base = Darsie_emu.Memory.alloc mem (4 * n * n) in
  let out_base = Darsie_emu.Memory.alloc mem (4 * n * n) in
  Darsie_emu.Memory.write_i32s mem in_base dist;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (n / bdim) ~y:(n / bdim))
      ~block:(Kernel.dim3 bdim ~y:bdim)
      ~params:[| in_base; out_base; n; k |]
  in
  let expected = reference ~n ~k dist in
  let verify mem' =
    Workload.check_i32 ~name:"FWS" ~expected
      (Darsie_emu.Memory.read_i32s mem' out_base (n * n))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "FWS";
    full_name = "Floyd-Warshall";
    suite = "Pannotia";
    block_dim = (16, 16);
    dimensionality = Workload.D2;
    prepare;
  }
