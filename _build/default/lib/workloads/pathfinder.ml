(* PT — pathfinder (Rodinia), 1024x1 threadblocks.

   Dynamic programming over a cost grid: each row, every column takes the
   cheapest of its three upper neighbours (clamped at tile edges with
   min/max, no divergence) plus its own cost. Rows ping-pong between two
   shared-memory buffers with a barrier per row. Each threadblock owns an
   independent 1024-column tile. *)

open Darsie_isa
module B = Builder

let cols = 1024

let build () =
  let b =
    B.create ~name:"pathfinder" ~nparams:3 ~shared_bytes:(2 * cols * 4) ()
  in
  let open B.O in
  (* params: 0=cost (rows x total_cols) 1=out 2=rows; total cols =
     nctaid.x * 1024 *)
  let gid = Util.global_id_x b in
  let total4 = B.reg b in
  B.mul b total4 nctaid_x (i (cols * 4));
  let g_addr = B.reg b in
  B.mad b g_addr (r gid) (i 4) (p 0);
  let c0 = B.reg b in
  B.ld b Instr.Global c0 (r g_addr) ();
  let sh = B.reg b in
  B.shl b sh tid_x (i 2);
  B.st b Instr.Shared (r sh) (r c0);
  (* clamped left/right shared offsets *)
  let left = B.reg b in
  B.sub b left tid_x (i 1);
  B.bin b Instr.Max_s left (r left) (i 0);
  B.shl b left (r left) (i 2);
  let right = B.reg b in
  B.add b right tid_x (i 1);
  B.bin b Instr.Min_s right (r right) (i (cols - 1));
  B.shl b right (r right) (i 2);
  B.bar b;
  let rows_m1 = B.reg b in
  B.sub b rows_m1 (p 2) (i 1);
  Util.counted_loop b ~bound:(r rows_m1) (fun it ->
      (* row rr = it + 1; ping-pong offsets from parity of rr *)
      let rr = B.reg b in
      B.add b rr (r it) (i 1);
      let par = B.reg b in
      B.bin b Instr.And par (r rr) (i 1);
      let p_odd = B.pred b in
      B.setp b Instr.Scmp Instr.Eq p_odd (r par) (i 1);
      let in_off = B.reg b in
      B.selp b in_off (i 0) (i (cols * 4)) p_odd;
      let out_off = B.reg b in
      B.selp b out_off (i (cols * 4)) (i 0) p_odd;
      let a_l = B.reg b in
      B.add b a_l (r left) (r in_off);
      let vl = B.reg b in
      B.ld b Instr.Shared vl (r a_l) ();
      let a_c = B.reg b in
      B.add b a_c (r sh) (r in_off);
      let vc = B.reg b in
      B.ld b Instr.Shared vc (r a_c) ();
      let a_r = B.reg b in
      B.add b a_r (r right) (r in_off);
      let vr = B.reg b in
      B.ld b Instr.Shared vr (r a_r) ();
      let best = B.reg b in
      B.bin b Instr.Min_s best (r vl) (r vc);
      B.bin b Instr.Min_s best (r best) (r vr);
      (* cost[rr][gid] *)
      let ca = B.reg b in
      B.mul b ca (r rr) (r total4);
      B.add b ca (r ca) (r g_addr);
      let cost = B.reg b in
      B.ld b Instr.Global cost (r ca) ();
      let nv = B.reg b in
      B.add b nv (r best) (r cost);
      let a_o = B.reg b in
      B.add b a_o (r sh) (r out_off);
      B.st b Instr.Shared (r a_o) (r nv);
      B.bar b);
  (* final row parity *)
  let par = B.reg b in
  B.bin b Instr.And par (r rows_m1) (i 1);
  let p_odd = B.pred b in
  B.setp b Instr.Scmp Instr.Eq p_odd (r par) (i 1);
  let off = B.reg b in
  B.selp b off (i (cols * 4)) (i 0) p_odd;
  let a_f = B.reg b in
  B.add b a_f (r sh) (r off);
  let final = B.reg b in
  B.ld b Instr.Shared final (r a_f) ();
  let o_addr = B.reg b in
  B.mad b o_addr (r gid) (i 4) (p 1);
  B.st b Instr.Global (r o_addr) (r final);
  B.exit_ b;
  B.finish b

let reference ~rows ~total cost =
  let prev = Array.init total (fun c -> cost.(c)) in
  let tiles = total / cols in
  for rr = 1 to rows - 1 do
    let cur = Array.make total 0 in
    for tile = 0 to tiles - 1 do
      for c = 0 to cols - 1 do
        let g = (tile * cols) + c in
        let l = (tile * cols) + max 0 (c - 1) in
        let r_ = (tile * cols) + min (cols - 1) (c + 1) in
        cur.(g) <-
          min (min prev.(l) prev.(g)) prev.(r_) + cost.((rr * total) + g)
      done
    done;
    Array.blit cur 0 prev 0 total
  done;
  prev

let prepare ~scale =
  let tiles = 2 * scale and rows = 12 in
  let total = tiles * cols in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 101 in
  let cost = Util.Rng.i32_array rng (rows * total) 10 in
  let c_base = Darsie_emu.Memory.alloc mem (4 * rows * total) in
  let o_base = Darsie_emu.Memory.alloc mem (4 * total) in
  Darsie_emu.Memory.write_i32s mem c_base cost;
  let launch =
    Kernel.launch kernel ~grid:(Kernel.dim3 tiles) ~block:(Kernel.dim3 cols)
      ~params:[| c_base; o_base; rows |]
  in
  let expected = reference ~rows ~total cost in
  let verify mem' =
    Workload.check_i32 ~name:"PT" ~expected
      (Darsie_emu.Memory.read_i32s mem' o_base total)
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "PT";
    full_name = "pathfinder";
    suite = "Rodinia";
    block_dim = (1024, 1);
    dimensionality = Workload.D1;
    prepare;
  }
