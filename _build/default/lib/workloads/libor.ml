(* LIB — LIBOR Monte Carlo (GPGPU-sim distribution), 256x1 threadblocks.

   Each thread evolves a small vector of forward rates over many
   timesteps. The per-step market data loads use uniform addresses and the
   per-step discounting (fdiv) is uniform too, so most of the loop is
   TB-uniform redundancy — the reason the paper reports a 75% instruction
   reduction on LIB (and a large slowdown when synchronization is forced,
   since the baseline has no __syncthreads at all). *)

open Darsie_isa
module B = Builder

let threads = 256

let nsteps = 40

let nrates = 2

let delta = 0.25

let build () =
  let b = B.create ~name:"libor" ~nparams:3 () in
  let open B.O in
  (* params: 0=z input (per thread) 1=out 2=lambda table (nrates) *)
  let gid = Util.global_id_x b in
  let z_addr = B.reg b in
  B.mad b z_addr (r gid) (i 4) (p 0);
  let z = B.reg b in
  B.ld b Instr.Global z (r z_addr) ();
  B.fmul b z (r z) (f 0.01);
  let rates = Array.init nrates (fun _ -> B.reg b) in
  Array.iteri
    (fun j rj ->
      let la = B.reg b in
      B.mov b la (p 2);
      let lv = B.reg b in
      B.ld b Instr.Global lv (r la) ~off:(4 * j) ();
      B.fadd b rj (r lv) (r z))
    rates;
  (* Uniform path state: the discount-factor accumulation every thread
     computes identically — the bulk of the real LIBOR loop. *)
  let disc = B.reg b in
  B.mov b disc (f 1.0);
  let acc_u = B.reg b in
  B.mov b acc_u (f 0.0);
  Util.counted_loop b ~bound:(i nsteps) (fun t ->
      (* uniform market-data load: lambda[t & 3] *)
      let idx = B.reg b in
      B.bin b Instr.And idx (r t) (i (nrates - 1));
      let la = B.reg b in
      B.mad b la (r idx) (i 4) (p 2);
      let lam = B.reg b in
      B.ld b Instr.Global lam (r la) ();
      (* con2 = lam*delta / (1 + lam*delta), uniform SFU division *)
      let con = B.reg b in
      B.fmul b con (r lam) (f delta);
      let den = B.reg b in
      B.fadd b den (r con) (f 1.0);
      let con2 = B.reg b in
      B.bin b Instr.Fdiv con2 (r con) (r den);
      (* uniform discounting chain (TB-invariant) *)
      B.fmul b disc (r disc) (r con2);
      B.fadd b acc_u (r acc_u) (r disc);
      let vol = B.reg b in
      B.fmul b vol (r lam) (f 0.05);
      B.fma b vol (r vol) (r con2) (r con);
      (* the thin per-thread component: rate evolution *)
      B.fma b rates.(0) (r rates.(0)) (r con2) (r z);
      for j = 1 to nrates - 1 do
        B.fma b rates.(j) (r rates.(j)) (r vol) (r rates.(j - 1))
      done);
  let payoff = B.reg b in
  B.fadd b payoff (r rates.(0)) (r rates.(1));
  B.fmul b payoff (r payoff) (f 0.25);
  B.fma b payoff (r acc_u) (f 0.01) (r payoff);
  let o_addr = B.reg b in
  B.mad b o_addr (r gid) (i 4) (p 1);
  B.st b Instr.Global (r o_addr) (r payoff);
  B.exit_ b;
  B.finish b

let reference zs lambdas =
  let r32 = Util.r32 in
  Array.map
    (fun z0 ->
      let z = r32 (z0 *. 0.01) in
      let rates = Array.init nrates (fun j -> r32 (lambdas.(j) +. z)) in
      let disc = ref 1.0 and acc_u = ref 0.0 in
      for t = 0 to nsteps - 1 do
        let lam = lambdas.(t land (nrates - 1)) in
        let con = r32 (lam *. delta) in
        let den = r32 (con +. 1.0) in
        let con2 = r32 (con /. den) in
        disc := r32 (!disc *. con2);
        acc_u := r32 (!acc_u +. !disc);
        let vol = r32 (lam *. 0.05) in
        let vol = r32 (r32 (vol *. con2) +. con) in
        rates.(0) <- r32 (r32 (rates.(0) *. con2) +. z);
        for j = 1 to nrates - 1 do
          rates.(j) <- r32 (r32 (rates.(j) *. vol) +. rates.(j - 1))
        done
      done;
      let p = r32 (rates.(0) +. rates.(1)) in
      let p = r32 (p *. 0.25) in
      r32 (r32 (!acc_u *. 0.01) +. p))
    zs

let prepare ~scale =
  let npaths = threads * 8 * scale in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 131 in
  let zs = Util.Rng.f32_array rng npaths 1.0 in
  let lambdas = Array.init nrates (fun _ -> Util.Rng.float rng 0.1) in
  let z_base = Darsie_emu.Memory.alloc mem (4 * npaths) in
  let o_base = Darsie_emu.Memory.alloc mem (4 * npaths) in
  let l_base = Darsie_emu.Memory.alloc mem (4 * nrates) in
  Darsie_emu.Memory.write_f32s mem z_base zs;
  Darsie_emu.Memory.write_f32s mem l_base lambdas;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 (npaths / threads))
      ~block:(Kernel.dim3 threads)
      ~params:[| z_base; o_base; l_base |]
  in
  let expected = reference zs lambdas in
  let verify mem' =
    Workload.check_f32 ~tol:1e-3 ~name:"LIB" ~expected
      (Darsie_emu.Memory.read_f32s mem' o_base npaths)
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "LIB";
    full_name = "LIBOR Monte Carlo";
    suite = "GPGPU-sim dist";
    block_dim = (256, 1);
    dimensionality = Workload.D1;
    prepare;
  }
