(* BP — Backprop layerforward (Rodinia), 16x16 threadblocks.

   Each block multiplies a 16-element input slice against a 16x16 weight
   tile in shared memory and tree-reduces the products along the y
   dimension. The reduction's `ty < s` steps cause warp-level divergence
   (and intra-warp divergence at the final step), exercising DARSIE's
   majority-path handling; barriers between steps reset the majority mask
   as in the paper's §4.3.3. *)

open Darsie_isa
module B = Builder

let bdim = 16

(* shared layout: input_node[16] floats at 0, matrix[16][16] at 64 *)
let matrix_base = 64

let build () =
  let b =
    B.create ~name:"bpnn_layerforward" ~nparams:4
      ~shared_bytes:(matrix_base + (bdim * bdim * 4))
      ()
  in
  let open B.O in
  (* params: 0=input 1=weight 2=partial_out 3=wcols *)
  let is_first_col = B.pred b in
  B.setp b Instr.Scmp Instr.Eq is_first_col tid_x (i 0);
  (* threads in column 0 stage the input slice into shared memory *)
  let in_addr = B.reg b in
  B.mad b in_addr ctaid_y (i bdim) tid_y;
  B.shl b in_addr (r in_addr) (i 2);
  B.add b in_addr (r in_addr) (p 0);
  let in_v = B.reg b in
  B.emit b ~guard:(true, is_first_col)
    (Instr.Ld (Instr.Global, in_v, Instr.Reg in_addr, 0));
  let sh_in = B.reg b in
  B.shl b sh_in tid_y (i 2);
  B.emit b ~guard:(true, is_first_col)
    (Instr.St (Instr.Shared, Instr.Reg sh_in, 0, Instr.Reg in_v));
  B.bar b;
  (* weight tile load and product *)
  let row = B.reg b in
  B.mad b row ctaid_y (i bdim) tid_y;
  let col = B.reg b in
  B.mad b col ctaid_x (i bdim) tid_x;
  let w4 = B.reg b in
  B.shl b w4 (p 3) (i 2);
  let w_addr = B.reg b in
  B.mul b w_addr (r row) (r w4);
  B.add b w_addr (r w_addr) (p 1);
  let col4 = B.reg b in
  B.shl b col4 (r col) (i 2);
  B.add b w_addr (r w_addr) (r col4);
  let wt = B.reg b in
  B.ld b Instr.Global wt (r w_addr) ();
  let node = B.reg b in
  B.ld b Instr.Shared node (r sh_in) ();
  let prod = B.reg b in
  B.fmul b prod (r wt) (r node);
  let slot = B.reg b in
  B.mad b slot tid_y (i bdim) tid_x;
  B.shl b slot (r slot) (i 2);
  B.add b slot (r slot) (i matrix_base);
  B.st b Instr.Shared (r slot) (r prod);
  B.bar b;
  (* tree reduction along y: s = 8, 4, 2, 1 *)
  Util.counted_loop b ~bound:(i 4) (fun t ->
      let s = B.reg b in
      B.mov b s (i 8);
      B.bin b Instr.Shr_u s (r s) (r t);
      let skip = B.fresh_label b in
      let p_out = B.pred b in
      B.setp b Instr.Scmp Instr.Ge p_out tid_y (r s);
      B.bra b ~guard:(true, p_out) skip;
      let other = B.reg b in
      B.add b other tid_y (r s);
      B.mad b other (r other) (i bdim) tid_x;
      B.shl b other (r other) (i 2);
      B.add b other (r other) (i matrix_base);
      let ov = B.reg b in
      B.ld b Instr.Shared ov (r other) ();
      let mine = B.reg b in
      B.ld b Instr.Shared mine (r slot) ();
      B.fadd b mine (r mine) (r ov);
      B.st b Instr.Shared (r slot) (r mine);
      B.place b skip;
      B.bar b);
  (* row 0 writes the per-block partial sums *)
  let p_row0 = B.pred b in
  B.setp b Instr.Scmp Instr.Eq p_row0 tid_y (i 0);
  let res_slot = B.reg b in
  B.shl b res_slot tid_x (i 2);
  B.add b res_slot (r res_slot) (i matrix_base);
  let res = B.reg b in
  B.ld b Instr.Shared res (r res_slot) ();
  let o_addr = B.reg b in
  B.mad b o_addr ctaid_y nctaid_x ctaid_x;
  B.mad b o_addr (r o_addr) (i bdim) tid_x;
  B.shl b o_addr (r o_addr) (i 2);
  B.add b o_addr (r o_addr) (p 2);
  B.emit b ~guard:(true, p_row0)
    (Instr.St (Instr.Global, Instr.Reg o_addr, 0, Instr.Reg res));
  B.exit_ b;
  B.finish b

let reference ~gx ~gy ~wcols input weight =
  let r32 = Util.r32 in
  let out = Array.make (gx * gy * bdim) 0.0 in
  for by = 0 to gy - 1 do
    for bx = 0 to gx - 1 do
      for tx = 0 to bdim - 1 do
        (* tree reduction order: pairwise with strides 8,4,2,1 *)
        let vals =
          Array.init bdim (fun ty ->
              r32
                (weight.((((by * bdim) + ty) * wcols) + (bx * bdim) + tx)
                *. input.((by * bdim) + ty)))
        in
        let s = ref 8 in
        while !s >= 1 do
          for ty = 0 to !s - 1 do
            vals.(ty) <- r32 (vals.(ty) +. vals.(ty + !s))
          done;
          s := !s / 2
        done;
        out.((((by * gx) + bx) * bdim) + tx) <- vals.(0)
      done
    done
  done;
  out

let prepare ~scale =
  let gx = 2 * scale and gy = 4 in
  let wcols = gx * bdim and wrows = gy * bdim in
  let kernel = build () in
  let mem = Darsie_emu.Memory.create () in
  let rng = Util.Rng.create 71 in
  let input = Util.Rng.f32_array rng wrows 1.0 in
  let weight = Util.Rng.f32_array rng (wrows * wcols) 1.0 in
  let i_base = Darsie_emu.Memory.alloc mem (4 * wrows) in
  let w_base = Darsie_emu.Memory.alloc mem (4 * wrows * wcols) in
  let o_base = Darsie_emu.Memory.alloc mem (4 * gx * gy * bdim) in
  Darsie_emu.Memory.write_f32s mem i_base input;
  Darsie_emu.Memory.write_f32s mem w_base weight;
  let launch =
    Kernel.launch kernel
      ~grid:(Kernel.dim3 gx ~y:gy)
      ~block:(Kernel.dim3 bdim ~y:bdim)
      ~params:[| i_base; w_base; o_base; wcols |]
  in
  let expected = reference ~gx ~gy ~wcols input weight in
  let verify mem' =
    Workload.check_f32 ~tol:1e-3 ~name:"BP" ~expected
      (Darsie_emu.Memory.read_f32s mem' o_base (gx * gy * bdim))
  in
  { Workload.mem; launch; verify }

let workload =
  {
    Workload.abbr = "BP";
    full_name = "Backprop";
    suite = "Rodinia";
    block_dim = (16, 16);
    dimensionality = Workload.D2;
    prepare;
  }
