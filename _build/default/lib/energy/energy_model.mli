(** GPUWattch-style event-based energy accounting.

    Each timing-model event carries a per-event energy; total energy is the
    dot product of the event counters with these coefficients plus
    leakage proportional to runtime. Register-file energies come from the
    paper's Table 2 (14.2 pJ/read, 25.9 pJ/write); the rest are set at
    GPUWattch-scale magnitudes. The absolute joules are not meant to match
    the authors' testbed — the normalized reductions (Figure 11) are the
    reproduced quantity. *)

type params = {
  e_fetch_decode : float;  (** I-cache access + decode, per warp instr (pJ) *)
  e_issue : float;  (** scheduler + scoreboard, per issued warp instr *)
  e_rf_read : float;  (** per vector-register read (14.2 pJ, Table 2) *)
  e_rf_write : float;  (** per vector-register write (25.9 pJ) *)
  e_alu : float;  (** per warp-wide ALU operation *)
  e_sfu : float;
  e_shared : float;  (** per shared-memory access *)
  e_l1 : float;  (** per L1 access *)
  e_dram : float;  (** per 128B DRAM transaction *)
  e_skip_probe : float;  (** DARSIE PC-skip-table probe *)
  e_rename : float;  (** DARSIE rename/version-table access *)
  e_coalescer : float;  (** DARSIE PC-coalescer use *)
  e_majority : float;  (** majority-mask update *)
  p_static : float;  (** leakage per SM per cycle (pJ) *)
}

val default_params : params

type breakdown = {
  frontend : float;  (** fetch + decode + issue *)
  register_file : float;
  execute : float;  (** ALU + SFU *)
  memory : float;  (** shared + L1 + DRAM *)
  static : float;
  darsie_overhead : float;
  total : float;  (** picojoules *)
}

val account : ?params:params -> Darsie_timing.Config.t -> Darsie_timing.Stats.t -> breakdown

val overhead_fraction : breakdown -> float
(** DARSIE's added-structure energy as a fraction of the total (the paper
    reports 0.95%). *)

val pp : Format.formatter -> breakdown -> unit
