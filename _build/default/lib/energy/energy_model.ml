open Darsie_timing

type params = {
  e_fetch_decode : float;
  e_issue : float;
  e_rf_read : float;
  e_rf_write : float;
  e_alu : float;
  e_sfu : float;
  e_shared : float;
  e_l1 : float;
  e_dram : float;
  e_skip_probe : float;
  e_rename : float;
  e_coalescer : float;
  e_majority : float;
  p_static : float;
}

let default_params =
  {
    e_fetch_decode = 28.0;
    e_issue = 8.0;
    e_rf_read = 14.2;
    e_rf_write = 25.9;
    e_alu = 45.0;
    e_sfu = 180.0;
    e_shared = 34.0;
    e_l1 = 42.0;
    e_dram = 320.0;
    e_skip_probe = 1.1;
    e_rename = 1.3;
    e_coalescer = 0.6;
    e_majority = 0.2;
    p_static = 260.0;
  }

type breakdown = {
  frontend : float;
  register_file : float;
  execute : float;
  memory : float;
  static : float;
  darsie_overhead : float;
  total : float;
}

let account ?(params = default_params) (cfg : Config.t) (s : Stats.t) =
  let f = float_of_int in
  let frontend =
    (f s.Stats.fetched *. params.e_fetch_decode)
    +. (f (s.Stats.issued + s.Stats.dropped_issue) *. params.e_issue)
  in
  let register_file =
    (f s.Stats.rf_reads *. params.e_rf_read)
    +. (f s.Stats.rf_writes *. params.e_rf_write)
  in
  let execute =
    (f s.Stats.alu_ops *. params.e_alu) +. (f s.Stats.sfu_ops *. params.e_sfu)
  in
  let memory =
    (f s.Stats.shared_accesses *. params.e_shared)
    +. (f s.Stats.l1_accesses *. params.e_l1)
    +. (f s.Stats.dram_transactions *. params.e_dram)
  in
  let static =
    f s.Stats.cycles *. params.p_static *. f cfg.Config.num_sms
  in
  let darsie_overhead =
    (f s.Stats.skip_table_probes *. params.e_skip_probe)
    +. (f s.Stats.rename_accesses *. params.e_rename)
    +. (f s.Stats.coalescer_probes *. params.e_coalescer)
    +. (f s.Stats.majority_updates *. params.e_majority)
  in
  let total =
    frontend +. register_file +. execute +. memory +. static
    +. darsie_overhead
  in
  { frontend; register_file; execute; memory; static; darsie_overhead; total }

let overhead_fraction b = if b.total = 0.0 then 0.0 else b.darsie_overhead /. b.total

let pp fmt b =
  Format.fprintf fmt
    "total=%.3e pJ (frontend=%.2e rf=%.2e exec=%.2e mem=%.2e static=%.2e \
     darsie=%.2e)"
    b.total b.frontend b.register_file b.execute b.memory b.static
    b.darsie_overhead
