lib/energy/energy_model.mli: Darsie_timing Format
