lib/energy/area.ml: Config Darsie_timing Format
