lib/energy/energy_model.ml: Config Darsie_timing Format Stats
