lib/energy/area.mli: Darsie_timing Format
