open Darsie_timing

type t = {
  skip_entry_bits : int;
  skip_table_bits : int;
  majority_bits : int;
  rename_entry_bits : int;
  rename_bits : int;
  total_bits : int;
  total_bytes : float;
  fraction_of_rf : float;
}

let estimate ?(cfg = Config.default) () =
  let pc_bits = 48 in
  let warp_mask_bits = 32 in
  let skip_entry_bits = pc_bits + warp_mask_bits + 1 + 1 in
  let tbs = cfg.Config.max_tbs_per_sm in
  let skip_table_bits =
    skip_entry_bits * cfg.Config.skip_entries_per_tb * tbs
  in
  let majority_bits = warp_mask_bits * tbs in
  (* 8-bit named register (CUDA allows 255 per thread) + 8-bit physical
     register tag + 5-bit version number. *)
  let rename_entry_bits = 8 + 8 + 5 in
  let rename_bits = rename_entry_bits * cfg.Config.rename_regs_per_tb * tbs in
  let total_bits = skip_table_bits + majority_bits + rename_bits in
  let total_bytes = float_of_int total_bits /. 8.0 in
  let rf_bytes =
    float_of_int (cfg.Config.regfile_vregs * cfg.Config.warp_size * 4)
  in
  {
    skip_entry_bits;
    skip_table_bits;
    majority_bits;
    rename_entry_bits;
    rename_bits;
    total_bits;
    total_bytes;
    fraction_of_rf = total_bytes /. rf_bytes;
  }

let pp fmt t =
  Format.fprintf fmt
    "skip table: %d bits/entry, %d bits total; majority mask: %d bits; \
     rename/version: %d bits/entry, %d bits total; total %.2f kB (%.1f%% of \
     the register file)"
    t.skip_entry_bits t.skip_table_bits t.majority_bits t.rename_entry_bits
    t.rename_bits
    (t.total_bytes /. 1024.0)
    (100.0 *. t.fraction_of_rf)
