(** Area estimate of DARSIE's added structures (paper §6.3).

    Reproduces the paper's bit-level arithmetic: a PC skip-table entry is
    82 bits (48-bit PC + 32-bit warp-waiting mask + IsLoad + LeaderWB),
    with 8 entries per TB and up to 32 resident TBs per SM; the majority
    path mask is 32 bits per TB; rename/version-table entries are 21 bits
    (8-bit named register + 8-bit physical tag + 5-bit version), 32 per TB.
    The paper totals this at 5.31 kB — 2.1% of the Pascal register file. *)

type t = {
  skip_entry_bits : int;  (** 82 in the paper *)
  skip_table_bits : int;
  majority_bits : int;
  rename_entry_bits : int;  (** 21 *)
  rename_bits : int;
  total_bits : int;
  total_bytes : float;
  fraction_of_rf : float;
      (** of the per-SM register file (vregs × warp width × 4B) *)
}

val estimate : ?cfg:Darsie_timing.Config.t -> unit -> t
(** Defaults to the paper's parameters: 8 skip entries/TB, 32 rename
    registers/TB, 32 TBs/SM, warp size 32. *)

val pp : Format.formatter -> t -> unit
