(* The darsie command-line driver.

   Subcommands:
     list                      - Table 1 application registry
     asm APP                   - PTX-lite assembly of a workload kernel
     analyze APP               - compiler markings (Figure 6 style)
     run APP [-m MACHINE]      - functional + timing run of one app
     profile APP [-m MACHINE]  - instrumented run: stall attribution,
                                 JSON metrics, Chrome trace, CSV series
     annotate APP [-m MACHINE] - per-instruction hotspot profile:
                                 annotated disassembly with cycle%,
                                 skip% and stall-bucket columns
     explain APP [-m MACHINE]  - why each DR/CR instruction was (or was
                                 not) eliminated: the skip ledger's
                                 dynamic fates joined with the
                                 compiler's static story
     bench-compare BASE CUR    - diff two bench trajectory records,
                                 exit nonzero on statistical regression
     telemetry-summary FILE    - render a --telemetry document: host
                                 phases ranked by self wall, per-domain
                                 utilization, counter totals
     limit APP                 - redundancy limit study of one app
     experiment ID             - regenerate a paper figure/table
     check [APP]               - robustness checks: differential oracle,
                                 fault injection, budgeted crash-isolated
                                 suite execution
     area                      - Section 6.3 area estimate

   Every subcommand exits nonzero when a simulation invariant is
   violated (functional check fails, the stall-cycle attribution does
   not sum to the simulated cycles, or the skip ledger does not conserve
   eligible occurrences), so CI catches model drift. *)

open Cmdliner
module W = Darsie_workloads.Workload
module Obs = Darsie_obs
module Tel = Darsie_telemetry.Telemetry
module Host_trace = Darsie_telemetry.Host_trace

let find_app abbr =
  match Darsie_workloads.Registry.find abbr with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown application %S (try: %s)" abbr
         (String.concat ", " Darsie_workloads.Registry.abbrs))

let app_arg =
  let doc = "Application abbreviation from Table 1 (e.g. MM, LIB, HS)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let scale_arg =
  let doc = "Input scale factor (1 = default benchmarked size)." in
  Arg.(value & opt int 1 & info [ "scale"; "s" ] ~docv:"N" ~doc)

let machine_conv =
  let parse s =
    match String.uppercase_ascii s with
    | "BASE" -> Ok Darsie_harness.Suite.Base
    | "UV" -> Ok Darsie_harness.Suite.Uv
    | "DAC" | "DAC-IDEAL" -> Ok Darsie_harness.Suite.Dac_ideal
    | "DARSIE" -> Ok Darsie_harness.Suite.Darsie
    | "DARSIE-IGNORE-STORE" -> Ok Darsie_harness.Suite.Darsie_ignore_store
    | "DARSIE-NO-CF-SYNC" -> Ok Darsie_harness.Suite.Darsie_no_cf_sync
    | "SILICON-SYNC" -> Ok Darsie_harness.Suite.Silicon_sync
    | _ -> Error (`Msg (Printf.sprintf "unknown machine %S" s))
  in
  Arg.conv (parse, fun fmt m ->
      Format.pp_print_string fmt (Darsie_harness.Suite.machine_name m))

let machine_arg =
  let doc =
    "Machine configuration: BASE, UV, DAC-IDEAL, DARSIE, \
     DARSIE-IGNORE-STORE, DARSIE-NO-CF-SYNC or SILICON-SYNC."
  in
  Arg.(
    value
    & opt machine_conv Darsie_harness.Suite.Darsie
    & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc)

let or_die = function
  | Ok x -> x
  | Error msg ->
    prerr_endline msg;
    exit 1

let jobs_arg =
  let doc =
    "Fan simulations out over $(docv) parallel domains. 0 (the default) \
     means all available cores; 1 reproduces the serial execution order \
     bit-for-bit. Merged outputs are byte-identical for every value."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let effective_jobs n =
  if n >= 1 then n else Darsie_harness.Parallel.default_jobs ()

let cache_arg =
  let doc =
    "Reuse functional traces from the persistent content-addressed cache \
     rooted at $(docv) (created on demand; safe to delete at any time). \
     The trace is machine-invariant, so a cached entry serves every \
     machine configuration and repeat run."
  in
  Arg.(
    value
    & opt ~vopt:(Some Darsie_trace.Cache.default_dir) (some string) None
    & info [ "cache" ] ~docv:"DIR" ~doc)

let cache_of = Option.map (fun dir -> Darsie_trace.Cache.create ~dir ())

let no_ff_arg =
  let doc =
    "Disable event-driven idle-cycle fast-forwarding and step every cycle. \
     Results are bit-identical either way; this is the escape hatch for \
     timing-model debugging."
  in
  Arg.(value & flag & info [ "no-fast-forward" ] ~doc)

(* The three fidelity knobs (docs/machine-model.md). Defaults reproduce
   the stock machine bit-for-bit; every non-default setting is covered
   by the fuzz stack and test_fidelity. *)
let issue_width_arg =
  let doc =
    "Fetch-bundle width: up to $(docv) sequential instructions fetched from \
     the selected warp per cycle (2 models dual-issue superscalar fetch; 1, \
     the default, is the classic single fetch)."
  in
  Arg.(value & opt int 1 & info [ "issue-width" ] ~docv:"W" ~doc)

let mshrs_arg =
  let doc =
    "Per-warp MSHR limit: at most $(docv) outstanding global-load misses per \
     warp, completing out of order; 0 (the default) models unlimited MSHRs."
  in
  Arg.(value & opt int 0 & info [ "mshrs" ] ~docv:"N" ~doc)

let smem_banks_arg =
  let doc =
    "Shared-memory banks with serialized conflict replay: conflicting \
     accesses replay through $(docv) banks one cycle per extra bank access, \
     holding the shared port; 0 (the default) keeps the legacy latency-only \
     conflict model."
  in
  Arg.(value & opt int 0 & info [ "smem-banks" ] ~docv:"N" ~doc)

(* The two host-side sharding knobs. Unlike the fidelity knobs they are
   timing-invisible: sharded runs are bit-identical to serial stepping
   (test_shard), so neither appears in the metrics machine_config echo. *)
let sm_domains_arg =
  let doc =
    "Shard each simulation's SM array across $(docv) worker domains, \
     advancing in lockstep epochs with DRAM traffic replayed in canonical \
     serial order at every barrier. Results are bit-identical for every \
     value; 1 (the default) is the serial cycle loop, 0 auto-sizes to the \
     available cores. Under a $(b,-j) pool the per-run domains are divided \
     down so pool x sharding never oversubscribes the machine."
  in
  Arg.(value & opt int 1 & info [ "sm-domains" ] ~docv:"N" ~doc)

let epoch_slack_arg =
  let doc =
    "Epoch length (cycles between shard barriers) for $(b,--sm-domains). 0 \
     (the default) auto-sizes to the soundness bound l1_lat + dram_lat; \
     explicit values are clamped to that bound. Timing-invisible."
  in
  Arg.(value & opt int 0 & info [ "epoch-slack" ] ~docv:"CYCLES" ~doc)

let knobs_term =
  Term.(
    const (fun issue_width mshrs smem_banks sm_domains epoch_slack ->
        (issue_width, mshrs, smem_banks, sm_domains, epoch_slack))
    $ issue_width_arg $ mshrs_arg $ smem_banks_arg $ sm_domains_arg
    $ epoch_slack_arg)

let cfg_of ?(base = Darsie_timing.Config.default) no_ff
    (issue_width, mshrs, smem_banks, sm_domains, epoch_slack) =
  if issue_width < 1 then or_die (Error "--issue-width must be >= 1");
  if mshrs < 0 then or_die (Error "--mshrs must be >= 0");
  if smem_banks < 0 then or_die (Error "--smem-banks must be >= 0");
  if sm_domains < 0 then or_die (Error "--sm-domains must be >= 0");
  if epoch_slack < 0 then or_die (Error "--epoch-slack must be >= 0");
  {
    base with
    Darsie_timing.Config.fast_forward = not no_ff;
    issue_width;
    mshrs;
    smem_banks;
    sm_domains;
    epoch_slack;
  }

let report_cache = function
  | Some c -> Printf.printf "%s\n" (Darsie_trace.Cache.summary c)
  | None -> ()

(* Simulation invariant violations accumulate here; [finish ()] is every
   run-producing subcommand's last statement. *)
let violations : string list ref = ref []

let violation fmt =
  Printf.ksprintf (fun msg -> violations := msg :: !violations) fmt

let finish () =
  match List.rev !violations with
  | [] -> ()
  | vs ->
    List.iter (fun v -> Printf.eprintf "invariant violation: %s\n" v) vs;
    exit 2

let telemetry_arg =
  let doc =
    "Record host-side telemetry (phase spans, domain-pool and trace-cache \
     counters) and write it to $(docv): a Chrome trace_event document \
     (loadable in Perfetto, one track per domain) that also carries the \
     versioned host_telemetry summary section; render it with $(b,darsie \
     telemetry-summary)."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Emit rate-limited progress heartbeats on stderr: suite item k/n with \
     ETA, simulation cycles/sec, pool straggler warnings."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let progress_json_arg =
  let doc =
    "Like $(b,--progress) but machine-readable: one NDJSON object per line \
     on stderr."
  in
  Arg.(value & flag & info [ "progress-json" ] ~doc)

(* Every telemetry-capable subcommand calls this first. It configures the
   progress channel, enables span recording when a file was requested,
   and returns the finalizer that snapshots, self-validates and writes
   the document — called right before [finish ()] so an invalid export
   still reaches disk but trips exit 2. *)
let setup_telemetry telemetry_file progress progress_json =
  if progress_json then Tel.Progress.configure Tel.Progress.Ndjson
  else if progress then Tel.Progress.configure Tel.Progress.Human;
  match telemetry_file with
  | None -> fun () -> ()
  | Some path ->
    Tel.enable ();
    fun () ->
      let doc = Host_trace.document (Tel.snapshot ()) in
      (match Darsie_harness.Metrics.validate_telemetry doc with
      | Ok () -> ()
      | Error msg -> violation "telemetry document invalid (%s)" msg);
      Darsie_harness.Metrics.write_file path doc;
      Printf.printf "telemetry: %s\n" path

let check_run abbr (r : Darsie_harness.Suite.run) =
  (match Darsie_timing.Gpu.check_attribution r.Darsie_harness.Suite.gpu with
  | Ok () -> ()
  | Error msg -> violation "%s: %s" abbr msg);
  match Darsie_timing.Gpu.check_ledger r.Darsie_harness.Suite.gpu with
  | Ok () -> ()
  | Error msg -> violation "%s: %s" abbr msg

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () = print_string (Darsie_harness.Figures.table1 ()) in
  Cmd.v (Cmd.info "list" ~doc:"List the Table-1 applications")
    Term.(const run $ const ())

let asm_cmd =
  let run abbr =
    let w = or_die (find_app abbr) in
    let p = w.W.prepare ~scale:1 in
    print_string
      (Darsie_isa.Printer.kernel_to_string p.W.launch.Darsie_isa.Kernel.kernel)
  in
  Cmd.v (Cmd.info "asm" ~doc:"Print a workload kernel's PTX-lite assembly")
    Term.(const run $ app_arg)

let analyze_cmd =
  let run abbr =
    let w = or_die (find_app abbr) in
    let p = w.W.prepare ~scale:1 in
    let launch = p.W.launch in
    let analysis =
      Darsie_compiler.Analysis.analyze launch.Darsie_isa.Kernel.kernel
    in
    Format.printf "%a" Darsie_compiler.Analysis.pp_markings analysis;
    let promo = Darsie_compiler.Promotion.resolve analysis launch ~warp_size:32 in
    Format.printf
      "\nlaunch-time promotion: %s (x-dim condition %s)\n\
       static TB-redundant instructions: %d\n"
      (if promo.Darsie_compiler.Promotion.promoted then "CR -> DR"
       else "CR -> vector")
      (if promo.Darsie_compiler.Promotion.promoted then "holds" else "fails")
      (Darsie_compiler.Promotion.skip_count_upper_bound promo)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Show the compiler's DR/CR/V markings (Figure 6 style)")
    Term.(const run $ app_arg)

let json_arg =
  let doc = "Write the metrics document (JSON, versioned schema) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run abbr machine scale json_file jobs cache_dir no_ff knobs
      telemetry_file progress progress_json =
    let write_telemetry = setup_telemetry telemetry_file progress progress_json in
    let w = or_die (find_app abbr) in
    let cfg = cfg_of no_ff knobs in
    let cache = cache_of cache_dir in
    Printf.printf "preparing %s (scale %d)...\n%!" w.W.abbr scale;
    let app = Darsie_harness.Suite.load_app ~scale ?cache w in
    (* functional verification on a fresh copy *)
    let fresh = w.W.prepare ~scale in
    (match
       Darsie_emu.Interp.run fresh.W.mem fresh.W.launch |> fun _ ->
       fresh.W.verify fresh.W.mem
     with
    | Ok () -> Printf.printf "functional check: OK\n"
    | Error e ->
      Printf.printf "functional check: FAILED (%s)\n" e;
      violation "%s: functional check failed (%s)" abbr e);
    (* two sims fan out here, so the core budget divides by that pool
       size, not by the full -j default *)
    let pool = min (effective_jobs jobs) 2 in
    let cfg = Darsie_harness.Suite.divide_domains ~jobs:pool cfg in
    let base, r =
      match
        Darsie_harness.Parallel.map ~jobs:pool
          ~label:Darsie_harness.Suite.machine_name
          (Darsie_harness.Suite.run_app ~cfg app)
          [ Darsie_harness.Suite.Base; machine ]
      with
      | [ base; r ] -> (base, r)
      | _ -> assert false
    in
    let open Darsie_timing in
    Printf.printf "machine: %s\n" (Darsie_harness.Suite.machine_name machine);
    Printf.printf "cycles: %d (baseline %d, speedup %.2f)\n"
      r.Darsie_harness.Suite.gpu.Gpu.cycles
      base.Darsie_harness.Suite.gpu.Gpu.cycles
      (float_of_int base.Darsie_harness.Suite.gpu.Gpu.cycles
      /. float_of_int r.Darsie_harness.Suite.gpu.Gpu.cycles);
    Printf.printf "stats: %s\n"
      (Format.asprintf "%a" Stats.pp r.Darsie_harness.Suite.gpu.Gpu.stats);
    Printf.printf "energy: %s\n"
      (Format.asprintf "%a" Darsie_energy.Energy_model.pp
         r.Darsie_harness.Suite.energy);
    check_run abbr base;
    check_run abbr r;
    (match json_file with
    | Some path ->
      Darsie_harness.Metrics.write_file path
        (Darsie_harness.Metrics.of_run ~app:abbr ~scale r);
      Printf.printf "metrics: %s\n" path
    | None -> ());
    report_cache cache;
    write_telemetry ();
    finish ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one application through the timing model")
    Term.(
      const run $ app_arg $ machine_arg $ scale_arg $ json_arg $ jobs_arg
      $ cache_arg $ no_ff_arg $ knobs_term $ telemetry_arg $ progress_arg
      $ progress_json_arg)

let profile_cmd =
  let run abbr machine scale json_file trace_file csv_file interval cache_dir
      no_ff knobs telemetry_file progress progress_json =
    let write_telemetry = setup_telemetry telemetry_file progress progress_json in
    let w = or_die (find_app abbr) in
    if interval < 1 then or_die (Error "--interval must be >= 1");
    let cfg = cfg_of no_ff knobs in
    let cache = cache_of cache_dir in
    Printf.printf "preparing %s (scale %d)...\n%!" w.W.abbr scale;
    let app = Darsie_harness.Suite.load_app ~scale ?cache w in
    (* Record events only when someone will read them: the Chrome trace
       is the only consumer, and recording costs memory. *)
    let recorder =
      match trace_file with
      | Some _ -> Some (Obs.Recorder.create ())
      | None -> None
    in
    let sink =
      match recorder with
      | Some r -> Obs.Recorder.sink r
      | None -> Obs.Sink.null
    in
    let r =
      Darsie_harness.Suite.run_app ~cfg ~sink ~sample_interval:interval app
        machine
    in
    let open Darsie_timing in
    let gpu = r.Darsie_harness.Suite.gpu in
    Printf.printf "machine: %s\n" (Darsie_harness.Suite.machine_name machine);
    Printf.printf "cycles: %d  ipc: %.3f  tbs/SM: %d\n" gpu.Gpu.cycles
      (Gpu.ipc gpu) gpu.Gpu.tbs_per_sm;
    Printf.printf "sampling interval: %d cycles (%d points/SM)\n" interval
      (if Array.length gpu.Gpu.series = 0 then 0
       else Obs.Series.num_points gpu.Gpu.series.(0));
    Printf.printf "\nstall-cycle attribution (all SMs, %d cycles each):\n%s\n"
      gpu.Gpu.cycles
      (Format.asprintf "%a" Obs.Attrib.pp gpu.Gpu.attribution);
    check_run abbr r;
    let doc = Darsie_harness.Metrics.of_run ~app:abbr ~scale r in
    (match Darsie_harness.Metrics.validate doc with
    | Ok () -> ()
    | Error msg -> violation "%s: exported metrics invalid (%s)" abbr msg);
    (match json_file with
    | Some path ->
      Darsie_harness.Metrics.write_file path doc;
      Printf.printf "metrics: %s\n" path
    | None -> ());
    (match trace_file with
    | Some path ->
      (* When host telemetry is on, its span tracks (own pid, so no
         collision with the per-SM processes) ride along in the same
         trace file. *)
      let extra =
        if Tel.enabled () then Host_trace.chrome_events (Tel.snapshot ())
        else []
      in
      let trace =
        Obs.Export.chrome_trace ?recorder ~series:gpu.Gpu.series ~extra
          ~name:
            (Printf.sprintf "%s/%s" abbr
               (Darsie_harness.Suite.machine_name machine))
          ()
      in
      let oc = open_out path in
      output_string oc (Obs.Json.to_string trace);
      output_char oc '\n';
      close_out oc;
      (match recorder with
      | Some rec_ when Obs.Recorder.dropped rec_ > 0 ->
        Printf.printf
          "chrome trace: %s (recorder dropped %d events past its cap)\n" path
          (Obs.Recorder.dropped rec_)
      | _ -> Printf.printf "chrome trace: %s\n" path)
    | None -> ());
    (match csv_file with
    | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Export.csv_of_series gpu.Gpu.series);
      close_out oc;
      Printf.printf "csv series: %s\n" path
    | None -> ());
    report_cache cache;
    write_telemetry ();
    finish ()
  in
  let trace_arg =
    let doc =
      "Write a Chrome trace_event file to $(docv) (open in chrome://tracing \
       or https://ui.perfetto.dev)."
    in
    Arg.(
      value & opt (some string) None & info [ "chrome-trace" ] ~docv:"FILE" ~doc)
  in
  let csv_arg =
    let doc = "Write the per-SM sampled counter time-series as CSV to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let interval_arg =
    let doc = "Counter sampling interval in cycles." in
    Arg.(value & opt int 512 & info [ "interval" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Instrumented timing run: stall-cycle attribution, sampled counter \
          time-series, JSON metrics and Chrome-trace export")
    Term.(
      const run $ app_arg $ machine_arg $ scale_arg $ json_arg $ trace_arg
      $ csv_arg $ interval_arg $ cache_arg $ no_ff_arg $ knobs_term
      $ telemetry_arg $ progress_arg $ progress_json_arg)

let limit_cmd =
  let run abbr scale =
    let w = or_die (find_app abbr) in
    let p = w.W.prepare ~scale in
    let r = Darsie_trace.Limit_study.measure p.W.mem p.W.launch in
    let open Darsie_trace.Limit_study in
    let pct n = 100.0 *. fraction n r in
    Printf.printf
      "%s: %d dynamic warp instructions\n\
       grid-redundant: %5.1f%%\n\
       TB-redundant:   %5.1f%%  (uniform %.1f%% / affine %.1f%% / \
       unstructured %.1f%%)\n\
       warp-redundant: %5.1f%%\n"
      w.W.abbr r.total (pct r.grid_red) (pct r.tb_red) (pct r.tb_uniform)
      (pct r.tb_affine) (pct r.tb_unstructured) (pct r.warp_red)
  in
  Cmd.v
    (Cmd.info "limit" ~doc:"Redundancy limit study (Figures 1 and 2)")
    Term.(const run $ app_arg $ scale_arg)

let experiment_cmd =
  let run id scale jobs cache_dir no_ff knobs json_file =
    let module F = Darsie_harness.Figures in
    let needs_matrix =
      [ "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "coverage" ]
    in
    let matrix =
      lazy
        (let jobs = effective_jobs jobs in
         Printf.printf
           "building evaluation matrix (13 apps x 7 machines, scale %d, %d \
            job(s))...\n\
            %!"
           scale jobs;
         let cache = cache_of cache_dir in
         let m =
           Darsie_harness.Suite.build_matrix ~cfg:(cfg_of no_ff knobs) ~scale
             ~jobs ?cache ()
         in
         Hashtbl.iter (fun (abbr, _) r -> check_run abbr r)
           m.Darsie_harness.Suite.runs;
         report_cache cache;
         m)
    in
    match String.lowercase_ascii id with
    | "fig1" ->
      let _, _, text = F.fig1 () in
      print_string text
    | "fig2" ->
      let _, text = F.fig2 () in
      print_string text
    | "fig6" -> print_string (F.fig6 ())
    | "fig8" ->
      let _, _, _, text = F.fig8 (Lazy.force matrix) in
      print_string text
    | "fig9" ->
      let _, text = F.fig9 (Lazy.force matrix) in
      print_string text
    | "fig10" ->
      let _, text = F.fig10 (Lazy.force matrix) in
      print_string text
    | "fig11" ->
      let _, _, _, text = F.fig11 (Lazy.force matrix) in
      print_string text
    | "fig12" ->
      let _, _, text = F.fig12 (Lazy.force matrix) in
      print_string text
    | "coverage" ->
      let _, _, text = F.coverage (Lazy.force matrix) in
      print_string text
    | "table1" -> print_string (F.table1 ())
    | "table2" -> print_string (F.table2 ())
    | "table3" -> print_string (F.table3 ())
    | "area" ->
      let _, text = F.area () in
      print_string text
    | "ablations" ->
      List.iter
        (fun sweep -> print_endline (Darsie_harness.Ablations.render sweep))
        (Darsie_harness.Ablations.run_default ());
      let apps =
        List.map Darsie_harness.Suite.load_app
          [ Darsie_workloads.Matmul.workload;
            Darsie_workloads.Libor.workload;
            Darsie_workloads.Hotspot.workload ]
      in
      print_string
        (Darsie_harness.Ablations.render_schedulers
           (Darsie_harness.Ablations.scheduler_comparison apps))
    | "sensitivity" ->
      let module Sens = Darsie_harness.Sensitivity in
      let jobs = effective_jobs jobs in
      Printf.printf
        "sensitivity sweep (13 apps x 2 machines x {1,2} issue-width x \
         {1,64} mshrs, 32 banks, %d job(s))...\n%!"
        jobs;
      let cache = cache_of cache_dir in
      let t = Sens.run ~cfg:(cfg_of no_ff knobs) ~jobs ?cache
          ~check:check_run ()
      in
      print_string (Sens.render t);
      report_cache cache;
      let doc = Sens.to_json t in
      (match Darsie_harness.Metrics.validate_sensitivity doc with
      | Ok () -> ()
      | Error msg -> violation "sensitivity document invalid (%s)" msg);
      (match json_file with
      | Some path ->
        Darsie_harness.Metrics.write_file path doc;
        Printf.printf "sweep: %s\n" path
      | None -> ())
    | other ->
      ignore needs_matrix;
      Printf.eprintf
        "unknown experiment %S (fig1 fig2 fig6 fig8 fig9 fig10 fig11 fig12 \
         coverage table1 table2 table3 area ablations sensitivity)\n"
        other;
      exit 1
  in
  let run id scale jobs cache_dir no_ff knobs json_file telemetry_file
      progress progress_json =
    let write_telemetry = setup_telemetry telemetry_file progress progress_json in
    run id scale jobs cache_dir no_ff knobs json_file;
    write_telemetry ();
    finish ()
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id, e.g. fig8, table1 or sensitivity.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper figure or table")
    Term.(const run $ id_arg $ scale_arg $ jobs_arg $ cache_arg $ no_ff_arg
          $ knobs_term $ json_arg $ telemetry_arg $ progress_arg
          $ progress_json_arg)

let check_cmd =
  let module Checker = Darsie_harness.Checker in
  let module Sim_error = Darsie_check.Sim_error in
  let run app_opt machines scale no_oracle inject seed deadline max_cycles
      watchdog json_file jobs cache_dir no_ff knobs telemetry_file progress
      progress_json =
    let write_telemetry = setup_telemetry telemetry_file progress progress_json in
    let apps =
      match app_opt with
      | Some abbr -> [ or_die (find_app abbr) ]
      | None -> Darsie_workloads.Registry.all
    in
    let machines = if machines = [] then Checker.default_machines else machines in
    let jobs = effective_jobs jobs in
    let cache = cache_of cache_dir in
    let cfg =
      {
        (cfg_of no_ff knobs) with
        Darsie_timing.Config.max_cycles;
        watchdog_cycles = watchdog;
      }
    in
    Printf.printf
      "checking %d app(s) on %s (oracle %s, %d fault(s), seed %d, %d job(s))...\n%!"
      (List.length apps)
      (String.concat "+" (List.map Darsie_harness.Suite.machine_name machines))
      (if no_oracle then "off" else "on")
      inject seed jobs;
    let report =
      Checker.check_suite ~cfg ~scale ~machines ~oracle:(not no_oracle) ~inject
        ~seed ?deadline ?cache ~jobs ~apps ()
    in
    print_string (Checker.render report);
    report_cache cache;
    (match json_file with
    | Some path ->
      let doc = Checker.to_json report in
      (match Darsie_harness.Metrics.validate_check doc with
      | Ok () -> ()
      | Error msg -> violation "exported check report invalid (%s)" msg);
      Darsie_harness.Metrics.write_file path doc;
      Printf.printf "report: %s\n" path
    | None -> ());
    write_telemetry ();
    finish ();
    (* each failure class gets its own exit code so scripts and CI can
       tell a deadlock from an oracle mismatch *)
    match Checker.worst_error report with
    | None -> ()
    | Some e ->
      Printf.eprintf "%s\n" (Sim_error.summary e);
      exit (Sim_error.exit_code e)
  in
  let app_opt_arg =
    let doc = "Application to check; omit to check the whole suite." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let machines_arg =
    let doc = "Machine configuration(s) to run (repeatable; default BASE and \
               DARSIE)." in
    Arg.(value & opt_all machine_conv [] & info [ "machine"; "m" ]
           ~docv:"MACHINE" ~doc)
  in
  let no_oracle_arg =
    let doc = "Skip the differential oracle (functional + timing only)." in
    Arg.(value & flag & info [ "no-oracle" ] ~doc)
  in
  let inject_arg =
    let doc = "Inject $(docv) seeded faults per app; every one must be \
               detected by the oracle." in
    Arg.(value & opt int 0 & info [ "inject" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for the fault plan (same seed, same faults)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Processor-seconds budget per timing run (wall timeout)." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)
  in
  let max_cycles_arg =
    let doc = "Cycle budget per timing run." in
    Arg.(value
         & opt int Darsie_timing.Config.default.Darsie_timing.Config.max_cycles
         & info [ "max-cycles" ] ~docv:"N" ~doc)
  in
  let watchdog_arg =
    let doc = "Deadlock watchdog window in cycles (0 disables)." in
    Arg.(value
         & opt int
             Darsie_timing.Config.default.Darsie_timing.Config.watchdog_cycles
         & info [ "watchdog" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Robustness checks: functional verify, budgeted timing runs, \
          differential oracle and fault injection, crash-isolated per app")
    Term.(const run $ app_opt_arg $ machines_arg $ scale_arg $ no_oracle_arg
          $ inject_arg $ seed_arg $ deadline_arg $ max_cycles_arg
          $ watchdog_arg $ json_arg $ jobs_arg $ cache_arg $ no_ff_arg
          $ knobs_term $ telemetry_arg $ progress_arg $ progress_json_arg)

let annotate_cmd =
  let run abbr machines scale top json_file jobs cache_dir no_ff knobs
      telemetry_file progress progress_json =
    let write_telemetry = setup_telemetry telemetry_file progress progress_json in
    let w = or_die (find_app abbr) in
    let cfg = cfg_of no_ff knobs in
    let machines =
      if machines = [] then [ Darsie_harness.Suite.Darsie ] else machines
    in
    let cache = cache_of cache_dir in
    Printf.printf "preparing %s (scale %d)...\n%!" w.W.abbr scale;
    let app = Darsie_harness.Suite.load_app ~scale ?cache w in
    let pool = min (effective_jobs jobs) (List.length machines) in
    let cfg = Darsie_harness.Suite.divide_domains ~jobs:pool cfg in
    let runs =
      Darsie_harness.Parallel.map ~jobs:pool
        ~label:Darsie_harness.Suite.machine_name
        (fun m ->
          let r = Darsie_harness.Suite.run_app ~cfg ~pcstat:true app m in
          (Darsie_harness.Suite.machine_name m, r))
        machines
    in
    (* the pcstat-aware attribution check: per-PC stall charges must
       reproduce each SM's bucket totals *)
    List.iter (fun (_, r) -> check_run abbr r) runs;
    let results =
      List.map (fun (n, r) -> (n, r.Darsie_harness.Suite.gpu)) runs
    in
    let kernel = app.Darsie_harness.Suite.kinfo.Darsie_timing.Kinfo.kernel in
    print_string
      (Darsie_harness.Annotate.render ~top ~kernel ~app_name:abbr
         ~machines:results ());
    (match json_file with
    | Some path ->
      let _, primary = List.hd runs in
      let doc = Darsie_harness.Metrics.of_run ~app:abbr ~scale primary in
      (match Darsie_harness.Metrics.validate doc with
      | Ok () -> ()
      | Error msg -> violation "%s: exported metrics invalid (%s)" abbr msg);
      Darsie_harness.Metrics.write_file path doc;
      Printf.printf "metrics: %s\n" path
    | None -> ());
    report_cache cache;
    write_telemetry ();
    finish ()
  in
  let machines_arg =
    let doc =
      "Machine(s) to profile (repeatable; first is the primary for cycle% \
       and stall columns, every one adds a skip% column; default DARSIE)."
    in
    Arg.(
      value & opt_all machine_conv [] & info [ "machine"; "m" ]
        ~docv:"MACHINE" ~doc)
  in
  let top_arg =
    let doc = "Show the $(docv) hottest instructions after the listing \
               (0 disables)." in
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:
         "Per-instruction hotspot profile: annotated disassembly with \
          cycle%, skip% and stall-bucket columns (perf annotate for \
          PTX-lite)")
    Term.(
      const run $ app_arg $ machines_arg $ scale_arg $ top_arg $ json_arg
      $ jobs_arg $ cache_arg $ no_ff_arg $ knobs_term $ telemetry_arg
      $ progress_arg $ progress_json_arg)

let explain_cmd =
  let run abbr machine scale top json_file cache_dir no_ff knobs
      telemetry_file progress progress_json =
    let write_telemetry = setup_telemetry telemetry_file progress progress_json in
    let w = or_die (find_app abbr) in
    let cfg = cfg_of no_ff knobs in
    let cache = cache_of cache_dir in
    Printf.printf "preparing %s (scale %d)...\n%!" w.W.abbr scale;
    let app = Darsie_harness.Suite.load_app ~scale ?cache w in
    let r = Darsie_harness.Suite.run_app ~cfg app machine in
    (* the ledger conservation check: eligible occurrences = Σ fates per
       PC, per SM and in the aggregate — exit 2 if the accounting leaks *)
    check_run abbr r;
    let gpu = r.Darsie_harness.Suite.gpu in
    print_string
      (Darsie_harness.Explain.render ~top ~app_name:abbr
         ~machine_name:(Darsie_harness.Suite.machine_name machine)
         ~kinfo:app.Darsie_harness.Suite.kinfo
         gpu.Darsie_timing.Gpu.ledger ());
    (match json_file with
    | Some path ->
      let doc = Darsie_harness.Metrics.of_run ~app:abbr ~scale r in
      (match Darsie_harness.Metrics.validate doc with
      | Ok () -> ()
      | Error msg -> violation "%s: exported metrics invalid (%s)" abbr msg);
      Darsie_harness.Metrics.write_file path doc;
      Printf.printf "metrics: %s\n" path
    | None -> ());
    report_cache cache;
    write_telemetry ();
    finish ()
  in
  let top_arg =
    let doc =
      "Show the $(docv) instructions with the most eligible occurrences \
       after the listing, each with its full fate breakdown, launch-time \
       promotion verdict and operand provenance story (0 disables)."
    in
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain the fate of every statically redundant instruction: the \
          runtime skip ledger (skipped, parked, blocked, evicted, flushed, \
          demoted ... per dynamic occurrence) joined with the compiler's \
          static story on an annotated listing; exits nonzero if the \
          ledger's conservation invariant is violated")
    Term.(
      const run $ app_arg $ machine_arg $ scale_arg $ top_arg $ json_arg
      $ cache_arg $ no_ff_arg $ knobs_term $ telemetry_arg $ progress_arg
      $ progress_json_arg)

let bench_compare_cmd =
  let module T = Darsie_harness.Trendline in
  let run baseline current det_tol wall_tol warn_only =
    let load path =
      match T.read_file path with
      | Ok r -> r
      | Error e -> or_die (Error (Printf.sprintf "%s: %s" path e))
    in
    let b = load baseline in
    let c = load current in
    Printf.printf "baseline: %s (%s, %s)\ncurrent:  %s (%s, %s)\n\n" baseline
      b.T.date b.T.label current c.T.date c.T.label;
    let verdicts =
      T.compare_records ~det_threshold:det_tol ~wall_threshold:wall_tol
        ~baseline:b ~current:c ()
    in
    print_string (T.render_verdicts verdicts);
    match T.regressions verdicts with
    | [] -> print_endline "\nbench-compare: no regressions."
    | rs ->
      Printf.printf "\nbench-compare: %d metric(s) regressed.\n"
        (List.length rs);
      if not warn_only then exit 1
  in
  let baseline_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"BASELINE"
          ~doc:"Baseline bench record (JSON written by bench --trend).")
  in
  let current_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"CURRENT" ~doc:"Bench record to judge.")
  in
  let det_arg =
    let doc = "Relative threshold for deterministic metrics (cycles, IPC, \
               speedup geomeans)." in
    Arg.(value & opt float T.det_threshold
         & info [ "det-threshold" ] ~docv:"FRAC" ~doc)
  in
  let wall_arg =
    let doc = "Relative threshold for wall-clock metrics." in
    Arg.(value & opt float T.wall_threshold
         & info [ "wall-threshold" ] ~docv:"FRAC" ~doc)
  in
  let warn_arg =
    let doc = "Report regressions but exit zero (CI smoke mode)." in
    Arg.(value & flag & info [ "warn-only" ] ~doc)
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Diff two bench trajectory records with min-of-N + \
          relative-threshold gating; exits nonzero on regression")
    Term.(const run $ baseline_arg $ current_arg $ det_arg $ wall_arg
          $ warn_arg)

let telemetry_summary_cmd =
  let run file =
    let text =
      match
        let ic = open_in file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error e -> Error e
      | s -> (
        match Obs.Json.of_string s with
        | Error e -> Error (Printf.sprintf "%s: bad JSON (%s)" file e)
        | Ok doc -> (
          match Host_trace.summary_of_document doc with
          | None ->
            Error
              (Printf.sprintf "%s carries no host_telemetry section" file)
          | Some section -> (
            match Darsie_harness.Metrics.validate_telemetry section with
            | Error e ->
              Error (Printf.sprintf "%s: invalid host_telemetry (%s)" file e)
            | Ok () -> Host_trace.render_summary section)))
    in
    print_string (or_die text)
  in
  let file_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Telemetry document written by --telemetry (or a bare \
                host_telemetry section).")
  in
  Cmd.v
    (Cmd.info "telemetry-summary"
       ~doc:
         "Render a --telemetry document as a table: phases ranked by self \
          wall time, per-domain utilization, counter totals; validates the \
          self-time accounting first and exits nonzero if it does not \
          hold")
    Term.(const run $ file_arg)

let area_cmd =
  let run () =
    let _, text = Darsie_harness.Figures.area () in
    print_string text
  in
  Cmd.v (Cmd.info "area" ~doc:"DARSIE area estimate (Section 6.3)")
    Term.(const run $ const ())

let fuzz_cmd =
  let module Campaign = Darsie_fuzz.Campaign in
  let run seed count jobs max_shrink corpus inject json_file replay
      replay_corpus knobs telemetry_file progress progress_json =
    let write_telemetry = setup_telemetry telemetry_file progress progress_json in
    (* The differential stack runs fast-forward both on and off itself,
       so only the fidelity knobs matter here. *)
    let base_cfg = cfg_of false knobs in
    match (replay, replay_corpus) with
    | Some spec, _ ->
      (* --replay SEED:INDEX re-runs exactly one generated kernel *)
      let rseed, rindex =
        match String.split_on_char ':' spec with
        | [ s; i ] -> (
          match (int_of_string_opt s, int_of_string_opt i) with
          | Some s, Some i -> (s, i)
          | _ -> or_die (Error (Printf.sprintf "bad --replay spec %S" spec)))
        | _ ->
          or_die
            (Error
               (Printf.sprintf "bad --replay spec %S (expected SEED:INDEX)"
                  spec))
      in
      let text, code = Campaign.replay ~base_cfg ~seed:rseed ~index:rindex () in
      print_string text;
      if code <> 0 then exit code
    | None, Some dir ->
      let text, code = Campaign.replay_corpus ~base_cfg ~dir () in
      print_string text;
      if code <> 0 then exit code
    | None, None ->
      let cfg =
        {
          Campaign.seed;
          count;
          jobs = (if jobs >= 1 then Some jobs else None);
          max_shrink;
          corpus_dir = corpus;
          inject;
          base_cfg;
        }
      in
      let report = Campaign.run cfg in
      print_string (Campaign.render report);
      (match json_file with
      | Some path ->
        let doc = Campaign.to_json report in
        (match Darsie_harness.Metrics.validate_fuzz doc with
        | Ok () -> ()
        | Error msg -> violation "exported fuzz report invalid (%s)" msg);
        Darsie_harness.Metrics.write_file path doc;
        Printf.printf "report: %s\n" path
      | None -> ());
      write_telemetry ();
      finish ();
      let code = Campaign.exit_code report in
      if code <> 0 then exit code
  in
  let seed_arg =
    let doc = "Campaign seed: kernel $(i,i) is generated from the splittable \
               stream for (seed, i), so any kernel replays in isolation." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let count_arg =
    let doc = "Number of kernels to generate and differentially check." in
    Arg.(value & opt int 100 & info [ "count"; "n" ] ~docv:"N" ~doc)
  in
  let max_shrink_arg =
    let doc = "Shrinker budget: predicate evaluations per counterexample." in
    Arg.(value & opt int 400 & info [ "max-shrink" ] ~docv:"K" ~doc)
  in
  let corpus_arg =
    let doc = "Write shrunk counterexamples to $(docv) (created on demand)." in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let inject_arg =
    let doc = "Fault-injection mode: for each fault kind, find a generated \
               kernel with an applicable site, require the stacked oracle to \
               detect the injected fault, and shrink that kernel to a \
               minimal witness."
    in
    Arg.(value & flag & info [ "inject" ] ~doc)
  in
  let replay_arg =
    let doc = "Replay one kernel as $(docv) (SEED:INDEX) through the full \
               stack and print its geometry, assembly and verdict."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"SEED:INDEX" ~doc)
  in
  let replay_corpus_arg =
    let doc = "Re-run every checked-in counterexample under $(docv) through \
               the full differential stack (clean entries must pass; \
               injected entries must be detected)."
    in
    Arg.(value & opt (some string) None & info [ "replay-corpus" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based kernel fuzzing: generate seeded PTX-lite kernels \
          biased onto the promotion boundary and the skip-invalidation \
          paths, run each through the stacked differential (oracle, \
          fast-forward bit-identity, attribution/ledger invariants), and \
          shrink any failure to a minimal replayable counterexample")
    Term.(const run $ seed_arg $ count_arg $ jobs_arg $ max_shrink_arg
          $ corpus_arg $ inject_arg $ json_arg $ replay_arg
          $ replay_corpus_arg $ knobs_term $ telemetry_arg $ progress_arg
          $ progress_json_arg)

let main =
  let doc = "DARSIE: dimensionality-aware redundant SIMT instruction elimination" in
  Cmd.group (Cmd.info "darsie" ~version:"1.0.0" ~doc)
    [ list_cmd; asm_cmd; analyze_cmd; run_cmd; profile_cmd; annotate_cmd;
      explain_cmd; limit_cmd; experiment_cmd; check_cmd; fuzz_cmd;
      bench_compare_cmd; telemetry_summary_cmd; area_cmd ]

(* Typed simulation errors escaping any subcommand (e.g. a deadlock during
   [darsie run]) exit with their distinct code and a one-line summary. *)
let () =
  let module Sim_error = Darsie_check.Sim_error in
  try exit (Cmd.eval main) with
  | Sim_error.Simulation_error e ->
    Printf.eprintf "%s\n" (Sim_error.summary e);
    exit (Sim_error.exit_code e)
  | Darsie_emu.Interp.Error err ->
    let e = Sim_error.of_emu err in
    Printf.eprintf "%s\n" (Sim_error.summary e);
    exit (Sim_error.exit_code e)
  | Darsie_emu.Interp.Fault msg ->
    let e = Sim_error.Memory_fault { message = msg } in
    Printf.eprintf "%s\n" (Sim_error.summary e);
    exit (Sim_error.exit_code e)
