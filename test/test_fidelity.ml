(* Fidelity-knob tests: dual-issue fetch bundles ([Config.issue_width]),
   per-warp MSHR limits ([Config.mshrs]) and shared-memory bank-conflict
   replay ([Config.smem_banks]). Each knob is checked three ways: a
   crafted kernel with a hand-computed expectation, the attribution
   conservation invariant at the non-default setting, and fast-forward
   on/off bit-identity — capped by the full 13-app x 7-machine matrix
   differential at a combined non-default machine point. *)

open Darsie_isa
open Darsie_timing
module Obs = Darsie_obs
module Suite = Darsie_harness.Suite
module W = Darsie_workloads.Workload
module J = Darsie_obs.Json

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let ff_off cfg = { cfg with Config.fast_forward = false }

let prep ?(grid = Kernel.dim3 1) ?(block = Kernel.dim3 32)
    ?(shared_bytes = 0) ktext ~nparams =
  let k = Parser.parse_kernel ktext in
  let k = { k with Kernel.shared_bytes } in
  let mem = Darsie_emu.Memory.create () in
  let params =
    Array.init nparams (fun _ ->
        let b = Darsie_emu.Memory.alloc mem 65536 in
        Darsie_emu.Memory.write_i32s mem b (Array.init 16384 (fun i -> i));
        b)
  in
  let launch = Kernel.launch k ~grid ~block ~params in
  (Kinfo.make ~warp_size:32 launch, Darsie_trace.Record.generate mem launch)

(* Run with fast-forward on and off, demand the attribution invariant
   and bit-identical cycle counts both ways, return the result. *)
let run_both ?(cfg = Config.default) (kinfo, trace) =
  let go cfg =
    let r =
      Gpu.run_exn ~cfg ~pcstat:true Engine.base_factory kinfo trace
    in
    (match Gpu.check_attribution r with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "attribution invariant: %s" msg);
    r
  in
  let on = go cfg in
  let off = go (ff_off cfg) in
  check_int "fast-forward on/off cycles" off.Gpu.cycles on.Gpu.cycles;
  check_bool "fast-forward on/off attribution" true
    (Obs.Attrib.to_assoc off.Gpu.attribution
    = Obs.Attrib.to_assoc on.Gpu.attribution);
  on

let bucket r name =
  List.assoc name (Obs.Attrib.to_assoc r.Gpu.attribution)

(* ------------------------------------------------------------------ *)
(* Dual-issue fetch                                                     *)
(* ------------------------------------------------------------------ *)

(* One warp, a chain of mutually independent ALU ops: single fetch
   feeds the two issue slots at most one instruction per cycle, so the
   frontend is the bottleneck and doubling the bundle width must
   strictly help. *)
let alu_kernel =
  let ops =
    List.init 24 (fun i -> Printf.sprintf "  add.u32 %%r%d, %%r0, %d;" (i + 1) i)
  in
  ".kernel alu\n  mov.u32 %r0, %tid.x;\n"
  ^ String.concat "\n" ops ^ "\n  exit;\n"

let test_dual_issue_ipc () =
  let single = run_both (prep alu_kernel ~nparams:0) in
  let dual =
    run_both ~cfg:{ Config.default with Config.issue_width = 2 }
      (prep alu_kernel ~nparams:0)
  in
  check_bool
    (Printf.sprintf "dual-issue is faster on a fetch-bound kernel (%d < %d)"
       dual.Gpu.cycles single.Gpu.cycles)
    true
    (dual.Gpu.cycles < single.Gpu.cycles)

(* ------------------------------------------------------------------ *)
(* Per-warp MSHRs                                                       *)
(* ------------------------------------------------------------------ *)

(* One warp, four independent global loads to distinct lines: with
   unlimited MSHRs they all overlap; with a single MSHR each must wait
   for the previous writeback, and every blocked scoreboard-ready cycle
   lands in the [mem_struct] bucket. *)
let mlp_kernel =
  {|
.kernel mlp
.params 1
  mul.lo.u32 %r0, %tid.x, 4;
  add.u32 %r1, %r0, %param0;
  ld.global.u32 %r2, [%r1+0];
  ld.global.u32 %r3, [%r1+512];
  ld.global.u32 %r4, [%r1+1024];
  ld.global.u32 %r5, [%r1+2048];
  add.u32 %r6, %r2, %r3;
  exit;
|}

let test_mshr_saturation () =
  let free = run_both (prep mlp_kernel ~nparams:1) in
  let capped =
    run_both ~cfg:{ Config.default with Config.mshrs = 1 }
      (prep mlp_kernel ~nparams:1)
  in
  check_int "unlimited MSHRs never charge mem_struct" 0
    (bucket free "mem_struct");
  check_bool "single MSHR serializes the misses" true
    (capped.Gpu.cycles > free.Gpu.cycles);
  check_bool "blocked cycles land in mem_struct" true
    (bucket capped "mem_struct" > 0)

(* ------------------------------------------------------------------ *)
(* Bank-conflict replay                                                 *)
(* ------------------------------------------------------------------ *)

(* Every lane stores to word [tid.x * 32]: all 32 words of a warp map
   to bank 0, so one store serializes into 31 replay passes. Two warps
   make the hand-computed total 2 x 31 = 62. *)
let conflict_kernel =
  {|
.kernel conflict
  mul.lo.u32 %r0, %tid.x, 128;
  st.shared.u32 [%r0], %r0;
  exit;
|}

let test_bank_conflict_replay () =
  let p () =
    prep ~block:(Kernel.dim3 64) ~shared_bytes:8192 conflict_kernel
      ~nparams:0
  in
  let off = run_both (p ()) in
  let on =
    run_both ~cfg:{ Config.default with Config.smem_banks = 32 } (p ())
  in
  check_int "replay counter off by default" 0
    off.Gpu.stats.Stats.smem_replay_cycles;
  check_int "31 replay cycles per fully-conflicted warp store" 62
    on.Gpu.stats.Stats.smem_replay_cycles;
  check_int "legacy conflict counter agrees" 62
    on.Gpu.stats.Stats.shared_bank_conflicts

(* ------------------------------------------------------------------ *)
(* Machine-config echo                                                  *)
(* ------------------------------------------------------------------ *)

(* Every knob in [Config.knobs] round-trips into the metrics document's
   [machine_config] object, and the document still validates. *)
let test_machine_config_echo () =
  let app = Suite.load_app ~scale:1 (List.hd Darsie_workloads.Registry.all) in
  let cfg =
    { Config.default with Config.issue_width = 2; mshrs = 4; smem_banks = 32 }
  in
  let r = Suite.run_app ~cfg app Suite.Base in
  let doc = Darsie_harness.Metrics.of_run ~app:app.Suite.workload.W.abbr r in
  (match Darsie_harness.Metrics.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "metrics validate: %s" e);
  let mc =
    match J.member "machine_config" doc with
    | Some m -> m
    | None -> Alcotest.fail "metrics document lacks machine_config"
  in
  List.iter
    (fun (name, v) ->
      match J.member name mc with
      | Some j ->
        check_int
          (Printf.sprintf "machine_config.%s" name)
          v
          (Option.value ~default:min_int (J.to_int j))
      | None -> Alcotest.failf "machine_config lacks %s" name)
    (Config.knobs cfg)

(* ------------------------------------------------------------------ *)
(* Sensitivity sweep                                                    *)
(* ------------------------------------------------------------------ *)

let test_sensitivity_sweep () =
  let module Sens = Darsie_harness.Sensitivity in
  let apps =
    match Darsie_workloads.Registry.all with
    | a :: b :: _ -> [ a; b ]
    | _ -> Alcotest.fail "registry too small"
  in
  let t =
    Sens.run ~apps ~issue_widths:[ 1; 2 ] ~mshr_limits:[ 1 ]
      ~smem_banks:32 ()
  in
  check_int "one cell per swept point" 2 (List.length t.Sens.cells);
  check_int "one speedup per app per cell" 2
    (List.length (List.hd t.Sens.cells).Sens.speedups);
  (match Darsie_harness.Metrics.validate_sensitivity (Sens.to_json t) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sensitivity validate: %s" e);
  (* renderer smoke: the table closes with the geomean row *)
  check_bool "render carries the GMEAN row" true
    (let s = Sens.render t in
     let n = String.length s and m = String.length "GMEAN" in
     let rec scan i = i + m <= n && (String.sub s i m = "GMEAN" || scan (i + 1)) in
     scan 0)

(* ------------------------------------------------------------------ *)
(* Full matrix at a combined non-default machine point                  *)
(* ------------------------------------------------------------------ *)

let all_machines =
  [ Suite.Base; Suite.Uv; Suite.Dac_ideal; Suite.Darsie;
    Suite.Darsie_ignore_store; Suite.Darsie_no_cf_sync; Suite.Silicon_sync ]

let matrix_cells m =
  List.concat_map
    (fun (app : Suite.app) ->
      List.map
        (fun machine ->
          let abbr = app.Suite.workload.W.abbr in
          let r = Suite.get m abbr machine in
          (match Gpu.check_attribution r.Suite.gpu with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" abbr msg);
          ( Printf.sprintf "%s/%s" abbr (Suite.machine_name machine),
            J.to_string (Darsie_harness.Metrics.of_run ~app:abbr r) ))
        all_machines)
    m.Suite.apps

let test_matrix_at_knobs () =
  let cfg =
    { Config.default with Config.issue_width = 2; mshrs = 1; smem_banks = 32 }
  in
  let jobs = Darsie_harness.Parallel.default_jobs () in
  let build cfg = Suite.build_matrix ~cfg ~machines:all_machines ~jobs () in
  let m_off = build (ff_off cfg) in
  let m_on = build cfg in
  (* the document echoes the fast-forward flag itself; normalize it so
     the comparison covers only simulated fields *)
  let normalize_ff s =
    let sub = {|"fast_forward":false|} and by = {|"fast_forward":true|} in
    let n = String.length s and m = String.length sub in
    let b = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if !i + m <= n && String.sub s !i m = sub then begin
        Buffer.add_string b by;
        i := !i + m
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  List.iter2
    (fun (name, off) (_, on) ->
      let off = normalize_ff off in
      if off <> on then begin
        let n = min (String.length off) (String.length on) in
        let i = ref 0 in
        while !i < n && off.[!i] = on.[!i] do
          incr i
        done;
        let window s =
          let lo = max 0 (!i - 80) in
          String.sub s lo (min 180 (String.length s - lo))
        in
        Alcotest.failf "%s diverges at byte %d:\n  off: %s\n  on:  %s" name !i
          (window off) (window on)
      end)
    (matrix_cells m_off) (matrix_cells m_on)

let () =
  Alcotest.run "fidelity"
    [
      ( "knobs",
        [
          Alcotest.test_case "dual-issue IPC ordering" `Quick
            test_dual_issue_ipc;
          Alcotest.test_case "MSHR saturation" `Quick test_mshr_saturation;
          Alcotest.test_case "bank-conflict replay" `Quick
            test_bank_conflict_replay;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "machine_config echo" `Quick
            test_machine_config_echo;
          Alcotest.test_case "sensitivity sweep" `Quick test_sensitivity_sweep;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "13 apps x 7 machines at non-default knobs"
            `Quick test_matrix_at_knobs;
        ] );
    ]
