(* Keeps docs/metrics-schema.md and EXPERIMENTS.md honest: every JSON
   example tagged with a [<!-- validate: kind -->] comment is extracted
   and fed through the validator for that kind, so the documented
   schema cannot drift from what the exporters and validators actually
   implement. *)

open Darsie_harness
module J = Darsie_obs.Json

(* dune runs tests from _build/default/test/; the doc is declared as a
   test dep so it is mirrored into the build tree. *)
let doc_path = Filename.concat Filename.parent_dir_name "docs/metrics-schema.md"

type example = { src : string; kind : string; line : int; json : string }

(* Scan for "<!-- validate: KIND -->" followed by a ```json fence and
   collect the fence body. *)
let extract_examples path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = Array.of_list (List.rev !lines) in
  let n = Array.length lines in
  let examples = ref [] in
  let i = ref 0 in
  while !i < n do
    let line = String.trim lines.(!i) in
    (if String.length line > 14 && String.sub line 0 14 = "<!-- validate:" then begin
       let kind =
         String.trim (String.sub line 14 (String.length line - 14 - 3))
       in
       (* skip blanks to the opening fence *)
       let j = ref (!i + 1) in
       while !j < n && String.trim lines.(!j) = "" do
         incr j
       done;
       if !j >= n || String.trim lines.(!j) <> "```json" then
         Alcotest.failf "%s:%d: validate marker not followed by a ```json fence"
           path (!i + 1);
       let start = !j + 1 in
       let stop = ref start in
       while !stop < n && String.trim lines.(!stop) <> "```" do
         incr stop
       done;
       if !stop >= n then
         Alcotest.failf "%s:%d: unterminated ```json fence" path (start + 1);
       let body =
         String.concat "\n" (Array.to_list (Array.sub lines start (!stop - start)))
       in
       examples :=
         { src = Filename.basename path; kind; line = !i + 1; json = body }
         :: !examples;
       i := !stop
     end);
    incr i
  done;
  List.rev !examples

let validate_example e =
  let result =
    match e.kind with
    | "metrics" -> Metrics.validate_string e.json
    | "check" -> Metrics.validate_check_string e.json
    | "trendline" -> (
      match J.of_string e.json with
      | Error msg -> Error msg
      | Ok j -> Result.map ignore (Trendline.of_json j))
    | "sensitivity" -> Metrics.validate_sensitivity_string e.json
    | "host_telemetry" -> Metrics.validate_telemetry_string e.json
    | other -> Error (Printf.sprintf "unknown validate kind %S" other)
  in
  match result with
  | Ok () -> ()
  | Error msg ->
    Alcotest.failf "%s:%d: %s example rejected: %s" e.src e.line e.kind msg

let experiments_path =
  Filename.concat Filename.parent_dir_name "EXPERIMENTS.md"

let test_examples_validate () =
  let examples = extract_examples doc_path in
  let cookbook = extract_examples experiments_path in
  List.iter validate_example examples;
  List.iter validate_example cookbook;
  let count k = List.length (List.filter (fun e -> e.kind = k) examples) in
  (* the doc must keep at least one live example per document kind, and a
     profiled metrics document exercising the per_pc validator *)
  Alcotest.(check bool) "at least two metrics examples" true (count "metrics" >= 2);
  Alcotest.(check bool) "a check-report example" true (count "check" >= 1);
  Alcotest.(check bool) "a trendline example" true (count "trendline" >= 1);
  Alcotest.(check bool) "a sensitivity example" true
    (count "sensitivity" >= 1);
  Alcotest.(check bool) "a host-telemetry example" true
    (count "host_telemetry" >= 1);
  (* the EXPERIMENTS.md sweep cookbook must keep its measured excerpt *)
  Alcotest.(check bool) "a cookbook sensitivity excerpt" true
    (List.exists (fun e -> e.kind = "sensitivity") cookbook)

(* The doc's versioning table quotes the constants; make sure the quoted
   numbers track the code. *)
let test_versions_quoted () =
  let ic = open_in doc_path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  let quoted name v = Printf.sprintf "`%s` = %d" name v in
  Alcotest.(check bool) "metrics version quoted" true
    (contains (quoted "Darsie_obs.Export.schema_version" Metrics.schema_version));
  Alcotest.(check bool) "check version quoted" true
    (contains (quoted "Metrics.check_schema_version" Metrics.check_schema_version));
  Alcotest.(check bool) "trendline version quoted" true
    (contains (quoted "Trendline.schema_version" Trendline.schema_version));
  Alcotest.(check bool) "sensitivity version quoted" true
    (contains
       (quoted "Metrics.sensitivity_schema_version"
          Metrics.sensitivity_schema_version));
  Alcotest.(check bool) "host-telemetry version quoted" true
    (contains
       (quoted "Host_trace.schema_version" Metrics.telemetry_schema_version))

(* docs/machine-model.md quotes every integer knob's default as
   "`name` = value"; cross-check each against Config.knobs so the
   documented machine cannot drift from the simulated one. *)
let model_path = Filename.concat Filename.parent_dir_name "docs/machine-model.md"

let test_machine_model_defaults () =
  let ic = open_in model_path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "default for %s quoted" name)
        true
        (contains (Printf.sprintf "`%s` = %d" name v)))
    (Darsie_timing.Config.knobs Darsie_timing.Config.default)

let () =
  Alcotest.run "docs"
    [
      ( "metrics-schema",
        [
          Alcotest.test_case "examples validate" `Quick test_examples_validate;
          Alcotest.test_case "version constants quoted" `Quick
            test_versions_quoted;
        ] );
      ( "machine-model",
        [
          Alcotest.test_case "knob defaults quoted" `Quick
            test_machine_model_defaults;
        ] );
    ]
